# Single source of truth for build/check commands: CI runs exactly these
# targets, so a green `make lint test race chaos` locally means a green CI.

GO ?= go

.PHONY: all build test race vet ocsmlvet-bin fmt lint staticcheck vuln generate chaos ctl soak fuzz bench-wire bench-durability model-check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs the standard toolchain vet plus the repo's own ten analyzers
# (cmd/ocsmlvet): wire-codec exhaustiveness, determinism, lock
# discipline, fsync ordering, durability error flow, piggyback
# completeness, the checkpoint state machine, goroutine field ownership
# (loopowned), goroutine termination (quitpath) and hot-path allocation
# freedom (allocfree). See DESIGN.md §10-11 and §15. The second
# ocsmlvet pass adds the soak build tag so tag-gated code (the
# long-running transport soak harness) is analyzed too.
vet: ocsmlvet-bin
	$(GO) vet ./...
	bin/ocsmlvet ./...
	bin/ocsmlvet -tags soak ./...

# ocsmlvet-bin compiles the vet tool once to bin/ocsmlvet. CI restores
# the binary from a cache keyed on the exact analyzer sources and sets
# OCSMLVET_CACHED=true on a hit, so the second job that vets skips the
# build; locally the go build cache makes the rebuild cheap.
ocsmlvet-bin:
ifeq ($(OCSMLVET_CACHED),true)
	@test -x bin/ocsmlvet || $(GO) build -o bin/ocsmlvet ./cmd/ocsmlvet
else
	$(GO) build -o bin/ocsmlvet ./cmd/ocsmlvet
endif

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

lint: fmt vet staticcheck

# staticcheck and govulncheck are optional locally (the container may
# not have them); CI installs both, so findings still block merges.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "staticcheck not installed; skipped (CI runs it)"; fi

vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "govulncheck not installed; skipped (CI runs it)"; fi

generate:
	$(GO) generate ./...

# chaos is the CI smoke: five seeds of in-process crash + fault
# injection + wire recovery against the real TCP runtime.
chaos:
	$(GO) build -o /tmp/ocsmld ./cmd/ocsmld
	@for seed in 1 2 3 4 5; do \
		/tmp/ocsmld -chaos -seed $$seed -chaos-for 1200ms || exit 1; \
	done

# ctl is the control-plane smoke: three real ocsmld daemons with
# -admin-addr, driven by the real ocsmlctl binary (trigger a round,
# poll it durable, scrape /metrics), then SIGTERM'd to exit 0.
ctl:
	$(GO) test -run TestDaemonControlPlane -v ./cmd/ocsmld/

# soak mirrors .github/workflows/soak.yml; tune with SOAK_SEED_BASE,
# SOAK_SEEDS, SOAK_FAULT_MS, SOAK_ARTIFACT_DIR.
soak:
	$(GO) test -race -tags soak -timeout 20m -run TestSoak -v ./internal/transport/

fuzz:
	$(GO) test -fuzz FuzzWireRoundTrip -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzDecodeV2 -fuzztime 30s ./internal/wire/

# model-check is the bounded model-checking gate (DESIGN.md §16): the
# faithful protocol model must explore clean over every interleaving at
# N=2..MODEL_N, every mutation fixture (drop-log, reorder-finalize,
# skip-consume) must yield a counterexample trace, and each trace must
# replay under tracecheck exhibiting the claimed orphan / replay-gap /
# Z-cycle violation (tracecheck exiting 1 is the expected outcome per
# trace). PR CI runs the small default bounds (~5 s); the nightly soak
# passes MODEL_INITS=2 for the full sweep (~1 min).
MODEL_N ?= 3
MODEL_MSGS ?= 4
MODEL_INITS ?= 1
MODEL_CRASHES ?= 1
MODEL_OUT ?= model-traces

model-check:
	$(GO) build -o bin/ocsmlcheck ./cmd/ocsmlcheck
	$(GO) build -o bin/tracecheck ./cmd/tracecheck
	rm -rf $(MODEL_OUT) && mkdir -p $(MODEL_OUT)
	bin/ocsmlcheck -n $(MODEL_N) -msgs $(MODEL_MSGS) -inits $(MODEL_INITS) \
		-crashes $(MODEL_CRASHES) -out $(MODEL_OUT)
	@for f in $(MODEL_OUT)/cex-*.jsonl; do \
		if bin/tracecheck -n 2 -replay -zcycle $$f >/dev/null; then \
			echo "$$f: tracecheck reproduced NO violation"; exit 1; \
		else echo "$$f: violation reproduced under tracecheck"; fi; \
	done

# bench-wire is the wire-hot-path perf gate: the allocation-regression
# tests (exact-zero asserts need a race-free build, so `make race` skips
# them), the go benchmarks for the codec and the live mesh, then the
# quick-scale experiment suite, which writes the BENCH_<date>.json
# headline (wire-encode-allocs-per-msg, wire-mesh-msgs-per-sec-per-node);
# CI uploads the JSON as an artifact.
bench-wire:
	$(GO) test -run 'Alloc' -count=1 ./internal/wire/ ./internal/transport/
	$(GO) test -run NONE -bench 'BenchmarkWire(Encode|Decode)' -benchmem ./internal/wire/
	$(GO) test -run NONE -bench BenchmarkMeshThroughput -benchmem ./internal/transport/
	$(GO) run ./cmd/experiments -quick -json .

# bench-durability is the stable-storage perf gate: the group-commit and
# crash-point unit tests (the fsyncs/finalize < 0.5 assert lives in
# TestGroupCommitAmortizesFsyncs), then the sustained-write experiments
# D1 (finalizes/sec, fsyncs/finalize by batch depth) and D2
# (recovery-replay time vs log length, incremental asserted
# byte-identical to full-snapshot recovery), which write the
# BENCH_<date>.json headline; CI uploads the JSON as an artifact.
bench-durability:
	$(GO) test -run 'TestGroupCommit|TestCrashPointMatrix|TestIncrementalChain' -count=1 -v ./internal/fsstore/
	$(GO) test -run NONE -bench 'BenchmarkD(1|2)' ./
	$(GO) run ./cmd/experiments -quick -id D1,D2 -json .
