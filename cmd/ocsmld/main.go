// Command ocsmld runs the OCSML protocol over a real network: actual
// TCP connections between processes, the wire codec on every envelope,
// and (with -datadir) checkpoints fsync'd to real files.
//
// Two modes:
//
//	ocsmld -spawn-all -n 4 -datadir /tmp/ocsml        # whole cluster, one command
//	ocsmld -id 0 -peers host0:7000,host1:7000,...     # one process of a cluster
//
// Spawn-all launches an N-process cluster on localhost, runs the
// workload to completion and prints the same headline metrics as the
// simulator (cmd/ckptsim) plus the wire-level ones only a real network
// produces (frames, encoded piggyback bytes, reconnects).
//
// Daemon mode hosts a single process; start one ocsmld per entry in
// -peers (the -id'th address is bound locally). A killed daemon is
// restarted with -recover: before resuming it coordinates a wire-level
// recovery round (RB_BGN/RB_LINE/RB_CMT/RB_ACK, see DESIGN.md) that
// agrees the recovery line with the surviving daemons, rolls them back,
// and fences the pre-crash epoch; its own state is then reloaded from
// the -datadir manifest at the agreed line. -resume <seq> remains as
// the manual override when the line is known out of band.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"ocsml/internal/admin"
	"ocsml/internal/checkpoint"
	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/fsstore"
	"ocsml/internal/metrics"
	"ocsml/internal/protocol"
	"ocsml/internal/reliable"
	"ocsml/internal/trace"
	"ocsml/internal/transport"
	"ocsml/internal/workload"
)

var patterns = map[string]workload.Pattern{
	"uniform":       workload.UniformRandom,
	"ring":          workload.Ring,
	"client-server": workload.ClientServer,
	"mesh":          workload.Mesh,
	"bursty":        workload.Bursty,
	"stencil":       workload.BSPStencil,
}

func main() {
	var (
		spawnAll  = flag.Bool("spawn-all", false, "launch an N-process localhost cluster in this one command")
		n         = flag.Int("n", 4, "cluster size (spawn-all)")
		id        = flag.Int("id", -1, "this process's id (daemon mode)")
		peers     = flag.String("peers", "", "comma-separated host:port list, one per process; entry -id is bound locally")
		proto     = flag.String("proto", "ocsml", "protocol (the network runtime hosts ocsml)")
		datadir   = flag.String("datadir", "", "directory for file-backed stable storage (enables restart)")
		resume    = flag.Int("resume", -1, "restart from this finalized checkpoint seq (daemon mode; needs -datadir)")
		recoverF  = flag.Bool("recover", false, "coordinate a wire-level recovery round with the surviving peers before resuming (daemon mode; needs -datadir; overrides -resume)")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		steps     = flag.Int64("steps", 400, "work steps per process")
		think     = flag.Duration("think", 4*time.Millisecond, "mean computation per step (real time)")
		pattern   = flag.String("pattern", "uniform", "workload: uniform|ring|client-server|mesh|bursty|stencil")
		msgBytes  = flag.Int64("msg", 2<<10, "application message payload bytes")
		interval  = flag.Duration("interval", 500*time.Millisecond, "checkpoint period (real time)")
		timeout   = flag.Duration("timeout", 150*time.Millisecond, "convergence timeout (real time)")
		bw        = flag.Int64("bw", 64<<20, "modeled stable-storage bandwidth, bytes/sec (0 = no modeled delay)")
		runFor    = flag.Duration("run-for", 60*time.Second, "overall deadline")
		drain     = flag.Duration("drain", 750*time.Millisecond, "settle time after the workload completes")
		reliableF = flag.Bool("reliable", true, "ack/retransmit middleware (covers frames lost to reconnects)")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		chaos     = flag.Bool("chaos", false, "run one seeded fault-injection round (drops, delays, partitions, kill+restart) and verify the consistency invariants")
		chaosFor  = flag.Duration("chaos-for", 1500*time.Millisecond, "fault-phase length for -chaos")
		adminAddr = flag.String("admin-addr", "", "listen address for the admin control plane (status/manifest/recovery/checkpoint/metrics; see cmd/ocsmlctl)")
		gcEvery   = flag.Duration("gc-interval", 0, "storage GC period: prune finalized checkpoints below the globally durable S_k watermark (needs -datadir; 0 disables)")
		groupWin  = flag.Duration("group-window", 0, "group-commit flush window: how long a finalize lingers for batch-mates before forcing its fsync (0 = flush immediately)")
	)
	flag.Parse()

	if *proto != "ocsml" {
		fatalf("the network runtime hosts the ocsml protocol (got %q); baselines run under cmd/ckptsim", *proto)
	}
	pat, ok := patterns[*pattern]
	if !ok {
		fatalf("unknown pattern %q", *pattern)
	}
	opt := core.DefaultOptions()
	opt.Interval = des.Duration(*interval)
	opt.Timeout = des.Duration(*timeout)
	wl := workload.Config{Pattern: pat, Steps: *steps, Think: des.Duration(*think), MsgBytes: *msgBytes}

	if *chaos {
		runChaos(*n, *seed, *datadir, *chaosFor, *jsonOut)
		return
	}
	if *spawnAll {
		runCluster(*n, *seed, *datadir, opt, wl, *bw, *reliableF, *runFor, *drain, *jsonOut, *adminAddr, *gcEvery, *groupWin)
		return
	}
	runDaemon(*id, *peers, *datadir, *resume, *recoverF, *seed, opt, wl, *bw, *reliableF, *runFor, *drain, *jsonOut, *adminAddr, *gcEvery, *groupWin)
}

// runChaos is -chaos: one seeded fault-injection round against a live
// localhost TCP cluster. Everything printed to stdout is a pure function
// of (-n, -seed, -chaos-for), so two runs with the same flags emit
// byte-identical schedules and invariant reports; timing-dependent fault
// counters go to stderr.
func runChaos(n int, seed int64, datadir string, faultFor time.Duration, jsonOut bool) {
	if datadir == "" {
		tmp, err := os.MkdirTemp("", "ocsml-chaos-*")
		if err != nil {
			fatalf("%v", err)
		}
		defer os.RemoveAll(tmp)
		datadir = tmp
	}
	cfg := transport.DefaultChaosConfig(n, seed, datadir, faultFor)
	rep, err := transport.RunChaos(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "ocsmld: faults dropped=%d partitioned=%d dup=%d delayed=%d reordered=%d passed=%d\n",
		rep.FaultStats.Dropped, rep.FaultStats.Partitioned, rep.FaultStats.Duplicated,
		rep.FaultStats.Delayed, rep.FaultStats.Reordered, rep.FaultStats.Passed)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("%v", err)
		}
	} else {
		fmt.Print(rep.Render())
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

// runCluster is -spawn-all: the whole cluster in one OS process, nodes
// talking over real localhost TCP.
func runCluster(n int, seed int64, datadir string, opt core.Options, wl workload.Config,
	bw int64, rel bool, runFor, drain time.Duration, jsonOut bool, adminAddr string,
	gcEvery, groupWin time.Duration) {
	fsOpts := fsstore.DefaultOptions()
	fsOpts.GroupWindow = groupWin
	c, err := transport.NewCluster(transport.ClusterConfig{
		N: n, Seed: seed, Datadir: datadir, Opt: opt, Reliable: rel,
		Workload: wl, WriteBandwidth: bw, Timeout: runFor, Drain: drain,
		FSOptions: fsOpts, GCInterval: gcEvery,
	})
	if err != nil {
		fatalf("%v", err)
	}
	// The admin server drains before the mesh closes (RunThen's
	// pre-stop hook), so an in-flight status read never races a dying
	// node.
	var beforeStop func()
	if adminAddr != "" {
		srv := admin.NewServer(admin.Config{
			Nodes: c.Nodes, Registry: c.Metrics, Datadir: datadir, N: n,
		})
		if err := srv.Start(adminAddr); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ocsmld: admin control plane on %s\n", srv.Addr())
		beforeStop = func() { srv.Close() }
	}
	if err := c.RunThen(beforeStop); err != nil {
		fatalf("%v", err)
	}
	rep, err := c.Report()
	if err != nil {
		fatalf("consistency check failed: %v", err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("protocol            ocsml (tcp mesh)\n")
	fmt.Printf("processes           %d\n", rep.N)
	fmt.Printf("completed           %v\n", rep.Completed)
	fmt.Printf("makespan            %.3fs\n", rep.Makespan.Seconds())
	fmt.Printf("app messages        %d\n", rep.AppMessages)
	fmt.Printf("control messages    %d\n", rep.ControlMessages)
	fmt.Printf("piggyback bytes     %d (%.1f bytes/msg on the wire)\n", rep.PiggybackBytes, rep.PiggybackBytesPerMsg)
	fmt.Printf("global checkpoints  %d\n", rep.GlobalCheckpoints)
	fmt.Printf("consistency         OK (%d global checkpoints verified)\n", len(rep.ConsistentSeqs))
	fmt.Printf("frames sent         %d (%d bytes)\n", rep.FramesSent, rep.FrameBytes)
	fmt.Printf("reconnects          %d\n", rep.Reconnects)
	fmt.Printf("frames dropped      %d\n", rep.Dropped)
	fmt.Printf("message log bytes   %d\n", rep.LogBytes)
	if datadir != "" {
		last, err := fsstore.LastCompleteSeq(datadir, rep.N)
		if err != nil {
			fatalf("manifest check: %v", err)
		}
		fmt.Printf("durable S_k         %d (all %d manifests)\n", last, rep.N)
	}
	names := make([]string, 0, len(rep.Counters))
	for name := range rep.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-24s %d\n", name, rep.Counters[name])
	}
}

// runDaemon hosts one process of a cluster whose other members are
// separate ocsmld invocations (possibly on other machines).
func runDaemon(id int, peerList, datadir string, resume int, recoverFlag bool, seed int64, opt core.Options,
	wl workload.Config, bw int64, rel bool, runFor, drain time.Duration, jsonOut bool, adminAddr string,
	gcEvery, groupWin time.Duration) {
	if peerList == "" {
		fatalf("daemon mode needs -peers (or use -spawn-all)")
	}
	addrs := strings.Split(peerList, ",")
	n := len(addrs)
	if id < 0 || id >= n {
		fatalf("-id %d out of range for %d peers", id, n)
	}
	if n < 2 {
		fatalf("need at least 2 peers")
	}
	// Local (per-daemon) recorder, checkpoint store and metric registry:
	// in daemon mode every process observes only itself. The free-form
	// counter namespace lands in the registry's events family, which the
	// admin server's /metrics and the exit report both read.
	rec := trace.NewRecorder()
	ckpts := checkpoint.NewStore(n)
	reg := metrics.NewRegistry()
	count := reg.EventSink()

	var fs *fsstore.Store
	var err error
	if datadir != "" {
		fsOpts := fsstore.DefaultOptions()
		fsOpts.GroupWindow = groupWin
		if fs, err = fsstore.OpenWith(datadir, id, n, fsOpts); err != nil {
			fatalf("%v", err)
		}
		fs.SetMetrics(fsstore.NewStoreMetrics(reg, id))
	}

	epoch := 0
	if recoverFlag {
		// Restart after a crash: before resuming, run the wire-level
		// recovery handshake from this process's own address — survivors
		// report their durable manifests, the line is agreed as the
		// highest fully-durable seq, they roll back, and the committed
		// epoch fences all pre-crash traffic.
		if fs == nil {
			fatalf("-recover needs -datadir")
		}
		ln, err := net.Listen("tcp", addrs[id])
		if err != nil {
			fatalf("binding %s: %v", addrs[id], err)
		}
		dec, err := transport.Coordinate(transport.CoordinatorConfig{
			ID: id, Addrs: addrs, Seed: seed,
			Seqs: fs.Manifest().Seqs, Count: count,
		}, ln) // closes ln, so the node below can rebind
		if err != nil {
			fatalf("recovery coordination: %v", err)
		}
		fmt.Fprintf(os.Stderr, "ocsmld: P%d recovery committed line %d epoch %d\n", id, dec.Line, dec.Epoch)
		resume = dec.Line
		epoch = dec.Epoch
	}

	var resumeRec *checkpoint.Record
	if resume >= 0 {
		if fs == nil {
			fatalf("-resume needs -datadir")
		}
		if err := fs.TruncateAfter(resume); err != nil {
			fatalf("truncating above the recovery line: %v", err)
		}
		man := fs.Manifest()
		sort.Ints(man.Seqs)
		for _, seq := range man.Seqs {
			r, err := fs.Load(seq)
			if err != nil {
				fatalf("loading durable checkpoint %d: %v", seq, err)
			}
			ckpts.Proc(id).Add(r)
			if seq == resume {
				cp := r
				resumeRec = &cp
			}
		}
		if resumeRec == nil && resume > 0 {
			fatalf("no durable checkpoint at recovery line %d", resume)
		}
		if resumeRec == nil { // line 0: initial state
			resumeRec = &checkpoint.Record{}
		}
	}

	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		fatalf("binding %s: %v", addrs[id], err)
	}
	var pr protocol.Protocol
	cp := core.New(opt)
	if resume >= 0 {
		cp.SetResume(resume)
	}
	pr = cp
	if rel {
		pr = reliable.Wrap(cp, reliable.Options{})
	}
	doneCh := make(chan struct{}, 1)
	node, err := transport.NewNode(transport.NodeConfig{
		ID: id, N: n, Addrs: addrs, Listener: ln,
		Seed: seed, Epoch: epoch, Resume: resume, ResumeRec: resumeRec,
		Proto: pr, App: workload.Factory(wl)(id, n),
		Rec: rec, Ckpts: ckpts, Count: count, Metrics: reg,
		FS: fs, WriteBandwidth: bw,
		OnDone: func(int) {
			select {
			case doneCh <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		fatalf("%v", err)
	}
	node.Start()
	fmt.Fprintf(os.Stderr, "ocsmld: P%d listening on %s (n=%d, resume=%d)\n", id, addrs[id], n, resume)

	// The control plane comes up after the node so /v1/readyz never
	// answers 200 for a process whose mesh is not yet serving.
	var srv *admin.Server
	if adminAddr != "" {
		srv = admin.NewServer(admin.Config{
			Nodes:    func() []*transport.Node { return []*transport.Node{node} },
			Registry: reg, Datadir: datadir, N: n,
		})
		if err := srv.Start(adminAddr); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ocsmld: P%d admin control plane on %s\n", id, srv.Addr())
	}

	// Daemon-mode GC: the datadir is shared, so the globally durable
	// line S_k is readable here too — the intersection of every
	// process's manifest. Each tick prunes this process's own store
	// below it; peers never touch each other's directories.
	gcQuit := make(chan struct{})
	var gcWG sync.WaitGroup
	if fs != nil && gcEvery > 0 {
		gcWG.Add(1)
		go func() {
			defer gcWG.Done()
			tick := time.NewTicker(gcEvery)
			defer tick.Stop()
			for {
				select {
				case <-gcQuit:
					return
				case <-tick.C:
				}
				wm, err := fsstore.LastCompleteSeq(datadir, n)
				if err != nil || wm <= 0 {
					continue // a peer's manifest is missing or torn; retry next tick
				}
				if err := fs.GCTo(wm); err != nil {
					count("fsstore.gc_errors", 1)
					continue
				}
				count("fsstore.gc_sweeps", 1)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	completed := false
	select {
	case <-doneCh:
		completed = true
		// Stay up through the drain so peers can finish their own quotas
		// and the last checkpoint round can finalize everywhere.
		select {
		case <-time.After(drain):
		case <-sig:
		}
	case <-sig:
	case <-time.After(runFor):
	}
	// Graceful stop, in dependency order: stop admitting control-plane
	// requests, let queued stable-storage writes reach the disk, then
	// close the mesh. A SIGTERM therefore never abandons an in-flight
	// finalization the manifest was about to record.
	close(gcQuit)
	gcWG.Wait()
	if srv != nil {
		//ocsml:errsink shutdown path; a failed drain still force-closes the listener
		srv.Close()
	}
	if !node.WaitStorageIdle(2 * time.Second) {
		fmt.Fprintf(os.Stderr, "ocsmld: P%d storage queue did not drain; closing anyway\n", id)
	}
	node.Close()

	type daemonReport struct {
		ID             int
		Completed      bool
		FinalizedSeqs  []int
		DurableLastSeq int
		Mesh           transport.MeshStats
		StaleDropped   int64
		DecodeErrors   int64
		Counters       map[string]int64
	}
	dr := daemonReport{
		ID: id, Completed: completed,
		Mesh:           node.Mesh().Stats(),
		StaleDropped:   node.StaleDropped(),
		DecodeErrors:   node.DecodeErrors(),
		Counters:       reg.EventCounts(),
		DurableLastSeq: -1,
	}
	for _, r := range ckpts.Proc(id).All() {
		if r.Seq > 0 && r.FinalizedAt != 0 {
			dr.FinalizedSeqs = append(dr.FinalizedSeqs, r.Seq)
		}
	}
	if fs != nil {
		dr.DurableLastSeq = fs.LastSeq()
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(dr); err != nil {
			fatalf("%v", err)
		}
		return
	}
	fmt.Printf("process             P%d\n", dr.ID)
	fmt.Printf("completed           %v\n", dr.Completed)
	fmt.Printf("finalized seqs      %v\n", dr.FinalizedSeqs)
	fmt.Printf("durable last seq    %d\n", dr.DurableLastSeq)
	fmt.Printf("frames sent/recv    %d/%d\n", dr.Mesh.FramesSent, dr.Mesh.FramesRecv)
	fmt.Printf("bytes sent/recv     %d/%d\n", dr.Mesh.BytesSent, dr.Mesh.BytesRecv)
	fmt.Printf("reconnects          %d\n", dr.Mesh.Reconnects)
	fmt.Printf("stale dropped       %d\n", dr.StaleDropped)
	names := make([]string, 0, len(dr.Counters))
	for name := range dr.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-24s %d\n", name, dr.Counters[name])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ocsmld: "+format+"\n", args...)
	os.Exit(1)
}
