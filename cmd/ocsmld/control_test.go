package main

// Control-plane integration test: three real ocsmld daemons on
// localhost TCP, each with -admin-addr, driven end to end by the real
// ocsmlctl binary — trigger a checkpoint round through the admin API,
// poll status until it finalizes everywhere, scrape /metrics and assert
// the cross-package series are present, then SIGTERM the daemons and
// require clean (exit 0) shutdowns through the graceful-stop path.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildOcsmlctl(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ocsmlctl")
	cmd := exec.Command("go", "build", "-o", bin, "ocsml/cmd/ocsmlctl")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ocsmlctl: %v\n%s", err, out)
	}
	return bin
}

// ctlJSON runs ocsmlctl -json <cmd> against one daemon and decodes the
// response into out; returns the raw output for error reporting.
func ctlJSON(t *testing.T, bin, addr, command string, out any) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, "-node", addr, "-json", "-timeout", "5s", command)
	raw, err := cmd.Output()
	if err != nil {
		var stderr string
		if ee, ok := err.(*exec.ExitError); ok {
			stderr = string(ee.Stderr)
		}
		return string(raw), fmt.Errorf("ocsmlctl %s: %v\n%s", command, err, stderr)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return string(raw), fmt.Errorf("ocsmlctl %s: decoding: %v", command, err)
		}
	}
	return string(raw), nil
}

func TestDaemonControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real OS processes")
	}
	daemon := buildOcsmld(t)
	ctl := buildOcsmlctl(t)
	datadir := t.TempDir()
	const n = 3
	meshAddrs := freeAddrs(t, n)
	adminAddrs := freeAddrs(t, n)
	peers := strings.Join(meshAddrs, ",")

	// An hour-long checkpoint interval: the only rounds this cluster
	// runs are the ones ocsmlctl triggers, so every manifest entry below
	// is attributable to the admin API.
	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(daemon,
			"-id", fmt.Sprint(i), "-peers", peers, "-datadir", datadir,
			"-admin-addr", adminAddrs[i],
			"-seed", "23", "-steps", "1000000", // effectively endless
			"-interval", "1h", "-timeout", "60ms",
			"-run-for", "120s",
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting P%d: %v", i, err)
		}
		procs[i] = cmd
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	// Wait for every daemon's control plane to come up and report ready.
	type statusResp struct {
		Nodes []struct {
			Status *struct {
				ID         int `json:"id"`
				Csn        int `json:"csn"`
				DurableSeq int `json:"durableSeq"`
				Peers      []struct {
					Connected bool `json:"connected"`
				} `json:"peers"`
			} `json:"status"`
			Error string `json:"error"`
		} `json:"nodes"`
	}
	waitStatus := func(addr string, ok func(statusResp) bool, what string, timeout time.Duration) statusResp {
		t.Helper()
		deadline := time.Now().Add(timeout)
		var last string
		for {
			var st statusResp
			raw, err := ctlJSON(t, ctl, addr, "status", &st)
			if err == nil && ok(st) {
				return st
			}
			last = raw
			if err != nil {
				last = err.Error()
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s did not hold within %v on %s; last: %s", what, timeout, addr, last)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	for _, addr := range adminAddrs {
		waitStatus(addr, func(st statusResp) bool {
			return len(st.Nodes) == 1 && st.Nodes[0].Error == "" && st.Nodes[0].Status != nil
		}, "admin status", 20*time.Second)
	}

	// Trigger the round on P0's control plane: the CK_BGN fans out over
	// the mesh, so one trigger checkpoints the whole cluster.
	var ck struct {
		Triggered []struct {
			ID    int    `json:"id"`
			Csn   int    `json:"csn"`
			Error string `json:"error"`
		} `json:"triggered"`
	}
	if raw, err := ctlJSON(t, ctl, adminAddrs[0], "checkpoint", &ck); err != nil {
		t.Fatalf("%v\n%s", err, raw)
	}
	if len(ck.Triggered) != 1 || ck.Triggered[0].Error != "" || ck.Triggered[0].Csn < 1 {
		t.Fatalf("checkpoint trigger: %+v", ck)
	}

	// Poll every daemon's status until the round is durable everywhere.
	for _, addr := range adminAddrs {
		waitStatus(addr, func(st statusResp) bool {
			return len(st.Nodes) == 1 && st.Nodes[0].Status != nil && st.Nodes[0].Status.DurableSeq >= 1
		}, "triggered round durable", 30*time.Second)
	}

	// The manifest view agrees: all three manifests carry seq 1.
	var man struct {
		LastComplete int `json:"lastComplete"`
	}
	if raw, err := ctlJSON(t, ctl, adminAddrs[0], "manifest", &man); err != nil {
		t.Fatalf("%v\n%s", err, raw)
	} else if man.LastComplete < 1 {
		t.Fatalf("lastComplete = %d, want >= 1\n%s", man.LastComplete, raw)
	}

	// Scrape each daemon's /metrics: series registered by transport,
	// core, fsstore and admin must all be present.
	for i, addr := range adminAddrs {
		out, err := exec.Command(ctl, "-node", addr, "metrics").Output()
		if err != nil {
			t.Fatalf("metrics scrape on P%d: %v", i, err)
		}
		text := string(out)
		for _, want := range []string{
			fmt.Sprintf(`ocsml_ckpt_finalized_total{proc="%d"}`, i), // internal/core
			"ocsml_wire_app_frames_total",                           // internal/transport
			"ocsml_fsstore_finalized_total",                         // internal/fsstore
			"ocsml_admin_requests_total",                            // internal/admin
			"ocsml_events_total",                                    // free-form namespace
		} {
			if !strings.Contains(text, want) {
				t.Fatalf("P%d metrics missing %q:\n%s", i, want, text)
			}
		}
	}

	// Graceful shutdown: SIGTERM routes through admin drain + storage
	// drain; every daemon must exit 0.
	for i, p := range procs {
		if err := p.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("terminating P%d: %v", i, err)
		}
	}
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			t.Fatalf("P%d exit: %v", i, err)
		}
		procs[i] = nil
	}
}
