package main

import (
	"testing"

	"ocsml/internal/leakcheck"
)

// TestMain fails the daemon's test binary when a test run leaves a
// goroutine behind — daemon teardown must be complete.
func TestMain(m *testing.M) { leakcheck.Main(m) }
