package main

// Multi-OS-process recovery integration test: three real ocsmld daemons
// on localhost TCP, one SIGKILLed mid-run and restarted with -recover.
// The restarted daemon must drive the wire-level recovery handshake to
// completion and the cluster must then finalize new global checkpoints
// past the agreed line.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"ocsml/internal/checkpoint"
	"ocsml/internal/fsstore"
)

// freeAddrs reserves n distinct localhost ports by binding and closing
// listeners. The window between Close and the daemons' rebind is racy in
// principle, but ephemeral-port reuse on loopback makes it reliable in
// practice.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func buildOcsmld(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ocsmld")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestDaemonClusterRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real OS processes")
	}
	bin := buildOcsmld(t)
	datadir := t.TempDir()
	const n = 3
	addrs := freeAddrs(t, n)
	peers := addrs[0] + "," + addrs[1] + "," + addrs[2]

	spawn := func(id int, extra ...string) *exec.Cmd {
		args := append([]string{
			"-id", fmt.Sprint(id), "-peers", peers, "-datadir", datadir,
			"-seed", "17", "-steps", "1000000", // effectively endless
			"-interval", "150ms", "-timeout", "60ms",
			"-run-for", "120s",
		}, extra...)
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting P%d: %v", id, err)
		}
		return cmd
	}
	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		procs[i] = spawn(i)
	}
	defer func() {
		for _, p := range procs {
			if p != nil && p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()

	// fsstore.LastCompleteSeq reads manifests only — safe to poll a
	// datadir with live writers.
	waitLine := func(want int, timeout time.Duration) int {
		deadline := time.Now().Add(timeout)
		for {
			line, err := fsstore.LastCompleteSeq(datadir, n)
			if err == nil && line >= want {
				return line
			}
			if time.Now().After(deadline) {
				t.Fatalf("durable line %d (err=%v), want >= %d within %v", line, err, want, timeout)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	waitLine(2, 45*time.Second)

	// Crash P1 hard: no cleanup, no goodbye — only its datadir survives.
	const victim = 1
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	procs[victim].Wait()
	procs[victim] = nil
	time.Sleep(100 * time.Millisecond) // let in-flight traffic hit the dead socket

	line, err := fsstore.LastCompleteSeq(datadir, n)
	if err != nil {
		t.Fatal(err)
	}

	// Restart the victim with -recover: it coordinates the handshake,
	// the survivors roll back, and the cluster must advance past the
	// line again.
	procs[victim] = spawn(victim, "-recover")
	waitLine(line+1, 45*time.Second)

	// Graceful shutdown: every daemon exits 0 on SIGTERM.
	for i, p := range procs {
		if err := p.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatalf("terminating P%d: %v", i, err)
		}
	}
	for i, p := range procs {
		if err := p.Wait(); err != nil {
			t.Fatalf("P%d exit: %v", i, err)
		}
		procs[i] = nil
	}

	// Every durable record replay-validates after the whole episode:
	// folding the logged messages over the restored state reproduces the
	// fold recorded at finalization.
	st, err := fsstore.RecoverStore(datadir, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.MaxCompleteSeq(); got < line+1 {
		t.Fatalf("recovered MaxCompleteSeq = %d, want >= %d", got, line+1)
	}
	for p := 0; p < n; p++ {
		for _, r := range st.Proc(p).All() {
			if got := checkpoint.FoldLog(r.Fold, r.Log); got != r.CFEFold {
				t.Fatalf("P%d seq %d: replay fold %#x != CFE fold %#x", p, r.Seq, got, r.CFEFold)
			}
		}
	}
}
