// Command tracecheck verifies the consistency of the global checkpoints
// recorded in a trace file (JSON Lines, as written by ckptsim -trace-out
// or by the model checker cmd/ocsmlcheck).
//
// For every checkpoint sequence number that has a cut event on all N
// processes, it reports whether the cut is consistent (no orphan
// messages) and how many messages were in flight across it. Two further
// offline checks are opt-in:
//
//	-replay  selective-logging sufficiency: every message sent or
//	         received inside a finalized tentative interval must have a
//	         matching log-send/log-recv event (requires a trace with log
//	         events, e.g. a counterexample from cmd/ocsmlcheck)
//	-zcycle  Z-cycle freedom: the rollback-dependency graph over
//	         checkpoint intervals must be acyclic (Netzer–Xu)
//
// Usage:
//
//	ckptsim -proto ocsml -n 6 -steps 500 -trace-out run.jsonl
//	tracecheck -n 6 run.jsonl
//	ocsmlcheck -out traces
//	tracecheck -n 2 -replay -zcycle traces/cex-drop-log.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"ocsml/internal/trace"
)

func main() {
	var (
		n      = flag.Int("n", 0, "number of processes (required)")
		kind   = flag.String("kind", "auto", "cut event kind: finalize|checkpoint|auto")
		replay = flag.Bool("replay", false, "check selective-logging replay sufficiency (needs log events in the trace)")
		zcycle = flag.Bool("zcycle", false, "check the rollback-dependency graph for Z-cycles")
	)
	flag.Parse()
	if *n < 2 || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck -n <procs> [-replay] [-zcycle] <trace.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := trace.ReadJSON(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%d events, %s\n", len(events), trace.Summarize(events))

	cutKind := trace.KFinalize
	switch *kind {
	case "finalize":
	case "checkpoint":
		cutKind = trace.KCheckpoint
	case "auto":
		fin := 0
		for _, e := range events {
			if e.Kind == trace.KFinalize {
				fin++
			}
		}
		if fin == 0 {
			cutKind = trace.KCheckpoint
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -kind %q\n", *kind)
		os.Exit(2)
	}

	// Collect candidate sequence numbers.
	seqSet := map[int]bool{}
	for _, e := range events {
		if (e.Kind == cutKind || (cutKind == trace.KCheckpoint && e.Kind == trace.KForced)) && e.Seq > 0 {
			seqSet[e.Seq] = true
		}
	}
	if len(seqSet) == 0 {
		fmt.Println("no checkpoint cut events in trace")
		os.Exit(1)
	}
	maxSeq := 0
	for s := range seqSet {
		if s > maxSeq {
			maxSeq = s
		}
	}

	// A throwaway recorder re-hosting the events gives us CutAt.
	rec := trace.NewRecorder()
	for _, e := range events {
		rec.Record(trace.Event{
			T: e.T, Kind: e.Kind, Proc: e.Proc, Peer: e.Peer,
			MsgID: e.MsgID, Seq: e.Seq, Tag: e.Tag,
		})
	}

	bad := 0
	for seq := 1; seq <= maxSeq; seq++ {
		if !seqSet[seq] {
			continue
		}
		cut, ok := rec.CutAt(*n, cutKind, seq)
		if !ok {
			fmt.Printf("S_%-3d incomplete (missing cut events on some processes)\n", seq)
			continue
		}
		rep := rec.CheckCut(cut)
		if rep.Consistent() {
			fmt.Printf("S_%-3d consistent   in-flight=%d\n", seq, len(rep.InFlight))
		} else {
			bad++
			fmt.Printf("S_%-3d INCONSISTENT orphans=%d in-flight=%d\n",
				seq, len(rep.Orphans), len(rep.InFlight))
			for _, o := range rep.Orphans {
				fmt.Printf("      orphan msg %d: P%d -> P%d\n", o.MsgID, o.Src, o.Dst)
			}
		}
	}

	if *replay {
		gaps := trace.CheckReplay(events)
		if len(gaps) == 0 {
			fmt.Println("replay: selective log covers every finalized tentative interval")
		} else {
			bad++
			fmt.Printf("replay: %d GAP(S) — the selective log cannot replay the interval exactly once\n", len(gaps))
			for _, g := range gaps {
				fmt.Printf("      %s\n", g)
			}
		}
	}

	if *zcycle {
		if cyc := trace.ZCycles(events, cutKind); cyc == nil {
			fmt.Println("zcycle: rollback-dependency graph is acyclic")
		} else {
			bad++
			fmt.Printf("zcycle: Z-CYCLE through checkpoint intervals:")
			for i, iv := range cyc {
				if i > 0 {
					fmt.Print(" ->")
				}
				fmt.Printf(" %s", iv)
			}
			fmt.Println()
		}
	}

	if bad > 0 {
		os.Exit(1)
	}
}
