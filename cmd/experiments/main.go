// Command experiments regenerates the evaluation suite: one table per
// experiment (E1–E8 reconstruct the performance evaluation the paper
// describes; A1–A3 are optimization ablations). See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	experiments                  # run everything at full scale
//	experiments -quick           # small sweeps (seconds)
//	experiments -id E1,E3        # a subset
//	experiments -o results.txt   # also write to a file
//	experiments -quick -json .   # record headline metrics in BENCH_<date>.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ocsml/internal/harness"
)

func main() {
	var (
		ids    = flag.String("id", "all", "comma-separated experiment ids, or 'all'")
		quick  = flag.Bool("quick", false, "small sweeps for a fast pass")
		out    = flag.String("o", "", "also write results to this file")
		csvDir = flag.String("csv", "", "write one CSV file per experiment into this directory")
		bench  = flag.String("json", "", "write headline metrics as BENCH_<date>.json into this directory ('.' for cwd)")
	)
	flag.Parse()

	var selected []harness.Experiment
	if *ids == "all" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %v)\n", id, harness.IDs())
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	scale := harness.Scale{Quick: *quick}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "OCSML evaluation suite — %d experiment(s), %s scale\n\n", len(selected), mode)
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	type benchEntry struct {
		ID       string  `json:"id"`
		Title    string  `json:"title"`
		Metric   string  `json:"metric"`
		Value    float64 `json:"value"`
		ElapsedS float64 `json:"elapsed_s"`
	}
	var benches []benchEntry
	for _, e := range selected {
		start := time.Now() //ocsml:wallclock benchmark timing, reported not simulated
		tab := e.Execute(scale)
		elapsed := time.Since(start) //ocsml:wallclock benchmark timing, reported not simulated
		fmt.Fprint(w, tab.Render())
		fmt.Fprintf(w, "(%.1fs)\n\n", elapsed.Seconds())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, tab.ID+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *bench != "" {
			entry := benchEntry{ID: tab.ID, Title: tab.Title, ElapsedS: elapsed.Seconds()}
			if name, v, ok := harness.Headline(tab); ok {
				entry.Metric, entry.Value = name, v
			}
			benches = append(benches, entry)
		}
	}
	if *bench != "" {
		doc := struct {
			Date    string       `json:"date"`
			Scale   string       `json:"scale"`
			Results []benchEntry `json:"results"`
		}{ //ocsml:wallclock bench report date stamp
			Date: time.Now().Format("2006-01-02"), Scale: mode, Results: benches}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*bench, "BENCH_"+doc.Date+".json")
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "bench metrics written to %s\n", path)
	}
}
