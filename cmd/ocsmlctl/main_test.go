package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ocsml/internal/admin"
	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/transport"
	"ocsml/internal/workload"
)

// startCluster stands up an in-process 3-node cluster with an admin
// server, returning the admin address the CLI should dial.
func startCluster(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	c, err := transport.NewCluster(transport.ClusterConfig{
		N:       3,
		Seed:    5,
		Datadir: dir,
		Opt: core.Options{
			Interval: des.Duration(time.Hour), // CLI-triggered rounds only
			Timeout:  60 * des.Duration(time.Millisecond),
			SkipREQ:  true,
		},
		Reliable: true,
		Workload: workload.Config{
			Pattern:  workload.UniformRandom,
			Steps:    1 << 30,
			Think:    2 * des.Duration(time.Millisecond),
			MsgBytes: 128,
		},
		WriteBandwidth: 64 << 20,
		Timeout:        time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := admin.NewServer(admin.Config{
		Nodes: c.Nodes, Registry: c.Metrics, Datadir: dir, N: 3,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() {
		srv.Close()
		c.Stop()
	})
	return srv.Addr()
}

// runCtl invokes the CLI's run with captured output.
func runCtl(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestStatusHuman(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	addr := startCluster(t)
	code, out, errb := runCtl(t, "-node", addr, "status")
	if code != 0 {
		t.Fatalf("status exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"ID", "EPOCH", "P0", "P1", "P2", "2/2 up"} {
		if !strings.Contains(out, want) {
			t.Fatalf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestStatusJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	addr := startCluster(t)
	code, out, errb := runCtl(t, "-node", addr, "-json", "status")
	if code != 0 {
		t.Fatalf("status exit %d, stderr: %s", code, errb)
	}
	var resp struct {
		Nodes []struct {
			Status *nodeStatus `json:"status"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, out)
	}
	if len(resp.Nodes) != 3 {
		t.Fatalf("%d nodes, want 3", len(resp.Nodes))
	}
}

// TestCheckpointManifestRecoveryMetrics drives the full operator loop
// the README documents: trigger a round, wait for it to reach the
// manifests, read recovery state and scrape metrics.
func TestCheckpointManifestRecoveryMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	addr := startCluster(t)

	code, out, errb := runCtl(t, "-node", addr, "checkpoint")
	if code != 0 {
		t.Fatalf("checkpoint exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "triggered") {
		t.Fatalf("checkpoint output:\n%s", out)
	}

	deadline := time.Now().Add(15 * time.Second) //ocsml:wallclock test poll deadline
	for {
		code, out, _ = runCtl(t, "-node", addr, "manifest")
		if code == 0 && strings.Contains(out, "last complete  1") {
			break
		}
		if time.Now().After(deadline) { //ocsml:wallclock test poll deadline
			t.Fatalf("round never reached the manifests:\n%s", out)
		}
		time.Sleep(50 * time.Millisecond)
	}

	code, out, errb = runCtl(t, "-node", addr, "recovery")
	if code != 0 {
		t.Fatalf("recovery exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "last line  -1") {
		t.Fatalf("recovery output (no rollback expected):\n%s", out)
	}

	code, out, errb = runCtl(t, "-node", addr, "metrics")
	if code != 0 {
		t.Fatalf("metrics exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"# TYPE ocsml_ckpt_finalized_total counter",
		"ocsml_admin_requests_total",
		"ocsml_wire_app_frames_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, out)
		}
	}
}

func TestUnreachableNodeExitsOne(t *testing.T) {
	code, _, errb := runCtl(t, "-node", "127.0.0.1:1", "-timeout", "500ms", "status")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb)
	}
	if errb == "" {
		t.Fatal("no error message for unreachable node")
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCtl(t); code != 2 {
		t.Fatalf("no command: exit %d, want 2", code)
	}
	if code, _, errb := runCtl(t, "frobnicate"); code != 2 || !strings.Contains(errb, "unknown command") {
		t.Fatalf("unknown command: exit %d stderr %q, want 2", code, errb)
	}
	if code, _, _ := runCtl(t, "-bogus-flag", "status"); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
