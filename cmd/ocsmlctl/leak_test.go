package main

import (
	"testing"

	"ocsml/internal/leakcheck"
)

// TestMain fails the binary if any goroutine survives the tests: the
// CLI's HTTP client and the in-process cluster + admin server its tests
// stand up must all tear down cleanly.
func TestMain(m *testing.M) { leakcheck.Main(m) }
