// Command ocsmlctl is the operator CLI for a running OCSML deployment.
// It speaks to the admin control plane an ocsmld daemon (or spawn-all
// cluster) exposes with -admin-addr:
//
//	ocsmlctl -node 127.0.0.1:7070 status       # per-node protocol state
//	ocsmlctl -node 127.0.0.1:7070 manifest     # durable manifests + S_k
//	ocsmlctl -node 127.0.0.1:7070 recovery     # last line, epoch, counters
//	ocsmlctl -node 127.0.0.1:7070 checkpoint   # trigger a tentative round
//	ocsmlctl -node 127.0.0.1:7070 metrics      # raw Prometheus scrape
//
// -json prints the server's JSON response verbatim instead of the
// human tables (metrics is always the raw text exposition). A non-2xx
// response or an unreachable node exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, testably: args are the command line after the program
// name, output goes to the given writers, the exit code is returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ocsmlctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	node := fs.String("node", "127.0.0.1:7070", "admin address of an ocsmld (-admin-addr)")
	jsonOut := fs.Bool("json", false, "print the server's JSON response verbatim")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ocsmlctl [-node addr] [-json] [-timeout d] <status|manifest|recovery|checkpoint|metrics>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	cmd := fs.Arg(0)

	client := &http.Client{Timeout: *timeout}
	defer client.CloseIdleConnections()
	c := &ctl{base: "http://" + *node, client: client, stdout: stdout, stderr: stderr, json: *jsonOut}

	switch cmd {
	case "status":
		return c.status()
	case "manifest":
		return c.manifest()
	case "recovery":
		return c.recovery()
	case "checkpoint":
		return c.checkpoint()
	case "metrics":
		return c.metrics()
	default:
		fmt.Fprintf(stderr, "ocsmlctl: unknown command %q\n", cmd)
		fs.Usage()
		return 2
	}
}

type ctl struct {
	base   string
	client *http.Client
	stdout io.Writer
	stderr io.Writer
	json   bool
}

// fetch performs one request and returns the body; a transport error
// or non-2xx status is reported to stderr and returns ok=false.
func (c *ctl) fetch(method, path string) (body []byte, ok bool) {
	req, err := http.NewRequest(method, c.base+path, nil)
	if err != nil {
		fmt.Fprintf(c.stderr, "ocsmlctl: %v\n", err)
		return nil, false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		fmt.Fprintf(c.stderr, "ocsmlctl: %v\n", err)
		return nil, false
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(c.stderr, "ocsmlctl: reading %s: %v\n", path, err)
		return nil, false
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fmt.Fprintf(c.stderr, "ocsmlctl: %s %s: %s\n%s", method, path, resp.Status, body)
		return nil, false
	}
	return body, true
}

// emit handles the -json passthrough; returns true if it printed.
func (c *ctl) emit(body []byte) bool {
	if !c.json {
		return false
	}
	fmt.Fprintf(c.stdout, "%s", body)
	return true
}

// The response shapes mirror internal/admin's JSON (kept in sync by
// cmd/ocsmld's control-plane integration test, which drives this CLI
// against a live cluster).

type nodeStatus struct {
	ID            int    `json:"id"`
	N             int    `json:"n"`
	Epoch         int    `json:"epoch"`
	Csn           int    `json:"csn"`
	Stat          string `json:"stat"`
	TentSet       []int  `json:"tentSet"`
	LogLen        int    `json:"logLen"`
	Proto         string `json:"proto"`
	AppDone       bool   `json:"appDone"`
	RecoveredLine int    `json:"recoveredLine"`
	DurableSeq    int    `json:"durableSeq"`
	StorageQueue  int    `json:"storageQueue"`
	Peers         []struct {
		ID        int    `json:"id"`
		Addr      string `json:"addr"`
		Connected bool   `json:"connected"`
		QueueLen  int    `json:"queueLen"`
	} `json:"peers"`
}

func (c *ctl) status() int {
	body, ok := c.fetch(http.MethodGet, "/v1/status")
	if !ok {
		return 1
	}
	if c.emit(body) {
		return 0
	}
	var resp struct {
		Nodes []struct {
			Status *nodeStatus `json:"status"`
			Error  string      `json:"error"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		fmt.Fprintf(c.stderr, "ocsmlctl: decoding status: %v\n", err)
		return 1
	}
	fmt.Fprintf(c.stdout, "%-4s %-6s %-5s %-10s %-8s %-7s %-8s %-8s %s\n",
		"ID", "EPOCH", "CSN", "STAT", "TENTSET", "LOGLEN", "DURABLE", "STORAGE", "PEERS")
	for _, e := range resp.Nodes {
		if e.Error != "" {
			fmt.Fprintf(c.stdout, "-    error: %s\n", e.Error)
			continue
		}
		st := e.Status
		up := 0
		for _, p := range st.Peers {
			if p.Connected {
				up++
			}
		}
		tent := "-"
		if len(st.TentSet) > 0 {
			parts := make([]string, len(st.TentSet))
			for i, p := range st.TentSet {
				parts[i] = fmt.Sprintf("%d", p)
			}
			tent = strings.Join(parts, ",")
		}
		stat := st.Stat
		if stat == "" {
			stat = "-"
		}
		fmt.Fprintf(c.stdout, "P%-3d %-6d %-5d %-10s %-8s %-7d %-8d %-8d %d/%d up\n",
			st.ID, st.Epoch, st.Csn, stat, tent, st.LogLen, st.DurableSeq, st.StorageQueue, up, len(st.Peers))
	}
	return 0
}

func (c *ctl) manifest() int {
	body, ok := c.fetch(http.MethodGet, "/v1/manifest")
	if !ok {
		return 1
	}
	if c.emit(body) {
		return 0
	}
	var resp struct {
		Datadir   string `json:"datadir"`
		N         int    `json:"n"`
		Manifests []struct {
			Proc int   `json:"proc"`
			Seqs []int `json:"seqs"`
		} `json:"manifests"`
		CompleteSeqs []int `json:"completeSeqs"`
		LastComplete int   `json:"lastComplete"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		fmt.Fprintf(c.stderr, "ocsmlctl: decoding manifest: %v\n", err)
		return 1
	}
	fmt.Fprintf(c.stdout, "datadir        %s\n", resp.Datadir)
	for _, m := range resp.Manifests {
		fmt.Fprintf(c.stdout, "P%-3d durable   %v\n", m.Proc, m.Seqs)
	}
	fmt.Fprintf(c.stdout, "complete S_k   %v\n", resp.CompleteSeqs)
	fmt.Fprintf(c.stdout, "last complete  %d\n", resp.LastComplete)
	return 0
}

func (c *ctl) recovery() int {
	body, ok := c.fetch(http.MethodGet, "/v1/recovery")
	if !ok {
		return 1
	}
	if c.emit(body) {
		return 0
	}
	var resp struct {
		Line     int              `json:"line"`
		Epoch    int              `json:"epoch"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		fmt.Fprintf(c.stderr, "ocsmlctl: decoding recovery: %v\n", err)
		return 1
	}
	fmt.Fprintf(c.stdout, "last line  %d\n", resp.Line)
	fmt.Fprintf(c.stdout, "epoch      %d\n", resp.Epoch)
	names := make([]string, 0, len(resp.Counters))
	for name := range resp.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(c.stdout, "  %-28s %d\n", name, resp.Counters[name])
	}
	return 0
}

func (c *ctl) checkpoint() int {
	body, ok := c.fetch(http.MethodPost, "/v1/checkpoint")
	if !ok {
		return 1
	}
	if c.emit(body) {
		return 0
	}
	var resp struct {
		Triggered []struct {
			ID    int    `json:"id"`
			Csn   int    `json:"csn"`
			Error string `json:"error"`
		} `json:"triggered"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		fmt.Fprintf(c.stderr, "ocsmlctl: decoding checkpoint: %v\n", err)
		return 1
	}
	for _, e := range resp.Triggered {
		if e.Error != "" {
			fmt.Fprintf(c.stdout, "P%-3d error: %s\n", e.ID, e.Error)
			continue
		}
		fmt.Fprintf(c.stdout, "P%-3d triggered, csn now %d\n", e.ID, e.Csn)
	}
	return 0
}

func (c *ctl) metrics() int {
	body, ok := c.fetch(http.MethodGet, "/metrics")
	if !ok {
		return 1
	}
	fmt.Fprintf(c.stdout, "%s", body)
	return 0
}
