// Command ckptsim runs one checkpointing simulation and reports its
// metrics.
//
// Usage:
//
//	ckptsim -proto ocsml -n 16 -steps 2000 -interval 5s
//	ckptsim -proto chandy-lamport -n 8 -v
//	ckptsim -proto ocsml -n 4 -steps 40 -diagram     # ASCII space-time
//	ckptsim -proto ocsml -trace-out run.jsonl        # for tracecheck
//
// Protocols: none, ocsml, ocsml-basic, chandy-lamport, koo-toueg,
// staggered, bcs-cic, uncoordinated.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ocsml/internal/des"
	"ocsml/internal/engine"
	"ocsml/internal/harness"
	"ocsml/internal/recovery"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

func main() {
	var (
		proto     = flag.String("proto", "ocsml", "protocol: none|ocsml|ocsml-basic|chandy-lamport|koo-toueg|staggered|bcs-cic|uncoordinated")
		n         = flag.Int("n", 8, "number of processes")
		seed      = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		steps     = flag.Int64("steps", 1000, "work steps per process")
		think     = flag.Duration("think", 10*time.Millisecond, "mean computation per step (virtual)")
		pattern   = flag.String("pattern", "uniform", "workload: uniform|ring|client-server|mesh|bursty")
		interval  = flag.Duration("interval", 5*time.Second, "checkpoint period (virtual)")
		timeout   = flag.Duration("timeout", 500*time.Millisecond, "OCSML convergence timeout (virtual)")
		state     = flag.Int64("state", 16<<20, "process state size in bytes")
		msgBytes  = flag.Int64("msg", 2<<10, "application message payload bytes")
		verbose   = flag.Bool("v", false, "print protocol counters")
		diagram   = flag.Bool("diagram", false, "render an ASCII space-time diagram (small runs only)")
		traceOut  = flag.String("trace-out", "", "write the event trace as JSON Lines to this file")
		drop      = flag.Float64("drop", 0, "network packet drop probability [0,1)")
		reliableF = flag.Bool("reliable", false, "wrap the protocol in the ack/retransmit transport")
		failAt    = flag.Duration("fail-at", 0, "crash a process at this virtual time (0 = no failure; ocsml only)")
		failProc  = flag.Int("fail-proc", 0, "which process crashes with -fail-at")
		script    = flag.String("script", "", "replay a workload script (JSON Lines from tracegen or a converted trace)")
		svgOut    = flag.String("svg", "", "write an SVG space-time diagram to this file (small runs)")
	)
	flag.Parse()

	pat, ok := patterns[*pattern]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	rc := harness.RunCfg{
		Proto: *proto, N: *n, Seed: *seed, Steps: *steps,
		Think: des.Duration(*think), Pattern: pat, MsgBytes: *msgBytes,
		StateBytes: *state, Interval: des.Duration(*interval),
		Timeout: des.Duration(*timeout), Trace: true,
		DropRate: *drop, Reliable: *reliableF,
	}
	if *failAt > 0 {
		rc.Failure = &engine.FailurePlan{At: des.Time(*failAt), Proc: *failProc}
	}
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		plans, err := workload.ReadScript(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rc.Script = plans
		if min := workload.MaxProc(plans) + 1; rc.N < min {
			rc.N = min
		}
	}
	r := harness.Run(rc)

	fmt.Printf("protocol            %s\n", r.ProtoName)
	fmt.Printf("processes           %d\n", r.Cfg.N)
	fmt.Printf("completed           %v\n", r.Completed)
	fmt.Printf("makespan            %.3fs\n", r.Makespan.Seconds())
	fmt.Printf("app messages        %d\n", r.AppMsgs)
	fmt.Printf("control messages    %d\n", r.CtlMsgs)
	fmt.Printf("piggyback bytes     %d", r.PiggybackBytes)
	if r.AppMsgs > 0 {
		fmt.Printf(" (%.1f bytes/msg)", float64(r.PiggybackBytes)/float64(r.AppMsgs))
	}
	fmt.Println()
	// Wire-level metrics stay zero on the simulator (envelopes never
	// serialize); ocsmld populates them. Printed here so simulated and
	// real runs render comparably.
	fmt.Printf("frames sent         %d\n", r.Counter("wire.app_frames"))
	fmt.Printf("reconnects          %d\n", r.Counter("wire.reconnects"))
	fmt.Printf("global checkpoints  %d\n", r.GlobalCheckpoints())
	fmt.Printf("finalize latency    %.3fs mean\n", r.MeanFinalizationLatency())
	fmt.Printf("message log bytes   %d\n", r.TotalLogBytes())
	fmt.Printf("storage peak queue  %d\n", r.Storage.PeakQueue())
	fmt.Printf("storage mean wait   %.4fs\n", r.Storage.MeanWait())
	fmt.Printf("storage utilization %.1f%%\n", 100*r.Storage.Utilization())
	fmt.Printf("app stalled         %.3fs total\n", r.StalledSeconds.Sum())

	if *proto != "none" && *proto != "uncoordinated" {
		if seqs, err := r.CheckAllGlobals(); err != nil {
			fmt.Printf("consistency         VIOLATION: %v\n", err)
			os.Exit(1)
		} else {
			fmt.Printf("consistency         OK (%d global checkpoints verified)\n", len(seqs))
		}
		if a, err := recovery.Coordinated(r); err == nil {
			fmt.Printf("recovery            depth=%d lostWork=%.1f%% inFlight=%d lostMsgs=%d\n",
				a.RollbackDepth(), 100*a.LostWorkFraction(), a.InFlight, a.LostMessages)
		}
	}
	if *proto == "uncoordinated" {
		if a, err := recovery.Domino(r, trace.KCheckpoint); err == nil {
			fmt.Printf("domino recovery     depth=%d iterations=%d lostWork=%.1f%%\n",
				a.RollbackDepth(), a.Iterations, 100*a.LostWorkFraction())
		}
	}
	if *verbose {
		fmt.Println("counters:")
		for _, name := range r.CounterNames() {
			fmt.Printf("  %-20s %d\n", name, r.Counters[name])
		}
	}
	if *diagram {
		evs := r.Trace.Events()
		if len(evs) > 400 {
			fmt.Fprintf(os.Stderr, "diagram skipped: %d events (use small -steps)\n", len(evs))
		} else {
			fmt.Println()
			fmt.Print(trace.Render(evs, r.Cfg.N))
		}
	}
	if *svgOut != "" {
		evs := r.Trace.Events()
		if len(evs) > 5000 {
			fmt.Fprintf(os.Stderr, "svg skipped: %d events (use small -steps)\n", len(evs))
		} else if err := os.WriteFile(*svgOut, []byte(trace.RenderSVG(evs, r.Cfg.N)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		} else {
			fmt.Printf("svg                 %s\n", *svgOut)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteJSON(f, r.Trace.Events()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace               %s (%d events)\n", *traceOut, r.Trace.Len())
	}
}

var patterns = map[string]workload.Pattern{
	"uniform":       workload.UniformRandom,
	"ring":          workload.Ring,
	"client-server": workload.ClientServer,
	"mesh":          workload.Mesh,
	"bursty":        workload.Bursty,
	"stencil":       workload.BSPStencil,
}
