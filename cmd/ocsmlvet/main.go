// Command ocsmlvet is the repository's analysis suite: four custom
// analyzers that mechanically enforce the invariants the runtime
// depends on but the compiler cannot see.
//
//	wireexhaustive  every //ocsml:wirepayload type has an encoder, a
//	                decoder, and a checked-in fuzz seed; control tags
//	                fit MaxCtlTag and do not collide
//	detclean        deterministic packages stay a pure function of the
//	                seed (no wall clock, no global rand, no map-order
//	                dependent iteration); wall-clock reads elsewhere
//	                carry //ocsml:wallclock
//	lockdiscipline  *Locked functions are called with the lock held;
//	                //ocsml:guardedby fields are accessed under their
//	                mutex
//	fsyncorder      fsstore renames follow write→fsync→rename→dirsync
//
// Usage:
//
//	ocsmlvet [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 1 when any diagnostic is reported, 2 on a load error.
//
// The suite is wired into `make lint` and CI; a finding is a build
// failure, not advice. The analyzers are stdlib-only (go/parser +
// go/types), so the tool builds in the dependency-free repository; the
// same analyzers would port mechanically to a golang.org/x/tools
// go/analysis multichecker (and `go vet -vettool`) where that
// dependency is available.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ocsml/internal/analysis/detclean"
	"ocsml/internal/analysis/fsyncorder"
	"ocsml/internal/analysis/lockdiscipline"
	"ocsml/internal/analysis/vetkit"
	"ocsml/internal/analysis/wireexhaustive"
	"ocsml/internal/wire"
)

var analyzers = []*vetkit.Analyzer{
	wireexhaustive.Analyzer,
	detclean.Analyzer,
	lockdiscipline.Analyzer,
	fsyncorder.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, modPath, err := vetkit.ModuleLoader(cwd)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(modPath, patterns)
	if err != nil {
		fatal(err)
	}
	var pkgs []*vetkit.Package
	for _, path := range paths {
		pkg, err := loader.LoadPackage(path)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", path, err))
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := vetkit.Run(analyzers, pkgs, loader.Packages)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}

	// Fuzz-corpus completeness: wireexhaustive's dynamic half. Every
	// registered payload kind must have at least one decodable seed
	// checked in, so the fuzzer actually exercises each codec arm.
	failures := len(diags)
	if wirePkg, ok := loader.Packages[modPath+"/internal/wire"]; ok {
		corpus := filepath.Join(wirePkg.Dir, "testdata", "fuzz", "FuzzWireRoundTrip")
		want := append(wireexhaustive.PayloadNames(loader.Packages), "nil")
		missing, err := wireexhaustive.CheckCorpus(corpus, decodePayloadKind, want)
		if err != nil {
			fatal(err)
		}
		for _, kind := range missing {
			fmt.Printf("%s: wireexhaustive: payload kind %s has no decodable seed in the checked-in fuzz corpus (regenerate with WIRE_REGEN_CORPUS=1 go test ./internal/wire)\n", corpus, kind)
			failures++
		}
	}

	if failures > 0 {
		os.Exit(1)
	}
}

// decodePayloadKind classifies one corpus frame with the real decoder.
func decodePayloadKind(frame []byte) (string, bool) {
	e, err := wire.Decode(frame)
	if err != nil {
		return "", false
	}
	return wire.PayloadKind(e.Payload), true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocsmlvet:", err)
	os.Exit(2)
}
