// Command ocsmlvet is the repository's analysis suite: ten custom
// analyzers that mechanically enforce the invariants the runtime
// depends on but the compiler cannot see.
//
//	wireexhaustive     every //ocsml:wirepayload type has an encoder, a
//	                   decoder, and a checked-in fuzz seed; control tags
//	                   fit MaxCtlTag and do not collide
//	detclean           deterministic packages stay a pure function of the
//	                   seed (no wall clock, no global rand, no map-order
//	                   dependent iteration); wall-clock reads elsewhere
//	                   carry //ocsml:wallclock
//	lockdiscipline     *Locked functions are called with the lock held;
//	                   //ocsml:guardedby fields are accessed under their
//	                   mutex
//	fsyncorder         fsstore renames follow write→fsync→rename→dirsync
//	errflow            errors from the durability paths (Finalize,
//	                   WriteStable, fsync, rename) reach a return or a
//	                   counted metric; discards need //ocsml:errsink
//	piggybackcomplete  OnAppSend attaches the piggyback payload on every
//	                   path, OnDeliver consumes it before mutating
//	                   checkpoint state; baselines opt out with
//	                   //ocsml:nopiggyback
//	statemachine       every write to the //ocsml:state-annotated
//	                   checkpoint status field is a declared transition
//	loopowned          //ocsml:loopowned fields are read and written only
//	                   on their owning event-loop goroutine or in closures
//	                   posted to it (//ocsml:looppost, //ocsml:loopcontext)
//	quitpath           every spawned goroutine has a proven termination
//	                   path — a quit-channel select, a bounded loop, an
//	                   error return — or an //ocsml:daemon opt-out
//	allocfree          //ocsml:hotpath functions and everything they call
//	                   stay allocation-free; cold paths carry
//	                   //ocsml:alloc <why>
//
// Usage:
//
//	ocsmlvet [-list] [-json] [-sarif] [-tags tag,list] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 1 when any diagnostic is reported, 2 on a load error.
// Diagnostics print in deterministic (file, line, column, analyzer)
// order with exact duplicates removed; -json emits one JSON object per
// finding, one per line, for tooling, and -sarif emits a SARIF 2.1.0
// log for GitHub code scanning. -tags adds build tags to file matching
// (the soak harness files are analyzed with -tags soak).
//
// The suite is wired into `make lint` and CI; a finding is a build
// failure, not advice. The analyzers are stdlib-only (go/parser +
// go/types), so the tool builds in the dependency-free repository; the
// same analyzers would port mechanically to a golang.org/x/tools
// go/analysis multichecker (and `go vet -vettool`) where that
// dependency is available.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ocsml/internal/analysis/allocfree"
	"ocsml/internal/analysis/detclean"
	"ocsml/internal/analysis/errflow"
	"ocsml/internal/analysis/fsyncorder"
	"ocsml/internal/analysis/lockdiscipline"
	"ocsml/internal/analysis/loopowned"
	"ocsml/internal/analysis/piggybackcomplete"
	"ocsml/internal/analysis/quitpath"
	"ocsml/internal/analysis/statemachine"
	"ocsml/internal/analysis/vetkit"
	"ocsml/internal/analysis/wireexhaustive"
	"ocsml/internal/wire"
)

var analyzers = []*vetkit.Analyzer{
	wireexhaustive.Analyzer,
	detclean.Analyzer,
	lockdiscipline.Analyzer,
	fsyncorder.Analyzer,
	errflow.Analyzer,
	piggybackcomplete.Analyzer,
	statemachine.Analyzer,
	loopowned.Analyzer,
	quitpath.Analyzer,
	allocfree.Analyzer,
}

// finding is the -json wire format: one object per diagnostic, one per
// line, matching the GitHub Actions problem matcher in
// .github/problem-matchers/ocsmlvet.json.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 log on stdout")
	tags := flag.String("tags", "", "comma-separated build tags for file matching")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, modPath, err := vetkit.ModuleLoader(cwd)
	if err != nil {
		fatal(err)
	}
	if *tags != "" {
		loader.SetBuildTags(strings.Split(*tags, ","))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(modPath, patterns)
	if err != nil {
		fatal(err)
	}
	var pkgs []*vetkit.Package
	for _, path := range paths {
		pkg, err := loader.LoadPackage(path)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", path, err))
		}
		pkgs = append(pkgs, pkg)
	}
	program := vetkit.NewProgram(loader.Packages)

	diags, err := vetkit.Run(analyzers, pkgs, program)
	if err != nil {
		fatal(err)
	}
	var findings []finding
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		findings = append(findings, finding{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}

	// Fuzz-corpus completeness: wireexhaustive's dynamic half. Every
	// registered payload kind must have at least one decodable seed
	// checked in, so the fuzzer actually exercises each codec arm.
	if wirePkg, ok := loader.Packages[modPath+"/internal/wire"]; ok {
		corpus := filepath.Join(wirePkg.Dir, "testdata", "fuzz", "FuzzWireRoundTrip")
		want := append(wireexhaustive.PayloadNames(program), "nil")
		missing, err := wireexhaustive.CheckCorpus(corpus, decodePayloadKind, want)
		if err != nil {
			fatal(err)
		}
		for _, kind := range missing {
			findings = append(findings, finding{
				File: corpus, Line: 1, Col: 1, Analyzer: "wireexhaustive",
				Message: fmt.Sprintf("payload kind %s has no decodable seed in the checked-in fuzz corpus (regenerate with WIRE_REGEN_CORPUS=1 go test ./internal/wire)", kind),
			})
		}
	}

	switch {
	case *sarifOut:
		if err := writeSARIF(os.Stdout, cwd, findings); err != nil {
			fatal(err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fatal(err)
			}
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}

	if len(findings) > 0 {
		os.Exit(1)
	}
}

// decodePayloadKind classifies one corpus frame with the real decoder.
func decodePayloadKind(frame []byte) (string, bool) {
	e, err := wire.Decode(frame)
	if err != nil {
		return "", false
	}
	return wire.PayloadKind(e.Payload), true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocsmlvet:", err)
	os.Exit(2)
}
