// Command ocsmlvet is the repository's analysis suite: eleven custom
// analyzers that mechanically enforce the invariants the runtime
// depends on but the compiler cannot see.
//
//	wireexhaustive     every //ocsml:wirepayload type has an encoder, a
//	                   decoder, and a checked-in fuzz seed; control tags
//	                   fit MaxCtlTag and do not collide
//	detclean           deterministic packages stay a pure function of the
//	                   seed (no wall clock, no global rand, no map-order
//	                   dependent iteration); wall-clock reads elsewhere
//	                   carry //ocsml:wallclock
//	lockdiscipline     *Locked functions are called with the lock held;
//	                   //ocsml:guardedby fields are accessed under their
//	                   mutex
//	fsyncorder         fsstore renames follow write→fsync→rename→dirsync
//	errflow            errors from the durability paths (Finalize,
//	                   WriteStable, fsync, rename) reach a return or a
//	                   counted metric; discards need //ocsml:errsink
//	piggybackcomplete  OnAppSend attaches the piggyback payload on every
//	                   path, OnDeliver consumes it before mutating
//	                   checkpoint state; baselines opt out with
//	                   //ocsml:nopiggyback
//	statemachine       every write to the //ocsml:state-annotated
//	                   checkpoint status field is a declared transition
//	loopowned          //ocsml:loopowned fields are read and written only
//	                   on their owning event-loop goroutine or in closures
//	                   posted to it (//ocsml:looppost, //ocsml:loopcontext)
//	quitpath           every spawned goroutine has a proven termination
//	                   path — a quit-channel select, a bounded loop, an
//	                   error return — or an //ocsml:daemon opt-out
//	allocfree          //ocsml:hotpath functions and everything they call
//	                   stay allocation-free; cold paths carry
//	                   //ocsml:alloc <why>
//	protomodel         the transition system extracted from internal/core
//	                   (states, declared transitions, piggyback facts)
//	                   matches the executable model the bounded checker
//	                   (internal/protomodel, cmd/ocsmlcheck) explores
//
// Usage:
//
//	ocsmlvet [-list] [-json] [-sarif] [-fix] [-model] [-tags tag,list]
//	         [-baseline file] [-write-baseline] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 1 when any error-severity diagnostic is reported (warnings
// are advisory), 2 on a load error. Diagnostics print in deterministic
// (file, line, column, analyzer) order with exact duplicates removed;
// -json emits one JSON object per finding, one per line, for tooling,
// and -sarif emits a SARIF 2.1.0 log for GitHub code scanning with
// severity carried as the result level. -tags adds build tags to file
// matching (the soak harness files are analyzed with -tags soak).
//
// -fix applies the suggested fixes of mechanical diagnostics (a missing
// //ocsml:state table entry, a missing //ocsml:loopcontext assertion)
// to the source files in place, then reports what remains. -baseline
// points at a checked-in JSON file of accepted findings (default
// .ocsmlvet-baseline.json at the module root) that are suppressed
// without inline directives; -write-baseline regenerates that file from
// the current findings. -model skips the analyzers and prints the
// protocol transition systems extracted from source as JSON.
//
// The suite is wired into `make lint` and CI; an error finding is a
// build failure, not advice. The analyzers are stdlib-only (go/parser +
// go/types), so the tool builds in the dependency-free repository; the
// same analyzers would port mechanically to a golang.org/x/tools
// go/analysis multichecker (and `go vet -vettool`) where that
// dependency is available.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ocsml/internal/analysis/allocfree"
	"ocsml/internal/analysis/detclean"
	"ocsml/internal/analysis/errflow"
	"ocsml/internal/analysis/fsyncorder"
	"ocsml/internal/analysis/lockdiscipline"
	"ocsml/internal/analysis/loopowned"
	"ocsml/internal/analysis/piggybackcomplete"
	"ocsml/internal/analysis/protomodel"
	"ocsml/internal/analysis/quitpath"
	"ocsml/internal/analysis/statemachine"
	"ocsml/internal/analysis/vetkit"
	"ocsml/internal/analysis/wireexhaustive"
	"ocsml/internal/wire"
)

var analyzers = []*vetkit.Analyzer{
	wireexhaustive.Analyzer,
	detclean.Analyzer,
	lockdiscipline.Analyzer,
	fsyncorder.Analyzer,
	errflow.Analyzer,
	piggybackcomplete.Analyzer,
	statemachine.Analyzer,
	loopowned.Analyzer,
	quitpath.Analyzer,
	allocfree.Analyzer,
	protomodel.Analyzer,
}

// finding is the -json wire format: one object per diagnostic, one per
// line, matching the GitHub Actions problem matcher in
// .github/problem-matchers/ocsmlvet.json. EndLine/EndCol are present
// when the diagnostic flags a range rather than a point.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
	EndLine  int    `json:"endLine,omitempty"`
	EndCol   int    `json:"endCol,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	sarifOut := flag.Bool("sarif", false, "emit a SARIF 2.1.0 log on stdout")
	fix := flag.Bool("fix", false, "apply suggested fixes to source files in place")
	modelOut := flag.Bool("model", false, "print the extracted protocol transition systems as JSON and exit")
	tags := flag.String("tags", "", "comma-separated build tags for file matching")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings (default <module>/.ocsmlvet-baseline.json)")
	writeBase := flag.Bool("write-baseline", false, "write the current findings to the baseline file and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, modPath, err := vetkit.ModuleLoader(cwd)
	if err != nil {
		fatal(err)
	}
	modDir := loader.Roots[modPath]
	if *tags != "" {
		loader.SetBuildTags(strings.Split(*tags, ","))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := loader.Expand(modPath, patterns)
	if err != nil {
		fatal(err)
	}
	var pkgs []*vetkit.Package
	for _, path := range paths {
		pkg, err := loader.LoadPackage(path)
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", path, err))
		}
		pkgs = append(pkgs, pkg)
	}
	program := vetkit.NewProgram(loader.Packages)

	if *modelOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(protomodel.Extract(program)); err != nil {
			fatal(err)
		}
		return
	}

	diags, err := vetkit.Run(analyzers, pkgs, program)
	if err != nil {
		fatal(err)
	}

	if *fix {
		_, remaining, err := applyFixes(loader, diags)
		if err != nil {
			fatal(err)
		}
		diags = remaining
	}

	var findings []finding
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		f := finding{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Analyzer: d.Analyzer, Severity: d.Severity.String(), Message: d.Message,
		}
		if d.End.IsValid() {
			end := loader.Fset.Position(d.End)
			f.EndLine, f.EndCol = end.Line, end.Column
		}
		findings = append(findings, f)
	}

	// Fuzz-corpus completeness: wireexhaustive's dynamic half. Every
	// registered payload kind must have at least one decodable seed
	// checked in, so the fuzzer actually exercises each codec arm.
	if wirePkg, ok := loader.Packages[modPath+"/internal/wire"]; ok {
		corpus := filepath.Join(wirePkg.Dir, "testdata", "fuzz", "FuzzWireRoundTrip")
		want := append(wireexhaustive.PayloadNames(program), "nil")
		missing, err := wireexhaustive.CheckCorpus(corpus, decodePayloadKind, want)
		if err != nil {
			fatal(err)
		}
		for _, kind := range missing {
			findings = append(findings, finding{
				File: corpus, Line: 1, Col: 1, Analyzer: "wireexhaustive",
				Severity: vetkit.SevError.String(),
				Message:  fmt.Sprintf("payload kind %s has no decodable seed in the checked-in fuzz corpus (regenerate with WIRE_REGEN_CORPUS=1 go test ./internal/wire)", kind),
			})
		}
	}

	basePath := *baselinePath
	if basePath == "" {
		basePath = filepath.Join(modDir, ".ocsmlvet-baseline.json")
	}
	if *writeBase {
		if err := writeBaseline(basePath, modDir, findings); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d accepted findings to %s\n", len(findings), basePath)
		return
	}
	baseline, err := loadBaseline(basePath)
	if err != nil {
		fatal(err)
	}
	findings, suppressed := applyBaseline(modDir, findings, baseline)

	errors := 0
	for _, f := range findings {
		if f.Severity == "error" {
			errors++
		}
	}

	switch {
	case *sarifOut:
		if err := writeSARIF(os.Stdout, modDir, findings); err != nil {
			fatal(err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				fatal(err)
			}
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s: %s\n", f.File, f.Line, f.Col, f.Severity, f.Analyzer, f.Message)
		}
	}
	if suppressed > 0 {
		fmt.Fprintf(os.Stderr, "ocsmlvet: %d finding(s) suppressed by %s\n", suppressed, basePath)
	}

	if errors > 0 {
		os.Exit(1)
	}
}

// applyFixes writes every suggested fix to disk and returns the
// diagnostics that were fixed and those that remain.
func applyFixes(loader *vetkit.Loader, diags []vetkit.Diagnostic) (fixed, remaining []vetkit.Diagnostic, err error) {
	plans, err := vetkit.PlanFixes(loader.Fset, diags)
	if err != nil {
		return nil, nil, err
	}
	applied := map[string]bool{} // by position+analyzer+message
	diagKey := func(d vetkit.Diagnostic) string {
		p := loader.Fset.Position(d.Pos)
		return fmt.Sprintf("%s:%d:%d:%s:%s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
	for _, ff := range plans {
		content, err := vetkit.ApplyFix(loader.Fset, ff)
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(ff.Filename, content, 0o644); err != nil {
			return nil, nil, err
		}
		for _, d := range ff.Applied {
			applied[diagKey(d)] = true
		}
		fmt.Printf("fixed %s: %d edit(s)\n", ff.Filename, len(ff.Edits))
	}
	for _, d := range diags {
		if applied[diagKey(d)] {
			fixed = append(fixed, d)
		} else {
			remaining = append(remaining, d)
		}
	}
	return fixed, remaining, nil
}

// decodePayloadKind classifies one corpus frame with the real decoder.
func decodePayloadKind(frame []byte) (string, bool) {
	e, err := wire.Decode(frame)
	if err != nil {
		return "", false
	}
	return wire.PayloadKind(e.Payload), true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocsmlvet:", err)
	os.Exit(2)
}
