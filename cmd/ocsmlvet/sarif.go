package main

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output for GitHub code scanning. Only the subset the
// upload-sarif action consumes is emitted: one run, one rule per
// analyzer, one result per finding with a physical location relative
// to the repository root.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
	EndLine     int `json:"endLine,omitempty"`
	// EndColumn is required even for point findings: without it code
	// scanning extends the annotation to the whole line, so a
	// single-character finding renders as a full-line highlight.
	EndColumn int `json:"endColumn"`
}

// writeSARIF renders the findings as one SARIF run. File paths are
// made relative to root (the module directory) so code scanning can
// anchor annotations in the checkout.
func writeSARIF(w io.Writer, root string, findings []finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.File
		if rel, err := filepath.Rel(root, f.File); err == nil {
			uri = rel
		}
		line, col := f.Line, f.Col
		if line < 1 {
			line = 1
		}
		if col < 1 {
			col = 1
		}
		region := sarifRegion{StartLine: line, StartColumn: col}
		switch {
		case f.EndCol > 0:
			region.EndColumn = f.EndCol
			if f.EndLine > 0 && f.EndLine != line {
				region.EndLine = f.EndLine
			}
		default:
			// Point finding: a one-character region (endColumn is
			// exclusive in SARIF).
			region.EndColumn = col + 1
		}
		level := f.Severity
		if level != "warning" {
			level = "error"
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   level,
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri), URIBaseID: "%SRCROOT%"},
					Region:           region,
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ocsmlvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
