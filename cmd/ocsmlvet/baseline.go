package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The baseline file suppresses accepted findings without inline
// directives: a checked-in JSON list of (file, analyzer, message)
// triples, matched against findings with the file path made relative to
// the module root (so the baseline is stable across checkouts). Line
// numbers are deliberately not part of the key — accepted findings
// should survive unrelated edits above them.

// baselineEntry identifies one accepted finding.
type baselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// baselineFile is the on-disk format.
type baselineFile struct {
	// Comment documents the file's purpose for readers of the checkout.
	Comment  string          `json:"comment,omitempty"`
	Findings []baselineEntry `json:"findings"`
}

func (e baselineEntry) key() string {
	return e.File + "\x00" + e.Analyzer + "\x00" + e.Message
}

// loadBaseline reads the baseline at path; a missing file is an empty
// baseline (nil error) so the default path need not exist.
func loadBaseline(path string) (map[string]bool, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(b)) == 0 {
		return nil, nil // an empty file is an empty baseline
	}
	var bf baselineFile
	if err := json.Unmarshal(b, &bf); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	set := make(map[string]bool, len(bf.Findings))
	for _, e := range bf.Findings {
		set[e.key()] = true
	}
	return set, nil
}

// relFile makes a finding's file path module-root-relative with forward
// slashes, the form baseline entries use.
func relFile(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// applyBaseline partitions findings into kept and suppressed.
func applyBaseline(root string, findings []finding, baseline map[string]bool) (kept []finding, suppressed int) {
	if len(baseline) == 0 {
		return findings, 0
	}
	for _, f := range findings {
		e := baselineEntry{File: relFile(root, f.File), Analyzer: f.Analyzer, Message: f.Message}
		if baseline[e.key()] {
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	return kept, suppressed
}

// writeBaseline records the current findings as the accepted set.
func writeBaseline(path, root string, findings []finding) error {
	bf := baselineFile{
		Comment:  "accepted ocsmlvet findings; regenerate with ocsmlvet -write-baseline (matched by file+analyzer+message, not line)",
		Findings: make([]baselineEntry, 0, len(findings)),
	}
	seen := map[string]bool{}
	for _, f := range findings {
		e := baselineEntry{File: relFile(root, f.File), Analyzer: f.Analyzer, Message: f.Message}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		bf.Findings = append(bf.Findings, e)
	}
	sort.Slice(bf.Findings, func(i, j int) bool { return bf.Findings[i].key() < bf.Findings[j].key() })
	b, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
