// Command ocsmlcheck is the bounded model checker for the OCSML
// protocol: it exhaustively enumerates every interleaving of the
// executable protocol model (internal/protomodel) within configurable
// bounds and checks the paper's safety properties — every finalized cut
// is consistent (no orphans), selective logging suffices for
// exactly-once replay, and recovery lines are Z-cycle-free.
//
// Two phases run by default:
//
//  1. verify: sweep the faithful model over N = 2..maxN; any violation
//     is a protocol bug and fails the run;
//  2. mutations: re-run with each injected implementation mistake
//     (drop-log, reorder-finalize, skip-consume) and REQUIRE a
//     counterexample — if a known bug is not caught, the checker has
//     lost its teeth and the run fails.
//
// Counterexample traces are written as JSON Lines (one per mutation,
// plus any protocol violation) replayable through cmd/tracecheck:
//
//	ocsmlcheck -n 3 -out traces
//	tracecheck -n 2 -replay -zcycle traces/cex-drop-log.jsonl
//
// A single mutation can be checked in isolation with -mutation; with
// -expect-violation the exit status inverts (0 iff a counterexample was
// found), which is what the mutation-fixture CI step asserts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ocsml/internal/protomodel"
	"ocsml/internal/trace"
)

// mutationCfg returns the exploration bounds under which each injected
// bug is reachable. All three are caught at N=2; skip-consume needs a
// third message so the pre-delivery rule triggers again after the
// one-shot mutation spent itself.
func mutationCfg(m protomodel.Mutation) protomodel.Config {
	cfg := protomodel.Config{N: 2, MaxMsgs: 2, MaxInits: 2, Mutation: m}
	if m == protomodel.MutSkipConsume {
		cfg.MaxMsgs = 3
	}
	return cfg
}

func main() {
	var (
		maxN      = flag.Int("n", 3, "sweep process counts 2..n in the verify phase")
		msgs      = flag.Int("msgs", 4, "application-send budget per exploration")
		inits     = flag.Int("inits", 1, "spontaneous checkpoint-initiation budget")
		crashes   = flag.Int("crashes", 1, "whole-system crash/rollback budget")
		maxStates = flag.Int("max-states", 0, "visited-state cap (0 = package default)")
		mutation  = flag.String("mutation", "", "check a single mutation fixture (drop-log|reorder-finalize|skip-consume) instead of the full run")
		expectBad = flag.Bool("expect-violation", false, "invert the exit status: succeed iff a counterexample is found (single-mutation runs)")
		outDir    = flag.String("out", "", "directory for counterexample traces (JSON Lines, tracecheck-compatible)")
		quiet     = flag.Bool("q", false, "suppress per-phase progress output")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	if *mutation != "" {
		m, ok := protomodel.ParseMutation(*mutation)
		if !ok || m == protomodel.MutNone {
			fatal(fmt.Errorf("unknown mutation %q (have: drop-log, reorder-finalize, skip-consume)", *mutation))
		}
		cfg := mutationCfg(m)
		cfg.MaxStates = *maxStates
		found, err := runMutation(cfg, m, *outDir, logf)
		if err != nil {
			fatal(err)
		}
		if found != *expectBad && *expectBad {
			fmt.Fprintf(os.Stderr, "ocsmlcheck: mutation %s produced NO counterexample; the checker does not bite\n", m)
			os.Exit(1)
		}
		if found && !*expectBad {
			os.Exit(1)
		}
		return
	}

	// Phase 1: the faithful protocol must verify clean.
	cfg := protomodel.Config{
		MaxMsgs: *msgs, MaxInits: *inits, MaxCrashes: *crashes, MaxStates: *maxStates,
	}
	res, err := protomodel.Sweep(*maxN, cfg)
	if err != nil {
		fatal(err)
	}
	if res.Cex != nil {
		v := res.Cex.Violation
		fmt.Fprintf(os.Stderr, "ocsmlcheck: PROTOCOL VIOLATION at N=%d: %s\n", res.Config.N, v)
		fmt.Fprintf(os.Stderr, "  actions: %v\n", res.Cex.Actions[:res.Cex.Prefix])
		if *outDir != "" {
			path := filepath.Join(*outDir, "cex-protocol.jsonl")
			if err := writeTrace(path, res.Cex); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "  trace: %s (replay: tracecheck -n %d -replay -zcycle %s)\n",
				path, res.Config.N, path)
		}
		os.Exit(1)
	}
	capNote := ""
	if res.Hit {
		capNote = " (state cap hit: exploration TRUNCATED, not exhaustive)"
	}
	logf("verify: N=2..%d msgs=%d inits=%d crashes=%d: clean over %d states, deepest full cut S_%d%s",
		*maxN, *msgs, *inits, *crashes, res.States, res.MaxCut, capNote)
	if res.Hit {
		fmt.Fprintln(os.Stderr, "ocsmlcheck: state cap reached; raise -max-states or shrink bounds for an exhaustive pass")
		os.Exit(1)
	}

	// Phase 2: every mutation fixture must be caught.
	missed := 0
	for _, m := range protomodel.Mutations() {
		mc := mutationCfg(m)
		mc.MaxStates = *maxStates
		found, err := runMutation(mc, m, *outDir, logf)
		if err != nil {
			fatal(err)
		}
		if !found {
			missed++
			fmt.Fprintf(os.Stderr, "ocsmlcheck: mutation %s produced NO counterexample; the checker does not bite\n", m)
		}
	}
	if missed > 0 {
		os.Exit(1)
	}
	logf("mutations: all %d fixtures produced counterexamples", len(protomodel.Mutations()))
}

// runMutation explores one mutated model and writes its counterexample
// trace; found reports whether a violation was caught.
func runMutation(cfg protomodel.Config, m protomodel.Mutation, outDir string, logf func(string, ...any)) (bool, error) {
	res, err := protomodel.Explore(cfg)
	if err != nil {
		return false, err
	}
	if res.Cex == nil {
		return false, nil
	}
	cex := res.Cex
	logf("mutation %s: %s", m, cex.Violation)
	logf("  run: %v (violating prefix %d/%d, cut complete: %v)",
		cex.Actions, cex.Prefix, len(cex.Actions), cex.CutComplete)
	if len(cex.ZCycle) > 0 {
		logf("  z-cycle: %v", cex.ZCycle)
	}
	if outDir != "" {
		path := filepath.Join(outDir, "cex-"+m.String()+".jsonl")
		if err := writeTrace(path, cex); err != nil {
			return true, err
		}
		logf("  trace: %s (replay: tracecheck -n %d -replay -zcycle %s)", path, cfg.N, path)
	}
	return true, nil
}

func writeTrace(path string, cex *protomodel.Counterexample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSON(f, cex.Events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ocsmlcheck:", err)
	os.Exit(2)
}
