// Command tracegen synthesizes a workload script — the full send plan of
// a computation, one JSON object per line — that ckptsim can replay with
// -script. Scripts are the substitution point for production message
// traces: convert a real trace into the same format ({"p":0,"at":5000000,
// "dst":3,"bytes":2048} per line, times in virtual nanoseconds) and replay
// it under any protocol.
//
// Usage:
//
//	tracegen -pattern uniform -n 8 -steps 500 -o workload.jsonl
//	ckptsim -script workload.jsonl -proto ocsml
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ocsml/internal/des"
	"ocsml/internal/workload"
)

func main() {
	var (
		pattern  = flag.String("pattern", "uniform", "uniform|ring|mesh|bursty")
		n        = flag.Int("n", 8, "number of processes")
		steps    = flag.Int64("steps", 500, "sends per process")
		think    = flag.Duration("think", 10*time.Millisecond, "mean inter-send time (virtual)")
		msgBytes = flag.Int64("msg", 2<<10, "payload bytes")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	pats := map[string]workload.Pattern{
		"uniform": workload.UniformRandom,
		"ring":    workload.Ring,
		"mesh":    workload.Mesh,
		"bursty":  workload.Bursty,
	}
	pat, ok := pats[*pattern]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown pattern %q (reactive patterns cannot be scripted)\n", *pattern)
		os.Exit(2)
	}
	cfg := workload.Config{
		Pattern: pat, Steps: *steps, Think: des.Duration(*think),
		MsgBytes: *msgBytes, BurstLen: 25, BurstIdle: des.Duration(*think) * 10,
	}
	plans, err := workload.GenerateScript(cfg, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteScript(w, plans); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	total := 0
	for _, s := range plans {
		total += len(s)
	}
	fmt.Fprintf(os.Stderr, "wrote %d sends for %d processes\n", total, *n)
}
