package ocsml_test

import (
	"strings"
	"testing"
	"time"

	"ocsml"
)

func TestPublicRunOCSML(t *testing.T) {
	rep, err := ocsml.Run(ocsml.Config{
		Protocol:           ocsml.ProtoOCSML,
		N:                  6,
		Seed:               3,
		Steps:              500,
		Think:              10 * time.Millisecond,
		StateBytes:         4 << 20,
		CheckpointInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	if rep.Protocol != "ocsml" || rep.N != 6 {
		t.Fatalf("identity wrong: %+v", rep)
	}
	if rep.GlobalCheckpoints < 2 {
		t.Fatalf("GlobalCheckpoints = %d", rep.GlobalCheckpoints)
	}
	if len(rep.ConsistentSeqs) == 0 {
		t.Fatal("consistency was not verified")
	}
	if rep.AppMessages != 6*500 {
		t.Fatalf("AppMessages = %d", rep.AppMessages)
	}
	if rep.Recovery == nil || rep.Recovery.RollbackDepth > 1 {
		t.Fatalf("Recovery = %+v", rep.Recovery)
	}
	if rep.Makespan <= 0 || rep.LogBytes <= 0 || rep.PiggybackBytes <= 0 {
		t.Fatalf("metrics look empty: %+v", rep)
	}
	if rep.MeanMessageLatency <= 0 || rep.P95MessageLatency < rep.MeanMessageLatency {
		t.Fatalf("latency stats wrong: mean=%v p95=%v",
			rep.MeanMessageLatency, rep.P95MessageLatency)
	}
}

func TestPublicRunEveryProtocol(t *testing.T) {
	for _, proto := range ocsml.Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			rep, err := ocsml.Run(ocsml.Config{
				Protocol: proto,
				N:        4,
				Seed:     2,
				Steps:    200,
				Think:    10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Completed {
				t.Fatal("did not complete")
			}
		})
	}
}

func TestPublicRunPatterns(t *testing.T) {
	for _, pat := range []ocsml.Pattern{ocsml.Uniform, ocsml.Ring, ocsml.ClientServer, ocsml.Mesh, ocsml.Bursty} {
		rep, err := ocsml.Run(ocsml.Config{Protocol: ocsml.ProtoOCSML, N: 5, Steps: 150, Pattern: pat})
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		if !rep.Completed {
			t.Fatalf("%s did not complete", pat)
		}
	}
}

func TestPublicRunErrors(t *testing.T) {
	if _, err := ocsml.Run(ocsml.Config{Protocol: "martian"}); err == nil {
		t.Fatal("unknown protocol should error")
	}
	if _, err := ocsml.Run(ocsml.Config{Protocol: ocsml.ProtoOCSML, Pattern: "weird"}); err == nil {
		t.Fatal("unknown pattern should error")
	}
}

func TestPublicOCSMLOptions(t *testing.T) {
	rep, err := ocsml.Run(ocsml.Config{
		Protocol: ocsml.ProtoOCSML,
		N:        8,
		Steps:    60,
		Think:    300 * time.Millisecond, // sparse: force control rounds
		OCSML: &ocsml.OCSMLOptions{
			SuppressBGN: true, SkipREQ: true, EarlyFlush: true,
		},
		CheckpointInterval: 2 * time.Second,
		ConvergenceTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters["ctl.CK_REQ"] == 0 {
		t.Fatal("sparse run should use control messages")
	}
}

func TestPublicTraceOff(t *testing.T) {
	off := false
	rep, err := ocsml.Run(ocsml.Config{
		Protocol: ocsml.ProtoOCSML, N: 4, Steps: 100, Trace: &off,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ConsistentSeqs) != 0 || rep.Recovery != nil {
		t.Fatal("tracing off should skip verification and recovery analysis")
	}
}

func TestPublicUncoordinatedRecovery(t *testing.T) {
	rep, err := ocsml.Run(ocsml.Config{
		Protocol: ocsml.ProtoUncoordinated, N: 6, Steps: 800,
		Think: 5 * time.Millisecond, CheckpointInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovery == nil {
		t.Fatal("uncoordinated run should carry a domino analysis")
	}
	if rep.Recovery.RollbackDepth == 0 {
		t.Fatal("dense uncoordinated traffic should show domino rollback")
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := ocsml.Experiments()
	if len(ids) != 19 {
		t.Fatalf("Experiments = %v", ids)
	}
	out, err := ocsml.RunExperiment("A2", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A2") || !strings.Contains(out, "skip (paper)") {
		t.Fatalf("table looks wrong:\n%s", out)
	}
	if _, err := ocsml.RunExperiment("Z9", true); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestPublicLiveFailureRecovery(t *testing.T) {
	rep, err := ocsml.Run(ocsml.Config{
		Protocol:           ocsml.ProtoOCSML,
		N:                  6,
		Seed:               4,
		Steps:              800,
		Think:              10 * time.Millisecond,
		StateBytes:         2 << 20,
		CheckpointInterval: time.Second,
		ConvergenceTimeout: 300 * time.Millisecond,
		Failure:            &ocsml.FailureSpec{At: 3 * time.Second, Proc: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("run did not complete after recovery")
	}
	lr := rep.LiveRecovery
	if lr == nil {
		t.Fatal("LiveRecovery missing")
	}
	if lr.LineSeq < 1 {
		t.Fatalf("line = %d, expected a committed checkpoint before 3s", lr.LineSeq)
	}
	if len(rep.ConsistentSeqs) == 0 {
		t.Fatal("post-recovery checkpoints were not verified")
	}
	// Live recovery is only supported for OCSML.
	if _, err := ocsml.Run(ocsml.Config{
		Protocol: ocsml.ProtoKooToueg, N: 4, Steps: 100,
		Failure: &ocsml.FailureSpec{At: time.Second, Proc: 0},
	}); err == nil {
		t.Fatal("live failure with non-OCSML protocol should error")
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() *ocsml.Report {
		rep, err := ocsml.Run(ocsml.Config{
			Protocol: ocsml.ProtoOCSML, N: 5, Seed: 9, Steps: 300,
			StateBytes: 4 << 20, CheckpointInterval: time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.ControlMessages != b.ControlMessages ||
		a.GlobalCheckpoints != b.GlobalCheckpoints || a.LogBytes != b.LogBytes {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
