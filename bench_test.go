package ocsml_test

// One benchmark per evaluation artifact: the F-scenarios (paper Figures
// 1, 2, 5) and the experiments E1–E8 / ablations A1–A3 (DESIGN.md
// experiment index). Each experiment benchmark runs its full quick-scale
// sweep per iteration and reports headline metrics via b.ReportMetric, so
// `go test -bench . -benchmem` regenerates the whole evaluation at small
// scale.

import (
	"strconv"
	"testing"

	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/engine"
	"ocsml/internal/harness"
	"ocsml/internal/netsim"
	"ocsml/internal/protocol"
	"ocsml/internal/recovery"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

// BenchmarkF1_Checker exercises the Figure-1 artifact: consistency
// checking of global cuts on a recorded trace.
func BenchmarkF1_Checker(b *testing.B) {
	rec := trace.NewRecorder()
	const n = 8
	msg := int64(0)
	for i := 0; i < 2000; i++ {
		msg++
		src := i % n
		dst := (i + 1 + i/7) % n
		if dst == src {
			dst = (dst + 1) % n
		}
		rec.Record(trace.Event{Kind: trace.KSend, Proc: src, Peer: dst, MsgID: msg})
		rec.Record(trace.Event{Kind: trace.KRecv, Proc: dst, Peer: src, MsgID: msg})
		if i%200 == 150 {
			for p := 0; p < n; p++ {
				rec.Record(trace.Event{Kind: trace.KCheckpoint, Proc: p, Seq: i / 200})
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cut, ok := rec.CutAt(n, trace.KCheckpoint, 0)
		if !ok {
			b.Fatal("no cut")
		}
		rep := rec.CheckCut(cut)
		if !rep.Consistent() {
			b.Fatal("inconsistent")
		}
	}
}

// figure2Run replays the paper's Figure-2 scenario once.
func figure2Run() *engine.Result {
	ms := des.Millisecond
	plans := map[int][]workload.ScriptedSend{
		0: {{At: 20 * ms, Dst: 1, Bytes: 100}},
		1: {{At: 40 * ms, Dst: 3, Bytes: 100}, {At: 45 * ms, Dst: 2, Bytes: 100}, {At: 100 * ms, Dst: 3, Bytes: 100}},
		2: {{At: 55 * ms, Dst: 1, Bytes: 100}, {At: 80 * ms, Dst: 1, Bytes: 100}},
		3: {{At: 60 * ms, Dst: 2, Bytes: 100}, {At: 120 * ms, Dst: 0, Bytes: 100}},
	}
	cfg := engine.DefaultConfig()
	cfg.N = 4
	cfg.Latency = netsim.Fixed{D: ms}
	cfg.StateBytes = 1 << 20
	cfg.CopyCost = 0
	cfg.Drain = 100 * ms
	protos := make([]*core.Protocol, 4)
	c := engine.New(cfg, func(i, n int) protocol.Protocol {
		protos[i] = core.New(core.Options{})
		return protos[i]
	}, workload.ScriptedFactory(plans))
	c.Sim.At(10*ms, protos[0].Initiate)
	return c.Run()
}

// BenchmarkF2_Scenario replays Figure 2 end to end, including the
// consistency verification of S_1.
func BenchmarkF2_Scenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := figure2Run()
		if err := r.CheckGlobal(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF5_Convergence replays Figure 5's control-message round.
func BenchmarkF5_Convergence(b *testing.B) {
	ms := des.Millisecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plans := map[int][]workload.ScriptedSend{
			1: {{At: 10 * ms, Dst: 2, Bytes: 100}},
			2: {{At: 20 * ms, Dst: 1, Bytes: 100}},
			3: {{At: 30 * ms, Dst: 2, Bytes: 100}, {At: 40 * ms, Dst: 2, Bytes: 100}},
		}
		cfg := engine.DefaultConfig()
		cfg.N = 4
		cfg.Latency = netsim.Fixed{D: ms}
		cfg.StateBytes = 1 << 20
		cfg.CopyCost = 0
		cfg.Drain = 500 * ms
		protos := make([]*core.Protocol, 4)
		c := engine.New(cfg, func(i, n int) protocol.Protocol {
			protos[i] = core.New(core.Options{Timeout: 100 * ms, SuppressBGN: true, SkipREQ: true})
			return protos[i]
		}, workload.ScriptedFactory(plans))
		c.Sim.At(10*ms, protos[1].Initiate)
		r := c.Run()
		if r.Counter("ctl.CK_REQ") != 3 {
			b.Fatalf("CK_REQ = %d", r.Counter("ctl.CK_REQ"))
		}
	}
}

// benchExperiment runs a harness experiment per iteration and reports a
// metric extracted from its table.
func benchExperiment(b *testing.B, id string, metric func(*harness.Table) (string, float64)) {
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("experiment %s missing", id)
	}
	var tab *harness.Table
	for i := 0; i < b.N; i++ {
		tab = e.Execute(harness.Scale{Quick: true})
	}
	if metric != nil && tab != nil {
		name, v := metric(tab)
		b.ReportMetric(v, name)
	}
}

func cell(tab *harness.Table, row, col int) float64 {
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		return -1
	}
	return v
}

// lastRowWhere finds the last row whose column col equals val.
func lastRowWhere(tab *harness.Table, col int, val string) int {
	idx := -1
	for i, row := range tab.Rows {
		if row[col] == val {
			idx = i
		}
	}
	return idx
}

func BenchmarkE1_OverheadVsN(b *testing.B) {
	benchExperiment(b, "E1", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 1, "ocsml")
		return "ocsml-makespan-s", cell(tab, i, 2)
	})
}

func BenchmarkE2_StorageContention(b *testing.B) {
	benchExperiment(b, "E2", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 1, "ocsml")
		return "ocsml-peak-queue", cell(tab, i, 2)
	})
}

func BenchmarkE3_ControlMessages(b *testing.B) {
	benchExperiment(b, "E3", func(tab *harness.Table) (string, float64) {
		return "ctl-per-global-sparse", cell(tab, len(tab.Rows)-1, 3)
	})
}

func BenchmarkE4_FinalizationLatency(b *testing.B) {
	benchExperiment(b, "E4", func(tab *harness.Table) (string, float64) {
		return "dense-finalize-s", cell(tab, 0, 2)
	})
}

func BenchmarkE5_LogVolume(b *testing.B) {
	benchExperiment(b, "E5", func(tab *harness.Table) (string, float64) {
		return "dense-log-kb", cell(tab, 0, 2)
	})
}

func BenchmarkE6_Blocking(b *testing.B) {
	benchExperiment(b, "E6", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 1, "koo-toueg")
		return "kt-stall-s-per-proc", cell(tab, i, 2)
	})
}

func BenchmarkE7_ForcedCheckpoints(b *testing.B) {
	benchExperiment(b, "E7", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 1, "bcs-cic")
		return "cic-forced", cell(tab, i, 3)
	})
}

func BenchmarkE8_RollbackDistance(b *testing.B) {
	benchExperiment(b, "E8", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 1, "uncoordinated")
		return "domino-depth", cell(tab, i, 2)
	})
}

func BenchmarkE9_Retention(b *testing.B) {
	benchExperiment(b, "E9", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 0, "ocsml")
		return "ocsml-retained-per-proc", cell(tab, i, 2)
	})
}

func BenchmarkE10_LossyChannels(b *testing.B) {
	benchExperiment(b, "E10", func(tab *harness.Table) (string, float64) {
		return "retrans-per-msg-at-30pct", cell(tab, len(tab.Rows)-1, 1)
	})
}

func BenchmarkE11_ModelValidation(b *testing.B) {
	benchExperiment(b, "E11", func(tab *harness.Table) (string, float64) {
		return "kt-wait-pred-s", cell(tab, 0, 1)
	})
}

func BenchmarkA1_BGNSuppression(b *testing.B) {
	benchExperiment(b, "A1", func(tab *harness.Table) (string, float64) {
		return "suppressed-bgn-per-global", cell(tab, 1, 2)
	})
}

func BenchmarkA2_REQSkipping(b *testing.B) {
	benchExperiment(b, "A2", func(tab *harness.Table) (string, float64) {
		return "req-per-global-skip", cell(tab, 1, 2)
	})
}

func BenchmarkA3_EarlyFlush(b *testing.B) {
	benchExperiment(b, "A3", func(tab *harness.Table) (string, float64) {
		return "early-peak-queue", cell(tab, 1, 1)
	})
}

func BenchmarkA4_LocalStorage(b *testing.B) {
	benchExperiment(b, "A4", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 0, "koo-toueg")
		return "kt-local-blocked-s", cell(tab, i, 4)
	})
}

func BenchmarkW1_WireEncode(b *testing.B) {
	benchExperiment(b, "W1", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 0, "encode-v2-delta")
		return "wire-encode-allocs-per-msg", cell(tab, i, 1)
	})
}

func BenchmarkW2_MeshThroughput(b *testing.B) {
	benchExperiment(b, "W2", func(tab *harness.Table) (string, float64) {
		return "wire-mesh-msgs-per-sec-per-node", cell(tab, 0, 1)
	})
}

func BenchmarkD1_DurabilityGroupCommit(b *testing.B) {
	benchExperiment(b, "D1", func(tab *harness.Table) (string, float64) {
		i := lastRowWhere(tab, 0, "8")
		return "durability-fsyncs-per-finalize-depth8", cell(tab, i, 2)
	})
}

func BenchmarkD2_RecoveryReplay(b *testing.B) {
	benchExperiment(b, "D2", func(tab *harness.Table) (string, float64) {
		return "durability-replay-ms", cell(tab, len(tab.Rows)-1, 1)
	})
}

// BenchmarkProtocolThroughput measures raw simulator throughput for the
// core protocol: virtual events per real second on a dense workload.
func BenchmarkProtocolThroughput(b *testing.B) {
	b.ReportAllocs()
	var msgs int64
	for i := 0; i < b.N; i++ {
		r := harness.Run(harness.RunCfg{
			Proto: "ocsml", N: 8, Seed: int64(i + 1),
			Steps: 2000, Think: 5 * des.Millisecond,
			StateBytes: 4 << 20, Interval: des.Second, Trace: false,
		})
		msgs += r.AppMsgs
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/run")
}

// BenchmarkDominoAnalysis measures the rollback-dependency computation.
func BenchmarkDominoAnalysis(b *testing.B) {
	r := harness.Run(harness.RunCfg{
		Proto: "uncoordinated", N: 8, Steps: 2000,
		Think: 5 * des.Millisecond, StateBytes: 4 << 20,
		Interval: des.Second, Trace: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.Domino(r, trace.KCheckpoint); err != nil {
			b.Fatal(err)
		}
	}
}
