package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ocsml/internal/des"
	"ocsml/internal/protocol"
)

func mkEnv(src, dst int, bytes int64) *protocol.Envelope {
	return &protocol.Envelope{Src: src, Dst: dst, Kind: protocol.KindApp, Bytes: bytes}
}

func TestDeliveryAndIDs(t *testing.T) {
	sim := des.New(1)
	var got []*protocol.Envelope
	nw := New(sim, Config{N: 3, Latency: Fixed{D: des.Millisecond}}, func(e *protocol.Envelope) {
		got = append(got, e)
	})
	nw.Send(mkEnv(0, 1, 100))
	nw.Send(mkEnv(1, 2, 200))
	sim.Run()
	if len(got) != 2 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].ID == got[1].ID || got[0].ID == 0 {
		t.Fatal("IDs must be unique and nonzero")
	}
	if got[0].SentAt != 0 {
		t.Fatalf("SentAt = %v", got[0].SentAt)
	}
	if sim.Now() != des.Millisecond {
		t.Fatalf("delivery time = %v", sim.Now())
	}
	if nw.MsgCount.Value() != 2 || nw.ByteCount.Value() != 300 {
		t.Fatal("metrics wrong")
	}
}

// nonFIFOModel gives the first message a huge delay and later ones tiny
// delays, forcing overtaking.
type nonFIFOModel struct{ calls int }

func (m *nonFIFOModel) Delay(src, dst int, bytes int64, rng *rand.Rand) des.Duration {
	m.calls++
	if m.calls == 1 {
		return des.Second
	}
	return des.Millisecond
}

func TestNonFIFOOvertaking(t *testing.T) {
	sim := des.New(1)
	var order []int64
	nw := New(sim, Config{N: 2, Latency: &nonFIFOModel{}}, func(e *protocol.Envelope) {
		order = append(order, e.App.Seq)
	})
	e1 := mkEnv(0, 1, 10)
	e1.App.Seq = 1
	e2 := mkEnv(0, 1, 10)
	e2.App.Seq = 2
	nw.Send(e1)
	nw.Send(e2)
	sim.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want overtaking [2 1]", order)
	}
}

func TestFIFOPreventsOvertaking(t *testing.T) {
	sim := des.New(1)
	var order []int64
	nw := New(sim, Config{N: 2, FIFO: true, Latency: &nonFIFOModel{}}, func(e *protocol.Envelope) {
		order = append(order, e.App.Seq)
	})
	for i := int64(1); i <= 5; i++ {
		e := mkEnv(0, 1, 10)
		e.App.Seq = i
		nw.Send(e)
	}
	sim.Run()
	for i, seq := range order {
		if seq != int64(i+1) {
			t.Fatalf("FIFO order violated: %v", order)
		}
	}
}

func TestFIFOIsPerChannel(t *testing.T) {
	// FIFO must only order messages on the SAME channel; a slow 0→1
	// message must not delay a fast 2→1 message.
	sim := des.New(1)
	var order []int
	m := &nonFIFOModel{}
	nw := New(sim, Config{N: 3, FIFO: true, Latency: m}, func(e *protocol.Envelope) {
		order = append(order, e.Src)
	})
	nw.Send(mkEnv(0, 1, 10)) // 1s delay
	nw.Send(mkEnv(2, 1, 10)) // 1ms delay, different channel
	sim.Run()
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("order = %v, want fast channel first", order)
	}
}

func TestSelfSendPanics(t *testing.T) {
	sim := des.New(1)
	nw := New(sim, Config{N: 2}, func(*protocol.Envelope) {})
	defer func() {
		if recover() == nil {
			t.Fatal("self-send should panic")
		}
	}()
	nw.Send(mkEnv(1, 1, 1))
}

func TestDownProcess(t *testing.T) {
	sim := des.New(1)
	var got int
	nw := New(sim, Config{N: 2, Latency: Fixed{D: des.Millisecond}}, func(*protocol.Envelope) { got++ })
	nw.SetDown(1, true)
	nw.Send(mkEnv(0, 1, 1)) // dropped at arrival (dst down)
	sim.Run()
	if got != 0 {
		t.Fatalf("delivered %d to down destination", got)
	}
	nw.SetDown(1, false)
	nw.SetDown(0, true)
	nw.Send(mkEnv(0, 1, 1)) // dropped at source (src down)
	sim.Run()
	if got != 0 {
		t.Fatalf("delivered %d from down source", got)
	}
	// Message in flight when destination goes down is dropped.
	nw.SetDown(0, false)
	nw.Send(mkEnv(0, 1, 1))
	nw.SetDown(1, true) // goes down before the 1ms delivery fires
	sim.Run()
	if got != 0 {
		t.Fatal("in-flight message delivered to down process")
	}
}

func TestInjectKeepsID(t *testing.T) {
	sim := des.New(1)
	var got *protocol.Envelope
	nw := New(sim, Config{N: 2, Latency: Fixed{D: des.Millisecond}}, func(e *protocol.Envelope) { got = e })
	e := mkEnv(0, 1, 5)
	e.ID = 777
	nw.Inject(e)
	sim.Run()
	if got == nil || got.ID != 777 {
		t.Fatalf("Inject changed ID: %+v", got)
	}
}

func TestUniformModelBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{Min: des.Millisecond, Max: 5 * des.Millisecond}
	for i := 0; i < 1000; i++ {
		d := u.Delay(0, 1, 0, rng)
		if d < des.Millisecond || d > 5*des.Millisecond {
			t.Fatalf("delay %v outside bounds", d)
		}
	}
	// Bandwidth term.
	u2 := Uniform{Min: 0, Max: 0, Bandwidth: 1000}
	if got := u2.Delay(0, 1, 1000, rng); got != des.Second {
		t.Fatalf("bandwidth delay = %v, want 1s", got)
	}
}

func TestMatrixModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	group := []int{0, 0, 1, 1}
	m := Clusters(group, des.Millisecond, 40*des.Millisecond, 0)
	if got := m.Delay(0, 1, 0, rng); got != des.Millisecond {
		t.Fatalf("intra-site delay = %v", got)
	}
	if got := m.Delay(1, 2, 0, rng); got != 40*des.Millisecond {
		t.Fatalf("cross-site delay = %v", got)
	}
	// Jitter stays within bounds.
	mj := Clusters(group, des.Millisecond, 40*des.Millisecond, 2*des.Millisecond)
	for i := 0; i < 200; i++ {
		d := mj.Delay(0, 3, 0, rng)
		if d < 40*des.Millisecond || d > 42*des.Millisecond {
			t.Fatalf("jittered delay %v out of bounds", d)
		}
	}
	// Bandwidth term.
	mb := Matrix{Base: [][]des.Duration{{0, 0}, {0, 0}}, Bandwidth: 1000}
	if got := mb.Delay(0, 1, 500, rng); got != des.Second/2 {
		t.Fatalf("bandwidth delay = %v", got)
	}
}

// Property: with FIFO enabled, per-channel arrival order always matches
// send order, for arbitrary interleaved traffic on multiple channels.
func TestQuickFIFOProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		sim := des.New(77)
		type arrival struct{ ch, seq int }
		var arrivals []arrival
		seqs := map[int]int{}
		nw := New(sim, Config{N: 4, FIFO: true, Latency: Uniform{Min: 0, Max: 10 * des.Millisecond}},
			func(e *protocol.Envelope) {
				arrivals = append(arrivals, arrival{e.Src*4 + e.Dst, int(e.App.Seq)})
			})
		for _, op := range ops {
			src := int(op) % 4
			dst := (src + 1 + int(op/16)%3) % 4
			ch := src*4 + dst
			seqs[ch]++
			e := mkEnv(src, dst, 10)
			e.App.Seq = int64(seqs[ch])
			nw.Send(e)
			sim.RunUntil(sim.Now() + des.Duration(op)*des.Microsecond)
		}
		sim.Run()
		last := map[int]int{}
		for _, a := range arrivals {
			if a.seq != last[a.ch]+1 {
				return false
			}
			last[a.ch] = a.seq
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
