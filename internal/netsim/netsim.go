// Package netsim models the message-passing network. Per the paper's
// system model (§2.1): transmission delays are finite but arbitrary, and
// channels need NOT be FIFO — each message independently draws a delay, so
// later messages can overtake earlier ones. A FIFO mode is provided for
// baselines that require it (Chandy–Lamport's marker algorithm).
package netsim

import (
	"fmt"
	"math/rand"

	"ocsml/internal/des"
	"ocsml/internal/metrics"
	"ocsml/internal/protocol"
)

// LatencyModel draws a transmission delay for one message.
type LatencyModel interface {
	Delay(src, dst int, bytes int64, rng *rand.Rand) des.Duration
}

// Uniform draws delays uniformly from [Min, Max], plus Bytes/Bandwidth
// transmission time when Bandwidth > 0.
type Uniform struct {
	Min, Max  des.Duration
	Bandwidth int64 // bytes per virtual second; 0 disables
}

// Delay implements LatencyModel.
func (u Uniform) Delay(src, dst int, bytes int64, rng *rand.Rand) des.Duration {
	d := u.Min
	if u.Max > u.Min {
		d += des.Duration(rng.Int63n(int64(u.Max - u.Min + 1)))
	}
	if u.Bandwidth > 0 {
		d += des.Duration(float64(bytes) / float64(u.Bandwidth) * float64(des.Second))
	}
	return d
}

// Fixed is a constant-delay model (useful for exactly scripted scenarios).
type Fixed struct{ D des.Duration }

// Delay implements LatencyModel.
func (f Fixed) Delay(int, int, int64, *rand.Rand) des.Duration { return f.D }

// Matrix is a heterogeneous per-pair latency model: Base[src][dst] plus
// uniform jitter in [0, Jitter], plus Bytes/Bandwidth when Bandwidth > 0.
// Use Clusters to build the common "two datacenters" shape.
type Matrix struct {
	Base      [][]des.Duration
	Jitter    des.Duration
	Bandwidth int64
}

// Delay implements LatencyModel.
func (m Matrix) Delay(src, dst int, bytes int64, rng *rand.Rand) des.Duration {
	d := m.Base[src][dst]
	if m.Jitter > 0 {
		d += des.Duration(rng.Int63n(int64(m.Jitter) + 1))
	}
	if m.Bandwidth > 0 {
		d += des.Duration(float64(bytes) / float64(m.Bandwidth) * float64(des.Second))
	}
	return d
}

// Clusters builds a Matrix for processes partitioned into groups:
// group[i] names process i's site; same-site pairs use local latency,
// cross-site pairs remote.
func Clusters(group []int, local, remote des.Duration, jitter des.Duration) Matrix {
	n := len(group)
	base := make([][]des.Duration, n)
	for i := range base {
		base[i] = make([]des.Duration, n)
		for j := range base[i] {
			if group[i] == group[j] {
				base[i][j] = local
			} else {
				base[i][j] = remote
			}
		}
	}
	return Matrix{Base: base, Jitter: jitter}
}

// DefaultLatency models a 2007-era LAN: 0.2–2 ms with 100 Mb/s links.
func DefaultLatency() LatencyModel {
	return Uniform{Min: 200 * des.Microsecond, Max: 2 * des.Millisecond, Bandwidth: 12_500_000}
}

// Network delivers envelopes between processes.
type Network struct {
	sim     *des.Simulator
	n       int
	fifo    bool
	lat     LatencyModel
	deliver func(e *protocol.Envelope)
	nextID  int64
	drop    float64
	// lastArrival[src*n+dst] enforces FIFO per channel when enabled.
	lastArrival []des.Time
	down        []bool // failed processes neither send nor receive

	// Metrics.
	MsgCount  metrics.Counter // all envelopes
	CtlCount  metrics.Counter // control envelopes
	ByteCount metrics.Counter
	Dropped   metrics.Counter // transmissions lost to DropRate
	Latency   metrics.Summary // seconds
	InFlight  metrics.Gauge
}

// Config parameterizes a Network.
type Config struct {
	N       int
	FIFO    bool
	Latency LatencyModel
	// DropRate is the probability each transmission is silently lost
	// (0..1). The paper assumes reliable channels; runs with loss need
	// the reliable-transport middleware (internal/reliable).
	DropRate float64
}

// New creates a network for cfg.N processes. deliver is invoked at arrival
// time with each envelope.
func New(sim *des.Simulator, cfg Config, deliver func(e *protocol.Envelope)) *Network {
	if cfg.N < 1 {
		panic(fmt.Sprintf("netsim: invalid N=%d", cfg.N))
	}
	lat := cfg.Latency
	if lat == nil {
		lat = DefaultLatency()
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		panic(fmt.Sprintf("netsim: drop rate %v outside [0,1)", cfg.DropRate))
	}
	return &Network{
		sim:         sim,
		n:           cfg.N,
		fifo:        cfg.FIFO,
		lat:         lat,
		drop:        cfg.DropRate,
		deliver:     deliver,
		lastArrival: make([]des.Time, cfg.N*cfg.N),
		down:        make([]bool, cfg.N),
	}
}

// N returns the process count.
func (nw *Network) N() int { return nw.n }

// FIFO reports whether channels preserve per-channel order.
func (nw *Network) FIFO() bool { return nw.fifo }

// AllocID reserves a fresh unique envelope id. The engine pre-assigns ids
// to application messages so protocols can log them before transmission.
func (nw *Network) AllocID() int64 {
	nw.nextID++
	return nw.nextID
}

// SetDown marks a process as failed (true) or recovered (false): a down
// process's outgoing sends are dropped at the source and its incoming
// deliveries are dropped at arrival time.
func (nw *Network) SetDown(proc int, down bool) { nw.down[proc] = down }

// Send transmits the envelope. It assigns the envelope ID and SentAt and
// schedules delivery after a model-drawn delay. Self-sends panic:
// processes are sequential and talk to themselves directly.
func (nw *Network) Send(e *protocol.Envelope) {
	if e.Src == e.Dst {
		panic(fmt.Sprintf("netsim: self-send by P%d", e.Src))
	}
	if e.Dst < 0 || e.Dst >= nw.n || e.Src < 0 || e.Src >= nw.n {
		panic(fmt.Sprintf("netsim: endpoints %d->%d outside [0,%d)", e.Src, e.Dst, nw.n))
	}
	if nw.down[e.Src] {
		return
	}
	if e.ID == 0 {
		e.ID = nw.AllocID()
	}
	e.SentAt = nw.sim.Now()

	nw.MsgCount.Inc()
	if e.Kind == protocol.KindCtl {
		nw.CtlCount.Inc()
	}
	nw.ByteCount.Add(e.Bytes)

	if nw.drop > 0 && nw.sim.Rand().Float64() < nw.drop {
		nw.Dropped.Inc()
		return
	}

	delay := nw.lat.Delay(e.Src, e.Dst, e.Bytes, nw.sim.Rand())
	if delay < 0 {
		panic("netsim: latency model produced negative delay")
	}
	at := nw.sim.Now() + delay
	if nw.fifo {
		ch := e.Src*nw.n + e.Dst
		if at <= nw.lastArrival[ch] {
			at = nw.lastArrival[ch] + 1 // strictly after the previous arrival
		}
		nw.lastArrival[ch] = at
	}
	nw.InFlight.Add(1)
	env := e
	nw.sim.At(at, func() {
		nw.InFlight.Add(-1)
		nw.Latency.Observe((nw.sim.Now() - env.SentAt).Seconds())
		if nw.down[env.Dst] {
			return
		}
		nw.deliver(env)
	})
}

// Inject re-introduces a message during recovery: it re-enters the network
// with a fresh delay but keeps its original envelope ID so receivers can
// deduplicate.
func (nw *Network) Inject(e *protocol.Envelope) {
	if nw.down[e.Dst] {
		return
	}
	delay := nw.lat.Delay(e.Src, e.Dst, e.Bytes, nw.sim.Rand())
	nw.InFlight.Add(1)
	env := e
	nw.sim.After(delay, func() {
		nw.InFlight.Add(-1)
		if nw.down[env.Dst] {
			return
		}
		nw.deliver(env)
	})
}
