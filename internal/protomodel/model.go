// Package protomodel is a finite, executable model of the paper's
// Figure-3 protocol (optimistic checkpointing with selective message
// logging) and a bounded explicit-state explorer over it.
//
// The model is the checker's twin of internal/core: per-process state
// is (csn, stat, tentSet) plus the selective log of the open tentative
// interval, the network is one FIFO channel per ordered process pair
// (the TCP transport the runtime assumes), and the actions are exactly
// the protocol's moves — initiate a checkpoint, send an application
// message carrying the (csn, stat, tentSet) piggyback, deliver the head
// of a channel through the Figure-3 receive rules, or crash the system
// back to its recovery line. Control messages (Figure 4) are a liveness
// device and carry no application state; the model checks the safety
// theorems over the pure Figure-3 algorithm (Options.Timeout = 0 in
// internal/core terms).
//
// The model cannot drift silently from the implementation: the
// protomodel analyzer (internal/analysis/protomodel) statically
// extracts the transition system from internal/core's source — the
// //ocsml:state tables, the guarded writes to csn/stat/tentSet, the
// piggyback attach/consume facts — and cross-checks it against the
// shape declared here.
//
// Three safety properties are checked during exploration and on the
// emitted traces:
//
//	P1 (cut consistency)  — delivering a message whose sender had
//	    finalized S_k must find the receiver finalized for S_k too;
//	    otherwise the receive is an orphan of cut S_k (Theorem 2).
//	P2 (replay exactness) — at finalization the selective log must
//	    list exactly the messages processed in the tentative interval,
//	    and every in-flight message sent while tentative must be in
//	    the send log (selective logging suffices for exactly-once
//	    replay).
//	P3 (Z-cycle freedom)  — the rollback-dependency graph of every
//	    emitted trace is acyclic (trace.ZCycles), so recovery lines
//	    never roll back past themselves.
//
// Mutations inject the classic implementation mistakes (drop a log
// append, reorder finalize against the receive, skip the piggyback
// examination) to prove the checker bites; each must yield a
// counterexample trace replayable by cmd/tracecheck.
package protomodel

import (
	"fmt"

	"ocsml/internal/des"
	"ocsml/internal/trace"
)

// Status mirrors core.Status for the model's two process states.
type Status int8

const (
	// Normal means no unfinalized tentative checkpoint exists.
	Normal Status = iota
	// Tentative means a tentative checkpoint awaits finalization.
	Tentative
)

func (s Status) String() string {
	if s == Normal {
		return "normal"
	}
	return "tentative"
}

// Shape declares the transition system this executable model
// implements: the state names and the declared lifecycle edges ("*" =
// any from-state). The protomodel analyzer extracts the same shape from
// internal/core's //ocsml:state table and fails the build when the two
// disagree, so the model cannot drift from the implementation silently.
func Shape() (states []string, edges [][2]string) {
	return []string{"Normal", "Tentative"}, [][2]string{
		{"Normal", "Tentative"}, // takeTentative (phase one)
		{"Tentative", "Normal"}, // finalize (phase two, CFE)
		{"*", "Normal"},         // rollback recovery
	}
}

// A Mutation injects one deliberate protocol bug (one-shot: it applies
// at the first opportunity only, so the run can still complete the cut
// and exhibit the violation in a finished trace).
type Mutation uint8

const (
	// MutNone is the faithful protocol.
	MutNone Mutation = iota
	// MutDropLog skips one logSet append for a message received while
	// tentative — selective logging no longer suffices for replay (P2).
	MutDropLog
	// MutReorderFinalize runs the triggered finalization AFTER the
	// receive instead of before it: the cut point moves past the
	// message, making it an orphan of S_k (P1).
	MutReorderFinalize
	// MutSkipConsume skips the pre-delivery piggyback examination once:
	// the receiver misses the finalize-before-receive rule and logs a
	// message the sender excluded from the cut (P1).
	MutSkipConsume
)

var mutationNames = map[Mutation]string{
	MutNone: "none", MutDropLog: "drop-log",
	MutReorderFinalize: "reorder-finalize", MutSkipConsume: "skip-consume",
}

func (m Mutation) String() string {
	if n, ok := mutationNames[m]; ok {
		return n
	}
	return fmt.Sprintf("mutation(%d)", uint8(m))
}

// ParseMutation resolves a mutation by its flag name.
func ParseMutation(name string) (Mutation, bool) {
	for m, n := range mutationNames {
		if n == name {
			return m, true
		}
	}
	return MutNone, false
}

// Mutations lists the injectable bugs (excluding MutNone).
func Mutations() []Mutation {
	return []Mutation{MutDropLog, MutReorderFinalize, MutSkipConsume}
}

// Config bounds one exploration.
type Config struct {
	N          int // processes (2..4 are tractable)
	MaxMsgs    int // total application sends across the run
	MaxInits   int // total spontaneous checkpoint initiations
	MaxCrashes int // total whole-system crash/rollback events
	Mutation   Mutation
	// MaxStates caps the visited-state set as a runaway backstop;
	// 0 means the package default (2^22).
	MaxStates int
}

// msg is one in-flight application message with its piggyback — M.csn,
// M.stat, M.tentSet in the paper's notation, snapshotted at send time.
type msg struct {
	id       int16
	src, dst int8
	pbCsn    int8
	pbStat   Status
	pbTent   uint16
}

// proc is one process's protocol state plus the replay bookkeeping of
// its open tentative interval.
type proc struct {
	csn  int8
	stat Status
	tent uint16 // bitmask of processes known tentative at csn
	fin  int8   // highest finalized sequence number

	processed []int16 // messages processed while tentative (since CT)
	logR      []int16 // selective log, received entries
	logS      []int16 // selective log, sent entries
}

// state is one node of the explored transition system.
type state struct {
	cfg    *Config
	procs  []proc
	chans  [][]msg // FIFO channel per src*N+dst
	msgs   int16   // remaining send budget
	inits  int16   // remaining initiation budget
	crash  int16   // remaining crash budget
	nextID int16
	// mutUsed marks the one-shot mutation as spent.
	mutUsed bool
}

func newState(cfg *Config) *state {
	return &state{
		cfg:   cfg,
		procs: make([]proc, cfg.N),
		chans: make([][]msg, cfg.N*cfg.N),
		msgs:  int16(cfg.MaxMsgs),
		inits: int16(cfg.MaxInits),
		crash: int16(cfg.MaxCrashes),
	}
}

func (s *state) full() uint16 { return 1<<uint(s.cfg.N) - 1 }

// clone deep-copies the state so apply can mutate in place.
func (s *state) clone() *state {
	c := &state{
		cfg: s.cfg, msgs: s.msgs, inits: s.inits, crash: s.crash,
		nextID: s.nextID, mutUsed: s.mutUsed,
		procs: make([]proc, len(s.procs)),
		chans: make([][]msg, len(s.chans)),
	}
	for i, p := range s.procs {
		p.processed = append([]int16(nil), p.processed...)
		p.logR = append([]int16(nil), p.logR...)
		p.logS = append([]int16(nil), p.logS...)
		c.procs[i] = p
	}
	for i, ch := range s.chans {
		c.chans[i] = append([]msg(nil), ch...)
	}
	return c
}

// key renders the state canonically for the visited set.
func (s *state) key() string {
	b := make([]byte, 0, 64)
	put := func(vs ...int16) {
		for _, v := range vs {
			b = append(b, byte(v), byte(v>>8))
		}
	}
	put(s.msgs, s.inits, s.crash, s.nextID)
	if s.mutUsed {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	for i := range s.procs {
		p := &s.procs[i]
		put(int16(p.csn), int16(p.stat), int16(p.tent), int16(p.fin))
		put(int16(len(p.processed)), int16(len(p.logR)), int16(len(p.logS)))
		put(p.processed...)
		put(p.logR...)
		put(p.logS...)
	}
	for _, ch := range s.chans {
		put(int16(len(ch)))
		for _, m := range ch {
			put(m.id, int16(m.src), int16(m.dst), int16(m.pbCsn), int16(m.pbStat), int16(m.pbTent))
		}
	}
	return string(b)
}

// ---- properties ----

// Prop identifies which checked property a violation breaks.
type Prop uint8

const (
	// PropOrphan is P1: a finalized cut S_k admits an orphan message.
	PropOrphan Prop = iota
	// PropReplay is P2: the selective log does not suffice for replay.
	PropReplay
	// PropInvariant is an internal protocol invariant the
	// implementation enforces with a panic (impossible piggyback).
	PropInvariant
)

func (p Prop) String() string {
	switch p {
	case PropOrphan:
		return "orphan"
	case PropReplay:
		return "replay"
	default:
		return "invariant"
	}
}

// A Violation is one property breach found during exploration.
type Violation struct {
	Prop Prop
	Seq  int // checkpoint cut S_k the property is violated for
	Proc int // process at which the breach was detected
	Msg  int // offending message id, -1 when not message-specific
	Desc string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violation at P%d, cut S_%d: %s", v.Prop, v.Proc, v.Seq, v.Desc)
}

// ---- actions ----

// Op is an action kind.
type Op uint8

const (
	// OpInit has process P spontaneously initiate a checkpoint.
	OpInit Op = iota
	// OpSend has process P send an application message to Q.
	OpSend
	// OpDeliver has process P deliver the head of the Q->P channel.
	OpDeliver
	// OpCrash rolls the whole system back to its recovery line.
	OpCrash
)

// An Action is one transition of the explored system.
type Action struct {
	Op   Op
	P, Q int
}

func (a Action) String() string {
	switch a.Op {
	case OpInit:
		return fmt.Sprintf("init(P%d)", a.P)
	case OpSend:
		return fmt.Sprintf("send(P%d->P%d)", a.P, a.Q)
	case OpDeliver:
		return fmt.Sprintf("deliver(P%d<-P%d)", a.P, a.Q)
	default:
		return "crash"
	}
}

// enabled lists the actions applicable in s, in deterministic order.
// allowCrash=false restricts to crash-free continuations (used when
// completing a cut for a counterexample trace).
func (s *state) enabled(allowCrash bool) []Action {
	var out []Action
	n := s.cfg.N
	if s.inits > 0 {
		for p := 0; p < n; p++ {
			if s.procs[p].stat == Normal {
				out = append(out, Action{OpInit, p, 0})
			}
		}
	}
	if s.msgs > 0 {
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if p != q {
					out = append(out, Action{OpSend, p, q})
				}
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p != q && len(s.chans[q*n+p]) > 0 {
				out = append(out, Action{OpDeliver, p, q})
			}
		}
	}
	if allowCrash && s.crash > 0 {
		out = append(out, Action{OpCrash, 0, 0})
	}
	return out
}

// ---- semantics (the Figure-3 receive rules, mirroring internal/core) ----

// emitter optionally records trace events while replaying a path.
type emitter struct {
	gseq   int64
	events []trace.Event
}

func (em *emitter) emit(k trace.Kind, procID, peer int, msgID int64, seq int) {
	if em == nil {
		return
	}
	em.gseq++
	em.events = append(em.events, trace.Event{
		GSeq: em.gseq, T: des.Time(em.gseq), Kind: k,
		Proc: procID, Peer: peer, MsgID: msgID, Seq: seq,
	})
}

// apply executes one action in place, returning any violations the step
// exposes.
func (s *state) apply(a Action, em *emitter) []Violation {
	switch a.Op {
	case OpInit:
		s.inits--
		s.takeTentative(a.P, em)
		return nil
	case OpSend:
		s.send(a.P, a.Q, em)
		return nil
	case OpDeliver:
		return s.deliver(a.P, a.Q, em)
	default:
		s.doCrash(em)
		return nil
	}
}

// takeTentative is the paper's takeTentativeCheckpoint(i).
func (s *state) takeTentative(p int, em *emitter) {
	pr := &s.procs[p]
	if pr.stat != Normal {
		panic("protomodel: takeTentative while tentative")
	}
	pr.csn++
	pr.stat = Tentative
	pr.tent = 1 << uint(p)
	pr.processed, pr.logR, pr.logS = nil, nil, nil
	em.emit(trace.KTentative, p, -1, 0, int(pr.csn))
}

// finalize flushes the tentative checkpoint: the P2 obligations are
// checked at this moment, exactly when the implementation writes
// logSet to stable storage.
func (s *state) finalize(p int, em *emitter) []Violation {
	pr := &s.procs[p]
	if pr.stat != Tentative {
		panic("protomodel: finalize while normal")
	}
	var vs []Violation
	if !equalIDs(pr.logR, pr.processed) {
		vs = append(vs, Violation{
			Prop: PropReplay, Seq: int(pr.csn), Proc: p, Msg: firstMissing(pr.processed, pr.logR),
			Desc: fmt.Sprintf("finalizing S_%d with log %v but processed %v: replay from the selective log cannot reproduce the interval", pr.csn, pr.logR, pr.processed),
		})
	}
	for dst := 0; dst < s.cfg.N; dst++ {
		for _, m := range s.chans[p*s.cfg.N+dst] {
			if m.pbStat == Tentative && m.pbCsn == pr.csn && !containsID(pr.logS, m.id) {
				vs = append(vs, Violation{
					Prop: PropReplay, Seq: int(pr.csn), Proc: p, Msg: int(m.id),
					Desc: fmt.Sprintf("finalizing S_%d with in-flight tentative message %d absent from the send log", pr.csn, m.id),
				})
			}
		}
	}
	pr.stat = Normal
	pr.tent = 0
	pr.fin = pr.csn
	pr.processed, pr.logR, pr.logS = nil, nil, nil
	em.emit(trace.KFinalize, p, -1, 0, int(pr.csn))
	return vs
}

// send attaches the piggyback snapshot and, while tentative, logs the
// send (core.OnAppSend).
func (s *state) send(p, q int, em *emitter) {
	pr := &s.procs[p]
	id := s.nextID
	s.nextID++
	s.msgs--
	s.chans[p*s.cfg.N+q] = append(s.chans[p*s.cfg.N+q], msg{
		id: id, src: int8(p), dst: int8(q),
		pbCsn: pr.csn, pbStat: pr.stat, pbTent: pr.tent,
	})
	em.emit(trace.KSend, p, q, int64(id), -1)
	if pr.stat == Tentative {
		pr.logS = append(pr.logS, id)
		em.emit(trace.KLogSend, p, q, int64(id), int(pr.csn))
	}
}

// deliver pops the head of the Q->P channel and applies the Figure-3
// receive rules (core.OnDeliver + afterProcess). The P1 orphan check
// runs after the pre-delivery rule, at the moment the receive event is
// committed: the sender's piggyback proves how many cuts the sender had
// finalized at send time, and the receive is an orphan of cut S_k when
// the receiver has not finalized k yet.
func (s *state) deliver(p, q int, em *emitter) []Violation {
	n := s.cfg.N
	ch := s.chans[q*n+p]
	m := ch[0]
	s.chans[q*n+p] = ch[1:]
	pr := &s.procs[p]
	var vs []Violation

	if m.pbCsn > pr.csn+1 || (m.pbStat == Normal && pr.stat == Tentative && m.pbCsn > pr.csn) {
		// The implementation panics on these (Fig. 3 cases 2d/4c/3c:
		// impossible under a correct protocol).
		vs = append(vs, Violation{
			Prop: PropInvariant, Seq: int(m.pbCsn), Proc: p, Msg: int(m.id),
			Desc: fmt.Sprintf("impossible piggyback (csn=%d stat=%s) at P%d (csn=%d stat=%s)", m.pbCsn, m.pbStat, p, pr.csn, pr.stat),
		})
	}

	// Pre-delivery rule (cases 3b and 2c): finalization triggered by
	// the piggyback happens BEFORE the receive event; the message is
	// excluded from the log and the cut point precedes it.
	reorder := false
	if pr.stat == Tentative {
		trigger := (m.pbStat == Normal && m.pbCsn == pr.csn) ||
			(m.pbStat == Tentative && m.pbCsn == pr.csn+1)
		if trigger {
			switch {
			case s.cfg.Mutation == MutSkipConsume && !s.mutUsed:
				s.mutUsed = true // bug: piggyback never examined
			case s.cfg.Mutation == MutReorderFinalize && !s.mutUsed:
				s.mutUsed = true
				reorder = true // bug: finalize moved after the receive
			default:
				vs = append(vs, s.finalize(p, em)...)
			}
		}
	}

	// P1: orphan detection at the commit point of the receive.
	senderFin := m.pbCsn
	if m.pbStat == Tentative {
		senderFin--
	}
	recvFin := pr.csn
	if pr.stat == Tentative {
		recvFin--
	}
	if senderFin > recvFin {
		vs = append(vs, Violation{
			Prop: PropOrphan, Seq: int(senderFin), Proc: p, Msg: int(m.id),
			Desc: fmt.Sprintf("P%d receives msg %d inside cut S_%d, but P%d sent it after finalizing S_%d: orphan", p, m.id, senderFin, q, senderFin),
		})
	}

	// Process the message; while tentative it joins the interval's
	// processed set and (absent the drop-log bug) the selective log.
	em.emit(trace.KRecv, p, q, int64(m.id), -1)
	if pr.stat == Tentative {
		pr.processed = append(pr.processed, m.id)
		if s.cfg.Mutation == MutDropLog && !s.mutUsed {
			s.mutUsed = true // bug: log append dropped
		} else {
			pr.logR = append(pr.logR, m.id)
			em.emit(trace.KLogRecv, p, q, int64(m.id), int(pr.csn))
		}
	}

	if reorder {
		vs = append(vs, s.finalize(p, em)...)
	}

	// afterProcess (cases 2b and 4b).
	switch pr.stat {
	case Tentative:
		if m.pbStat == Tentative && m.pbCsn == pr.csn {
			pr.tent |= m.pbTent
			if pr.tent == s.full() {
				vs = append(vs, s.finalize(p, em)...)
			}
		}
	case Normal:
		if m.pbStat == Tentative && m.pbCsn == pr.csn+1 {
			s.takeTentative(p, em)
			pr.tent |= m.pbTent
			if pr.tent == s.full() {
				vs = append(vs, s.finalize(p, em)...)
			}
		}
	}
	return vs
}

// doCrash rolls every process back to the recovery line S_L, L = the
// smallest finalized sequence number (each process restores its own
// finalized S_L checkpoint; Theorem 2 makes the line consistent). In-
// flight messages are lost with the crash; logged ones are replayed
// from stable storage, which the model folds into the restored state.
func (s *state) doCrash(em *emitter) {
	s.crash--
	line := s.procs[0].fin
	for _, pr := range s.procs[1:] {
		if pr.fin < line {
			line = pr.fin
		}
	}
	for i := range s.procs {
		em.emit(trace.KFail, i, -1, 0, -1)
	}
	for i := range s.procs {
		pr := &s.procs[i]
		pr.csn = line
		pr.stat = Normal
		pr.tent = 0
		pr.fin = line
		pr.processed, pr.logR, pr.logS = nil, nil, nil
		em.emit(trace.KRestore, i, -1, 0, int(line))
	}
	for i := range s.chans {
		s.chans[i] = nil
	}
}

// minFin is the lowest finalized sequence across processes.
func (s *state) minFin() int {
	line := s.procs[0].fin
	for _, pr := range s.procs[1:] {
		if pr.fin < line {
			line = pr.fin
		}
	}
	return int(line)
}

func equalIDs(a, b []int16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsID(ids []int16, id int16) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// firstMissing returns the first id in want absent from got (-1 if
// none — e.g. an ordering mismatch).
func firstMissing(want, got []int16) int {
	for _, id := range want {
		if !containsID(got, id) {
			return int(id)
		}
	}
	return -1
}
