package protomodel

import (
	"fmt"

	"ocsml/internal/trace"
)

// defaultMaxStates caps the visited set when Config.MaxStates is 0.
const defaultMaxStates = 1 << 22

// A Counterexample is one minimized violating run: the BFS path to the
// violation plus a crash-free completion that finalizes the violated
// cut on every process, so the emitted trace is checkable end-to-end by
// cmd/tracecheck.
type Counterexample struct {
	Violation Violation
	Actions   []Action // full run: violating prefix + cut completion
	Prefix    int      // length of the violating prefix within Actions
	Events    []trace.Event
	// CutComplete reports that every process finalized the violated
	// cut within bounds (tracecheck then exhibits the orphan/replay
	// breach directly; an incomplete cut still replays but reports
	// "incomplete").
	CutComplete bool
	// ZCycle holds the rollback-dependency cycle the violation induces
	// in the trace, when one exists (P3 witness).
	ZCycle []trace.Interval
}

// A Result summarizes one bounded exploration.
type Result struct {
	Config Config
	States int  // distinct states visited
	Hit    bool // state cap reached (exploration truncated)
	Cex    *Counterexample
	MaxCut int // highest cut finalized by every process in some run
}

// Explore exhaustively enumerates every interleaving of the model
// within the configured bounds (breadth-first, so a reported
// counterexample has a minimal violating prefix) and returns the first
// violation found, if any.
func Explore(cfg Config) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("protomodel: need at least 2 processes, have %d", cfg.N)
	}
	if cfg.N > 6 {
		return nil, fmt.Errorf("protomodel: %d processes is beyond the tractable bound (max 6)", cfg.N)
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}

	type node struct {
		st     *state
		parent *node
		act    Action
	}
	res := &Result{Config: cfg}
	root := &node{st: newState(&cfg)}
	visited := map[string]bool{root.st.key(): true}
	frontier := []*node{root}
	res.States = 1

	pathTo := func(n *node) []Action {
		var rev []Action
		for ; n.parent != nil; n = n.parent {
			rev = append(rev, n.act)
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return rev
	}

	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		if mf := cur.st.minFin(); mf > res.MaxCut {
			res.MaxCut = mf
		}
		for _, a := range cur.st.enabled(true) {
			next := cur.st.clone()
			vs := next.apply(a, nil)
			child := &node{st: next, parent: cur, act: a}
			if len(vs) > 0 {
				prefix := pathTo(child)
				cex := buildCounterexample(cfg, prefix, vs[0])
				res.Cex = cex
				return res, nil
			}
			k := next.key()
			if visited[k] {
				continue
			}
			if res.States >= maxStates {
				res.Hit = true
				continue
			}
			visited[k] = true
			res.States++
			frontier = append(frontier, child)
		}
	}
	return res, nil
}

// buildCounterexample extends the violating prefix with a crash-free
// completion of the violated cut, then replays the whole run through
// the semantics with event emission.
func buildCounterexample(cfg Config, prefix []Action, v Violation) *Counterexample {
	cex := &Counterexample{Violation: v, Actions: prefix, Prefix: len(prefix)}

	// Re-derive the post-prefix state (violations already known).
	st := newState(&cfg)
	for _, a := range prefix {
		st.apply(a, nil)
	}
	if tail, ok := completeCut(st, v.Seq); ok {
		cex.Actions = append(append([]Action(nil), prefix...), tail...)
		cex.CutComplete = true
	}

	// Replay with emission. The replay run gets an unlimited send
	// budget: the completion tail may use helper traffic beyond
	// cfg.MaxMsgs to spread finalization knowledge.
	replayCfg := cfg
	replayCfg.MaxMsgs = len(cex.Actions) + cfg.MaxMsgs
	em := &emitter{}
	rst := newState(&replayCfg)
	for _, a := range cex.Actions {
		rst.apply(a, em)
	}
	cex.Events = em.events
	cex.ZCycle = trace.ZCycles(em.events, trace.KFinalize)
	return cex
}

// completeCut searches (BFS, crash-free, send budget relaxed) for the
// shortest continuation after which every process has finalized cut
// seq, so the counterexample trace contains a complete S_seq cut.
func completeCut(start *state, seq int) ([]Action, bool) {
	if start.minFin() >= seq {
		return nil, true
	}
	// Helper traffic may exceed the exploration send budget: knowledge
	// of the initiation spreads only by message.
	const budgetSlack = 8
	const maxStates = 1 << 18
	st := start.clone()
	st.msgs += budgetSlack

	type node struct {
		st     *state
		parent *node
		act    Action
	}
	root := &node{st: st}
	visited := map[string]bool{st.key(): true}
	frontier := []*node{root}
	states := 1
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, a := range cur.st.enabled(false) {
			next := cur.st.clone()
			// Ignore violations on the completion tail: a mutated run
			// may trip the same property again; the prefix already
			// carries the reported breach.
			next.apply(a, nil)
			child := &node{st: next, parent: cur, act: a}
			if next.minFin() >= seq {
				var rev []Action
				for n := child; n.parent != nil; n = n.parent {
					rev = append(rev, n.act)
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, true
			}
			k := next.key()
			if visited[k] || states >= maxStates {
				continue
			}
			visited[k] = true
			states++
			frontier = append(frontier, child)
		}
	}
	return nil, false
}

// Sweep runs Explore over N = 2..maxN with the given per-N budgets and
// returns the first counterexample found across the sweep (nil result
// field when the protocol verifies clean).
func Sweep(maxN int, cfg Config) (*Result, error) {
	var last *Result
	for n := 2; n <= maxN; n++ {
		c := cfg
		c.N = n
		res, err := Explore(c)
		if err != nil {
			return nil, err
		}
		if last == nil {
			last = res
		} else {
			last.States += res.States
			last.Hit = last.Hit || res.Hit
			if res.MaxCut > last.MaxCut {
				last.MaxCut = res.MaxCut
			}
		}
		if res.Cex != nil {
			last.Cex = res.Cex
			last.Config = c
			return last, nil
		}
	}
	return last, nil
}
