package protomodel

import (
	"testing"

	"ocsml/internal/trace"
)

// cutAt builds the cut of S_seq from KFinalize events, false when some
// process never finalized seq.
func cutAt(events []trace.Event, n, seq int) (trace.Cut, bool) {
	cut := trace.NewCut(n)
	found := make([]bool, n)
	for _, e := range events {
		if e.Kind == trace.KFinalize && e.Seq == seq && e.Proc >= 0 && e.Proc < n {
			cut.At[e.Proc] = e.GSeq
			found[e.Proc] = true
		}
	}
	for _, ok := range found {
		if !ok {
			return trace.Cut{}, false
		}
	}
	return cut, true
}

func TestShape(t *testing.T) {
	states, edges := Shape()
	if len(states) != 2 || states[0] != "Normal" || states[1] != "Tentative" {
		t.Errorf("states = %v", states)
	}
	want := [][2]string{{"Normal", "Tentative"}, {"Tentative", "Normal"}, {"*", "Normal"}}
	if len(edges) != len(want) {
		t.Fatalf("edges = %v", edges)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestExploreBounds(t *testing.T) {
	if _, err := Explore(Config{N: 1}); err == nil {
		t.Error("N=1 should be rejected")
	}
	if _, err := Explore(Config{N: 7}); err == nil {
		t.Error("N=7 should be rejected")
	}
}

// TestCorrectProtocolClean is the tentpole property: the faithful
// Figure-3 semantics admit no orphan, no replay gap, and no impossible
// piggyback in ANY interleaving within the bounds.
func TestCorrectProtocolClean(t *testing.T) {
	for _, cfg := range []Config{
		{N: 2, MaxMsgs: 3, MaxInits: 2, MaxCrashes: 1},
		// N=3 needs 4 sends for a full cut: one to spread the initiation
		// through a chain, two to carry the finalization back.
		{N: 3, MaxMsgs: 4, MaxInits: 1, MaxCrashes: 1},
	} {
		res, err := Explore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cex != nil {
			t.Fatalf("N=%d: unexpected counterexample: %v\nactions: %v",
				cfg.N, res.Cex.Violation, res.Cex.Actions)
		}
		if res.Hit {
			t.Errorf("N=%d: state cap hit (%d states); bounds too loose for the cap", cfg.N, res.States)
		}
		if res.MaxCut < 1 {
			t.Errorf("N=%d: no run finalized cut S_1 (MaxCut=%d, %d states); bounds too tight to be meaningful",
				cfg.N, res.MaxCut, res.States)
		}
		t.Logf("N=%d clean over %d states, deepest full cut S_%d", cfg.N, res.States, res.MaxCut)
	}
}

func TestSweepClean(t *testing.T) {
	res, err := Sweep(3, Config{MaxMsgs: 2, MaxInits: 2, MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cex != nil {
		t.Fatalf("sweep found unexpected counterexample: %v", res.Cex.Violation)
	}
}

// TestMutationsCaught checks that each injected bug yields a
// counterexample whose emitted trace exhibits the claimed violation
// under the offline trace checks (the same ones cmd/tracecheck runs).
func TestMutationsCaught(t *testing.T) {
	cases := []struct {
		mut  Mutation
		cfg  Config
		prop Prop
	}{
		// Dropping one log append breaks replay sufficiency (P2): the
		// finalize finds processed ⊅ logged.
		{MutDropLog, Config{N: 2, MaxMsgs: 2, MaxInits: 2, MaxCrashes: 0}, PropReplay},
		// Finalizing after the receive instead of before moves the cut
		// point past the message: orphan of S_k (P1).
		{MutReorderFinalize, Config{N: 2, MaxMsgs: 2, MaxInits: 2, MaxCrashes: 0}, PropOrphan},
		// Skipping the piggyback examination misses the triggered
		// finalization; the receive commits against a stale cut (P1).
		{MutSkipConsume, Config{N: 2, MaxMsgs: 3, MaxInits: 2, MaxCrashes: 0}, PropOrphan},
	}
	for _, tc := range cases {
		t.Run(tc.mut.String(), func(t *testing.T) {
			cfg := tc.cfg
			cfg.Mutation = tc.mut
			res, err := Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cex := res.Cex
			if cex == nil {
				t.Fatalf("mutation %s not caught over %d states", tc.mut, res.States)
			}
			if cex.Violation.Prop != tc.prop {
				t.Fatalf("violation = %v, want prop %v", cex.Violation, tc.prop)
			}
			if !cex.CutComplete {
				t.Fatalf("cut S_%d not completed; trace cannot exhibit the breach", cex.Violation.Seq)
			}
			if cex.Prefix <= 0 || cex.Prefix > len(cex.Actions) {
				t.Fatalf("bad prefix %d of %d actions", cex.Prefix, len(cex.Actions))
			}
			if len(cex.Events) == 0 {
				t.Fatal("counterexample carries no trace events")
			}
			t.Logf("%s: %v\nactions: %v", tc.mut, cex.Violation, cex.Actions)

			switch tc.prop {
			case PropOrphan:
				cut, ok := cutAt(cex.Events, cfg.N, cex.Violation.Seq)
				if !ok {
					t.Fatalf("trace lacks a complete S_%d cut", cex.Violation.Seq)
				}
				rep := trace.CheckEvents(cex.Events, cut)
				if rep.Consistent() {
					t.Errorf("trace cut S_%d is consistent; expected an orphan", cex.Violation.Seq)
				}
			case PropReplay:
				gaps := trace.CheckReplay(cex.Events)
				if len(gaps) == 0 {
					t.Error("trace shows no replay gap; expected one")
				}
			}
		})
	}
}

// TestReorderFinalizeZCycle: the orphan the reorder bug creates closes a
// cycle in the rollback-dependency graph (the P3 witness), while the
// correct protocol's traces stay acyclic.
func TestReorderFinalizeZCycle(t *testing.T) {
	cfg := Config{N: 2, MaxMsgs: 2, MaxInits: 2, Mutation: MutReorderFinalize}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cex == nil {
		t.Fatal("reorder-finalize not caught")
	}
	if len(res.Cex.ZCycle) == 0 {
		t.Errorf("no Z-cycle in the reorder-finalize trace; RDG should be cyclic")
	} else {
		t.Logf("Z-cycle: %v", res.Cex.ZCycle)
	}
}

// TestCorrectTraceAcyclic replays a correct run and checks its RDG is
// acyclic and its cuts consistent end-to-end.
func TestCorrectTraceAcyclic(t *testing.T) {
	cfg := Config{N: 2, MaxMsgs: 3, MaxInits: 2}
	st := newState(&cfg)
	em := &emitter{}
	script := []Action{
		{OpSend, 0, 1}, {OpDeliver, 1, 0}, // plain exchange
		{OpInit, 0, 0},                    // P0 initiates S_1
		{OpSend, 0, 1}, {OpDeliver, 1, 0}, // piggyback spreads: P1 joins
		{OpSend, 1, 0}, {OpDeliver, 0, 1}, // P0 learns P1 tentative: finalize
	}
	for i, a := range script {
		if vs := st.apply(a, em); len(vs) > 0 {
			t.Fatalf("step %d (%v): unexpected violation %v", i, a, vs[0])
		}
	}
	if cyc := trace.ZCycles(em.events, trace.KFinalize); cyc != nil {
		t.Errorf("correct trace has Z-cycle %v", cyc)
	}
	if gaps := trace.CheckReplay(em.events); len(gaps) > 0 {
		t.Errorf("correct trace has replay gaps %v", gaps)
	}
}

// TestDeterministic: identical configs explore identical state counts
// and find identical counterexamples (the explorer is a build gate; it
// must not flake).
func TestDeterministic(t *testing.T) {
	cfg := Config{N: 2, MaxMsgs: 2, MaxInits: 2, Mutation: MutDropLog}
	a, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.States != b.States {
		t.Errorf("state counts differ: %d vs %d", a.States, b.States)
	}
	if a.Cex == nil || b.Cex == nil {
		t.Fatal("expected counterexamples from both runs")
	}
	if av, bv := a.Cex.Violation.String(), b.Cex.Violation.String(); av != bv {
		t.Errorf("violations differ: %q vs %q", av, bv)
	}
	if len(a.Cex.Actions) != len(b.Cex.Actions) {
		t.Errorf("action counts differ: %d vs %d", len(a.Cex.Actions), len(b.Cex.Actions))
	}
}

func TestParseMutation(t *testing.T) {
	for _, m := range Mutations() {
		got, ok := ParseMutation(m.String())
		if !ok || got != m {
			t.Errorf("ParseMutation(%q) = %v, %v", m.String(), got, ok)
		}
	}
	if _, ok := ParseMutation("no-such-bug"); ok {
		t.Error("ParseMutation accepted garbage")
	}
}
