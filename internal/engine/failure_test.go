package engine_test

// Live failure-injection tests: crash a process mid-run, roll the cluster
// back to the last stable consistent global checkpoint, reconstruct the
// channel state from the selective message logs, resume, and verify the
// computation still completes with consistent checkpoints.

import (
	"fmt"
	"testing"

	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/engine"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

func failureCluster(seed int64, n int, steps int64) (*engine.Cluster, []*core.Protocol) {
	cfg := engine.DefaultConfig()
	cfg.N = n
	cfg.Seed = seed
	cfg.StateBytes = 2 << 20
	cfg.CopyCost = des.Millisecond
	cfg.Drain = 10 * des.Second
	opt := core.DefaultOptions()
	opt.Interval = des.Second
	opt.Timeout = 300 * des.Millisecond
	protos := make([]*core.Protocol, n)
	pf := func(i, n int) protocol.Protocol {
		protos[i] = core.New(opt)
		return protos[i]
	}
	wl := workload.Config{
		Pattern: workload.UniformRandom, Steps: steps,
		Think: 10 * des.Millisecond, MsgBytes: 1 << 10,
	}
	return engine.New(cfg, pf, workload.Factory(wl)), protos
}

func TestFailureRecoveryCompletes(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c, protos := failureCluster(seed, 6, 400)
			c.InjectFailure(engine.FailurePlan{
				At:   2500 * des.Millisecond, // after ~2 checkpoint rounds
				Proc: int(seed) % 6,
			})
			r := c.Run()
			if !r.Completed {
				t.Fatal("run did not complete after recovery")
			}
			if r.Counter("recovery.recoveries") != 1 {
				t.Fatalf("recoveries = %d", r.Counter("recovery.recoveries"))
			}
			// Each process re-reached its full quota: work >= steps
			// (sends) per process.
			for p, w := range r.Works {
				if w < 400 {
					t.Fatalf("P%d work = %d after recovery, want >= 400", p, w)
				}
			}
			// The trace recorded the failure and N restores.
			if got := r.Trace.CountKind(trace.KFail); got != 1 {
				t.Fatalf("fail events = %d", got)
			}
			if got := r.Trace.CountKind(trace.KRestore); got != 6 {
				t.Fatalf("restore events = %d", got)
			}
			// Every remaining global checkpoint — pre-line and
			// post-recovery — is consistent.
			if _, err := r.CheckAllGlobals(); err != nil {
				t.Fatalf("post-recovery consistency: %v", err)
			}
			// Post-recovery checkpoints exist above the line.
			line := int(r.Counter("recovery.line_seq"))
			if r.Ckpts.MaxCompleteSeq() <= line {
				t.Fatalf("no new global checkpoints after recovery (line=%d max=%d)",
					line, r.Ckpts.MaxCompleteSeq())
			}
			// Protocols are healthy.
			for p, pr := range protos {
				if pr.Status() != core.Normal {
					t.Fatalf("P%d left tentative", p)
				}
			}
		})
	}
}

func TestFailureBeforeAnyCheckpoint(t *testing.T) {
	// Crash before the first checkpoint interval: the recovery line is
	// the initial state (seq 0) and the whole computation re-executes.
	c, _ := failureCluster(7, 4, 200)
	c.InjectFailure(engine.FailurePlan{At: 300 * des.Millisecond, Proc: 2})
	r := c.Run()
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if got := r.Counter("recovery.line_seq"); got != 0 {
		t.Fatalf("line = %d, want 0", got)
	}
	if _, err := r.CheckAllGlobals(); err != nil {
		t.Fatal(err)
	}
}

func TestFailureRecoveryReinjectsLoggedMessages(t *testing.T) {
	// With dense traffic and a crash just after a round finalizes, the
	// logs of the line checkpoint carry in-flight messages that must be
	// re-injected, and duplicates must be dropped.
	c, _ := failureCluster(3, 6, 600)
	c.InjectFailure(engine.FailurePlan{At: 2100 * des.Millisecond, Proc: 1})
	r := c.Run()
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if r.Counter("recovery.reinjected") == 0 {
		t.Fatal("no logged messages were re-injected")
	}
	if r.Counter("recovery.dup_dropped") == 0 {
		t.Log("no duplicates dropped (possible but unusual at this density)")
	}
	if r.Counter("recovery.stale_dropped") == 0 {
		t.Fatal("pre-failure in-flight envelopes should have been discarded")
	}
}

func TestFailureWithNonRewindableProtocolPanics(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.N = 4
	cfg.Drain = des.Second
	c := engine.New(cfg, func(i, n int) protocol.Protocol {
		return nonRewindable{}
	}, workload.Factory(workload.Config{
		Pattern: workload.UniformRandom, Steps: 500, Think: 10 * des.Millisecond,
	}))
	c.InjectFailure(engine.FailurePlan{At: 50 * des.Millisecond, Proc: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("recovery with a non-rewindable protocol should panic")
		}
	}()
	c.Run()
}

type nonRewindable struct{}

func (nonRewindable) Name() string                   { return "rigid" }
func (nonRewindable) Start(protocol.Env)             {}
func (nonRewindable) OnAppSend(*protocol.Envelope)   {}
func (nonRewindable) OnDeliver(e *protocol.Envelope) {}
func (nonRewindable) OnTimer(kind, gen int)          {}
func (nonRewindable) Finish()                        {}

func TestOverlappingFailuresPanic(t *testing.T) {
	c, _ := failureCluster(1, 4, 100)
	c.InjectFailure(engine.FailurePlan{At: des.Second, Proc: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping InjectFailure should panic")
		}
	}()
	c.InjectFailure(engine.FailurePlan{At: des.Second + 50*des.Millisecond, Proc: 1})
}

func TestRepeatedFailures(t *testing.T) {
	// Two sequential crashes of different processes: the cluster rolls
	// back twice and still completes with consistent checkpoints.
	c, protos := failureCluster(9, 6, 500)
	c.InjectFailure(engine.FailurePlan{At: 1800 * des.Millisecond, Proc: 1})
	c.InjectFailure(engine.FailurePlan{At: 3600 * des.Millisecond, Proc: 4})
	r := c.Run()
	if !r.Completed {
		t.Fatal("did not complete after two recoveries")
	}
	if got := r.Counter("recovery.recoveries"); got != 2 {
		t.Fatalf("recoveries = %d, want 2", got)
	}
	if got := r.Trace.CountKind(trace.KFail); got != 2 {
		t.Fatalf("fail events = %d", got)
	}
	if got := r.Trace.CountKind(trace.KRestore); got != 12 {
		t.Fatalf("restore events = %d", got)
	}
	if _, err := r.CheckAllGlobals(); err != nil {
		t.Fatalf("consistency after repeated failures: %v", err)
	}
	for p, pr := range protos {
		if pr.Status() != core.Normal {
			t.Fatalf("P%d left tentative", p)
		}
	}
	for p, w := range r.Works {
		if w < 500 {
			t.Fatalf("P%d work = %d", p, w)
		}
	}
}

func TestFailureInvalidProcPanics(t *testing.T) {
	c, _ := failureCluster(1, 4, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid proc should panic")
		}
	}()
	c.InjectFailure(engine.FailurePlan{At: des.Second, Proc: 9})
}
