// Package engine wires an application workload, a checkpointing protocol,
// the network, the stable-storage server and the trace recorder into a
// deterministic discrete-event simulation of one distributed computation.
//
// One Cluster hosts N processes. Each process is a Node pairing a
// protocol.App (the computation) with a protocol.Protocol (the
// checkpointing algorithm); the Node implements both protocol.Env and
// protocol.AppCtx, so protocol and application act on the world only
// through it. All callbacks run single-threaded inside the simulator.
package engine

import (
	"fmt"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/metrics"
	"ocsml/internal/netsim"
	"ocsml/internal/protocol"
	"ocsml/internal/storage"
	"ocsml/internal/trace"
)

// Config parameterizes a cluster run.
type Config struct {
	N    int
	Seed int64
	// FIFO selects per-channel FIFO delivery (required by the
	// Chandy–Lamport baseline; the paper's algorithm does not need it).
	FIFO bool
	// Latency is the network latency model (netsim.DefaultLatency if nil).
	Latency netsim.LatencyModel
	// DropRate makes the network lossy (0..1). Protocols then need the
	// reliable-transport middleware (internal/reliable) to be correct.
	DropRate float64
	// Storage configures the stable-storage server(s).
	Storage storage.Config
	// LocalStorage gives every process its own storage server (local
	// disks) instead of the shared network file server — the ablation
	// that isolates the paper's shared-storage contention argument.
	LocalStorage bool
	// StateBytes is the size of one process-state image (checkpoint).
	StateBytes int64
	// CopyCost is the local stall incurred when snapshotting process
	// state into memory (the cost of taking a tentative checkpoint).
	CopyCost des.Duration
	// Drain is how long the simulation keeps running after the workload
	// completes, letting protocols finalize outstanding checkpoints.
	Drain des.Duration
	// MaxTime aborts runaway simulations (0 = unbounded).
	MaxTime des.Time
	// TraceEnabled records the full event trace (disable for large
	// benchmark sweeps).
	TraceEnabled bool
}

// DefaultConfig returns a moderate cluster: 8 processes, 16 MB state
// images, 2007-era LAN and NFS server.
func DefaultConfig() Config {
	return Config{
		N:            8,
		Seed:         1,
		Storage:      storage.DefaultConfig(),
		StateBytes:   16 << 20,
		CopyCost:     5 * des.Millisecond,
		Drain:        60 * des.Second,
		MaxTime:      4 * des.Hour,
		TraceEnabled: true,
	}
}

// ProtoFactory builds the protocol instance for process i of n.
type ProtoFactory func(i, n int) protocol.Protocol

// AppFactory builds the application instance for process i of n.
type AppFactory func(i, n int) protocol.App

// Cluster is one simulated distributed computation.
type Cluster struct {
	cfg Config
	Sim *des.Simulator
	Net *netsim.Network
	// Store is the shared server (or the first local one).
	Store  *storage.Server
	stores []*storage.Server
	Rec    *trace.Recorder
	Ckpts  *checkpoint.Store

	nodes   []*Node
	failure *FailurePlan

	// Run-state mutated only while the simulation executes, i.e. on the
	// goroutine inside Cluster.Run. epoch is the recovery epoch, bumped
	// on rollback.
	doneN    int      //ocsml:loopowned Cluster.Run
	draining bool     //ocsml:loopowned Cluster.Run
	makespan des.Time //ocsml:loopowned Cluster.Run
	epoch    int      //ocsml:loopowned Cluster.Run

	// Metrics is the run's named-metric registry. The free-form Count
	// namespace lands here as the events family (the DES and the live
	// transport runtime share one metric catalog), and the engine's
	// first-class instruments below are registered series of it.
	Metrics *metrics.Registry
	events  func(name string, delta int64)

	appMsgs        *metrics.Counter
	piggyBytes     *metrics.Counter
	appLatency     *metrics.Summary // send→process latency, seconds
	stalledSeconds *metrics.Summary // per-node total stalled time
	protoName      string
}

// New builds a cluster. Protocol and application instances are created
// immediately; nothing runs until Run.
func New(cfg Config, pf ProtoFactory, af AppFactory) *Cluster {
	if cfg.N < 2 {
		panic(fmt.Sprintf("engine: need at least 2 processes, got %d", cfg.N))
	}
	if cfg.Storage.Bandwidth == 0 {
		cfg.Storage = storage.DefaultConfig()
	}
	sim := des.New(cfg.Seed)
	c := &Cluster{
		cfg:     cfg,
		Sim:     sim,
		Rec:     trace.NewRecorder(),
		Ckpts:   checkpoint.NewStore(cfg.N),
		Metrics: metrics.NewRegistry(),
	}
	c.events = c.Metrics.EventSink()
	c.appMsgs = c.Metrics.MustCounter("ocsml_app_messages_total",
		"Application messages sent.")
	c.piggyBytes = c.Metrics.MustCounter("ocsml_wire_piggyback_bytes_total",
		"Encoded bytes of protocol piggyback carried on application messages.")
	c.appLatency = c.Metrics.MustSummary("ocsml_app_latency_seconds",
		"Application message send-to-process latency.")
	c.stalledSeconds = c.Metrics.MustSummary("ocsml_app_stalled_seconds",
		"Per-process total time the application was stalled.")
	c.Rec.SetEnabled(cfg.TraceEnabled)
	if cfg.LocalStorage {
		c.stores = make([]*storage.Server, cfg.N)
		for i := range c.stores {
			c.stores[i] = storage.NewServer(sim, cfg.Storage)
		}
	} else {
		c.stores = []*storage.Server{storage.NewServer(sim, cfg.Storage)}
	}
	c.Store = c.stores[0]
	c.Net = netsim.New(sim, netsim.Config{
		N: cfg.N, FIFO: cfg.FIFO, Latency: cfg.Latency, DropRate: cfg.DropRate,
	}, c.deliver)
	c.nodes = make([]*Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		c.nodes[i] = &Node{c: c, id: i}
		c.nodes[i].proto = pf(i, cfg.N)
		c.nodes[i].app = af(i, cfg.N)
	}
	c.protoName = c.nodes[0].proto.Name()
	if cfg.MaxTime > 0 {
		sim.SetHorizon(cfg.MaxTime)
	}
	return c
}

// Node returns process i's node (used by the recovery tooling and tests).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Run executes the simulation to completion and returns the result.
func (c *Cluster) Run() *Result {
	for _, n := range c.nodes {
		n.proto.Start(n)
	}
	for _, n := range c.nodes {
		n.app.Start(appCtx{n})
	}
	c.Sim.Run()
	for _, n := range c.nodes {
		if n.stall > 0 {
			// Account stall time still open at end of run.
			n.stalledTotal += c.Sim.Now() - n.stallStart
			n.stall = 0
		}
		c.stalledSeconds.Observe(n.stalledTotal.Seconds())
	}
	return c.result()
}

// deliver routes an arriving envelope to its destination protocol. It
// is the network's delivery callback, invoked from the simulator's
// event queue inside Cluster.Run.
//
//ocsml:loopcontext Cluster.Run
func (c *Cluster) deliver(e *protocol.Envelope) {
	if e.Epoch != c.epoch {
		// Sent before a rollback: the channel contents of the old epoch
		// were discarded and rebuilt from the message logs.
		c.count("recovery.stale_dropped", 1)
		return
	}
	n := c.nodes[e.Dst]
	if e.Kind == protocol.KindCtl {
		c.Rec.Record(trace.Event{
			T: c.Sim.Now(), Kind: trace.KCtlRecv, Proc: e.Dst, Peer: e.Src,
			MsgID: e.ID, Seq: -1, Tag: e.CtlTag,
		})
	}
	n.proto.OnDeliver(e)
}

// appDone is called once per node when its workload quota completes.
func (c *Cluster) appDone() {
	c.doneN++
	if c.doneN == c.cfg.N && !c.draining {
		c.draining = true
		c.makespan = c.Sim.Now()
		for _, n := range c.nodes {
			n.proto.Finish()
		}
		c.Sim.At(c.Sim.Now()+c.cfg.Drain, c.Sim.Stop)
	}
}

func (c *Cluster) count(name string, delta int64) { c.events(name, delta) }

// after schedules fn on the simulator's event queue. Every callback
// fires inside Sim.Run, on the goroutine executing Cluster.Run; the
// assertion below carries that fact across the event queue, which the
// ownership analyzer's callgraph cannot see through. Engine code must
// schedule closures via this wrapper (or Cluster.Sim with an explicit
// exemption) so their field accesses stay proven.
//
//ocsml:looppost Cluster.Run
func (c *Cluster) after(d des.Duration, fn func()) *des.Timer {
	return c.Sim.After(d, fn)
}

// storeFor returns process i's stable-storage server.
func (c *Cluster) storeFor(i int) *storage.Server {
	if len(c.stores) == 1 {
		return c.stores[0]
	}
	return c.stores[i]
}
