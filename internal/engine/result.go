package engine

import (
	"fmt"
	"sort"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/metrics"
	"ocsml/internal/netsim"
	"ocsml/internal/storage"
	"ocsml/internal/trace"
)

// Result is everything a finished simulation exposes for analysis.
type Result struct {
	Cfg       Config
	ProtoName string
	// Completed reports that every process finished its work quota
	// (false means the MaxTime horizon cut the run short).
	Completed bool
	// Makespan is when the last process finished its workload — the
	// headline overhead metric: protocols that block or congest storage
	// push it up.
	Makespan des.Time
	// End is the final virtual time including the drain period.
	End des.Time

	TotalWork      int64
	AppMsgs        int64
	CtlMsgs        int64
	WireBytes      int64
	PiggybackBytes int64

	// AppLatency is the application message send→process delay.
	AppLatency *metrics.Summary
	// StalledSeconds has one observation per process: total time its
	// application was stalled (blocking writes, snapshot copies,
	// protocol-imposed blocking).
	StalledSeconds *metrics.Summary

	// Counters are the protocol's free-form named statistics
	// ("ctl.CK_BGN", "forced", ...), plus engine-added entries — a
	// snapshot of the registry's events family.
	Counters map[string]int64
	// Metrics is the run's named-metric registry (the same catalog a
	// live cluster serves at /metrics).
	Metrics *metrics.Registry

	Ckpts *checkpoint.Store
	Trace *trace.Recorder
	// Storage is the shared server (or the first local one); Stores
	// lists every server (one per process under Config.LocalStorage).
	Storage *storage.Server
	Stores  []*storage.Server
	Net     *netsim.Network

	// Folds and Works capture each node's final application state, used
	// by recovery validation.
	Folds []uint64
	Works []int64
}

func (c *Cluster) result() *Result {
	r := &Result{
		Cfg:            c.cfg,
		ProtoName:      c.protoName,
		Completed:      c.doneN == c.cfg.N,
		Makespan:       c.makespan,
		End:            c.Sim.Now(),
		AppMsgs:        c.appMsgs.Value(),
		CtlMsgs:        c.Net.CtlCount.Value(),
		WireBytes:      c.Net.ByteCount.Value(),
		PiggybackBytes: c.piggyBytes.Value(),
		AppLatency:     c.appLatency,
		StalledSeconds: c.stalledSeconds,
		Counters:       c.Metrics.EventCounts(),
		Metrics:        c.Metrics,
		Ckpts:          c.Ckpts,
		Trace:          c.Rec,
		Storage:        c.Store,
		Stores:         c.stores,
		Net:            c.Net,
	}
	for _, n := range c.nodes {
		r.TotalWork += n.work
		r.Folds = append(r.Folds, n.fold)
		r.Works = append(r.Works, n.work)
	}
	return r
}

// Counter returns a named counter (0 if absent).
func (r *Result) Counter(name string) int64 { return r.Counters[name] }

// CounterNames returns the sorted counter keys.
func (r *Result) CounterNames() []string {
	names := make([]string, 0, len(r.Counters))
	//ocsml:unordered collects the key set; sorted before returning
	for k := range r.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CutKind returns the trace event kind that marks this protocol's cut
// points: KFinalize for the paper's two-phase checkpoints, KCheckpoint for
// monolithic baselines. It inspects the trace.
func (r *Result) CutKind() trace.Kind {
	if r.Trace.CountKind(trace.KFinalize) > 0 {
		return trace.KFinalize
	}
	return trace.KCheckpoint
}

// CheckGlobal verifies the consistency of global checkpoint S_seq against
// the trace. It returns an error when the cut cannot be constructed or is
// inconsistent.
func (r *Result) CheckGlobal(seq int) error {
	kind := r.CutKind()
	cut, ok := r.Trace.CutAt(r.Cfg.N, kind, seq)
	if !ok {
		return fmt.Errorf("no complete %v cut for seq %d", kind, seq)
	}
	rep := r.Trace.CheckCut(cut)
	if !rep.Consistent() {
		return fmt.Errorf("S_%d inconsistent: %d orphan message(s), first %+v",
			seq, len(rep.Orphans), rep.Orphans[0])
	}
	return nil
}

// CheckAllGlobals verifies every complete global checkpoint in the run.
// It returns the checked sequence numbers.
func (r *Result) CheckAllGlobals() ([]int, error) {
	seqs := r.Ckpts.CompleteSeqs()
	for _, seq := range seqs {
		if seq == 0 {
			continue // initial state, no cut events exist
		}
		if err := r.CheckGlobal(seq); err != nil {
			return seqs, err
		}
	}
	return seqs, nil
}

// GlobalCheckpoints returns how many complete global checkpoints the run
// produced (excluding the implicit initial one).
func (r *Result) GlobalCheckpoints() int {
	n := 0
	for _, s := range r.Ckpts.CompleteSeqs() {
		if s > 0 {
			n++
		}
	}
	return n
}

// MeanFinalizationLatency averages tentative→finalize latency over all
// finalized checkpoints with seq > 0, in seconds.
func (r *Result) MeanFinalizationLatency() float64 {
	var sum float64
	var n int
	for p := 0; p < r.Cfg.N; p++ {
		for _, rec := range r.Ckpts.Proc(p).All() {
			if rec.Seq == 0 {
				continue
			}
			sum += rec.FinalizationLatency().Seconds()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// StorageMeanWaitAll aggregates the mean queueing wait across all storage
// servers (equals Storage.MeanWait() in shared mode).
func (r *Result) StorageMeanWaitAll() float64 {
	var sum float64
	var n int
	for _, s := range r.Stores {
		sum += s.WaitTime.Sum()
		n += s.WaitTime.Count()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// StoragePeakAll returns the maximum queue depth across all servers.
func (r *Result) StoragePeakAll() int64 {
	var peak int64
	for _, s := range r.Stores {
		if p := s.PeakQueue(); p > peak {
			peak = p
		}
	}
	return peak
}

// TotalLogBytes sums message-log bytes over all finalized checkpoints.
func (r *Result) TotalLogBytes() int64 {
	var total int64
	for p := 0; p < r.Cfg.N; p++ {
		for _, rec := range r.Ckpts.Proc(p).All() {
			total += rec.LogBytes()
		}
	}
	return total
}
