package engine

import (
	"fmt"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
)

// FailurePlan injects a crash into a run: process Proc fails at time At
// (losing all volatile state — unfinalized tentative checkpoints,
// in-memory logs, in-flight messages to and from it). After DetectDelay
// the cluster performs a coordinated rollback to the most recent global
// checkpoint that is complete on stable storage, reconstructs the channel
// contents from the selective message logs, and resumes the computation.
//
// This is the paper's recovery model for its class of algorithms:
// "recovery ... is simple since processes need only to roll back to the
// last committed global checkpoint" (§1), combined with log-based channel
// replay from C_{i,k} = CT_{i,k} ∪ logSet_{i,k}.
type FailurePlan struct {
	At          des.Time
	Proc        int
	DetectDelay des.Duration
}

// InjectFailure schedules a crash before Run. The hosted protocol must
// implement protocol.Rewinder and the application protocol.RewindableApp;
// the engine panics at recovery time otherwise. Multiple failures may be
// injected as long as their crash/recovery windows do not overlap
// (each At must lie after the previous failure's recovery).
func (c *Cluster) InjectFailure(plan FailurePlan) {
	if plan.Proc < 0 || plan.Proc >= c.cfg.N {
		panic(fmt.Sprintf("engine: failure of invalid process %d", plan.Proc))
	}
	if plan.DetectDelay <= 0 {
		plan.DetectDelay = 100 * des.Millisecond
	}
	if prev := c.failure; prev != nil && plan.At <= prev.At+prev.DetectDelay {
		panic(fmt.Sprintf("engine: failure at %v overlaps previous recovery window (ends %v)",
			plan.At, prev.At+prev.DetectDelay))
	}
	c.failure = &plan
	// Enable dedup bookkeeping from the start: the restored cluster must
	// recognize messages that are already part of the recovery line.
	for _, n := range c.nodes {
		if n.processed == nil { //ocsml:loopexempt pre-Run setup, before the simulation starts
			n.processed = map[int64]des.Time{} //ocsml:loopexempt pre-Run setup, before the simulation starts
		}
	}
	c.Sim.At(plan.At, func() { c.failProcess(plan.Proc) })
	c.Sim.At(plan.At+plan.DetectDelay, c.recoverAll)
}

// failProcess crashes one process: its volatile state is gone, the
// network stops delivering to and from it. It fires from the simulator
// event scheduled by InjectFailure, inside Cluster.Run.
//
//ocsml:loopcontext Cluster.Run
func (c *Cluster) failProcess(proc int) {
	n := c.nodes[proc]
	n.failed = true
	c.Net.SetDown(proc, true)
	c.Rec.Record(trace.Event{T: c.Sim.Now(), Kind: trace.KFail, Proc: proc, Peer: -1, Seq: -1})
	c.count("recovery.failures", 1)
}

// recoveryLine picks the highest sequence number whose checkpoints are
// complete and already on stable storage at this instant.
func (c *Cluster) recoveryLine() int {
	now := c.Sim.Now()
	best := 0
	for seq := 1; seq <= c.Ckpts.MaxCompleteSeq(); seq++ {
		ok := true
		for p := 0; p < c.cfg.N; p++ {
			r, found := c.Ckpts.Proc(p).Get(seq)
			if !found || r.StableAt == 0 || r.StableAt > now {
				ok = false
				break
			}
		}
		if ok {
			best = seq
		}
	}
	return best
}

// recoverAll performs the coordinated rollback and resumption. Like
// failProcess it fires from the simulator event scheduled by
// InjectFailure, inside Cluster.Run.
//
//ocsml:loopcontext Cluster.Run
func (c *Cluster) recoverAll() {
	if c.draining {
		// The workload already completed; there is nothing to resume.
		// The crashed process stays down through the drain.
		c.count("recovery.skipped_after_completion", 1)
		return
	}
	now := c.Sim.Now()
	seq := c.recoveryLine()
	c.count("recovery.line_seq", int64(seq))

	// New epoch: every pre-failure timer, stall, deferred action and
	// in-flight envelope is void. Channel contents will be rebuilt from
	// the logs below.
	c.epoch++
	c.doneN = 0

	for p := 0; p < c.cfg.N; p++ {
		n := c.nodes[p]
		rec, ok := c.Ckpts.Proc(p).Get(seq)
		if !ok {
			panic(fmt.Sprintf("engine: recovery line %d missing on P%d", seq, p))
		}
		// Checkpoints above the line are rolled back; the protocol will
		// legitimately regenerate those sequence numbers.
		if removed := c.Ckpts.Proc(p).TruncateAfter(seq); removed > 0 {
			c.count("recovery.ckpts_discarded", int64(removed))
		}

		n.failed = false
		c.Net.SetDown(p, false)
		n.epoch = c.epoch
		n.stall = 0
		n.deferred = nil
		n.appDone = false

		// Restore the state at the cut point: CT state plus the logged
		// message replay (CFEFold == FoldLog(Fold, Log), a validated
		// invariant); the work and progress counters were snapshotted at
		// CFE.
		n.fold = rec.CFEFold
		n.work = rec.CFEWork
		n.lineCFE = rec.FinalizedAt
		n.restoreAt = now

		rew, ok := n.proto.(protocol.Rewinder)
		if !ok {
			panic(fmt.Sprintf("engine: protocol %q does not support rollback", n.proto.Name()))
		}
		rew.Rollback(seq)
		c.Rec.Record(trace.Event{T: now, Kind: trace.KRestore, Proc: p, Peer: -1, Seq: seq})
	}

	// Reconstruct the channel state: every message logged as Sent whose
	// receive is not part of the recovery line is re-injected. Receiver-
	// side dedup (processApp) drops the ones already inside the line, so
	// we simply re-inject all logged sends.
	for p := 0; p < c.cfg.N; p++ {
		rec, _ := c.Ckpts.Proc(p).Get(seq)
		for _, m := range rec.Log {
			if m.Dir != checkpoint.Sent {
				continue
			}
			e := &protocol.Envelope{
				ID: m.ID, Src: m.Src, Dst: m.Dst,
				Kind: protocol.KindApp, Bytes: m.Bytes,
				App:   protocol.AppMsg{Seq: m.AppSeq, Bytes: m.Bytes, Tag: m.Tag},
				Epoch: c.epoch,
			}
			// The sender's (rolled-back) protocol wraps the replayed
			// message with its current piggyback, exactly as it would a
			// fresh send.
			c.nodes[m.Src].proto.OnAppSend(e)
			e.SentAt = now
			c.Net.Inject(e)
			c.count("recovery.reinjected", 1)
		}
	}

	// Resume the applications from the progress recorded at the cut.
	for p := 0; p < c.cfg.N; p++ {
		n := c.nodes[p]
		rec, _ := c.Ckpts.Proc(p).Get(seq)
		ra, ok := n.app.(protocol.RewindableApp)
		if !ok {
			panic(fmt.Sprintf("engine: application on P%d does not support rollback", p))
		}
		ra.Restore(appCtx{n}, rec.CFEProgress)
	}
	c.count("recovery.recoveries", 1)
}
