package engine

import (
	"fmt"
	"math/rand"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/metrics"
	"ocsml/internal/protocol"
	"ocsml/internal/storage"
	"ocsml/internal/trace"
)

// Node is one simulated process: the meeting point of application,
// protocol, network and storage. It implements protocol.Env (the
// protocol's view) and protocol.AppCtx (the application's view).
//
// The engine is a single-threaded discrete-event simulation: every
// protocol and application callback fires inside Sim.Run, on the
// goroutine executing Cluster.Run. The type-wide assertion below
// carries that fact to the ownership analyzer, which cannot see
// through the interface dispatch from protocol/app code back into
// these methods.
//
//ocsml:loopcontext Cluster.Run
type Node struct {
	c     *Cluster
	id    int
	proto protocol.Protocol
	app   protocol.App

	// Application state: a deterministic fold over processed events plus
	// a work counter. This is what checkpoints capture.
	fold    uint64 //ocsml:loopowned Cluster.Run
	work    int64  //ocsml:loopowned Cluster.Run
	appSeq  int64  //ocsml:loopowned Cluster.Run
	appDone bool   //ocsml:loopowned Cluster.Run

	// Stall handling: while stall > 0 the application makes no progress;
	// its deliveries and timer callbacks queue in deferred.
	stall        int          //ocsml:loopowned Cluster.Run
	stallStart   des.Time     //ocsml:loopowned Cluster.Run
	stalledTotal des.Duration //ocsml:loopowned Cluster.Run
	deferred     []func()     //ocsml:loopowned Cluster.Run

	// Failure/recovery state (only used when a failure is injected):
	// epoch is bumped at rollback and invalidates timers; processed maps
	// envelope id → processing time for receiver-side dedup; lineCFE is
	// the recovery-line cut time after a restore; restoreAt is when this
	// node was last restored (0 = never).
	failed    bool               //ocsml:loopowned Cluster.Run
	epoch     int                //ocsml:loopowned Cluster.Run
	processed map[int64]des.Time //ocsml:loopowned Cluster.Run
	lineCFE   des.Time           //ocsml:loopowned Cluster.Run
	restoreAt des.Time           //ocsml:loopowned Cluster.Run
}

// appCtx is the application's view of a Node. It shadows Env.Send with
// the application-level Send signature; everything else promotes from the
// embedded Node.
type appCtx struct{ *Node }

// Send implements protocol.AppCtx.
func (a appCtx) Send(dst int, m protocol.AppMsg) { a.sendApp(dst, m) }

var (
	_ protocol.Env    = (*Node)(nil)
	_ protocol.AppCtx = appCtx{}
)

// ---- shared identity ----

// ID implements protocol.Env and protocol.AppCtx.
func (n *Node) ID() int { return n.id }

// N implements protocol.Env and protocol.AppCtx.
func (n *Node) N() int { return n.c.cfg.N }

// Now implements protocol.Env and protocol.AppCtx.
func (n *Node) Now() des.Time { return n.c.Sim.Now() }

// Rand implements protocol.Env and protocol.AppCtx.
func (n *Node) Rand() *rand.Rand { return n.c.Sim.Rand() }

// Fold returns the node's current deterministic state fold (tests and
// recovery validation).
func (n *Node) Fold() uint64 { return n.fold }

// Work returns the node's completed work units.
func (n *Node) Work() int64 { return n.work }

// ---- protocol.Env ----

// Send implements protocol.Env. Control envelopes are traced and counted;
// application envelopes were already traced in sendApp.
func (n *Node) Send(e *protocol.Envelope) {
	e.Src = n.id
	e.Epoch = n.c.epoch
	if e.Kind == protocol.KindCtl {
		if e.ID == 0 {
			e.ID = n.c.Net.AllocID()
		}
		n.c.count("ctl."+e.CtlTag, 1)
		n.c.Rec.Record(trace.Event{
			T: n.Now(), Kind: trace.KCtlSend, Proc: n.id, Peer: e.Dst,
			MsgID: e.ID, Seq: -1, Tag: e.CtlTag,
		})
	}
	n.c.Net.Send(e)
}

// Broadcast implements protocol.Env.
func (n *Node) Broadcast(e *protocol.Envelope) {
	for dst := 0; dst < n.c.cfg.N; dst++ {
		if dst == n.id {
			continue
		}
		cp := *e
		cp.ID = 0
		cp.Dst = dst
		n.Send(&cp)
	}
}

// SetTimer implements protocol.Env. Timers die with the epoch that set
// them: a rollback invalidates everything scheduled before it.
func (n *Node) SetTimer(d des.Duration, kind, gen int) *des.Timer {
	ep := n.epoch
	return n.c.after(d, func() {
		if n.epoch != ep || n.failed {
			return
		}
		n.proto.OnTimer(kind, gen)
	})
}

// WriteStable implements protocol.Env.
func (n *Node) WriteStable(tag string, bytes int64, done func(start, end des.Time)) {
	n.c.storeFor(n.id).Enqueue(n.id, tag, bytes, func(w storage.Write) {
		if done != nil {
			done(w.Start, w.End)
		}
	})
}

// WriteStableBlocking implements protocol.Env.
func (n *Node) WriteStableBlocking(tag string, bytes int64, done func(start, end des.Time)) {
	n.StallApp()
	n.c.storeFor(n.id).Enqueue(n.id, tag, bytes, func(w storage.Write) {
		n.ResumeApp()
		if done != nil {
			done(w.Start, w.End)
		}
	})
}

// StorageQueueLen implements protocol.Env.
func (n *Node) StorageQueueLen() int { return n.c.storeFor(n.id).QueueLen() }

// StallApp implements protocol.Env.
func (n *Node) StallApp() {
	if n.stall == 0 {
		n.stallStart = n.Now()
	}
	n.stall++
}

// ResumeApp implements protocol.Env.
func (n *Node) ResumeApp() {
	if n.stall == 0 {
		panic(fmt.Sprintf("engine: ResumeApp without StallApp on P%d", n.id))
	}
	n.stall--
	if n.stall == 0 {
		n.stalledTotal += n.Now() - n.stallStart
		// Drain deferred application actions in arrival order. A
		// deferred action may stall again; stop draining if so.
		for len(n.deferred) > 0 && n.stall == 0 {
			fn := n.deferred[0]
			n.deferred = n.deferred[1:]
			fn()
		}
	}
}

// StallAppFor implements protocol.Env.
func (n *Node) StallAppFor(d des.Duration) {
	if d <= 0 {
		return
	}
	n.StallApp()
	ep := n.epoch
	n.c.after(d, func() {
		if n.epoch != ep {
			return // the stall was wiped by a rollback
		}
		n.ResumeApp()
	})
}

// Snapshot implements protocol.Env. Taking a snapshot stalls the
// application for the configured copy cost (the price of recording the
// process image in memory).
func (n *Node) Snapshot() protocol.Snapshot {
	n.StallAppFor(n.c.cfg.CopyCost)
	return n.Peek()
}

// Peek implements protocol.Env: a zero-cost state read.
func (n *Node) Peek() protocol.Snapshot {
	s := protocol.Snapshot{Bytes: n.c.cfg.StateBytes, Fold: n.fold, Work: n.work}
	if ra, ok := n.app.(protocol.RewindableApp); ok {
		s.Progress = ra.Progress()
	}
	return s
}

// DeliverApp implements protocol.Env: hand an application envelope to the
// application, deferring if the app is stalled.
func (n *Node) DeliverApp(e *protocol.Envelope, pre, then func()) {
	if e.Kind != protocol.KindApp {
		panic("engine: DeliverApp on control envelope")
	}
	if n.stall > 0 {
		n.deferred = append(n.deferred, func() { n.processApp(e, pre, then) })
		return
	}
	n.processApp(e, pre, then)
}

func (n *Node) processApp(e *protocol.Envelope, pre, then func()) {
	if n.processed != nil {
		// Recovery dedup: drop the message if it is already reflected in
		// the restored state (processed at or before the recovery line)
		// or was already re-processed since the restore. Messages
		// processed between the line and the failure were rolled back,
		// so re-processing them once is correct.
		if t, ok := n.processed[e.ID]; ok && n.restoreAt > 0 &&
			(t <= n.lineCFE || t >= n.restoreAt) {
			n.c.count("recovery.dup_dropped", 1)
			return
		}
		n.processed[e.ID] = n.Now()
	}
	n.c.appLatency.Observe((n.Now() - e.SentAt).Seconds())
	n.c.Rec.Record(trace.Event{
		T: n.Now(), Kind: trace.KRecv, Proc: n.id, Peer: e.Src, MsgID: e.ID, Seq: -1,
	})
	n.fold = checkpoint.FoldEvent(n.fold, checkpoint.Received, e.Src, e.Dst, e.App.Tag, e.App.Seq)
	if pre != nil {
		pre()
	}
	n.app.OnMessage(appCtx{n}, e.Src, e.App)
	if then != nil {
		then()
	}
}

// Checkpoints implements protocol.Env.
func (n *Node) Checkpoints() *checkpoint.ProcStore { return n.c.Ckpts.Proc(n.id) }

// Note implements protocol.Env.
func (n *Node) Note(kind trace.Kind, seq int) {
	n.c.Rec.Record(trace.Event{T: n.Now(), Kind: kind, Proc: n.id, Peer: -1, Seq: seq})
}

// Count implements protocol.Env.
func (n *Node) Count(name string, delta int64) { n.c.count(name, delta) }

// Metrics implements protocol.Env.
func (n *Node) Metrics() *metrics.Registry { return n.c.Metrics }

// Draining implements protocol.Env.
func (n *Node) Draining() bool { return n.c.draining }

// ---- protocol.AppCtx (via appCtx) ----

// sendApp emits an application message: the engine assigns identity and
// content tag, folds the send event into the state, traces it, lets the
// protocol piggyback (and possibly log) it, then transmits.
func (n *Node) sendApp(dst int, m protocol.AppMsg) {
	if dst == n.id || dst < 0 || dst >= n.c.cfg.N {
		panic(fmt.Sprintf("engine: P%d sending to invalid destination %d", n.id, dst))
	}
	n.appSeq++
	m.Seq = n.appSeq
	if m.Tag == 0 {
		m.Tag = n.Rand().Uint64() | 1
	}
	e := &protocol.Envelope{
		ID: n.c.Net.AllocID(), Src: n.id, Dst: dst,
		Kind: protocol.KindApp, Bytes: m.Bytes, App: m,
		Epoch: n.c.epoch,
	}
	n.fold = checkpoint.FoldEvent(n.fold, checkpoint.Sent, n.id, dst, m.Tag, m.Seq)
	n.c.appMsgs.Inc()
	n.c.Rec.Record(trace.Event{
		T: n.Now(), Kind: trace.KSend, Proc: n.id, Peer: dst, MsgID: e.ID, Seq: -1,
	})
	n.proto.OnAppSend(e)
	if pig := e.Bytes - m.Bytes; pig > 0 {
		n.c.piggyBytes.Add(pig)
	}
	n.c.Net.Send(e)
}

// After implements protocol.AppCtx. The callback is deferred while the
// application is stalled — this is how blocking checkpoints inflate the
// makespan. Like protocol timers, application callbacks die with their
// epoch on rollback.
func (n *Node) After(d des.Duration, fn func()) *des.Timer {
	ep := n.epoch
	return n.c.after(d, func() {
		if n.epoch != ep || n.failed {
			return
		}
		if n.stall > 0 {
			n.deferred = append(n.deferred, fn)
			return
		}
		fn()
	})
}

// DoWork implements protocol.AppCtx.
func (n *Node) DoWork(units int64) { n.work += units }

// Done implements protocol.AppCtx.
func (n *Node) Done() {
	if n.appDone {
		return
	}
	n.appDone = true
	n.c.appDone()
}
