package engine

import (
	"testing"

	"ocsml/internal/baseline/nop"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

func smallCfg(seed int64) Config {
	cfg := DefaultConfig()
	cfg.N = 4
	cfg.Seed = seed
	cfg.Drain = des.Second
	cfg.StateBytes = 1 << 20
	cfg.CopyCost = 0
	return cfg
}

func smallWorkload() workload.Config {
	w := workload.DefaultConfig()
	w.Steps = 50
	w.Think = des.Millisecond
	return w
}

func TestRunCompletes(t *testing.T) {
	c := New(smallCfg(1), nop.Factory(), workload.Factory(smallWorkload()))
	r := c.Run()
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if r.Makespan <= 0 || r.End < r.Makespan {
		t.Fatalf("times: makespan=%v end=%v", r.Makespan, r.End)
	}
	// Each process performs 50 send-steps; receives add more work.
	if r.TotalWork < 4*50 {
		t.Fatalf("TotalWork = %d", r.TotalWork)
	}
	if r.AppMsgs != 4*50 {
		t.Fatalf("AppMsgs = %d, want 200", r.AppMsgs)
	}
	if r.CtlMsgs != 0 {
		t.Fatalf("nop protocol sent %d control messages", r.CtlMsgs)
	}
	if r.ProtoName != "none" {
		t.Fatalf("ProtoName = %q", r.ProtoName)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		return New(smallCfg(42), nop.Factory(), workload.Factory(smallWorkload())).Run()
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.Folds {
		if a.Folds[i] != b.Folds[i] {
			t.Fatalf("fold %d differs", i)
		}
	}
	if a.Trace.Len() != b.Trace.Len() {
		t.Fatal("trace lengths differ")
	}
	c := New(smallCfg(43), nop.Factory(), workload.Factory(smallWorkload())).Run()
	if c.Makespan == a.Makespan && c.Folds[0] == a.Folds[0] {
		t.Fatal("different seeds gave identical results (suspicious)")
	}
}

func TestSendReceiveTraced(t *testing.T) {
	r := New(smallCfg(7), nop.Factory(), workload.Factory(smallWorkload())).Run()
	sends := r.Trace.CountKind(trace.KSend)
	recvs := r.Trace.CountKind(trace.KRecv)
	if int64(sends) != r.AppMsgs {
		t.Fatalf("sends traced %d, AppMsgs %d", sends, r.AppMsgs)
	}
	if recvs != sends {
		t.Fatalf("recvs %d != sends %d (all messages should arrive)", recvs, sends)
	}
}

// stallProto stalls the app for a long window at start; the makespan must
// grow accordingly versus nop.
type stallProto struct {
	env protocol.Env
	d   des.Duration
}

func (p *stallProto) Name() string                 { return "stall" }
func (p *stallProto) Start(env protocol.Env)       { p.env = env; env.StallAppFor(p.d) }
func (p *stallProto) OnAppSend(*protocol.Envelope) {}
func (p *stallProto) OnDeliver(e *protocol.Envelope) {
	if e.IsApp() {
		p.env.DeliverApp(e, nil, nil)
	}
}
func (p *stallProto) OnTimer(kind, gen int) {}
func (p *stallProto) Finish()               {}

func TestStallInflatesMakespan(t *testing.T) {
	base := New(smallCfg(5), nop.Factory(), workload.Factory(smallWorkload())).Run()
	stall := des.Duration(2 * des.Second)
	slow := New(smallCfg(5), func(int, int) protocol.Protocol {
		return &stallProto{d: stall}
	}, workload.Factory(smallWorkload())).Run()
	if slow.Makespan < base.Makespan+stall/2 {
		t.Fatalf("stall did not inflate makespan: base=%v slow=%v", base.Makespan, slow.Makespan)
	}
	if slow.StalledSeconds.Sum() < 4*1.9 {
		t.Fatalf("stalled seconds = %v, want ~8", slow.StalledSeconds.Sum())
	}
}

func TestDeferredDeliveryPreservesMessages(t *testing.T) {
	// With stalls, messages arriving during the stall must still be
	// processed (deferred), not lost: recvs == sends.
	r := New(smallCfg(5), func(int, int) protocol.Protocol {
		return &stallProto{d: 500 * des.Millisecond}
	}, workload.Factory(smallWorkload())).Run()
	if got, want := r.Trace.CountKind(trace.KRecv), r.Trace.CountKind(trace.KSend); got != want {
		t.Fatalf("recvs %d != sends %d", got, want)
	}
}

// writerProto issues one blocking stable write per process at start.
type writerProto struct {
	env  protocol.Env
	done bool
}

func (p *writerProto) Name() string { return "writer" }
func (p *writerProto) Start(env protocol.Env) {
	p.env = env
	env.WriteStableBlocking("ckpt", 1<<20, func(start, end des.Time) { p.done = true })
}
func (p *writerProto) OnAppSend(*protocol.Envelope) {}
func (p *writerProto) OnDeliver(e *protocol.Envelope) {
	if e.IsApp() {
		p.env.DeliverApp(e, nil, nil)
	}
}
func (p *writerProto) OnTimer(kind, gen int) {}
func (p *writerProto) Finish()               {}

func TestBlockingWritesContendAtStorage(t *testing.T) {
	r := New(smallCfg(3), func(int, int) protocol.Protocol {
		return &writerProto{}
	}, workload.Factory(smallWorkload())).Run()
	// All 4 processes write 1 MiB at t=0 → peak queue 4, nonzero waits.
	if r.Storage.PeakQueue() != 4 {
		t.Fatalf("PeakQueue = %d, want 4", r.Storage.PeakQueue())
	}
	if r.Storage.MeanWait() <= 0 {
		t.Fatal("expected queueing delay at storage")
	}
	if r.Storage.WriteCount.Value() != 4 {
		t.Fatalf("writes = %d", r.Storage.WriteCount.Value())
	}
}

func TestLocalStorageRemovesQueueing(t *testing.T) {
	cfg := smallCfg(3)
	cfg.LocalStorage = true
	r := New(cfg, func(int, int) protocol.Protocol {
		return &writerProto{}
	}, workload.Factory(smallWorkload())).Run()
	// Four processes write 1 MiB each at t=0, but to four separate
	// disks: no server ever sees more than one write.
	if got := r.StoragePeakAll(); got != 1 {
		t.Fatalf("StoragePeakAll = %d, want 1", got)
	}
	if got := r.StorageMeanWaitAll(); got != 0 {
		t.Fatalf("StorageMeanWaitAll = %v, want 0", got)
	}
	if len(r.Stores) != 4 {
		t.Fatalf("Stores = %d, want 4", len(r.Stores))
	}
	var writes int64
	for _, s := range r.Stores {
		writes += s.WriteCount.Value()
	}
	if writes != 4 {
		t.Fatalf("total writes = %d", writes)
	}
}

// broadcastProto broadcasts one control message at start.
type broadcastProto struct{ env protocol.Env }

func (p *broadcastProto) Name() string { return "bcast" }
func (p *broadcastProto) Start(env protocol.Env) {
	p.env = env
	if env.ID() == 0 {
		env.Broadcast(&protocol.Envelope{Kind: protocol.KindCtl, CtlTag: "HELLO", Bytes: 4})
	}
}
func (p *broadcastProto) OnAppSend(*protocol.Envelope) {}
func (p *broadcastProto) OnDeliver(e *protocol.Envelope) {
	if e.IsApp() {
		p.env.DeliverApp(e, nil, nil)
		return
	}
	p.env.Count("hello."+e.CtlTag, 1)
}
func (p *broadcastProto) OnTimer(kind, gen int) {}
func (p *broadcastProto) Finish()               {}

func TestBroadcastReachesEveryPeer(t *testing.T) {
	r := New(smallCfg(1), func(int, int) protocol.Protocol {
		return &broadcastProto{}
	}, workload.Factory(smallWorkload())).Run()
	if got := r.Counter("hello.HELLO"); got != 3 {
		t.Fatalf("broadcast delivered %d, want 3", got)
	}
	if got := r.Counter("ctl.HELLO"); got != 3 {
		t.Fatalf("broadcast counted %d sends, want 3", got)
	}
}

func TestScriptedWorkload(t *testing.T) {
	plans := map[int][]workload.ScriptedSend{
		0: {{At: 10 * des.Millisecond, Dst: 1, Bytes: 100}},
		1: {{At: 30 * des.Millisecond, Dst: 0, Bytes: 100}},
	}
	cfg := smallCfg(1)
	cfg.N = 2
	r := New(cfg, nop.Factory(), workload.ScriptedFactory(plans)).Run()
	if r.AppMsgs != 2 {
		t.Fatalf("AppMsgs = %d", r.AppMsgs)
	}
	if !r.Completed {
		t.Fatal("scripted run should complete")
	}
}

func TestHorizonAbortsRun(t *testing.T) {
	cfg := smallCfg(1)
	cfg.MaxTime = 20 * des.Millisecond
	w := smallWorkload()
	w.Steps = 100000
	w.Think = des.Millisecond
	r := New(cfg, nop.Factory(), workload.Factory(w)).Run()
	if r.Completed {
		t.Fatal("run should have been cut off by MaxTime")
	}
	if r.End > cfg.MaxTime {
		t.Fatalf("End = %v beyond horizon", r.End)
	}
}

func TestCountersAndCounterNames(t *testing.T) {
	r := New(smallCfg(1), nop.Factory(), workload.Factory(smallWorkload())).Run()
	if len(r.CounterNames()) != 0 {
		t.Fatalf("nop should produce no counters, got %v", r.CounterNames())
	}
	if r.Counter("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
}

func TestTooFewProcessesPanics(t *testing.T) {
	cfg := smallCfg(1)
	cfg.N = 1
	defer func() {
		if recover() == nil {
			t.Fatal("N=1 should panic")
		}
	}()
	New(cfg, nop.Factory(), workload.Factory(smallWorkload()))
}

func TestWorkloadPatternsComplete(t *testing.T) {
	for _, p := range []workload.Pattern{
		workload.UniformRandom, workload.Ring, workload.ClientServer,
		workload.Mesh, workload.Bursty,
	} {
		w := smallWorkload()
		w.Pattern = p
		w.ServerReplies = true
		w.BurstLen = 10
		w.BurstIdle = 20 * des.Millisecond
		cfg := smallCfg(11)
		cfg.N = 6
		r := New(cfg, nop.Factory(), workload.Factory(w)).Run()
		if !r.Completed {
			t.Fatalf("pattern %v did not complete", p)
		}
		if r.AppMsgs == 0 {
			t.Fatalf("pattern %v sent no messages", p)
		}
	}
}
