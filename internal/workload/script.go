package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"ocsml/internal/des"
)

// This file makes workloads file-driven: a "script" is the full send plan
// of a computation, one JSON object per line. It is the substitution
// point for production message traces — convert a real trace into this
// format and replay it under any of the protocols.

// scriptLine is the on-disk form of one planned send.
type scriptLine struct {
	P     int   `json:"p"`               // sending process
	At    int64 `json:"at"`              // virtual send time, nanoseconds
	Dst   int   `json:"dst"`             // destination process
	Bytes int64 `json:"bytes,omitempty"` // payload size
}

// WriteScript streams the plans as JSON Lines, ordered by process then
// time (deterministic output).
func WriteScript(w io.Writer, plans map[int][]ScriptedSend) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	procs := make([]int, 0, len(plans))
	for p := range plans {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		for _, s := range plans[p] {
			if err := enc.Encode(scriptLine{P: p, At: int64(s.At), Dst: s.Dst, Bytes: s.Bytes}); err != nil {
				return fmt.Errorf("workload: encode script line: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadScript parses a JSON Lines script written by WriteScript (or
// converted from an external trace). Within each process the sends are
// sorted by time.
func ReadScript(r io.Reader) (map[int][]ScriptedSend, error) {
	dec := json.NewDecoder(r)
	plans := map[int][]ScriptedSend{}
	line := 0
	for {
		var sl scriptLine
		if err := dec.Decode(&sl); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("workload: script line %d: %w", line+1, err)
		}
		line++
		if sl.P < 0 || sl.Dst < 0 || sl.P == sl.Dst {
			return nil, fmt.Errorf("workload: script line %d: invalid endpoints %d->%d", line, sl.P, sl.Dst)
		}
		if sl.At < 0 {
			return nil, fmt.Errorf("workload: script line %d: negative time", line)
		}
		plans[sl.P] = append(plans[sl.P], ScriptedSend{At: des.Time(sl.At), Dst: sl.Dst, Bytes: sl.Bytes})
	}
	for p := range plans {
		sends := plans[p]
		sort.Slice(sends, func(i, j int) bool { return sends[i].At < sends[j].At })
	}
	return plans, nil
}

// MaxProc returns the highest process id referenced by the plans (so a
// caller can size the cluster: N must exceed it).
func MaxProc(plans map[int][]ScriptedSend) int {
	maxID := 0
	for p, sends := range plans {
		if p > maxID {
			maxID = p
		}
		for _, s := range sends {
			if s.Dst > maxID {
				maxID = s.Dst
			}
		}
	}
	return maxID
}

// GenerateScript synthesizes a send plan with the same distributions the
// synthetic workload uses (think-time draws, pattern destinations), but
// fully materialized so it can be saved, inspected, edited and replayed.
// Replies (client-server) and barrier coupling (BSP) are reactive and
// cannot be pre-scripted; those patterns are rejected.
func GenerateScript(cfg Config, n int, seed int64) (map[int][]ScriptedSend, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: need at least 2 processes")
	}
	switch cfg.Pattern {
	case ClientServer, BSPStencil:
		return nil, fmt.Errorf("workload: pattern %v is reactive and cannot be scripted", cfg.Pattern)
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("workload: Steps must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	think := func() des.Duration {
		t := cfg.Think
		if t <= 0 {
			return des.Microsecond
		}
		return des.Duration(int64(t)/2 + rng.Int63n(int64(t)))
	}
	plans := map[int][]ScriptedSend{}
	for p := 0; p < n; p++ {
		var at des.Time
		nb := meshNeighbors(p, n)
		nbIdx := 0
		for s := int64(0); s < cfg.Steps; s++ {
			at += think()
			dst := -1
			switch cfg.Pattern {
			case Ring:
				dst = (p + 1) % n
			case Mesh:
				dst = nb[nbIdx%len(nb)]
				nbIdx++
			default: // UniformRandom, Bursty
				dst = rng.Intn(n - 1)
				if dst >= p {
					dst++
				}
			}
			plans[p] = append(plans[p], ScriptedSend{At: at, Dst: dst, Bytes: cfg.MsgBytes})
			if cfg.Pattern == Bursty && cfg.BurstLen > 0 && (s+1)%cfg.BurstLen == 0 {
				at += cfg.BurstIdle
			}
		}
	}
	return plans, nil
}
