package workload

import (
	"bytes"
	"strings"
	"testing"

	"ocsml/internal/des"
)

func TestScriptRoundTrip(t *testing.T) {
	plans := map[int][]ScriptedSend{
		0: {{At: 5 * des.Millisecond, Dst: 1, Bytes: 100}, {At: 9 * des.Millisecond, Dst: 2, Bytes: 50}},
		2: {{At: des.Millisecond, Dst: 0, Bytes: 10}},
	}
	var buf bytes.Buffer
	if err := WriteScript(&buf, plans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScript(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 2 || len(got[2]) != 1 {
		t.Fatalf("round trip shape wrong: %+v", got)
	}
	if got[0][0] != plans[0][0] || got[0][1] != plans[0][1] || got[2][0] != plans[2][0] {
		t.Fatalf("round trip values wrong: %+v", got)
	}
}

func TestReadScriptValidates(t *testing.T) {
	cases := []string{
		`{"p":1,"at":5,"dst":1}`,  // self-send
		`{"p":-1,"at":5,"dst":1}`, // negative proc
		`{"p":0,"at":-5,"dst":1}`, // negative time
		`{"p":0,"at":`,            // malformed
	}
	for _, c := range cases {
		if _, err := ReadScript(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q should error", c)
		}
	}
	plans, err := ReadScript(strings.NewReader(""))
	if err != nil || len(plans) != 0 {
		t.Fatal("empty script should parse to empty plans")
	}
}

func TestReadScriptSortsByTime(t *testing.T) {
	in := `{"p":0,"at":9,"dst":1}
{"p":0,"at":3,"dst":1}
{"p":0,"at":6,"dst":1}`
	plans, err := ReadScript(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sends := plans[0]
	for i := 1; i < len(sends); i++ {
		if sends[i-1].At > sends[i].At {
			t.Fatalf("not sorted: %+v", sends)
		}
	}
}

func TestMaxProc(t *testing.T) {
	plans := map[int][]ScriptedSend{1: {{Dst: 7}}, 3: {{Dst: 0}}}
	if got := MaxProc(plans); got != 7 {
		t.Fatalf("MaxProc = %d", got)
	}
	if MaxProc(nil) != 0 {
		t.Fatal("empty MaxProc")
	}
}

func TestGenerateScript(t *testing.T) {
	for _, pat := range []Pattern{UniformRandom, Ring, Mesh, Bursty} {
		cfg := Config{Pattern: pat, Steps: 40, Think: 5 * des.Millisecond,
			MsgBytes: 128, BurstLen: 10, BurstIdle: 50 * des.Millisecond}
		plans, err := GenerateScript(cfg, 6, 3)
		if err != nil {
			t.Fatalf("%v: %v", pat, err)
		}
		if len(plans) != 6 {
			t.Fatalf("%v: %d procs", pat, len(plans))
		}
		for p, sends := range plans {
			if len(sends) != 40 {
				t.Fatalf("%v P%d: %d sends", pat, p, len(sends))
			}
			var last des.Time
			for _, s := range sends {
				if s.Dst == p || s.Dst < 0 || s.Dst >= 6 {
					t.Fatalf("%v: invalid dst %d from %d", pat, s.Dst, p)
				}
				if s.At < last {
					t.Fatalf("%v: times not monotone", pat)
				}
				last = s.At
				if s.Bytes != 128 {
					t.Fatalf("bytes lost")
				}
			}
			if pat == Ring && sends[0].Dst != (p+1)%6 {
				t.Fatalf("ring dst wrong")
			}
		}
	}
	// Determinism.
	a, _ := GenerateScript(Config{Pattern: UniformRandom, Steps: 10, Think: des.Millisecond}, 4, 9)
	b, _ := GenerateScript(Config{Pattern: UniformRandom, Steps: 10, Think: des.Millisecond}, 4, 9)
	for p := range a {
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatal("GenerateScript not deterministic")
			}
		}
	}
	// Reactive patterns rejected.
	if _, err := GenerateScript(Config{Pattern: ClientServer, Steps: 5}, 4, 1); err == nil {
		t.Fatal("client-server should be rejected")
	}
	if _, err := GenerateScript(Config{Pattern: BSPStencil, Steps: 5}, 4, 1); err == nil {
		t.Fatal("bsp should be rejected")
	}
	if _, err := GenerateScript(Config{Steps: 0}, 4, 1); err == nil {
		t.Fatal("zero steps should be rejected")
	}
	if _, err := GenerateScript(Config{Steps: 5}, 1, 1); err == nil {
		t.Fatal("n=1 should be rejected")
	}
}
