package workload

import (
	"math/rand"
	"sort"
	"testing"

	"ocsml/internal/des"
	"ocsml/internal/protocol"
)

// fakeCtx is a minimal single-process AppCtx that executes After callbacks
// immediately in FIFO order (a synchronous mini-engine).
type fakeCtx struct {
	id, n   int
	now     des.Time
	rng     *rand.Rand
	sends   []int // destinations
	work    int64
	done    bool
	pending []func()
}

func newFake(id, n int) *fakeCtx {
	return &fakeCtx{id: id, n: n, rng: rand.New(rand.NewSource(1))}
}

func (f *fakeCtx) ID() int          { return f.id }
func (f *fakeCtx) N() int           { return f.n }
func (f *fakeCtx) Now() des.Time    { return f.now }
func (f *fakeCtx) Rand() *rand.Rand { return f.rng }
func (f *fakeCtx) Send(dst int, m protocol.AppMsg) {
	f.sends = append(f.sends, dst)
}
func (f *fakeCtx) After(d des.Duration, fn func()) *des.Timer {
	f.pending = append(f.pending, fn)
	return nil
}
func (f *fakeCtx) DoWork(units int64) { f.work += units }
func (f *fakeCtx) Done()              { f.done = true }

// drain executes pending callbacks until quiescent (bounded).
func (f *fakeCtx) drain(t *testing.T, maxSteps int) {
	t.Helper()
	for i := 0; len(f.pending) > 0; i++ {
		if i > maxSteps {
			t.Fatalf("app did not quiesce after %d steps", maxSteps)
		}
		fn := f.pending[0]
		f.pending = f.pending[1:]
		f.now += des.Millisecond
		fn()
	}
}

func TestSyntheticQuotaAndDone(t *testing.T) {
	cfg := Config{Pattern: UniformRandom, Steps: 25, Think: des.Millisecond, MsgBytes: 64}
	app := Factory(cfg)(0, 4)
	ctx := newFake(0, 4)
	app.Start(ctx)
	ctx.drain(t, 1000)
	if !ctx.done {
		t.Fatal("app never called Done")
	}
	if len(ctx.sends) != 25 {
		t.Fatalf("sends = %d, want 25", len(ctx.sends))
	}
	if ctx.work != 25 {
		t.Fatalf("work = %d, want 25", ctx.work)
	}
	for _, dst := range ctx.sends {
		if dst == 0 || dst < 0 || dst > 3 {
			t.Fatalf("invalid destination %d", dst)
		}
	}
}

func TestRingDestinations(t *testing.T) {
	app := Factory(Config{Pattern: Ring, Steps: 5, Think: des.Millisecond})(2, 4)
	ctx := newFake(2, 4)
	app.Start(ctx)
	ctx.drain(t, 100)
	for _, dst := range ctx.sends {
		if dst != 3 {
			t.Fatalf("ring dest = %d, want 3", dst)
		}
	}
}

func TestClientServerRoles(t *testing.T) {
	cfg := Config{Pattern: ClientServer, Steps: 10, Think: des.Millisecond, ServerReplies: true}
	// Server (P0): quota 0, done immediately, replies to requests.
	server := Factory(cfg)(0, 4)
	sctx := newFake(0, 4)
	server.Start(sctx)
	if !sctx.done {
		t.Fatal("server should be done at start")
	}
	server.OnMessage(sctx, 2, protocol.AppMsg{Bytes: 100})
	if len(sctx.sends) != 1 || sctx.sends[0] != 2 {
		t.Fatalf("server reply sends = %v", sctx.sends)
	}
	// Client: sends only to 0.
	client := Factory(cfg)(3, 4)
	cctx := newFake(3, 4)
	client.Start(cctx)
	cctx.drain(t, 100)
	for _, dst := range cctx.sends {
		if dst != 0 {
			t.Fatalf("client dest = %d", dst)
		}
	}
}

func TestMeshNeighbors(t *testing.T) {
	// 3x3 grid for n=9: process 4 (center) has 4 neighbors.
	nb := meshNeighbors(4, 9)
	sort.Ints(nb)
	want := []int{1, 3, 5, 7}
	if len(nb) != 4 {
		t.Fatalf("center neighbors = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors = %v, want %v", nb, want)
		}
	}
	// Corner 0: neighbors 1 and 3.
	nb0 := meshNeighbors(0, 9)
	sort.Ints(nb0)
	if len(nb0) != 2 || nb0[0] != 1 || nb0[1] != 3 {
		t.Fatalf("corner neighbors = %v", nb0)
	}
	// Every neighbor relation stays in range for ragged sizes.
	for _, n := range []int{2, 3, 5, 7, 10, 13} {
		for id := 0; id < n; id++ {
			for _, x := range meshNeighbors(id, n) {
				if x < 0 || x >= n || x == id {
					t.Fatalf("n=%d id=%d bad neighbor %d", n, id, x)
				}
			}
			if len(meshNeighbors(id, n)) == 0 {
				t.Fatalf("n=%d id=%d isolated", n, id)
			}
		}
	}
}

func TestBurstyAddsIdleGaps(t *testing.T) {
	cfg := Config{Pattern: Bursty, Steps: 10, Think: des.Millisecond, BurstLen: 3, BurstIdle: des.Second}
	app := Factory(cfg)(1, 4).(*synthetic)
	ctx := newFake(1, 4)
	app.Start(ctx)
	ctx.drain(t, 100)
	if len(ctx.sends) != 10 {
		t.Fatalf("sends = %d", len(ctx.sends))
	}
}

func TestSilent(t *testing.T) {
	app := SilentFactory()(0, 4)
	ctx := newFake(0, 4)
	app.Start(ctx)
	if !ctx.done || len(ctx.sends) != 0 {
		t.Fatal("silent app misbehaved")
	}
	app.OnMessage(ctx, 1, protocol.AppMsg{})
	if len(ctx.sends) != 0 {
		t.Fatal("silent app replied")
	}
}

func TestScripted(t *testing.T) {
	plans := map[int][]ScriptedSend{
		1: {{At: 5 * des.Millisecond, Dst: 2, Bytes: 10}, {At: 9 * des.Millisecond, Dst: 0, Bytes: 10}},
	}
	app := ScriptedFactory(plans)(1, 3)
	ctx := newFake(1, 3)
	app.Start(ctx)
	ctx.drain(t, 100)
	if len(ctx.sends) != 2 || ctx.sends[0] != 2 || ctx.sends[1] != 0 {
		t.Fatalf("sends = %v", ctx.sends)
	}
	if !ctx.done {
		t.Fatal("scripted app never done")
	}
	// Process with no plan: done immediately.
	empty := ScriptedFactory(plans)(0, 3)
	ectx := newFake(0, 3)
	empty.Start(ectx)
	ectx.drain(t, 10)
	if !ectx.done || len(ectx.sends) != 0 {
		t.Fatal("empty scripted app misbehaved")
	}
}

func TestPatternString(t *testing.T) {
	cases := map[Pattern]string{
		UniformRandom: "uniform", Ring: "ring", ClientServer: "client-server",
		Mesh: "mesh", Bursty: "bursty", Pattern(99): "pattern(99)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%v", p)
		}
	}
}

func TestTooFewProcessesPanics(t *testing.T) {
	app := Factory(DefaultConfig())(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("n=1 should panic")
		}
	}()
	app.Start(newFake(0, 1))
}

func TestThinkBounds(t *testing.T) {
	a := &synthetic{cfg: Config{Think: 10 * des.Millisecond}}
	ctx := newFake(0, 2)
	for i := 0; i < 200; i++ {
		d := a.think(ctx)
		if d < 5*des.Millisecond || d >= 15*des.Millisecond {
			t.Fatalf("think draw %v outside [T/2, 3T/2)", d)
		}
	}
	// Zero think still progresses.
	z := &synthetic{cfg: Config{}}
	if z.think(ctx) <= 0 {
		t.Fatal("zero think should yield positive duration")
	}
}
