package workload

import (
	"ocsml/internal/des"
	"ocsml/internal/protocol"
)

// BSP is a bulk-synchronous-parallel application: in every superstep each
// process computes, sends a halo message to each grid neighbor, and
// advances only after receiving one halo per neighbor — the classic HPC
// stencil pattern (the kind of computation the paper's periodic
// checkpointing targets). Unlike the free-running synthetic workloads,
// BSP progress couples processes tightly, so a blocking checkpoint on one
// process stalls its neighbors transitively.
//
// Halo accounting is purely count-based, which is correct even over
// non-FIFO channels: each neighbor sends exactly one halo per superstep,
// so any len(neighbors) arrivals release the barrier and any surplus
// carries into the next one.
type BSP struct {
	cfg Config
	id  int
	n   int

	neighbors []int
	step      int64 // completed supersteps
	waiting   bool  // halos sent, waiting at the barrier
	received  int   // halos counted toward the current barrier
	done      bool
}

var _ protocol.RewindableApp = (*BSP)(nil)

// BSPFactory builds BSP applications. cfg.Steps is the superstep count;
// cfg.Think the per-superstep compute time.
func BSPFactory(cfg Config) func(i, n int) protocol.App {
	return func(i, n int) protocol.App {
		return &BSP{cfg: cfg, id: i, n: n}
	}
}

// Start implements protocol.App.
func (a *BSP) Start(ctx protocol.AppCtx) {
	if a.n < 2 {
		panic("workload: BSP needs at least 2 processes")
	}
	a.neighbors = meshNeighbors(a.id, a.n)
	if a.cfg.Steps == 0 {
		a.done = true
		ctx.Done()
		return
	}
	ctx.After(a.think(ctx), func() { a.compute(ctx) })
}

func (a *BSP) think(ctx protocol.AppCtx) des.Duration {
	t := a.cfg.Think
	if t <= 0 {
		return des.Microsecond
	}
	half := int64(t) / 2
	return des.Duration(half + ctx.Rand().Int63n(int64(t)))
}

// compute finishes the local phase of the current superstep, sends the
// halo exchange, and enters the barrier. Halos that arrived during the
// compute phase already count toward it.
func (a *BSP) compute(ctx protocol.AppCtx) {
	if a.done || a.waiting {
		return
	}
	ctx.DoWork(1)
	for _, nb := range a.neighbors {
		ctx.Send(nb, protocol.AppMsg{Bytes: a.cfg.MsgBytes})
	}
	a.waiting = true
	a.maybeAdvance(ctx)
}

// OnMessage implements protocol.App: one halo from a neighbor. Over
// non-FIFO channels a halo for the next superstep can arrive early; the
// count simply carries over.
func (a *BSP) OnMessage(ctx protocol.AppCtx, src int, m protocol.AppMsg) {
	ctx.DoWork(1)
	if a.done {
		return
	}
	a.received++
	a.maybeAdvance(ctx)
}

func (a *BSP) maybeAdvance(ctx protocol.AppCtx) {
	if !a.waiting || a.received < len(a.neighbors) {
		return
	}
	a.received -= len(a.neighbors)
	a.waiting = false
	a.step++
	if a.step >= a.cfg.Steps {
		a.done = true
		ctx.Done()
		return
	}
	ctx.After(a.think(ctx), func() { a.compute(ctx) })
}

// bspProgress packs the full barrier micro-state into the opaque
// RewindableApp progress value: completed steps, the waiting flag, and
// the halo count toward the current barrier (< 128 neighbors).
func bspProgress(step int64, waiting bool, received int) int64 {
	v := step << 8
	if waiting {
		v |= 1 << 7
	}
	return v | int64(received&0x7f)
}

// Progress implements protocol.RewindableApp.
func (a *BSP) Progress() int64 { return bspProgress(a.step, a.waiting, a.received) }

// Restore implements protocol.RewindableApp: resume from the exact
// barrier micro-state at the cut. If the process was waiting, its halos
// for the current superstep were already sent (the recovery layer
// re-injects the logged copies), so it must NOT recompute — it just waits
// for the barrier to refill.
func (a *BSP) Restore(ctx protocol.AppCtx, progress int64) {
	a.step = progress >> 8
	a.waiting = progress&(1<<7) != 0
	a.received = int(progress & 0x7f)
	if a.step >= a.cfg.Steps {
		a.done = true
		ctx.Done()
		return
	}
	a.done = false
	if a.waiting {
		a.maybeAdvance(ctx)
		return
	}
	ctx.After(a.think(ctx), func() { a.compute(ctx) })
}
