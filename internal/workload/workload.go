// Package workload provides deterministic synthetic applications that
// drive the checkpointing protocols: the communication patterns a
// distributed scientific computation would exhibit (uniform random
// exchange, ring pipelines, client–server, mesh neighbor exchange, and
// bursty phases).
//
// Each process performs a fixed quota of work steps. A step costs a drawn
// "think time" of local computation and emits one application message.
// Received messages also count as work. Because the engine folds every
// send/receive into a per-process state hash, any two runs that process
// the same messages in the same order reach identical states — the
// piecewise-determinism assumption used by the recovery machinery.
package workload

import (
	"fmt"

	"ocsml/internal/des"
	"ocsml/internal/protocol"
)

// Pattern selects the communication structure.
type Pattern int

const (
	// UniformRandom sends each message to a uniformly random peer.
	UniformRandom Pattern = iota
	// Ring sends to (i+1) mod N.
	Ring
	// ClientServer makes P0 a server: others send requests to it and it
	// replies.
	ClientServer
	// Mesh arranges processes in a near-square grid; each talks to its
	// grid neighbors round-robin.
	Mesh
	// Bursty alternates active bursts with long idle gaps.
	Bursty
	// BSPStencil is the bulk-synchronous stencil: compute, halo-exchange
	// with grid neighbors, barrier (see BSP).
	BSPStencil
)

func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Ring:
		return "ring"
	case ClientServer:
		return "client-server"
	case Mesh:
		return "mesh"
	case Bursty:
		return "bursty"
	case BSPStencil:
		return "bsp"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Config parameterizes the synthetic application.
type Config struct {
	Pattern Pattern
	// Steps is the work quota per process (requests for client–server
	// clients). Process 0 has quota 0 under ClientServer.
	Steps int64
	// Think is the mean local computation time per step; actual draws
	// are uniform in [Think/2, 3*Think/2).
	Think des.Duration
	// MsgBytes is the application payload size per message.
	MsgBytes int64
	// BurstLen is the number of steps per burst (Bursty only).
	BurstLen int64
	// BurstIdle is the idle gap between bursts (Bursty only).
	BurstIdle des.Duration
	// ServerReplies makes the ClientServer server answer each request.
	ServerReplies bool
}

// DefaultConfig is a moderate uniform-random workload.
func DefaultConfig() Config {
	return Config{
		Pattern:  UniformRandom,
		Steps:    200,
		Think:    10 * des.Millisecond,
		MsgBytes: 4 << 10,
	}
}

// Factory returns a per-process application constructor for the engine.
func Factory(cfg Config) func(i, n int) protocol.App {
	if cfg.Pattern == BSPStencil {
		return BSPFactory(cfg)
	}
	return func(i, n int) protocol.App {
		return &synthetic{cfg: cfg, id: i, n: n}
	}
}

type synthetic struct {
	cfg  Config
	id   int
	n    int
	step int64
	done bool

	neighbors []int // Mesh
	nbIdx     int
}

// Start implements protocol.App.
func (a *synthetic) Start(ctx protocol.AppCtx) {
	if a.n < 2 {
		panic("workload: need at least 2 processes")
	}
	if a.cfg.Pattern == Mesh {
		a.neighbors = meshNeighbors(a.id, a.n)
	}
	if a.quota() == 0 {
		a.done = true
		ctx.Done()
		return
	}
	ctx.After(a.think(ctx), func() { a.doStep(ctx) })
}

func (a *synthetic) quota() int64 {
	if a.cfg.Pattern == ClientServer && a.id == 0 {
		return 0
	}
	return a.cfg.Steps
}

func (a *synthetic) think(ctx protocol.AppCtx) des.Duration {
	t := a.cfg.Think
	if t <= 0 {
		return des.Microsecond
	}
	half := int64(t) / 2
	return des.Duration(half + ctx.Rand().Int63n(int64(t)))
}

func (a *synthetic) doStep(ctx protocol.AppCtx) {
	a.step++
	ctx.DoWork(1)
	dst := a.dest(ctx)
	if dst >= 0 {
		ctx.Send(dst, protocol.AppMsg{Bytes: a.cfg.MsgBytes})
	}
	if a.step >= a.quota() {
		a.done = true
		ctx.Done()
		return
	}
	delay := a.think(ctx)
	if a.cfg.Pattern == Bursty && a.cfg.BurstLen > 0 && a.step%a.cfg.BurstLen == 0 {
		delay += a.cfg.BurstIdle
	}
	ctx.After(delay, func() { a.doStep(ctx) })
}

func (a *synthetic) dest(ctx protocol.AppCtx) int {
	switch a.cfg.Pattern {
	case Ring:
		return (a.id + 1) % a.n
	case ClientServer:
		if a.id == 0 {
			return -1
		}
		return 0
	case Mesh:
		if len(a.neighbors) == 0 {
			return -1
		}
		d := a.neighbors[a.nbIdx%len(a.neighbors)]
		a.nbIdx++
		return d
	default: // UniformRandom, Bursty
		d := ctx.Rand().Intn(a.n - 1)
		if d >= a.id {
			d++
		}
		return d
	}
}

// OnMessage implements protocol.App.
func (a *synthetic) OnMessage(ctx protocol.AppCtx, src int, m protocol.AppMsg) {
	ctx.DoWork(1)
	if a.cfg.Pattern == ClientServer && a.id == 0 && a.cfg.ServerReplies {
		ctx.Send(src, protocol.AppMsg{Bytes: a.cfg.MsgBytes / 2})
	}
}

// Progress implements protocol.RewindableApp.
func (a *synthetic) Progress() int64 { return a.step }

// Restore implements protocol.RewindableApp: rewind to the given step
// count and resume (or finish, if the quota was already met before the
// recovery line).
func (a *synthetic) Restore(ctx protocol.AppCtx, progress int64) {
	a.step = progress
	if a.step >= a.quota() {
		a.done = true
		ctx.Done()
		return
	}
	a.done = false
	ctx.After(a.think(ctx), func() { a.doStep(ctx) })
}

// meshNeighbors returns the grid neighbors of process id in a rows×cols
// arrangement with rows*cols >= n, cols = ceil(sqrt(n)).
func meshNeighbors(id, n int) []int {
	cols := 1
	for cols*cols < n {
		cols++
	}
	r, c := id/cols, id%cols
	var out []int
	add := func(rr, cc int) {
		if rr < 0 || cc < 0 || cc >= cols {
			return
		}
		nid := rr*cols + cc
		if nid >= 0 && nid < n && nid != id {
			out = append(out, nid)
		}
	}
	add(r-1, c)
	add(r+1, c)
	add(r, c-1)
	add(r, c+1)
	if len(out) == 0 && n > 1 {
		// Isolated corner in a ragged last row: fall back to a ring link.
		out = append(out, (id+1)%n)
	}
	return out
}

// Silent is an application that never sends or does anything — used to
// test protocol convergence with zero application traffic (paper §3.5.1:
// without control messages the basic algorithm cannot converge).
type Silent struct{}

// Start implements protocol.App.
func (Silent) Start(ctx protocol.AppCtx) { ctx.Done() }

// OnMessage implements protocol.App.
func (Silent) OnMessage(protocol.AppCtx, int, protocol.AppMsg) {}

// SilentFactory builds Silent apps.
func SilentFactory() func(i, n int) protocol.App {
	return func(int, int) protocol.App { return Silent{} }
}

// Scripted is an application driven by an explicit list of timed sends,
// used by the paper-figure scenario tests where exact message orders
// matter.
type Scripted struct {
	// Sends lists (time, dst, bytes) triples for this process.
	Sends []ScriptedSend
}

// ScriptedSend is one planned transmission.
type ScriptedSend struct {
	At    des.Time
	Dst   int
	Bytes int64
}

// Start implements protocol.App.
func (s *Scripted) Start(ctx protocol.AppCtx) {
	for _, snd := range s.Sends {
		snd := snd
		d := snd.At - ctx.Now()
		if d < 0 {
			d = 0
		}
		ctx.After(d, func() {
			ctx.DoWork(1)
			ctx.Send(snd.Dst, protocol.AppMsg{Bytes: snd.Bytes})
		})
	}
	// Completion: after the last send. A scripted process with no sends
	// is done immediately.
	var last des.Time
	for _, snd := range s.Sends {
		if snd.At > last {
			last = snd.At
		}
	}
	d := last - ctx.Now()
	if d < 0 {
		d = 0
	}
	ctx.After(d, ctx.Done)
}

// OnMessage implements protocol.App.
func (s *Scripted) OnMessage(ctx protocol.AppCtx, src int, m protocol.AppMsg) {
	ctx.DoWork(1)
}

// ScriptedFactory builds per-process scripted apps from a map of process
// id to its send plan.
func ScriptedFactory(plans map[int][]ScriptedSend) func(i, n int) protocol.App {
	return func(i, n int) protocol.App {
		return &Scripted{Sends: plans[i]}
	}
}
