package workload

import (
	"testing"

	"ocsml/internal/des"
	"ocsml/internal/protocol"
)

// bspHarness runs a tiny 2-process BSP by short-circuiting sends into the
// peer's OnMessage (synchronous, in-order).
func TestBSPTwoProcessLockstep(t *testing.T) {
	cfg := Config{Steps: 5, Think: des.Millisecond, MsgBytes: 64}
	a := BSPFactory(cfg)(0, 2).(*BSP)
	b := BSPFactory(cfg)(1, 2).(*BSP)
	actx, bctx := newFake(0, 2), newFake(1, 2)
	a.Start(actx)
	b.Start(bctx)

	// Drive both by alternately draining pending callbacks and cross-
	// delivering sends.
	deliver := func() bool {
		progressed := false
		for len(actx.pending) > 0 {
			fn := actx.pending[0]
			actx.pending = actx.pending[1:]
			fn()
			progressed = true
		}
		for len(bctx.pending) > 0 {
			fn := bctx.pending[0]
			bctx.pending = bctx.pending[1:]
			fn()
			progressed = true
		}
		for _, dst := range actx.sends {
			if dst != 1 {
				t.Fatalf("P0 sent to %d", dst)
			}
			b.OnMessage(bctx, 0, protocol.AppMsg{})
			progressed = true
		}
		actx.sends = nil
		for range bctx.sends {
			a.OnMessage(actx, 1, protocol.AppMsg{})
			progressed = true
		}
		bctx.sends = nil
		return progressed
	}
	for i := 0; i < 100 && deliver(); i++ {
	}
	if !actx.done || !bctx.done {
		t.Fatalf("BSP did not finish: done=%v,%v steps=%d,%d", actx.done, bctx.done, a.step, b.step)
	}
	if a.step != 5 || b.step != 5 {
		t.Fatalf("steps = %d,%d, want 5,5", a.step, b.step)
	}
	// Progress encodes the micro-state: both finished all 5 supersteps
	// with empty barriers.
	if a.Progress() != bspProgress(5, false, 0) || b.Progress() != bspProgress(5, false, 0) {
		t.Fatalf("Progress wrong: %d %d", a.Progress(), b.Progress())
	}
}

func TestBSPZeroSteps(t *testing.T) {
	app := BSPFactory(Config{})(0, 4)
	ctx := newFake(0, 4)
	app.Start(ctx)
	if !ctx.done {
		t.Fatal("zero-step BSP should finish immediately")
	}
}

func TestBSPRestore(t *testing.T) {
	cfg := Config{Steps: 10, Think: des.Millisecond}
	app := BSPFactory(cfg)(0, 4).(*BSP)
	ctx := newFake(0, 4)
	app.Start(ctx)

	// Restore to "7 steps done, not waiting, no halos counted".
	app.Restore(ctx, bspProgress(7, false, 0))
	if app.step != 7 || app.waiting || ctx.done {
		t.Fatalf("restore mid-run wrong: %+v", app)
	}
	if app.Progress() != bspProgress(7, false, 0) {
		t.Fatal("Progress round trip failed")
	}

	// Restore to "waiting at the barrier with 1 of 2 halos": it must not
	// recompute (halos were already sent) and must advance when the
	// missing halo arrives.
	app.Restore(ctx, bspProgress(3, true, 1))
	if !app.waiting || app.step != 3 || app.received != 1 {
		t.Fatalf("waiting restore wrong: %+v", app)
	}
	sendsBefore := len(ctx.sends)
	app.OnMessage(ctx, 1, protocol.AppMsg{}) // completes the 2-neighbor barrier
	if app.step != 4 {
		t.Fatalf("barrier did not release: step=%d", app.step)
	}
	if len(ctx.sends) != sendsBefore {
		t.Fatal("restore recomputed and re-sent halos")
	}

	// Restore at the quota finishes immediately.
	app.Restore(ctx, bspProgress(10, false, 0))
	if !ctx.done {
		t.Fatal("restore at quota should finish")
	}
}

func TestBSPTooFewProcsPanics(t *testing.T) {
	app := BSPFactory(Config{Steps: 1})(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("n=1 should panic")
		}
	}()
	app.Start(newFake(0, 1))
}
