// Package vclock implements vector clocks, used as an independent
// happened-before oracle when validating the trace consistency checker and
// in property tests. The checkpointing protocols themselves do NOT use
// vector clocks — a design point the paper inherits from Manivannan &
// Singhal's "Asynchronous Recovery Without Using Vector Timestamps".
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock over a fixed number of processes.
type VC []int64

// New returns a zero vector clock for n processes.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Tick increments process i's component, producing the clock of a new
// local event.
func (v VC) Tick(i int) { v[i]++ }

// Merge sets v to the component-wise maximum of v and other (the receive
// rule, before ticking).
func (v VC) Merge(other VC) {
	if len(v) != len(other) {
		panic(fmt.Sprintf("vclock: merge of mismatched lengths %d and %d", len(v), len(other)))
	}
	for i, o := range other {
		if o > v[i] {
			v[i] = o
		}
	}
}

// Ordering relates two vector clocks.
type Ordering int

const (
	// Equal means identical clocks.
	Equal Ordering = iota
	// Before means the receiver happened before the argument.
	Before
	// After means the receiver happened after the argument.
	After
	// Concurrent means neither happened before the other.
	Concurrent
)

func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "concurrent"
	}
}

// Compare returns the ordering of v relative to other.
func (v VC) Compare(other VC) Ordering {
	if len(v) != len(other) {
		panic(fmt.Sprintf("vclock: compare of mismatched lengths %d and %d", len(v), len(other)))
	}
	less, greater := false, false
	for i := range v {
		switch {
		case v[i] < other[i]:
			less = true
		case v[i] > other[i]:
			greater = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// HappenedBefore reports v → other in Lamport's sense (strictly).
func (v VC) HappenedBefore(other VC) bool { return v.Compare(other) == Before }

// Concurrent reports that neither clock happened before the other.
func (v VC) ConcurrentWith(other VC) bool { return v.Compare(other) == Concurrent }

func (v VC) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}
