package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOrdering(t *testing.T) {
	a := New(3)
	a.Tick(0) // a = [1,0,0]
	b := a.Clone()
	b.Tick(1) // b = [1,1,0]
	if !a.HappenedBefore(b) {
		t.Fatal("a should happen before b")
	}
	if b.Compare(a) != After {
		t.Fatal("b should be after a")
	}
	c := New(3)
	c.Tick(2) // c = [0,0,1]
	if !a.ConcurrentWith(c) || !c.ConcurrentWith(a) {
		t.Fatal("a and c should be concurrent")
	}
	if a.Compare(a.Clone()) != Equal {
		t.Fatal("clone should be equal")
	}
}

func TestMerge(t *testing.T) {
	a := VC{3, 1, 0}
	b := VC{1, 5, 2}
	a.Merge(b)
	want := VC{3, 5, 2}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Merge = %v, want %v", a, want)
		}
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New(2).Merge(New(3)) },
		func() { New(2).Compare(New(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("mismatched lengths should panic")
				}
			}()
			fn()
		}()
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 0, 7}).String(); got != "[1,0,7]" {
		t.Fatalf("String = %q", got)
	}
	if Concurrent.String() != "concurrent" || Before.String() != "before" {
		t.Fatal("Ordering.String wrong")
	}
}

// simulate runs a random message-passing history over n processes and
// returns the event clocks. Events: local tick or message (sender ticks,
// receiver merges+ticks).
func simulate(n int, ops []uint16) []VC {
	clocks := make([]VC, n)
	for i := range clocks {
		clocks[i] = New(n)
	}
	var events []VC
	for _, op := range ops {
		p := int(op) % n
		q := int(op/uint16(n)) % n
		if p == q {
			clocks[p].Tick(p)
		} else {
			clocks[p].Tick(p) // send event at p
			events = append(events, clocks[p].Clone())
			clocks[q].Merge(clocks[p])
			clocks[q].Tick(q) // receive event at q
		}
		events = append(events, clocks[p].Clone())
	}
	return events
}

// Property: Compare is antisymmetric and transitive over clocks generated
// by a legal execution.
func TestQuickPartialOrderLaws(t *testing.T) {
	f := func(ops []uint16) bool {
		evs := simulate(4, ops)
		if len(evs) > 40 {
			evs = evs[:40]
		}
		for i := range evs {
			for j := range evs {
				cij := evs[i].Compare(evs[j])
				cji := evs[j].Compare(evs[i])
				// Antisymmetry.
				switch cij {
				case Before:
					if cji != After {
						return false
					}
				case After:
					if cji != Before {
						return false
					}
				case Equal:
					if cji != Equal {
						return false
					}
				case Concurrent:
					if cji != Concurrent {
						return false
					}
				}
				// Transitivity of Before.
				if cij == Before {
					for k := range evs {
						if evs[j].Compare(evs[k]) == Before &&
							evs[i].Compare(evs[k]) != Before {
							return false
						}
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: merge is the least upper bound: both operands are <= the
// merge, and any upper bound dominates it.
func TestQuickMergeIsLUB(t *testing.T) {
	f := func(xs, ys [5]uint8) bool {
		a, b := New(5), New(5)
		for i := 0; i < 5; i++ {
			a[i] = int64(xs[i])
			b[i] = int64(ys[i])
		}
		m := a.Clone()
		m.Merge(b)
		if a.Compare(m) == After || b.Compare(m) == After {
			return false
		}
		for i := range m {
			if m[i] != max64(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
