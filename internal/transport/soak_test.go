//go:build soak

package transport

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestSoak is the consistency soak harness (go test -tags soak): many
// seeded chaos runs — drop, delay, duplication, reorder, partition and
// kill+restart faults against a live TCP cluster — each verified for
// the three invariants (no orphans across durable S_k, exactly-once log
// replay, post-restart convergence). Run it under -race.
//
// Environment knobs (all optional):
//
//	SOAK_SEED_BASE    first seed (default 1)
//	SOAK_SEEDS        how many consecutive seeds (default 50)
//	SOAK_FAULT_MS     fault-phase length per seed in ms (default 1500)
//	SOAK_ARTIFACT_DIR where failing schedules are written for upload
func TestSoak(t *testing.T) {
	base := envInt(t, "SOAK_SEED_BASE", 1)
	count := envInt(t, "SOAK_SEEDS", 50)
	faultFor := time.Duration(envInt(t, "SOAK_FAULT_MS", 1500)) * time.Millisecond
	artifactDir := os.Getenv("SOAK_ARTIFACT_DIR")

	for s := base; s < base+count; s++ {
		seed := int64(s)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := DefaultChaosConfig(4, seed, t.TempDir(), faultFor)
			cfg.Converge = 30 * time.Second
			rep, err := RunChaos(cfg)
			if err != nil {
				if rep != nil {
					saveArtifact(t, artifactDir, rep)
				}
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !rep.OK() {
				saveArtifact(t, artifactDir, rep)
				t.Fatalf("seed %d invariants failed:\n%s", seed, rep.Render())
			}
			t.Logf("seed %d: %d restarts, faults dropped=%d partitioned=%d dup=%d delayed=%d reordered=%d",
				seed, rep.Restarts, rep.FaultStats.Dropped, rep.FaultStats.Partitioned,
				rep.FaultStats.Duplicated, rep.FaultStats.Delayed, rep.FaultStats.Reordered)
		})
	}
}

func saveArtifact(t *testing.T, dir string, rep *ChaosReport) {
	t.Helper()
	if dir == "" {
		return
	}
	if err := rep.WriteArtifact(dir); err != nil {
		t.Logf("writing failure artifact: %v", err)
	}
}

func envInt(t *testing.T, name string, def int) int {
	t.Helper()
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("%s=%q: %v", name, v, err)
	}
	return n
}
