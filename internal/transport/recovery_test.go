package transport

// Unit tests for the wire-level recovery coordinator and the node-side
// persistence fixes it depends on: line agreement against stub peers,
// rebroadcast through a lossy hook, timeout on a silent peer, the
// finalize-retry watermark, and storage-queue accounting across shutdown.

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ocsml/internal/checkpoint"
	"ocsml/internal/fsstore"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
	"ocsml/internal/wire"
)

// stubPeer is a survivor stand-in: a bare mesh that answers RB_BGN with a
// fixed manifest report and RB_CMT with an ACK, recording the committed
// decision.
type stubPeer struct {
	mesh *Mesh
	mu   sync.Mutex
	cmt  *protocol.RbMsg
}

func newStubPeer(t *testing.T, id int, addrs []string, ln net.Listener, seqs []int, epoch int) *stubPeer {
	t.Helper()
	p := &stubPeer{}
	mesh, err := NewMesh(MeshConfig{ID: id, Addrs: addrs, Seed: int64(id)}, ln, func(src int) func(frame []byte) {
		return func(frame []byte) {
			e, err := wire.Decode(frame)
			if err != nil || !protocol.IsRecoveryTag(e.CtlTag) {
				return
			}
			rb, ok := e.Payload.(protocol.RbMsg)
			if !ok {
				return
			}
			reply := func(tag string, m protocol.RbMsg) {
				out, err := wire.Encode(&protocol.Envelope{
					Src: id, Dst: src, Kind: protocol.KindCtl, CtlTag: tag, Payload: m,
				})
				if err != nil {
					panic(err)
				}
				p.mesh.Send(src, wire.RawFrame(out))
			}
			switch e.CtlTag {
			case protocol.TagRbBegin:
				reply(protocol.TagRbLine, protocol.RbMsg{Round: rb.Round, Epoch: epoch, Seqs: seqs})
			case protocol.TagRbCommit:
				p.mu.Lock()
				p.cmt = &rb
				p.mu.Unlock()
				reply(protocol.TagRbAck, protocol.RbMsg{Round: rb.Round})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p.mesh = mesh
	mesh.Start()
	t.Cleanup(func() { mesh.Close() })
	return p
}

func (p *stubPeer) committed() *protocol.RbMsg {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cmt
}

// listenLocal binds n ephemeral localhost listeners and returns them with
// their address table.
func listenLocal(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}

func TestCoordinateLineAgreement(t *testing.T) {
	lns, addrs := listenLocal(t, 3)
	p1 := newStubPeer(t, 1, addrs, lns[1], []int{1, 2, 3, 4}, 2)
	p2 := newStubPeer(t, 2, addrs, lns[2], []int{1, 3, 4}, 1)

	counters := map[string]int64{}
	var mu sync.Mutex
	dec, err := Coordinate(CoordinatorConfig{
		ID: 0, Addrs: addrs, Seed: 99,
		Seqs: []int{1, 2, 3}, Epoch: 0,
		Timeout: 10 * time.Second, Retry: 25 * time.Millisecond,
		Count: func(name string, delta int64) {
			mu.Lock()
			counters[name] += delta
			mu.Unlock()
		},
	}, lns[0])
	if err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	// Intersection of {1,2,3}, {1,2,3,4}, {1,3,4} is {1,3}: line 3.
	if dec.Line != 3 {
		t.Fatalf("line = %d, want 3", dec.Line)
	}
	// Highest reported epoch is 2; the committed epoch fences it out.
	if dec.Epoch != 3 {
		t.Fatalf("epoch = %d, want 3", dec.Epoch)
	}
	for _, p := range []*stubPeer{p1, p2} {
		cmt := p.committed()
		if cmt == nil {
			t.Fatal("peer saw no commit")
		}
		if cmt.Line != dec.Line || cmt.Epoch != dec.Epoch {
			t.Fatalf("peer committed %+v, want line %d epoch %d", cmt, dec.Line, dec.Epoch)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if counters["recovery.coordinated"] != 1 {
		t.Fatalf("coordinated counter = %d", counters["recovery.coordinated"])
	}
}

func TestCoordinateEmptyIntersection(t *testing.T) {
	lns, addrs := listenLocal(t, 2)
	newStubPeer(t, 1, addrs, lns[1], nil, 0)

	dec, err := Coordinate(CoordinatorConfig{
		ID: 0, Addrs: addrs, Seed: 5, Seqs: []int{1, 2},
		Timeout: 10 * time.Second, Retry: 25 * time.Millisecond,
	}, lns[0])
	if err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	if dec.Line != 0 {
		t.Fatalf("line = %d, want 0 (initial state)", dec.Line)
	}
	if dec.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", dec.Epoch)
	}
}

func TestCoordinateRebroadcastThroughLoss(t *testing.T) {
	lns, addrs := listenLocal(t, 3)
	newStubPeer(t, 1, addrs, lns[1], []int{1, 2}, 0)
	newStubPeer(t, 2, addrs, lns[2], []int{1, 2}, 0)

	// Drop the first two frames toward every destination: both the
	// initial RB_BGN and the initial RB_CMT are lost, so only the
	// rebroadcast path can complete the round.
	var drops sync.Map
	hook := func(src, dst int, frame *wire.Frame, deliver func(frame *wire.Frame)) {
		c, _ := drops.LoadOrStore(dst, new(atomic.Int32))
		if c.(*atomic.Int32).Add(1) <= 2 {
			return
		}
		deliver(frame)
	}
	dec, err := Coordinate(CoordinatorConfig{
		ID: 0, Addrs: addrs, Seed: 7, Seqs: []int{1, 2},
		Timeout: 10 * time.Second, Retry: 20 * time.Millisecond, Hook: hook,
	}, lns[0])
	if err != nil {
		t.Fatalf("Coordinate through loss: %v", err)
	}
	if dec.Line != 2 {
		t.Fatalf("line = %d, want 2", dec.Line)
	}
}

func TestCoordinateTimeout(t *testing.T) {
	lns, addrs := listenLocal(t, 3)
	newStubPeer(t, 1, addrs, lns[1], []int{1}, 0)
	// Peer 2 exists but never answers.
	lns[2].Close()

	_, err := Coordinate(CoordinatorConfig{
		ID: 0, Addrs: addrs, Seed: 3, Seqs: []int{1},
		Timeout: 500 * time.Millisecond, Retry: 50 * time.Millisecond,
	}, lns[0])
	if err == nil {
		t.Fatal("Coordinate succeeded without peer 2")
	}
}

// TestNodeFinalizeRetry drives the watermark fix through a live node: a
// one-shot injected Finalize failure must be retried on a later flush,
// leaving the on-disk manifest gap-free.
func TestNodeFinalizeRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	dir := t.TempDir()
	c, err := NewCluster(testClusterConfig(dir, 23))
	if err != nil {
		t.Fatal(err)
	}
	var failed atomic.Int32
	c.FS(0).SetFinalizeErrHook(func(rec checkpoint.Record) error {
		if rec.Seq == 1 && failed.CompareAndSwap(0, 1) {
			return errInjected
		}
		return nil
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if failed.Load() != 1 {
		t.Fatal("injected failure never triggered")
	}
	if got := c.Counter("fsstore.errors"); got != 1 {
		t.Fatalf("fsstore.errors = %d, want 1", got)
	}
	// The failed seq was retried: the manifest has no gap at 1.
	m, err := fsstore.ReadManifest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Seqs) == 0 || m.Seqs[0] != 1 {
		t.Fatalf("manifest seqs = %v, want to start at 1 (no gap)", m.Seqs)
	}
	for i := 1; i < len(m.Seqs); i++ {
		if m.Seqs[i] != m.Seqs[i-1]+1 {
			t.Fatalf("manifest gap: %v", m.Seqs)
		}
	}
	validateDisk(t, dir, 4, 1)
}

var errInjected = &net.AddrError{Err: "injected", Addr: "finalize"}

// TestWriteStableShutdownAccounting exercises the storageQ quit paths:
// writes racing a shutdown must not leave StorageQueueLen drifted.
func TestWriteStableShutdownAccounting(t *testing.T) {
	lns, addrs := listenLocal(t, 2)
	lns[1].Close() // peer never exists; irrelevant here
	n, err := NewNode(NodeConfig{
		ID: 0, N: 2, Addrs: addrs, Listener: lns[0], Seed: 1, Resume: -1,
		Proto: nopProto{}, App: nopApp{},
		Rec: trace.NewRecorder(), Ckpts: checkpoint.NewStore(2),
		// 1 B/s: any write parks in the service delay, so Close lands
		// mid-service and exercises the abandoned-write path.
		WriteBandwidth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	// One write that will be abandoned mid-service delay by Close: the
	// storage loop must release its queue slot on the way out.
	n.WriteStable("ct", 1<<20, nil)
	// The request is mid-service once it has left the channel but still
	// holds its queue slot (the modeled delay at 1 B/s is ~12 days).
	waitFor(t, 5*time.Second, func() bool {
		return len(n.storageCh) == 0 && n.StorageQueueLen() == 1
	})
	n.Close()
	waitFor(t, 5*time.Second, func() bool { return n.StorageQueueLen() == 0 })

	// Writes racing the shutdown: with no consumer left, at most the
	// channel's buffer capacity can ever be accounted as queued — every
	// write past that hits the quit branch, which must undo its
	// increment or the gauge drifts without bound.
	const cap = 1024 // storageCh buffer size
	for i := 0; i < cap+100; i++ {
		n.WriteStable("ct", 1, nil)
	}
	if got := n.StorageQueueLen(); got < 0 || got > cap {
		t.Fatalf("StorageQueueLen after %d post-shutdown writes = %d, want within [0,%d]", cap+100, got, cap)
	}
}

type nopProto struct{}

func (nopProto) Name() string                 { return "nop" }
func (nopProto) Start(protocol.Env)           {}
func (nopProto) OnAppSend(*protocol.Envelope) {}
func (nopProto) OnDeliver(*protocol.Envelope) {}
func (nopProto) OnTimer(kind, gen int)        {}
func (nopProto) Finish()                      {}

type nopApp struct{}

func (nopApp) Start(protocol.AppCtx)                           {}
func (nopApp) OnMessage(protocol.AppCtx, int, protocol.AppMsg) {}
