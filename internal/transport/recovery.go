package transport

import (
	"fmt"
	"net"
	"time"

	"ocsml/internal/fsstore"
	"ocsml/internal/protocol"
	"ocsml/internal/wire"
)

// RecoveryDecision is the outcome of a coordinated recovery round: the
// agreed recovery line (highest sequence number every process has durably
// finalized; 0 = initial state) and the epoch the whole cluster adopts
// when it commits the rollback.
type RecoveryDecision struct {
	Line  int
	Epoch int
}

// CoordinatorConfig parameterizes one wire-level recovery round, run from
// the crashed process's identity and address.
type CoordinatorConfig struct {
	// ID is the crashed process whose restarted incarnation coordinates;
	// Addrs is the cluster address table (the ID'th entry is bound
	// locally by the caller).
	ID    int
	Addrs []string
	// Seed derives the coordinator mesh's reconnect jitter.
	Seed int64
	// Seqs is the coordinator's own durable manifest — its vote in the
	// recovery-line intersection.
	Seqs []int
	// Epoch is the highest epoch the coordinator knows of (0 for a
	// first recovery); peers report theirs and the maximum + 1 becomes
	// the post-rollback epoch.
	Epoch int
	// Timeout bounds the whole handshake (default 20s).
	Timeout time.Duration
	// Retry is the rebroadcast period toward unanswered peers (default
	// 150ms). Recovery frames bypass the reliable middleware, so lost
	// frames are recovered here, by idempotent rebroadcast.
	Retry time.Duration
	// Hook, when non-nil, filters outgoing frames (fault injection).
	Hook SendHook
	// Count, when non-nil, receives the coordinator's counters.
	Count func(name string, delta int64)
}

// Coordinate drives one recovery round over the wire, from the crashed
// process's already-bound listener:
//
//  1. RB_BGN is broadcast (and rebroadcast) until every survivor answers
//     with RB_LINE — its durable manifest and current epoch.
//  2. The recovery line is the highest member of the intersection of all
//     N manifests (the coordinator's own included), or 0 when the
//     intersection is empty. The commit epoch is max(reported)+1.
//  3. RB_CMT carries the decision; a survivor ACKs only after its
//     rollback — including the on-disk truncation — has committed.
//
// Coordinate returns once every survivor has acknowledged; the caller
// then restarts the crashed process at the agreed line with the agreed
// epoch. The listener is closed before returning, so the restarted node
// can rebind the same address.
func Coordinate(cfg CoordinatorConfig, ln net.Listener) (RecoveryDecision, error) {
	n := len(cfg.Addrs)
	if n < 2 || cfg.ID < 0 || cfg.ID >= n {
		ln.Close()
		return RecoveryDecision{}, fmt.Errorf("transport: invalid coordinator id %d of %d", cfg.ID, n)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 20 * time.Second
	}
	if cfg.Retry <= 0 {
		cfg.Retry = 150 * time.Millisecond
	}
	count := cfg.Count
	if count == nil {
		count = func(string, int64) {}
	}

	type rbFrame struct {
		src int
		tag string
		rb  protocol.RbMsg
	}
	in := make(chan rbFrame, 256)
	mesh, err := NewMesh(MeshConfig{
		ID: cfg.ID, Addrs: cfg.Addrs, Seed: cfg.Seed, Hook: cfg.Hook,
	}, ln, func(src int) func(frame []byte) {
		// Survivors keep retransmitting ordinary pre-crash traffic at this
		// address; only recovery frames matter to the coordinator. The
		// decoder is per-connection and stateful, so a survivor's v2
		// delta-encoded app traffic decodes (and is then discarded)
		// instead of erroring.
		dec := wire.NewDecoder(0)
		return func(frame []byte) {
			e, err := dec.DecodeOwned(frame)
			if err != nil || !protocol.IsRecoveryTag(e.CtlTag) {
				return
			}
			rb, ok := e.Payload.(protocol.RbMsg)
			if !ok {
				return
			}
			select {
			case in <- rbFrame{src: src, tag: e.CtlTag, rb: rb}:
			default: // full buffer: the rebroadcast will refill it
			}
		}
	})
	if err != nil {
		ln.Close()
		return RecoveryDecision{}, err
	}
	mesh.Start()
	defer mesh.Close()

	// The round id makes every reply attributable to this attempt; an
	// abandoned attempt's leftovers carry a different round and are
	// ignored. Wall-clock uniqueness across incarnations suffices —
	// rounds never appear in deterministic reports.
	round := time.Now().UnixNano() //ocsml:wallclock round ids need cross-incarnation uniqueness, never replayed
	send := func(dst int, tag string, rb protocol.RbMsg) {
		frame, err := wire.Encode(&protocol.Envelope{
			Src: cfg.ID, Dst: dst, Kind: protocol.KindCtl, CtlTag: tag, Payload: rb,
		})
		if err != nil {
			panic(fmt.Sprintf("transport: coordinator cannot encode %s: %v", tag, err))
		}
		count("ctl."+tag, 1)
		mesh.Send(dst, wire.RawFrame(frame))
	}
	eachPeer := func(fn func(j int)) {
		for j := 0; j < n; j++ {
			if j != cfg.ID {
				fn(j)
			}
		}
	}
	deadline := time.After(cfg.Timeout)
	tick := time.NewTicker(cfg.Retry)
	defer tick.Stop()

	// Phase 1: collect every survivor's durable-line report.
	reports := map[int][]int{}
	epoch := cfg.Epoch
	begin := protocol.RbMsg{Round: round}
	eachPeer(func(j int) { send(j, protocol.TagRbBegin, begin) })
	for len(reports) < n-1 {
		select {
		case f := <-in:
			if f.tag != protocol.TagRbLine || f.rb.Round != round {
				continue
			}
			reports[f.src] = f.rb.Seqs
			if f.rb.Epoch > epoch {
				epoch = f.rb.Epoch
			}
		case <-tick.C:
			eachPeer(func(j int) {
				if _, ok := reports[j]; !ok {
					send(j, protocol.TagRbBegin, begin)
				}
			})
		case <-deadline:
			return RecoveryDecision{}, fmt.Errorf("transport: recovery round got %d/%d line reports within %v",
				len(reports), n-1, cfg.Timeout)
		}
	}

	// Line agreement: a sequence number is a valid line only if every
	// process has it durable — the same true-intersection rule
	// fsstore.CompleteSeqs applies to a datadir, here computed from the
	// reported manifests.
	groups := make([][]int, 0, n)
	groups = append(groups, cfg.Seqs)
	for _, seqs := range reports {
		groups = append(groups, seqs)
	}
	dec := RecoveryDecision{Epoch: epoch + 1}
	if common := fsstore.Intersect(groups); len(common) > 0 {
		dec.Line = common[len(common)-1]
	}

	// Phase 2: commit. A survivor's ACK means its rollback is durable.
	cmt := protocol.RbMsg{Round: round, Line: dec.Line, Epoch: dec.Epoch}
	acked := make(map[int]bool, n-1)
	eachPeer(func(j int) { send(j, protocol.TagRbCommit, cmt) })
	for len(acked) < n-1 {
		select {
		case f := <-in:
			if f.tag != protocol.TagRbAck || f.rb.Round != round {
				continue
			}
			acked[f.src] = true
		case <-tick.C:
			eachPeer(func(j int) {
				if !acked[j] {
					send(j, protocol.TagRbCommit, cmt)
				}
			})
		case <-deadline:
			return dec, fmt.Errorf("transport: recovery commit (line %d, epoch %d) acked by %d/%d within %v",
				dec.Line, dec.Epoch, len(acked), n-1, cfg.Timeout)
		}
	}
	count("recovery.coordinated", 1)
	return dec, nil
}
