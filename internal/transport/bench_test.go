package transport

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
	"ocsml/internal/wire"
)

// appEnvelope is the steady-state hot-path message: an application
// payload carrying a piggyback over an N=64 cluster.
func appEnvelope(n int) *protocol.Envelope {
	set := protocol.NewProcSet(n)
	set.Add(5 % n)
	return &protocol.Envelope{
		ID: 1, Src: 0, Dst: 1, Kind: protocol.KindApp,
		Bytes: 256 + 6, SentAt: 1,
		App:     protocol.AppMsg{Seq: 1, Bytes: 256, Tag: 7},
		Payload: core.Piggyback{Csn: 3, Stat: core.Tentative, TentSet: set},
	}
}

// twoMesh builds a 2-process loopback pair; every frame node 1 receives
// is decoded with a per-connection stateful decoder and counted.
func twoMesh(tb testing.TB, delivered *atomic.Int64) (sender, receiver *Mesh) {
	tb.Helper()
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	accept := func(src int) func(frame []byte) {
		dec := wire.NewDecoder(0)
		return func(frame []byte) {
			if _, err := dec.Decode(frame); err != nil {
				tb.Errorf("decode: %v", err)
				return
			}
			delivered.Add(1)
		}
	}
	s, err := NewMesh(MeshConfig{ID: 0, Addrs: addrs, Seed: 1}, listeners[0],
		func(int) func([]byte) { return func([]byte) {} })
	if err != nil {
		tb.Fatal(err)
	}
	r, err := NewMesh(MeshConfig{ID: 1, Addrs: addrs, Seed: 2}, listeners[1], accept)
	if err != nil {
		tb.Fatal(err)
	}
	s.Start()
	r.Start()
	return s, r
}

// TestMeshSendAllocs locks in the send-side allocation budget: encoding
// an app-message frame into a pooled frame and handing it to the mesh
// costs at most one allocation per message (a frame-pool miss when the
// writer has not yet recycled a frame; everything else is reuse).
func TestMeshSendAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	var delivered atomic.Int64
	s, r := twoMesh(t, &delivered)
	defer s.Close()
	defer r.Close()

	var enc wire.Encoder
	e := appEnvelope(64)
	send := func() {
		f := wire.AcquireFrame()
		if err := enc.EncodeFrame(f, e); err != nil {
			t.Fatal(err)
		}
		s.Send(1, f)
	}
	// Warm up: fill the frame pool, grow the writer's batch buffers, and
	// let the connection reach steady state.
	for i := 0; i < 2000; i++ {
		send()
	}
	waitFor(t, 10*time.Second, func() bool { return delivered.Load() >= 2000 })

	if n := testing.AllocsPerRun(2000, send); n > 1 {
		t.Errorf("mesh send: %.2f allocs/op, want <= 1", n)
	}
	if d := s.Stats().Dropped; d > 0 {
		t.Logf("note: %d frames dropped during measurement (queue overflow)", d)
	}
}

// BenchmarkMeshThroughput is the transport headline: sustained
// app-message throughput between two live TCP processes, delta-encoded
// piggybacks included. It reports msgs/sec alongside the wire cost per
// message (B/msg total, pb_B/msg for the piggyback block after delta
// encoding).
func BenchmarkMeshThroughput(b *testing.B) {
	var delivered atomic.Int64
	s, r := twoMesh(b, &delivered)
	defer s.Close()
	defer r.Close()

	var enc wire.Encoder
	e := appEnvelope(64)
	// Wait for the connection before timing.
	f := wire.AcquireFrame()
	if err := enc.EncodeFrame(f, e); err != nil {
		b.Fatal(err)
	}
	s.Send(1, f)
	waitFor(b, 10*time.Second, func() bool { return delivered.Load() >= 1 })

	base := s.Stats()
	basePB := s.PiggybackBytes()
	baseDelivered := delivered.Load()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Window the sender so the 8192-frame queue never overflows —
		// a dropped frame would stall the delivery wait below.
		for int64(i)-(delivered.Load()-baseDelivered) > 4096 {
			time.Sleep(50 * time.Microsecond)
		}
		f := wire.AcquireFrame()
		if err := enc.EncodeFrame(f, e); err != nil {
			b.Fatal(err)
		}
		s.Send(1, f)
	}
	waitFor(b, 30*time.Second, func() bool {
		return delivered.Load()-baseDelivered >= int64(b.N)
	})
	b.StopTimer()

	st := s.Stats()
	msgs := float64(st.FramesSent - base.FramesSent)
	b.ReportMetric(msgs/b.Elapsed().Seconds(), "msgs/s")
	b.ReportMetric(float64(st.BytesSent-base.BytesSent)/msgs, "B/msg")
	b.ReportMetric(float64(s.PiggybackBytes()-basePB)/msgs, "pb_B/msg")
}
