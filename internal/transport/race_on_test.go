//go:build race

package transport

// raceEnabled gates allocation assertions: the race detector's
// instrumentation allocates, so AllocsPerRun is not meaningful under
// -race.
const raceEnabled = true
