package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ocsml/internal/wire"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestFrameOversizedRejected(t *testing.T) {
	if err := writeFrame(&bytes.Buffer{}, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted on write")
	}
	// A corrupt header announcing a huge frame must be rejected before
	// allocation, and a truncated body must error.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized header accepted on read")
	}
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 2})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted on read")
	}
}

// meshRig builds an n-process mesh fabric on localhost.
func meshRig(t *testing.T, n int, handler func(me int) func(src int, frame []byte)) []*Mesh {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	meshes := make([]*Mesh, n)
	for i := 0; i < n; i++ {
		h := handler(i)
		m, err := NewMesh(MeshConfig{ID: i, Addrs: addrs, Seed: 42}, listeners[i],
			func(src int) func(frame []byte) {
				return func(frame []byte) { h(src, frame) }
			})
		if err != nil {
			t.Fatal(err)
		}
		meshes[i] = m
	}
	for _, m := range meshes {
		m.Start()
	}
	return meshes
}

func TestMeshAllPairsDelivery(t *testing.T) {
	const n = 3
	const perPair = 20
	var mu sync.Mutex
	got := map[string]int{} // "src->dst" count
	meshes := meshRig(t, n, func(me int) func(int, []byte) {
		return func(src int, frame []byte) {
			mu.Lock()
			got[fmt.Sprintf("%d->%d:%s", src, me, frame)]++
			mu.Unlock()
		}
	})
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	for i, m := range meshes {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			for k := 0; k < perPair; k++ {
				m.Send(j, wire.RawFrame([]byte(fmt.Sprintf("m%d", k))))
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, c := range got {
			total += c
		}
		mu.Unlock()
		if total == n*(n-1)*perPair {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d frames", total, n*(n-1)*perPair)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for key, c := range got {
		if c != 1 {
			t.Fatalf("frame %s delivered %d times", key, c)
		}
	}
	for _, m := range meshes {
		if s := m.Stats(); s.FramesSent != int64((n-1)*perPair) {
			t.Fatalf("stats framesSent = %d, want %d", s.FramesSent, (n-1)*perPair)
		}
	}
}

func TestMeshReconnect(t *testing.T) {
	// Two processes; P1 dies and is reborn at the same address. P0's
	// writer must reconnect with backoff and resume delivery.
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln0.Addr().String(), ln1.Addr().String()}

	var mu sync.Mutex
	var recv []string
	handler := func(src int) func(frame []byte) {
		return func(frame []byte) {
			mu.Lock()
			recv = append(recv, string(frame))
			mu.Unlock()
		}
	}
	m0, err := NewMesh(MeshConfig{ID: 0, Addrs: addrs, Seed: 1, DialBackoff: 5 * time.Millisecond},
		ln0, func(int) func([]byte) { return func([]byte) {} })
	if err != nil {
		t.Fatal(err)
	}
	m0.Start()
	defer m0.Close()

	m1, err := NewMesh(MeshConfig{ID: 1, Addrs: addrs, Seed: 2}, ln1, handler)
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()

	m0.Send(1, wire.RawFrame([]byte("before")))
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(recv) >= 1
	})

	// Crash P1, then rebind the same address.
	m1.Close()
	ln1b, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	m1b, err := NewMesh(MeshConfig{ID: 1, Addrs: addrs, Seed: 3}, ln1b, handler)
	if err != nil {
		t.Fatal(err)
	}
	m1b.Start()
	defer m1b.Close()

	// Keep offering frames until one lands post-restart (the frame in
	// flight at the crash may be lost in the OS buffer; later ones must
	// arrive over the re-established connection).
	waitFor(t, 10*time.Second, func() bool {
		m0.Send(1, wire.RawFrame([]byte("after")))
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		for _, s := range recv {
			if s == "after" {
				return true
			}
		}
		return false
	})
	if got := m0.Stats().Reconnects; got < 1 {
		t.Fatalf("reconnects = %d, want >= 1", got)
	}
}

func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
