package transport

import (
	"fmt"

	"ocsml/internal/checkpoint"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
)

// handleRecovery processes one RB_* frame on the node's loop goroutine.
// Recovery frames bypass the protocol stack entirely — no reliable-layer
// dedup or acks, no epoch fencing (the coordinator predates the epoch it
// is about to establish) — so every handler here must be idempotent
// against the coordinator's rebroadcast.
func (n *Node) handleRecovery(e *protocol.Envelope) {
	rb, ok := e.Payload.(protocol.RbMsg)
	if !ok {
		n.cfg.Count("recovery.bad_frames", 1)
		return
	}
	switch e.CtlTag {
	case protocol.TagRbBegin:
		n.sendRb(e.Src, protocol.TagRbLine, protocol.RbMsg{
			Round: rb.Round, Epoch: n.epoch, Seqs: n.durableSeqs(),
		})
	case protocol.TagRbCommit:
		if rb.Epoch <= n.epoch {
			// Rebroadcast of a commit we already executed (or a commit
			// superseded by a newer epoch): re-ACK so a lost ACK cannot
			// stall the coordinator, but do not roll back again.
			n.sendRb(e.Src, protocol.TagRbAck, protocol.RbMsg{Round: rb.Round, Line: rb.Line, Epoch: rb.Epoch})
			return
		}
		src, ack := e.Src, protocol.RbMsg{Round: rb.Round, Line: rb.Line, Epoch: rb.Epoch}
		n.rollbackTo(rb.Line, rb.Epoch, func() {
			n.post(func() { n.sendRb(src, protocol.TagRbAck, ack) })
		})
	default:
		// RB_LINE/RB_ACK are coordinator-bound; a running node sees them
		// only as leftovers of a round it did not coordinate.
		n.cfg.Count("recovery.stray_frames", 1)
	}
}

func (n *Node) sendRb(dst int, tag string, rb protocol.RbMsg) {
	n.Send(&protocol.Envelope{Dst: dst, Kind: protocol.KindCtl, CtlTag: tag, Payload: rb})
}

// durableSeqs is this process's vote in the recovery-line intersection:
// the on-disk manifest when the node has one, otherwise the in-memory
// finalized checkpoints (a diskless cluster can still agree on a line).
func (n *Node) durableSeqs() []int {
	if n.cfg.FS != nil {
		return n.cfg.FS.Manifest().Seqs
	}
	var seqs []int
	for _, rec := range n.cfg.Ckpts.Proc(n.cfg.ID).All() {
		if rec.Seq > 0 && rec.FinalizedAt != 0 {
			seqs = append(seqs, rec.Seq)
		}
	}
	return seqs
}

// rollbackTo executes a committed rollback on this node: fence the epoch,
// truncate checkpoints above the line in memory and on disk, rewind the
// protocol, and restore the application by replaying the line's durable
// message log. onDurable fires once the on-disk truncation has committed
// (immediately when the node has no store) — the signal that it is safe
// to acknowledge the coordinator.
func (n *Node) rollbackTo(line, epoch int, onDurable func()) {
	rec, ok := n.recordAt(line)
	if !ok {
		// A line this process never finalized cannot be restored; leave
		// the commit unacknowledged so the coordinator's timeout surfaces
		// the inconsistency instead of silently diverging.
		n.cfg.Count("recovery.line_missing", 1)
		return
	}
	n.epoch = epoch
	n.cfg.Ckpts.Proc(n.cfg.ID).TruncateAfter(line)
	if fs := n.cfg.FS; fs != nil {
		// Disk truncation runs on the storage goroutine, after any persist
		// already in its queue, so a rolled-back checkpoint cannot be
		// written back post-truncate.
		n.postStorage(func() {
			if err := fs.TruncateAfter(line); err != nil {
				n.cfg.Count("fsstore.errors", 1)
				return // no ACK: the truncation must land before we commit
			}
			n.persisted = line
			if onDurable != nil {
				onDurable()
			}
		})
	} else if onDurable != nil {
		onDurable()
	}
	rew, ok := n.cfg.Proto.(protocol.Rewinder)
	if !ok {
		panic(fmt.Sprintf("transport: protocol %q cannot roll back", n.cfg.Proto.Name()))
	}
	rew.Rollback(line)
	n.restoreApp(rec)
	n.recLine = line
	n.cfg.Rec.Record(trace.Event{T: n.Now(), Kind: trace.KRestore, Proc: n.cfg.ID, Peer: -1, Seq: line})
	n.cfg.Count("recovery.rollbacks", 1)
	n.mRollbacks.Inc()
	if n.cfg.OnRollback != nil {
		n.cfg.OnRollback(n.cfg.ID, line)
	}
}

// recordAt fetches the checkpoint record at the recovery line, preferring
// the in-memory store and falling back to disk. Line 0 is the initial
// state and needs no record.
func (n *Node) recordAt(line int) (checkpoint.Record, bool) {
	if rec, ok := n.cfg.Ckpts.Proc(n.cfg.ID).Get(line); ok {
		return rec, true
	}
	if n.cfg.FS != nil {
		if rec, err := n.cfg.FS.Load(line); err == nil {
			return rec, true
		}
	}
	if line == 0 {
		return checkpoint.Record{}, true
	}
	return checkpoint.Record{}, false
}

// replayFold reconstructs the post-replay application state: restore the
// tentative checkpoint's fold and replay the logged messages over it —
// the paper's piecewise-deterministic recovery, validated against the
// fold recorded at finalization.
func (n *Node) replayFold(rec *checkpoint.Record) uint64 {
	fold := checkpoint.FoldLog(rec.Fold, rec.Log)
	if fold != rec.CFEFold {
		// The log does not reproduce the recorded state; resume from the
		// recorded fold (a state the process provably held) and flag the
		// divergence rather than inventing a new history.
		n.cfg.Count("recovery.replay_mismatch", 1)
		return rec.CFEFold
	}
	n.cfg.Count("recovery.replayed_msgs", int64(len(rec.Log)))
	n.mReplayed.Add(int64(len(rec.Log)))
	return fold
}

// restoreApp rewinds the node-held application state to the record and
// resumes the application from its recorded progress.
func (n *Node) restoreApp(rec checkpoint.Record) {
	n.fold = n.replayFold(&rec)
	n.work = rec.CFEWork
	n.stall = 0
	n.deferred = nil
	n.appDone = false
	ra, ok := n.cfg.App.(protocol.RewindableApp)
	if !ok {
		panic(fmt.Sprintf("transport: application on P%d cannot roll back", n.cfg.ID))
	}
	ra.Restore(nodeAppCtx{n}, rec.CFEProgress)
}
