// Package transport is the real-network runtime: it hosts the same
// protocol state machines as internal/engine (deterministic simulator)
// and internal/live (goroutine runtime), but delivers envelopes over
// actual TCP connections between processes, serialized with the
// internal/wire codec and persisted with internal/fsstore.
//
// Three layers:
//
//   - frame.go: length-prefixed framing over a TCP stream.
//   - mesh.go: the peer mesh — one listener plus N−1 dialed connections
//     per process, per-peer writer goroutines, reconnect with jittered
//     exponential backoff.
//   - node.go / cluster.go: protocol.Env hosts on real time, either as a
//     standalone daemon process (cmd/ocsmld) or as an in-process
//     spawn-all cluster that talks to itself over localhost TCP.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a frame's payload size; a peer announcing a larger
// frame is corrupt (or hostile) and the connection is dropped rather
// than the memory allocated.
const MaxFrame = 1 << 20

// frameHeader is the length prefix size (big-endian uint32).
const frameHeader = 4

// appendFrame appends the 4-byte length prefix and the payload to buf.
func appendFrame(buf, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds max %d", len(payload), MaxFrame)
	}
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// writeFrame writes one length-prefixed frame to w.
func writeFrame(w io.Writer, payload []byte) error {
	buf, err := appendFrame(nil, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame from r. It returns io.EOF
// cleanly only when the stream ends exactly on a frame boundary.
func readFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto reads one length-prefixed frame from r into buf's
// storage, growing it only when the frame doesn't fit — the
// allocation-free read path of a connection's reader loop. The returned
// slice aliases buf (when capacity sufficed) and is valid until the
// next readFrameInto with the same buffer.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return buf, fmt.Errorf("transport: incoming frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}
