package transport

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ocsml/internal/checkpoint"
	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/faultnet"
	"ocsml/internal/fsstore"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

// ChaosConfig parameterizes one chaos run: a live TCP cluster driven
// under a seeded fault schedule, then checked against the paper's
// invariants.
type ChaosConfig struct {
	// Cluster is the base cluster; Datadir is required (crash/restart
	// needs durable storage) and Cluster.Seed seeds the fault schedule,
	// the injector's per-link streams, and every node RNG.
	Cluster ClusterConfig
	// Profile bounds the generated schedule. Zero value: DefaultProfile
	// over 2s.
	Profile faultnet.Profile
	// Converge bounds each wait for the cluster to finalize a new
	// durable global checkpoint (default 20s).
	Converge time.Duration
}

// DefaultChaosConfig is the standard chaos rig: n processes, endless
// uniform workload, fast checkpoint cadence, drop/partition/crash
// faults over faultFor.
func DefaultChaosConfig(n int, seed int64, datadir string, faultFor time.Duration) ChaosConfig {
	return ChaosConfig{
		Cluster: ClusterConfig{
			N:       n,
			Seed:    seed,
			Datadir: datadir,
			Opt: core.Options{
				Interval: 150 * des.Duration(time.Millisecond),
				Timeout:  60 * des.Duration(time.Millisecond),
				SkipREQ:  true,
			},
			Reliable: true,
			Workload: workload.Config{
				Pattern:  workload.UniformRandom,
				Steps:    1 << 30, // effectively endless; the runner stops the cluster
				Think:    4 * des.Duration(time.Millisecond),
				MsgBytes: 256,
			},
			WriteBandwidth: 64 << 20,
			Timeout:        5 * time.Minute,
			Drain:          500 * time.Millisecond,
			// Chaos runs the S_k garbage collector aggressively so the
			// GC/recovery/crash interleavings get real coverage.
			GCInterval: 300 * time.Millisecond,
		},
		Profile:  faultnet.DefaultProfile(n, faultFor),
		Converge: 20 * time.Second,
	}
}

// Invariant is one verified property of a chaos run.
type Invariant struct {
	Name   string
	OK     bool
	Detail string `json:",omitempty"`
}

// ChaosReport is the outcome of a chaos run. Its Render output contains
// only seed-determined data (the schedule, the invariant verdicts, the
// restart count), so two runs with the same seed print identical
// reports; timing-dependent diagnostics live in Counters and FaultStats,
// excluded from both Render and the JSON form.
type ChaosReport struct {
	Seed       int64
	Schedule   *faultnet.Schedule
	Restarts   int
	Invariants []Invariant

	Counters   map[string]int64 `json:"-"`
	FaultStats faultnet.Stats   `json:"-"`
}

// OK reports whether every invariant held.
func (r *ChaosReport) OK() bool {
	for _, iv := range r.Invariants {
		if !iv.OK {
			return false
		}
	}
	return len(r.Invariants) > 0
}

// Render prints the deterministic report: schedule, restarts, verdicts.
func (r *ChaosReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d fingerprint=%016x\n", r.Seed, r.Schedule.Fingerprint())
	b.WriteString(r.Schedule.String())
	fmt.Fprintf(&b, "restarts %d\n", r.Restarts)
	for _, iv := range r.Invariants {
		verdict := "OK"
		if !iv.OK {
			verdict = "FAIL " + iv.Detail
		}
		fmt.Fprintf(&b, "invariant %-28s %s\n", iv.Name, verdict)
	}
	if r.OK() {
		b.WriteString("result PASS\n")
	} else {
		b.WriteString("result FAIL\n")
	}
	return b.String()
}

// RunChaos executes one seeded chaos run: generate the schedule, wire
// the injector into every mesh, run the cluster while executing the
// crash plan, then verify the three invariants the paper's recovery
// argument rests on:
//
//  1. no-orphans: every durable global checkpoint S_k (intersection of
//     the fsstore manifests) is a consistent cut of the actually
//     delivered application messages — no message received inside S_k
//     was sent outside it (Theorem 2).
//  2. exactly-once-replay: every durable record replay-validates
//     (FoldLog(Fold, Log) == CFEFold) and no record logs the same
//     delivery twice — duplicated frames must not reach the
//     application or the log twice.
//  3. post-restart-convergence: after every kill+restart the cluster
//     finalizes a new durable global checkpoint beyond the recovery
//     line.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Cluster.Datadir == "" {
		return nil, fmt.Errorf("transport: chaos needs a datadir (crash/restart requires durable storage)")
	}
	if cfg.Profile.N == 0 {
		cfg.Profile = faultnet.DefaultProfile(cfg.Cluster.N, 2*time.Second)
	}
	if cfg.Profile.N != cfg.Cluster.N {
		return nil, fmt.Errorf("transport: profile n=%d != cluster n=%d", cfg.Profile.N, cfg.Cluster.N)
	}
	if cfg.Converge <= 0 {
		cfg.Converge = 20 * time.Second
	}
	sched := faultnet.Generate(cfg.Cluster.Seed, cfg.Profile)
	inj := faultnet.NewInjector(sched)
	cfg.Cluster.Hook = inj.Apply

	c, err := NewCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	rep := &ChaosReport{Seed: cfg.Cluster.Seed, Schedule: sched}
	inj.Activate(c.base)
	c.Start()
	defer c.Stop()

	datadir, n := cfg.Cluster.Datadir, cfg.Cluster.N
	convergeOK := true
	var convergeDetail string
	for _, cr := range sched.Crashes {
		sleepUntil(c.base, cr.At)
		// A rollback needs a durable recovery line; wait for the first
		// complete global checkpoint if the cluster hasn't one yet.
		if _, err := waitLineAtLeast(datadir, n, 1, cfg.Converge); err != nil {
			return rep, fmt.Errorf("before crash of P%d: %w", cr.Proc, err)
		}
		c.Kill(cr.Proc)
		time.Sleep(50 * time.Millisecond) // let in-flight traffic hit the dead socket
		if err := plantDebris(datadir, cr.Proc, cr.Tear); err != nil {
			return rep, err
		}
		if cr.Down > 0 {
			time.Sleep(cr.Down)
		}
		// The restarted incarnation coordinates its own recovery over the
		// wire: line agreement from the manifests, epoch bump, survivor
		// rollback + log replay, then the victim resumes at the line.
		line, err := c.Recover(cr.Proc)
		if err != nil {
			return rep, fmt.Errorf("recovery of P%d: %w", cr.Proc, err)
		}
		rep.Restarts++
		if _, err := waitLineAtLeast(datadir, n, line+1, cfg.Converge); err != nil {
			convergeOK = false
			convergeDetail = fmt.Sprintf("after restart of P%d: no durable checkpoint beyond line %d", cr.Proc, line)
		}
	}

	// Outlive every fault window, then let finalizations settle.
	sleepUntil(c.base, sched.Duration)
	time.Sleep(cfg.Cluster.Drain)
	c.Stop()

	orphans := verifyNoOrphans(datadir, n, c.Rec)
	replay := verifyExactlyOnceReplay(datadir, n)
	rep.Counters = c.Counters()
	rep.Invariants = []Invariant{
		orphans,
		replay,
		verifyManifestIntegrity(datadir, n),
		{Name: "post-restart-convergence", OK: convergeOK, Detail: convergeDetail},
		verifyWireRecovery(rep.Counters, rep.Restarts, n),
	}
	rep.FaultStats = inj.Stats()
	return rep, nil
}

// verifyNoOrphans checks invariant 1: each durable global checkpoint,
// recovered purely from the fsstore manifests, must be a consistent cut
// of the recorded application-message trace.
func verifyNoOrphans(datadir string, n int, rec *trace.Recorder) Invariant {
	iv := Invariant{Name: "no-orphans"}
	seqs, err := fsstore.CompleteSeqs(datadir, n)
	if err != nil {
		iv.Detail = err.Error()
		return iv
	}
	for _, seq := range seqs {
		if seq == 0 {
			continue
		}
		cut, ok := rec.CutAt(n, trace.KFinalize, seq)
		if !ok {
			iv.Detail = fmt.Sprintf("durable S_%d has no complete finalize cut in the trace", seq)
			return iv
		}
		if rep := rec.CheckCut(cut); !rep.Consistent() {
			iv.Detail = fmt.Sprintf("S_%d has %d orphan message(s)", seq, len(rep.Orphans))
			return iv
		}
	}
	iv.OK = true
	return iv
}

// verifyExactlyOnceReplay checks invariant 2 over every durable record:
// replaying the message log from the restored tentative checkpoint must
// reproduce the CFE state fold exactly, and no record may log one
// delivery twice (a duplicated frame that leaked past the dedup layer
// would appear as a repeated (dir, src, tag, appSeq) entry).
func verifyExactlyOnceReplay(datadir string, n int) Invariant {
	iv := Invariant{Name: "exactly-once-replay"}
	for p := 0; p < n; p++ {
		s, err := fsstore.Open(datadir, p, n)
		if err != nil {
			iv.Detail = err.Error()
			return iv
		}
		for _, seq := range s.Manifest().Seqs {
			r, err := s.Load(seq)
			if err != nil {
				iv.Detail = err.Error()
				return iv
			}
			if got := checkpoint.FoldLog(r.Fold, r.Log); got != r.CFEFold {
				iv.Detail = fmt.Sprintf("P%d seq %d: replay fold %#x != CFE fold %#x", p, seq, got, r.CFEFold)
				return iv
			}
			type key struct {
				dir      checkpoint.Direction
				src, dst int
				tag      uint64
				appSeq   int64
			}
			seen := map[key]bool{}
			for _, m := range r.Log {
				k := key{m.Dir, m.Src, m.Dst, m.Tag, m.AppSeq}
				if seen[k] {
					iv.Detail = fmt.Sprintf("P%d seq %d: message (src=%d appSeq=%d) logged twice", p, seq, m.Src, m.AppSeq)
					return iv
				}
				seen[k] = true
			}
		}
	}
	iv.OK = true
	return iv
}

// verifyManifestIntegrity checks the durability engine's core promise
// directly: after the run — crashes, planted commit-boundary debris,
// group commits, segment rotation, GC sweeps and all — no manifest
// points at missing data. Every store reopens cleanly and every
// manifested record loads, including full replay of incremental chains.
func verifyManifestIntegrity(datadir string, n int) Invariant {
	iv := Invariant{Name: "manifest-integrity"}
	for p := 0; p < n; p++ {
		before, err := fsstore.ReadManifest(datadir, p)
		if err != nil {
			iv.Detail = err.Error()
			return iv
		}
		s, err := fsstore.Open(datadir, p, n)
		if err != nil {
			iv.Detail = fmt.Sprintf("P%d reopen: %v", p, err)
			return iv
		}
		// Open may only neutralize unreferenced debris — it must not have
		// dropped anything the pre-open manifest referenced.
		after := map[int]bool{}
		for _, seq := range s.Manifest().Seqs {
			after[seq] = true
		}
		for _, seq := range before.Seqs {
			if !after[seq] {
				iv.Detail = fmt.Sprintf("P%d: manifested seq %d lost on reopen", p, seq)
				return iv
			}
			if _, err := s.Load(seq); err != nil {
				iv.Detail = fmt.Sprintf("P%d: manifest points at unloadable seq %d: %v", p, seq, err)
				return iv
			}
		}
	}
	iv.OK = true
	return iv
}

// verifyWireRecovery checks that every restart went through the wire
// protocol exactly once per participant: one coordinated round per
// restart, and every survivor rolled back via an accepted RB_CMT (the
// epoch guard makes rebroadcast commits ack-only, so the count is exact
// and seed-deterministic).
func verifyWireRecovery(counters map[string]int64, restarts, n int) Invariant {
	iv := Invariant{Name: "wire-recovery"}
	wantRounds := int64(restarts)
	wantRollbacks := int64(restarts) * int64(n-1)
	rounds := counters["recovery.coordinated"]
	rollbacks := counters["recovery.rollbacks"]
	if rounds != wantRounds || rollbacks != wantRollbacks {
		iv.Detail = fmt.Sprintf("coordinated rounds=%d rollbacks=%d, want %d and %d",
			rounds, rollbacks, wantRounds, wantRollbacks)
		return iv
	}
	iv.OK = true
	return iv
}

// plantDebris plants the crash-point debris the schedule picked for a
// crash: what the victim's store directory looks like when the process
// dies exactly on one of the durability engine's commit boundaries.
// fsstore.Open must neutralize every kind on restart (sweep, truncate,
// or rebuild) without ever losing a manifested record.
func plantDebris(datadir string, proc int, kind string) error {
	dir := fsstore.ProcDir(datadir, proc)
	switch kind {
	case faultnet.TearNone:
		return nil
	case faultnet.TearTemp:
		// Crash between an atomic write and its rename: a partially
		// written manifest in a ".tmp-" file.
		man, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
		if err != nil {
			man = []byte(`{"proc":0,"n":0,"seqs":[1,2,`)
		}
		torn := man[:len(man)/2] // cut mid-JSON: unparseable by construction
		return os.WriteFile(filepath.Join(dir, ".tmp-chaos-torn"), torn, 0o644)
	case faultnet.TearSegHeader:
		// Crash while rotating to a fresh segment: half a header, no
		// manifest reference.
		m, err := fsstore.ReadManifest(datadir, proc)
		if err != nil {
			return err
		}
		next := 1
		if k := len(m.Segments); k > 0 {
			next = m.Segments[k-1].Index + 1
		}
		return os.WriteFile(fsstore.SegmentFile(dir, next), []byte("OCSM"), 0o644)
	case faultnet.TearSegTail:
		// Crash mid group-commit append: garbage beyond the active
		// segment's durable size. Without segments yet there is nothing
		// to tear — equivalent to crashing before the batch's first byte.
		m, err := fsstore.ReadManifest(datadir, proc)
		if err != nil || len(m.Segments) == 0 {
			return err
		}
		last := m.Segments[len(m.Segments)-1]
		f, err := os.OpenFile(fsstore.SegmentFile(dir, last.Index), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("\xde\xad\xbe\xef torn group-commit batch")); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	case faultnet.TearGCSeg:
		// Crash between the GC's manifest commit and the segment unlink: a
		// valid but unreferenced segment file (cloned from a live one).
		m, err := fsstore.ReadManifest(datadir, proc)
		if err != nil || len(m.Segments) == 0 {
			return err
		}
		src := fsstore.SegmentFile(dir, m.Segments[0].Index)
		raw, err := os.ReadFile(src)
		if err != nil {
			return err
		}
		orphan := fsstore.SegmentFile(dir, m.Segments[len(m.Segments)-1].Index+7)
		return os.WriteFile(orphan, raw, 0o644)
	default:
		return fmt.Errorf("transport: unknown tear kind %q", kind)
	}
}

// sleepUntil sleeps until the chaos timeline (anchored at base) reaches
// at; it returns immediately if that instant already passed.
func sleepUntil(base time.Time, at time.Duration) {
	//ocsml:wallclock chaos schedule runs on the real clock, anchored at base
	if d := at - time.Since(base); d > 0 {
		time.Sleep(d)
	}
}

// waitLineAtLeast polls the durable manifests until their intersection
// reaches want, returning the line found.
func waitLineAtLeast(datadir string, n, want int, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout) //ocsml:wallclock polling deadline for durable manifests
	for {
		line, err := fsstore.LastCompleteSeq(datadir, n)
		if err != nil {
			return -1, err
		}
		if line >= want {
			return line, nil
		}
		if time.Now().After(deadline) { //ocsml:wallclock polling deadline for durable manifests
			return line, fmt.Errorf("transport: durable line %d did not reach %d within %v", line, want, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// WriteArtifact saves the schedule and rendered report as JSON+text next
// to each other — the failing-seed artifact the soak CI job uploads.
func (r *ChaosReport) WriteArtifact(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	base := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d", r.Seed))
	if err := os.WriteFile(base+".json", raw, 0o644); err != nil {
		return err
	}
	return os.WriteFile(base+".txt", []byte(r.Render()), 0o644)
}
