package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/fsstore"
	"ocsml/internal/metrics"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
	"ocsml/internal/wire"
)

// NodeConfig parameterizes one process of the real-network runtime.
type NodeConfig struct {
	ID, N int
	// Addrs maps process id to TCP address.
	Addrs []string
	// Listener is this process's already-bound listener for Addrs[ID].
	Listener net.Listener
	// Seed derives the node's deterministic random source.
	Seed int64
	// Epoch is the node's starting epoch; envelopes from older epochs
	// are dropped on delivery (stale pre-rollback traffic).
	Epoch int
	// Resume, when >= 0, restarts the protocol from an already-durable
	// checkpoint with that sequence number (see core.Protocol.SetResume)
	// and rewinds the application to ResumeRec's recorded progress.
	Resume    int
	ResumeRec *checkpoint.Record

	// Proto and App are this process's protocol and application.
	Proto protocol.Protocol
	App   protocol.App

	// Rec, Ckpts and Count may be shared across nodes (in-process
	// cluster) or private (daemon). Count may be nil.
	Rec   *trace.Recorder
	Ckpts *checkpoint.Store
	Count func(name string, delta int64)

	// Metrics is the named-metric registry the node registers its wire
	// and recovery series into (shared across the nodes of an in-process
	// cluster, private to a daemon). A nil Metrics gets a fresh registry;
	// when Count is also nil it defaults to the registry's event sink, so
	// a standalone node still accumulates the free-form statistics.
	Metrics *metrics.Registry

	// FS, when non-nil, persists every finalized checkpoint to disk at
	// the moment the protocol issues its stable-storage write.
	FS *fsstore.Store

	// Hook, when non-nil, filters every outgoing frame (fault injection;
	// see internal/faultnet).
	Hook SendHook

	// WireVersion pins the wire format this node speaks: it encodes
	// frames at that version and rejects inbound frames above it. Zero
	// means wire.VersionLatest; 1 runs the node as a pure-v1 process in
	// a mixed-version cluster.
	WireVersion int

	// WriteBandwidth models the stable-storage service rate in bytes
	// per second (the real fsync cost of FS comes on top). Default: no
	// modeled delay.
	WriteBandwidth int64

	// Base is the shared time origin: Now() = time.Since(Base). Nodes of
	// one cluster share it so virtual timestamps are comparable; a
	// restarted node keeps the original base so its clock stays
	// monotonic across the crash.
	Base time.Time

	// OnDone fires (once) when the application completes its quota.
	OnDone func(id int)

	// OnRollback fires after a wire-committed rollback (RB_CMT) rewound
	// this node to the given line — the in-process cluster's bookkeeping
	// hook (a standalone daemon needs none).
	OnRollback func(id, line int)
}

// Node hosts one process's protocol + application on real time, with
// envelope delivery over the TCP mesh. All protocol and application
// callbacks are serialized on the node's loop goroutine, exactly like
// the live runtime.
type Node struct {
	cfg  NodeConfig
	mesh *Mesh
	rng  *rand.Rand
	// enc serializes outgoing envelopes into pooled frames; all Sends
	// run on the loop goroutine, so its scratch state is single-owner.
	enc wire.Encoder //ocsml:loopowned loop

	inbox chan func()
	quit  chan struct{}
	wg    sync.WaitGroup

	storageCh chan storeReq
	storageQ  atomic.Int32

	idBase  int64
	idCtr   atomic.Int64
	started atomic.Bool
	closed  atomic.Bool

	// Single-goroutine state, proven by the loopowned analyzer: every
	// access runs on the named goroutine or in a closure posted to it.
	epoch   int    //ocsml:loopowned loop
	fold    uint64 //ocsml:loopowned loop
	work    int64  //ocsml:loopowned loop
	appSeq  int64  //ocsml:loopowned loop
	appDone bool   //ocsml:loopowned loop
	stall   int    //ocsml:loopowned loop
	// deferred holds loop-posted work parked while the app is stalled;
	// the stored closures replay on the loop.
	//ocsml:loopowned loop
	//ocsml:looppost loop
	deferred []func()
	// persisted is the highest seq written to FS; recLine the last
	// committed rollback/resume line (-1: never).
	persisted int //ocsml:loopowned storageLoop
	recLine   int //ocsml:loopowned loop

	staleDropped atomic.Int64
	decodeErrors atomic.Int64

	// Registry-backed series (see registerMetrics).
	mAppFrames *metrics.Counter
	mRollbacks *metrics.Counter
	mReplayed  *metrics.Counter
}

type storeReq struct {
	tag   string
	bytes int64
	done  func(start, end des.Time)
	// fn, when set, is a bare operation serialized with the disk writes
	// (rollback truncation); the other fields are ignored.
	fn func()
}

// NewNode builds a node (not yet started).
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.N != len(cfg.Addrs) || cfg.ID < 0 || cfg.ID >= cfg.N {
		return nil, fmt.Errorf("transport: invalid node id %d of %d (addrs %d)", cfg.ID, cfg.N, len(cfg.Addrs))
	}
	if cfg.Proto == nil || cfg.App == nil || cfg.Rec == nil || cfg.Ckpts == nil {
		return nil, fmt.Errorf("transport: node needs proto, app, recorder and store")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Count == nil {
		cfg.Count = cfg.Metrics.EventSink()
	}
	if cfg.Base.IsZero() {
		cfg.Base = time.Now() //ocsml:wallclock standalone node anchors its own time origin
	}
	n := &Node{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed + int64(cfg.ID)*7919)),
		inbox:     make(chan func(), 4096),
		quit:      make(chan struct{}),
		storageCh: make(chan storeReq, 1024),
		epoch:     cfg.Epoch,
		persisted: cfg.Resume,
		recLine:   cfg.Resume,
	}
	// Envelope IDs must be unique across OS processes AND across the
	// incarnations of one process: a restarted node's counter starts at
	// zero again, so without the epoch in the ID a post-restart envelope
	// would alias a pre-crash one and confuse trace pairing and dedup.
	// Bits 40+: node, 32-39: starting epoch, 0-31: counter.
	n.idBase = (int64(cfg.ID)+1)<<40 | int64(cfg.Epoch&0xff)<<32
	n.enc.Version = cfg.WireVersion //ocsml:loopexempt constructor runs before Start spawns the loop
	mesh, err := NewMesh(MeshConfig{
		ID: cfg.ID, Addrs: cfg.Addrs, Seed: cfg.Seed, Hook: cfg.Hook,
		Count: cfg.Count,
	}, cfg.Listener, n.acceptConn)
	if err != nil {
		return nil, err
	}
	n.mesh = mesh
	n.registerMetrics()
	if cfg.Resume >= 0 && cfg.ResumeRec != nil {
		// Genuine log replay, not a shortcut to the recorded result: fold
		// the durable message log over the restored tentative state and
		// verify it reproduces the fold recorded at finalization.
		n.fold = n.replayFold(cfg.ResumeRec) //ocsml:loopexempt constructor runs before Start spawns the loop
		n.work = cfg.ResumeRec.CFEWork       //ocsml:loopexempt constructor runs before Start spawns the loop
	}
	return n, nil
}

// registerMetrics installs this node's series in the registry. Counters
// backed by mesh/node atomics are function-attached (read at scrape
// time); a restarted node replaces its predecessor's series, so the
// per-proc values restart with the incarnation — exactly the semantics
// of a process restart under Prometheus.
func (n *Node) registerMetrics() {
	reg := n.cfg.Metrics
	proc := fmt.Sprintf("%d", n.cfg.ID)
	m := n.mesh
	reg.MustCounterVec("ocsml_wire_frames_sent_total",
		"Frames written to peer TCP connections.", "proc").Attach(m.framesSent.Load, proc)
	reg.MustCounterVec("ocsml_wire_frames_recv_total",
		"Frames read from peer TCP connections.", "proc").Attach(m.framesRecv.Load, proc)
	reg.MustCounterVec("ocsml_wire_bytes_sent_total",
		"Bytes written to peer TCP connections, including frame headers.", "proc").Attach(m.bytesSent.Load, proc)
	reg.MustCounterVec("ocsml_wire_bytes_recv_total",
		"Bytes read from peer TCP connections, including frame headers.", "proc").Attach(m.bytesRecv.Load, proc)
	reg.MustCounterVec("ocsml_wire_reconnects_total",
		"Peer connections re-established after loss.", "proc").Attach(m.reconnects.Load, proc)
	reg.MustCounterVec("ocsml_wire_frames_dropped_total",
		"Frames dropped at a full peer queue (recovered by retransmission).", "proc").Attach(m.dropped.Load, proc)
	reg.MustCounterVec("ocsml_wire_decode_errors_total",
		"Frames the wire codec rejected.", "proc").Attach(n.decodeErrors.Load, proc)
	reg.MustCounterVec("ocsml_wire_stale_dropped_total",
		"Envelopes dropped at the epoch fence (pre-rollback traffic).", "proc").Attach(n.staleDropped.Load, proc)
	reg.MustGaugeVec("ocsml_node_storage_queue",
		"Stable-storage writes queued or in service.", "proc").
		Attach(func() int64 { return int64(n.storageQ.Load()) }, proc)
	reg.MustCounterVec("ocsml_wire_piggyback_bytes_total",
		"Encoded bytes of protocol piggyback actually written to the wire (after delta encoding).", "proc").Attach(m.pbBytes.Load, proc)
	n.mAppFrames = reg.MustCounterVec("ocsml_wire_app_frames_total",
		"Application frames sent.", "proc").With(proc)
	n.mRollbacks = reg.MustCounterVec("ocsml_recovery_rollbacks_total",
		"Committed rollbacks executed (RB_CMT).", "proc").With(proc)
	n.mReplayed = reg.MustCounterVec("ocsml_recovery_replayed_msgs_total",
		"Logged messages replayed during piecewise-deterministic recovery.", "proc").With(proc)
}

// Start launches the node: mesh, loop and storage goroutines, then the
// protocol and application (or their resumed equivalents).
func (n *Node) Start() {
	if !n.started.CompareAndSwap(false, true) {
		return
	}
	n.wg.Add(2)
	go n.loop()
	go n.storageLoop()
	// Protocol start is queued before the mesh begins accepting, so no
	// delivery can reach OnDeliver ahead of Start.
	n.post(func() { n.cfg.Proto.Start(n) })
	if n.cfg.Resume >= 0 {
		rec := n.cfg.ResumeRec
		n.post(func() {
			ra, ok := n.cfg.App.(protocol.RewindableApp)
			if !ok {
				panic(fmt.Sprintf("transport: P%d application cannot resume", n.cfg.ID))
			}
			ra.Restore(nodeAppCtx{n}, rec.CFEProgress)
		})
	} else {
		n.post(func() { n.cfg.App.Start(nodeAppCtx{n}) })
	}
	n.mesh.Start()
}

// Close stops the node: no further callbacks run, connections drop.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	close(n.quit)
	n.mesh.Close()
	n.wg.Wait()
}

// Mesh exposes the wire fabric (stats).
func (n *Node) Mesh() *Mesh { return n.mesh }

// StaleDropped counts envelopes dropped at the epoch boundary.
func (n *Node) StaleDropped() int64 { return n.staleDropped.Load() }

// DecodeErrors counts frames the wire codec rejected.
func (n *Node) DecodeErrors() int64 { return n.decodeErrors.Load() }

// Post schedules fn on the node's serialized loop (cluster rollback
// uses it to mutate protocol state safely).
//
//ocsml:looppost loop
func (n *Node) Post(fn func()) { n.post(fn) }

// postStorage schedules fn on the storage goroutine, serialized with
// the disk persistence of finalized checkpoints. Returns false when the
// node is already shut down (fn will not run).
//
//ocsml:looppost storageLoop
func (n *Node) postStorage(fn func()) bool {
	select {
	case n.storageCh <- storeReq{fn: fn}:
		return true
	case <-n.quit:
		return false
	}
}

func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.quit:
			return
		case fn := <-n.inbox:
			fn()
		}
	}
}

//ocsml:looppost loop
func (n *Node) post(fn func()) {
	select {
	case n.inbox <- fn:
	case <-n.quit:
	}
}

// acceptConn builds one inbound connection's frame handler around a
// private stateful decoder: v2 delta frames decode against exactly that
// connection's frame stream, and a reconnect gets a fresh decoder just
// as the sender's PeerEncoder resets its delta base.
func (n *Node) acceptConn(src int) func(frame []byte) {
	dec := wire.NewDecoder(n.cfg.WireVersion)
	return func(frame []byte) { n.onFrame(dec, frame) }
}

// onFrame runs on a mesh reader goroutine: decode, then hop onto the
// loop for delivery. DecodeOwned, because the envelope outlives this
// call (the loop closure) and the protocols assert value payloads.
func (n *Node) onFrame(dec *wire.Decoder, frame []byte) {
	e, err := dec.DecodeOwned(frame)
	if err != nil {
		n.decodeErrors.Add(1)
		n.cfg.Count("wire.decode_errors", 1)
		return
	}
	n.post(func() {
		// Recovery frames are handled ahead of the epoch fence: the
		// coordinator of a crashed process cannot know the post-rollback
		// epoch it is about to establish, so its frames would otherwise
		// be dropped as stale.
		if protocol.IsRecoveryTag(e.CtlTag) {
			n.cfg.Rec.Record(trace.Event{
				T: n.Now(), Kind: trace.KCtlRecv, Proc: n.cfg.ID, Peer: e.Src,
				MsgID: e.ID, Seq: -1, Tag: e.CtlTag,
			})
			n.handleRecovery(e)
			return
		}
		if e.Epoch < n.epoch {
			n.staleDropped.Add(1)
			n.cfg.Count("wire.stale_dropped", 1)
			return
		}
		if e.Kind == protocol.KindCtl {
			n.cfg.Rec.Record(trace.Event{
				T: n.Now(), Kind: trace.KCtlRecv, Proc: n.cfg.ID, Peer: e.Src,
				MsgID: e.ID, Seq: -1, Tag: e.CtlTag,
			})
		}
		n.cfg.Proto.OnDeliver(e)
	})
}

// storageLoop serializes this process's stable-storage writes: the
// modeled service time (bytes / WriteBandwidth), plus the genuine disk
// persistence of finalized checkpoints when FS is configured.
func (n *Node) storageLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.quit:
			return
		case req := <-n.storageCh:
			if req.fn != nil {
				req.fn()
				continue
			}
			start := n.Now()
			if bw := n.cfg.WriteBandwidth; bw > 0 {
				d := time.Duration(float64(req.bytes) / float64(bw) * float64(time.Second))
				if d > 0 {
					select {
					case <-time.After(d):
					case <-n.quit:
						// The write is abandoned mid-service: release its
						// queue slot so StorageQueueLen stays balanced.
						n.storageQ.Add(-1)
						return
					}
				}
			}
			if n.cfg.FS != nil && req.tag != "ct" {
				// Finalization flush ("log" / "ct+log"): persist every
				// finalized-but-unpersisted record with a real fsync.
				n.persistFinalized()
			}
			end := n.Now()
			n.storageQ.Add(-1)
			if req.done != nil {
				done := req.done
				n.post(func() { done(start, end) })
			}
		}
	}
}

// persistFinalized writes newly finalized records to the fsstore as one
// group commit: every finalized-but-unpersisted record joins a single
// FinalizeBatch, so a backlog of k checkpoints costs one fsync chain,
// not k. Runs on the storage goroutine; the ProcStore is
// mutex-protected and the persisted watermark is only touched here.
func (n *Node) persistFinalized() {
	var batch []checkpoint.Record
	for _, rec := range n.cfg.Ckpts.Proc(n.cfg.ID).All() {
		if rec.Seq <= n.persisted || rec.FinalizedAt == 0 {
			continue
		}
		if rec.Seq <= n.cfg.FS.LastSeq() {
			// Already on disk: a previous attempt failed after its
			// manifest commit (e.g. the directory fsync); only the
			// watermark is behind.
			n.persisted = rec.Seq
			continue
		}
		batch = append(batch, rec)
	}
	if len(batch) == 0 {
		return
	}
	committed, err := n.cfg.FS.FinalizeBatch(batch)
	// Advance the watermark over exactly the committed prefix. On error,
	// stop there: advancing past a failed write would strand its seq
	// forever, leaving a permanent gap in the manifest; the next flush
	// retries from it.
	if committed > 0 {
		n.persisted = batch[committed-1].Seq
		n.cfg.Count("fsstore.finalized", int64(committed))
	}
	if err != nil {
		n.cfg.Count("fsstore.errors", 1)
	}
}

var _ protocol.Env = (*Node)(nil)

// ---- protocol.Env ----

// ID implements protocol.Env.
func (n *Node) ID() int { return n.cfg.ID }

// N implements protocol.Env.
func (n *Node) N() int { return n.cfg.N }

// Now implements protocol.Env: real time since the shared base.
//
//ocsml:wallclock the real-network runtime's virtual clock IS elapsed real time
func (n *Node) Now() des.Time { return des.Time(time.Since(n.cfg.Base)) }

// Rand implements protocol.Env.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Send implements protocol.Env: stamp, encode with the wire codec, and
// enqueue the frame at the peer's mesh queue. The real encoded size —
// not the simulator's synthetic Bytes estimate — is what travels.
// Protocols call it through the Env interface from loop callbacks.
//
//ocsml:loopcontext loop
func (n *Node) Send(e *protocol.Envelope) {
	e.Src = n.cfg.ID
	if e.ID == 0 {
		e.ID = n.idBase | n.idCtr.Add(1)
	}
	e.Epoch = n.epoch
	e.SentAt = n.Now()
	if e.Kind == protocol.KindCtl {
		n.cfg.Count("ctl."+e.CtlTag, 1)
		n.cfg.Rec.Record(trace.Event{
			T: e.SentAt, Kind: trace.KCtlSend, Proc: n.cfg.ID, Peer: e.Dst,
			MsgID: e.ID, Seq: -1, Tag: e.CtlTag,
		})
	}
	f := wire.AcquireFrame()
	if err := n.enc.EncodeFrame(f, e); err != nil {
		f.Release()
		panic(fmt.Sprintf("transport: P%d cannot encode envelope: %v", n.cfg.ID, err))
	}
	if e.Kind == protocol.KindApp {
		n.cfg.Count("wire.app_frames", 1)
		n.mAppFrames.Inc()
	}
	// Piggyback bytes are accounted by the mesh at write time, where the
	// per-connection delta encoding decides what actually travels.
	n.mesh.Send(e.Dst, f)
}

// Broadcast implements protocol.Env.
func (n *Node) Broadcast(e *protocol.Envelope) {
	for dst := 0; dst < n.cfg.N; dst++ {
		if dst == n.cfg.ID {
			continue
		}
		cp := *e
		cp.ID = 0
		cp.Dst = dst
		n.Send(&cp)
	}
}

// SetTimer implements protocol.Env. Timers from a pre-rollback epoch
// are dropped at fire time — the equivalent of the simulator's timer
// invalidation at recovery.
//
//ocsml:loopcontext loop
func (n *Node) SetTimer(d des.Duration, kind, gen int) *des.Timer {
	epoch := n.epoch
	time.AfterFunc(time.Duration(d), func() {
		n.post(func() {
			if n.epoch == epoch {
				n.cfg.Proto.OnTimer(kind, gen)
			}
		})
	})
	return nil
}

// WriteStable implements protocol.Env.
func (n *Node) WriteStable(tag string, bytes int64, done func(start, end des.Time)) {
	n.storageQ.Add(1)
	select {
	case n.storageCh <- storeReq{tag: tag, bytes: bytes, done: done}:
	case <-n.quit:
		// Never enqueued: undo the increment, or StorageQueueLen (read by
		// the protocol's EarlyFlush heuristic) would drift upward on every
		// write racing a shutdown.
		n.storageQ.Add(-1)
	}
}

// WriteStableBlocking implements protocol.Env.
func (n *Node) WriteStableBlocking(tag string, bytes int64, done func(start, end des.Time)) {
	n.StallApp()
	n.WriteStable(tag, bytes, func(start, end des.Time) {
		n.ResumeApp()
		if done != nil {
			done(start, end)
		}
	})
}

// StorageQueueLen implements protocol.Env (this process's local disk).
func (n *Node) StorageQueueLen() int { return int(n.storageQ.Load()) }

// StallApp implements protocol.Env.
//
//ocsml:loopcontext loop
func (n *Node) StallApp() { n.stall++ }

// ResumeApp implements protocol.Env.
//
//ocsml:loopcontext loop
func (n *Node) ResumeApp() {
	if n.stall == 0 {
		panic("transport: ResumeApp without StallApp")
	}
	n.stall--
	if n.stall == 0 {
		for len(n.deferred) > 0 && n.stall == 0 {
			fn := n.deferred[0]
			n.deferred = n.deferred[1:]
			fn()
		}
	}
}

// StallAppFor implements protocol.Env.
//
//ocsml:loopcontext loop
func (n *Node) StallAppFor(d des.Duration) {
	if d <= 0 {
		return
	}
	n.StallApp()
	epoch := n.epoch
	time.AfterFunc(time.Duration(d), func() {
		n.post(func() {
			if n.epoch == epoch {
				n.ResumeApp()
			}
		})
	})
}

// Snapshot implements protocol.Env (no copy-cost modeling here).
func (n *Node) Snapshot() protocol.Snapshot { return n.Peek() }

// Peek implements protocol.Env.
//
//ocsml:loopcontext loop
func (n *Node) Peek() protocol.Snapshot {
	s := protocol.Snapshot{Bytes: 1 << 20, Fold: n.fold, Work: n.work}
	if ra, ok := n.cfg.App.(protocol.RewindableApp); ok {
		s.Progress = ra.Progress()
	}
	return s
}

// DeliverApp implements protocol.Env.
//
//ocsml:loopcontext loop
func (n *Node) DeliverApp(e *protocol.Envelope, pre, then func()) {
	if n.stall > 0 {
		n.deferred = append(n.deferred, func() { n.processApp(e, pre, then) })
		return
	}
	n.processApp(e, pre, then)
}

func (n *Node) processApp(e *protocol.Envelope, pre, then func()) {
	n.cfg.Rec.Record(trace.Event{
		T: n.Now(), Kind: trace.KRecv, Proc: n.cfg.ID, Peer: e.Src, MsgID: e.ID, Seq: -1,
	})
	n.fold = checkpoint.FoldEvent(n.fold, checkpoint.Received, e.Src, e.Dst, e.App.Tag, e.App.Seq)
	if pre != nil {
		pre()
	}
	n.cfg.App.OnMessage(nodeAppCtx{n}, e.Src, e.App)
	if then != nil {
		then()
	}
}

// Checkpoints implements protocol.Env.
func (n *Node) Checkpoints() *checkpoint.ProcStore { return n.cfg.Ckpts.Proc(n.cfg.ID) }

// Note implements protocol.Env.
func (n *Node) Note(kind trace.Kind, seq int) {
	n.cfg.Rec.Record(trace.Event{T: n.Now(), Kind: kind, Proc: n.cfg.ID, Peer: -1, Seq: seq})
}

// Count implements protocol.Env.
func (n *Node) Count(name string, delta int64) { n.cfg.Count(name, delta) }

// Metrics implements protocol.Env.
func (n *Node) Metrics() *metrics.Registry { return n.cfg.Metrics }

// Draining implements protocol.Env: the real runtime has no drain
// phase; the cluster simply closes nodes when done.
func (n *Node) Draining() bool { return false }

// ---- protocol.AppCtx ----

type nodeAppCtx struct{ *Node }

// Send implements protocol.AppCtx: the application calls it from
// OnMessage/Start callbacks, which the node serializes on the loop.
//
//ocsml:loopcontext loop
func (a nodeAppCtx) Send(dst int, m protocol.AppMsg) {
	n := a.Node
	if dst == n.cfg.ID || dst < 0 || dst >= n.cfg.N {
		panic(fmt.Sprintf("transport: P%d sending to invalid destination %d", n.cfg.ID, dst))
	}
	n.appSeq++
	m.Seq = n.appSeq
	if m.Tag == 0 {
		m.Tag = n.rng.Uint64() | 1
	}
	e := &protocol.Envelope{
		Src: n.cfg.ID, Dst: dst,
		Kind: protocol.KindApp, Bytes: m.Bytes, App: m,
	}
	e.ID = n.idBase | n.idCtr.Add(1)
	n.fold = checkpoint.FoldEvent(n.fold, checkpoint.Sent, n.cfg.ID, dst, m.Tag, m.Seq)
	n.cfg.Rec.Record(trace.Event{
		T: n.Now(), Kind: trace.KSend, Proc: n.cfg.ID, Peer: dst, MsgID: e.ID, Seq: -1,
	})
	n.cfg.Count("app_msgs", 1)
	n.cfg.Proto.OnAppSend(e)
	n.Send(e)
}

// After implements protocol.AppCtx.
//
//ocsml:loopcontext loop
func (a nodeAppCtx) After(d des.Duration, fn func()) *des.Timer {
	n := a.Node
	epoch := n.epoch
	time.AfterFunc(time.Duration(d), func() {
		n.post(func() {
			if n.epoch != epoch {
				return
			}
			if n.stall > 0 {
				n.deferred = append(n.deferred, fn)
				return
			}
			fn()
		})
	})
	return nil
}

// DoWork implements protocol.AppCtx.
//
//ocsml:loopcontext loop
func (a nodeAppCtx) DoWork(units int64) { a.Node.work += units }

// Done implements protocol.AppCtx.
//
//ocsml:loopcontext loop
func (a nodeAppCtx) Done() {
	n := a.Node
	if n.appDone {
		return
	}
	n.appDone = true
	if n.cfg.OnDone != nil {
		n.cfg.OnDone(n.cfg.ID)
	}
}
