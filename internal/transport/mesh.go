package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// SendHook intercepts every outgoing frame before it reaches the peer
// queue — the fault-injection point of internal/faultnet. The hook may
// call deliver zero times (drop), once (pass or delay, possibly from a
// timer goroutine later), or several times (duplication). deliver is
// safe to call after the mesh has shut down.
type SendHook func(src, dst int, frame []byte, deliver func(frame []byte))

// MeshConfig parameterizes the TCP peer mesh of one process.
type MeshConfig struct {
	// ID is this process's identifier in [0, N).
	ID int
	// Addrs maps process id to TCP address; len(Addrs) is N.
	Addrs []string
	// Seed drives the backoff jitter (per-peer sources derive from it).
	Seed int64
	// Hook, when non-nil, filters every outgoing frame (fault injection).
	Hook SendHook
	// DialBackoff is the initial reconnect delay (default 20ms); it
	// doubles per failure up to DialBackoffCap (default 2s) and resets on
	// success.
	DialBackoff    time.Duration
	DialBackoffCap time.Duration
	// QueueLen is the per-peer outgoing frame queue (default 8192).
	// Frames offered to a full queue are dropped and counted — the
	// reliable middleware recovers them, exactly as it would on a lossy
	// simulated channel.
	QueueLen int
}

// MeshStats are the wire-level counters of one process.
type MeshStats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	// Reconnects counts connections re-established after an established
	// connection to a peer was lost (first connections don't count).
	Reconnects int64
	// Dropped counts frames discarded because a peer's queue was full.
	Dropped int64
}

// Mesh is the TCP fabric of one process: a listener accepting inbound
// connections from every peer, and one outbound connection per peer
// carrying this process's frames to it (so each ordered pair of
// processes has its own connection, and a process owns the connections
// it writes to).
type Mesh struct {
	cfg     MeshConfig
	ln      net.Listener
	handler func(src int, frame []byte)

	peers []*peer // indexed by process id; peers[ID] is nil

	quit    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	connsMu sync.Mutex
	//ocsml:guardedby connsMu
	conns map[net.Conn]struct{}

	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
	reconnects, dropped    atomic.Int64
}

// peer is the outgoing side toward one process.
type peer struct {
	id  int
	out chan []byte
	// connected tracks whether the writer currently holds an established
	// outbound connection — the liveness bit the admin API reports.
	connected atomic.Bool
}

// PeerInfo is one peer's liveness snapshot as the admin API reports it.
type PeerInfo struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
	// Connected reports an established outbound connection to the peer.
	Connected bool `json:"connected"`
	// QueueLen is the number of frames waiting on the outgoing queue.
	QueueLen int `json:"queueLen"`
}

// Peers snapshots the outbound-connection state toward every peer.
func (m *Mesh) Peers() []PeerInfo {
	out := make([]PeerInfo, 0, len(m.peers)-1)
	for _, p := range m.peers {
		if p == nil {
			continue
		}
		out = append(out, PeerInfo{
			ID: p.id, Addr: m.cfg.Addrs[p.id],
			Connected: p.connected.Load(),
			QueueLen:  len(p.out),
		})
	}
	return out
}

// NewMesh builds the mesh around an already-bound listener (so a
// cluster can bind every address before any process starts dialing).
// handler runs on a connection's reader goroutine; it must either be
// fast or hand off, and must be safe for concurrent invocation.
func NewMesh(cfg MeshConfig, ln net.Listener, handler func(src int, frame []byte)) (*Mesh, error) {
	n := len(cfg.Addrs)
	if n < 2 || cfg.ID < 0 || cfg.ID >= n {
		return nil, fmt.Errorf("transport: invalid mesh id %d of %d", cfg.ID, n)
	}
	if ln == nil {
		return nil, fmt.Errorf("transport: mesh needs a bound listener")
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 20 * time.Millisecond
	}
	if cfg.DialBackoffCap <= 0 {
		cfg.DialBackoffCap = 2 * time.Second
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 8192
	}
	m := &Mesh{
		cfg:     cfg,
		ln:      ln,
		handler: handler,
		peers:   make([]*peer, n),
		quit:    make(chan struct{}),
		conns:   map[net.Conn]struct{}{},
	}
	for j := 0; j < n; j++ {
		if j == cfg.ID {
			continue
		}
		m.peers[j] = &peer{id: j, out: make(chan []byte, cfg.QueueLen)}
	}
	return m, nil
}

// Start launches the accept loop and one writer goroutine per peer.
func (m *Mesh) Start() {
	m.wg.Add(1)
	go m.acceptLoop()
	for _, p := range m.peers {
		if p == nil {
			continue
		}
		m.wg.Add(1)
		go m.writerLoop(p)
	}
}

// Send enqueues one frame toward dst. A full queue (peer down long
// enough to exhaust the buffer) drops the frame — the loss is counted
// and left to the retransmission layer.
func (m *Mesh) Send(dst int, frame []byte) {
	if m.peers[dst] == nil {
		panic(fmt.Sprintf("transport: P%d sending to itself", dst))
	}
	if h := m.cfg.Hook; h != nil {
		h(m.cfg.ID, dst, frame, func(f []byte) { m.enqueue(dst, f) })
		return
	}
	m.enqueue(dst, frame)
}

// enqueue places one frame on the peer's outgoing queue (the post-hook
// half of Send; delayed fault-injected frames land here from timers).
func (m *Mesh) enqueue(dst int, frame []byte) {
	p := m.peers[dst]
	select {
	case p.out <- frame:
	case <-m.quit:
	default:
		m.dropped.Add(1)
	}
}

// Close shuts the mesh down: the listener, every open connection, and
// all goroutines.
func (m *Mesh) Close() {
	m.once.Do(func() {
		close(m.quit)
		m.ln.Close()
		m.connsMu.Lock()
		for c := range m.conns {
			c.Close()
		}
		m.connsMu.Unlock()
	})
	m.wg.Wait()
}

// Stats snapshots the wire counters.
func (m *Mesh) Stats() MeshStats {
	return MeshStats{
		FramesSent: m.framesSent.Load(),
		FramesRecv: m.framesRecv.Load(),
		BytesSent:  m.bytesSent.Load(),
		BytesRecv:  m.bytesRecv.Load(),
		Reconnects: m.reconnects.Load(),
		Dropped:    m.dropped.Load(),
	}
}

func (m *Mesh) trackConn(c net.Conn) bool {
	m.connsMu.Lock()
	defer m.connsMu.Unlock()
	select {
	case <-m.quit:
		c.Close()
		return false
	default:
	}
	m.conns[c] = struct{}{}
	return true
}

func (m *Mesh) untrackConn(c net.Conn) {
	m.connsMu.Lock()
	delete(m.conns, c)
	m.connsMu.Unlock()
	c.Close()
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !m.trackConn(c) {
			return
		}
		m.wg.Add(1)
		go m.serveConn(c)
	}
}

// serveConn reads the hello frame identifying the dialing peer, then
// passes every subsequent frame to the handler.
func (m *Mesh) serveConn(c net.Conn) {
	defer m.wg.Done()
	defer m.untrackConn(c)
	src, err := readHello(c, len(m.cfg.Addrs))
	if err != nil || src == m.cfg.ID {
		return
	}
	for {
		frame, err := readFrame(c)
		if err != nil {
			return
		}
		m.framesRecv.Add(1)
		m.bytesRecv.Add(int64(len(frame)) + frameHeader)
		m.handler(src, frame)
	}
}

// writerLoop owns the outbound connection to one peer: dial (with
// jittered exponential backoff), send the hello frame, then drain the
// queue. A write failure keeps the unsent frame and reconnects.
func (m *Mesh) writerLoop(p *peer) {
	defer m.wg.Done()
	rng := rand.New(rand.NewSource(jitterSeed(m.cfg.Seed, m.cfg.ID, p.id)))
	backoff := m.cfg.DialBackoff
	everConnected := false
	var conn net.Conn
	var carry []byte // frame whose write failed, resent first on reconnect
	defer func() {
		p.connected.Store(false)
		if conn != nil {
			m.untrackConn(conn)
		}
	}()
	for {
		// (Re)establish the connection.
		for conn == nil {
			c, err := net.DialTimeout("tcp", m.cfg.Addrs[p.id], backoff+time.Second)
			if err == nil {
				err = writeHello(c, m.cfg.ID)
			}
			if err != nil {
				if c != nil {
					c.Close()
				}
				// Jittered exponential backoff: sleep uniform in
				// [backoff/2, 3*backoff/2), then double up to the cap.
				d := backoff/2 + time.Duration(rng.Int63n(int64(backoff)+1))
				select {
				case <-time.After(d):
				case <-m.quit:
					return
				}
				if backoff *= 2; backoff > m.cfg.DialBackoffCap {
					backoff = m.cfg.DialBackoffCap
				}
				continue
			}
			if !m.trackConn(c) {
				return
			}
			conn = c
			p.connected.Store(true)
			backoff = m.cfg.DialBackoff // reset on success
			if everConnected {
				m.reconnects.Add(1)
			}
			everConnected = true
		}

		// Next frame: the carried-over one first, else wait on the queue.
		frame := carry
		if frame == nil {
			select {
			case frame = <-p.out:
			case <-m.quit:
				return
			}
		}
		if err := writeFrame(conn, frame); err != nil {
			carry = frame
			p.connected.Store(false)
			m.untrackConn(conn)
			conn = nil
			continue
		}
		carry = nil
		m.framesSent.Add(1)
		m.bytesSent.Add(int64(len(frame)) + frameHeader)
	}
}

// jitterSeed derives the backoff-jitter stream of one writer goroutine
// from the mesh seed with a splitmix64 mix. Every (mesh, peer) pair gets
// its own decorrelated source — never process-global math/rand state,
// and not the additive prime offsets used previously, whose neighbouring
// streams were correlated — so a chaos run's reconnect timing reproduces
// from the single cluster seed.
func jitterSeed(seed int64, id, peer int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1) + 0x517cc1b727220a95*uint64(peer+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// The hello frame opens every outbound connection: a 1-byte version and
// the dialer's process id as a uvarint, framed like any other payload.
const helloVersion = 1

func writeHello(c net.Conn, id int) error {
	buf := binary.AppendUvarint([]byte{helloVersion}, uint64(id))
	return writeFrame(c, buf)
}

func readHello(c net.Conn, n int) (int, error) {
	frame, err := readFrame(c)
	if err != nil {
		return -1, err
	}
	if len(frame) < 2 || frame[0] != helloVersion {
		return -1, fmt.Errorf("transport: bad hello frame")
	}
	id, k := binary.Uvarint(frame[1:])
	if k <= 0 || int(id) >= n {
		return -1, fmt.Errorf("transport: bad hello id")
	}
	return int(id), nil
}
