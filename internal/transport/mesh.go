package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ocsml/internal/wire"
)

// SendHook intercepts every outgoing frame before it reaches the peer
// queue — the fault-injection point of internal/faultnet. The hook may
// call deliver zero times (drop), once (pass or delay, possibly from a
// timer goroutine later), or several times (duplication). deliver is
// safe to call after the mesh has shut down.
//
// A hooked mesh never returns frames to the wire frame pool: the hook
// may still hold (or duplicate) a frame after the writer is done with
// its first copy, so ownership is left to the garbage collector.
type SendHook func(src, dst int, f *wire.Frame, deliver func(f *wire.Frame))

// MeshConfig parameterizes the TCP peer mesh of one process.
type MeshConfig struct {
	// ID is this process's identifier in [0, N).
	ID int
	// Addrs maps process id to TCP address; len(Addrs) is N.
	Addrs []string
	// Seed drives the backoff jitter (per-peer sources derive from it).
	Seed int64
	// Hook, when non-nil, filters every outgoing frame (fault injection).
	Hook SendHook
	// Count, when non-nil, receives the mesh's free-form statistics —
	// notably "wire.piggyback_bytes", accounted at write time where the
	// per-connection delta encoding is decided. It must be safe for
	// concurrent use (the writer goroutines call it).
	Count func(name string, delta int64)
	// DialBackoff is the initial reconnect delay (default 20ms); it
	// doubles per failure up to DialBackoffCap (default 2s) and resets on
	// success.
	DialBackoff    time.Duration
	DialBackoffCap time.Duration
	// QueueLen is the per-peer outgoing frame queue (default 8192).
	// Frames offered to a full queue are dropped and counted — the
	// reliable middleware recovers them, exactly as it would on a lossy
	// simulated channel.
	QueueLen int
}

// MeshStats are the wire-level counters of one process.
type MeshStats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	// Reconnects counts connections re-established after an established
	// connection to a peer was lost (first connections don't count).
	Reconnects int64
	// Dropped counts frames discarded because a peer's queue was full
	// (or could not be framed).
	Dropped int64
}

// Mesh is the TCP fabric of one process: a listener accepting inbound
// connections from every peer, and one outbound connection per peer
// carrying this process's frames to it (so each ordered pair of
// processes has its own connection, and a process owns the connections
// it writes to).
//
// The write path is frame-batched: a writer wakeup drains the peer
// queue (up to maxWriteBatch frames), delta-encodes the piggybacks
// against the connection's previous frame (wire.PeerEncoder), and
// hands the whole batch to the kernel as one vectored write.
type Mesh struct {
	cfg    MeshConfig
	ln     net.Listener
	accept func(src int) func(frame []byte)

	peers []*peer // indexed by process id; peers[ID] is nil

	quit    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
	connsMu sync.Mutex
	//ocsml:guardedby connsMu
	conns map[net.Conn]struct{}

	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
	reconnects, dropped    atomic.Int64
	pbBytes                atomic.Int64
}

// maxWriteBatch bounds how many queued frames one writer wakeup folds
// into a single vectored write.
const maxWriteBatch = 128

// peer is the outgoing side toward one process.
type peer struct {
	id  int
	out chan *wire.Frame
	// connected tracks whether the writer currently holds an established
	// outbound connection — the liveness bit the admin API reports.
	connected atomic.Bool
}

// PeerInfo is one peer's liveness snapshot as the admin API reports it.
type PeerInfo struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
	// Connected reports an established outbound connection to the peer.
	Connected bool `json:"connected"`
	// QueueLen is the number of frames waiting on the outgoing queue.
	QueueLen int `json:"queueLen"`
}

// Peers snapshots the outbound-connection state toward every peer.
func (m *Mesh) Peers() []PeerInfo {
	out := make([]PeerInfo, 0, len(m.peers)-1)
	for _, p := range m.peers {
		if p == nil {
			continue
		}
		out = append(out, PeerInfo{
			ID: p.id, Addr: m.cfg.Addrs[p.id],
			Connected: p.connected.Load(),
			QueueLen:  len(p.out),
		})
	}
	return out
}

// NewMesh builds the mesh around an already-bound listener (so a
// cluster can bind every address before any process starts dialing).
// accept is invoked once per established inbound connection and returns
// that connection's frame handler — connection scope is what gives a
// stateful decoder (wire.NewDecoder) exactly one peer's frame stream,
// reset on reconnect. The handler runs on the connection's reader
// goroutine; it must either be fast or hand off, must not retain frame
// (the buffer is reused for the next read), and handlers of different
// connections run concurrently.
func NewMesh(cfg MeshConfig, ln net.Listener, accept func(src int) func(frame []byte)) (*Mesh, error) {
	n := len(cfg.Addrs)
	if n < 2 || cfg.ID < 0 || cfg.ID >= n {
		return nil, fmt.Errorf("transport: invalid mesh id %d of %d", cfg.ID, n)
	}
	if ln == nil {
		return nil, fmt.Errorf("transport: mesh needs a bound listener")
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 20 * time.Millisecond
	}
	if cfg.DialBackoffCap <= 0 {
		cfg.DialBackoffCap = 2 * time.Second
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 8192
	}
	m := &Mesh{
		cfg:    cfg,
		ln:     ln,
		accept: accept,
		peers:  make([]*peer, n),
		quit:   make(chan struct{}),
		conns:  map[net.Conn]struct{}{},
	}
	for j := 0; j < n; j++ {
		if j == cfg.ID {
			continue
		}
		m.peers[j] = &peer{id: j, out: make(chan *wire.Frame, cfg.QueueLen)}
	}
	return m, nil
}

// Start launches the accept loop and one writer goroutine per peer.
func (m *Mesh) Start() {
	m.wg.Add(1)
	go m.acceptLoop()
	for _, p := range m.peers {
		if p == nil {
			continue
		}
		m.wg.Add(1)
		go m.writerLoop(p)
	}
}

// Send enqueues one frame toward dst, taking ownership of it: an
// acquired frame is returned to the pool once written or dropped
// (unless a Hook is installed — see SendHook). A full queue (peer down
// long enough to exhaust the buffer) drops the frame — the loss is
// counted and left to the retransmission layer.
//
//ocsml:hotpath
func (m *Mesh) Send(dst int, f *wire.Frame) {
	if m.peers[dst] == nil {
		panic(fmt.Sprintf("transport: P%d sending to itself", dst)) //ocsml:alloc misuse panic, unreachable in production
	}
	if h := m.cfg.Hook; h != nil {
		h(m.cfg.ID, dst, f, func(g *wire.Frame) { m.enqueue(dst, g) }) //ocsml:alloc fault-injection hook path, tests only
		return
	}
	m.enqueue(dst, f)
}

// enqueue places one frame on the peer's outgoing queue (the post-hook
// half of Send; delayed fault-injected frames land here from timers).
//
//ocsml:hotpath
func (m *Mesh) enqueue(dst int, f *wire.Frame) {
	p := m.peers[dst]
	select {
	case p.out <- f:
	case <-m.quit:
		m.release(f)
	default:
		m.dropped.Add(1)
		m.release(f)
	}
}

// release hands a frame back to the pool when the mesh owns it — only
// an unhooked mesh does; a Hook may still hold references.
func (m *Mesh) release(f *wire.Frame) {
	if m.cfg.Hook == nil {
		f.Release()
	}
}

// Close shuts the mesh down: the listener, every open connection, and
// all goroutines.
func (m *Mesh) Close() {
	m.once.Do(func() {
		close(m.quit)
		m.ln.Close()
		m.connsMu.Lock()
		for c := range m.conns {
			c.Close()
		}
		m.connsMu.Unlock()
	})
	m.wg.Wait()
}

// Stats snapshots the wire counters.
func (m *Mesh) Stats() MeshStats {
	return MeshStats{
		FramesSent: m.framesSent.Load(),
		FramesRecv: m.framesRecv.Load(),
		BytesSent:  m.bytesSent.Load(),
		BytesRecv:  m.bytesRecv.Load(),
		Reconnects: m.reconnects.Load(),
		Dropped:    m.dropped.Load(),
	}
}

// PiggybackBytes is the total payload-block bytes of piggyback-carrying
// frames actually written — after delta encoding, so it reflects what
// traveled, not what an absolute encoding would have cost.
func (m *Mesh) PiggybackBytes() int64 { return m.pbBytes.Load() }

func (m *Mesh) trackConn(c net.Conn) bool {
	m.connsMu.Lock()
	defer m.connsMu.Unlock()
	select {
	case <-m.quit:
		c.Close()
		return false
	default:
	}
	m.conns[c] = struct{}{}
	return true
}

func (m *Mesh) untrackConn(c net.Conn) {
	m.connsMu.Lock()
	delete(m.conns, c)
	m.connsMu.Unlock()
	c.Close()
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !m.trackConn(c) {
			return
		}
		m.wg.Add(1)
		go m.serveConn(c)
	}
}

// serveConn reads the hello frame identifying the dialing peer, then
// passes every subsequent frame to the connection's handler. The frame
// buffer is reused between reads, so handlers must finish with (or
// copy) a frame before returning.
func (m *Mesh) serveConn(c net.Conn) {
	defer m.wg.Done()
	defer m.untrackConn(c)
	src, err := readHello(c, len(m.cfg.Addrs))
	if err != nil || src == m.cfg.ID {
		return
	}
	handler := m.accept(src)
	var buf []byte
	for {
		buf, err = readFrameInto(c, buf)
		if err != nil {
			return
		}
		m.framesRecv.Add(1)
		m.bytesRecv.Add(int64(len(buf)) + frameHeader)
		handler(buf)
	}
}

// writerLoop owns the outbound connection to one peer: dial (with
// jittered exponential backoff), send the hello frame, then drain the
// queue in batches. Each batch is delta-encoded against the
// connection's running piggyback state and written with one vectored
// write; a write failure carries the unwritten tail over to the next
// connection, where it is re-encoded from scratch (the new
// connection's decoder has no delta base).
//
// The steady-state batch encode+write is a hot path: all its buffers
// (wbuf, bufs, ends, pbs, batch, carry) amortize to zero allocations.
// The dial/backoff preamble is annotated cold where it allocates.
//
//ocsml:hotpath
func (m *Mesh) writerLoop(p *peer) {
	defer m.wg.Done()
	rng := rand.New(rand.NewSource(jitterSeed(m.cfg.Seed, m.cfg.ID, p.id)))
	backoff := m.cfg.DialBackoff
	everConnected := false
	var conn net.Conn
	var pe wire.PeerEncoder
	var carry []*wire.Frame // frames whose write failed, resent first on reconnect
	var batch []*wire.Frame // frames encoded into the current write
	var wbuf []byte         // the batch's encoded bytes, length-prefixed
	var bufs net.Buffers    // one chunk per frame, aliasing wbuf's storage
	var ends []int64        // cumulative wire bytes through each frame
	var pbs []int64         // per-frame piggyback payload bytes
	defer func() {
		p.connected.Store(false)
		if conn != nil {
			m.untrackConn(conn)
		}
	}()
	for {
		// (Re)establish the connection.
		for conn == nil {
			c, err := net.DialTimeout("tcp", m.cfg.Addrs[p.id], backoff+time.Second)
			if err == nil {
				err = writeHello(c, m.cfg.ID)
			}
			if err != nil {
				if c != nil {
					c.Close()
				}
				// Jittered exponential backoff: sleep uniform in
				// [backoff/2, 3*backoff/2), then double up to the cap.
				d := backoff/2 + time.Duration(rng.Int63n(int64(backoff)+1))
				select {
				case <-time.After(d):
				case <-m.quit:
					return
				}
				if backoff *= 2; backoff > m.cfg.DialBackoffCap {
					backoff = m.cfg.DialBackoffCap
				}
				continue
			}
			if !m.trackConn(c) {
				return
			}
			conn = c
			// A fresh connection means a fresh decoder on the far side:
			// forget the delta base so the next piggyback goes out whole.
			pe.Reset()
			p.connected.Store(true)
			backoff = m.cfg.DialBackoff // reset on success
			if everConnected {
				m.reconnects.Add(1)
			}
			everConnected = true
		}

		// Collect a batch: carried-over frames first, else block for one
		// frame, then drain whatever else is already queued.
		batch = append(batch[:0], carry...)
		carry = carry[:0]
		if len(batch) == 0 {
			select {
			case f := <-p.out:
				batch = append(batch, f)
			case <-m.quit:
				return
			}
		}
	drain:
		for len(batch) < maxWriteBatch {
			select {
			case f := <-p.out:
				batch = append(batch, f)
			default:
				break drain
			}
		}

		// Encode the batch into one buffer: per frame a 4-byte length
		// prefix, then the (possibly delta-rewritten) wire bytes.
		wbuf = wbuf[:0]
		bufs = bufs[:0]
		ends = ends[:0]
		pbs = pbs[:0]
		enc := batch[:0] // frames actually encoded, in order
		var total int64
		for _, f := range batch {
			if f.Len() > MaxFrame && pe.EncodedSize(f) > MaxFrame {
				// Unframeable: dropping it here (before any delta state
				// advances) is the queue-overflow failure mode — the
				// retransmission layer recovers.
				m.dropped.Add(1)
				m.release(f)
				continue
			}
			start := len(wbuf)
			wbuf = append(wbuf, 0, 0, 0, 0)
			var pb int
			wbuf, pb = pe.AppendFrame(wbuf, f)
			binary.BigEndian.PutUint32(wbuf[start:], uint32(len(wbuf)-start-frameHeader))
			// Chunk slices survive wbuf reallocation: they alias the old
			// backing array, whose bytes were already written.
			bufs = append(bufs, wbuf[start:len(wbuf):len(wbuf)])
			total += int64(len(wbuf) - start)
			ends = append(ends, total)
			pbs = append(pbs, int64(pb))
			enc = append(enc, f)
		}
		if len(enc) == 0 {
			continue
		}

		n, err := bufs.WriteTo(conn)

		// Account the fully-written prefix; the rest is carried over.
		sent := 0
		for sent < len(enc) && ends[sent] <= n {
			sent++
		}
		m.framesSent.Add(int64(sent))
		m.bytesSent.Add(n)
		var pbSum int64
		for i := 0; i < sent; i++ {
			pbSum += pbs[i]
			m.release(enc[i])
		}
		if pbSum > 0 {
			m.pbBytes.Add(pbSum)
			if m.cfg.Count != nil {
				m.cfg.Count("wire.piggyback_bytes", pbSum)
			}
		}
		if err != nil {
			// A partially-written frame dies with the connection (the
			// reader abandons the stream mid-frame); it is re-encoded in
			// full on the next connection, like the rest of the tail.
			carry = append(carry[:0], enc[sent:]...)
			p.connected.Store(false)
			m.untrackConn(conn)
			conn = nil
		}
	}
}

// jitterSeed derives the backoff-jitter stream of one writer goroutine
// from the mesh seed with a splitmix64 mix. Every (mesh, peer) pair gets
// its own decorrelated source — never process-global math/rand state,
// and not the additive prime offsets used previously, whose neighbouring
// streams were correlated — so a chaos run's reconnect timing reproduces
// from the single cluster seed.
func jitterSeed(seed int64, id, peer int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1) + 0x517cc1b727220a95*uint64(peer+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// The hello frame opens every outbound connection: a 1-byte version and
// the dialer's process id as a uvarint, framed like any other payload.
const helloVersion = 1

// writeHello frames and writes the hello; it runs once per established
// connection, so its small buffer is off the steady-state write path.
//
//ocsml:alloc once per connection
func writeHello(c net.Conn, id int) error {
	buf := binary.AppendUvarint([]byte{helloVersion}, uint64(id))
	return writeFrame(c, buf)
}

func readHello(c net.Conn, n int) (int, error) {
	frame, err := readFrame(c)
	if err != nil {
		return -1, err
	}
	if len(frame) < 2 || frame[0] != helloVersion {
		return -1, fmt.Errorf("transport: bad hello frame")
	}
	id, k := binary.Uvarint(frame[1:])
	if k <= 0 || int(id) >= n {
		return -1, fmt.Errorf("transport: bad hello id")
	}
	return int(id), nil
}
