package transport

import (
	"testing"
	"time"

	"ocsml/internal/faultnet"
)

// chaosTestConfig is a short chaos run tuned for wall clock: a 4-process
// cluster, ~1.5s of drop/partition/crash faults.
func chaosTestConfig(datadir string, seed int64) ChaosConfig {
	cfg := DefaultChaosConfig(4, seed, datadir, 1500*time.Millisecond)
	cfg.Converge = 25 * time.Second
	return cfg
}

// TestChaosRunInvariants drives one full chaos run — drops, a
// partition, a kill+restart — and requires every invariant to hold.
func TestChaosRunInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time chaos test")
	}
	rep, err := RunChaos(chaosTestConfig(t.TempDir(), 7))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("invariants failed:\n%s", rep.Render())
	}
	if rep.Restarts != len(rep.Schedule.Crashes) {
		t.Fatalf("restarts = %d, schedule has %d crashes", rep.Restarts, len(rep.Schedule.Crashes))
	}
	if rep.FaultStats.Dropped+rep.FaultStats.Partitioned == 0 {
		t.Fatal("injector applied no loss faults — schedule windows never met traffic")
	}
}

// TestChaosReportReproducible is the acceptance criterion: two chaos
// runs from the same seed produce byte-for-byte identical fault
// schedules and invariant reports.
func TestChaosReportReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time chaos test")
	}
	run := func() string {
		rep, err := RunChaos(chaosTestConfig(t.TempDir(), 13))
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		if !rep.OK() {
			t.Fatalf("invariants failed:\n%s", rep.Render())
		}
		return rep.Render()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("reports differ across runs of one seed:\n--- first\n%s--- second\n%s", a, b)
	}
}

// TestChaosV1WireInvariants is the mixed-version smoke: a cluster
// negotiated down to the v1 wire format (pure-v1 encoders, v1-only
// decoders, no delta rewriting) must survive the same chaos schedule
// with every invariant intact.
func TestChaosV1WireInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time chaos test")
	}
	cfg := DefaultChaosConfig(4, 19, t.TempDir(), time.Second)
	cfg.Converge = 25 * time.Second
	cfg.Cluster.WireVersion = 1
	rep, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("v1-wire chaos run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("invariants failed on the v1 wire format:\n%s", rep.Render())
	}
}

// TestChaosRequiresDatadir: crash/restart without durable storage is a
// configuration error, not a panic.
func TestChaosRequiresDatadir(t *testing.T) {
	cfg := DefaultChaosConfig(4, 1, "", time.Second)
	if _, err := RunChaos(cfg); err == nil {
		t.Fatal("chaos without datadir accepted")
	}
}

// TestChaosProfileMismatch: the schedule's universe must match the
// cluster's.
func TestChaosProfileMismatch(t *testing.T) {
	cfg := DefaultChaosConfig(4, 1, t.TempDir(), time.Second)
	cfg.Profile = faultnet.DefaultProfile(5, time.Second)
	if _, err := RunChaos(cfg); err == nil {
		t.Fatal("mismatched profile accepted")
	}
}

func TestJitterSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for id := 0; id < 8; id++ {
		for peer := 0; peer < 8; peer++ {
			if id == peer {
				continue
			}
			s := jitterSeed(1, id, peer)
			if seen[s] {
				t.Fatalf("jitter seed collision at (%d,%d)", id, peer)
			}
			seen[s] = true
			if s != jitterSeed(1, id, peer) {
				t.Fatal("jitter seed not stable")
			}
		}
	}
	if jitterSeed(1, 0, 1) == jitterSeed(2, 0, 1) {
		t.Fatal("jitter seed ignores the mesh seed")
	}
}
