package transport

import (
	"testing"

	"ocsml/internal/leakcheck"
)

// TestMain fails the package's test binary when a Cluster, Node or Mesh
// leaves a goroutine running after the tests pass — the shutdown paths
// (Stop, Close, chaos teardown) must reap everything they start.
func TestMain(m *testing.M) { leakcheck.Main(m) }
