package transport

import (
	"fmt"
	"time"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
)

// This file is the admin control plane's read/write surface on a node:
// consistent snapshots of loop-owned protocol state, taken ON the loop
// goroutine (never by reaching into fields from outside), plus the
// checkpoint trigger and the graceful storage drain.

// NodeStatus is one node's state snapshot as the admin API reports it.
type NodeStatus struct {
	ID    int `json:"id"`
	N     int `json:"n"`
	Epoch int `json:"epoch"`
	// Csn/Stat/TentSet/LogLen mirror the paper's per-process protocol
	// state (csn_i, stat_i, tentSet_i, |logSet_i|); absent (csn -1, empty
	// stat) when the protocol does not expose them.
	Csn     int    `json:"csn"`
	Stat    string `json:"stat,omitempty"`
	TentSet []int  `json:"tentSet,omitempty"`
	LogLen  int    `json:"logLen"`
	Proto   string `json:"proto"`
	AppDone bool   `json:"appDone"`
	// RecoveredLine is the line of the last committed rollback or resume
	// (-1: this incarnation never rolled back).
	RecoveredLine int `json:"recoveredLine"`
	// DurableSeq is the highest checkpoint seq in the on-disk manifest
	// (-1 without a store or before the first finalization).
	DurableSeq int `json:"durableSeq"`
	// StorageQueue is the number of stable-storage writes queued or in
	// service.
	StorageQueue int        `json:"storageQueue"`
	Peers        []PeerInfo `json:"peers"`
}

// coreStatus is what the OCSML protocol exposes for status snapshots.
type coreStatus interface {
	Csn() int
	LogLen() int
	TentProcs() []int
}

// unwrapped returns the innermost protocol (through the reliable
// middleware, which exposes Inner).
func (n *Node) unwrapped() protocol.Protocol {
	p := n.cfg.Proto
	for {
		u, ok := p.(interface{ Inner() protocol.Protocol })
		if !ok {
			return p
		}
		p = u.Inner()
	}
}

// StatusSnapshot captures the node's state consistently by running on
// the loop goroutine. It fails when the node is closed or the loop does
// not get to the request within timeout (a wedged loop is itself a
// finding for the operator).
func (n *Node) StatusSnapshot(timeout time.Duration) (NodeStatus, error) {
	ch := make(chan NodeStatus, 1)
	n.post(func() {
		st := NodeStatus{
			ID: n.cfg.ID, N: n.cfg.N, Epoch: n.epoch,
			Csn: -1, Proto: n.cfg.Proto.Name(), AppDone: n.appDone,
			RecoveredLine: n.recLine,
			DurableSeq:    -1,
			StorageQueue:  int(n.storageQ.Load()),
			Peers:         n.mesh.Peers(),
		}
		inner := n.unwrapped()
		if cs, ok := inner.(coreStatus); ok {
			st.Csn = cs.Csn()
			st.LogLen = cs.LogLen()
			st.TentSet = cs.TentProcs()
		}
		if ss, ok := inner.(interface{ Status() core.Status }); ok {
			st.Stat = ss.Status().String()
		}
		if n.cfg.FS != nil {
			st.DurableSeq = n.cfg.FS.LastSeq()
		}
		ch <- st
	})
	select {
	case st := <-ch:
		return st, nil
	case <-n.quit:
		return NodeStatus{}, fmt.Errorf("transport: P%d is closed", n.cfg.ID)
	case <-time.After(timeout):
		return NodeStatus{}, fmt.Errorf("transport: P%d status snapshot timed out after %v", n.cfg.ID, timeout)
	}
}

// TriggerCheckpoint asks the protocol to initiate a tentative
// checkpoint round (the admin API's POST /v1/checkpoint). The returned
// csn is the sequence number current AFTER the initiation attempt; a
// protocol already in a tentative round ignores the trigger (paper
// §3.4: status tentative forbids a new checkpoint) and the prior csn
// comes back unchanged.
func (n *Node) TriggerCheckpoint(timeout time.Duration) (int, error) {
	type result struct {
		csn int
		err error
	}
	ch := make(chan result, 1)
	n.post(func() {
		inner := n.unwrapped()
		init, ok := inner.(interface{ Initiate() })
		if !ok {
			ch <- result{-1, fmt.Errorf("transport: protocol %q cannot initiate checkpoints", n.cfg.Proto.Name())}
			return
		}
		init.Initiate()
		csn := -1
		if cs, ok := inner.(coreStatus); ok {
			csn = cs.Csn()
		}
		ch <- result{csn, nil}
	})
	select {
	case r := <-ch:
		return r.csn, r.err
	case <-n.quit:
		return -1, fmt.Errorf("transport: P%d is closed", n.cfg.ID)
	case <-time.After(timeout):
		return -1, fmt.Errorf("transport: P%d checkpoint trigger timed out after %v", n.cfg.ID, timeout)
	}
}

// WaitStorageIdle blocks until every issued stable-storage write has
// been serviced, or the timeout elapses, or the node closes. The
// graceful-shutdown path calls it before Close so in-flight
// finalizations reach the disk instead of being dropped with the
// storage goroutine.
func (n *Node) WaitStorageIdle(timeout time.Duration) bool {
	deadline := time.After(timeout)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if n.storageQ.Load() == 0 && len(n.storageCh) == 0 {
			return true
		}
		select {
		case <-deadline:
			return false
		case <-n.quit:
			return false
		case <-tick.C:
		}
	}
}
