package transport

import (
	"testing"
	"time"

	"ocsml/internal/checkpoint"
	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/fsstore"
	"ocsml/internal/workload"
)

// testClusterConfig is a 4-process localhost cluster tuned for wall
// clock: 150ms checkpoint interval, fast convergence timeout, a
// workload short enough to finish in a couple of seconds but long
// enough to span several checkpoint rounds.
func testClusterConfig(datadir string, seed int64) ClusterConfig {
	return ClusterConfig{
		N:       4,
		Seed:    seed,
		Datadir: datadir,
		Opt: core.Options{
			Interval: 150 * des.Duration(time.Millisecond),
			Timeout:  60 * des.Duration(time.Millisecond),
			SkipREQ:  true,
		},
		Reliable: true,
		Workload: workload.Config{
			Pattern:  workload.UniformRandom,
			Steps:    120,
			Think:    4 * des.Duration(time.Millisecond),
			MsgBytes: 256,
		},
		WriteBandwidth: 64 << 20,
		Timeout:        30 * time.Second,
		Drain:          600 * time.Millisecond,
	}
}

// validateDisk recovers the on-disk stores and checks (a) every process
// has the last complete sequence durable, and (b) every durable record
// passes replay validation: restoring CT and folding the logged
// messages reproduces the CFE state hash.
func validateDisk(t *testing.T, datadir string, n, wantSeq int) {
	t.Helper()
	last, err := fsstore.LastCompleteSeq(datadir, n)
	if err != nil {
		t.Fatalf("LastCompleteSeq: %v", err)
	}
	if last < wantSeq {
		t.Fatalf("durable S_k = %d, want >= %d", last, wantSeq)
	}
	st, err := fsstore.RecoverStore(datadir, n)
	if err != nil {
		t.Fatalf("RecoverStore: %v", err)
	}
	for p := 0; p < n; p++ {
		rec, ok := st.Proc(p).Get(last)
		if !ok {
			t.Fatalf("P%d: recovered store missing seq %d", p, last)
		}
		for _, r := range st.Proc(p).All() {
			if got := checkpoint.FoldLog(r.Fold, r.Log); got != r.CFEFold {
				t.Fatalf("P%d seq %d: replay fold %#x != CFE fold %#x", p, r.Seq, got, r.CFEFold)
			}
		}
		_ = rec
	}
}

func TestClusterRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	dir := t.TempDir()
	c, err := NewCluster(testClusterConfig(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("workload did not complete")
	}
	if rep.GlobalCheckpoints < 2 {
		t.Fatalf("global checkpoints = %d, want >= 2 (seqs %v)", rep.GlobalCheckpoints, rep.ConsistentSeqs)
	}
	if rep.AppMessages == 0 || rep.PiggybackBytes == 0 {
		t.Fatalf("wire accounting empty: app=%d piggyback=%d", rep.AppMessages, rep.PiggybackBytes)
	}
	if rep.PiggybackBytesPerMsg <= 0 {
		t.Fatalf("piggyback bytes/msg = %v", rep.PiggybackBytesPerMsg)
	}
	if rep.FramesSent == 0 || rep.FrameBytes == 0 {
		t.Fatalf("mesh accounting empty: frames=%d bytes=%d", rep.FramesSent, rep.FrameBytes)
	}
	if c.Counter("wire.decode_errors") != 0 {
		t.Fatalf("decode errors: %d", c.Counter("wire.decode_errors"))
	}
	validateDisk(t, dir, 4, 1)
}

// TestClusterKillRestart is the crash-recovery integration test: a
// 4-process TCP cluster with file-backed storage reaches at least two
// durable global checkpoints, one process is killed, the survivors roll
// back to the last durable recovery line, and the victim restarts from
// its on-disk manifest. The cluster must then advance past the line
// again, and every durable record must replay-validate.
func TestClusterKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	dir := t.TempDir()
	cfg := testClusterConfig(dir, 11)
	cfg.Workload.Steps = 100000 // effectively endless; the test stops the cluster
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	// Let the cluster commit at least two global checkpoints to disk.
	waitFor(t, 20*time.Second, func() bool {
		last, err := fsstore.LastCompleteSeq(dir, cfg.N)
		return err == nil && last >= 2
	})

	const victim = 1
	c.Kill(victim)
	time.Sleep(50 * time.Millisecond) // let in-flight traffic hit the dead socket

	line, err := c.Recover(victim)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if line < 2 {
		t.Fatalf("recovery line %d, want >= 2", line)
	}

	// The restarted cluster must finalize new checkpoints beyond the line.
	waitFor(t, 20*time.Second, func() bool {
		last, err := fsstore.LastCompleteSeq(dir, cfg.N)
		return err == nil && last >= line+1
	})
	c.Stop()

	if got := c.Counter("recovery.failures"); got != 1 {
		t.Fatalf("failures counter = %d", got)
	}
	if got := c.Counter("recovery.restarts"); got != 1 {
		t.Fatalf("restarts counter = %d", got)
	}
	if got := c.Counter("recovery.coordinated"); got != 1 {
		t.Fatalf("coordinated counter = %d", got)
	}
	if got := c.Counter("recovery.recoveries"); got != 1 {
		t.Fatalf("recoveries counter = %d", got)
	}
	if got := c.Counter("recovery.rollbacks"); got != int64(cfg.N-1) {
		t.Fatalf("rollbacks counter = %d, want %d", got, cfg.N-1)
	}
	validateDisk(t, dir, cfg.N, line+1)

	// The in-memory store must agree with disk about the new line.
	if max := c.Ckpts.MaxCompleteSeq(); max < line+1 {
		t.Fatalf("in-memory complete seq %d, want >= %d", max, line+1)
	}
}
