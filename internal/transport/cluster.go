package transport

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"ocsml/internal/checkpoint"
	"ocsml/internal/core"
	"ocsml/internal/fsstore"
	"ocsml/internal/metrics"
	"ocsml/internal/protocol"
	"ocsml/internal/reliable"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

// ClusterConfig parameterizes an in-process spawn-all cluster: N nodes
// in one OS process, talking to each other over real localhost TCP
// connections — the -spawn-all mode of cmd/ocsmld and the harness of
// the transport integration tests.
type ClusterConfig struct {
	N    int
	Seed int64
	// Datadir, when non-empty, enables file-backed stable storage (one
	// fsstore directory per process).
	Datadir string
	// Opt configures the OCSML protocol. Intervals are real time here.
	Opt core.Options
	// Reliable wraps the protocol with the ack/retransmit middleware,
	// covering the frames a saturated or reconnecting peer queue drops.
	Reliable bool
	// Workload drives the synthetic application.
	Workload workload.Config
	// WriteBandwidth models stable-storage service time (bytes/sec).
	WriteBandwidth int64
	// Timeout bounds Run.
	Timeout time.Duration
	// Drain is how long Run keeps the cluster alive after the workload
	// completes, letting in-flight finalizations settle.
	Drain time.Duration
	// Hook, when non-nil, filters every outgoing frame of every node —
	// the chaos runner's fault-injection point (internal/faultnet).
	Hook SendHook
	// WireVersion pins every node's wire format (see
	// NodeConfig.WireVersion). Zero means wire.VersionLatest; 1 runs
	// the whole cluster on the v1 format, the mixed-version fallback.
	WireVersion int
	// Metrics is the shared named-metric registry of the cluster's nodes
	// (a fresh one when nil). The free-form counter namespace lands in
	// its events family; Counter/Counters read from there.
	Metrics *metrics.Registry
	// FSOptions tunes the durability engine of every node's store (group
	// window, batch depth, segment size, snapshot cadence). Zero fields
	// select fsstore defaults.
	FSOptions fsstore.Options
	// GCInterval, when positive, runs the storage garbage collector: a
	// cluster goroutine periodically intersects the durable manifests and
	// prunes every store below the globally finalized S_k watermark.
	// Requires Datadir. Zero disables collection.
	GCInterval time.Duration
}

// Cluster is a set of transport nodes sharing one recorder, checkpoint
// store and metric registry, connected by real TCP.
type Cluster struct {
	cfg   ClusterConfig
	Rec   *trace.Recorder
	Ckpts *checkpoint.Store
	// Metrics is the shared registry (ClusterConfig.Metrics or a fresh
	// one); the admin server serves it at /metrics.
	Metrics *metrics.Registry

	addrs []string
	nodes []*Node // elements replaced under mu by Restart
	//ocsml:guardedby mu
	fss   []*fsstore.Store // elements replaced under mu by Recover/Restart
	base  time.Time
	epoch int

	count func(name string, delta int64)

	mu sync.Mutex
	//ocsml:guardedby mu
	done   []bool
	doneCh chan struct{}

	//ocsml:guardedby mu
	makespan time.Duration

	// recovering pauses the GC loop while Recover/Restart reload a
	// victim's store — collecting below the line mid-reload would pull
	// records the restart is about to read.
	//ocsml:guardedby mu
	recovering bool

	gcQuit chan struct{}
	gcOnce sync.Once // guards gcQuit close (Stop may run twice)
	gcWG   sync.WaitGroup
}

// NewCluster binds N localhost listeners and builds the nodes. Nothing
// runs until Start.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("transport: cluster needs at least 2 processes")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 500 * time.Millisecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	c := &Cluster{
		cfg:     cfg,
		Rec:     trace.NewRecorder(),
		Ckpts:   checkpoint.NewStore(cfg.N),
		Metrics: cfg.Metrics,
		base:    time.Now(), //ocsml:wallclock shared time origin of the real-network cluster
		count:   cfg.Metrics.EventSink(),
		done:    make([]bool, cfg.N),
		doneCh:  make(chan struct{}, 1),
		nodes:   make([]*Node, cfg.N),
		fss:     make([]*fsstore.Store, cfg.N),
		gcQuit:  make(chan struct{}),
	}
	listeners := make([]net.Listener, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, err
		}
		listeners[i] = ln
		c.addrs = append(c.addrs, ln.Addr().String())
	}
	for i := 0; i < cfg.N; i++ {
		if cfg.Datadir != "" {
			fs, err := fsstore.OpenWith(cfg.Datadir, i, cfg.N, cfg.FSOptions)
			if err != nil {
				return nil, err
			}
			fs.SetMetrics(fsstore.NewStoreMetrics(c.Metrics, i))
			c.fss[i] = fs
		}
		n, err := c.buildNode(i, listeners[i], -1, nil)
		if err != nil {
			return nil, err
		}
		c.nodes[i] = n
	}
	return c, nil
}

// buildNode assembles one node (fresh or resuming from a checkpoint).
func (c *Cluster) buildNode(i int, ln net.Listener, resume int, rec *checkpoint.Record) (*Node, error) {
	var proto protocol.Protocol
	cp := core.New(c.cfg.Opt)
	if resume >= 0 {
		cp.SetResume(resume)
	}
	proto = cp
	if c.cfg.Reliable {
		proto = reliable.Wrap(cp, reliable.Options{})
	}
	app := workload.Factory(c.cfg.Workload)(i, c.cfg.N)
	return NewNode(NodeConfig{
		ID: i, N: c.cfg.N, Addrs: c.addrs, Listener: ln,
		Seed: c.cfg.Seed, Epoch: c.epoch,
		Resume: resume, ResumeRec: rec,
		Proto: proto, App: app,
		Rec: c.Rec, Ckpts: c.Ckpts, Count: c.count,
		Metrics:        c.Metrics,
		Hook:           c.cfg.Hook,
		WireVersion:    c.cfg.WireVersion,
		FS:             c.FS(i),
		WriteBandwidth: c.cfg.WriteBandwidth,
		Base:           c.base,
		OnDone:         c.nodeDone,
		OnRollback:     func(id, _ int) { c.clearDone(id) },
	})
}

// Addrs returns the cluster's TCP addresses.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Node returns process i's node (the current incarnation — Restart
// replaces the element).
func (c *Cluster) Node(i int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// Nodes snapshots the current node set — the admin server's view of the
// locally hosted processes (called per request, so a restarted node is
// observed).
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.nodes...)
}

// FS returns process i's on-disk store (nil without a datadir; the
// current incarnation — Recover/Restart replace the element).
func (c *Cluster) FS(i int) *fsstore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fss[i]
}

// setFS swaps in a reopened store for process i.
func (c *Cluster) setFS(i int, fs *fsstore.Store) {
	c.mu.Lock()
	c.fss[i] = fs
	c.mu.Unlock()
}

// setRecovering flips the GC pause flag around a recovery.
func (c *Cluster) setRecovering(v bool) {
	c.mu.Lock()
	c.recovering = v
	c.mu.Unlock()
}

// Start launches every node, plus the storage GC loop when configured.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n.Start()
	}
	if c.cfg.Datadir != "" && c.cfg.GCInterval > 0 {
		c.gcWG.Add(1)
		go c.gcLoop()
	}
}

// gcLoop periodically prunes every store below the globally finalized
// S_k watermark: the intersection of the durable manifests is the last
// checkpoint line recovery can ever need, so everything strictly below
// it is dead weight (the paper's retention argument). Collection skips
// ticks while a recovery is reloading a store.
func (c *Cluster) gcLoop() {
	defer c.gcWG.Done()
	ticker := time.NewTicker(c.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.gcQuit:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		paused := c.recovering
		c.mu.Unlock()
		if paused {
			continue
		}
		wm, err := fsstore.LastCompleteSeq(c.cfg.Datadir, c.cfg.N)
		if err != nil || wm <= 0 {
			continue
		}
		for i := 0; i < c.cfg.N; i++ {
			fs := c.FS(i)
			if fs == nil {
				continue
			}
			if err := fs.GCTo(wm); err != nil {
				c.count("fsstore.gc_errors", 1)
			}
		}
		c.count("fsstore.gc_sweeps", 1)
	}
}

// WaitDone blocks until every process has completed its workload quota
// or the deadline passes.
func (c *Cluster) WaitDone(timeout time.Duration) error {
	deadline := time.After(timeout)
	for {
		select {
		case <-c.doneCh:
			if c.allDone() {
				return nil
			}
		case <-deadline:
			return fmt.Errorf("transport: workload did not complete within %v", timeout)
		}
	}
}

// Run executes the cluster start-to-finish: start, wait for the
// workload, drain, stop.
func (c *Cluster) Run() error { return c.RunThen(nil) }

// RunThen is Run with a pre-stop hook: beforeStop (when non-nil) runs
// after the drain and before the nodes close. The daemon shuts its
// admin server down there, so an in-flight status read still observes a
// live mesh — the shutdown ordering the control plane requires.
func (c *Cluster) RunThen(beforeStop func()) error {
	c.Start()
	defer c.Stop()
	if beforeStop != nil {
		defer beforeStop() // deferred after Stop, so it runs first (LIFO)
	}
	if err := c.WaitDone(c.cfg.Timeout); err != nil {
		return err
	}
	//ocsml:wallclock makespan of a real-network run is wall time by definition
	makespan := time.Since(c.base)
	c.mu.Lock()
	c.makespan = makespan
	c.mu.Unlock()
	time.Sleep(c.cfg.Drain)
	return nil
}

// Stop closes every node and stops the GC loop.
func (c *Cluster) Stop() {
	c.gcOnce.Do(func() { close(c.gcQuit) })
	c.gcWG.Wait()
	for _, n := range c.Nodes() {
		if n != nil {
			n.Close()
		}
	}
}

// Kill crashes process i: its node stops abruptly, volatile state (the
// in-memory protocol state, unflushed tentative checkpoints and logs)
// is gone; only its fsstore directory survives.
func (c *Cluster) Kill(i int) {
	n := c.Node(i)
	n.Close()
	c.Rec.Record(trace.Event{T: n.Now(), Kind: trace.KFail, Proc: i, Peer: -1, Seq: -1})
	c.count("recovery.failures", 1)
}

// Recover drives the wire-level recovery protocol for the crashed
// process: rebind its address, coordinate the recovery line from the
// cluster's durable manifests (RB_BGN -> RB_LINE -> RB_CMT -> RB_ACK,
// see Coordinate), then restart the victim from its on-disk store at the
// agreed line. The survivors roll back through the same RB_* handlers a
// standalone ocsmld daemon uses — the cluster does not reach into their
// state directly, so the in-process cluster and a multi-OS-process
// deployment exercise one recovery code path. Returns the agreed line.
func (c *Cluster) Recover(victim int) (int, error) {
	if c.FS(victim) == nil {
		return -1, fmt.Errorf("transport: recovery of P%d needs a datadir", victim)
	}
	// Pause the GC loop for the whole recovery: a sweep racing the
	// reload below could collect records the restart is about to read.
	c.setRecovering(true)
	defer c.setRecovering(false)
	// Reopen the store exactly as a fresh OS process would — Open clears
	// crash debris and rebuilds a corrupt manifest — before voting with
	// its manifest in the line intersection.
	fs, err := fsstore.OpenWith(c.cfg.Datadir, victim, c.cfg.N, c.cfg.FSOptions)
	if err != nil {
		return -1, err
	}
	fs.SetMetrics(fsstore.NewStoreMetrics(c.Metrics, victim))
	c.setFS(victim, fs)
	ln, err := net.Listen("tcp", c.addrs[victim])
	if err != nil {
		return -1, err
	}
	dec, err := Coordinate(CoordinatorConfig{
		ID: victim, Addrs: c.addrs, Seed: c.cfg.Seed,
		Seqs: fs.Manifest().Seqs, Epoch: c.epoch,
		Hook: c.cfg.Hook, Count: c.count,
	}, ln)
	if err != nil {
		return -1, err
	}
	c.epoch = dec.Epoch
	c.count("recovery.recoveries", 1)
	if err := c.Restart(victim, dec.Line); err != nil {
		return dec.Line, err
	}
	return dec.Line, nil
}

// Restart brings a killed process back from its on-disk store: the
// listener rebinds the original address, the checkpoint store is
// reloaded up to the recovery line, and the protocol resumes from it.
// Recover calls it after the wire handshake has rolled the survivors
// back to the same line and advanced the cluster epoch.
func (c *Cluster) Restart(i, line int) error {
	if c.FS(i) == nil {
		return fmt.Errorf("transport: restart of P%d needs a datadir", i)
	}
	// Reopen the store, exactly as a fresh OS process would: Open clears
	// crash debris (torn temp files, orphan segments, torn batch tails)
	// and rebuilds a corrupt manifest, so a restart exercises the same
	// recovery path as a real daemon.
	fs, err := fsstore.OpenWith(c.cfg.Datadir, i, c.cfg.N, c.cfg.FSOptions)
	if err != nil {
		return err
	}
	fs.SetMetrics(fsstore.NewStoreMetrics(c.Metrics, i))
	c.setFS(i, fs)
	if err := fs.TruncateAfter(line); err != nil {
		return err
	}
	// Rebuild the in-memory view of P_i's durable checkpoints.
	c.Ckpts.Proc(i).TruncateAfter(-1)
	man := fs.Manifest()
	sort.Ints(man.Seqs)
	var rec checkpoint.Record
	for _, seq := range man.Seqs {
		r, err := fs.Load(seq)
		if err != nil {
			return err
		}
		c.Ckpts.Proc(i).Add(r)
		if seq == line {
			rec = r
		}
	}
	if rec.Seq != line && line > 0 {
		return fmt.Errorf("transport: P%d has no durable checkpoint at line %d", i, line)
	}
	ln, err := net.Listen("tcp", c.addrs[i])
	if err != nil {
		return err
	}
	c.clearDone(i)
	n, err := c.buildNode(i, ln, line, &rec)
	if err != nil {
		ln.Close()
		return err
	}
	c.mu.Lock()
	c.nodes[i] = n
	c.mu.Unlock()
	n.Start()
	c.count("recovery.restarts", 1)
	return nil
}

// Counter reads one free-form counter from the registry's events family.
func (c *Cluster) Counter(name string) int64 {
	v, _ := c.Metrics.Value(metrics.EventFamily, name)
	return v
}

// Counters returns a snapshot of the free-form counter table.
func (c *Cluster) Counters() map[string]int64 {
	return c.Metrics.EventCounts()
}

func (c *Cluster) nodeDone(id int) {
	c.mu.Lock()
	c.done[id] = true
	c.mu.Unlock()
	select {
	case c.doneCh <- struct{}{}:
	default:
	}
}

func (c *Cluster) allDone() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.done {
		if !d {
			return false
		}
	}
	return true
}

func (c *Cluster) clearDone(i int) {
	c.mu.Lock()
	c.done[i] = false
	c.mu.Unlock()
}

// CheckGlobals verifies every complete global checkpoint against the
// recorded trace (same check as the simulator's Result.CheckAllGlobals)
// and returns the verified sequence numbers.
func (c *Cluster) CheckGlobals() ([]int, error) {
	var seqs []int
	for _, seq := range c.Ckpts.CompleteSeqs() {
		if seq == 0 {
			continue
		}
		cut, ok := c.Rec.CutAt(c.cfg.N, trace.KFinalize, seq)
		if !ok {
			return seqs, fmt.Errorf("transport: no complete cut for seq %d", seq)
		}
		rep := c.Rec.CheckCut(cut)
		if !rep.Consistent() {
			return seqs, fmt.Errorf("transport: S_%d inconsistent: %d orphan(s)", seq, len(rep.Orphans))
		}
		seqs = append(seqs, seq)
	}
	return seqs, nil
}

// Report summarizes a cluster run with the simulator's headline metrics
// plus the wire-level ones only a real network can produce.
type Report struct {
	N                 int
	Completed         bool
	Makespan          time.Duration
	GlobalCheckpoints int
	ConsistentSeqs    []int

	AppMessages     int64
	ControlMessages int64
	PiggybackBytes  int64
	// PiggybackBytesPerMsg is the real per-message piggyback overhead in
	// encoded bytes (discriminator + csn + stat + tentSet bitmap).
	PiggybackBytesPerMsg float64

	FramesSent int64
	FrameBytes int64
	Reconnects int64
	Dropped    int64

	LogBytes int64
	Counters map[string]int64
}

// Report builds the run summary (call after Run or Stop).
func (c *Cluster) Report() (*Report, error) {
	seqs, err := c.CheckGlobals()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	makespan := c.makespan
	c.mu.Unlock()
	r := &Report{
		N:              c.cfg.N,
		Completed:      c.allDone(),
		Makespan:       makespan,
		ConsistentSeqs: seqs,
		Counters:       c.Counters(),
	}
	for _, s := range seqs {
		if s > 0 {
			r.GlobalCheckpoints++
		}
	}
	r.AppMessages = r.Counters["app_msgs"]
	for name, v := range r.Counters {
		if strings.HasPrefix(name, "ctl.") {
			r.ControlMessages += v
		}
	}
	r.PiggybackBytes = r.Counters["wire.piggyback_bytes"]
	if r.AppMessages > 0 {
		r.PiggybackBytesPerMsg = float64(r.PiggybackBytes) / float64(r.AppMessages)
	}
	for _, n := range c.Nodes() {
		st := n.Mesh().Stats()
		r.FramesSent += st.FramesSent
		r.FrameBytes += st.BytesSent
		r.Reconnects += st.Reconnects
		r.Dropped += st.Dropped
	}
	for p := 0; p < c.cfg.N; p++ {
		for _, rec := range c.Ckpts.Proc(p).All() {
			r.LogBytes += rec.LogBytes()
		}
	}
	return r, nil
}
