// Package admin is the operator control plane of a running OCSML
// deployment: a small HTTP server that cmd/ocsmld embeds next to its
// transport nodes. It answers status, manifest and recovery queries,
// triggers tentative checkpoint rounds, and exposes the shared
// metrics.Registry in the Prometheus text format at /metrics.
//
// The server never reaches into protocol state directly — every read
// goes through Node.StatusSnapshot (a closure posted onto the node's
// event loop) and every durable read through fsstore.ReadManifest (the
// open-free path that cannot disturb a live datadir). It is therefore
// safe to run against nodes in the middle of checkpoint rounds,
// rollbacks and restarts.
//
// Endpoints:
//
//	GET  /v1/status      per-node protocol snapshots + peer liveness
//	GET  /v1/manifest    durable manifests and the complete global seqs
//	GET  /v1/recovery    last committed line, fence epoch, replay counters
//	POST /v1/checkpoint  trigger a tentative checkpoint round
//	GET  /v1/healthz     liveness (the server itself is up)
//	GET  /v1/readyz      readiness (every local node answers a snapshot)
//	GET  /metrics        Prometheus text exposition of the registry
package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"ocsml/internal/fsstore"
	"ocsml/internal/metrics"
	"ocsml/internal/transport"
)

// Config parameterizes the control-plane server.
type Config struct {
	// Nodes returns the locally hosted transport nodes, called per
	// request so a node replaced by Restart is observed. A daemon hosts
	// one; a spawn-all cluster hosts all N.
	Nodes func() []*transport.Node
	// Registry is the shared metric registry served at /metrics.
	Registry *metrics.Registry
	// Datadir is the stable-storage root ("" disables /v1/manifest's
	// durable sections).
	Datadir string
	// N is the cluster size (manifest intersection spans all N procs,
	// not just the locally hosted ones).
	N int
	// StatusTimeout bounds each per-node snapshot or trigger (default
	// 2s). A node whose loop cannot answer within it is reported as an
	// error, not waited on.
	StatusTimeout time.Duration
	// ShutdownTimeout bounds the graceful drain in Close before
	// in-flight requests are cut off (default 2s).
	ShutdownTimeout time.Duration
}

// Server is the embedded control-plane HTTP server.
type Server struct {
	cfg Config
	srv *http.Server
	ln  net.Listener

	requests  *metrics.CounterVec
	writeErrs *metrics.Counter
}

// NewServer builds the server and registers its own metric series on
// the shared registry. Nothing listens until Start.
func NewServer(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	if cfg.StatusTimeout <= 0 {
		cfg.StatusTimeout = 2 * time.Second
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 2 * time.Second
	}
	if cfg.Nodes == nil {
		cfg.Nodes = func() []*transport.Node { return nil }
	}
	s := &Server{
		cfg: cfg,
		requests: cfg.Registry.MustCounterVec("ocsml_admin_requests_total",
			"Admin API requests served, by endpoint path.", "path"),
		writeErrs: cfg.Registry.MustCounter("ocsml_admin_response_errors_total",
			"Admin API responses whose body write failed (client gone)."),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/manifest", s.handleManifest)
	mux.HandleFunc("/v1/recovery", s.handleRecovery)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.srv = &http.Server{
		Handler: mux,
		// A peer that opens a connection and never sends a request must
		// not pin a handler goroutine across shutdown.
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// Start binds addr (":0" picks a free port — tests use it) and serves
// in the background until Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin: %w", err)
	}
	s.ln = ln
	go func() {
		// ErrServerClosed is the normal Close path; anything else has
		// already surfaced to a client as a failed request.
		//ocsml:errsink Serve's error after Close is the expected ErrServerClosed
		s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address (useful after ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close drains in-flight requests for up to ShutdownTimeout, then cuts
// stragglers off. It is safe to call before Start (a no-op) and leaves
// no goroutines behind — the leak checker of every test binary that
// embeds a Server holds it to that.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// statusResponse is GET /v1/status: one entry per locally hosted node.
type statusResponse struct {
	Nodes []nodeEntry `json:"nodes"`
}

// nodeEntry wraps a snapshot with the per-node error slot (a wedged or
// closing node yields an error entry, not a failed response — the
// operator still sees the healthy nodes).
type nodeEntry struct {
	Status *transport.NodeStatus `json:"status,omitempty"`
	Error  string                `json:"error,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.requests.With("/v1/status").Inc()
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, http.MethodGet)
		return
	}
	var resp statusResponse
	for _, n := range s.cfg.Nodes() {
		st, err := n.StatusSnapshot(s.cfg.StatusTimeout)
		if err != nil {
			resp.Nodes = append(resp.Nodes, nodeEntry{Error: err.Error()})
			continue
		}
		resp.Nodes = append(resp.Nodes, nodeEntry{Status: &st})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// manifestResponse is GET /v1/manifest: the durable truth of the
// datadir — what each process has finalized to disk and which global
// checkpoints S_k are complete across all N manifests.
type manifestResponse struct {
	Datadir string `json:"datadir"`
	N       int    `json:"n"`
	// Manifests has one entry per process, 0..N-1 (read-only, safe
	// against live writers).
	Manifests []fsstore.Manifest `json:"manifests"`
	// CompleteSeqs are the seqs present in every manifest, ascending.
	CompleteSeqs []int `json:"completeSeqs"`
	// LastComplete is the newest complete seq, -1 if none.
	LastComplete int `json:"lastComplete"`
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	s.requests.With("/v1/manifest").Inc()
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, http.MethodGet)
		return
	}
	if s.cfg.Datadir == "" {
		s.writeError(w, http.StatusNotFound, "no datadir configured; durable manifests unavailable")
		return
	}
	resp := manifestResponse{Datadir: s.cfg.Datadir, N: s.cfg.N, LastComplete: -1}
	groups := make([][]int, 0, s.cfg.N)
	for p := 0; p < s.cfg.N; p++ {
		m, err := fsstore.ReadManifest(s.cfg.Datadir, p)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp.Manifests = append(resp.Manifests, m)
		groups = append(groups, m.Seqs)
	}
	resp.CompleteSeqs = fsstore.Intersect(groups)
	if len(resp.CompleteSeqs) > 0 {
		resp.LastComplete = resp.CompleteSeqs[len(resp.CompleteSeqs)-1]
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// recoveryResponse is GET /v1/recovery: where the last recovery round
// left the locally hosted nodes, plus the registry's recovery.* event
// counters.
type recoveryResponse struct {
	// Line is the highest committed rollback/resume line any local node
	// has executed (-1: none this incarnation).
	Line int `json:"line"`
	// Epoch is the highest fence epoch among the local nodes; frames
	// from older epochs are dropped on arrival.
	Epoch int `json:"epoch"`
	// Counters are the free-form "recovery.*" events (rollbacks,
	// replayed_msgs, dup_dropped, ...) accumulated since start.
	Counters map[string]int64 `json:"counters"`
}

func (s *Server) handleRecovery(w http.ResponseWriter, r *http.Request) {
	s.requests.With("/v1/recovery").Inc()
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, http.MethodGet)
		return
	}
	resp := recoveryResponse{Line: -1, Counters: map[string]int64{}}
	for _, n := range s.cfg.Nodes() {
		st, err := n.StatusSnapshot(s.cfg.StatusTimeout)
		if err != nil {
			continue
		}
		if st.RecoveredLine > resp.Line {
			resp.Line = st.RecoveredLine
		}
		if st.Epoch > resp.Epoch {
			resp.Epoch = st.Epoch
		}
	}
	if s.cfg.Registry != nil {
		for name, v := range s.cfg.Registry.EventCounts() {
			if strings.HasPrefix(name, "recovery.") {
				resp.Counters[name] = v
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// checkpointResponse is POST /v1/checkpoint: the post-trigger csn of
// each local node. A node already in a tentative round ignores the
// trigger (paper §3.4) and reports its unchanged csn.
type checkpointResponse struct {
	Triggered []checkpointEntry `json:"triggered"`
}

type checkpointEntry struct {
	ID    int    `json:"id"`
	Csn   int    `json:"csn"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	s.requests.With("/v1/checkpoint").Inc()
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, http.MethodPost)
		return
	}
	nodes := s.cfg.Nodes()
	if len(nodes) == 0 {
		s.writeError(w, http.StatusServiceUnavailable, "no local nodes")
		return
	}
	var resp checkpointResponse
	failed := 0
	for _, n := range nodes {
		st, serr := n.StatusSnapshot(s.cfg.StatusTimeout)
		id := -1
		if serr == nil {
			id = st.ID
		}
		csn, err := n.TriggerCheckpoint(s.cfg.StatusTimeout)
		if err != nil {
			failed++
			resp.Triggered = append(resp.Triggered, checkpointEntry{ID: id, Csn: -1, Error: err.Error()})
			continue
		}
		resp.Triggered = append(resp.Triggered, checkpointEntry{ID: id, Csn: csn})
	}
	code := http.StatusOK
	if failed == len(nodes) {
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.With("/v1/healthz").Inc()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//ocsml:errsink client gone mid-response; nothing to durably undo
	if _, err := w.Write([]byte("ok\n")); err != nil {
		s.writeErrs.Inc()
	}
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.requests.With("/v1/readyz").Inc()
	for _, n := range s.cfg.Nodes() {
		if _, err := n.StatusSnapshot(s.cfg.StatusTimeout); err != nil {
			s.writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//ocsml:errsink client gone mid-response; nothing to durably undo
	if _, err := w.Write([]byte("ready\n")); err != nil {
		s.writeErrs.Inc()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.With("/metrics").Inc()
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	//ocsml:errsink scrape aborted by the client; the next scrape re-reads everything
	if err := s.cfg.Registry.WritePrometheus(w); err != nil {
		s.writeErrs.Inc()
	}
}

// writeJSON writes a JSON response; an encode or write failure means
// the client is gone, which the write-error counter records.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//ocsml:errsink client gone mid-response; nothing to durably undo
	if err := enc.Encode(v); err != nil {
		s.writeErrs.Inc()
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	s.writeError(w, http.StatusMethodNotAllowed, "method not allowed; use "+allow)
}
