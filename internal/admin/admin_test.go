package admin

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/transport"
	"ocsml/internal/workload"
)

// testCluster stands up a 4-process TCP cluster whose checkpoint
// interval is effectively infinite — the only rounds are the ones the
// admin API triggers — plus an admin server on a free port. The
// workload is long enough to keep messages flowing for the duration of
// any test here.
func testCluster(t *testing.T, datadir string) (*transport.Cluster, *Server) {
	t.Helper()
	c, err := transport.NewCluster(transport.ClusterConfig{
		N:       4,
		Seed:    11,
		Datadir: datadir,
		Opt: core.Options{
			Interval: des.Duration(time.Hour), // admin-triggered rounds only
			Timeout:  60 * des.Duration(time.Millisecond),
			SkipREQ:  true,
		},
		Reliable: true,
		Workload: workload.Config{
			Pattern:  workload.UniformRandom,
			Steps:    1 << 30, // never finishes; the test stops the cluster
			Think:    2 * des.Duration(time.Millisecond),
			MsgBytes: 256,
		},
		WriteBandwidth: 64 << 20,
		Timeout:        time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Config{
		Nodes:    c.Nodes,
		Registry: c.Metrics,
		Datadir:  datadir,
		N:        4,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() {
		// The control plane drains before the mesh closes — same order
		// as the daemon's shutdown path.
		if err := srv.Close(); err != nil {
			t.Errorf("admin close: %v", err)
		}
		c.Stop()
	})
	return c, srv
}

func get(t *testing.T, srv *Server, path string) (int, []byte) {
	t.Helper()
	return do(t, srv, http.MethodGet, path)
}

func do(t *testing.T, srv *Server, method, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, "http://"+srv.Addr()+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: reading body: %v", method, path, err)
	}
	return resp.StatusCode, body
}

// TestControlPlane is the end-to-end pass over every endpoint against a
// live cluster: health, readiness, status, a triggered checkpoint round
// observed through to durable finalization, the manifest view of it,
// recovery state, and the Prometheus exposition.
func TestControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	dir := t.TempDir()
	_, srv := testCluster(t, dir)

	if code, body := get(t, srv, "/v1/healthz"); code != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz: code %d body %q", code, body)
	}
	if code, _ := get(t, srv, "/v1/readyz"); code != http.StatusOK {
		t.Fatalf("readyz: code %d", code)
	}

	// Status: all 4 nodes answer, each seeing 3 peers.
	var st statusResponse
	code, body := get(t, srv, "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status: code %d body %s", code, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status: %v\n%s", err, body)
	}
	if len(st.Nodes) != 4 {
		t.Fatalf("status: %d nodes, want 4", len(st.Nodes))
	}
	for i, e := range st.Nodes {
		if e.Error != "" {
			t.Fatalf("status: node %d error %q", i, e.Error)
		}
		if e.Status.N != 4 || e.Status.Proto == "" {
			t.Fatalf("status: node %d malformed: %+v", i, e.Status)
		}
		if len(e.Status.Peers) != 3 {
			t.Fatalf("status: node %d has %d peers, want 3", i, len(e.Status.Peers))
		}
	}

	// Trigger a round and watch it to durable finalization: with the
	// hour-long interval, any progress of DurableSeq is attributable to
	// this POST alone.
	code, body = do(t, srv, http.MethodPost, "/v1/checkpoint")
	if code != http.StatusOK {
		t.Fatalf("checkpoint: code %d body %s", code, body)
	}
	var ck checkpointResponse
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatalf("checkpoint: %v\n%s", err, body)
	}
	if len(ck.Triggered) != 4 {
		t.Fatalf("checkpoint: %d entries, want 4", len(ck.Triggered))
	}
	advanced := false
	for _, e := range ck.Triggered {
		if e.Error != "" {
			t.Fatalf("checkpoint: node %d error %q", e.ID, e.Error)
		}
		if e.Csn >= 1 {
			advanced = true
		}
	}
	if !advanced {
		t.Fatalf("checkpoint: no node advanced its csn: %+v", ck.Triggered)
	}
	waitLastComplete(t, srv, 1, 15*time.Second)

	// Manifest agrees with what the status round produced.
	var man manifestResponse
	code, body = get(t, srv, "/v1/manifest")
	if code != http.StatusOK {
		t.Fatalf("manifest: code %d body %s", code, body)
	}
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatalf("manifest: %v\n%s", err, body)
	}
	if man.N != 4 || len(man.Manifests) != 4 {
		t.Fatalf("manifest: malformed: %+v", man)
	}
	if man.LastComplete < 1 {
		t.Fatalf("manifest: lastComplete = %d, want >= 1", man.LastComplete)
	}

	// Recovery: no rollbacks have happened, so the line is -1 and the
	// counters carry no rollback events.
	var rc recoveryResponse
	code, body = get(t, srv, "/v1/recovery")
	if code != http.StatusOK {
		t.Fatalf("recovery: code %d body %s", code, body)
	}
	if err := json.Unmarshal(body, &rc); err != nil {
		t.Fatalf("recovery: %v\n%s", err, body)
	}
	if rc.Line != -1 {
		t.Fatalf("recovery: line = %d, want -1 (no rollback happened)", rc.Line)
	}
	if rc.Counters["recovery.rollbacks"] != 0 {
		t.Fatalf("recovery: unexpected rollbacks: %v", rc.Counters)
	}

	checkMetricsExposition(t, srv)
}

// waitLastComplete polls /v1/manifest until every process has seq
// durable (the triggered round finalized cluster-wide).
func waitLastComplete(t *testing.T, srv *Server, seq int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout) //ocsml:wallclock test poll deadline
	for {
		_, body := get(t, srv, "/v1/manifest")
		var man manifestResponse
		if err := json.Unmarshal(body, &man); err == nil && man.LastComplete >= seq {
			return
		}
		if time.Now().After(deadline) { //ocsml:wallclock test poll deadline
			t.Fatalf("triggered round did not reach durable seq %d within %v (last body: %s)", seq, timeout, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// checkMetricsExposition asserts the /metrics scrape carries series
// registered by at least four packages (transport, core, fsstore,
// admin, engine-free here) and at least ten distinct families.
func checkMetricsExposition(t *testing.T, srv *Server) {
	t.Helper()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	text := string(body)
	families := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families[strings.Fields(line)[2]] = true
		}
	}
	if len(families) < 10 {
		t.Fatalf("metrics: %d families, want >= 10:\n%s", len(families), text)
	}
	// One representative family per registering package.
	for _, want := range []string{
		"ocsml_wire_app_frames_total",   // internal/transport
		"ocsml_ckpt_finalized_total",    // internal/core
		"ocsml_fsstore_finalized_total", // internal/fsstore
		"ocsml_admin_requests_total",    // internal/admin
		"ocsml_events_total",            // free-form counter namespace
		"ocsml_wire_piggyback_bytes_total",
		"ocsml_node_storage_queue",
	} {
		if !families[want] {
			t.Fatalf("metrics: missing family %s; have %v", want, families)
		}
	}
	// The triggered round must be visible in the protocol series.
	if !strings.Contains(text, `ocsml_ckpt_finalized_total{proc="0"}`) {
		t.Fatalf("metrics: no finalization series for proc 0:\n%s", text)
	}
}

// TestMethodNotAllowed covers the write-path guards: checkpoint rejects
// GET, the read endpoints reject POST.
func TestMethodNotAllowed(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time cluster test")
	}
	_, srv := testCluster(t, t.TempDir())
	cases := []struct{ method, path string }{
		{http.MethodGet, "/v1/checkpoint"},
		{http.MethodPost, "/v1/status"},
		{http.MethodPost, "/v1/manifest"},
		{http.MethodPost, "/v1/recovery"},
		{http.MethodPost, "/metrics"},
	}
	for _, c := range cases {
		if code, _ := do(t, srv, c.method, c.path); code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: code %d, want 405", c.method, c.path, code)
		}
	}
}

// TestManifestWithoutDatadir: a diskless deployment answers 404, not a
// crash or an empty 200.
func TestManifestWithoutDatadir(t *testing.T) {
	srv := NewServer(Config{N: 2})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, srv, "/v1/manifest"); code != http.StatusNotFound {
		t.Fatalf("manifest without datadir: code %d, want 404", code)
	}
}

// TestCloseBeforeStart: Close on a never-started server is a no-op.
func TestCloseBeforeStart(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.Close(); err != nil {
		t.Fatalf("close before start: %v", err)
	}
}

// TestCheckpointWithoutNodes: a server with no local nodes refuses the
// trigger with 503 so an operator script fails loudly.
func TestCheckpointWithoutNodes(t *testing.T) {
	srv := NewServer(Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := do(t, srv, http.MethodPost, "/v1/checkpoint")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint without nodes: code %d body %s", code, body)
	}
}
