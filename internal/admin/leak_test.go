package admin

import (
	"testing"

	"ocsml/internal/leakcheck"
)

// TestMain fails the binary if any goroutine survives the tests: the
// admin server's Close must reap its Serve goroutine and every handler,
// and the clusters the tests stand up must tear down cleanly.
func TestMain(m *testing.M) { leakcheck.Main(m) }
