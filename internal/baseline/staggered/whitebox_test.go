package staggered

import (
	"testing"

	"ocsml/internal/protocol"
	"ocsml/internal/protocol/protocoltest"
)

func mount(id, n int) (*Protocol, *protocoltest.FakeEnv) {
	p := New(Options{})
	env := protocoltest.New(id, n)
	env.Proto = p
	p.Start(env)
	env.Sent = nil
	return p, env
}

func cm(src int, tag string, round int) *protocol.Envelope {
	return &protocol.Envelope{
		ID: 88, Src: src, Kind: protocol.KindCtl, CtlTag: tag,
		Payload: ctl{round: round},
	}
}

func TestMarkCutThenTokenWrite(t *testing.T) {
	p, env := mount(1, 3)
	p.OnDeliver(cm(0, tagMark, 1))
	if !p.recording {
		t.Fatal("first mark should start recording")
	}
	p.OnDeliver(cm(2, tagMark, 1))
	if p.recording {
		t.Fatal("cut should be complete")
	}
	if _, ok := env.Store.Get(1); !ok {
		t.Fatal("record missing after cut")
	}
	// No physical write yet — it waits for the token.
	if p.written {
		t.Fatal("write must wait for the token")
	}
	p.OnDeliver(cm(0, tagToken, 1))
	if !p.written {
		t.Fatal("token should trigger the physical write")
	}
	// Synchronous fake write: the token moves to P2.
	last := env.Sent[len(env.Sent)-1]
	if last.CtlTag != tagToken || last.Dst != 2 {
		t.Fatalf("token should pass to P2: %+v", last)
	}
	rec, _ := env.Store.Get(1)
	if rec.StableAt == 0 {
		t.Fatal("record should be stable after write + cut")
	}
}

func TestLastProcessReturnsTokenToCoordinator(t *testing.T) {
	p, env := mount(2, 3) // highest id
	p.OnDeliver(cm(0, tagMark, 1))
	p.OnDeliver(cm(1, tagMark, 1))
	p.OnDeliver(cm(1, tagToken, 1))
	last := env.Sent[len(env.Sent)-1]
	if last.CtlTag != tagToken || last.Dst != 0 {
		t.Fatalf("token should return to P0: %+v", last)
	}
}

func TestWrongRoundTokenPanics(t *testing.T) {
	p, _ := mount(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("token for a foreign round should panic")
		}
	}()
	p.OnDeliver(cm(0, tagToken, 5))
}

func TestDuplicateMarkPanics(t *testing.T) {
	p, _ := mount(1, 3)
	p.OnDeliver(cm(0, tagMark, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate mark should panic")
		}
	}()
	p.OnDeliver(cm(0, tagMark, 1))
}
