// Package staggered implements a Vaidya-style staggered consistent
// checkpointing baseline [Vaidya 1999; Plank 1993], the closest prior
// work the paper discusses (§4): the consistent cut is established
// Chandy–Lamport style, but the *physical* stable-storage writes are
// serialized by a write token so no two processes ever write
// concurrently.
//
// Round structure (coordinator P0, period Interval):
//
//  1. P0 records its state in memory (logical checkpoint, the cut point)
//     and broadcasts ST_MARK; every process records in memory on first
//     mark; channel states are collected as in Chandy–Lamport.
//  2. Physical phase: P0 writes its in-memory snapshot to stable storage,
//     then passes ST_TOKEN to P1, which writes and passes it on; when the
//     token returns to P0 the round is committed.
//
// This trades the write burst for (a) an O(N · writeTime) serial tail
// before the global checkpoint is durable and (b) holding the in-memory
// snapshot longer — precisely the trade-offs the paper's own algorithm
// avoids by decoupling write times from the cut entirely.
package staggered

import (
	"fmt"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
)

// Options configures the baseline.
type Options struct {
	// Interval is the coordinator's round period.
	Interval des.Duration
}

// DefaultOptions returns a 30s period.
func DefaultOptions() Options { return Options{Interval: 30 * des.Second} }

// Factory builds protocol instances.
func Factory(opt Options) func(i, n int) protocol.Protocol {
	return func(i, n int) protocol.Protocol { return New(opt) }
}

// Control tags.
const (
	tagMark  = "ST_MARK"
	tagToken = "ST_TOKEN"
)

type ctl struct {
	round int
}

// Protocol is one process's staggered-checkpointing state machine.
//
//ocsml:nopiggyback round-token coordination over control messages only; app messages carry no index
type Protocol struct {
	env protocol.Env
	opt Options

	round      int
	recording  bool // between state record and last channel marker
	markerFrom []bool
	markersIn  int
	chanState  []checkpoint.LoggedMsg
	snap       protocol.Snapshot
	snapAt     des.Time
	written    bool     // physical write issued for current round
	writeEnd   des.Time // completion time of the physical write (0 = pending)
	complete   bool     // coordinator: write token returned, round over
}

// New returns a fresh instance.
func New(opt Options) *Protocol {
	if opt.Interval <= 0 {
		opt.Interval = 30 * des.Second
	}
	return &Protocol{opt: opt}
}

var _ protocol.Protocol = (*Protocol)(nil)

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "staggered" }

// Start implements protocol.Protocol.
func (p *Protocol) Start(env protocol.Env) {
	p.env = env
	p.markerFrom = make([]bool, env.N())
	env.Checkpoints().Add(checkpoint.Record{
		Tentative: checkpoint.Tentative{Proc: env.ID(), Seq: 0},
		StableAt:  1,
	})
	if env.ID() == 0 {
		p.complete = true
		env.SetTimer(p.opt.Interval, protocol.TimerBasic, 0)
	}
}

// OnTimer implements protocol.Protocol. The coordinator starts a new
// round only when the write token from the previous round has returned —
// staggering serializes writes, so a too-short period skips rounds rather
// than overlapping them.
func (p *Protocol) OnTimer(kind, gen int) {
	if kind != protocol.TimerBasic || p.env.Draining() {
		return
	}
	if !p.recording && p.complete {
		p.complete = false
		p.beginRound(p.round + 1)
		// Coordinator starts the write chain immediately: its write is
		// first, then the token visits P1..PN-1.
		p.physicalWrite()
	} else {
		p.env.Count("round_skipped", 1)
	}
	p.env.SetTimer(p.opt.Interval, protocol.TimerBasic, 0)
}

// Finish implements protocol.Protocol.
func (p *Protocol) Finish() {}

func (p *Protocol) beginRound(round int) {
	if p.recording {
		panic(fmt.Sprintf("staggered: P%d round %d while %d active", p.env.ID(), round, p.round))
	}
	p.round = round
	p.recording = true
	p.markersIn = 0
	for i := range p.markerFrom {
		p.markerFrom[i] = false
	}
	p.chanState = nil
	p.written = false
	p.writeEnd = 0
	p.snap = p.env.Snapshot()
	p.snapAt = p.env.Now()
	p.env.Note(trace.KCheckpoint, round)
	p.env.Count("checkpoints", 1)
	p.env.Broadcast(&protocol.Envelope{
		Kind: protocol.KindCtl, CtlTag: tagMark, Bytes: 8,
		Payload: ctl{round: round},
	})
}

// physicalWrite flushes the in-memory snapshot; on completion the token
// moves to the next process.
func (p *Protocol) physicalWrite() {
	if p.written {
		panic(fmt.Sprintf("staggered: P%d double write in round %d", p.env.ID(), p.round))
	}
	p.written = true
	round := p.round
	id := p.env.ID()
	p.env.WriteStable("ckpt", p.snap.Bytes, func(start, end des.Time) {
		// The cut (record) may complete before or after this write; the
		// later of the two marks stability via writeEnd.
		p.writeEnd = end
		if !p.recording && p.round == round {
			p.env.Checkpoints().MarkStable(round, end)
		}
		// Forward the write token so the next process's physical write
		// starts only now — writes never overlap. The last process
		// returns the token to the coordinator, closing the round.
		next := id + 1
		if next == p.env.N() {
			next = 0
		}
		if next != id {
			p.env.Send(&protocol.Envelope{
				Dst: next, Kind: protocol.KindCtl, CtlTag: tagToken, Bytes: 8,
				Payload: ctl{round: round},
			})
		}
	})
}

// OnAppSend implements protocol.Protocol.
func (p *Protocol) OnAppSend(e *protocol.Envelope) {}

// OnDeliver implements protocol.Protocol.
func (p *Protocol) OnDeliver(e *protocol.Envelope) {
	if e.Kind == protocol.KindApp {
		if p.recording && !p.markerFrom[e.Src] {
			p.chanState = append(p.chanState, checkpoint.LoggedMsg{
				ID: e.ID, Src: e.Src, Dst: e.Dst, Dir: checkpoint.Received,
				SentAt: e.SentAt, LoggedAt: p.env.Now(),
				Bytes: e.App.Bytes, Tag: e.App.Tag, AppSeq: e.App.Seq,
			})
		}
		p.env.DeliverApp(e, nil, nil)
		return
	}
	m := e.Payload.(ctl)
	switch e.CtlTag {
	case tagMark:
		p.onMark(e.Src, m.round)
	case tagToken:
		if m.round != p.round {
			panic(fmt.Sprintf("staggered: P%d token round %d at %d", p.env.ID(), m.round, p.round))
		}
		if p.env.ID() == 0 {
			p.complete = true // token returned: round over
		} else {
			p.physicalWrite()
		}
	default:
		panic(fmt.Sprintf("staggered: unknown control tag %q", e.CtlTag))
	}
}

func (p *Protocol) onMark(src, round int) {
	switch {
	case round == p.round && p.recording:
		if p.markerFrom[src] {
			panic("staggered: duplicate mark")
		}
		p.markerFrom[src] = true
		p.markersIn++
		if p.markersIn == p.env.N()-1 {
			p.completeCut()
		}
	case round == p.round+1:
		p.beginRound(round)
		p.markerFrom[src] = true
		p.markersIn++
		if p.markersIn == p.env.N()-1 {
			p.completeCut()
		}
	default:
		panic(fmt.Sprintf("staggered: P%d mark round %d at round %d", p.env.ID(), round, p.round))
	}
}

// completeCut finishes the logical checkpoint (all channels recorded).
func (p *Protocol) completeCut() {
	p.recording = false
	rec := checkpoint.Record{
		Tentative: checkpoint.Tentative{
			Proc: p.env.ID(), Seq: p.round, TakenAt: p.snapAt,
			StateBytes: p.snap.Bytes, Fold: p.snap.Fold, Work: p.snap.Work,
		},
		Log:         p.chanState,
		FinalizedAt: p.env.Now(),
		CFEFold:     p.snap.Fold,
	}
	p.chanState = nil
	p.env.Checkpoints().Add(rec)
	if p.writeEnd > 0 {
		p.env.Checkpoints().MarkStable(p.round, p.writeEnd)
	}
}
