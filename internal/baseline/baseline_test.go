package baseline_test

// Behavioural tests for all baseline protocols: every coordinated
// baseline must emit only consistent global checkpoints; each must also
// exhibit the characteristic cost the paper attributes to its class
// (write bursts for Chandy–Lamport, blocking for Koo–Toueg, serialized
// writes for staggered, forced checkpoints for CIC, inconsistent cuts for
// uncoordinated).

import (
	"fmt"
	"testing"

	"ocsml/internal/baseline/bcs"
	"ocsml/internal/baseline/chandylamport"
	"ocsml/internal/baseline/kootoueg"
	"ocsml/internal/baseline/nop"
	"ocsml/internal/baseline/staggered"
	"ocsml/internal/baseline/uncoord"
	"ocsml/internal/des"
	"ocsml/internal/engine"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

func run(t *testing.T, n int, seed int64, fifo bool, pf engine.ProtoFactory, steps int64) *engine.Result {
	t.Helper()
	cfg := engine.DefaultConfig()
	cfg.N = n
	cfg.Seed = seed
	cfg.FIFO = fifo
	cfg.StateBytes = 4 << 20
	cfg.CopyCost = des.Millisecond
	cfg.Drain = 10 * des.Second
	wl := workload.Config{
		Pattern: workload.UniformRandom, Steps: steps,
		Think: 10 * des.Millisecond, MsgBytes: 2 << 10,
	}
	r := engine.New(cfg, pf, workload.Factory(wl)).Run()
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	return r
}

func TestCoordinatedBaselinesConsistent(t *testing.T) {
	cases := []struct {
		name string
		fifo bool
		pf   engine.ProtoFactory
	}{
		{"chandy-lamport", true, chandylamport.Factory(chandylamport.Options{Interval: des.Second, BlockingWrite: true})},
		{"koo-toueg", false, kootoueg.Factory(kootoueg.Options{Interval: des.Second})},
		{"staggered", true, staggered.Factory(staggered.Options{Interval: des.Second})},
		{"bcs-cic", false, bcs.Factory(bcs.Options{Interval: des.Second, BlockingForced: true})},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				r := run(t, 6, seed, tc.fifo, tc.pf, 400)
				seqs, err := r.CheckAllGlobals()
				if err != nil {
					t.Fatalf("consistency: %v", err)
				}
				if len(seqs) < 3 {
					t.Fatalf("too few global checkpoints: %v", seqs)
				}
			})
		}
	}
}

func TestChandyLamportWriteBurst(t *testing.T) {
	r := run(t, 8, 2, true,
		chandylamport.Factory(chandylamport.Options{Interval: des.Second, BlockingWrite: true}), 500)
	// All 8 processes write within one marker round-trip: the storage
	// queue must pile up.
	if r.Storage.PeakQueue() < 6 {
		t.Fatalf("PeakQueue = %d, expected a near-simultaneous burst", r.Storage.PeakQueue())
	}
	if r.Storage.MeanWait() == 0 {
		t.Fatal("expected queueing delay at storage")
	}
	// Channel state gets recorded under load.
	logBytes := r.TotalLogBytes()
	if logBytes == 0 {
		t.Log("no channel-state bytes recorded (quiet channels are possible but unusual)")
	}
}

func TestKooTouegBlocks(t *testing.T) {
	r := run(t, 6, 3, false, kootoueg.Factory(kootoueg.Options{Interval: des.Second}), 400)
	if r.StalledSeconds.Sum() == 0 {
		t.Fatal("Koo-Toueg must block application progress")
	}
	base := run(t, 6, 3, false, nop.Factory(), 400)
	if r.Makespan <= base.Makespan {
		t.Fatalf("blocking protocol should inflate makespan: %v vs %v", r.Makespan, base.Makespan)
	}
	// Two-phase control traffic: REQ+COMMIT broadcast + ACKs per round.
	rounds := r.Counter("ctl.KT_REQ") / int64(5)
	if rounds < 2 {
		t.Fatalf("expected several rounds, got %d REQ messages", r.Counter("ctl.KT_REQ"))
	}
	if r.Counter("ctl.KT_ACK") != r.Counter("ctl.KT_REQ") {
		t.Fatalf("ACKs %d != REQs %d", r.Counter("ctl.KT_ACK"), r.Counter("ctl.KT_REQ"))
	}
}

func TestStaggeredSerializesWrites(t *testing.T) {
	r := run(t, 8, 4, true, staggered.Factory(staggered.Options{Interval: 2 * des.Second}), 400)
	if got := r.Storage.PeakQueue(); got != 1 {
		t.Fatalf("PeakQueue = %d, staggered writes must never overlap", got)
	}
	if r.Storage.MeanWait() != 0 {
		t.Fatalf("MeanWait = %v, staggered writes must never queue", r.Storage.MeanWait())
	}
	if _, err := r.CheckAllGlobals(); err != nil {
		t.Fatal(err)
	}
}

func TestBCSForcedCheckpoints(t *testing.T) {
	r := run(t, 6, 5, false, bcs.Factory(bcs.Options{Interval: des.Second, BlockingForced: true}), 400)
	if r.Counter("forced") == 0 {
		t.Fatal("uniform traffic must induce forced checkpoints")
	}
	if got := r.Trace.CountKind(trace.KForced); got == 0 {
		t.Fatal("forced checkpoints must be traced")
	}
	// The response-time penalty: message latency above the nop baseline
	// because forced checkpoints precede processing.
	base := run(t, 6, 5, false, nop.Factory(), 400)
	if r.AppLatency.Mean() <= base.AppLatency.Mean() {
		t.Fatalf("CIC latency %v should exceed baseline %v",
			r.AppLatency.Mean(), base.AppLatency.Mean())
	}
}

func TestBCSAliasesKeepSeqsGapFree(t *testing.T) {
	r := run(t, 6, 6, false, bcs.Factory(bcs.Options{Interval: des.Second}), 300)
	for p := 0; p < 6; p++ {
		recs := r.Ckpts.Proc(p).All()
		for i, rec := range recs {
			if rec.Seq != i {
				t.Fatalf("P%d seq gap at %d", p, i)
			}
		}
	}
	if r.Counter("alias") == 0 {
		t.Log("no index jumps occurred (unusual under uniform traffic)")
	}
}

func TestUncoordinatedCutsAreInconsistent(t *testing.T) {
	r := run(t, 6, 7, false, uncoord.Factory(uncoord.Options{Interval: des.Second}), 600)
	if r.CtlMsgs != 0 {
		t.Fatal("uncoordinated checkpointing sends no control messages")
	}
	// Same-sequence-number cuts are NOT coordinated; under dense
	// uniform traffic at least one must be inconsistent — this is the
	// domino-effect setup the recovery analysis quantifies.
	inconsistent := 0
	checked := 0
	for _, seq := range r.Ckpts.CompleteSeqs() {
		if seq == 0 {
			continue
		}
		cut, ok := r.Trace.CutAt(6, trace.KCheckpoint, seq)
		if !ok {
			continue
		}
		checked++
		if rep := r.Trace.CheckCut(cut); !rep.Consistent() {
			inconsistent++
		}
	}
	if checked == 0 {
		t.Fatal("no complete same-seq cuts to check")
	}
	if inconsistent == 0 {
		t.Fatalf("all %d uncoordinated cuts happened to be consistent (expected orphans)", checked)
	}
}

func TestBaselineNamesAndDefaults(t *testing.T) {
	if chandylamport.New(chandylamport.Options{}).Name() != "chandy-lamport" {
		t.Fatal("name")
	}
	if kootoueg.New(kootoueg.Options{}).Name() != "koo-toueg" {
		t.Fatal("name")
	}
	if staggered.New(staggered.Options{}).Name() != "staggered" {
		t.Fatal("name")
	}
	if bcs.New(bcs.Options{}).Name() != "bcs-cic" {
		t.Fatal("name")
	}
	if uncoord.New(uncoord.Options{}).Name() != "uncoordinated" {
		t.Fatal("name")
	}
	if chandylamport.DefaultOptions().Interval <= 0 ||
		kootoueg.DefaultOptions().Interval <= 0 ||
		staggered.DefaultOptions().Interval <= 0 ||
		bcs.DefaultOptions().Interval <= 0 ||
		uncoord.DefaultOptions().Interval <= 0 {
		t.Fatal("defaults")
	}
}
