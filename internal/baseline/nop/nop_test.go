package nop

import (
	"testing"

	"ocsml/internal/protocol"
	"ocsml/internal/protocol/protocoltest"
)

func TestNopIsTransparent(t *testing.T) {
	p := Factory()(0, 2)
	env := protocoltest.New(0, 2)
	env.Proto = p
	p.Start(env)
	if p.Name() != "none" {
		t.Fatalf("Name = %q", p.Name())
	}
	e := &protocol.Envelope{Src: 0, Dst: 1, Kind: protocol.KindApp, Bytes: 10}
	p.OnAppSend(e)
	if e.Payload != nil || e.Bytes != 10 {
		t.Fatal("nop must not touch envelopes")
	}
	p.OnDeliver(&protocol.Envelope{ID: 1, Src: 1, Dst: 0, Kind: protocol.KindApp})
	if env.Delivered != 1 {
		t.Fatal("app message not passed through")
	}
	p.OnDeliver(&protocol.Envelope{ID: 2, Src: 1, Dst: 0, Kind: protocol.KindCtl})
	if env.Delivered != 1 {
		t.Fatal("control message must not reach the app")
	}
	p.OnTimer(0, 0)
	p.Finish()
	if len(env.Sent) != 0 || env.Store.Len() != 0 {
		t.Fatal("nop produced output")
	}
}
