// Package nop implements the null checkpointing protocol: it never
// checkpoints and passes every message straight through. It is the
// baseline against which checkpointing overhead is measured (the
// "no-checkpointing" makespan).
package nop

import "ocsml/internal/protocol"

// Protocol is the null protocol.
//
//ocsml:nopiggyback null baseline: no checkpointing, nothing to piggyback
type Protocol struct {
	env protocol.Env
}

// Factory builds null protocol instances.
func Factory() func(i, n int) protocol.Protocol {
	return func(int, int) protocol.Protocol { return &Protocol{} }
}

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "none" }

// Start implements protocol.Protocol.
func (p *Protocol) Start(env protocol.Env) { p.env = env }

// OnAppSend implements protocol.Protocol.
func (p *Protocol) OnAppSend(e *protocol.Envelope) {}

// OnDeliver implements protocol.Protocol.
func (p *Protocol) OnDeliver(e *protocol.Envelope) {
	if e.IsApp() {
		p.env.DeliverApp(e, nil, nil)
	}
}

// OnTimer implements protocol.Protocol.
func (p *Protocol) OnTimer(kind, gen int) {}

// Finish implements protocol.Protocol.
func (p *Protocol) Finish() {}
