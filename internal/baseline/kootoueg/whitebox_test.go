package kootoueg

import (
	"testing"

	"ocsml/internal/protocol"
	"ocsml/internal/protocol/protocoltest"
)

func mount(id, n int) (*Protocol, *protocoltest.FakeEnv) {
	p := New(Options{})
	env := protocoltest.New(id, n)
	env.Proto = p
	p.Start(env)
	env.Sent = nil
	return p, env
}

func cm(src int, tag string, round int) *protocol.Envelope {
	return &protocol.Envelope{
		ID: 77, Src: src, Kind: protocol.KindCtl, CtlTag: tag,
		Payload: ctl{round: round},
	}
}

func TestTwoPhaseParticipant(t *testing.T) {
	p, env := mount(2, 3)
	p.OnDeliver(cm(0, tagReq, 1))
	if !p.blocked || p.round != 1 {
		t.Fatalf("blocked=%v round=%d", p.blocked, p.round)
	}
	if len(env.Sent) != 1 || env.Sent[0].CtlTag != tagAck || env.Sent[0].Dst != 0 {
		t.Fatalf("expected ACK to P0: %+v", env.Sent)
	}
	p.OnDeliver(cm(0, tagCommit, 1))
	if p.blocked {
		t.Fatal("commit (with synchronous write) should unblock")
	}
	if _, ok := env.Store.Get(1); !ok {
		t.Fatal("checkpoint 1 not stored")
	}
	// The participant reports completion to the coordinator.
	if env.Sent[len(env.Sent)-1].CtlTag != tagDone {
		t.Fatalf("expected DONE, got %+v", env.Sent)
	}
}

func TestWrongRoundREQPanics(t *testing.T) {
	p, _ := mount(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("REQ two rounds ahead should panic")
		}
	}()
	p.OnDeliver(cm(0, tagReq, 2))
}

func TestAckAtNonCoordinatorPanics(t *testing.T) {
	p, _ := mount(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("ACK at non-coordinator should panic")
		}
	}()
	p.OnDeliver(cm(1, tagAck, 0))
}

func TestDoneAtNonCoordinatorPanics(t *testing.T) {
	p, _ := mount(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("DONE at non-coordinator should panic")
		}
	}()
	p.OnDeliver(cm(1, tagDone, 0))
}

func TestCommitInWrongStatePanics(t *testing.T) {
	p, _ := mount(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("COMMIT while unblocked should panic")
		}
	}()
	p.OnDeliver(cm(0, tagCommit, 1))
}
