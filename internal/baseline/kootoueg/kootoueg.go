// Package kootoueg implements a Koo–Toueg-style synchronous (blocking)
// coordinated checkpointing baseline [Koo & Toueg 1987], the class the
// paper criticizes in §1: "Some or all processes may have to block their
// computations for checkpointing, which may degrade the system
// performance", and all stable-storage writes pile up concurrently.
//
// A coordinator (P0) runs a two-phase commit per round:
//
//	phase 1  KT_REQ → every process blocks its application, records a
//	         tentative state, and replies KT_ACK;
//	phase 2  KT_COMMIT → every process writes its state to stable
//	         storage (synchronously) and only then resumes.
//
// Simplification vs. the original: Koo–Toueg checkpoints only the
// processes in the initiator's dependency closure; under the evaluated
// all-to-all workloads the closure is (almost always) everyone, so this
// implementation always includes all processes. The blocking window and
// write burst — the properties compared in the experiments — are
// unaffected.
//
// The cut is consistent by construction: between recording its state and
// resuming, a process sends no application messages, so no message can be
// received inside the cut that was sent after its sender's cut.
package kootoueg

import (
	"fmt"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
)

// Options configures the baseline.
type Options struct {
	// Interval is the coordinator's checkpoint period.
	Interval des.Duration
}

// DefaultOptions returns a 30s period.
func DefaultOptions() Options { return Options{Interval: 30 * des.Second} }

// Factory builds protocol instances.
func Factory(opt Options) func(i, n int) protocol.Protocol {
	return func(i, n int) protocol.Protocol { return New(opt) }
}

// Control tags.
const (
	tagReq    = "KT_REQ"
	tagAck    = "KT_ACK"
	tagCommit = "KT_COMMIT"
	tagDone   = "KT_DONE"
)

type ctl struct {
	round int
}

// Protocol is one process's Koo–Toueg state machine.
//
//ocsml:nopiggyback two-phase coordination over control messages only; app messages carry no index
type Protocol struct {
	env protocol.Env
	opt Options

	round   int
	blocked bool
	snap    protocol.Snapshot
	snapAt  des.Time

	// Coordinator state.
	acks     int
	dones    int
	complete bool // previous round fully committed cluster-wide
}

// New returns a fresh instance.
func New(opt Options) *Protocol {
	if opt.Interval <= 0 {
		opt.Interval = 30 * des.Second
	}
	return &Protocol{opt: opt}
}

var _ protocol.Protocol = (*Protocol)(nil)

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "koo-toueg" }

// Start implements protocol.Protocol.
func (p *Protocol) Start(env protocol.Env) {
	p.env = env
	env.Checkpoints().Add(checkpoint.Record{
		Tentative: checkpoint.Tentative{Proc: env.ID(), Seq: 0},
		StableAt:  1,
	})
	if env.ID() == 0 {
		p.complete = true
		env.SetTimer(p.opt.Interval, protocol.TimerBasic, 0)
	}
}

// OnTimer implements protocol.Protocol. A new round starts only when the
// previous one has fully committed on every process (KT_DONE collected);
// otherwise the scheduled checkpoint is skipped — a blocking protocol
// cannot keep a too-short period.
func (p *Protocol) OnTimer(kind, gen int) {
	if kind != protocol.TimerBasic || p.env.Draining() {
		return
	}
	if !p.blocked && p.complete {
		p.beginRound()
	} else {
		p.env.Count("round_skipped", 1)
	}
	p.env.SetTimer(p.opt.Interval, protocol.TimerBasic, 0)
}

// Finish implements protocol.Protocol.
func (p *Protocol) Finish() {}

func (p *Protocol) beginRound() {
	p.acks = 0
	p.dones = 0
	p.complete = false
	p.takeTentative(p.round + 1)
	p.env.Broadcast(&protocol.Envelope{
		Kind: protocol.KindCtl, CtlTag: tagReq, Bytes: 8,
		Payload: ctl{round: p.round},
	})
}

// takeTentative blocks the application and records the state.
func (p *Protocol) takeTentative(round int) {
	if p.blocked {
		panic(fmt.Sprintf("kootoueg: P%d re-entering round %d (interval too short)", p.env.ID(), round))
	}
	p.round = round
	p.blocked = true
	p.env.StallApp() // phase-1 blocking starts
	p.snap = p.env.Snapshot()
	p.snapAt = p.env.Now()
	p.env.Note(trace.KCheckpoint, round)
	p.env.Count("checkpoints", 1)
}

// commit writes the tentative state to stable storage and resumes the
// application when the write completes (synchronous write).
func (p *Protocol) commit(round int) {
	if !p.blocked || p.round != round {
		panic(fmt.Sprintf("kootoueg: P%d commit for round %d in wrong state", p.env.ID(), round))
	}
	snap, snapAt := p.snap, p.snapAt
	store := p.env.Checkpoints()
	rec := checkpoint.Record{
		Tentative: checkpoint.Tentative{
			Proc: p.env.ID(), Seq: round, TakenAt: snapAt,
			StateBytes: snap.Bytes, Fold: snap.Fold, Work: snap.Work,
		},
		FinalizedAt: p.env.Now(),
		CFEFold:     snap.Fold,
	}
	store.Add(rec)
	p.env.WriteStable("ckpt", snap.Bytes, func(start, end des.Time) {
		store.MarkStable(round, end)
		p.blocked = false
		p.env.ResumeApp() // blocking ends only after the write lands
		if p.env.ID() == 0 {
			p.noteDone()
		} else {
			p.env.Send(&protocol.Envelope{
				Dst: 0, Kind: protocol.KindCtl, CtlTag: tagDone, Bytes: 8,
				Payload: ctl{round: round},
			})
		}
	})
}

// noteDone is coordinator bookkeeping: the round is over when all N
// commits (including its own) have landed on stable storage.
func (p *Protocol) noteDone() {
	p.dones++
	if p.dones == p.env.N() {
		p.complete = true
	}
}

// OnAppSend implements protocol.Protocol: no piggyback. (The application
// cannot send while blocked, so nothing else is needed.)
func (p *Protocol) OnAppSend(e *protocol.Envelope) {}

// OnDeliver implements protocol.Protocol.
func (p *Protocol) OnDeliver(e *protocol.Envelope) {
	if e.Kind == protocol.KindApp {
		p.env.DeliverApp(e, nil, nil)
		return
	}
	m := e.Payload.(ctl)
	switch e.CtlTag {
	case tagReq:
		if m.round != p.round+1 {
			panic(fmt.Sprintf("kootoueg: P%d REQ round %d at round %d", p.env.ID(), m.round, p.round))
		}
		p.takeTentative(m.round)
		p.env.Send(&protocol.Envelope{
			Dst: 0, Kind: protocol.KindCtl, CtlTag: tagAck, Bytes: 8,
			Payload: ctl{round: m.round},
		})
	case tagAck:
		if p.env.ID() != 0 || m.round != p.round {
			panic("kootoueg: unexpected ACK")
		}
		p.acks++
		if p.acks == p.env.N()-1 {
			p.env.Broadcast(&protocol.Envelope{
				Kind: protocol.KindCtl, CtlTag: tagCommit, Bytes: 8,
				Payload: ctl{round: m.round},
			})
			p.commit(m.round)
		}
	case tagCommit:
		p.commit(m.round)
	case tagDone:
		if p.env.ID() != 0 {
			panic("kootoueg: DONE at non-coordinator")
		}
		p.noteDone()
	default:
		panic(fmt.Sprintf("kootoueg: unknown control tag %q", e.CtlTag))
	}
}
