// Package bcs implements the Briatico–Ciuffoletti–Simoncini index-based
// communication-induced checkpointing (CIC) baseline — the
// quasi-synchronous class the paper belongs to and improves upon. Every
// process takes periodic basic checkpoints with an increasing index and
// piggybacks the index on every message; receiving a message with a higher
// index FORCES a checkpoint with that index BEFORE the message may be
// processed.
//
// Checkpoints with equal index form a consistent global checkpoint, but
// the costs are exactly the drawbacks the paper lists (§1):
//
//   - forced checkpoints delay message processing (the state must be
//     recorded — and conservatively flushed — before the receive);
//   - communication patterns can induce many extra checkpoints;
//   - many processes checkpoint at nearly the same time, contending for
//     storage.
//
// When a process's index jumps (a forced checkpoint skips indices), the
// single recorded state stands for every skipped index: alias records with
// zero additional storage are emitted so every S_k is complete.
package bcs

import (
	"fmt"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
)

// Options configures the baseline.
type Options struct {
	// Interval is the basic checkpoint period per process.
	Interval des.Duration
	// BlockingForced makes the forced checkpoint's storage write
	// synchronous (the conservative classical reading: the message is
	// processed only after the checkpoint is durable). When false, only
	// the in-memory state copy delays processing and the write is
	// asynchronous.
	BlockingForced bool
}

// DefaultOptions returns a 30s basic period with synchronous forced
// writes.
func DefaultOptions() Options {
	return Options{Interval: 30 * des.Second, BlockingForced: true}
}

// Factory builds protocol instances.
func Factory(opt Options) func(i, n int) protocol.Protocol {
	return func(i, n int) protocol.Protocol { return New(opt) }
}

// piggyback carries the sender's checkpoint index.
type piggyback struct {
	csn int
}

const piggyBytes = 4

// Protocol is one process's BCS state machine.
type Protocol struct {
	env protocol.Env
	opt Options
	csn int
}

// New returns a fresh instance.
func New(opt Options) *Protocol {
	if opt.Interval <= 0 {
		opt.Interval = 30 * des.Second
	}
	return &Protocol{opt: opt}
}

var _ protocol.Protocol = (*Protocol)(nil)

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "bcs-cic" }

// Start implements protocol.Protocol.
func (p *Protocol) Start(env protocol.Env) {
	p.env = env
	env.Checkpoints().Add(checkpoint.Record{
		Tentative: checkpoint.Tentative{Proc: env.ID(), Seq: 0},
		StableAt:  1,
	})
	first := p.opt.Interval + des.Duration(env.Rand().Int63n(int64(p.opt.Interval/20)+1))
	env.SetTimer(first, protocol.TimerBasic, 0)
}

// OnTimer implements protocol.Protocol: periodic basic checkpoints.
func (p *Protocol) OnTimer(kind, gen int) {
	if kind != protocol.TimerBasic || p.env.Draining() {
		return
	}
	p.takeCheckpoint(p.csn+1, trace.KCheckpoint, false)
	p.env.SetTimer(p.opt.Interval, protocol.TimerBasic, 0)
}

// Finish implements protocol.Protocol.
func (p *Protocol) Finish() {}

// takeCheckpoint records the state under index `to`, emitting alias
// records for any skipped indices. Forced checkpoints may block.
func (p *Protocol) takeCheckpoint(to int, kind trace.Kind, blocking bool) {
	if to <= p.csn {
		panic(fmt.Sprintf("bcs: P%d checkpoint index %d not above %d", p.env.ID(), to, p.csn))
	}
	snap := p.env.Snapshot()
	now := p.env.Now()
	store := p.env.Checkpoints()
	for seq := p.csn + 1; seq <= to; seq++ {
		rec := checkpoint.Record{
			Tentative: checkpoint.Tentative{
				Proc: p.env.ID(), Seq: seq, TakenAt: now,
				Fold: snap.Fold, Work: snap.Work,
			},
			FinalizedAt: now,
			CFEFold:     snap.Fold,
		}
		if seq == to {
			rec.StateBytes = snap.Bytes // aliases carry no extra bytes
		} else {
			p.env.Count("alias", 1)
		}
		store.Add(rec)
		p.env.Note(kind, seq)
	}
	p.csn = to
	p.env.Count("checkpoints", 1)
	if kind == trace.KForced {
		p.env.Count("forced", 1)
	}
	seq := to
	write := p.env.WriteStable
	if blocking {
		write = p.env.WriteStableBlocking
	}
	write("ckpt", snap.Bytes, func(start, end des.Time) {
		store.MarkStable(seq, end)
		// Aliased (skipped) indices share this write: mark them too.
		for s := seq - 1; s > 0; s-- {
			r, ok := store.Get(s)
			if !ok || r.StateBytes != 0 || r.StableAt > 0 {
				break
			}
			store.MarkStable(s, end)
		}
	})
}

// OnAppSend implements protocol.Protocol: piggyback the index.
func (p *Protocol) OnAppSend(e *protocol.Envelope) {
	e.Payload = piggyback{csn: p.csn}
	e.Bytes += piggyBytes
}

// OnDeliver implements protocol.Protocol: the CIC rule — force a
// checkpoint BEFORE processing any message carrying a higher index.
func (p *Protocol) OnDeliver(e *protocol.Envelope) {
	if e.Kind != protocol.KindApp {
		panic("bcs: unexpected control message")
	}
	pb := e.Payload.(piggyback)
	if pb.csn > p.csn {
		p.takeCheckpoint(pb.csn, trace.KForced, p.opt.BlockingForced)
	}
	p.env.DeliverApp(e, nil, nil)
}
