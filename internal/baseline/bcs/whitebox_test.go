package bcs

import (
	"testing"

	"ocsml/internal/protocol"
	"ocsml/internal/protocol/protocoltest"
)

func mount(id, n int) (*Protocol, *protocoltest.FakeEnv) {
	p := New(Options{})
	env := protocoltest.New(id, n)
	env.Proto = p
	p.Start(env)
	env.Sent = nil
	return p, env
}

func appMsg(src, csn int) *protocol.Envelope {
	return &protocol.Envelope{
		ID: 42, Src: src, Dst: 1, Kind: protocol.KindApp,
		App:     protocol.AppMsg{Bytes: 10, Seq: 1, Tag: 5},
		Payload: piggyback{csn: csn},
	}
}

func TestForcedCheckpointBeforeProcessing(t *testing.T) {
	p, env := mount(1, 3)
	p.OnDeliver(appMsg(0, 2))
	if p.csn != 2 {
		t.Fatalf("csn = %d, want forced to 2", p.csn)
	}
	if env.Counters["forced"] != 1 {
		t.Fatal("forced not counted")
	}
	// The skipped index 1 exists as an alias record.
	if env.Counters["alias"] != 1 {
		t.Fatal("alias not counted")
	}
	for _, seq := range []int{0, 1, 2} {
		if _, ok := env.Store.Get(seq); !ok {
			t.Fatalf("index %d missing (aliases must fill gaps)", seq)
		}
	}
	if env.Delivered != 1 {
		t.Fatal("message must still be processed")
	}
	// Alias records carry no storage bytes.
	r1, _ := env.Store.Get(1)
	r2, _ := env.Store.Get(2)
	if r1.StateBytes != 0 || r2.StateBytes == 0 {
		t.Fatalf("alias/real bytes wrong: %d %d", r1.StateBytes, r2.StateBytes)
	}
}

func TestEqualOrLowerIndexDoesNotForce(t *testing.T) {
	p, env := mount(1, 3)
	p.OnDeliver(appMsg(0, 0))
	if p.csn != 0 || env.Counters["forced"] != 0 {
		t.Fatalf("csn=%d forced=%d", p.csn, env.Counters["forced"])
	}
	if env.Delivered != 1 {
		t.Fatal("message must be processed")
	}
}

func TestPiggybackAttached(t *testing.T) {
	p, _ := mount(1, 3)
	p.csn = 3
	e := &protocol.Envelope{Src: 1, Dst: 2, Kind: protocol.KindApp, Bytes: 100}
	p.OnAppSend(e)
	pb, ok := e.Payload.(piggyback)
	if !ok || pb.csn != 3 {
		t.Fatalf("piggyback = %+v", e.Payload)
	}
	if e.Bytes != 100+piggyBytes {
		t.Fatalf("bytes = %d", e.Bytes)
	}
}

func TestNonIncreasingIndexPanics(t *testing.T) {
	p, _ := mount(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("checkpoint to same index should panic")
		}
	}()
	p.takeCheckpoint(0, 0, false)
}

func TestControlMessagePanics(t *testing.T) {
	p, _ := mount(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("BCS receives no control messages")
		}
	}()
	p.OnDeliver(&protocol.Envelope{Kind: protocol.KindCtl, CtlTag: "X"})
}
