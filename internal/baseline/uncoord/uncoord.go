// Package uncoord implements fully asynchronous (uncoordinated)
// checkpointing: every process checkpoints independently on its own timer
// with no piggybacking and no coordination whatsoever. It is the cheapest
// protocol during failure-free execution and the baseline that exhibits
// the domino effect during recovery (paper §1) — the recovery analysis in
// internal/recovery quantifies the rollback it causes.
package uncoord

import (
	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
)

// Options configures the baseline.
type Options struct {
	// Interval is the per-process checkpoint period; processes are
	// deliberately unsynchronized (full-interval random phase).
	Interval des.Duration
}

// DefaultOptions returns a 30s period.
func DefaultOptions() Options { return Options{Interval: 30 * des.Second} }

// Factory builds protocol instances.
func Factory(opt Options) func(i, n int) protocol.Protocol {
	return func(i, n int) protocol.Protocol { return New(opt) }
}

// Protocol is one process's uncoordinated checkpointer.
//
//ocsml:nopiggyback uncoordinated baseline: independent checkpoints, no inter-process metadata
type Protocol struct {
	env protocol.Env
	opt Options
	seq int
}

// New returns a fresh instance.
func New(opt Options) *Protocol {
	if opt.Interval <= 0 {
		opt.Interval = 30 * des.Second
	}
	return &Protocol{opt: opt}
}

var _ protocol.Protocol = (*Protocol)(nil)

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "uncoordinated" }

// Start implements protocol.Protocol.
func (p *Protocol) Start(env protocol.Env) {
	p.env = env
	env.Checkpoints().Add(checkpoint.Record{
		Tentative: checkpoint.Tentative{Proc: env.ID(), Seq: 0},
		StableAt:  1,
	})
	first := des.Duration(env.Rand().Int63n(int64(p.opt.Interval))) + p.opt.Interval/10
	env.SetTimer(first, protocol.TimerBasic, 0)
}

// OnTimer implements protocol.Protocol.
func (p *Protocol) OnTimer(kind, gen int) {
	if kind != protocol.TimerBasic || p.env.Draining() {
		return
	}
	p.seq++
	seq := p.seq
	snap := p.env.Snapshot()
	now := p.env.Now()
	store := p.env.Checkpoints()
	store.Add(checkpoint.Record{
		Tentative: checkpoint.Tentative{
			Proc: p.env.ID(), Seq: seq, TakenAt: now,
			StateBytes: snap.Bytes, Fold: snap.Fold, Work: snap.Work,
		},
		FinalizedAt: now,
		CFEFold:     snap.Fold,
	})
	p.env.Note(trace.KCheckpoint, seq)
	p.env.Count("checkpoints", 1)
	p.env.WriteStable("ckpt", snap.Bytes, func(start, end des.Time) {
		store.MarkStable(seq, end)
	})
	p.env.SetTimer(p.opt.Interval, protocol.TimerBasic, 0)
}

// Finish implements protocol.Protocol.
func (p *Protocol) Finish() {}

// Note: no Rollback — uncoordinated checkpoints do not form consistent
// same-sequence lines, so the engine's coordinated live recovery must not
// be used with this protocol (use the offline recovery.Domino analysis).

// OnAppSend implements protocol.Protocol: nothing is piggybacked.
func (p *Protocol) OnAppSend(e *protocol.Envelope) {}

// OnDeliver implements protocol.Protocol.
func (p *Protocol) OnDeliver(e *protocol.Envelope) {
	p.env.DeliverApp(e, nil, nil)
}
