package uncoord

import (
	"testing"

	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/protocol/protocoltest"
)

func TestIndependentCheckpoints(t *testing.T) {
	p := New(Options{Interval: des.Second})
	env := protocoltest.New(1, 3)
	env.Proto = p
	p.Start(env)

	// The first timer fires at a random phase; run two periods.
	env.Sim.RunUntil(3 * des.Second)
	if p.seq < 2 {
		t.Fatalf("seq = %d after 3s at 1s interval", p.seq)
	}
	if env.Store.MaxSeq() != p.seq {
		t.Fatalf("store max %d != seq %d", env.Store.MaxSeq(), p.seq)
	}
	// Every record became stable (synchronous fake writes).
	for seq := 1; seq <= p.seq; seq++ {
		r, ok := env.Store.Get(seq)
		if !ok || r.StableAt == 0 {
			t.Fatalf("seq %d missing or unstable", seq)
		}
	}
	if len(env.Sent) != 0 {
		t.Fatalf("uncoordinated protocol sent %d messages", len(env.Sent))
	}
}

func TestNoPiggybackAndPassThrough(t *testing.T) {
	p := New(Options{})
	env := protocoltest.New(1, 3)
	env.Proto = p
	p.Start(env)

	e := &protocol.Envelope{Src: 1, Dst: 2, Kind: protocol.KindApp, Bytes: 50}
	p.OnAppSend(e)
	if e.Payload != nil || e.Bytes != 50 {
		t.Fatalf("uncoordinated must not piggyback: %+v", e)
	}
	p.OnDeliver(&protocol.Envelope{ID: 1, Src: 0, Dst: 1, Kind: protocol.KindApp})
	if env.Delivered != 1 {
		t.Fatal("message not delivered")
	}
}
