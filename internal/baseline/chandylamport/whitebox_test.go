package chandylamport

import (
	"testing"

	"ocsml/internal/protocol"
	"ocsml/internal/protocol/protocoltest"
)

func mount(id, n int) (*Protocol, *protocoltest.FakeEnv) {
	p := New(Options{Interval: 0}) // constructor defaults the interval
	env := protocoltest.New(id, n)
	env.Proto = p
	p.Start(env)
	env.Sent = nil
	return p, env
}

func mark(src, round int) *protocol.Envelope {
	return &protocol.Envelope{
		ID: 777, Src: src, Kind: protocol.KindCtl, CtlTag: tagMarker,
		Payload: marker{round: round},
	}
}

func TestFirstMarkerRecordsAndFloods(t *testing.T) {
	p, env := mount(1, 3)
	p.OnDeliver(mark(0, 1))
	if !p.recording || p.round != 1 {
		t.Fatalf("recording=%v round=%d", p.recording, p.round)
	}
	markers := 0
	for _, e := range env.Sent {
		if e.CtlTag == tagMarker {
			markers++
		}
	}
	if markers != 2 {
		t.Fatalf("flooded %d markers, want 2", markers)
	}
	// Second (and last) channel's marker completes the round.
	p.OnDeliver(mark(2, 1))
	if p.recording {
		t.Fatal("round should be complete")
	}
	if _, ok := env.Store.Get(1); !ok {
		t.Fatal("checkpoint 1 not stored")
	}
}

func TestChannelStateCapturedBetweenRecordAndMarker(t *testing.T) {
	p, env := mount(1, 3)
	p.OnDeliver(mark(0, 1))
	// App message from P2 BEFORE P2's marker: channel state.
	p.OnDeliver(&protocol.Envelope{ID: 5, Src: 2, Dst: 1, Kind: protocol.KindApp,
		App: protocol.AppMsg{Bytes: 100, Seq: 1, Tag: 9}})
	// App message from P0 AFTER P0's marker: not recorded.
	p.OnDeliver(&protocol.Envelope{ID: 6, Src: 0, Dst: 1, Kind: protocol.KindApp,
		App: protocol.AppMsg{Bytes: 100, Seq: 2, Tag: 10}})
	p.OnDeliver(mark(2, 1))
	rec, _ := env.Store.Get(1)
	if len(rec.Log) != 1 || rec.Log[0].ID != 5 {
		t.Fatalf("channel state = %+v, want exactly msg 5", rec.Log)
	}
	if env.Delivered != 2 {
		t.Fatalf("both app messages must still be delivered: %d", env.Delivered)
	}
}

func TestDuplicateMarkerPanics(t *testing.T) {
	p, _ := mount(1, 3)
	p.OnDeliver(mark(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate marker should panic")
		}
	}()
	p.OnDeliver(mark(0, 1))
}

func TestStaleMarkerPanics(t *testing.T) {
	p, _ := mount(1, 3)
	p.OnDeliver(mark(0, 1))
	p.OnDeliver(mark(2, 1)) // round complete
	defer func() {
		if recover() == nil {
			t.Fatal("stale marker should panic")
		}
	}()
	p.OnDeliver(mark(0, 1))
}

func TestOverlappingRoundPanics(t *testing.T) {
	p, _ := mount(1, 3)
	p.OnDeliver(mark(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("marker two rounds ahead should panic")
		}
	}()
	p.OnDeliver(mark(2, 3))
}
