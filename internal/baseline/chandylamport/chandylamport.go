// Package chandylamport implements the Chandy–Lamport distributed
// snapshot algorithm [Chandy & Lamport 1985], the classical coordinated
// baseline the paper compares against (via Plank's and Vaidya's staggered
// variants, §4).
//
// A coordinator (P0) periodically initiates a snapshot round: it records
// its state, writes it to stable storage synchronously, and sends a marker
// on every outgoing channel. On the first marker of a round every other
// process does the same; messages that arrive on a channel after the local
// state was recorded but before that channel's marker form the recorded
// channel state (kept in the checkpoint's Log).
//
// Two properties make it the contention-heavy baseline: it requires FIFO
// channels, and every process's synchronous stable-storage write happens
// within one network round-trip of the initiation — N near-simultaneous
// writes queue up at the file server.
package chandylamport

import (
	"fmt"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/trace"
)

// Options configures the baseline.
type Options struct {
	// Interval is the coordinator's snapshot period.
	Interval des.Duration
	// BlockingWrite selects a synchronous stable-storage write at state
	// record time (the classical behaviour). When false the write is
	// asynchronous, isolating the pure contention effect from blocking.
	BlockingWrite bool
}

// DefaultOptions matches the classical algorithm.
func DefaultOptions() Options {
	return Options{Interval: 30 * des.Second, BlockingWrite: true}
}

// Factory builds protocol instances.
func Factory(opt Options) func(i, n int) protocol.Protocol {
	return func(i, n int) protocol.Protocol { return New(opt) }
}

const tagMarker = "marker"

// marker is the control payload: the snapshot round number.
type marker struct {
	round int
}

// Protocol is one process's Chandy–Lamport state machine.
//
//ocsml:nopiggyback marker-based coordination: consistency comes from FIFO channel markers, not per-message indices
type Protocol struct {
	env protocol.Env
	opt Options

	round      int  // highest round participated in
	recording  bool // state recorded, collecting channel states
	markerFrom []bool
	markersIn  int
	chanState  []checkpoint.LoggedMsg
	snapAt     des.Time
	snapFold   uint64
	snapWork   int64
	snapBytes  int64
	// Per-round stable-write completion times: at large N the storage
	// queue can stretch past the next round, so bookkeeping must not
	// live in per-instance fields.
	stateEnd map[int]des.Time
	chanEnd  map[int]des.Time
}

// New returns a fresh instance.
func New(opt Options) *Protocol {
	if opt.Interval <= 0 {
		opt.Interval = 30 * des.Second
	}
	return &Protocol{opt: opt}
}

var _ protocol.Protocol = (*Protocol)(nil)

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return "chandy-lamport" }

// Start implements protocol.Protocol.
func (p *Protocol) Start(env protocol.Env) {
	p.env = env
	p.markerFrom = make([]bool, env.N())
	p.stateEnd = map[int]des.Time{}
	p.chanEnd = map[int]des.Time{}
	env.Checkpoints().Add(checkpoint.Record{
		Tentative: checkpoint.Tentative{Proc: env.ID(), Seq: 0},
		StableAt:  1,
	})
	if env.ID() == 0 {
		env.SetTimer(p.opt.Interval, protocol.TimerBasic, 0)
	}
}

// OnTimer implements protocol.Protocol: the coordinator's periodic
// initiation.
func (p *Protocol) OnTimer(kind, gen int) {
	if kind != protocol.TimerBasic {
		return
	}
	if !p.env.Draining() {
		if !p.recording {
			p.beginRound(p.round + 1)
		} else {
			p.env.Count("round_skipped", 1)
		}
		p.env.SetTimer(p.opt.Interval, protocol.TimerBasic, 0)
	}
}

// Finish implements protocol.Protocol.
func (p *Protocol) Finish() {}

// beginRound records local state and floods markers.
func (p *Protocol) beginRound(round int) {
	if p.recording {
		panic(fmt.Sprintf("chandylamport: P%d starting round %d while round %d active (interval too short)",
			p.env.ID(), round, p.round))
	}
	p.round = round
	p.recording = true
	p.markersIn = 0
	for i := range p.markerFrom {
		p.markerFrom[i] = false
	}
	p.chanState = nil

	snap := p.env.Snapshot()
	p.snapAt, p.snapFold, p.snapWork, p.snapBytes = p.env.Now(), snap.Fold, snap.Work, snap.Bytes
	p.env.Note(trace.KCheckpoint, round)
	p.env.Count("checkpoints", 1)

	write := p.env.WriteStable
	if p.opt.BlockingWrite {
		write = p.env.WriteStableBlocking
	}
	seq := round
	write("ckpt", snap.Bytes, func(start, end des.Time) {
		p.stateEnd[seq] = end
		p.maybeStable(seq)
	})

	p.env.Broadcast(&protocol.Envelope{
		Kind: protocol.KindCtl, CtlTag: tagMarker,
		Bytes: 8, Payload: marker{round: round},
	})
}

// OnAppSend implements protocol.Protocol: Chandy–Lamport piggybacks
// nothing on application messages.
func (p *Protocol) OnAppSend(e *protocol.Envelope) {}

// OnDeliver implements protocol.Protocol.
func (p *Protocol) OnDeliver(e *protocol.Envelope) {
	if e.Kind == protocol.KindCtl {
		m := e.Payload.(marker)
		p.onMarker(e.Src, m.round)
		return
	}
	// Application message: if we are recording and the marker has not
	// yet arrived on this channel, the message is part of the channel
	// state.
	if p.recording && !p.markerFrom[e.Src] {
		p.chanState = append(p.chanState, checkpoint.LoggedMsg{
			ID: e.ID, Src: e.Src, Dst: e.Dst, Dir: checkpoint.Received,
			SentAt: e.SentAt, LoggedAt: p.env.Now(),
			Bytes: e.App.Bytes, Tag: e.App.Tag, AppSeq: e.App.Seq,
		})
	}
	p.env.DeliverApp(e, nil, nil)
}

// onMarker implements the marker rule.
func (p *Protocol) onMarker(src, round int) {
	switch {
	case round == p.round && p.recording:
		// Subsequent marker: close this channel.
		if p.markerFrom[src] {
			panic(fmt.Sprintf("chandylamport: duplicate marker from P%d", src))
		}
		p.markerFrom[src] = true
		p.markersIn++
		if p.markersIn == p.env.N()-1 {
			p.completeRound()
		}
	case round == p.round+1:
		// First marker of a new round: record state, flood markers,
		// and the sending channel is already closed.
		p.beginRound(round)
		p.markerFrom[src] = true
		p.markersIn++
		if p.markersIn == p.env.N()-1 {
			p.completeRound()
		}
	case round <= p.round && !p.recording:
		// Marker for a round we already completed (slow channel after
		// our completion is impossible under FIFO — each peer sends one
		// marker per round and we counted N-1). Defensive.
		panic(fmt.Sprintf("chandylamport: P%d stale marker round %d (at %d)", p.env.ID(), round, p.round))
	default:
		panic(fmt.Sprintf("chandylamport: P%d marker round %d while at round %d (recording=%v)",
			p.env.ID(), round, p.round, p.recording))
	}
}

// completeRound closes the snapshot: all channels are recorded.
func (p *Protocol) completeRound() {
	p.recording = false
	rec := checkpoint.Record{
		Tentative: checkpoint.Tentative{
			Proc: p.env.ID(), Seq: p.round, TakenAt: p.snapAt,
			StateBytes: p.snapBytes, Fold: p.snapFold, Work: p.snapWork,
		},
		Log:         p.chanState,
		FinalizedAt: p.env.Now(),
		CFEFold:     p.snapFold, // the cut point IS the state record
	}
	p.chanState = nil
	seq := p.round
	store := p.env.Checkpoints()
	var chanBytes int64
	for i := range rec.Log {
		chanBytes += rec.Log[i].Bytes
	}
	store.Add(rec)
	// The channel state is appended to the checkpoint on stable storage;
	// the checkpoint is stable when both writes have landed.
	p.env.WriteStable("chanstate", chanBytes, func(start, end des.Time) {
		p.chanEnd[seq] = end
		p.maybeStable(seq)
	})
}

// maybeStable marks seq stable once both its state and channel-state
// writes have completed AND the round's record exists.
func (p *Protocol) maybeStable(seq int) {
	se, ok1 := p.stateEnd[seq]
	ce, ok2 := p.chanEnd[seq]
	if !ok1 || !ok2 {
		return
	}
	if ce > se {
		se = ce
	}
	p.env.Checkpoints().MarkStable(seq, se)
	delete(p.stateEnd, seq)
	delete(p.chanEnd, seq)
}
