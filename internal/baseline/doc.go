// Package baseline groups the checkpointing algorithms the paper compares
// against (and the null protocol): one subpackage per algorithm.
//
//	nop            no checkpointing (overhead baseline)
//	chandylamport  coordinated snapshot, FIFO channels, write burst
//	kootoueg       synchronous two-phase blocking checkpointing
//	staggered      Vaidya/Plank-style staggered consistent checkpointing
//	bcs            index-based communication-induced checkpointing (CIC)
//	uncoord        fully asynchronous checkpointing (domino-prone)
//
// The cross-baseline behavioural tests live in this package.
package baseline
