// Package protomodel statically lifts the protocol implementations into
// explicit transition systems and cross-checks the core OCSML one
// against the executable model in internal/protomodel.
//
// Extraction composes facts the other analyzers already prove instead
// of re-deriving them, so the extracted model and the enforced
// invariants can never disagree:
//
//   - states and declared transitions come from the //ocsml:state
//     tables the statemachine analyzer validates (statemachine.Tables);
//   - the guarded state-field writes — which handler paths perform
//     which transition, and from which proven from-states — come from
//     the same forward analysis (statemachine.TransitionWrites) joined
//     against the whole-program callgraph's reachability from each
//     protocol.Protocol handler;
//   - piggyback attach/consume obligations come from piggybackcomplete
//     (piggybackcomplete.Facts);
//   - the remaining protocol-state mutations (csn, tentSet, logSet and
//     their baseline equivalents) are collected syntactically: every
//     assignment, increment, or method call that targets a field of the
//     implementation struct inside a handler-reachable function.
//
// The conformance analyzer (analyzer.go) then checks that the model
// extracted from internal/core matches the transition system the
// bounded explorer (internal/protomodel) implements — same states, same
// edges, finalize and join transitions reachable from OnDeliver, the
// piggyback attached and consumed. Editing the implementation out from
// under the model (or vice versa) is a vet failure, not a silent drift.
package protomodel

import (
	"go/ast"
	"go/types"
	"sort"

	"ocsml/internal/analysis/piggybackcomplete"
	"ocsml/internal/analysis/statemachine"
	"ocsml/internal/analysis/vetkit"
)

// A Transition is one declared edge of the implementation's state
// machine; From is "*" for any-state.
type Transition struct{ From, To string }

// A StateWrite is one guarded write to the state field, reachable from
// a handler.
type StateWrite struct {
	Fn       string // function containing the write
	From     []string
	To       string
	Declared bool
}

// A HandlerModel summarizes what one protocol handler (and everything
// it can statically reach) does to protocol state.
type HandlerModel struct {
	Name        string // Start, OnAppSend, OnDeliver, OnTimer, Finish, Rollback
	StateWrites []StateWrite
	// FieldWrites are the implementation-struct fields the handler may
	// mutate (assignment, ++/--, or a method call on the field), sorted
	// and de-duplicated. The state field itself is excluded — its
	// writes appear in StateWrites with full guard information.
	FieldWrites []string
}

// A Model is the extracted transition system of one protocol
// implementation.
type Model struct {
	Impl        string          `json:"Impl"` // package-qualified type name, e.g. "core.Protocol"
	Obj         *types.TypeName `json:"-"`    // the defining object (position, package)
	StateField  string          // annotated status field, "" when the type has none
	States      []string
	Transitions []Transition
	Handlers    []HandlerModel
	// Piggyback facts (piggybackcomplete).
	NoPiggyback   bool
	Attaches      bool
	ConsumesFirst bool
}

// handlerNames are the protocol entry points, in report order: the
// protocol.Protocol interface plus the Rewinder rollback hook.
var handlerNames = []string{"Start", "OnAppSend", "OnDeliver", "OnTimer", "Finish", "Rollback"}

// Extract builds the model of every protocol.Protocol implementation
// in the program, sorted by qualified type name.
func Extract(program *vetkit.Program) []Model {
	impls := piggybackcomplete.Facts(program)
	if len(impls) == 0 {
		return nil
	}
	tables := statemachine.Tables(program)
	writes := statemachine.TransitionWrites(program)
	cg := program.CallGraph()

	var out []Model
	for _, impl := range impls {
		// The protocol.Protocol interface trivially implements itself;
		// only concrete implementations have a transition system.
		if _, ok := impl.Impl.Type().Underlying().(*types.Interface); ok {
			continue
		}
		m := Model{
			Impl:          qualName(impl.Impl),
			Obj:           impl.Impl,
			NoPiggyback:   impl.NoPiggyback,
			Attaches:      impl.Attaches,
			ConsumesFirst: impl.ConsumesFirst,
		}
		fields := structFields(impl.Impl)

		// The implementation's state table: a declared table whose
		// field exists on the struct with the table's type.
		var tbl *statemachine.TableInfo
		for i := range tables {
			t := &tables[i]
			if f, ok := fields[t.Field]; ok && types.Identical(f.Type(), t.Type.Type()) {
				tbl = t
				break
			}
		}
		if tbl != nil {
			m.StateField = tbl.Field
			m.States = append([]string(nil), tbl.States...)
			for _, e := range tbl.Edges {
				m.Transitions = append(m.Transitions, Transition{e.From, e.To})
			}
		}

		for _, hname := range handlerNames {
			hfn := methodNamed(cg, impl.Impl, hname)
			if hfn == nil {
				continue
			}
			reach := reachable(cg, hfn)
			h := HandlerModel{Name: hname}
			if tbl != nil {
				for _, w := range writes {
					if w.Table.Type == tbl.Type && w.Table.Field == tbl.Field && reach[w.Fn] {
						h.StateWrites = append(h.StateWrites, StateWrite{
							Fn: w.Fn.Name(), From: w.From, To: w.To, Declared: w.Declared,
						})
					}
				}
			}
			h.FieldWrites = fieldWrites(cg, reach, fields, m.StateField)
			m.Handlers = append(m.Handlers, h)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Impl < out[j].Impl })
	return out
}

// qualName renders pkgname.TypeName.
func qualName(tn *types.TypeName) string {
	if tn.Pkg() != nil {
		return tn.Pkg().Name() + "." + tn.Name()
	}
	return tn.Name()
}

// structFields maps field name to var for the implementation struct.
func structFields(tn *types.TypeName) map[string]*types.Var {
	out := map[string]*types.Var{}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return out
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		out[f.Name()] = f
	}
	return out
}

// methodNamed finds the callgraph node of impl's method with the given
// name (pointer or value receiver).
func methodNamed(cg *vetkit.CallGraph, impl *types.TypeName, name string) *vetkit.FuncNode {
	for _, n := range cg.Funcs() {
		if n.Obj.Name() != name {
			continue
		}
		sig, ok := n.Obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == impl {
			return n
		}
	}
	return nil
}

// reachable is the static call closure from fn (closure call sites
// included), keyed by function object.
func reachable(cg *vetkit.CallGraph, fn *vetkit.FuncNode) map[*types.Func]bool {
	seen := map[*types.Func]bool{fn.Obj: true}
	work := []*vetkit.FuncNode{fn}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, site := range n.Calls {
			if site.Callee == nil || seen[site.Callee.Obj] {
				continue
			}
			seen[site.Callee.Obj] = true
			if site.Callee.Decl != nil {
				work = append(work, site.Callee)
			}
		}
	}
	return seen
}

// fieldWrites collects which implementation-struct fields the reachable
// functions may mutate: assignments, inc/dec statements, and method
// calls on the field (ProcSet.Add and friends mutate in place).
func fieldWrites(cg *vetkit.CallGraph, reach map[*types.Func]bool, fields map[string]*types.Var, stateField string) []string {
	found := map[string]bool{}
	for _, n := range cg.Funcs() {
		if !reach[n.Obj] || n.Decl.Body == nil {
			continue
		}
		info := n.Pkg.Info
		mark := func(expr ast.Expr) {
			sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
			if !ok {
				return
			}
			v, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok || !v.IsField() {
				return
			}
			if f, ok := fields[v.Name()]; ok && f == v && v.Name() != stateField {
				found[v.Name()] = true
			}
		}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(x.X)
			case *ast.CallExpr:
				// p.field.Method(...) — in-place mutators like
				// ProcSet.Add/Clear/UnionWith.
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					mark(sel.X)
				}
			}
			return true
		})
	}
	out := make([]string, 0, len(found))
	for f := range found {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Handler returns the named handler's model, nil when absent.
func (m *Model) Handler(name string) *HandlerModel {
	for i := range m.Handlers {
		if m.Handlers[i].Name == name {
			return &m.Handlers[i]
		}
	}
	return nil
}

// HasTransition reports whether the handler can reach a declared write
// from->to of the state field.
func (h *HandlerModel) HasTransition(from, to string) bool {
	for _, w := range h.StateWrites {
		if w.To != to || !w.Declared {
			continue
		}
		for _, f := range w.From {
			if f == from {
				return true
			}
		}
	}
	return false
}
