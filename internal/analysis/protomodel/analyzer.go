package protomodel

import (
	"fmt"
	"go/token"
	"go/types"

	"ocsml/internal/analysis/vetkit"
	model "ocsml/internal/protomodel"
)

// Analyzer is the model-conformance analysis: the transition system
// extracted from the core OCSML implementation must match the one the
// bounded explorer (internal/protomodel) checks the paper's theorems
// against.
var Analyzer = &vetkit.Analyzer{
	Name: "protomodel",
	Doc:  "the core protocol implementation matches the executable model the bounded checker explores",
	Run:  run,
}

var cache = map[*vetkit.Program][]Model{}

// models memoizes Extract per program.
func models(program *vetkit.Program) []Model {
	if ms, ok := cache[program]; ok {
		return ms
	}
	ms := Extract(program)
	cache[program] = ms
	return ms
}

func run(pass *vetkit.Pass) error {
	ms := models(pass.Program)

	// Advisory: a piggyback-carrying implementation without an
	// //ocsml:state table has a checkpoint lifecycle the statemachine
	// analyzer cannot check and the extractor cannot lift into a model.
	// Reported from the defining package at warning severity; accepted
	// cases live in the checked-in ocsmlvet baseline.
	for i := range ms {
		m := &ms[i]
		if m.Obj == nil || m.Obj.Pkg() == nil || m.Obj.Pkg().Path() != pass.Pkg.Path() {
			continue
		}
		if !m.NoPiggyback && m.StateField == "" {
			pass.Report(vetkit.Diagnostic{
				Pos:      m.Obj.Pos(),
				Severity: vetkit.SevWarning,
				Message:  fmt.Sprintf("%s attaches a piggyback but has no //ocsml:state table: its checkpoint lifecycle is invisible to the statemachine analyzer and the model extractor", m.Impl),
			})
		}
	}

	// Conformance is reported from the core package only: the claim is
	// about internal/core, and one pass owning the report keeps it
	// deduped.
	if !vetkit.PathHasSuffix(pass.Pkg.Path(), "internal/core") {
		return nil
	}
	var core *Model
	for i := range ms {
		if ms[i].Impl == "core.Protocol" {
			core = &ms[i]
			break
		}
	}
	if core == nil {
		return nil // fixture tree without the core implementation
	}
	pos := implPos(pass, "Protocol")
	report := func(format string, args ...any) {
		pass.Reportf(pos, "implementation diverges from the executable model (internal/protomodel): %s — review both and re-run make model-check", fmt.Sprintf(format, args...))
	}

	wantStates, wantEdges := model.Shape()
	if !equalStrings(core.States, wantStates) {
		report("state set %v, model checks %v", core.States, wantStates)
	}
	var gotEdges [][2]string
	for _, t := range core.Transitions {
		gotEdges = append(gotEdges, [2]string{t.From, t.To})
	}
	if !equalEdges(gotEdges, wantEdges) {
		report("declared transitions %v, model implements %v", gotEdges, wantEdges)
	}

	// The Figure-3 receive path must be able to finalize
	// (Tentative->Normal, the pre-rule and case 2b) and to join a new
	// initiation (Normal->Tentative, case 4b) — the two moves the
	// explorer's deliver action performs.
	if od := core.Handler("OnDeliver"); od == nil {
		report("no OnDeliver handler found")
	} else {
		if !od.HasTransition("Tentative", "Normal") {
			report("OnDeliver cannot reach a declared Tentative->Normal (finalize) write")
		}
		if !od.HasTransition("Normal", "Tentative") {
			report("OnDeliver cannot reach a declared Normal->Tentative (takeTentative) write")
		}
	}
	for _, h := range core.Handlers {
		for _, w := range h.StateWrites {
			if !w.Declared {
				report("%s reaches an undeclared state write in %s (%v -> %s)", h.Name, w.Fn, w.From, w.To)
			}
		}
	}

	// The model's piggyback is total: attached on every send, examined
	// before the store is touched on every delivery.
	if core.NoPiggyback {
		report("core implementation is marked //ocsml:nopiggyback but the model piggybacks every message")
	}
	if !core.Attaches {
		report("OnAppSend is not proven to attach the piggyback on every path; the model attaches unconditionally")
	}
	if !core.ConsumesFirst {
		report("OnDeliver is not proven to consume the piggyback before mutating checkpoint state; the model's receive rules dispatch on it")
	}
	return nil
}

// implPos finds the declaration position of the named type in the pass
// package.
func implPos(pass *vetkit.Pass, name string) token.Pos {
	if obj, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName); ok {
		return obj.Pos()
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Pos()
	}
	return token.NoPos
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalEdges(a, b [][2]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
