package protomodel

import (
	"testing"

	"ocsml/internal/analysis/vetkit"
	model "ocsml/internal/protomodel"
)

// loadModels extracts the protocol models of the whole module, exactly
// the way cmd/ocsmlvet does.
func loadModels(t *testing.T) []Model {
	t.Helper()
	loader, modPath, err := vetkit.ModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand(modPath, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if _, err := loader.LoadPackage(p); err != nil {
			t.Fatal(err)
		}
	}
	return Extract(vetkit.NewProgram(loader.Packages))
}

// TestExtractGolden pins the extracted transition system of every
// in-tree protocol.Protocol implementation: the annotated state field,
// state and declared-transition counts, and the piggyback facts. A new
// implementation (or a semantic change to an existing one) must update
// this table consciously.
func TestExtractGolden(t *testing.T) {
	models := loadModels(t)

	want := map[string]struct {
		field         string
		states, edges int
		noPiggyback   bool
		attaches      bool
		consumesFirst bool
	}{
		"core.Protocol":          {field: "stat", states: 2, edges: 3, attaches: true, consumesFirst: true},
		"reliable.Protocol":      {attaches: true, consumesFirst: true},
		"bcs.Protocol":           {attaches: true, consumesFirst: true},
		"chandylamport.Protocol": {noPiggyback: true, consumesFirst: true},
		"kootoueg.Protocol":      {noPiggyback: true, consumesFirst: true},
		"nop.Protocol":           {noPiggyback: true, consumesFirst: true},
		"staggered.Protocol":     {noPiggyback: true, consumesFirst: true},
		"uncoord.Protocol":       {noPiggyback: true, consumesFirst: true},
	}
	if len(models) != len(want) {
		var got []string
		for _, m := range models {
			got = append(got, m.Impl)
		}
		t.Fatalf("extracted %d models %v, want %d", len(models), got, len(want))
	}
	for _, m := range models {
		w, ok := want[m.Impl]
		if !ok {
			t.Errorf("unexpected implementation %s", m.Impl)
			continue
		}
		if m.StateField != w.field {
			t.Errorf("%s: state field %q, want %q", m.Impl, m.StateField, w.field)
		}
		if len(m.States) != w.states || len(m.Transitions) != w.edges {
			t.Errorf("%s: %d states / %d transitions, want %d / %d",
				m.Impl, len(m.States), len(m.Transitions), w.states, w.edges)
		}
		if m.NoPiggyback != w.noPiggyback || m.Attaches != w.attaches || m.ConsumesFirst != w.consumesFirst {
			t.Errorf("%s: piggyback facts nopb=%v att=%v cons=%v, want nopb=%v att=%v cons=%v",
				m.Impl, m.NoPiggyback, m.Attaches, m.ConsumesFirst,
				w.noPiggyback, w.attaches, w.consumesFirst)
		}
	}
}

// TestExtractCoreDetail checks the load-bearing structure of the core
// model: the exact shape the executable model declares, the finalize
// and join transitions on the deliver path, the rollback edge, and that
// every reachable state write is declared in the //ocsml:state table.
func TestExtractCoreDetail(t *testing.T) {
	var core *Model
	for _, m := range loadModels(t) {
		if m.Impl == "core.Protocol" {
			c := m
			core = &c
			break
		}
	}
	if core == nil {
		t.Fatal("core.Protocol not extracted")
	}

	wantStates, wantEdges := model.Shape()
	if len(core.States) != len(wantStates) {
		t.Fatalf("states %v, model shape %v", core.States, wantStates)
	}
	for i, s := range wantStates {
		if core.States[i] != s {
			t.Errorf("state %d = %q, want %q", i, core.States[i], s)
		}
	}
	for i, e := range wantEdges {
		if tr := core.Transitions[i]; tr.From != e[0] || tr.To != e[1] {
			t.Errorf("transition %d = %v, want %v", i, tr, e)
		}
	}

	od := core.Handler("OnDeliver")
	if od == nil {
		t.Fatal("no OnDeliver handler model")
	}
	if !od.HasTransition("Tentative", "Normal") {
		t.Error("OnDeliver cannot finalize (Tentative->Normal)")
	}
	if !od.HasTransition("Normal", "Tentative") {
		t.Error("OnDeliver cannot join an initiation (Normal->Tentative)")
	}
	rb := core.Handler("Rollback")
	if rb == nil {
		t.Fatal("no Rollback handler model")
	}
	if !rb.HasTransition("Normal", "Normal") || !rb.HasTransition("Tentative", "Normal") {
		t.Error("Rollback cannot reach the *->Normal recovery write")
	}
	for _, h := range core.Handlers {
		for _, w := range h.StateWrites {
			if !w.Declared {
				t.Errorf("%s reaches undeclared state write in %s: %v -> %s", h.Name, w.Fn, w.From, w.To)
			}
		}
		switch h.Name {
		case "OnDeliver", "OnTimer":
			if len(h.StateWrites) == 0 {
				t.Errorf("%s reaches no state writes; extraction lost the callgraph closure", h.Name)
			}
		}
	}

	// The deliver path must touch the selective log and the tentative
	// set — the fields the replay and consistency proofs range over.
	fields := map[string]bool{}
	for _, f := range od.FieldWrites {
		fields[f] = true
	}
	for _, f := range []string{"csn", "logSet", "tentSet"} {
		if !fields[f] {
			t.Errorf("OnDeliver field writes %v missing %q", od.FieldWrites, f)
		}
	}
}
