// Package quitbad spawns goroutines with no provable termination:
// selects with no quit arm, bare receive loops, leaks hidden behind a
// wrapper, and spawns that cannot be resolved at all.
package quitbad

type srv struct {
	work chan int
	tick chan struct{}
}

// pump has an infinite select with no quit arm and no return.
func (s *srv) pump() {
	for {
		select {
		case v := <-s.work:
			_ = v
		case <-s.tick:
		}
	}
}

// spin never exits.
func (s *srv) spin() {
	for {
		<-s.work
	}
}

// viaWrapper hides the leak one call deep.
func (s *srv) viaWrapper() {
	s.spin()
}

func (s *srv) start(alt bool) {
	go s.pump() // want `no proven termination path`
	go func() { // want `no proven termination path`
		for {
			<-s.work
		}
	}()
	go s.viaWrapper() // want `no proven termination path`

	f := s.pump
	if alt {
		f = s.spin
	}
	go f() // want `cannot resolve the spawned function`
}
