// Package quitgood spawns goroutines whose termination is provable:
// quit-channel selects, error-return accept loops, bounded drains,
// labeled breaks out of nested loops, and annotated daemons.
package quitgood

type listener interface {
	Accept() (int, error)
}

type srv struct {
	work chan int
	quit chan struct{}
	l    listener
}

// pump exits through the quit arm.
func (s *srv) pump() {
	for {
		select {
		case v := <-s.work:
			_ = v
		case <-s.quit:
			return
		}
	}
}

// accept returns when the listener is closed — the repository's
// shutdown idiom for network loops.
func (s *srv) accept() {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		_ = conn
	}
}

// drain is bounded by channel close.
func (s *srv) drain() {
	for v := range s.work {
		_ = v
	}
}

// nested escapes both loops with a labeled break from the inner one.
func (s *srv) nested() {
outer:
	for {
		for {
			select {
			case <-s.quit:
				break outer
			case v := <-s.work:
				if v < 0 {
					break
				}
				_ = v
			}
		}
	}
}

// scrape runs for the life of the process by design.
//
//ocsml:daemon process-lifetime metrics scraper
func (s *srv) scrape() {
	for {
		<-s.work
	}
}

func drainG[T any](ch chan T) {
	for range ch {
	}
}

func (s *srv) start() {
	go s.pump()
	go s.accept()
	go s.drain()
	go s.nested()
	go s.scrape()
	go s.pump() //ocsml:daemon same loop, annotated at the spawn site
	go func() {
		s.work <- 1 // no loop at all: terminates with its work
	}()

	f := s.pump
	go f()
	go drainG(s.work)
}
