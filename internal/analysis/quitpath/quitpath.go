// Package quitpath proves that every spawned goroutine has a
// termination path. The leakcheck TestMains catch leaked goroutines
// dynamically, after the fact and only on the paths a test happens to
// drive; quitpath proves the property statically for every `go`
// statement in the program:
//
//   - a goroutine whose body (and every function it statically calls)
//     contains no infinite `for` loop terminates when its work does —
//     an accept loop returning on listener close, a one-shot helper;
//   - an infinite `for` loop must contain a reachable exit: a return
//     (the canonical select-on-quit arm), a break out of the loop, a
//     goto, or a call that never returns (panic, os.Exit, log.Fatal,
//     runtime.Goexit);
//   - `for cond` and `for range` loops are assumed bounded: their
//     condition or sequence is the termination argument, which is the
//     convention this repository's loops follow;
//   - a deliberate daemon opts out with //ocsml:daemon <why> on the go
//     statement or in the spawned function's doc comment.
//
// The check follows static calls transitively (a leak hiding behind a
// wrapper is still a leak), skips functions without source (the stdlib
// is trusted), and treats dynamic dispatch as terminating — interface
// callees are the implementor's responsibility at their own spawn
// sites. A spawn whose target cannot be resolved at all must carry the
// daemon annotation: an unprovable goroutine is a finding, not a pass.
package quitpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"ocsml/internal/analysis/vetkit"
)

// Analyzer is the quitpath analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "quitpath",
	Doc:  "every spawned goroutine has a proven termination path or an //ocsml:daemon opt-out",
	Run:  run,
}

// progFacts caches per-function termination verdicts for one program.
type progFacts struct {
	at   *vetkit.Attribution
	cg   *vetkit.CallGraph
	dirs *vetkit.Directives
	fset *token.FileSet

	// verdicts maps a function to the position of the first unexitable
	// infinite loop reachable from it (token.NoPos = terminates).
	verdicts map[*types.Func]token.Pos
}

var cache = map[*vetkit.Program]*progFacts{}

func run(pass *vetkit.Pass) error {
	pf, ok := cache[pass.Program]
	if !ok {
		pf = &progFacts{
			at:       pass.Program.Attribution(),
			cg:       pass.Program.CallGraph(),
			dirs:     pass.Program.Directives(),
			fset:     pass.Fset,
			verdicts: map[*types.Func]token.Pos{},
		}
		cache[pass.Program] = pf
	}
	for _, s := range pf.at.Spawns {
		if s.Body.Pkg.Types != pass.Pkg {
			continue
		}
		pf.checkSpawn(pass, s)
	}
	return nil
}

// checkSpawn verifies one go statement.
func (pf *progFacts) checkSpawn(pass *vetkit.Pass, s *vetkit.SpawnSite) {
	if pf.dirs.Has(s.Go.Pos(), "daemon") {
		return
	}
	switch {
	case s.Lit != nil:
		seen := map[*types.Func]bool{}
		if bad := pf.checkBodyTree(s.Body.Pkg, pf.at.ByNode[s.Lit], seen); bad != token.NoPos {
			pass.Reportf(s.Go.Pos(), "spawned goroutine has no proven termination path: infinite loop at %s lacks a return or break (select on a quit channel, or annotate //ocsml:daemon <why>)",
				pf.pos(bad))
		}
	case s.Callee != nil:
		node := pf.cg.Node(s.Callee)
		if node == nil || node.Decl == nil {
			return // no source (stdlib): trusted
		}
		if vetkit.CommentGroupHas(node.Decl.Doc, "daemon") {
			return
		}
		if bad := pf.terminates(s.Callee); bad != token.NoPos {
			pass.Reportf(s.Go.Pos(), "goroutine %s has no proven termination path: infinite loop at %s lacks a return or break (select on a quit channel, or annotate //ocsml:daemon <why>)",
				s.Callee.Name(), pf.pos(bad))
		}
	default:
		pass.Reportf(s.Go.Pos(), "cannot resolve the spawned function, so its termination is unprovable; annotate //ocsml:daemon <why> if it is a deliberate daemon")
	}
}

func (pf *progFacts) pos(p token.Pos) string {
	pos := pf.fset.Position(p)
	return pos.String()
}

// terminates returns the position of the first unexitable infinite loop
// reachable from fn, or NoPos. Verdicts are cached; recursion assumes
// the callee terminates (the cycle's loops are checked at their own
// frames).
func (pf *progFacts) terminates(fn *types.Func) token.Pos {
	if bad, ok := pf.verdicts[fn]; ok {
		return bad
	}
	pf.verdicts[fn] = token.NoPos // in-progress: break cycles
	node := pf.cg.Node(fn)
	if node == nil || node.Decl == nil {
		return token.NoPos
	}
	bad := pf.checkBodyTree(node.Pkg, pf.at.ByNode[node.Decl], map[*types.Func]bool{fn: true})
	pf.verdicts[fn] = bad
	return bad
}

// checkBodyTree checks one body plus the literals that run in its
// context (immediately invoked and deferred), and follows its static
// calls.
func (pf *progFacts) checkBodyTree(pkg *vetkit.Package, b *vetkit.Body, seen map[*types.Func]bool) token.Pos {
	if b == nil {
		return token.NoPos
	}
	var root *ast.BlockStmt
	if b.Lit != nil {
		root = b.Lit.Body
	} else {
		root = b.Decl.Body
	}
	if bad := checkLoops(root); bad != token.NoPos {
		return bad
	}
	for _, c := range b.Calls {
		if c.Callee == nil || c.Dynamic || seen[c.Callee] {
			continue
		}
		node := pf.cg.Node(c.Callee)
		if node == nil || node.Decl == nil {
			continue
		}
		seen[c.Callee] = true
		if bad := pf.terminates(c.Callee); bad != token.NoPos {
			return bad
		}
	}
	// Literals that run in this body's context are part of its
	// termination argument; posted/escaping literals run on some other
	// goroutine and are judged at their own consumption site.
	for _, nested := range pf.at.Bodies {
		if nested.Parent != b {
			continue
		}
		if nested.Use == vetkit.UseCall || nested.Use == vetkit.UseDefer {
			if bad := pf.checkBodyTree(pkg, nested, seen); bad != token.NoPos {
				return bad
			}
		}
	}
	return token.NoPos
}

// checkLoops finds infinite for loops lexically in root (not inside
// nested function literals) and returns the position of the first one
// with no exit.
func checkLoops(root *ast.BlockStmt) token.Pos {
	if root == nil {
		return token.NoPos
	}
	bad := token.NoPos
	ast.Inspect(root, func(n ast.Node) bool {
		if bad != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !hasExit(n.Body, innerLabels(n.Body), true) {
				bad = n.Pos()
				return false
			}
		}
		return true
	})
	return bad
}

// innerLabels collects the labels declared lexically inside body (not
// in nested function literals). A break targeting any label NOT in
// this set escapes the loop: the loop's own label and every enclosing
// label are declared outside its body.
func innerLabels(body *ast.BlockStmt) map[string]bool {
	inner := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.LabeledStmt:
			inner[n.Label.Name] = true
		}
		return true
	})
	return inner
}

// hasExit reports whether the loop body contains a statement that
// escapes the loop: a return, a break targeting it or an enclosing
// label, a goto, or a call that never returns. direct tracks whether
// an unlabeled break here still targets the loop (false under a
// nested for/switch/select); inner is the set of labels declared
// inside the loop body (a labeled break to any other label escapes).
func hasExit(n ast.Node, inner map[string]bool, direct bool) bool {
	found := false
	walk := func(children ...ast.Node) {
		for _, c := range children {
			if c != nil && hasExit(c, inner, direct) {
				found = true
			}
		}
	}
	switch n := n.(type) {
	case nil:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch n.Tok {
		case token.BREAK:
			if n.Label == nil {
				return direct
			}
			return !inner[n.Label.Name]
		case token.GOTO:
			// A goto's target may be outside the loop; assume it is.
			return true
		}
		return false
	case *ast.ExprStmt:
		return neverReturns(n.X)
	case *ast.FuncLit:
		return false
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		direct = false
	case *ast.BlockStmt:
		walk(stmtsToNodes(n.List)...)
		return found
	case *ast.LabeledStmt:
		walk(n.Stmt)
		return found
	}
	// Structured statements: walk their children with the (possibly
	// cleared) direct flag.
	switch n := n.(type) {
	case *ast.ForStmt:
		walk(n.Body)
	case *ast.RangeStmt:
		walk(n.Body)
	case *ast.IfStmt:
		walk(n.Body, n.Else)
	case *ast.SwitchStmt:
		walk(n.Body)
	case *ast.TypeSwitchStmt:
		walk(n.Body)
	case *ast.SelectStmt:
		walk(n.Body)
	case *ast.CaseClause:
		walk(stmtsToNodes(n.Body)...)
	case *ast.CommClause:
		walk(stmtsToNodes(n.Body)...)
	}
	return found
}

func stmtsToNodes(stmts []ast.Stmt) []ast.Node {
	out := make([]ast.Node, len(stmts))
	for i, s := range stmts {
		out[i] = s
	}
	return out
}

// neverReturns recognizes calls that terminate the goroutine or the
// process.
func neverReturns(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
				return true
			}
		}
	}
	return false
}
