package quitpath_test

import (
	"testing"

	"ocsml/internal/analysis/quitpath"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", quitpath.Analyzer, "quitbad")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", quitpath.Analyzer, "quitgood")
}
