package fsyncorder_test

import (
	"testing"

	"ocsml/internal/analysis/fsyncorder"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", fsyncorder.Analyzer, "bad/internal/fsstore")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", fsyncorder.Analyzer, "good/internal/fsstore")
}
