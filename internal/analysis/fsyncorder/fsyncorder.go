// Package fsyncorder implements the crash-consistency analyzer for the
// stable-storage package: fsstore's recovery argument depends on the
// write → fsync → rename → directory-sync ordering (a manifest must
// never become visible before the bytes it references are durable), and
// the torn-file chaos tests only exercise that discipline dynamically.
// This analyzer enforces it structurally:
//
//   - every os.Rename call must be preceded, in the same function body,
//     by a Sync() call on an *os.File (the temp file's contents are
//     durable before the rename publishes them);
//   - every os.Rename must be followed, in the same function body, by a
//     directory sync — a call to a function named syncDir, or a Sync()
//     on an *os.File after the rename (the rename itself is durable);
//   - os.WriteFile is banned outright in the checked packages: it
//     truncates in place, so a crash mid-write leaves a torn file that
//     the atomic temp-file protocol exists to prevent;
//   - every file truncation (os.Truncate or (*os.File).Truncate — the
//     segmented log cuts interrupted group-commit tails on Open) must be
//     followed, in the same function body, by a Sync() on an *os.File:
//     an unsynced truncation can reappear after a crash, resurrecting
//     the torn tail it was supposed to remove.
//
// A rename that intentionally departs from the discipline carries
// //ocsml:nofsync <why> on the call line or the line above.
//
// The check is lexical (source order within one function), not a true
// dominance analysis: fsstore keeps the whole protocol inside
// writeAtomic precisely so the ordering is locally visible.
package fsyncorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ocsml/internal/analysis/vetkit"
)

// PackageSuffixes lists the import-path suffixes the analyzer applies
// to — the packages that own an on-disk commit protocol.
var PackageSuffixes = []string{"internal/fsstore", "fsstore"}

// Analyzer is the fsyncorder analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "fsyncorder",
	Doc:  "enforce write→fsync→rename→dirsync ordering in the stable-storage package",
	Run:  run,
}

const (
	evFileSync = iota
	evRename
	evDirSync
	evTruncate
)

type event struct {
	pos  token.Pos
	kind int
}

func run(pass *vetkit.Pass) error {
	checked := false
	for _, suf := range PackageSuffixes {
		if vetkit.PathHasSuffix(pass.Pkg.Path(), suf) {
			checked = true
			break
		}
	}
	if !checked {
		return nil
	}
	dirs := pass.Program.Directives()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, dirs, fd)
		}
	}
	return nil
}

func checkFunc(pass *vetkit.Pass, dirs *vetkit.Directives, fd *ast.FuncDecl) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			// A plain `syncDir(...)` call (package-level helper).
			if id, ok := call.Fun.(*ast.Ident); ok && strings.EqualFold(id.Name, "syncDir") {
				events = append(events, event{call.Pos(), evDirSync})
			}
			return true
		}
		switch {
		case isOsFunc(pass, sel, "Rename"):
			events = append(events, event{call.Pos(), evRename})
		case isOsFunc(pass, sel, "Truncate"):
			events = append(events, event{call.Pos(), evTruncate})
		case sel.Sel.Name == "Truncate" && isFileReceiver(pass, sel):
			events = append(events, event{call.Pos(), evTruncate})
		case isOsFunc(pass, sel, "WriteFile"):
			if !dirs.Has(call.Pos(), "nofsync") {
				pass.Reportf(call.Pos(), "os.WriteFile truncates in place and tears on crash: use the temp-file + fsync + rename protocol (writeAtomic)")
			}
		case sel.Sel.Name == "Sync" && isFileReceiver(pass, sel):
			events = append(events, event{call.Pos(), evFileSync})
		case strings.EqualFold(sel.Sel.Name, "syncDir"):
			events = append(events, event{call.Pos(), evDirSync})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for i, ev := range events {
		if ev.kind == evTruncate {
			if dirs.Has(ev.pos, "nofsync") {
				continue
			}
			synced := false
			for _, after := range events[i+1:] {
				if after.kind == evFileSync {
					synced = true
					break
				}
			}
			if !synced {
				pass.Reportf(ev.pos, "Truncate in %s not followed by a File.Sync: an unsynced truncation can resurrect the torn tail after a crash", fd.Name.Name)
			}
			continue
		}
		if ev.kind != evRename {
			continue
		}
		if dirs.Has(ev.pos, "nofsync") {
			continue
		}
		synced := false
		for _, before := range events[:i] {
			if before.kind == evFileSync {
				synced = true
				break
			}
		}
		if !synced {
			pass.Reportf(ev.pos, "os.Rename in %s without a preceding File.Sync: the renamed file's contents may not be durable when the name becomes visible", fd.Name.Name)
		}
		dirSynced := false
		for _, after := range events[i+1:] {
			if after.kind == evDirSync || after.kind == evFileSync {
				dirSynced = true
				break
			}
		}
		if !dirSynced {
			pass.Reportf(ev.pos, "os.Rename in %s not followed by a directory sync: the rename itself may be lost on crash (call syncDir)", fd.Name.Name)
		}
	}
}

// isOsFunc reports whether sel resolves to the package-level os.<name>.
func isOsFunc(pass *vetkit.Pass, sel *ast.SelectorExpr, name string) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == "os" && fn.Name() == name
}

// isFileReceiver reports whether the receiver of a method call has type
// *os.File.
func isFileReceiver(pass *vetkit.Pass, sel *ast.SelectorExpr) bool {
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}
