// Package fsstore is the violating fixture for the fsync-ordering
// analyzer.
package fsstore

import (
	"os"
	"path/filepath"
)

func renameWithoutAnySync(dir string) error {
	return os.Rename(filepath.Join(dir, "tmp"), filepath.Join(dir, "final")) // want "without a preceding File.Sync" "not followed by a directory sync"
}

func renameWithoutDirSync(dir string) error {
	f, err := os.Create(filepath.Join(dir, "tmp"))
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), filepath.Join(dir, "final")) // want "not followed by a directory sync"
}

func tornWrite(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "os.WriteFile truncates in place"
}

func declaredException(dir string) error {
	//ocsml:nofsync fixture: scratch file, durability not required
	return os.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
}

func truncateWithoutSync(path string) error {
	return os.Truncate(path, 128) // want "not followed by a File.Sync"
}

func truncateFileWithoutSync(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Truncate(128) // want "not followed by a File.Sync"
}

func truncateDeclaredException(path string) error {
	//ocsml:nofsync fixture: scratch file, durability not required
	return os.Truncate(path, 0)
}
