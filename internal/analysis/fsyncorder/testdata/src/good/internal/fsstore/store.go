// Package fsstore is the conforming fixture: the full temp-file +
// fsync + rename + directory-sync protocol.
package fsstore

import (
	"os"
	"path/filepath"
)

func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

func truncateTail(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
