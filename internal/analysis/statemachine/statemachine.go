// Package statemachine implements the checkpoint-lifecycle analyzer.
// The paper's protocol allows exactly two moves: a normal process takes
// a tentative checkpoint (Normal -> Tentative), and a tentative process
// finalizes it (Tentative -> Normal); rollback recovery re-enters
// Normal from anywhere. The transition table is declared on the state
// type itself:
//
//	// Status is the checkpoint lifecycle state.
//	//
//	//ocsml:state stat Normal->Tentative
//	//ocsml:state stat Tentative->Normal
//	//ocsml:state stat *->Normal
//	type Status int
//
// where `stat` names the struct field holding the state and each
// directive declares one legal from->to edge (`*` = any from-state).
// The analyzer then proves every assignment to a field of that name and
// type is a declared transition:
//
//   - the assigned value must be a named constant of the state type;
//   - a forward analysis tracks the possible states of each receiver's
//     field (a bitset; Top = all states), narrowing through `if x.stat
//     == C` / `!= C` guards — including the synthesized guards of
//     switch cases and the fall-through of panic-terminated arms — and
//     resetting to Top across any static call that may (transitively)
//     write a state field;
//   - an assignment is legal when the transition from every still-
//     possible state to the written constant is declared.
//
// Interface calls are assumed state-preserving: protocols are single-
// threaded state machines and their effect interfaces (Env) never call
// back into protocol state; the closures handed to them are analyzed
// as their own bodies with all states possible.
package statemachine

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ocsml/internal/analysis/vetkit"
)

// Analyzer is the statemachine analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "statemachine",
	Doc:  "every write to an //ocsml:state-annotated field is a declared lifecycle transition",
	Run:  run,
}

// A table is the declared transition relation of one (type, field).
type table struct {
	typ   *types.TypeName
	field string
	names map[int64]string // constant value -> name
	all   uint64           // mask of every declared state
	trans map[int64]uint64 // to-value -> allowed-from mask
	star  map[int64]bool   // to-values reachable from any state
	decl  []DeclEdge       // declared edges in directive order
	// insertEnd is the end of the table's last //ocsml:state directive —
	// the anchor where the suggested fix appends a new edge stub.
	insertEnd token.Pos
}

// ---- exported model facts ----
//
// The protomodel extractor (internal/analysis/protomodel) lifts the
// protocol implementation into an explicit transition system; the
// declared tables and the proven write facts below are its raw
// material, shared with this analyzer so the two can never disagree.

// A DeclEdge is one declared transition; From is "*" for any-state.
type DeclEdge struct{ From, To string }

// TableInfo is the exported view of one //ocsml:state table.
type TableInfo struct {
	Type   *types.TypeName
	Field  string
	States []string // every named constant of the state type, by value
	Edges  []DeclEdge
	// InsertPos anchors mechanical fixes: new edge stubs are inserted
	// at the end of the table's last //ocsml:state directive.
	InsertPos token.Pos
}

// A TransitionWrite is one write to an annotated state field, with the
// forward analysis' guard-narrowed set of possible from-states.
type TransitionWrite struct {
	Table TableInfo
	Fn    *types.Func // function whose body contains the write
	Pos   token.Pos
	From  []string // states the write may be entered from
	To    string   // written constant; "" when not a named constant
	// Declared reports that every (from, to) pair is a declared edge —
	// exactly the condition this analyzer enforces.
	Declared bool
}

// Tables returns the program's declared transition tables.
func Tables(program *vetkit.Program) []TableInfo {
	pf := facts(program)
	out := make([]TableInfo, 0, len(pf.tables))
	for _, t := range pf.tables {
		out = append(out, t.info())
	}
	return out
}

// TransitionWrites re-runs the write analysis over every declared
// function and returns each state-field write as a fact. Order is
// deterministic (callgraph declaration order).
func TransitionWrites(program *vetkit.Program) []TransitionWrite {
	pf := facts(program)
	if len(pf.tables) == 0 {
		return nil
	}
	var out []TransitionWrite
	for _, n := range program.CallGraph().Funcs() {
		if n.Decl.Body == nil {
			continue
		}
		fn := n
		a := &analysis{info: n.Pkg.Info, pf: pf, node: n}
		a.visit = func(w writeVisit) {
			tw := TransitionWrite{
				Table: w.t.info(), Fn: fn.Obj, Pos: w.pos,
				From: w.t.maskNames(w.fromMask), To: w.toName,
				Declared: w.named && w.illegal == 0,
			}
			out = append(out, tw)
		}
		a.checkBody(n.Decl.Body)
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok {
				a.checkBody(lit.Body)
			}
			return true
		})
	}
	return out
}

func (t *table) info() TableInfo {
	return TableInfo{
		Type: t.typ, Field: t.field, States: t.maskNames(t.all),
		Edges: append([]DeclEdge(nil), t.decl...), InsertPos: t.insertEnd,
	}
}

// A tableErr is a malformed directive, reported by the pass that owns
// the declaring package.
type tableErr struct {
	pkg *types.Package
	pos token.Pos
	msg string
}

type progFacts struct {
	tables   []*table
	errs     []tableErr
	mayWrite map[*types.Func]bool
}

var cache = map[*vetkit.Program]*progFacts{}

func run(pass *vetkit.Pass) error {
	pf := facts(pass.Program)
	for _, e := range pf.errs {
		if e.pkg == pass.Pkg {
			pass.Reportf(e.pos, "%s", e.msg)
		}
	}
	if len(pf.tables) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := pass.Program.CallGraph().Node(obj)
			if node == nil {
				continue
			}
			a := &analysis{info: pass.TypesInfo, pf: pf, node: node}
			a.visit = func(w writeVisit) {
				switch {
				case !w.named:
					pass.Reportf(w.pos, "write to state field %s.%s is not a named %s constant: every write must be a declared //ocsml:state transition", w.t.typ.Name(), w.t.field, w.t.typ.Name())
				case w.illegal != 0:
					pass.Report(vetkit.Diagnostic{
						Pos: w.pos,
						Message: fmt.Sprintf("transition %s->%s of state field %s.%s is not declared by //ocsml:state (guard the write or declare the edge)",
							w.t.stateNames(w.illegal), w.toName, w.t.typ.Name(), w.t.field),
						Fix: w.t.edgeStubFix(w.illegal, w.toName),
					})
				}
			}
			a.checkBody(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					a.checkBody(lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// facts parses every transition table and computes the may-write set.
func facts(program *vetkit.Program) *progFacts {
	if pf, ok := cache[program]; ok {
		return pf
	}
	pf := &progFacts{mayWrite: map[*types.Func]bool{}}
	cache[program] = pf
	for _, pkg := range program.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					pf.parseTable(pkg, ts, doc)
				}
			}
		}
	}
	if len(pf.tables) > 0 {
		pf.computeMayWrite(program)
	}
	return pf
}

// parseTable reads the //ocsml:state directives of one type declaration.
func (pf *progFacts) parseTable(pkg *vetkit.Package, ts *ast.TypeSpec, doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	type edge struct {
		from, to string
		pos, end token.Pos
	}
	byField := map[string][]edge{}
	var order []string
	for _, dir := range vetkit.DocDirectives(doc) {
		if dir.Name != "state" {
			continue
		}
		fields := strings.Fields(dir.Arg)
		bad := func(msg string) {
			pf.errs = append(pf.errs, tableErr{pkg.Types, dir.Pos, msg})
		}
		if len(fields) != 2 {
			bad(fmt.Sprintf("malformed //ocsml:state directive %q: want //ocsml:state <field> <from>-><to>", dir.Arg))
			continue
		}
		from, to, ok := strings.Cut(fields[1], "->")
		if !ok || from == "" || to == "" {
			bad(fmt.Sprintf("malformed //ocsml:state transition %q: want <from>-><to> (\"*\" = any from-state)", fields[1]))
			continue
		}
		if _, seen := byField[fields[0]]; !seen {
			order = append(order, fields[0])
		}
		byField[fields[0]] = append(byField[fields[0]], edge{from, to, dir.Pos, dir.End})
	}
	if len(byField) == 0 {
		return
	}
	obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	// Enum constants: package-level constants of the annotated type.
	names := map[int64]string{}
	byName := map[string]int64{}
	var all uint64
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), obj.Type()) {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok || v < 0 || v > 63 {
			pf.errs = append(pf.errs, tableErr{pkg.Types, c.Pos(), fmt.Sprintf("state constant %s = %s is outside the analyzable range [0, 63]", name, c.Val())})
			continue
		}
		names[v] = name
		byName[name] = v
		all |= 1 << uint(v)
	}
	for _, field := range order {
		t := &table{typ: obj, field: field, names: names, all: all,
			trans: map[int64]uint64{}, star: map[int64]bool{}}
		for _, e := range byField[field] {
			t.insertEnd = e.end
			to, ok := byName[e.to]
			if !ok {
				pf.errs = append(pf.errs, tableErr{pkg.Types, e.pos, fmt.Sprintf("//ocsml:state names unknown %s constant %q", obj.Name(), e.to)})
				continue
			}
			if e.from == "*" {
				t.star[to] = true
				t.decl = append(t.decl, DeclEdge{"*", e.to})
				continue
			}
			from, ok := byName[e.from]
			if !ok {
				pf.errs = append(pf.errs, tableErr{pkg.Types, e.pos, fmt.Sprintf("//ocsml:state names unknown %s constant %q", obj.Name(), e.from)})
				continue
			}
			t.trans[to] |= 1 << uint(from)
			t.decl = append(t.decl, DeclEdge{e.from, e.to})
		}
		pf.tables = append(pf.tables, t)
	}
}

// computeMayWrite closes direct state-field writers over the static
// callgraph (closure call sites included: the write may happen when the
// callee's closure runs).
func (pf *progFacts) computeMayWrite(program *vetkit.Program) {
	funcs := program.CallGraph().Funcs()
	direct := func(n *vetkit.FuncNode) bool {
		found := false
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok {
				return !found
			}
			for _, lhs := range as.Lhs {
				if t, _ := pf.stateSelector(n.Pkg.Info, lhs); t != nil {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for _, n := range funcs {
		if direct(n) {
			pf.mayWrite[n.Obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range funcs {
			if pf.mayWrite[n.Obj] {
				continue
			}
			for _, site := range n.Calls {
				if site.Callee != nil && pf.mayWrite[site.Callee.Obj] {
					pf.mayWrite[n.Obj] = true
					changed = true
					break
				}
			}
		}
	}
}

// stateSelector matches expr against every table: a selector of an
// annotated state field. The returned var is the selector's base
// identifier (nil when the base is not a plain identifier).
func (pf *progFacts) stateSelector(info *types.Info, expr ast.Expr) (*table, *types.Var) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	field, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !field.IsField() {
		return nil, nil
	}
	for _, t := range pf.tables {
		if field.Name() == t.field && types.Identical(field.Type(), t.typ.Type()) {
			var base *types.Var
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					base = v
				}
			}
			return t, base
		}
	}
	return nil, nil
}

// fact maps a receiver variable to the bitset of states its field may
// hold; an absent key is Top (all states). Merge is union, so a state
// possible on any inbound path stays possible.
type fact map[*types.Var]uint64

func cloneFact(f fact) fact {
	out := make(fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func mergeFact(a, b fact) fact {
	out := fact{}
	for v, ma := range a {
		if mb, ok := b[v]; ok {
			out[v] = ma | mb
		}
		// Absent in b = Top there: drop the key (Top) in the merge.
	}
	return out
}

func equalFact(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for v, ma := range a {
		mb, ok := b[v]
		if !ok || ma != mb {
			return false
		}
	}
	return true
}

// A writeVisit describes one state-field write to the analysis' visit
// callback: the diagnostic path (run) turns undeclared transitions into
// findings; the fact path (TransitionWrites) records every write.
type writeVisit struct {
	t        *table
	pos      token.Pos
	fromMask uint64 // guard-narrowed possible from-states
	to       int64
	toName   string
	named    bool   // RHS resolved to a named constant of the state type
	illegal  uint64 // from-states whose edge to `to` is undeclared
}

type analysis struct {
	info  *types.Info
	pf    *progFacts
	node  *vetkit.FuncNode
	visit func(writeVisit)
}

func (a *analysis) checkBody(body *ast.BlockStmt) {
	sites := map[*ast.CallExpr]*vetkit.CallSite{}
	for _, s := range a.node.Calls {
		sites[s.Call] = s
	}
	g := vetkit.NewCFG(body)
	transfer := func(b *vetkit.Block, in fact) fact { return a.transfer(sites, b, in, false) }
	in := vetkit.Forward(g, fact{}, transfer, mergeFact, equalFact)
	for _, b := range g.Blocks {
		entry, ok := in[b]
		if !ok {
			continue
		}
		a.transfer(sites, b, entry, true)
	}
}

func (a *analysis) transfer(sites map[*ast.CallExpr]*vetkit.CallSite, b *vetkit.Block, in fact, report bool) fact {
	f := cloneFact(in)
	for _, g := range b.Guards {
		a.narrow(g.Cond, g.True, f)
	}
	for _, n := range b.Nodes {
		// Calls evaluated by this node run before control moves on; any
		// may-writer invalidates everything we know. Closures merely
		// created here do not run.
		reset := false
		inspectSkipLits(n, func(call *ast.CallExpr) {
			if site, ok := sites[call]; ok && site.Callee != nil && a.pf.mayWrite[site.Callee.Obj] {
				reset = true
			}
		})
		as, _ := n.(*ast.AssignStmt)
		if reset {
			// The write below still applies after the reset: RHS calls
			// run before the store.
			for v := range f {
				delete(f, v)
			}
		}
		if as != nil {
			a.assign(as, f, report)
		}
	}
	return f
}

// assign checks every state-field write in one assignment.
func (a *analysis) assign(as *ast.AssignStmt, f fact, report bool) {
	for i, lhs := range as.Lhs {
		t, base := a.pf.stateSelector(a.info, lhs)
		if t == nil {
			continue
		}
		cur := t.all
		if base != nil {
			if m, ok := f[base]; ok {
				cur = m
			}
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		to, toName, ok := a.constValue(t, rhs)
		if !ok {
			if report {
				a.visit(writeVisit{t: t, pos: lhs.Pos(), fromMask: cur})
			}
			if base != nil {
				delete(f, base) // unknown value: Top
			}
			continue
		}
		var illegal uint64
		if !t.star[to] {
			illegal = cur &^ t.trans[to]
		}
		if report {
			a.visit(writeVisit{t: t, pos: lhs.Pos(), fromMask: cur,
				to: to, toName: toName, named: true, illegal: illegal})
		}
		if base != nil {
			f[base] = 1 << uint(to)
		}
	}
}

// constValue resolves rhs to a declared state constant of t's type.
func (a *analysis) constValue(t *table, rhs ast.Expr) (int64, string, bool) {
	if rhs == nil {
		return 0, "", false
	}
	tv, ok := a.info.Types[rhs]
	if !ok || tv.Value == nil {
		return 0, "", false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return 0, "", false
	}
	name, ok := t.names[v]
	return v, name, ok
}

// narrow refines the fact through one branch condition.
func (a *analysis) narrow(cond ast.Expr, truth bool, f fact) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			a.narrow(e.X, !truth, f)
		}
	case *ast.BinaryExpr:
		switch {
		case e.Op == token.LAND && truth:
			a.narrow(e.X, true, f)
			a.narrow(e.Y, true, f)
		case e.Op == token.LOR && !truth:
			a.narrow(e.X, false, f)
			a.narrow(e.Y, false, f)
		case e.Op == token.EQL, e.Op == token.NEQ:
			t, base, val, ok := a.comparison(e)
			if !ok || base == nil {
				return
			}
			cur := t.all
			if m, ok := f[base]; ok {
				cur = m
			}
			if (e.Op == token.EQL) == truth {
				cur &= 1 << uint(val)
			} else {
				cur &^= 1 << uint(val)
			}
			f[base] = cur
		}
	}
}

// comparison matches `x.field == Const` with the operands in either
// order.
func (a *analysis) comparison(e *ast.BinaryExpr) (*table, *types.Var, int64, bool) {
	info := a.info
	try := func(selSide, constSide ast.Expr) (*table, *types.Var, int64, bool) {
		t, base := a.pf.stateSelector(info, selSide)
		if t == nil {
			return nil, nil, 0, false
		}
		v, _, ok := a.constValue(t, constSide)
		if !ok {
			return nil, nil, 0, false
		}
		return t, base, v, true
	}
	if t, b, v, ok := try(e.X, e.Y); ok {
		return t, b, v, ok
	}
	return try(e.Y, e.X)
}

// maskNames renders a mask of states as a sorted-by-value name list.
func (t *table) maskNames(mask uint64) []string {
	var vals []int64
	for v := range t.names {
		if mask&(1<<uint(v)) != 0 {
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var names []string
	for _, v := range vals {
		names = append(names, t.names[v])
	}
	return names
}

// stateNames renders a mask of states for diagnostics.
func (t *table) stateNames(mask uint64) string {
	names := t.maskNames(mask)
	if len(names) == 0 {
		return "?"
	}
	return strings.Join(names, "|")
}

// edgeStubFix builds the suggested fix for an undeclared transition: a
// //ocsml:state stub per still-possible from-state, appended after the
// table's last declared edge. The stub declares intent explicitly — the
// developer reviews and keeps (or deletes) each edge.
func (t *table) edgeStubFix(illegal uint64, toName string) *vetkit.SuggestedFix {
	if !t.insertEnd.IsValid() {
		return nil
	}
	var text strings.Builder
	for _, from := range t.maskNames(illegal) {
		fmt.Fprintf(&text, "\n//ocsml:state %s %s->%s", t.field, from, toName)
	}
	if text.Len() == 0 {
		return nil
	}
	return &vetkit.SuggestedFix{
		Message: fmt.Sprintf("declare the %s->%s edge(s) on the %s table", t.stateNames(illegal), toName, t.typ.Name()),
		Edits:   []vetkit.TextEdit{{Pos: t.insertEnd, End: t.insertEnd, NewText: text.String()}},
	}
}

// inspectSkipLits visits every call expression under n outside nested
// function literals.
func inspectSkipLits(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}
