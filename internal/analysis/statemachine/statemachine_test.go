package statemachine_test

import (
	"testing"

	"ocsml/internal/analysis/statemachine"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", statemachine.Analyzer, "sm/bad")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", statemachine.Analyzer, "sm/good")
}
