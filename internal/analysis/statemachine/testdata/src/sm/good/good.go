// Package good holds only legal lifecycle transitions.
package good

// Status is the checkpoint lifecycle state.
//
//ocsml:state stat Normal->Tentative
//ocsml:state stat Tentative->Normal
//ocsml:state stat *->Normal
type Status int

const (
	// Normal means no checkpoint is in flight.
	Normal Status = iota
	// Tentative means an optimistic checkpoint awaits finalization.
	Tentative
)

// Proc is a process with a lifecycle state.
type Proc struct {
	stat Status
	n    int
}

// take mirrors the real takeTentative: a panic guard narrows the
// state to Normal before the write.
func (p *Proc) take() {
	if p.stat != Normal {
		panic("checkpoint already in flight")
	}
	p.stat = Tentative
}

// finalize mirrors the real finalize; Tentative->Normal is declared
// (and *->Normal would cover it anyway).
func (p *Proc) finalize() {
	if p.stat != Tentative {
		panic("no tentative checkpoint")
	}
	p.stat = Normal
}

// rollback re-enters Normal from anywhere: the wildcard edge.
func (p *Proc) rollback() { p.stat = Normal }

// guardedEq narrows through a positive equality guard.
func (p *Proc) guardedEq() {
	if p.stat == Normal {
		p.stat = Tentative
	}
}

// bySwitch narrows through the synthesized switch-case guards.
func (p *Proc) bySwitch() {
	switch p.stat {
	case Normal:
		p.stat = Tentative
	case Tentative:
		p.stat = Normal
	}
}

// compound narrows through a conjunction.
func (p *Proc) compound(ready bool) {
	if ready && p.stat == Normal {
		p.stat = Tentative
	}
}

// sequenced keeps the narrowing across state-preserving calls and
// through its own earlier write.
func (p *Proc) sequenced() {
	if p.stat != Normal {
		return
	}
	p.count()
	p.stat = Tentative
	p.stat = Normal // Tentative->Normal after the write above
}

func (p *Proc) count() { p.n++ }

// closureGuarded re-establishes the guard inside the literal, since a
// closure may run under any state.
func (p *Proc) closureGuarded() func() {
	return func() {
		if p.stat != Normal {
			return
		}
		p.stat = Tentative
	}
}

func use(p *Proc) {
	p.take()
	p.finalize()
	p.rollback()
	p.guardedEq()
	p.bySwitch()
	p.compound(true)
	p.sequenced()
	p.closureGuarded()()
}
