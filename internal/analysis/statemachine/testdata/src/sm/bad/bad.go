// Package bad exercises every statemachine finding class.
package bad

// Status is the checkpoint lifecycle state.
//
//ocsml:state stat Normal->Tentative
//ocsml:state stat Tentative->Normal
//ocsml:state stat *->Normal
type Status int

const (
	// Normal means no checkpoint is in flight.
	Normal Status = iota
	// Tentative means an optimistic checkpoint awaits finalization.
	Tentative
)

// Proc is a process with a lifecycle state.
type Proc struct {
	stat Status
	n    int
}

// begin writes Tentative with no guard: the process may already be
// Tentative, and Tentative->Tentative is not declared.
func (p *Proc) begin() {
	p.stat = Tentative // want `transition Tentative->Tentative of state field Status\.stat is not declared`
}

// fromVar assigns a value the analyzer cannot prove is a declared
// constant.
func (p *Proc) fromVar(s Status) {
	p.stat = s // want `write to state field Status\.stat is not a named Status constant`
}

// wrongGuard narrows to the wrong state before the write.
func (p *Proc) wrongGuard() {
	if p.stat == Tentative {
		p.stat = Tentative // want `transition Tentative->Tentative of state field Status\.stat is not declared`
	}
}

// viaHelper loses its narrowing across a call that may write the
// state field, interprocedurally.
func (p *Proc) viaHelper() {
	if p.stat != Normal {
		return
	}
	p.reset()
	p.stat = Tentative // want `transition Tentative->Tentative of state field Status\.stat is not declared`
}

func (p *Proc) reset() { p.stat = Normal }

// inClosure writes inside a function literal, where nothing is known
// about the current state.
func (p *Proc) inClosure() func() {
	return func() {
		p.stat = Tentative // want `transition Tentative->Tentative of state field Status\.stat is not declared`
	}
}

func use(p *Proc) {
	p.begin()
	p.fromVar(Normal)
	p.wrongGuard()
	p.viaHelper()
	p.inClosure()()
	_ = p.n
}
