// Package wireexhaustive implements the codec-completeness analyzer.
// Envelope payloads are polymorphic (protocol.Envelope.Payload is any),
// so the compiler cannot tell when a protocol grows a payload type the
// wire codec does not know: the failure surfaces at run time as an
// encode error on a live cluster (PR 3 hit exactly this when RbMsg was
// added). This analyzer closes the gap statically:
//
//   - every type marked //ocsml:wirepayload must appear as a case in
//     the codec's encode type-switch (appendPayload) and be constructed
//     somewhere in its decode switch (decodePayload);
//   - conversely, every type the codec encodes or decodes must carry
//     the //ocsml:wirepayload mark, so the registry stays the single
//     source of truth;
//   - every Tag* string constant (control-message tags) must fit the
//     codec's MaxCtlTag bound, and no two tags may share a value.
//
// The checked-in fuzz corpus must also contain at least one seed per
// payload kind; that check needs the real decoder, so it lives in
// CheckCorpus, wired up by cmd/ocsmlvet (and mirrored at run time by
// internal/wire's completeness test).
package wireexhaustive

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ocsml/internal/analysis/vetkit"
)

// EncodeFunc and DecodeFunc name the codec's payload switches.
const (
	EncodeFunc = "appendPayload"
	DecodeFunc = "decodePayload"
)

// Analyzer is the wireexhaustive analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "wireexhaustive",
	Doc:  "cross-check //ocsml:wirepayload types against the wire codec's encode and decode switches",
	Run:  run,
}

func run(pass *vetkit.Pass) error {
	var encFn, decFn *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
				switch fd.Name.Name {
				case EncodeFunc:
					encFn = fd
				case DecodeFunc:
					decFn = fd
				}
			}
		}
	}
	if encFn == nil || decFn == nil {
		return nil // not the codec package
	}

	registry := collectPayloads(pass)

	// Encode coverage: the case types of the payload type-switch.
	encoded := map[*types.TypeName]bool{}
	ast.Inspect(encFn, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range ts.Body.List {
			cc := stmt.(*ast.CaseClause)
			for _, texpr := range cc.List {
				obj := namedObj(pass, texpr)
				if obj == nil {
					continue // nil case, interfaces, built-ins
				}
				encoded[obj] = true
				if _, ok := registry[obj]; !ok {
					pass.Reportf(texpr.Pos(), "%s encodes %s, which is not marked //ocsml:wirepayload: mark the type so the registry stays exhaustive", EncodeFunc, qualified(obj))
				}
			}
		}
		return false
	})

	// Decode coverage: payload types constructed anywhere in decodePayload.
	decoded := map[*types.TypeName]bool{}
	ast.Inspect(decFn, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if obj := namedObj(pass, cl); obj != nil {
			decoded[obj] = true
			if _, ok := registry[obj]; !ok {
				pass.Reportf(cl.Pos(), "%s constructs %s, which is not marked //ocsml:wirepayload", DecodeFunc, qualified(obj))
			}
		}
		return true
	})

	for _, obj := range sortedKeys(registry) {
		if !encoded[obj] {
			pass.Reportf(encFn.Name.Pos(), "payload type %s (//ocsml:wirepayload) has no case in %s: it cannot travel on the wire", qualified(obj), EncodeFunc)
		}
		if !decoded[obj] {
			pass.Reportf(decFn.Name.Pos(), "payload type %s (//ocsml:wirepayload) is never constructed in %s: frames carrying it cannot be decoded", qualified(obj), DecodeFunc)
		}
	}

	checkTags(pass)
	return nil
}

// collectPayloads scans every loaded package for types whose
// declaration carries //ocsml:wirepayload.
func collectPayloads(pass *vetkit.Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !vetkit.CommentGroupHas(ts.Doc, "wirepayload") && !vetkit.CommentGroupHas(gd.Doc, "wirepayload") {
						continue
					}
					if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// checkTags verifies every Tag* string constant in the program fits
// MaxCtlTag and that no two tags collide.
func checkTags(pass *vetkit.Pass) {
	maxTag := -1
	if obj, ok := pass.Pkg.Scope().Lookup("MaxCtlTag").(*types.Const); ok {
		if v, ok := constant.Int64Val(obj.Val()); ok {
			maxTag = int(v)
		}
	}
	byValue := map[string][]*types.Const{}
	var all []*types.Const
	for _, pkg := range pass.Program.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !strings.HasPrefix(name, "Tag") || c.Val().Kind() != constant.String {
				continue
			}
			all = append(all, c)
			byValue[constant.StringVal(c.Val())] = append(byValue[constant.StringVal(c.Val())], c)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Pos() < all[j].Pos() })
	for _, c := range all {
		val := constant.StringVal(c.Val())
		if maxTag >= 0 && len(val) > maxTag {
			pass.Reportf(c.Pos(), "control tag %s = %q is %d bytes, exceeding the codec's MaxCtlTag (%d): the wire layer would refuse to encode it", c.Name(), val, len(val), maxTag)
		}
		if peers := byValue[val]; len(peers) > 1 && peers[0] == c {
			var names []string
			for _, p := range peers {
				names = append(names, p.Pkg().Name()+"."+p.Name())
			}
			pass.Reportf(c.Pos(), "control tag value %q is declared by %s: handlers dispatch on the tag string, so duplicates are ambiguous", val, strings.Join(names, " and "))
		}
	}
}

func namedObj(pass *vetkit.Pass, expr ast.Expr) *types.TypeName {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	return named.Obj()
}

func qualified(obj *types.TypeName) string {
	return obj.Pkg().Name() + "." + obj.Name()
}

func sortedKeys(m map[*types.TypeName]bool) []*types.TypeName {
	keys := make([]*types.TypeName, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return qualified(keys[i]) < qualified(keys[j]) })
	return keys
}

// PayloadNames returns the qualified names ("core.Piggyback", ...) of
// every //ocsml:wirepayload type in the loaded program, sorted — the
// registry as seen by tools that need it outside an analysis pass.
func PayloadNames(program *vetkit.Program) []string {
	pass := &vetkit.Pass{Program: program}
	var names []string
	for obj := range collectPayloads(pass) {
		names = append(names, qualified(obj))
	}
	sort.Strings(names)
	return names
}

// ---- fuzz corpus completeness (shared by cmd/ocsmlvet and the wire
// completeness test; it needs the real decoder, so it is not part of
// the static Run) ----

// ReadCorpus parses every "go test fuzz v1" seed file in dir and
// returns the raw frame of each, keyed by file name.
func ReadCorpus(dir string) (map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
			return nil, fmt.Errorf("wireexhaustive: %s is not a go fuzz corpus file", e.Name())
		}
		body := strings.TrimSuffix(strings.TrimPrefix(strings.TrimSpace(lines[1]), "[]byte("), ")")
		s, err := strconv.Unquote(body)
		if err != nil {
			return nil, fmt.Errorf("wireexhaustive: %s: %v", e.Name(), err)
		}
		out[e.Name()] = []byte(s)
	}
	return out, nil
}

// CheckCorpus decodes every corpus seed with decodeKind (which returns
// the payload kind name of a valid frame) and reports which of the
// wanted kinds have no seed. The empty-payload kind is conventionally
// named "nil".
func CheckCorpus(dir string, decodeKind func([]byte) (string, bool), want []string) (missing []string, err error) {
	seeds, err := ReadCorpus(dir)
	if err != nil {
		return nil, err
	}
	have := map[string]bool{}
	for _, frame := range seeds {
		if kind, ok := decodeKind(frame); ok {
			have[kind] = true
		}
	}
	for _, kind := range want {
		if !have[kind] {
			missing = append(missing, kind)
		}
	}
	sort.Strings(missing)
	return missing, nil
}
