package wireexhaustive_test

import (
	"testing"

	"ocsml/internal/analysis/vetkit/vettest"
	"ocsml/internal/analysis/wireexhaustive"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", wireexhaustive.Analyzer, "wire")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", wireexhaustive.Analyzer, "wireok")
}
