// Package wire is the violating codec fixture: it has the
// appendPayload / decodePayload pair that activates the analyzer.
package wire

// MaxCtlTag bounds the encoded tag length.
const MaxCtlTag = 6

const (
	TagOK    = "CK_OK"
	TagLong  = "CK_TOO_LONG" // want "exceeding the codec.s MaxCtlTag"
	TagSameA = "CK_DUP"      // want "control tag value .CK_DUP. is declared by wire.TagSameA and wire.TagSameB"
	TagSameB = "CK_DUP"
)

// Ping is registered, encoded and decoded: fully conforming.
//
//ocsml:wirepayload
type Ping struct{ Seq int }

// Pong is registered but the codec does not know it.
//
//ocsml:wirepayload
type Pong struct{ Seq int }

// Rogue travels on the wire without being registered.
type Rogue struct{}

func appendPayload(dst []byte, p any) []byte { // want "payload type wire.Pong .*has no case in appendPayload"
	switch p.(type) {
	case nil:
	case Ping:
		dst = append(dst, 1)
	case Rogue: // want "appendPayload encodes wire.Rogue, which is not marked"
		dst = append(dst, 2)
	}
	return dst
}

func decodePayload(kind byte) any { // want "payload type wire.Pong .*is never constructed in decodePayload"
	switch kind {
	case 1:
		return Ping{}
	case 2:
		return Rogue{} // want "decodePayload constructs wire.Rogue, which is not marked"
	}
	return nil
}
