// Package wireok is the conforming codec fixture.
package wireok

// MaxCtlTag bounds the encoded tag length.
const MaxCtlTag = 16

const (
	TagBegin = "CK_BGN"
	TagEnd   = "CK_END"
)

// Ping travels on the wire.
//
//ocsml:wirepayload
type Ping struct{ Seq int }

// Pong travels on the wire.
//
//ocsml:wirepayload
type Pong struct{ Seq int }

func appendPayload(dst []byte, p any) []byte {
	switch p.(type) {
	case nil:
	case Ping:
		dst = append(dst, 1)
	case Pong:
		dst = append(dst, 2)
	}
	return dst
}

func decodePayload(kind byte) any {
	switch kind {
	case 1:
		return Ping{}
	case 2:
		return Pong{}
	}
	return nil
}
