// Package piggybackcomplete implements the piggyback completeness
// analyzer. The paper's consistency argument (§3.2) requires every
// application message to carry the sender's piggybacked state — csn,
// stat, tentSet — and every receiver to examine that state before it
// touches its checkpoint store: the receive rules of Figures 3 and 4
// dispatch on the piggyback, so mutating first applies a rule to stale
// state. The compiler sees none of this (Envelope.Payload is `any`);
// this analyzer proves it interprocedurally:
//
//   - every implementation of protocol.Protocol.OnAppSend must attach
//     the piggyback payload on every path before returning (the engine
//     transmits the envelope right after OnAppSend returns). Attaching
//     means assigning e.Payload, delegating to another OnAppSend with
//     the same envelope (the reliable-transport wrapper), or calling a
//     helper that itself attaches on every path — a must-analysis over
//     the callgraph;
//   - every implementation of protocol.Protocol.OnDeliver must consume
//     the payload — read e.Payload, or hand the envelope to another
//     handler — before any call that (transitively) mutates the
//     checkpoint store (checkpoint.ProcStore Add / MarkStable /
//     TruncateAfter / GC). A helper that receives the envelope inherits
//     the obligation and is checked the same way.
//
// Baselines that carry no piggyback by design (Chandy–Lamport and the
// other index-free protocols) declare it with //ocsml:nopiggyback <why>
// in the doc comment of the implementation type (covering both methods)
// or of one method.
//
// Calls into closures are treated by their lexical position for
// consumption and ignored for mutation: the DeliverApp pre/then hooks
// run at processing time under the engine's control, after the delivery
// path has already examined the piggyback.
package piggybackcomplete

import (
	"go/ast"
	"go/token"
	"go/types"

	"ocsml/internal/analysis/vetkit"
)

// Analyzer is the piggybackcomplete analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "piggybackcomplete",
	Doc:  "OnAppSend attaches the piggyback on every path; OnDeliver consumes it before mutating checkpoint state",
	Run:  run,
}

// mutatorNames are the checkpoint.ProcStore methods that change store
// contents; everything else on ProcStore is a read.
var mutatorNames = map[string]bool{
	"Add": true, "MarkStable": true, "TruncateAfter": true, "GC": true,
}

type key struct {
	fn  *types.Func
	idx int
}

// progFacts holds the whole-program structures shared by every pass.
type progFacts struct {
	env      *types.TypeName // protocol.Envelope
	proto    *types.Interface
	mutators map[*types.Func]bool
	attach   map[*types.Func]map[int]bool // param index -> attaches on every path
	checked  map[key]bool                 // consume-check memo (one report per site)
}

// cache memoizes per program; passes run sequentially.
var cache = map[*vetkit.Program]*progFacts{}

func run(pass *vetkit.Pass) error {
	pf := facts(pass.Program)
	if pf == nil {
		return nil // no protocol package in scope (unrelated fixture tree)
	}
	cg := pass.Program.CallGraph()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok || !implementsProtocol(obj, pf.proto) {
					continue
				}
				if vetkit.CommentGroupHas(ts.Doc, "nopiggyback") || vetkit.CommentGroupHas(gd.Doc, "nopiggyback") {
					continue
				}
				checkImpl(pass, pf, cg, obj)
			}
		}
	}
	return nil
}

// checkImpl verifies both protocol methods of one implementation type.
func checkImpl(pass *vetkit.Pass, pf *progFacts, cg *vetkit.CallGraph, impl *types.TypeName) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || receiverType(obj) != impl {
				continue
			}
			if vetkit.CommentGroupHas(fd.Doc, "nopiggyback") {
				continue
			}
			node := cg.Node(obj)
			if node == nil {
				continue
			}
			idx := envParamIndex(obj, pf.env)
			if idx < 0 {
				continue
			}
			switch fd.Name.Name {
			case "OnAppSend":
				if !pf.attach[obj][idx] {
					pass.Reportf(fd.Name.Pos(), "OnAppSend of %s does not attach the piggyback payload on every path before the envelope is sent (assign e.Payload, delegate, or annotate the type //ocsml:nopiggyback <why>)", impl.Name())
				}
			case "OnDeliver":
				ctx := &consumeCtx{
					pf: pf, cg: cg, checked: pf.checked,
					report: func(pos token.Pos, callee, fname, param string) {
						pass.Reportf(pos, "call to %s in %s mutates checkpoint state before the piggyback payload (%s.Payload) is consumed: the receive rules dispatch on the piggyback", callee, fname, param)
					},
				}
				ctx.checkConsume(node, idx)
			}
		}
	}
}

// facts builds (once per program) the interface/type handles and the
// interprocedural summaries.
func facts(program *vetkit.Program) *progFacts {
	if pf, ok := cache[program]; ok {
		return pf
	}
	cache[program] = nil
	pp := program.PackageBySuffix("internal/protocol")
	if pp == nil {
		return nil
	}
	protoObj, _ := pp.Types.Scope().Lookup("Protocol").(*types.TypeName)
	envObj, _ := pp.Types.Scope().Lookup("Envelope").(*types.TypeName)
	if protoObj == nil || envObj == nil {
		return nil
	}
	iface, ok := protoObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	pf := &progFacts{
		env:     envObj,
		proto:   iface,
		checked: map[key]bool{},
	}
	pf.mutators = computeMutators(program)
	pf.attach = computeAttach(program, envObj)
	cache[program] = pf
	return pf
}

// ---- interprocedural summaries ----

// computeMutators closes the ProcStore mutator methods over the static
// callgraph. Call sites inside closures count: calling a function whose
// closure mutates may mutate.
func computeMutators(program *vetkit.Program) map[*types.Func]bool {
	funcs := program.CallGraph().Funcs()
	mut := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, n := range funcs {
			if mut[n.Obj] {
				continue
			}
			for _, site := range n.Calls {
				if site.Callee == nil {
					continue
				}
				if isBaseMutator(site.Callee.Obj) || mut[site.Callee.Obj] {
					mut[n.Obj] = true
					changed = true
					break
				}
			}
		}
	}
	return mut
}

// isBaseMutator reports a direct ProcStore mutation method.
func isBaseMutator(fn *types.Func) bool {
	if !mutatorNames[fn.Name()] {
		return false
	}
	recv := receiverType(fn)
	return recv != nil && recv.Name() == "ProcStore" &&
		recv.Pkg() != nil && vetkit.PathHasSuffix(recv.Pkg().Path(), "internal/checkpoint")
}

// computeAttach runs the must-attach analysis over every function with
// an *Envelope parameter to a fixpoint: attach[f][i] means every path
// through f assigns Payload on (or delegates) its i-th parameter.
func computeAttach(program *vetkit.Program, env *types.TypeName) map[*types.Func]map[int]bool {
	funcs := program.CallGraph().Funcs()
	attach := map[*types.Func]map[int]bool{}
	type target struct {
		n    *vetkit.FuncNode
		idxs []int
	}
	var targets []target
	for _, n := range funcs {
		var idxs []int
		sig := n.Obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if isEnvPtr(sig.Params().At(i).Type(), env) {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) > 0 {
			targets = append(targets, target{n, idxs})
			attach[n.Obj] = map[int]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range targets {
			got := attachedParams(t.n, t.idxs, attach)
			for _, i := range t.idxs {
				if got[i] && !attach[t.n.Obj][i] {
					attach[t.n.Obj][i] = true
					changed = true
				}
			}
		}
	}
	return attach
}

// attachFact maps each tracked envelope parameter to "attached on every
// path so far". Merge is AND.
type attachFact map[*types.Var]bool

func mergeAttach(a, b attachFact) attachFact {
	out := make(attachFact, len(a))
	for v, t := range a {
		out[v] = t && b[v]
	}
	return out
}

func equalAttach(a, b attachFact) bool {
	for v, t := range a {
		if b[v] != t {
			return false
		}
	}
	return true
}

// attachedParams evaluates one function against the current summaries.
func attachedParams(n *vetkit.FuncNode, idxs []int, summaries map[*types.Func]map[int]bool) map[int]bool {
	sig := n.Obj.Type().(*types.Signature)
	tracked := map[*types.Var]int{}
	for _, i := range idxs {
		if v := sig.Params().At(i); v.Name() != "" && v.Name() != "_" {
			tracked[v] = i
		}
	}
	sites := map[*ast.CallExpr]*vetkit.CallSite{}
	for _, s := range n.Calls {
		sites[s.Call] = s
	}
	info := n.Pkg.Info
	g := vetkit.NewCFG(n.Decl.Body)
	entry := attachFact{}
	for v := range tracked {
		entry[v] = false
	}
	transfer := func(b *vetkit.Block, in attachFact) attachFact {
		f := make(attachFact, len(in))
		for v, t := range in {
			f[v] = t
		}
		for _, node := range b.Nodes {
			if as, ok := node.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Payload" {
						if v := identVar(info, sel.X); v != nil {
							if _, ok := tracked[v]; ok {
								f[v] = true
							}
						}
					}
				}
			}
			// Attach-by-call anywhere in the node; closures do not run
			// before OnAppSend returns, so their interiors are skipped.
			inspectSkipLits(node, func(call *ast.CallExpr) {
				for argIdx, arg := range call.Args {
					v := identVar(info, arg)
					if v == nil {
						continue
					}
					if _, ok := tracked[v]; !ok {
						continue
					}
					if calleeNamed(call, "OnAppSend") {
						f[v] = true
						continue
					}
					if site, ok := sites[call]; ok && site.Callee != nil {
						if s := summaries[site.Callee.Obj]; s != nil && s[argIdx] {
							f[v] = true
						}
					}
				}
			})
		}
		return f
	}
	in := vetkit.Forward(g, entry, transfer, mergeAttach, equalAttach)
	out := map[int]bool{}
	exit, ok := in[g.Exit]
	if !ok {
		// Every path panics: vacuously attached (nothing is ever sent).
		for _, i := range idxs {
			out[i] = true
		}
		return out
	}
	for v, i := range tracked {
		if exit[v] {
			out[i] = true
		}
	}
	return out
}

// ---- consume-before-mutate ----

// A consumeCtx is one consume-check traversal: the analyzer path wires
// report to pass.Reportf and shares pf.checked so each site is flagged
// once across passes; the fact path (Facts) uses a fresh memo and a
// report that only records that a violation exists.
type consumeCtx struct {
	pf      *progFacts
	cg      *vetkit.CallGraph
	checked map[key]bool
	report  func(pos token.Pos, callee, fname, param string)
}

// checkConsume verifies that fn reads the Payload of its idx-th
// parameter (or hands the envelope on) before any checkpoint mutation,
// recursing into helpers that receive the envelope.
func (ctx *consumeCtx) checkConsume(n *vetkit.FuncNode, idx int) {
	k := key{n.Obj, idx}
	if ctx.checked[k] {
		return
	}
	ctx.checked[k] = true
	if n.Decl == nil || n.Decl.Body == nil {
		return
	}
	sig := n.Obj.Type().(*types.Signature)
	tracked := sig.Params().At(idx) // unnamed: nothing can ever consume it
	sites := map[*ast.CallExpr]*vetkit.CallSite{}
	for _, s := range n.Calls {
		sites[s.Call] = s
	}
	info := n.Pkg.Info
	c := &consumeChecker{
		ctx: ctx, pf: ctx.pf, info: info, sites: sites,
		tracked: tracked, fname: n.Obj.Name(),
	}
	g := vetkit.NewCFG(n.Decl.Body)
	transfer := func(b *vetkit.Block, in bool) bool { return c.transfer(b, in, false) }
	in := vetkit.Forward(g, false, transfer,
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a == b })
	for _, b := range g.Blocks {
		entry, ok := in[b]
		if !ok {
			continue
		}
		c.transfer(b, entry, true)
	}
}

type consumeChecker struct {
	ctx     *consumeCtx
	pf      *progFacts
	info    *types.Info
	sites   map[*ast.CallExpr]*vetkit.CallSite
	tracked *types.Var
	fname   string
}

func (c *consumeChecker) transfer(b *vetkit.Block, consumed bool, report bool) bool {
	for _, n := range b.Nodes {
		consumed = c.scan(n, consumed, report, false)
	}
	return consumed
}

// scan walks one node in evaluation order, updating the consumed flag
// and (when report is set) flagging premature mutations.
func (c *consumeChecker) scan(n ast.Node, consumed bool, report, inLit bool) bool {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Consumption inside a closure counts (the hook observes the
			// payload when it runs); mutation inside it is the engine's
			// scheduling, not this delivery path's.
			consumed = c.scan(n.Body, consumed, report, true)
			return false
		case *ast.SelectorExpr:
			if n.Sel.Name == "Payload" && identVar(c.info, n.X) == c.tracked {
				consumed = true
			}
		case *ast.CallExpr:
			// Reads of the payload in the arguments happen before the
			// call: credit them first.
			for _, arg := range n.Args {
				if readsPayload(c.info, arg, c.tracked) {
					consumed = true
				}
			}
			site := c.sites[n]
			argIdx := -1
			for i, arg := range n.Args {
				if identVar(c.info, arg) == c.tracked {
					argIdx = i
					break
				}
			}
			if argIdx >= 0 {
				// The envelope is handed on: the callee inherits the
				// obligation (checked recursively when static) — but only
				// while it is still outstanding. Once the payload has been
				// read, downstream helpers are free to mutate.
				if !consumed && report && site != nil && site.Callee != nil && site.Callee.Decl != nil {
					c.ctx.checkConsume(site.Callee, argIdx)
				}
				consumed = true
				return true
			}
			if !consumed && !inLit && report && site != nil && site.Callee != nil &&
				(isBaseMutator(site.Callee.Obj) || c.pf.mutators[site.Callee.Obj]) {
				c.ctx.report(n.Pos(), site.Callee.Obj.Name(), c.fname, paramName(c.tracked))
			}
		}
		return true
	})
	return consumed
}

// readsPayload reports whether expr contains a read of tracked.Payload.
func readsPayload(info *types.Info, expr ast.Expr, tracked *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Payload" && identVar(info, sel.X) == tracked {
			found = true
		}
		return !found
	})
	return found
}

// ---- exported model facts ----

// An ImplFact summarizes the piggyback obligations of one
// protocol.Protocol implementation for the protomodel extractor.
type ImplFact struct {
	Impl        *types.TypeName
	NoPiggyback bool // //ocsml:nopiggyback on the type (index-free baseline)
	// OnAppSend / OnDeliver are the implementation's handler methods;
	// nil when the type inherits them (embedding) or lacks an envelope
	// parameter.
	OnAppSend *types.Func
	OnDeliver *types.Func
	// Attaches reports OnAppSend proven to attach the piggyback payload
	// on every path; ConsumesFirst reports OnDeliver proven to consume
	// it before any checkpoint-store mutation. Both false when the
	// method is nil or exempted.
	Attaches      bool
	ConsumesFirst bool
}

// Facts computes the piggyback facts for every protocol implementation
// in the program. It shares the analyzer's interprocedural summaries
// but uses its own consume memo, so running it never suppresses (or
// duplicates) analyzer diagnostics.
func Facts(program *vetkit.Program) []ImplFact {
	pf := facts(program)
	if pf == nil {
		return nil
	}
	cg := program.CallGraph()
	var out []ImplFact
	for _, pkg := range program.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok || !implementsProtocol(obj, pf.proto) {
						continue
					}
					fact := ImplFact{
						Impl:        obj,
						NoPiggyback: vetkit.CommentGroupHas(ts.Doc, "nopiggyback") || vetkit.CommentGroupHas(gd.Doc, "nopiggyback"),
					}
					fillMethodFacts(&fact, pf, cg, pkg)
					out = append(out, fact)
				}
			}
		}
	}
	return out
}

// fillMethodFacts locates the implementation's handler methods in its
// declaring package and evaluates the attach/consume summaries.
func fillMethodFacts(fact *ImplFact, pf *progFacts, cg *vetkit.CallGraph, pkg *vetkit.Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || receiverType(obj) != fact.Impl {
				continue
			}
			exempt := vetkit.CommentGroupHas(fd.Doc, "nopiggyback")
			idx := envParamIndex(obj, pf.env)
			switch fd.Name.Name {
			case "OnAppSend":
				fact.OnAppSend = obj
				if !exempt && idx >= 0 {
					fact.Attaches = pf.attach[obj][idx]
				}
			case "OnDeliver":
				fact.OnDeliver = obj
				if exempt || idx < 0 {
					continue
				}
				node := cg.Node(obj)
				if node == nil {
					continue
				}
				ok := true
				ctx := &consumeCtx{
					pf: pf, cg: cg, checked: map[key]bool{},
					report: func(token.Pos, string, string, string) { ok = false },
				}
				ctx.checkConsume(node, idx)
				fact.ConsumesFirst = ok
			}
		}
	}
}

// ---- small helpers ----

func implementsProtocol(obj *types.TypeName, iface *types.Interface) bool {
	t := obj.Type()
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// receiverType returns the named type a method is declared on, nil for
// plain functions.
func receiverType(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// envParamIndex finds the first *protocol.Envelope parameter.
func envParamIndex(fn *types.Func, env *types.TypeName) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isEnvPtr(sig.Params().At(i).Type(), env) {
			return i
		}
	}
	return -1
}

func isEnvPtr(t types.Type, env *types.TypeName) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj() == env
}

// identVar resolves a (possibly parenthesized) identifier expression to
// its variable, nil otherwise.
func identVar(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// calleeNamed reports a syntactic call to a function or method with the
// given name (covers interface dispatch, where there is no static node).
func calleeNamed(call *ast.CallExpr, name string) bool {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name == name
	case *ast.SelectorExpr:
		return f.Sel.Name == name
	}
	return false
}

// inspectSkipLits visits every call expression under n outside nested
// function literals.
func inspectSkipLits(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// paramName renders the tracked parameter for diagnostics.
func paramName(v *types.Var) string {
	if v.Name() == "" {
		return "_"
	}
	return v.Name()
}
