package piggybackcomplete_test

import (
	"testing"

	"ocsml/internal/analysis/piggybackcomplete"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", piggybackcomplete.Analyzer, "pb/bad")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", piggybackcomplete.Analyzer, "pb/good")
}
