// Package bad exercises every piggybackcomplete finding class.
package bad

import (
	"pb/internal/checkpoint"
	"pb/internal/protocol"
)

// NoAttach never attaches a payload and does not declare nopiggyback.
type NoAttach struct{ chk *checkpoint.ProcStore }

func (p *NoAttach) OnAppSend(e *protocol.Envelope) {} // want `OnAppSend of NoAttach does not attach the piggyback payload on every path`

func (p *NoAttach) OnDeliver(e *protocol.Envelope) { _ = e.Payload }

// SomePath attaches on only one branch.
type SomePath struct{ flag bool }

func (p *SomePath) OnAppSend(e *protocol.Envelope) { // want `OnAppSend of SomePath does not attach the piggyback payload on every path`
	if p.flag {
		e.Payload = 1
	}
}

func (p *SomePath) OnDeliver(e *protocol.Envelope) { _ = e.Payload }

// MutateFirst adds a checkpoint before reading the payload.
type MutateFirst struct{ chk *checkpoint.ProcStore }

func (p *MutateFirst) OnAppSend(e *protocol.Envelope) { e.Payload = 1 }

func (p *MutateFirst) OnDeliver(e *protocol.Envelope) {
	p.chk.Add(checkpoint.Record{}) // want `call to Add in OnDeliver mutates checkpoint state before the piggyback payload`
	_ = e.Payload
}

// ViaHelper mutates through a helper, found interprocedurally.
type ViaHelper struct{ chk *checkpoint.ProcStore }

func (p *ViaHelper) OnAppSend(e *protocol.Envelope) { e.Payload = 1 }

func (p *ViaHelper) OnDeliver(e *protocol.Envelope) {
	p.take() // want `call to take in OnDeliver mutates checkpoint state before the piggyback payload`
	_ = e.Payload
}

func (p *ViaHelper) take() { p.chk.Add(checkpoint.Record{}) }

// HelperMutates hands the envelope to a helper that itself mutates
// before consuming: the helper inherits the obligation.
type HelperMutates struct{ chk *checkpoint.ProcStore }

func (p *HelperMutates) OnAppSend(e *protocol.Envelope) { e.Payload = 1 }

func (p *HelperMutates) OnDeliver(e *protocol.Envelope) { p.handle(e) }

func (p *HelperMutates) handle(e *protocol.Envelope) {
	p.chk.Add(checkpoint.Record{}) // want `call to Add in handle mutates checkpoint state before the piggyback payload`
	_ = e.Payload
}
