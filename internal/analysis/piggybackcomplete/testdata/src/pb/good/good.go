// Package good holds only conforming protocol implementations.
package good

import (
	"pb/internal/checkpoint"
	"pb/internal/protocol"
)

type pig struct{ csn int }

// Full attaches on every path and consumes before mutating.
type Full struct {
	chk *checkpoint.ProcStore
	csn int
}

func (p *Full) OnAppSend(e *protocol.Envelope) { e.Payload = pig{csn: p.csn} }

func (p *Full) OnDeliver(e *protocol.Envelope) {
	pb := e.Payload.(pig)
	if pb.csn > p.csn {
		p.chk.Add(checkpoint.Record{Seq: pb.csn})
	}
}

// Wrapper delegates both methods to an inner protocol, like the
// reliable transport.
type Wrapper struct{ inner protocol.Protocol }

func (w *Wrapper) OnAppSend(e *protocol.Envelope) { w.inner.OnAppSend(e) }

func (w *Wrapper) OnDeliver(e *protocol.Envelope) { w.inner.OnDeliver(e) }

// Baseline carries no piggyback by design and says so.
//
//ocsml:nopiggyback index-free baseline; consistency comes from markers, not indices
type Baseline struct{ chk *checkpoint.ProcStore }

func (b *Baseline) OnAppSend(e *protocol.Envelope) {}

func (b *Baseline) OnDeliver(e *protocol.Envelope) {
	b.chk.Add(checkpoint.Record{})
}

// HelperConsumes hands the envelope to a helper that consumes first.
type HelperConsumes struct{ chk *checkpoint.ProcStore }

func (p *HelperConsumes) OnAppSend(e *protocol.Envelope) { e.Payload = pig{} }

func (p *HelperConsumes) OnDeliver(e *protocol.Envelope) { p.handle(e) }

func (p *HelperConsumes) handle(e *protocol.Envelope) {
	pb := e.Payload.(pig)
	p.chk.Add(checkpoint.Record{Seq: pb.csn})
}

// AttachHelper attaches through a helper on every path.
type AttachHelper struct{ csn int }

func (p *AttachHelper) OnAppSend(e *protocol.Envelope) { p.stamp(e) }

func (p *AttachHelper) OnDeliver(e *protocol.Envelope) { _ = e.Payload }

func (p *AttachHelper) stamp(e *protocol.Envelope) { e.Payload = pig{csn: p.csn} }

// PostHook consumes up front, then hands the envelope to a helper
// that mutates: the obligation was discharged before the hand-off,
// mirroring the real afterProcess hook.
type PostHook struct{ chk *checkpoint.ProcStore }

func (p *PostHook) OnAppSend(e *protocol.Envelope) { e.Payload = pig{} }

func (p *PostHook) OnDeliver(e *protocol.Envelope) {
	pb := e.Payload.(pig)
	p.after(pb.csn, e)
}

func (p *PostHook) after(csn int, e *protocol.Envelope) {
	p.chk.Add(checkpoint.Record{Seq: csn})
	_ = e.Src
}

// Guarded panics on the impossible arm and mutates only after the
// payload dispatch, mirroring the real receive rules.
type Guarded struct {
	chk *checkpoint.ProcStore
	csn int
}

func (p *Guarded) OnAppSend(e *protocol.Envelope) {
	if e.Kind != 0 {
		panic("control envelope in OnAppSend")
	}
	e.Payload = pig{csn: p.csn}
}

func (p *Guarded) OnDeliver(e *protocol.Envelope) {
	pb, ok := e.Payload.(pig)
	if !ok {
		panic("missing piggyback")
	}
	switch {
	case pb.csn > p.csn:
		p.chk.Add(checkpoint.Record{Seq: pb.csn})
	default:
		p.chk.MarkStable(pb.csn)
	}
}
