// Package protocol is a minimal mirror of the real protocol package:
// the analyzer locates Protocol and Envelope by name in the package
// whose import path ends in internal/protocol.
package protocol

// Envelope is a message with a protocol piggyback slot.
type Envelope struct {
	Kind    int
	Src     int
	Payload any
}

// Protocol is the checkpointing algorithm interface.
type Protocol interface {
	OnAppSend(e *Envelope)
	OnDeliver(e *Envelope)
}
