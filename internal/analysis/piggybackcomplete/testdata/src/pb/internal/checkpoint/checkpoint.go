// Package checkpoint is a minimal mirror of the real checkpoint store:
// the analyzer treats ProcStore's Add/MarkStable/TruncateAfter/GC as
// checkpoint-state mutations.
package checkpoint

// Record is one checkpoint.
type Record struct{ Seq int }

// ProcStore holds one process's checkpoints.
type ProcStore struct{ recs []Record }

// Add appends a checkpoint record.
func (ps *ProcStore) Add(r Record) { ps.recs = append(ps.recs, r) }

// MarkStable marks a checkpoint durable.
func (ps *ProcStore) MarkStable(seq int) {}

// Len is a read, not a mutation.
func (ps *ProcStore) Len() int { return len(ps.recs) }
