// Package lockdiscipline implements the locking-convention analyzer.
// The transport, fsstore, live and metrics packages share one
// convention, previously enforced only by review:
//
//   - a function whose name ends in "Locked" (or whose doc comment
//     carries //ocsml:locked) asserts its caller already holds the
//     receiver's mutex — so such a function must not acquire that mutex
//     itself (instant deadlock on sync.Mutex), and every call to one
//     must be made with the lock visibly held;
//   - a struct field annotated //ocsml:guardedby <mutexField> may only
//     be accessed while that mutex is held.
//
// "Visibly held" is a lexical judgment within one function body: the
// access must follow a <base>.<mu>.Lock() / RLock() with no intervening
// non-deferred Unlock on the same mutex, or the enclosing function must
// itself be *Locked / //ocsml:locked on the same receiver. Two
// refinements keep the lexical model honest on real code:
//
//   - an Unlock inside a block that terminates (its statement list ends
//     in return, panic, break or continue) only releases the lock for
//     that block — the fall-through path after the block still holds it
//     (the `if done { mu.Unlock(); return }` idiom);
//   - a function literal starts from the lock state at its definition
//     point, which accepts closures invoked synchronously under the
//     lock (sort.Search, sort.Slice); a closure that instead escapes to
//     another goroutine and re-locks is also accepted, because Lock on
//     an already-held mutex is not reported outside *Locked scopes.
//
// Accesses through a value constructed in the same function (a
// composite literal that has not escaped yet) are exempt — constructors
// initialize guarded fields before the value is shared. A deliberate
// exception carries //ocsml:nolock <why> on the access line or the
// line above.
//
// This is a lint, not a proof: it cannot see lock state across call
// boundaries (that is exactly what the *Locked naming convention
// re-establishes) and treats RLock as sufficient for writes. The race
// detector covers what the convention cannot.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ocsml/internal/analysis/vetkit"
)

// Analyzer is the lockdiscipline analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "lockdiscipline",
	Doc:  "enforce the *Locked naming convention and //ocsml:guardedby field annotations",
	Run:  run,
}

// lockMethods classifies sync.Mutex / sync.RWMutex method names.
var lockMethods = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}
var unlockMethods = map[string]bool{
	"Unlock": true, "RUnlock": true,
}

const (
	evLock = iota
	evUnlock
	evGuardedAccess
	evLockedCall
	evSnapshot // entering a terminating block: save the held set
	evRestore  // leaving a terminating block: the fall-through path resumes from the snapshot
	evFuncLit  // a nested closure: check it against the current held set
)

type event struct {
	pos    token.Pos
	kind   int
	base   string // receiver path of the mutex or guarded value, e.g. "s" or "c.inner"
	mutex  string // mutex field name (evLock/evUnlock: the locked field; evGuardedAccess: the required guard)
	what   string // diagnostic subject (field or method name)
	defer_ bool
	lit    *ast.FuncLit // evFuncLit
}

func run(pass *vetkit.Pass) error {
	guarded := collectGuarded(pass)
	dirs := pass.Program.Directives()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverName(fd)
			assumed := ""
			if strings.HasSuffix(fd.Name.Name, "Locked") || vetkit.CommentGroupHas(fd.Doc, "locked") {
				assumed = recv
			}
			checkScope(pass, dirs, guarded, fd.Body, scopeInfo{
				name:    fd.Name.Name,
				assumed: assumed,
			}, nil, nil)
		}
	}
	return nil
}

type scopeInfo struct {
	name    string
	assumed string // receiver name assumed locked ("" = none)
	closure bool   // scope is a FuncLit: inherit state, but never report self-deadlock
}

// collectGuarded builds the program-wide registry of annotated fields:
// field object -> name of the mutex field guarding it.
func collectGuarded(pass *vetkit.Pass) map[types.Object]string {
	out := map[types.Object]string{}
	for _, pkg := range pass.Program.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					mu := guardDirective(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out[obj] = mu
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// guardDirective extracts the //ocsml:guardedby argument from a struct
// field's doc or trailing comment (default mutex name: "mu").
func guardDirective(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if rest, ok := strings.CutPrefix(text, "ocsml:guardedby"); ok {
				if arg := strings.TrimSpace(rest); arg != "" {
					return arg
				}
				return "mu"
			}
		}
	}
	return ""
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// checkScope analyzes one function body (FuncDecl or FuncLit). Nested
// literals are deferred to evFuncLit events and checked recursively with
// the lock state at their definition point. initHeld and initConstructed
// seed a closure's state from its enclosing scope.
func checkScope(pass *vetkit.Pass, dirs *vetkit.Directives, guarded map[types.Object]string, body *ast.BlockStmt, scope scopeInfo, initHeld map[string]int, initConstructed map[string]bool) {
	var events []event
	constructed := map[string]bool{} // locals built from composite literals in this scope
	for k, v := range initConstructed {
		constructed[k] = v
	}

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			events = append(events, event{pos: n.Pos(), kind: evFuncLit, lit: n})
			return // walked later, with the held set at this point
		case *ast.BlockStmt:
			if terminates(n.List) {
				events = append(events, event{pos: n.Lbrace, kind: evSnapshot})
				events = append(events, event{pos: n.End(), kind: evRestore})
			}
		case *ast.CaseClause:
			if terminates(n.Body) {
				events = append(events, event{pos: n.Colon, kind: evSnapshot})
				events = append(events, event{pos: n.End(), kind: evRestore})
			}
		case *ast.CommClause:
			if terminates(n.Body) {
				events = append(events, event{pos: n.Colon, kind: evSnapshot})
				events = append(events, event{pos: n.End(), kind: evRestore})
			}
		case *ast.DeferStmt:
			walk(n.Call, true)
			return
		case *ast.AssignStmt:
			// x := &T{...} / T{...} / new(T): x has not escaped yet.
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if isFreshValue(n.Rhs[i]) {
						constructed[id.Name] = true
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				switch {
				case lockMethods[name] || unlockMethods[name]:
					if base, mu, ok := mutexOperand(pass, sel.X); ok {
						kind := evLock
						if unlockMethods[name] {
							kind = evUnlock
						}
						events = append(events, event{
							pos: n.Pos(), kind: kind, base: base, mutex: mu, defer_: inDefer,
						})
					}
				case strings.HasSuffix(name, "Locked"):
					events = append(events, event{
						pos: n.Pos(), kind: evLockedCall,
						base: exprPath(sel.X), what: name,
					})
				}
			}
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.Uses[n.Sel]; obj != nil {
				if mu, ok := guarded[obj]; ok {
					events = append(events, event{
						pos: n.Sel.Pos(), kind: evGuardedAccess,
						base: exprPath(n.X), mutex: mu, what: obj.Name(),
					})
				}
			}
		}
		// Generic recursion over children.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			walk(child, inDefer)
			return false
		})
	}
	for _, stmt := range body.List {
		walk(stmt, false)
	}

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]int{} // "base.mutex" -> depth
	for k, v := range initHeld {
		held[k] = v
	}
	var snapshots []map[string]int
	for _, ev := range events {
		key := ev.base + "." + ev.mutex
		switch ev.kind {
		case evSnapshot:
			snapshots = append(snapshots, cloneHeld(held))
		case evRestore:
			held = snapshots[len(snapshots)-1]
			snapshots = snapshots[:len(snapshots)-1]
		case evFuncLit:
			name := scope.name
			if !strings.HasSuffix(name, " (closure)") {
				name += " (closure)"
			}
			checkScope(pass, dirs, guarded, ev.lit.Body, scopeInfo{
				name: name, assumed: scope.assumed, closure: true,
			}, cloneHeld(held), constructed)
		case evLock:
			if ev.defer_ {
				continue
			}
			if scope.assumed != "" && ev.base == scope.assumed && !scope.closure {
				pass.Reportf(ev.pos, "%s is declared *Locked but acquires %s.%s itself: the caller already holds it (self-deadlock on sync.Mutex)", scope.name, ev.base, ev.mutex)
				continue
			}
			held[key]++
		case evUnlock:
			if ev.defer_ {
				continue // releases at return; lock stays held for the rest of the body
			}
			if held[key] > 0 {
				held[key]--
			}
		case evGuardedAccess:
			if ev.base == "" || constructed[rootIdent(ev.base)] {
				continue
			}
			if scope.assumed != "" && ev.base == scope.assumed {
				continue
			}
			if held[key] > 0 {
				continue
			}
			if dirs.Has(ev.pos, "nolock") {
				continue
			}
			pass.Reportf(ev.pos, "%s.%s is guarded by %s.%s, which is not held in %s: acquire the mutex, move the access into a *Locked helper, or annotate //ocsml:nolock <why>", ev.base, ev.what, ev.base, ev.mutex, scope.name)
		case evLockedCall:
			if ev.base == "" || constructed[rootIdent(ev.base)] {
				continue
			}
			if scope.assumed != "" && ev.base == scope.assumed {
				continue
			}
			if anyHeld(held, ev.base) {
				continue
			}
			if dirs.Has(ev.pos, "nolock") {
				continue
			}
			pass.Reportf(ev.pos, "%s.%s called without %s's mutex held in %s: *Locked methods require the caller to hold the lock", ev.base, ev.what, ev.base, scope.name)
		}
	}
}

func cloneHeld(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// terminates reports whether a statement list ends on a statement that
// leaves the enclosing block: return, break/continue/goto, or a call to
// panic. An Unlock inside such a list releases the lock only for that
// exit path, not for the code after the block.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func anyHeld(held map[string]int, base string) bool {
	for key, depth := range held {
		if depth > 0 && strings.HasPrefix(key, base+".") {
			return true
		}
	}
	return false
}

// mutexOperand decomposes the receiver of a Lock/Unlock call into
// (base path, mutex field name). It accepts `x.mu.Lock()` shapes where
// the operand is a selector to a sync.Mutex / sync.RWMutex (or any type
// embedding one), and `mu.Lock()` on a bare identifier.
func mutexOperand(pass *vetkit.Pass, x ast.Expr) (base, mutex string, ok bool) {
	if !isMutexType(pass, x) {
		return "", "", false
	}
	switch x := x.(type) {
	case *ast.SelectorExpr:
		return exprPath(x.X), x.Sel.Name, exprPath(x.X) != ""
	case *ast.Ident:
		return "", x.Name, true // package-level or local mutex: base is empty
	}
	return "", "", false
}

func isMutexType(pass *vetkit.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// exprPath renders a chain of identifiers ("c", "c.inner") or "" when
// the expression is anything more complex (an index, a call result) —
// such bases are not tracked.
func exprPath(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprPath(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return exprPath(x.X)
	}
	return ""
}

func rootIdent(path string) string {
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i]
	}
	return path
}

// isFreshValue reports whether an expression constructs a brand-new
// value: a composite literal, &composite, or new(T).
func isFreshValue(x ast.Expr) bool {
	switch x := x.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}
