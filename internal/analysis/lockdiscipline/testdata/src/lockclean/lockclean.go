// Package lockclean is the conforming fixture: every guarded access is
// visibly under the mutex, and *Locked helpers are called locked.
package lockclean

import "sync"

type table struct {
	mu sync.Mutex
	//ocsml:guardedby mu
	m map[string]int64
}

func newTable() *table {
	t := &table{}
	t.m = map[string]int64{}
	return t
}

func (t *table) add(k string, d int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bumpLocked(k, d)
}

func (t *table) bumpLocked(k string, d int64) {
	t.m[k] += d
}

func (t *table) snapshot() map[string]int64 {
	out := map[string]int64{}
	t.mu.Lock()
	for k, v := range t.m {
		out[k] = v
	}
	t.mu.Unlock()
	return out
}
