// Package lock is the violating fixture for the lock-discipline
// analyzer.
package lock

import (
	"sort"
	"sync"
)

type counter struct {
	mu sync.Mutex
	//ocsml:guardedby mu
	n int
	//ocsml:guardedby mu
	samples []int
}

func (c *counter) bad() int {
	return c.n // want "c.n is guarded by c.mu, which is not held in bad"
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) earlyExit(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return 0
	}
	n := c.n // the unlock above is on an exit path: still held here
	c.mu.Unlock()
	return n
}

func (c *counter) afterUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "c.n is guarded by c.mu, which is not held in afterUnlock"
}

func (c *counter) unlockThenUseOnExitPath(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return c.n // want "c.n is guarded by c.mu, which is not held in unlockThenUseOnExitPath"
	}
	c.mu.Unlock()
	return 0
}

func (c *counter) search(v int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Closure invoked synchronously under the lock: inherits the state.
	return sort.Search(len(c.samples), func(i int) bool { return c.samples[i] >= v })
}

func (c *counter) escapes() func() int {
	return func() int { return c.n } // want "c.n is guarded by c.mu, which is not held in escapes .closure."
}

func (c *counter) addLocked(d int) { c.n += d }

func (c *counter) bumpLocked() {
	c.mu.Lock() // want "bumpLocked is declared .Locked but acquires c.mu itself"
	c.n++
}

func (c *counter) callWithoutLock() {
	c.addLocked(1) // want "c.addLocked called without c's mutex held"
}

func (c *counter) callWithLock() {
	c.mu.Lock()
	c.addLocked(1)
	c.mu.Unlock()
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // constructor: c has not escaped yet
	return c
}

func (c *counter) declaredException() int {
	return c.n //ocsml:nolock fixture: documented exception
}
