package lockdiscipline_test

import (
	"testing"

	"ocsml/internal/analysis/lockdiscipline"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", lockdiscipline.Analyzer, "lock")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", lockdiscipline.Analyzer, "lockclean")
}
