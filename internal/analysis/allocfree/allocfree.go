// Package allocfree proves the annotated hot paths allocation-free by
// a stdlib-only escape approximation. PR 7's zero-alloc wire path is
// guarded by runtime alloc gates (testing.AllocsPerRun), which race
// builds and soak tags routinely skip; allocfree makes the property a
// compile-time check on every vet run.
//
// A function marked
//
//	//ocsml:hotpath
//
// in its doc comment is a root. The analyzer checks the root and every
// function it statically calls (transitively, within the program) for
// operations that allocate or may allocate:
//
//   - heap-escaping composite literals (&T{...}), and slice or map
//     literals;
//   - make, new, and goroutine spawns;
//   - append that starts from a fresh slice (nil, a literal, a make) or
//     binds its result to a new variable — `x = append(x, ...)` and
//     appends onto a reslice of a reused buffer (`append(buf[:0], ...)`)
//     are the amortized pooled idiom and pass;
//   - closure creation (captured variables escape), except literals
//     invoked or deferred in place;
//   - fmt and errors.New calls;
//   - string<->[]byte/[]rune conversions and non-constant string
//     concatenation;
//   - interface boxing: passing a non-pointer-shaped value (anything
//     but a pointer, chan, map, or func) as an interface argument.
//
// A cold path inside a hot function — error formatting for corrupt
// input, a once-per-connection fallback — opts out per line with
// //ocsml:alloc <why>; a whole callee opts out of the transitive check
// with //ocsml:alloc in its doc comment, and calls to such a callee are
// themselves cold (the boxing of their arguments is not flagged).
// Functions without source (the stdlib) are trusted: the binary.Append*
// family appends into caller buffers and is covered by the runtime
// gates.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ocsml/internal/analysis/vetkit"
)

// Analyzer is the allocfree analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "allocfree",
	Doc:  "//ocsml:hotpath functions and their callees do not allocate",
	Run:  run,
}

type finding struct {
	pkg *types.Package
	pos token.Pos
	msg string
}

type progFacts struct {
	findings []finding
}

var cache = map[*vetkit.Program]*progFacts{}

func run(pass *vetkit.Pass) error {
	pf, ok := cache[pass.Program]
	if !ok {
		pf = build(pass.Program)
		cache[pass.Program] = pf
	}
	for _, f := range pf.findings {
		if f.pkg == pass.Pkg {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// build walks every hot path once per program.
func build(prog *vetkit.Program) *progFacts {
	pf := &progFacts{}
	at := prog.Attribution()
	cg := prog.CallGraph()
	dirs := prog.Directives()

	// Roots: //ocsml:hotpath functions, in deterministic order.
	type root struct {
		fn   *types.Func
		name string
	}
	var roots []root
	var paths []string
	for path := range prog.Packages {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pkg := prog.Packages[path]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if !vetkit.CommentGroupHas(fd.Doc, "hotpath") && !dirs.Has(fd.Pos(), "hotpath") {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, root{fn, displayName(fn)})
				}
			}
		}
	}

	// BFS over static calls; each function is checked once, attributed
	// to the first root that reaches it.
	checked := map[*types.Func]bool{}
	queue := roots
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		if checked[r.fn] {
			continue
		}
		checked[r.fn] = true
		node := cg.Node(r.fn)
		if node == nil || node.Decl == nil {
			continue
		}
		body := at.ByNode[node.Decl]
		for _, callee := range pf.checkBodyTree(prog, at, dirs, body, r.name) {
			if !checked[callee] {
				queue = append(queue, root{callee, r.name})
			}
		}
	}
	return pf
}

// checkBodyTree flags allocation sites in one body and the literals
// that run in its context, returning the static callees to descend
// into.
func (pf *progFacts) checkBodyTree(prog *vetkit.Program, at *vetkit.Attribution, dirs *vetkit.Directives, b *vetkit.Body, rootName string) []*types.Func {
	if b == nil {
		return nil
	}
	var callees []*types.Func
	var root *ast.BlockStmt
	if b.Lit != nil {
		root = b.Lit.Body
	} else {
		root = b.Decl.Body
	}
	pf.checkBlock(prog, at, dirs, b, root, rootName)
	cg := prog.CallGraph()
	for _, c := range b.Calls {
		if c.Callee == nil || c.Dynamic {
			continue
		}
		node := cg.Node(c.Callee)
		if node == nil || node.Decl == nil {
			continue // no source: stdlib, trusted
		}
		if vetkit.CommentGroupHas(node.Decl.Doc, "alloc") {
			continue // annotated cold callee
		}
		callees = append(callees, c.Callee)
	}
	for _, nested := range at.Bodies {
		if nested.Parent == b && (nested.Use == vetkit.UseCall || nested.Use == vetkit.UseDefer) {
			callees = append(callees, pf.checkBodyTree(prog, at, dirs, nested, rootName)...)
		}
	}
	return callees
}

// checkBlock flags the allocation sites lexically inside one body.
func (pf *progFacts) checkBlock(prog *vetkit.Program, at *vetkit.Attribution, dirs *vetkit.Directives, b *vetkit.Body, root *ast.BlockStmt, rootName string) {
	if root == nil {
		return
	}
	pkg := b.Pkg
	flag := func(pos token.Pos, what string) {
		if dirs.Has(pos, "alloc") {
			return
		}
		pf.findings = append(pf.findings, finding{pkg.Types, pos,
			what + " in //ocsml:hotpath " + rootName + " (//ocsml:alloc <why> to allow a cold path)"})
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if nb := at.ByNode[n]; nb != nil && (nb.Use == vetkit.UseCall || nb.Use == vetkit.UseDefer) {
				return false // runs in place; checked as its own body
			}
			flag(n.Pos(), "closure allocates")
			return false
		case *ast.GoStmt:
			flag(n.Pos(), "spawning a goroutine allocates")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					flag(n.Pos(), "composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			switch pkg.Info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				flag(n.Pos(), "slice literal allocates")
			case *types.Map:
				flag(n.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := pkg.Info.Types[n]
				if basic, ok := tv.Type.Underlying().(*types.Basic); ok &&
					basic.Info()&types.IsString != 0 && tv.Value == nil {
					flag(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			pf.checkCall(prog, pkg, n, flag)
		}
		return true
	})
	// The fresh-append rule needs assignment context, which Inspect has
	// already discarded; re-walk statements.
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for _, rhs := range n.Rhs {
				if call := appendCall(pkg, rhs); call != nil && !freshSlice(pkg, call.Args[0]) {
					if _, resliced := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !resliced {
						flag(call.Pos(), "append bound to a new variable allocates (reslice a reused buffer or assign in place)")
					}
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if call := appendCall(pkg, v); call != nil && !freshSlice(pkg, call.Args[0]) {
					if _, resliced := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !resliced {
						flag(call.Pos(), "append bound to a new variable allocates (reslice a reused buffer or assign in place)")
					}
				}
			}
		}
		return true
	})
}

// checkCall flags allocating calls: builtins, fmt/errors, string
// conversions, fresh appends, and interface boxing of the arguments.
func (pf *progFacts) checkCall(prog *vetkit.Program, pkg *vetkit.Package, call *ast.CallExpr, flag func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && freshSlice(pkg, call.Args[0]) {
					flag(call.Pos(), "append to a fresh slice allocates")
				}
			}
			return
		}
	}
	// Conversions.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := pkg.Info.Types[call.Args[0]].Type
		if from != nil && stringBytesConversion(to, from.Underlying()) {
			flag(call.Pos(), "string conversion allocates")
		}
		return
	}
	// fmt / errors.New.
	if callee := vetkit.ResolveFuncExpr(pkg, nil, fun); callee != nil {
		if callee.Pkg() != nil {
			switch {
			case callee.Pkg().Path() == "fmt":
				flag(call.Pos(), "fmt."+callee.Name()+" allocates")
				return
			case callee.Pkg().Path() == "errors" && callee.Name() == "New":
				flag(call.Pos(), "errors.New allocates")
				return
			}
		}
		// Calls to an //ocsml:alloc callee are cold end to end: its body
		// is skipped by the transitive walk, and the boxing of its
		// arguments belongs to the same cold path.
		if node := prog.CallGraph().Node(callee); node != nil && node.Decl != nil &&
			vetkit.CommentGroupHas(node.Decl.Doc, "alloc") {
			return
		}
	}
	// Interface boxing of arguments.
	sig, ok := pkg.Info.Types[fun].Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...) passes the slice through unboxed
		}
		param := paramType(sig, i)
		if param == nil || !types.IsInterface(param.Underlying()) {
			continue
		}
		at := pkg.Info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at.Underlying()) {
			continue
		}
		if pkg.Info.Types[arg].Value != nil {
			continue // constants box without a per-call allocation
		}
		flag(arg.Pos(), "argument boxes a non-pointer value into an interface")
	}
}

// stringBytesConversion reports a conversion between string and
// []byte/[]rune in either direction — the copying, allocating kind.
func stringBytesConversion(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytesOrRunes := func(t types.Type) bool {
		sl, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isBytesOrRunes(from)) || (isBytesOrRunes(to) && isStr(from))
}

// appendCall returns e as an append builtin call, or nil.
func appendCall(pkg *vetkit.Package, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return call
}

// freshSlice reports whether the first append argument is a freshly
// allocated slice: nil, a literal, or a make call.
func freshSlice(pkg *vetkit.Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
			_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}

func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// pointerShaped reports types stored directly in an interface word
// without allocation.
func pointerShaped(t types.Type) bool {
	switch t := t.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		// Untyped nil converts to a nil interface: no box.
		return t.Kind() == types.UnsafePointer || t.Kind() == types.UntypedNil
	}
	return false
}

// displayName renders Recv.name for methods, name for functions.
func displayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
