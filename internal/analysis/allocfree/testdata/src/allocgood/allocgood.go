// Package allocgood is a hot path written in the zero-alloc idiom:
// in-place appends, pooled reslices, pointer-shaped interface args,
// and explicitly annotated cold paths.
package allocgood

type enc struct {
	buf     []byte
	scratch []byte
	n       int
}

func sink(v interface{})        { _ = v }
func sinkAll(vs ...interface{}) { _ = vs }

// Append is the steady-state encode path.
//
//ocsml:hotpath
func (e *enc) Append(dst []byte, v uint64) []byte {
	dst = append(dst, byte(v))        // assign-in-place append
	e.buf = append(e.buf, byte(v>>8)) // in-place onto a field
	tmp := append(e.scratch[:0], dst...)
	e.scratch = tmp // pooled reslice idiom
	dst = appendVarint(dst, v)
	sink(&e.n) // pointer-shaped: stored in the interface word
	sink(64)   // constant: no per-call box
	sinkAll(nil)
	coldf(v) // boxing into an //ocsml:alloc callee is part of the cold path
	func() { e.n++ }()
	defer func() { e.n-- }()
	if v == 0 {
		e.fallback()
		hdr := make([]byte, 8) //ocsml:alloc one-time header on reconnect
		_ = hdr
	}
	return dst
}

// appendVarint is a clean transitive callee.
func appendVarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// fallback rebuilds the scratch buffer after a corrupt frame; it is
// off the steady-state path by design.
//
//ocsml:alloc once per corrupt frame, not steady-state
func (e *enc) fallback() {
	e.scratch = make([]byte, 0, 64)
}

// coldHelper allocates freely: it is not reachable from any hot path.
func coldHelper() []byte {
	return make([]byte, 32)
}

// coldf is an annotated cold diagnostics sink: its body and the boxing
// of its arguments at call sites are both exempt.
//
//ocsml:alloc cold diagnostics helper
func coldf(args ...interface{}) {
	_ = args
}
