// Package allocbad marks a hot path and then allocates in every way
// the analyzer knows about, directly and one call deep.
package allocbad

import "fmt"

type header struct{ seq uint64 }

type enc struct {
	buf []byte
	tag string
	id  int
}

func sink(v interface{}) { _ = v }

// Encode is the deliberately allocating hot path.
//
//ocsml:hotpath
func (e *enc) Encode(v int) []byte {
	h := &header{seq: 1}            // want `composite literal escapes to the heap`
	scratch := make([]byte, 0, 16)  // want `make allocates`
	grown := append(e.buf, byte(v)) // want `append bound to a new variable allocates`
	msg := fmt.Sprintf("enc %d", v) // want `fmt.Sprintf allocates`
	sink(v)                         // want `argument boxes a non-pointer value into an interface`
	name := e.tag + msg             // want `string concatenation allocates`
	bs := []byte(msg)               // want `string conversion allocates`
	fn := func() { e.id++ }         // want `closure allocates`
	go fn()                         // want `spawning a goroutine allocates`
	e.deep(v)
	_, _, _, _, _ = h, scratch, grown, name, bs
	return e.buf
}

// deep is reached transitively from the root.
func (e *enc) deep(v int) {
	e.buf = append([]byte{}, byte(v)) // want `append to a fresh slice allocates` `slice literal allocates`
}
