package allocfree_test

import (
	"testing"

	"ocsml/internal/analysis/allocfree"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", allocfree.Analyzer, "allocbad")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", allocfree.Analyzer, "allocgood")
}
