package errflow_test

import (
	"testing"

	"ocsml/internal/analysis/errflow"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", errflow.Analyzer, "errbad")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", errflow.Analyzer, "errgood")
}
