// Package errbad exercises every errflow finding class: durability
// errors discarded, overwritten, or pending on some path.
package errbad

import "os"

func blank(a, b string) {
	_ = os.Rename(a, b) // want `error from os.Rename assigned to _ in blank`
}

func bare(p string) {
	os.Remove(p) // want `error from os.Remove discarded in bare`
}

func deferred(f *os.File) {
	defer f.Sync() // want `error from File.Sync deferred in deferred`
}

func spawned(f *os.File) {
	go f.Sync() // want `error from File.Sync spawned in spawned`
}

func overwrite(a, b string) error {
	err := os.Rename(a, b) // want `error from os.Rename overwritten in overwrite before it is read`
	err = os.Remove(a)
	return err
}

func somePath(a, b string, keep bool) error {
	err := os.Rename(a, b) // want `error from os.Rename may be dropped on some path through somePath`
	if keep {
		return err
	}
	return nil
}

// commit reaches the seeds through a hop; its own error result makes it
// a durability source for callers, so the discard below is found
// interprocedurally.
func commit(a, b string) error {
	if err := os.Rename(a, b); err != nil {
		return err
	}
	return os.Remove(a)
}

func viaHelper(a, b string) {
	_ = commit(a, b) // want `error from errbad.commit assigned to _ in viaHelper`
}

func inLiteral(p string) func() {
	return func() {
		os.Remove(p) // want `error from os.Remove discarded in inLiteral \(func literal\)`
	}
}

func tailCut(p string) {
	os.Truncate(p, 0) // want `error from os.Truncate discarded in tailCut`
}

func fileTailCut(f *os.File) {
	_ = f.Truncate(128) // want `error from File.Truncate assigned to _ in fileTailCut`
}
