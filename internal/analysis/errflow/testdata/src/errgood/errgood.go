// Package errgood holds only conforming durability error handling:
// every error from a seed or source reaches a return, a read, or a
// reasoned //ocsml:errsink.
package errgood

import "os"

var renameFailures int

func propagate(a, b string) error {
	return os.Rename(a, b)
}

func counted(a, b string) {
	if err := os.Rename(a, b); err != nil {
		renameFailures++
	}
}

func annotated(tmp string) {
	//ocsml:errsink best-effort temp cleanup; the caller reports the original error
	os.Remove(tmp)
}

func checkedLater(f *os.File) error {
	err := f.Sync()
	if err != nil {
		return err
	}
	return nil
}

func closureRead(a, b string) func() error {
	err := os.Rename(a, b)
	return func() error { return err }
}

func allPaths(a, b string, keep bool) error {
	err := os.Rename(a, b)
	if keep {
		return err
	}
	return err
}

func namedResult(a, b string) (err error) {
	err = os.Rename(a, b)
	return
}

func commit(a, b string) error {
	if err := os.Rename(a, b); err != nil {
		return err
	}
	return nil
}

func throughHelper(a, b string) error {
	return commit(a, b)
}

func loops(paths []string) error {
	for _, p := range paths {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	return nil
}

func switched(a, b string) error {
	err := os.Rename(a, b)
	switch {
	case err != nil:
		return err
	default:
		return nil
	}
}

func passedAlong(a, b string, report func(error)) {
	report(os.Rename(a, b))
}

func truncateTail(f *os.File, size int64) error {
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}
