// Package errflow implements the durability error-flow analyzer. The
// recovery argument in DESIGN.md rests on the manifest watermark never
// advancing past a write that failed — exactly the bug class PR 3 fixed
// by hand in persistFinalized. This analyzer makes the discipline
// mechanical: an error produced anywhere on a durability path must be
// observed.
//
// Durability paths are found interprocedurally. The seeds are the
// primitives a durable commit is made of — os.Rename, os.Remove, and
// (*os.File).Sync — and the source set is their transitive closure over
// the program callgraph: any error-returning function that statically
// calls a seed or another source (fsstore's writeAtomic, syncDir,
// Finalize, WriteStable, TruncateAfter, ...) is itself a source.
//
// A call to a source creates an obligation on the error it returns. The
// obligation is discharged by reading the error — in a condition, a
// return statement, a call argument, or any other expression (reads
// inside nested function literals count: a closure that checks the
// error later still observes it). A forward may-analysis over the
// function's control-flow graph reports:
//
//   - the error assigned to the blank identifier;
//   - the call used as a bare statement, or deferred / spawned with its
//     result discarded;
//   - the error variable overwritten while the previous error is still
//     unread;
//   - an obligation still pending on some path reaching the function's
//     exit.
//
// A deliberate discard (best-effort temp-file cleanup on an error path
// that already reports a better error) carries //ocsml:errsink <why> on
// the call line or the line above.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"ocsml/internal/analysis/vetkit"
)

// Analyzer is the errflow analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "errflow",
	Doc:  "errors from durability paths (rename/fsync/Finalize/WriteStable) must be observed; discards need //ocsml:errsink",
	Run:  run,
}

// sourceCache memoizes the durability-source set per program. Analyzer
// passes run sequentially within one vetkit.Run, so plain maps suffice.
var sourceCache = map[*vetkit.Program]map[*types.Func]bool{}

func run(pass *vetkit.Pass) error {
	src := durabilitySources(pass.Program)
	cg := pass.Program.CallGraph()
	dirs := pass.Program.Directives()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := cg.Node(obj)
			if node == nil {
				continue
			}
			sites := map[*ast.CallExpr]*vetkit.CallSite{}
			for _, s := range node.Calls {
				sites[s.Call] = s
			}
			c := &checker{
				pass: pass, dirs: dirs, src: src, sites: sites,
				fn: fd.Name.Name, results: fd.Type.Results,
			}
			c.checkBody(fd.Body, nil)
			// Every nested function literal gets its own flow graph:
			// its statements are not part of the enclosing CFG, and an
			// obligation created inside the closure must be discharged
			// inside it.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lc := &checker{
						pass: pass, dirs: dirs, src: src, sites: sites,
						fn: fd.Name.Name + " (func literal)", results: lit.Type.Results,
					}
					lc.checkBody(lit.Body, lit)
				}
				return true
			})
		}
	}
	return nil
}

// durabilitySources computes the transitive closure of error-returning
// functions over the seed primitives.
func durabilitySources(program *vetkit.Program) map[*types.Func]bool {
	if src, ok := sourceCache[program]; ok {
		return src
	}
	cg := program.CallGraph()
	funcs := cg.Funcs()
	src := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, n := range funcs {
			if src[n.Obj] || vetkit.ErrorResultIndex(n.Obj) < 0 {
				continue
			}
			for _, site := range n.Calls {
				// A call inside a nested literal runs when the closure
				// runs, not on this function's own durability path.
				if site.InLit || site.Callee == nil {
					continue
				}
				if isSeed(site.Callee.Obj) || src[site.Callee.Obj] {
					src[n.Obj] = true
					changed = true
					break
				}
			}
		}
	}
	sourceCache[program] = src
	return src
}

// isSeed reports whether fn is one of the durability primitives.
func isSeed(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Pkg().Path() == "os" &&
			(fn.Name() == "Rename" || fn.Name() == "Remove" || fn.Name() == "Truncate")
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File" &&
		(fn.Name() == "Sync" || fn.Name() == "Truncate")
}

// An oblig is one unread durability error: where it was produced and by
// what.
type oblig struct {
	pos    token.Pos
	callee string
}

// fact is the may-analysis lattice element: the set of variables holding
// an unread durability error. Merge is union, so an error read on only
// one of two joining paths stays pending.
type fact map[*types.Var]oblig

func (f fact) clone() fact {
	out := make(fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func mergeFacts(a, b fact) fact {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func equalFacts(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

type checker struct {
	pass    *vetkit.Pass
	dirs    *vetkit.Directives
	src     map[*types.Func]bool
	sites   map[*ast.CallExpr]*vetkit.CallSite
	fn      string
	results *ast.FieldList
	// lit bounds the body under analysis when it is a function literal;
	// writes to captured outer variables escape the literal's graph.
	lit *ast.FuncLit
}

func (c *checker) checkBody(body *ast.BlockStmt, lit *ast.FuncLit) {
	c.lit = lit
	g := vetkit.NewCFG(body)
	// Solve silently first (a loop body's transfer runs once per
	// fixpoint iteration), then replay each reachable block once with
	// reporting on.
	in := vetkit.Forward(g, fact{},
		func(b *vetkit.Block, f fact) fact { return c.transfer(b, f, false) },
		mergeFacts, equalFacts)
	for _, b := range g.Blocks {
		entry, ok := in[b]
		if !ok {
			continue // unreachable
		}
		out := c.transfer(b, entry, true)
		if b == g.Exit {
			c.reportPending(out)
		}
	}
}

// reportPending flags every obligation still live at the function exit.
func (c *checker) reportPending(f fact) {
	for _, ob := range f {
		if c.sink(ob.pos) {
			continue
		}
		c.pass.Reportf(ob.pos, "error from %s may be dropped on some path through %s: durability failures must reach a return or a read", ob.callee, c.fn)
	}
}

// transfer applies one block's statements to the incoming fact.
func (c *checker) transfer(b *vetkit.Block, in fact, report bool) fact {
	f := in.clone()
	for _, n := range b.Nodes {
		c.node(n, f, report)
	}
	return f
}

func (c *checker) node(n ast.Node, f fact, report bool) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.consume(rhs, f)
		}
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				// Index and selector targets read their operands.
				c.consume(lhs, f)
			}
		}
		c.assign(s, f, report)
	case *ast.ExprStmt:
		c.consume(s.X, f)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && report {
			if fn, ok := c.producing(call); ok && !c.sink(call.Pos()) {
				c.pass.Reportf(call.Pos(), "error from %s discarded in %s: durability failures must reach a return or a read (or carry //ocsml:errsink <why>)", calleeName(fn), c.fn)
			}
		}
	case *ast.DeferStmt:
		c.deferred(s.Call, "deferred", f, report)
	case *ast.GoStmt:
		c.deferred(s.Call, "spawned", f, report)
	case *ast.DeclStmt:
		// var err error = f() — treat like the equivalent assignment.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				c.consume(v, f)
			}
			if len(vs.Values) == 1 {
				if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
					c.produced(call, identExprs(vs.Names), f, report)
				}
			}
		}
	default:
		c.consume(n, f)
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// deferred flags a defer/go whose call directly produces a durability
// error: the result has no receiver at all.
func (c *checker) deferred(call *ast.CallExpr, how string, f fact, report bool) {
	c.consume(call, f)
	if !report {
		return
	}
	if fn, ok := c.producing(call); ok && !c.sink(call.Pos()) {
		c.pass.Reportf(call.Pos(), "error from %s %s in %s with its result discarded: durability failures must reach a return or a read (or carry //ocsml:errsink <why>)", calleeName(fn), how, c.fn)
	}
}

// assign applies the writes of one assignment: new obligations for
// durability errors bound to variables, findings for blank binds and
// for overwriting a still-pending error.
func (c *checker) assign(s *ast.AssignStmt, f fact, report bool) {
	// Map producing calls to the identifiers receiving their error.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			c.overwrite(s.Lhs, f, report)
			c.produced(call, s.Lhs, f, report)
			return
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		c.overwrite(s.Lhs, f, report)
		for i, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				c.produced(call, s.Lhs[i:i+1], f, report)
			}
		}
		return
	}
	c.overwrite(s.Lhs, f, report)
}

// overwrite reports and clears obligations on variables about to be
// re-assigned before their pending error was read.
func (c *checker) overwrite(lhs []ast.Expr, f fact, report bool) {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		v := c.identVar(id)
		if v == nil {
			continue
		}
		ob, pending := f[v]
		if !pending {
			continue
		}
		delete(f, v)
		if report && !c.sink(ob.pos) {
			c.pass.Reportf(ob.pos, "error from %s overwritten in %s before it is read: durability failures must reach a return or a read", ob.callee, c.fn)
		}
	}
}

// produced records the obligation (or finding) for one resolved call
// whose results bind to lhs.
func (c *checker) produced(call *ast.CallExpr, lhs []ast.Expr, f fact, report bool) {
	fn, ok := c.producing(call)
	if !ok {
		return
	}
	idx := vetkit.ErrorResultIndex(fn)
	if idx < 0 {
		return
	}
	if len(lhs) == 1 {
		idx = 0 // single receiver takes the whole (single) result
	}
	if idx >= len(lhs) {
		return
	}
	id, ok := lhs[idx].(*ast.Ident)
	if !ok {
		// Stored into a field or element: the error escapes to a place
		// this function-local analysis cannot track; treat as observed.
		return
	}
	if id.Name == "_" {
		if report && !c.sink(call.Pos()) {
			c.pass.Reportf(call.Pos(), "error from %s assigned to _ in %s: durability failures must reach a return or a read (or carry //ocsml:errsink <why>)", calleeName(fn), c.fn)
		}
		return
	}
	v := c.identVar(id)
	if v == nil {
		return
	}
	if c.escapes(v) {
		// A named result is read by every return; a variable captured
		// from the enclosing function outlives this literal's graph.
		return
	}
	f[v] = oblig{pos: call.Pos(), callee: calleeName(fn)}
}

// identVar resolves an assignment-target identifier to its variable.
func (c *checker) identVar(id *ast.Ident) *types.Var {
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// escapes reports whether obligations on v cannot be tracked within the
// body under analysis: v is a named result (read implicitly by return)
// or, for a function literal, declared outside the literal.
func (c *checker) escapes(v *types.Var) bool {
	if c.results != nil && c.results.Pos().IsValid() &&
		v.Pos() >= c.results.Pos() && v.Pos() <= c.results.End() {
		return true
	}
	if c.lit != nil && (v.Pos() < c.lit.Pos() || v.Pos() > c.lit.End()) {
		return true
	}
	return false
}

// consume discharges the obligation on every variable read under n.
// Reads inside nested function literals count: the closure observes the
// error when it runs.
func (c *checker) consume(n ast.Node, f fact) {
	if n == nil || len(f) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
			delete(f, v)
		}
		return true
	})
}

// producing resolves call to a durability source via the callgraph.
func (c *checker) producing(call *ast.CallExpr) (*types.Func, bool) {
	site, ok := c.sites[call]
	if !ok || site.Callee == nil {
		return nil, false
	}
	fn := site.Callee.Obj
	if isSeed(fn) || c.src[fn] {
		return fn, true
	}
	return nil, false
}

// sink reports an //ocsml:errsink directive covering pos.
func (c *checker) sink(pos token.Pos) bool {
	return c.dirs.Has(pos, "errsink")
}

// calleeName renders a function for diagnostics: pkg.Func or Type.Method.
func calleeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
