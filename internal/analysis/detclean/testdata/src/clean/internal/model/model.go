// Package model is a fully conforming deterministic package.
package model

import (
	"math/rand"
	"sort"
)

func draw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func keys(m map[int]bool) []int {
	var out []int
	//ocsml:unordered key set, sorted before use
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
