// Package transport is the gated fixture: real time is legal here but
// must carry a //ocsml:wallclock declaration.
package transport

import (
	"math/rand"
	"time"
)

func report() {
	start := time.Now() // want "time.Now without"
	//ocsml:wallclock fixture: elapsed time of a real run
	_ = time.Since(start)
	_ = time.Since(start)        // want "time.Since without"
	_ = rand.Int()               // want "global rand.Int without"
	time.Sleep(time.Millisecond) // only Now/Since are directive-gated here
}
