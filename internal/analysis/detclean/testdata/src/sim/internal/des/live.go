package des

import "time"

// This file is the fixture's "real-time half": the file-level directive
// demotes it from the strict rules to the directive-gated ones.
//
//ocsml:realtime fixture: applies schedules on the wall clock

func gated() time.Duration {
	base := time.Now() // want "time.Now without"
	//ocsml:wallclock fixture: declared real-time site
	d := time.Since(base)
	time.AfterFunc(d, func() {}) // timer mechanics: unrestricted outside strict mode
	return d
}
