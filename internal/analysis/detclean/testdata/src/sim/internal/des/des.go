// Package des is the deterministic-package fixture: its import path
// ends in internal/des, so the strict rules apply.
package des

import (
	"math/rand"
	"sort"
	"time"
)

func violations() {
	_ = time.Now()          // want "time.Now in deterministic package"
	time.Sleep(time.Second) // want "time.Sleep in deterministic package"
	_ = rand.Intn(4)        // want "global rand.Intn in deterministic package"
	_ = rand.Float64()      // want "global rand.Float64 in deterministic package"
}

func conforming(m map[string]int) []string {
	rng := rand.New(rand.NewSource(42))
	_ = rng.Intn(4) // method on a seeded source: fine
	var keys []string
	//ocsml:unordered collects the key set; sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func leaky(m map[string]int) int {
	n := 0
	for range m { // want "map iteration order leaks"
		n++
	}
	return n
}
