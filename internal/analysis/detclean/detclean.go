// Package detclean implements the determinism analyzer: the simulator,
// the model checker and the fault-injection schedules must be a pure
// function of their seed, so the packages they live in may not read the
// wall clock, draw from the process-global random source, or emit
// map-iteration-ordered output.
//
// Rules, in the deterministic packages (internal/des, internal/engine,
// internal/netsim, internal/model, internal/faultnet):
//
//   - no wall-clock or timer calls (time.Now, time.Since, time.Sleep,
//     time.After, time.AfterFunc, time.Tick, time.NewTimer,
//     time.NewTicker, time.Until) — virtual time comes from the
//     simulator;
//   - no package-global math/rand functions (rand.Intn, rand.Float64,
//     rand.Shuffle, ...); constructing a seeded source with rand.New /
//     rand.NewSource and calling methods on the resulting *rand.Rand is
//     the sanctioned pattern;
//   - no ranging over a map unless the statement carries
//     //ocsml:unordered <why>, asserting the loop body is
//     order-insensitive (e.g. it fills a set that is sorted afterwards).
//
// Everywhere else (transport, live, cmd/...), real time is legitimate
// but must be declared: time.Now and time.Since require a
// //ocsml:wallclock <why> directive on the call line or the line above,
// and the package-global rand functions require the same. This keeps
// the full inventory of nondeterminism greppable.
//
// A file inside a deterministic package that is genuinely the real-time
// half of its subsystem (faultnet's injector applies seeded schedules
// to a live TCP mesh) declares //ocsml:realtime <why> once, anywhere in
// the file, and is then held to the directive-gated rules instead of
// the strict ones.
package detclean

import (
	"go/ast"
	"go/types"

	"ocsml/internal/analysis/vetkit"
)

// DeterministicSuffixes lists the import-path suffixes of the packages
// that must stay seed-pure.
var DeterministicSuffixes = []string{
	"internal/des",
	"internal/engine",
	"internal/netsim",
	"internal/model",
	"internal/faultnet",
}

// wallClockFuncs are the package-level time functions that read or wait
// on real time.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Sleep": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true,
	"NewTicker": true, "Until": true,
}

// directiveGated are the time functions that, outside the deterministic
// packages, are allowed with a //ocsml:wallclock directive. The timer
// primitives (AfterFunc etc.) are the event-loop mechanics of the real
// runtime and stay unrestricted there.
var directiveGated = map[string]bool{"Now": true, "Since": true}

// randConstructors are the package-level math/rand functions that build
// a seeded source instead of consuming the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the detclean analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "detclean",
	Doc:  "forbid wall-clock reads, global rand and unordered map iteration in the deterministic packages",
	Run:  run,
}

func run(pass *vetkit.Pass) error {
	deterministic := false
	for _, suf := range DeterministicSuffixes {
		if vetkit.PathHasSuffix(pass.Pkg.Path(), suf) {
			deterministic = true
			break
		}
	}
	dirs := pass.Program.Directives()
	for _, f := range pass.Files {
		deterministic := deterministic
		if dirs.FileHas(f.Pos(), "realtime") {
			deterministic = false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[n.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // method, e.g. (*rand.Rand).Intn — fine
				}
				switch fn.Pkg().Path() {
				case "time":
					if !wallClockFuncs[fn.Name()] {
						return true
					}
					if deterministic {
						pass.Reportf(n.Pos(), "time.%s in deterministic package %s: virtual time must come from the simulator", fn.Name(), pass.Pkg.Path())
					} else if directiveGated[fn.Name()] && !dirs.Has(n.Pos(), "wallclock") {
						pass.Reportf(n.Pos(), "time.%s without //ocsml:wallclock directive: declare why real time is safe here", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if randConstructors[fn.Name()] {
						return true
					}
					if deterministic {
						pass.Reportf(n.Pos(), "global rand.%s in deterministic package %s: draw from a seeded *rand.Rand", fn.Name(), pass.Pkg.Path())
					} else if !dirs.Has(n.Pos(), "wallclock") {
						pass.Reportf(n.Pos(), "global rand.%s without //ocsml:wallclock directive: use a seeded *rand.Rand", fn.Name())
					}
				}
			case *ast.RangeStmt:
				if !deterministic {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if dirs.Has(n.Pos(), "unordered") {
					return true
				}
				pass.Reportf(n.Pos(), "map iteration order leaks into deterministic package %s: sort the keys, or annotate //ocsml:unordered <why> if the body is order-insensitive", pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
