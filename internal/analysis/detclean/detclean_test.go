package detclean_test

import (
	"testing"

	"ocsml/internal/analysis/detclean"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestDeterministicPackage(t *testing.T) {
	vettest.Run(t, "testdata", detclean.Analyzer, "sim/internal/des")
}

func TestGatedPackage(t *testing.T) {
	vettest.Run(t, "testdata", detclean.Analyzer, "app/transport")
}

func TestConformingPackage(t *testing.T) {
	vettest.RunClean(t, "testdata", detclean.Analyzer, "clean/internal/model")
}
