// Package loopbad holds ownership violations: unproven accesses,
// accesses from the wrong goroutine, mixed-context helpers, tainted
// helpers, and a malformed directive.
package loopbad

type badnode struct {
	inbox chan func()
	disk  chan func()
	quit  chan struct{}

	epoch int //ocsml:loopowned loop
	//ocsml:loopowned nosuchmethod
	count int // want `no method nosuchmethod on badnode`
}

//ocsml:looppost loop
func (n *badnode) post(fn func()) { n.inbox <- fn }

func (n *badnode) loop() {
	for {
		select {
		case fn := <-n.inbox:
			fn()
			n.helper()
			n.shared()
		case <-n.quit:
			return
		}
	}
}

func (n *badnode) storageLoop() {
	for {
		select {
		case fn := <-n.disk:
			fn()
			n.shared()
		case <-n.quit:
			return
		}
	}
}

// Stop reads an owned field with no proof of context.
func (n *badnode) Stop() int {
	return n.epoch // want `not proven to run on it`
}

// Leak writes an owned field from a freshly spawned goroutine.
func (n *badnode) Leak() {
	go func() {
		n.epoch++ // want `accessed from an anonymous spawned goroutine`
	}()
}

// runLater is not a looppost function: closures handed to it prove
// nothing about where they run.
func runLater(fn func()) { fn() }

// Escape hands a closure to an unannotated consumer.
func (n *badnode) Escape() {
	runLater(func() {
		n.epoch++ // want `not proven to run on it`
	})
}

// helper joins to loop's context via its loop call site, but Poke also
// calls it from an unproven context: its accesses are tainted.
func (n *badnode) helper() {
	n.epoch++ // want `also reachable from badnode.Poke`
}

// Poke may run on any goroutine.
func (n *badnode) Poke() {
	n.helper()
}

// shared is called from both loops: mixed context.
func (n *badnode) shared() {
	n.epoch++ // want `reachable from multiple goroutines`
}

func startBad() *badnode {
	n := &badnode{inbox: make(chan func(), 8), disk: make(chan func(), 8), quit: make(chan struct{})}
	go n.loop()
	go n.storageLoop()
	return n
}
