// Package loopgood exercises every way an access can be proven to run
// on the owning goroutine: the owner itself, posted closures, deferred
// work replayed by the loop, caller-context propagation, asserted
// contexts, cross-type owners, and explicit exemptions.
package loopgood

type node struct {
	inbox chan func()
	quit  chan struct{}
	disk  chan func()

	epoch int //ocsml:loopowned loop
	//ocsml:loopowned loop
	//ocsml:looppost loop
	deferred  []func()
	persisted int //ocsml:loopowned storageLoop
}

// post hands a closure to the event loop.
//
//ocsml:looppost loop
func (n *node) post(fn func()) { n.inbox <- fn }

// postStorage hands a closure to the storage loop.
//
//ocsml:looppost storageLoop
func (n *node) postStorage(fn func()) { n.disk <- fn }

func (n *node) loop() {
	for {
		select {
		case fn := <-n.inbox:
			fn()
			n.epoch++ // owner accesses directly
			n.flush()
			for _, d := range n.deferred {
				d()
			}
			n.deferred = n.deferred[:0]
		case <-n.quit:
			return
		}
	}
}

func (n *node) storageLoop() {
	for {
		select {
		case fn := <-n.disk:
			fn()
			n.persisted++
		case <-n.quit:
			return
		}
	}
}

// flush is called only from loop, so it inherits loop's context.
func (n *node) flush() {
	n.epoch++
}

// Snapshot may be called from anywhere: it reads epoch via a posted
// closure, which runs on loop regardless of the caller.
func (n *node) Snapshot() chan int {
	out := make(chan int, 1)
	n.post(func() {
		out <- n.epoch
	})
	return out
}

// DeferWork stores a closure into the deferred queue (a looppost
// field): the stored closure runs on loop, and the append itself is
// performed inside a posted closure.
func (n *node) DeferWork() {
	n.post(func() {
		n.deferred = append(n.deferred, func() {
			n.epoch++
		})
	})
}

// Persist crosses loops: a closure posted to the storage loop touches
// the storage-owned counter.
func (n *node) Persist() {
	n.postStorage(func() {
		n.persisted++
	})
}

// onTimer is invoked through an interface by the runtime's timer
// wheel, which the callgraph cannot see; the context is asserted.
//
//ocsml:loopcontext loop
func (n *node) onTimer() {
	n.epoch++
}

// newNode initializes owned fields before any goroutine exists.
func newNode() *node {
	n := &node{inbox: make(chan func(), 8), quit: make(chan struct{}), disk: make(chan func(), 8)}
	n.epoch = 1 //ocsml:loopexempt constructor runs before the loops start
	return n
}

func start() *node {
	n := newNode()
	go n.loop()
	go n.storageLoop()
	return n
}

// sim is owned by another type's method: the DES driver serializes all
// cell state inside sim.Run, no goroutines involved.
//
//ocsml:loopcontext sim.Run
type cell struct {
	work int //ocsml:loopowned sim.Run
}

type sim struct {
	cells []*cell
}

func (s *sim) Run() {
	for _, c := range s.cells {
		c.step()
		c.work++
	}
}

// step is a cell method: the type-level loopcontext seeds it.
func (c *cell) step() {
	c.work++
}
