// Package loopowned proves goroutine ownership of struct fields: a
// field annotated
//
//	//ocsml:loopowned <goroutine>
//
// may be read or written only by code proven to run on the named
// goroutine — the owning event-loop method itself, or a closure posted
// to it. The runtime's concurrency model is event loops serializing all
// state access through an inbox of closures (transport.Node.post,
// live.node.post); this analyzer turns that convention into a checked
// invariant, the class of bug behind the Cluster.makespan race and the
// live.Send retransmit-vs-delivery race.
//
// The owner names a function in the same package: a method of the
// field's struct ("loop", "storageLoop") or a method of another type
// ("Cluster.Run" for the DES, whose node state is serialized by the
// simulation driver rather than a spawned goroutine).
//
// Every executable body (declaration or function literal) is assigned a
// goroutine context by fixpoint over vetkit's attribution layer:
//
//   - the operand of a go statement is its own new goroutine;
//   - a literal passed to an //ocsml:looppost <goroutine> function, or
//     stored into an //ocsml:looppost field, runs on that goroutine
//     (the inbox post and the deferred-work queue, respectively);
//   - deferred and immediately-invoked literals inherit their enclosing
//     context, as do literals handed to the known-synchronous stdlib
//     helpers (sort.Slice and friends);
//   - a declared function inherits the join of its static callers'
//     contexts; //ocsml:loopcontext <goroutine> on a declaration (or on
//     a type, seeding every method) asserts the context across dynamic
//     dispatch boundaries the callgraph cannot cross — the Env methods
//     protocols invoke through an interface;
//   - anything else (escaping literals, unseeded roots) is unproven.
//
// An access is legal only when its body's context is exactly the owning
// goroutine and the body is not also reachable from an unproven
// context. //ocsml:loopexempt <why> opts out one access (constructor
// initialization before the goroutines start, post-join teardown).
package loopowned

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ocsml/internal/analysis/vetkit"
)

// Analyzer is the loopowned analysis.
var Analyzer = &vetkit.Analyzer{
	Name: "loopowned",
	Doc:  "//ocsml:loopowned fields are accessed only on their owning goroutine",
	Run:  run,
}

// ctxKind classifies a body's goroutine context.
type ctxKind int

const (
	ctxUnknown ctxKind = iota // not proven to run anywhere in particular
	ctxOrigin                 // runs on one known goroutine origin
	ctxMixed                  // reachable from more than one goroutine
)

// A bodyCtx is the goroutine context of one body: Unknown, a single
// origin (a named function, or an anonymous spawned literal identified
// by position), or Mixed.
type bodyCtx struct {
	kind   ctxKind
	fn     *types.Func // named origin (owner method, spawned function)
	litPos token.Pos   // anonymous origin: a spawned literal
}

func origin(fn *types.Func) bodyCtx { return bodyCtx{kind: ctxOrigin, fn: fn} }
func litOrigin(p token.Pos) bodyCtx { return bodyCtx{kind: ctxOrigin, litPos: p} }
func join(a, b bodyCtx) bodyCtx {
	switch {
	case a.kind == ctxUnknown:
		return b
	case b.kind == ctxUnknown:
		return a
	case a == b:
		return a
	default:
		return bodyCtx{kind: ctxMixed}
	}
}

// syncHelpers invoke their function argument synchronously in the
// caller's goroutine; literals passed to them inherit the enclosing
// context.
var syncHelpers = map[string]bool{
	"sort.Slice":            true,
	"sort.SliceStable":      true,
	"sort.Search":           true,
	"path/filepath.Walk":    true,
	"path/filepath.WalkDir": true,
	"go/ast.Inspect":        true,
	"(*sync.Once).Do":       true,
}

// progFacts is the per-program analysis state, computed once and shared
// by every per-package pass.
type progFacts struct {
	at    *vetkit.Attribution
	dirs  *vetkit.Directives
	owned map[*types.Var]*types.Func // annotated field -> owner

	ctx     map[*vetkit.Body]bodyCtx
	tainted map[*vetkit.Body]string // body also reachable from unproven context (value: who)

	errs []factErr // malformed/unresolvable directives
}

type factErr struct {
	pkg *types.Package
	pos token.Pos
	msg string
}

var cache = map[*vetkit.Program]*progFacts{}

func run(pass *vetkit.Pass) error {
	pf, ok := cache[pass.Program]
	if !ok {
		pf = build(pass.Program)
		cache[pass.Program] = pf
	}
	for _, e := range pf.errs {
		if e.pkg == pass.Pkg {
			pass.Reportf(e.pos, "%s", e.msg)
		}
	}
	if len(pf.owned) == 0 {
		return nil
	}
	for _, b := range pf.at.Bodies {
		if b.Pkg.Types == pass.Pkg {
			checkBody(pass, pf, b)
		}
	}
	return nil
}

// build computes ownership tables and the goroutine-context fixpoint.
func build(prog *vetkit.Program) *progFacts {
	pf := &progFacts{
		at:      prog.Attribution(),
		dirs:    prog.Directives(),
		owned:   map[*types.Var]*types.Func{},
		ctx:     map[*vetkit.Body]bodyCtx{},
		tainted: map[*vetkit.Body]string{},
	}
	postFuncs := map[*types.Func]*types.Func{} // looppost function -> owner
	postFields := map[*types.Var]*types.Func{} // looppost field -> owner
	seeds := map[*types.Func]*types.Func{}     // asserted/owner function -> origin

	for _, pkg := range sortedPackages(prog) {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						pf.collectType(pkg, d, ts, postFields, seeds)
					}
				case *ast.FuncDecl:
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					if dir, ok := vetkit.DocDirective(d.Doc, "looppost"); ok {
						if owner := pf.resolveOwner(pkg, recvType(fn), dir.Arg, d.Name.Pos(), "looppost"); owner != nil {
							postFuncs[fn] = owner
						}
					}
					if dir, ok := vetkit.DocDirective(d.Doc, "loopcontext"); ok {
						if owner := pf.resolveOwner(pkg, recvType(fn), dir.Arg, d.Name.Pos(), "loopcontext"); owner != nil {
							seeds[fn] = owner
						}
					}
				}
			}
		}
	}
	// Every owner runs, by definition, on its own goroutine.
	for _, owner := range pf.owned {
		seeds[owner] = owner
	}
	for _, owner := range postFuncs {
		seeds[owner] = owner
	}
	for _, owner := range postFields {
		seeds[owner] = owner
	}

	pf.solve(seeds, postFuncs, postFields)
	return pf
}

// collectType reads loopowned/looppost field directives and type-level
// loopcontext assertions from one type declaration.
func (pf *progFacts) collectType(pkg *vetkit.Package, gd *ast.GenDecl, ts *ast.TypeSpec, postFields map[*types.Var]*types.Func, seeds map[*types.Func]*types.Func) {
	tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	doc := ts.Doc
	if doc == nil {
		doc = gd.Doc
	}
	if dir, ok := vetkit.DocDirective(doc, "loopcontext"); ok {
		if owner := pf.resolveOwner(pkg, tn, dir.Arg, ts.Name.Pos(), "loopcontext"); owner != nil {
			if named, ok := tn.Type().(*types.Named); ok {
				for i := 0; i < named.NumMethods(); i++ {
					seeds[named.Method(i)] = owner
				}
			}
		}
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		for _, name := range []string{"loopowned", "looppost"} {
			dir, ok := vetkit.DocDirective(field.Doc, name)
			if !ok {
				dir, ok = pf.dirs.Covering(field.Pos(), name)
			}
			if !ok {
				continue
			}
			owner := pf.resolveOwner(pkg, tn, dir.Arg, field.Pos(), name)
			if owner == nil {
				continue
			}
			for _, id := range field.Names {
				fv, ok := pkg.Info.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				if name == "loopowned" {
					pf.owned[fv] = owner
				} else {
					postFields[fv] = owner
				}
			}
		}
	}
}

// resolveOwner maps a directive argument to the function it names: a
// method of the annotated type ("loop"), a Type.method in the same
// package ("Cluster.Run"), or a package-level function.
func (pf *progFacts) resolveOwner(pkg *vetkit.Package, tn *types.TypeName, arg string, pos token.Pos, directive string) *types.Func {
	bad := func(format string, args ...any) *types.Func {
		pf.errs = append(pf.errs, factErr{pkg.Types, pos, fmt.Sprintf("//ocsml:%s %s: %s", directive, arg, fmt.Sprintf(format, args...))})
		return nil
	}
	if arg == "" {
		return bad("missing goroutine name: want //ocsml:%s <method or Type.method>", directive)
	}
	if typeName, method, ok := strings.Cut(arg, "."); ok {
		obj := pkg.Types.Scope().Lookup(typeName)
		otn, isType := obj.(*types.TypeName)
		if !isType {
			return bad("type %s not found in package %s", typeName, pkg.Types.Name())
		}
		return pf.lookupMethod(pkg, otn, method, arg, pos, directive)
	}
	if tn != nil {
		if fn := methodOn(pkg, tn, arg); fn != nil {
			return fn
		}
	}
	if fn, ok := pkg.Types.Scope().Lookup(arg).(*types.Func); ok {
		return fn
	}
	if tn != nil {
		return bad("no method %s on %s and no such function in package %s", arg, tn.Name(), pkg.Types.Name())
	}
	return bad("no such function in package %s", pkg.Types.Name())
}

func (pf *progFacts) lookupMethod(pkg *vetkit.Package, tn *types.TypeName, method, arg string, pos token.Pos, directive string) *types.Func {
	if fn := methodOn(pkg, tn, method); fn != nil {
		return fn
	}
	pf.errs = append(pf.errs, factErr{pkg.Types, pos, fmt.Sprintf("//ocsml:%s %s: no method %s on %s", directive, arg, method, tn.Name())})
	return nil
}

func methodOn(pkg *vetkit.Package, tn *types.TypeName, name string) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg.Types, name)
	if fn, ok := obj.(*types.Func); ok {
		return fn
	}
	return nil
}

func recvType(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// solve runs the goroutine-context fixpoint, then the taint pass.
func (pf *progFacts) solve(seeds, postFuncs map[*types.Func]*types.Func, postFields map[*types.Var]*types.Func) {
	// Index incoming edges: static calls and spawns by target function.
	callers := map[*types.Func][]*vetkit.Body{}
	spawned := map[*types.Func]bool{}
	for _, b := range pf.at.Bodies {
		for _, c := range b.Calls {
			if c.Callee != nil && !c.Dynamic {
				callers[c.Callee] = append(callers[c.Callee], b)
			}
		}
	}
	for _, s := range pf.at.Spawns {
		if s.Callee != nil {
			spawned[s.Callee] = true
		}
	}

	compute := func(b *vetkit.Body) bodyCtx {
		if b.Lit == nil {
			fn := b.Fn.Obj
			if o, ok := seeds[fn]; ok {
				return origin(o)
			}
			var c bodyCtx
			if spawned[fn] {
				// A spawned named function is its own goroutine origin.
				c = origin(fn)
			}
			for _, caller := range callers[fn] {
				c = join(c, pf.ctx[caller])
			}
			return c
		}
		switch b.Use {
		case vetkit.UseGo:
			return litOrigin(b.Lit.Pos())
		case vetkit.UseDefer, vetkit.UseCall:
			return pf.ctx[b.Parent]
		case vetkit.UseArg:
			if b.Callee != nil {
				if owner, ok := postFuncs[b.Callee]; ok {
					return origin(owner)
				}
				if syncHelpers[b.Callee.FullName()] {
					return pf.ctx[b.Parent]
				}
			}
			return bodyCtx{}
		case vetkit.UseField:
			if owner, ok := postFields[b.Field]; ok {
				return origin(owner)
			}
			return bodyCtx{}
		default:
			return bodyCtx{}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, b := range pf.at.Bodies {
			if c := compute(b); c != pf.ctx[b] {
				pf.ctx[b] = c
				changed = true
			}
		}
	}

	// Taint pass: a function whose context joined to a single origin but
	// that is also reachable from an unproven caller may in fact run
	// elsewhere; its accesses are not proven. Assertions (seeds) are
	// trusted and stop taint.
	for _, b := range pf.at.Bodies {
		if b.Lit != nil || pf.ctx[b].kind != ctxOrigin {
			continue
		}
		fn := b.Fn.Obj
		if _, isSeed := seeds[fn]; isSeed {
			continue
		}
		for _, caller := range callers[fn] {
			if pf.ctx[caller].kind == ctxUnknown {
				pf.tainted[b] = describeBody(caller)
				break
			}
		}
	}
	// Propagate taint: callees of a tainted body and literals inheriting
	// its context are tainted too.
	for changed := true; changed; {
		changed = false
		for _, b := range pf.at.Bodies {
			if pf.tainted[b] != "" || pf.ctx[b].kind != ctxOrigin {
				continue
			}
			var from string
			if b.Lit == nil {
				fn := b.Fn.Obj
				if _, isSeed := seeds[fn]; isSeed {
					continue
				}
				for _, caller := range callers[fn] {
					if t := pf.tainted[caller]; t != "" {
						from = t
						break
					}
				}
			} else if b.Use == vetkit.UseDefer || b.Use == vetkit.UseCall ||
				(b.Use == vetkit.UseArg && b.Callee != nil && syncHelpers[b.Callee.FullName()]) {
				// Only bodies that inherited the parent's context inherit
				// its taint; posted closures run on the owner regardless
				// of who posted them.
				if b.Parent != nil {
					from = pf.tainted[b.Parent]
				}
			}
			if from != "" {
				pf.tainted[b] = from
				changed = true
			}
		}
	}
}

// checkBody replays one body's field accesses against the ownership
// table.
func checkBody(pass *vetkit.Pass, pf *progFacts, b *vetkit.Body) {
	var root ast.Node = b.Decl.Body
	if b.Lit != nil {
		root = b.Lit.Body
	}
	if root == nil {
		return
	}
	c := pf.ctx[b]
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != b.Lit {
			return false // nested literal: its own body
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		fld, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		owner, ok := pf.owned[fld]
		if !ok {
			return true
		}
		if pf.dirs.Has(sel.Pos(), "loopexempt") {
			return true
		}
		ownerName := funcDisplayName(owner)
		where := describeBody(b)
		switch {
		case c.kind == ctxOrigin && c.fn == owner:
			if t := pf.tainted[b]; t != "" {
				pass.Reportf(sel.Pos(), "field %s is owned by goroutine %s, but %s is also reachable from %s, which is not proven to run on %s (assert //ocsml:loopcontext %s there, or //ocsml:loopexempt <why> here)",
					fld.Name(), ownerName, where, t, ownerName, ownerName)
			}
		case c.kind == ctxOrigin:
			pass.Reportf(sel.Pos(), "field %s is owned by goroutine %s but accessed from %s",
				fld.Name(), ownerName, c.describe())
		case c.kind == ctxMixed:
			pass.Reportf(sel.Pos(), "field %s is owned by goroutine %s but %s is reachable from multiple goroutines",
				fld.Name(), ownerName, where)
		default:
			pass.Report(vetkit.Diagnostic{
				Pos: sel.Pos(),
				Message: fmt.Sprintf("field %s is owned by goroutine %s but %s is not proven to run on it (post through an //ocsml:looppost func, assert //ocsml:loopcontext %s, or //ocsml:loopexempt <why>)",
					fld.Name(), ownerName, where, ownerName),
				Fix: loopcontextFix(b, owner, ownerName),
			})
		}
		return true
	})
}

func (c bodyCtx) describe() string {
	if c.fn != nil {
		return "goroutine " + funcDisplayName(c.fn)
	}
	return "an anonymous spawned goroutine"
}

// describeBody names a body for diagnostics.
// loopcontextFix suggests asserting the body's context: a
// //ocsml:loopcontext doc directive on the enclosing declaration. Only
// offered when the assertion would resolve — the body is a declared
// function (literals have no doc comment) in the same package as the
// owner, so the Type.method grammar looks up in the right scope. The
// developer must still judge the assertion true; the fix only spares
// them the directive syntax.
func loopcontextFix(b *vetkit.Body, owner *types.Func, ownerName string) *vetkit.SuggestedFix {
	if b.Lit != nil || b.Decl == nil || owner.Pkg() != b.Fn.Obj.Pkg() {
		return nil
	}
	var edit vetkit.TextEdit
	if doc := b.Decl.Doc; doc != nil {
		edit = vetkit.TextEdit{Pos: doc.End(), End: doc.End(),
			NewText: "\n//ocsml:loopcontext " + ownerName}
	} else {
		edit = vetkit.TextEdit{Pos: b.Decl.Pos(), End: b.Decl.Pos(),
			NewText: "//ocsml:loopcontext " + ownerName + "\n"}
	}
	return &vetkit.SuggestedFix{
		Message: fmt.Sprintf("assert that %s runs on goroutine %s", funcDisplayName(b.Fn.Obj), ownerName),
		Edits:   []vetkit.TextEdit{edit},
	}
}

func describeBody(b *vetkit.Body) string {
	name := funcDisplayName(b.Fn.Obj)
	if b.Lit != nil {
		return "a function literal in " + name
	}
	return name
}

// funcDisplayName renders Recv.name for methods, name for functions —
// matching the directive argument grammar.
func funcDisplayName(fn *types.Func) string {
	if tn := recvType(fn); tn != nil {
		return tn.Name() + "." + fn.Name()
	}
	return fn.Name()
}

// sortedPackages returns the program's packages in import-path order,
// keeping error slices stable across runs.
func sortedPackages(prog *vetkit.Program) []*vetkit.Package {
	var paths []string
	for path := range prog.Packages {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*vetkit.Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, prog.Packages[p])
	}
	return out
}
