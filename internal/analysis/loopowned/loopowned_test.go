package loopowned_test

import (
	"testing"

	"ocsml/internal/analysis/loopowned"
	"ocsml/internal/analysis/vetkit/vettest"
)

func TestViolations(t *testing.T) {
	vettest.Run(t, "testdata", loopowned.Analyzer, "loopbad")
}

func TestConforming(t *testing.T) {
	vettest.RunClean(t, "testdata", loopowned.Analyzer, "loopgood")
}
