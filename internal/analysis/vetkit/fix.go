package vetkit

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// This file applies SuggestedFixes to source files: the engine behind
// `ocsmlvet -fix`. Only the mechanical diagnostics carry fixes (a
// missing //ocsml:state table stub, a missing //ocsml:loopcontext
// assertion), so application is conservative: edits are grouped by
// file, sorted, checked for overlap, and applied bottom-up so earlier
// offsets stay valid.

// A FileFix is the set of edits to apply to one file, with the
// diagnostics they came from (for reporting).
type FileFix struct {
	Filename string
	Edits    []TextEdit
	Applied  []Diagnostic
}

// PlanFixes collects the suggested fixes of the given diagnostics into
// per-file edit plans. Overlapping edits within one file are rejected
// with an error naming the colliding diagnostics; duplicate edits
// (identical range and text, e.g. the same fix reported through two
// packages) collapse to one.
func PlanFixes(fset *token.FileSet, diags []Diagnostic) ([]FileFix, error) {
	type edit struct {
		TextEdit
		from Diagnostic
	}
	byFile := map[string][]edit{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			name := fset.Position(e.Pos).Filename
			byFile[name] = append(byFile[name], edit{e, d})
		}
	}
	var files []string
	for name := range byFile {
		files = append(files, name)
	}
	sort.Strings(files)
	var out []FileFix
	for _, name := range files {
		edits := byFile[name]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Pos != edits[j].Pos {
				return edits[i].Pos < edits[j].Pos
			}
			return edits[i].NewText < edits[j].NewText
		})
		ff := FileFix{Filename: name}
		var last *edit
		for i := range edits {
			e := &edits[i]
			if last != nil && e.Pos == last.Pos && e.End == last.End && e.NewText == last.NewText {
				continue // identical duplicate
			}
			if last != nil && e.Pos < last.End {
				return nil, fmt.Errorf("conflicting fixes in %s: %q (from %s) overlaps %q (from %s)",
					name, e.NewText, e.from.Analyzer, last.NewText, last.from.Analyzer)
			}
			ff.Edits = append(ff.Edits, e.TextEdit)
			ff.Applied = append(ff.Applied, e.from)
			last = e
		}
		out = append(out, ff)
	}
	return out, nil
}

// ApplyFix applies one file's edits to its current on-disk content and
// returns the new content. The file is not written; callers decide.
func ApplyFix(fset *token.FileSet, ff FileFix) ([]byte, error) {
	src, err := os.ReadFile(ff.Filename)
	if err != nil {
		return nil, err
	}
	return ApplyEditsToBytes(fset, src, ff.Edits)
}

// ApplyEditsToBytes applies sorted, non-overlapping edits to src.
func ApplyEditsToBytes(fset *token.FileSet, src []byte, edits []TextEdit) ([]byte, error) {
	// Apply bottom-up so earlier offsets stay valid.
	out := append([]byte(nil), src...)
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		start := fset.Position(e.Pos).Offset
		end := start
		if e.End.IsValid() {
			end = fset.Position(e.End).Offset
		}
		if start < 0 || end < start || end > len(out) {
			return nil, fmt.Errorf("edit range [%d, %d) outside file of %d bytes", start, end, len(out))
		}
		out = append(out[:start], append([]byte(e.NewText), out[end:]...)...)
	}
	return out, nil
}
