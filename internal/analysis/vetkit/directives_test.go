package vetkit_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"ocsml/internal/analysis/vetkit"
)

const directiveSrc = `package p

type s struct {
	a int //ocsml:loopowned loop
	//ocsml:loopowned Cluster.Run
	b int
	c int // plain comment, not a directive
}

//ocsml:hotpath
func hot() {}

// spin runs forever by design.
//
//ocsml:daemon metrics ticker
func spin() {}

func uses() {
	_ = s{} //ocsml:loopexempt constructor runs before the loop starts
}
`

func parseDirectiveFile(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

func TestDirectivesCovering(t *testing.T) {
	fset, f := parseDirectiveFile(t)
	d := vetkit.NewDirectives(fset, f)

	// Find the field positions.
	var aPos, bPos, cPos token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		fl, ok := n.(*ast.Field)
		if !ok || len(fl.Names) == 0 {
			return true
		}
		switch fl.Names[0].Name {
		case "a":
			aPos = fl.Pos()
		case "b":
			bPos = fl.Pos()
		case "c":
			cPos = fl.Pos()
		}
		return true
	})

	// Trailing same-line directive.
	if got, ok := d.Covering(aPos, "loopowned"); !ok || got.Arg != "loop" {
		t.Fatalf("Covering(a) = %+v, %v; want loopowned loop", got, ok)
	}
	// Directive on the line above.
	if got, ok := d.Covering(bPos, "loopowned"); !ok || got.Arg != "Cluster.Run" {
		t.Fatalf("Covering(b) = %+v, %v; want loopowned Cluster.Run", got, ok)
	}
	// Plain comment is not a directive.
	if _, ok := d.Covering(cPos, "loopowned"); ok {
		t.Fatal("Covering(c) found a directive in a plain comment")
	}
	// Wrong name does not match.
	if d.Has(aPos, "hotpath") {
		t.Fatal("Has(a, hotpath) matched a loopowned directive")
	}
	if arg, ok := d.Arg(aPos, "loopowned"); !ok || arg != "loop" {
		t.Fatalf("Arg(a, loopowned) = %q, %v", arg, ok)
	}
}

func TestDirectivesLoopexemptStatement(t *testing.T) {
	fset, f := parseDirectiveFile(t)
	d := vetkit.NewDirectives(fset, f)
	var pos token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if cl, ok := n.(*ast.CompositeLit); ok {
			pos = cl.Pos()
		}
		return true
	})
	arg, ok := d.Arg(pos, "loopexempt")
	if !ok || arg != "constructor runs before the loop starts" {
		t.Fatalf("loopexempt arg = %q, %v", arg, ok)
	}
}

func TestDocDirectives(t *testing.T) {
	_, f := parseDirectiveFile(t)
	var hotDoc, spinDoc *ast.CommentGroup
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		switch fd.Name.Name {
		case "hot":
			hotDoc = fd.Doc
		case "spin":
			spinDoc = fd.Doc
		}
	}
	if dir, ok := vetkit.DocDirective(hotDoc, "hotpath"); !ok || dir.Arg != "" {
		t.Fatalf("DocDirective(hot, hotpath) = %+v, %v", dir, ok)
	}
	if dir, ok := vetkit.DocDirective(spinDoc, "daemon"); !ok || dir.Arg != "metrics ticker" {
		t.Fatalf("DocDirective(spin, daemon) = %+v, %v", dir, ok)
	}
	// Exact-name matching: "daemon" must not match "daemons" etc.
	if _, ok := vetkit.DocDirective(spinDoc, "daem"); ok {
		t.Fatal("DocDirective matched a name prefix")
	}
	all := vetkit.DocDirectives(spinDoc)
	if len(all) != 1 || all[0].Name != "daemon" {
		t.Fatalf("DocDirectives(spin) = %+v", all)
	}
	if !vetkit.CommentGroupHas(spinDoc, "daemon") || vetkit.CommentGroupHas(hotDoc, "daemon") {
		t.Fatal("CommentGroupHas mismatch")
	}
}

func TestDirectivesIdempotentAdd(t *testing.T) {
	fset, f := parseDirectiveFile(t)
	d := vetkit.NewDirectives(fset, f)
	d.Add(f) // same file again: must not duplicate
	var aPos token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if fl, ok := n.(*ast.Field); ok && len(fl.Names) == 1 && fl.Names[0].Name == "a" {
			aPos = fl.Pos()
		}
		return true
	})
	got, ok := d.Covering(aPos, "loopowned")
	if !ok || got.Arg != "loop" {
		t.Fatalf("after re-Add: Covering(a) = %+v, %v", got, ok)
	}
}
