// Package vettest runs a vetkit analyzer over a fixture source tree and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A line that
// should be flagged carries a trailing comment
//
//	// want "regexp"
//
// (several regexps may follow one want). The test fails when a want
// matches no diagnostic on that line, and when a diagnostic matches no
// want.
package vettest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ocsml/internal/analysis/vetkit"
)

// Run loads the fixture packages at the given import paths (rooted at
// testdata/src relative to the test's working directory) and applies the
// analyzer, checking diagnostics against want comments.
func Run(t *testing.T, testdata string, a *vetkit.Analyzer, importPaths ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	loader := vetkit.NewLoader(map[string]string{"": root})
	var pkgs []*vetkit.Package
	for _, path := range importPaths {
		pkg, err := loader.LoadPackage(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := vetkit.Run([]*vetkit.Analyzer{a}, pkgs, vetkit.NewProgram(loader.Packages))
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	// Collect diagnostics by file:line.
	got := map[key][]string{}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		got[key{pos.Filename, pos.Line}] = append(got[key{pos.Filename, pos.Line}], d.Message)
	}

	// Collect wants by file:line from every fixture file.
	want := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			tf := loader.Fset.File(f.Pos())
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					line := loader.Fset.Position(c.Pos()).Line
					for _, pat := range scanWantPatterns(t, tf.Name(), line, strings.TrimPrefix(text, "want ")) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", tf.Name(), line, pat, err)
						}
						want[key{tf.Name(), line}] = append(want[key{tf.Name(), line}], re)
					}
				}
			}
		}
	}

	for k, res := range want {
		msgs := got[k]
		for _, re := range res {
			matched := -1
			for i, m := range msgs {
				if m != "" && re.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, re, msgs)
				continue
			}
			msgs[matched] = "" // consumed
		}
	}
	for k, msgs := range got {
		for _, m := range msgs {
			if m != "" {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
			}
		}
	}
}

// scanWantPatterns splits the body of a want comment into its quoted
// regexps.
func scanWantPatterns(t *testing.T, file string, line int, body string) []string {
	t.Helper()
	var pats []string
	var sc scanner.Scanner
	fset := token.NewFileSet()
	f := fset.AddFile("", fset.Base(), len(body))
	sc.Init(f, []byte(body), nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			t.Fatalf("%s:%d: malformed want comment %q", file, line, body)
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: %v", file, line, err)
		}
		pats = append(pats, s)
	}
	if len(pats) == 0 {
		t.Fatalf("%s:%d: want comment with no patterns", file, line)
	}
	return pats
}

// RunClean asserts the analyzer produces no diagnostics on the fixture —
// convenience for all-conforming packages.
func RunClean(t *testing.T, testdata string, a *vetkit.Analyzer, importPaths ...string) {
	t.Helper()
	root := filepath.Join(testdata, "src")
	loader := vetkit.NewLoader(map[string]string{"": root})
	var pkgs []*vetkit.Package
	for _, path := range importPaths {
		pkg, err := loader.LoadPackage(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := vetkit.Run([]*vetkit.Analyzer{a}, pkgs, vetkit.NewProgram(loader.Packages))
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		t.Errorf("%s: unexpected diagnostic: %s", fmtPos(loader.Fset, d.Pos), d.Message)
	}
}

func fmtPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
