package vetkit

import (
	"go/ast"
	"go/token"
)

// This file is vetkit's intraprocedural half of the interprocedural
// layer: a lightweight control-flow graph over the statements of one
// function body, and a generic forward dataflow solver over it. The
// graph is deliberately simple — basic blocks hold statement and
// expression nodes in evaluation order, edges follow Go's structured
// control flow, and branch conditions are exposed as entry guards so
// value analyses (statemachine) can narrow on `if x == C` patterns.
//
// Known simplifications, acceptable for a linter over this codebase:
// goto ends its path (the repository has none); a switch containing
// fallthrough drops its case guards; defer bodies run at their lexical
// position (analyzers treat reads inside closures as uses).

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block control enters first; Exit is the synthetic
	// block every return (and the fall-off-the-end path) feeds.
	Entry, Exit *Block
	// Blocks lists every block, Entry first, in creation order.
	Blocks []*Block
}

// A Block is one straight-line run of statements.
type Block struct {
	// Nodes holds statements and branch-condition expressions in
	// evaluation order.
	Nodes []ast.Node
	// Succs are the blocks control may reach next. A block that ends in
	// panic (or return, for non-Exit successors) has none.
	Succs []*Block
	// Guards are conditions known to hold on entry to this block (the
	// then-branch of `if cond` carries {cond, true}; the else-branch and
	// the fall-through of a terminating then-branch carry {cond, false}).
	Guards []Guard
}

// A Guard is one branch condition with the polarity it took.
type Guard struct {
	Cond ast.Expr
	True bool
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cfg.Exit = &Block{}
	b.cfg.Entry = b.newBlock()
	cur := b.stmts(b.cfg.Entry, body.List)
	if cur != nil {
		b.edge(cur, b.cfg.Exit)
	}
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

type loopFrame struct {
	label     string
	brk, cont *Block
}

type cfgBuilder struct {
	cfg   *CFG
	loops []loopFrame
	// pendingLabel names the next loop/switch for labeled break/continue.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(guards ...Guard) *Block {
	blk := &Block{Guards: guards}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur, returning the open block
// after the last statement (nil when control cannot fall through).
func (b *cfgBuilder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/panic/branch: park it in a
			// fresh block with no predecessors so its nodes still exist
			// for position-based lookups, then keep threading.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		next := b.stmt(cur, s.Stmt)
		b.pendingLabel = ""
		return next

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.target(label, true); t != nil {
				b.edge(cur, t)
			}
		case token.CONTINUE:
			if t := b.target(label, false); t != nil {
				b.edge(cur, t)
			}
		case token.GOTO:
			// No goto in the checked code; end the path conservatively.
		}
		// FALLTHROUGH is handled by the switch builder.
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		then := b.newBlock(Guard{s.Cond, true})
		b.edge(cur, then)
		after := b.newBlock(Guard{s.Cond, false})
		thenEnd := b.stmt(then, s.Body)
		if thenEnd != nil {
			b.edge(thenEnd, after)
			// Control can also reach after via the then-branch, so the
			// negative guard no longer holds there.
			after.Guards = nil
		}
		if s.Else != nil {
			els := b.newBlock(Guard{s.Cond, false})
			b.edge(cur, els)
			elseEnd := b.stmt(els, s.Else)
			if elseEnd == nil && thenEnd == nil {
				return nil
			}
			if elseEnd != nil {
				b.edge(elseEnd, after)
				if thenEnd != nil {
					after.Guards = nil
				} else {
					// Only the else path falls through: its guard holds.
					after.Guards = []Guard{{s.Cond, false}}
				}
			}
			return after
		}
		b.edge(cur, after)
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		var body, after *Block
		if s.Cond != nil {
			body = b.newBlock(Guard{s.Cond, true})
			after = b.newBlock(Guard{s.Cond, false})
			b.edge(head, after)
		} else {
			body = b.newBlock()
			after = b.newBlock()
		}
		b.edge(head, body)
		cont := head
		if s.Post != nil {
			cont = b.newBlock()
			cont.Nodes = append(cont.Nodes, s.Post)
			b.edge(cont, head)
		}
		b.pushLoop(after, cont)
		bodyEnd := b.stmt(body, s.Body)
		b.popLoop()
		if bodyEnd != nil {
			b.edge(bodyEnd, cont)
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		// Only the range operand is evaluated at the head; appending the
		// whole statement would re-expose the body (already threaded into
		// its own blocks) to Inspect-based scans. Key/value writes are not
		// modeled.
		if s.X != nil {
			head.Nodes = append(head.Nodes, s.X)
		}
		b.edge(cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(after, head)
		bodyEnd := b.stmt(body, s.Body)
		b.popLoop()
		if bodyEnd != nil {
			b.edge(bodyEnd, head)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.clauseBodies(cur, s.Body)

	case *ast.SelectStmt:
		return b.clauseBodies(cur, s.Body)

	case *ast.DeferStmt, *ast.GoStmt, *ast.ExprStmt, *ast.AssignStmt,
		*ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		cur.Nodes = append(cur.Nodes, s)
		if terminates(s) {
			return nil
		}
		return cur

	default:
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody builds the clause graph of an expression switch. Each case
// entry carries equality guards derived from the tag unless the switch
// uses fallthrough (which would enter a body without its test).
func (b *cfgBuilder) switchBody(cur *Block, tag ast.Expr, body *ast.BlockStmt) *Block {
	hasFallthrough := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				hasFallthrough = true
			}
		}
	}
	after := b.newBlock()
	var negs []Guard
	var prevEnd *Block // fallthrough source
	hasDefault := false
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		// Case expressions are evaluated at the dispatch point (reads in
		// them happen before any clause body runs).
		for _, e := range cc.List {
			cur.Nodes = append(cur.Nodes, e)
		}
		var guards []Guard
		if !hasFallthrough {
			guards, negs = caseGuards(tag, cc, negs)
		}
		entry := b.newBlock(guards...)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cur, entry)
		if prevEnd != nil {
			b.edge(prevEnd, entry)
			entry.Guards = nil
			prevEnd = nil
		}
		b.pushSwitch(after)
		end := b.stmts(entry, cc.Body)
		b.popLoop()
		if end != nil {
			if n := len(cc.Body); n > 0 {
				if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					prevEnd = end
					continue
				}
			}
			b.edge(end, after)
		}
	}
	if !hasDefault || len(body.List) == 0 {
		b.edge(cur, after)
	}
	return after
}

// caseGuards derives entry guards for one case clause: the case's own
// equality (single-expression cases only) plus the negations of every
// preceding case.
func caseGuards(tag ast.Expr, cc *ast.CaseClause, negs []Guard) (guards, negsOut []Guard) {
	guards = append(guards, negs...)
	if tag == nil {
		// switch { case cond: ... }
		if len(cc.List) == 1 {
			guards = append(guards, Guard{cc.List[0], true})
			negs = append(negs, Guard{cc.List[0], false})
		}
		return guards, negs
	}
	for _, e := range cc.List {
		eq := &ast.BinaryExpr{X: tag, OpPos: e.Pos(), Op: token.EQL, Y: e}
		if len(cc.List) == 1 {
			guards = append(guards, Guard{eq, true})
		}
		negs = append(negs, Guard{eq, false})
	}
	return guards, negs
}

// clauseBodies wires the clauses of a type switch or select: every
// clause is a successor of cur, every non-terminated clause feeds after.
func (b *cfgBuilder) clauseBodies(cur *Block, body *ast.BlockStmt) *Block {
	after := b.newBlock()
	hasDefault := false
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
				list = c.Body
			} else {
				list = append([]ast.Stmt{c.Comm}, c.Body...)
			}
		}
		entry := b.newBlock()
		b.edge(cur, entry)
		b.pushSwitch(after)
		end := b.stmts(entry, list)
		b.popLoop()
		if end != nil {
			b.edge(end, after)
		}
	}
	// A type switch without default can skip every clause; a select
	// without default always takes one, but the extra edge is harmless
	// for the may/must analyses built on top.
	if !hasDefault || len(body.List) == 0 {
		b.edge(cur, after)
	}
	return after
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.loops = append(b.loops, loopFrame{label: b.pendingLabel, brk: brk, cont: cont})
	b.pendingLabel = ""
}

func (b *cfgBuilder) pushSwitch(brk *Block) {
	b.loops = append(b.loops, loopFrame{label: b.pendingLabel, brk: brk})
	b.pendingLabel = ""
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *cfgBuilder) target(label string, brk bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if label != "" && f.label != label {
			continue
		}
		if brk {
			return f.brk
		}
		if f.cont != nil {
			return f.cont
		}
		// continue does not bind to switch frames.
	}
	return nil
}

// terminates reports whether a simple statement ends its control path
// (a call to the panic builtin).
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Forward runs a forward dataflow analysis over the CFG to a fixpoint
// and returns the fact holding on entry to each reachable block. The
// transfer function must be monotone and the fact lattice finite (both
// hold for the set- and bitset-valued facts the analyzers use).
func Forward[F any](g *CFG, entry F, transfer func(b *Block, in F) F, merge func(a, b F) F, equal func(a, b F) bool) map[*Block]F {
	in := map[*Block]F{g.Entry: entry}
	work := []*Block{g.Entry}
	inWork := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false
		out := transfer(blk, in[blk])
		for _, succ := range blk.Succs {
			cur, ok := in[succ]
			next := out
			if ok {
				next = merge(cur, out)
			}
			if !ok || !equal(cur, next) {
				in[succ] = next
				if !inWork[succ] {
					inWork[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return in
}
