package vetkit_test

import (
	"go/token"
	"testing"

	"ocsml/internal/analysis/vetkit"
)

// attributionOf loads one fixture package and returns its attribution.
func attributionOf(t *testing.T, src string) (*vetkit.Program, *vetkit.Attribution) {
	t.Helper()
	dir := writeTree(t, map[string]string{"p/p.go": src})
	l := vetkit.NewLoader(map[string]string{"m": dir})
	if _, err := l.LoadPackage("m/p"); err != nil {
		t.Fatalf("LoadPackage: %v", err)
	}
	prog := vetkit.NewProgram(l.Packages)
	return prog, prog.Attribution()
}

// spawnCallees names the resolved target of every spawn, in order.
func spawnCallees(at *vetkit.Attribution) []string {
	var out []string
	for _, s := range at.Spawns {
		switch {
		case s.Callee != nil:
			out = append(out, s.Callee.Name())
		case s.Lit != nil:
			out = append(out, "<lit>")
		default:
			out = append(out, "<unresolved>")
		}
	}
	return out
}

// A `go` statement through a single-assignment method value must
// resolve to the method, and a reassigned binding must not.
func TestSpawnThroughMethodValue(t *testing.T) {
	_, at := attributionOf(t, `package p

type node struct{ ch chan int }

func (n *node) loop()  { <-n.ch }
func (n *node) drain() { <-n.ch }

func (n *node) start(alt bool) {
	f := n.loop
	go f()
	g := n.loop
	if alt {
		g = n.drain
	}
	go g()
}
`)
	got := spawnCallees(at)
	if len(got) != 2 || got[0] != "loop" || got[1] != "<unresolved>" {
		t.Fatalf("spawn targets = %v, want [loop <unresolved>]", got)
	}
}

// A `go` statement on a generic function — explicitly instantiated or
// inferred — must resolve to the generic origin.
func TestSpawnGenericInstantiation(t *testing.T) {
	_, at := attributionOf(t, `package p

func worker[T any](ch chan T) { <-ch }

func start(a chan int, b chan string) {
	go worker[int](a)
	go worker(b)
}
`)
	got := spawnCallees(at)
	if len(got) != 2 || got[0] != "worker" || got[1] != "worker" {
		t.Fatalf("spawn targets = %v, want [worker worker]", got)
	}
}

// A closure spawned inside a loop (capturing the loop variable) is an
// anonymous spawn: the literal is recorded, attributed to the right
// enclosing body, and classified as a go operand.
func TestSpawnClosureCapturingLoopVariable(t *testing.T) {
	_, at := attributionOf(t, `package p

func fanout(peers []chan int) {
	for _, p := range peers {
		go func() { p <- 1 }()
	}
}
`)
	if len(at.Spawns) != 1 {
		t.Fatalf("got %d spawns, want 1", len(at.Spawns))
	}
	s := at.Spawns[0]
	if s.Lit == nil || s.Callee != nil {
		t.Fatalf("loop-closure spawn: Lit=%v Callee=%v, want literal spawn", s.Lit, s.Callee)
	}
	b := at.ByNode[s.Lit]
	if b == nil || b.Use != vetkit.UseGo {
		t.Fatalf("spawned literal body = %+v, want UseGo", b)
	}
	if b.Fn.Obj.Name() != "fanout" || b.Parent == nil || b.Parent.Lit != nil {
		t.Fatalf("spawned literal not attributed to fanout's declaration body")
	}
}

// Literal consumption classification: posted argument, field store,
// append-into-field, defer, immediate invocation, escape.
func TestLitUseClassification(t *testing.T) {
	_, at := attributionOf(t, `package p

type node struct {
	inbox    chan func()
	deferred []func()
	hook     func()
}

func (n *node) post(fn func()) { n.inbox <- fn }

func (n *node) ops() {
	n.post(func() {})                          // arg
	n.deferred = append(n.deferred, func() {}) // append into field
	n.hook = func() {}                         // field store
	defer func() {}()                          // defer
	func() {}()                                // immediate call
	var esc func()
	esc = func() {} // escape
	_ = esc
}
`)
	var got []vetkit.LitUse
	var argCallee, fields []string
	for _, b := range at.Bodies {
		if b.Lit == nil || b.Fn.Obj.Name() != "ops" {
			continue
		}
		got = append(got, b.Use)
		if b.Use == vetkit.UseArg && b.Callee != nil {
			argCallee = append(argCallee, b.Callee.Name())
		}
		if b.Use == vetkit.UseField && b.Field != nil {
			fields = append(fields, b.Field.Name())
		}
	}
	want := []vetkit.LitUse{vetkit.UseArg, vetkit.UseField, vetkit.UseField, vetkit.UseDefer, vetkit.UseCall, vetkit.UseEscape}
	if len(got) != len(want) {
		t.Fatalf("classified %d literals, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("literal %d classified %v, want %v", i, got[i], want[i])
		}
	}
	if len(argCallee) != 1 || argCallee[0] != "post" {
		t.Fatalf("UseArg callee = %v, want [post]", argCallee)
	}
	if len(fields) != 2 || fields[0] != "deferred" || fields[1] != "hook" {
		t.Fatalf("UseField fields = %v, want [deferred hook]", fields)
	}
}

// Calls made inside a nested literal belong to the literal's body, not
// the declaration's, and the go operand's call belongs to neither.
func TestBodyCallOwnership(t *testing.T) {
	_, at := attributionOf(t, `package p

func helper() {}
func spawned() {}

func outer() {
	helper()
	go spawned()
	f := func() { helper() }
	f()
}
`)
	calls := func(b *vetkit.Body) []string {
		var out []string
		for _, c := range b.Calls {
			if c.Callee != nil {
				out = append(out, c.Callee.Name())
			}
		}
		return out
	}
	var declCalls, litCalls []string
	for _, b := range at.Bodies {
		if b.Fn.Obj.Name() != "outer" {
			continue
		}
		if b.Lit == nil {
			declCalls = calls(b)
		} else {
			litCalls = calls(b)
		}
	}
	// The declaration body calls helper and invokes f; spawned's call
	// belongs to the spawned goroutine, not the body.
	for _, c := range declCalls {
		if c == "spawned" {
			t.Fatalf("go operand call attributed to the declaration body: %v", declCalls)
		}
	}
	if len(litCalls) != 1 || litCalls[0] != "helper" {
		t.Fatalf("literal body calls = %v, want [helper]", litCalls)
	}
	if len(at.Spawns) != 1 || at.Spawns[0].Callee == nil || at.Spawns[0].Callee.Name() != "spawned" {
		t.Fatalf("spawns = %v, want [spawned]", spawnCallees(at))
	}
}

// DeclBody finds the declaration body for a function object.
func TestDeclBody(t *testing.T) {
	prog, at := attributionOf(t, `package p

func f() {}
`)
	var fn *vetkit.FuncNode
	for _, n := range prog.CallGraph().Funcs() {
		if n.Obj.Name() == "f" {
			fn = n
		}
	}
	if fn == nil {
		t.Fatal("f not in callgraph")
	}
	b := at.DeclBody(fn.Obj)
	if b == nil || b.Lit != nil || b.Decl == nil || b.Decl.Name.Name != "f" {
		t.Fatalf("DeclBody(f) = %+v", b)
	}
	if b.Parent != nil || b.Use != vetkit.UseDecl {
		t.Fatalf("declaration body has Parent=%v Use=%v", b.Parent, b.Use)
	}
	if bodyStart := b.Decl.Pos(); bodyStart == token.NoPos {
		t.Fatal("declaration body lost its position")
	}
}
