package vetkit_test

import (
	"go/ast"
	"testing"

	"ocsml/internal/analysis/vetkit"
)

// Run must return diagnostics in deterministic (position, analyzer,
// message) order with exact duplicates removed, regardless of the order
// analyzers emit them.
func TestRunOrdersAndDedupes(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"p/p.go": "package p\n\n// A is exported.\nfunc A() {}\n\n// B is exported.\nfunc B() {}\n",
	})
	l := vetkit.NewLoader(map[string]string{"m": dir})
	pkg, err := l.LoadPackage("m/p")
	if err != nil {
		t.Fatalf("LoadPackage: %v", err)
	}

	reportDecls := func(pass *vetkit.Pass, backward bool) {
		var decls []*ast.FuncDecl
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					decls = append(decls, fd)
				}
			}
		}
		if backward {
			for i := len(decls) - 1; i >= 0; i-- {
				pass.Reportf(decls[i].Pos(), "func %s", decls[i].Name.Name)
			}
			return
		}
		for _, fd := range decls {
			pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
		}
	}
	zig := &vetkit.Analyzer{Name: "zig", Doc: "reports decls backward", Run: func(pass *vetkit.Pass) error {
		reportDecls(pass, true)
		reportDecls(pass, true) // duplicates must collapse
		return nil
	}}
	alpha := &vetkit.Analyzer{Name: "alpha", Doc: "reports decls forward", Run: func(pass *vetkit.Pass) error {
		reportDecls(pass, false)
		return nil
	}}

	diags, err := vetkit.Run([]*vetkit.Analyzer{zig, alpha}, []*vetkit.Package{pkg}, vetkit.NewProgram(l.Packages))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+d.Message)
	}
	want := []string{"alpha:func A", "zig:func A", "alpha:func B", "zig:func B"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diag %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}
