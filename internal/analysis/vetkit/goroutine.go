package vetkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Goroutine attribution: the structural layer under the v3 concurrency
// analyzers (loopowned, quitpath). It enumerates every executable body
// in the program — each function declaration plus each function literal
// nested inside one — classifies how every literal's value is consumed
// (spawned, deferred, invoked in place, posted as an argument, stored
// into a field, escaped), resolves every `go` statement to the function
// it spawns (through method selectors, single-assignment method values
// and generic instantiations), and records the static calls each body
// makes. The analyzers layer goroutine-context reasoning on top: which
// named goroutine a body runs on is a fixpoint over these edges plus
// their own directive-provided seeds.

// An Attribution is the per-Program body/spawn index.
type Attribution struct {
	// Bodies lists every executable body, sorted by position.
	Bodies []*Body
	// ByNode maps the owning *ast.FuncDecl or *ast.FuncLit to its body.
	ByNode map[ast.Node]*Body
	// Spawns lists every go statement, sorted by position.
	Spawns []*SpawnSite
}

// LitUse classifies how a function literal's value is consumed at its
// creation site.
type LitUse int

const (
	// UseDecl marks a declared function's own body (not a literal).
	UseDecl LitUse = iota
	// UseGo: operand of a go statement — the literal is a new goroutine.
	UseGo
	// UseDefer: operand of a defer — runs in the enclosing context.
	UseDefer
	// UseCall: invoked where it is written — runs in the enclosing
	// context.
	UseCall
	// UseArg: passed as an argument to a call; Call, Callee and ArgIndex
	// identify the consumer. Whether the consumer runs it synchronously,
	// posts it to an event loop or leaks it to another goroutine is the
	// analyzer's judgment.
	UseArg
	// UseField: assigned (or appended) into a struct field; Field names
	// it. Event loops store deferred work this way.
	UseField
	// UseEscape: stored in a variable, returned, sent on a channel, or
	// otherwise consumed in a way the layer does not track.
	UseEscape
)

// A Body is one executable body: a declared function, or one function
// literal nested inside a declared function.
type Body struct {
	Pkg *Package
	// Fn is the enclosing declared function's callgraph node.
	Fn *FuncNode
	// Decl is the declaration owning this body (set for every body).
	Decl *ast.FuncDecl
	// Lit is the literal this body belongs to; nil for the declaration
	// body itself.
	Lit *ast.FuncLit
	// Parent is the lexically enclosing body; nil for declarations.
	Parent *Body
	// Use classifies how the literal's value is consumed (UseDecl for
	// declarations).
	Use LitUse
	// Call is the consuming call for UseArg/UseCall/UseDefer/UseGo.
	Call *ast.CallExpr
	// Callee is the consuming call's static target for UseArg (nil when
	// the consumer is dynamic or a builtin).
	Callee *types.Func
	// ArgIndex is the literal's position in Call.Args for UseArg.
	ArgIndex int
	// Field is the struct field the literal is stored into for UseField.
	Field *types.Var
	// Calls lists every call lexically in this body, excluding calls
	// inside nested literals (those belong to the nested body) and go
	// operands (those run on the spawned goroutine).
	Calls []*BodyCall
}

// A BodyCall is one call a body makes.
type BodyCall struct {
	Call *ast.CallExpr
	// Callee is the resolved target: a declared function or method for
	// static calls, the interface method for interface dispatch, nil for
	// builtins and untracked function values.
	Callee *types.Func
	// Dynamic reports interface dispatch (Callee is the interface
	// method, not an implementation).
	Dynamic bool
}

// A SpawnSite is one go statement.
type SpawnSite struct {
	// Body is the body lexically containing the go statement.
	Body *Body
	Go   *ast.GoStmt
	// Callee is the spawned function, resolved through method selectors,
	// locally bound method values and generic instantiations; nil when
	// the operand is a literal or cannot be resolved.
	Callee *types.Func
	// Lit is the spawned literal when the operand is one.
	Lit *ast.FuncLit
}

// DeclBody returns the declaration body of fn, or nil when fn has no
// source in the program.
func (at *Attribution) DeclBody(fn *types.Func) *Body {
	for _, b := range at.Bodies {
		if b.Lit == nil && b.Fn.Obj == fn {
			return b
		}
	}
	return nil
}

// attribute builds the Attribution for a program.
func attribute(p *Program) *Attribution {
	at := &Attribution{ByNode: map[ast.Node]*Body{}}
	cg := p.CallGraph()

	// Deterministic package order: all structures sort by position at
	// the end, but building in a stable order keeps slice contents (and
	// therefore any analyzer that iterates them) reproducible.
	var paths []string
	for path := range p.Packages {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	for _, path := range paths {
		pkg := p.Packages[path]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				attributeDecl(at, pkg, cg.Node(obj), fd)
			}
		}
	}
	sort.Slice(at.Bodies, func(i, j int) bool { return bodyPos(at.Bodies[i]) < bodyPos(at.Bodies[j]) })
	sort.Slice(at.Spawns, func(i, j int) bool { return at.Spawns[i].Go.Pos() < at.Spawns[j].Go.Pos() })
	return at
}

func bodyPos(b *Body) token.Pos {
	if b.Lit != nil {
		return b.Lit.Pos()
	}
	return b.Decl.Pos()
}

// attributeDecl builds the bodies, calls and spawn sites of one
// declared function.
func attributeDecl(at *Attribution, pkg *Package, fn *FuncNode, fd *ast.FuncDecl) {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	bindings := funcBindings(pkg, fd)

	declBody := &Body{Pkg: pkg, Fn: fn, Decl: fd, Use: UseDecl}
	at.Bodies = append(at.Bodies, declBody)
	at.ByNode[fd] = declBody

	// enclosing returns the body owning node n (the nearest enclosing
	// FuncLit already registered, else the declaration body).
	enclosing := func(n ast.Node) *Body {
		for p := parents[n]; p != nil; p = parents[p] {
			if lit, ok := p.(*ast.FuncLit); ok {
				return at.ByNode[lit]
			}
		}
		return declBody
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			b := &Body{Pkg: pkg, Fn: fn, Decl: fd, Lit: n, Parent: enclosing(n)}
			classifyLit(pkg, b, n, parents, bindings)
			at.Bodies = append(at.Bodies, b)
			at.ByNode[n] = b
		case *ast.GoStmt:
			site := &SpawnSite{Body: enclosing(n), Go: n}
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				site.Lit = lit
			} else {
				site.Callee = ResolveFuncExpr(pkg, bindings, n.Call.Fun)
			}
			at.Spawns = append(at.Spawns, site)
		case *ast.CallExpr:
			// The operand call of a go statement runs on the spawned
			// goroutine, not in this body.
			if g, ok := parents[n].(*ast.GoStmt); ok && g.Call == n {
				return true
			}
			b := enclosing(n)
			callee := ResolveFuncExpr(pkg, bindings, n.Fun)
			dynamic := false
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					dynamic = types.IsInterface(s.Recv().Underlying())
				}
			}
			b.Calls = append(b.Calls, &BodyCall{Call: n, Callee: callee, Dynamic: dynamic})
		}
		return true
	})
}

// classifyLit determines how the literal's value is consumed by
// examining its ancestors.
func classifyLit(pkg *Package, b *Body, lit *ast.FuncLit, parents map[ast.Node]ast.Node, bindings map[*types.Var]*types.Func) {
	// Walk out of any parenthesization.
	var n ast.Node = lit
	for {
		p, ok := parents[n].(*ast.ParenExpr)
		if !ok {
			break
		}
		n = p
	}
	switch p := parents[n].(type) {
	case *ast.CallExpr:
		if p.Fun == n {
			b.Call = p
			switch gp := parents[p].(type) {
			case *ast.GoStmt:
				if gp.Call == p {
					b.Use = UseGo
					return
				}
			case *ast.DeferStmt:
				if gp.Call == p {
					b.Use = UseDefer
					return
				}
			}
			b.Use = UseCall
			return
		}
		for i, arg := range p.Args {
			if arg == n {
				// append(x.field, ..., lit) assigned back into the field
				// counts as a field store: event loops defer work with
				// exactly this shape.
				if fv := appendFieldTarget(pkg, n, parents); fv != nil {
					b.Use = UseField
					b.Field = fv
					return
				}
				b.Use = UseArg
				b.Call = p
				b.ArgIndex = i
				if fn := ResolveFuncExpr(pkg, bindings, p.Fun); fn != nil {
					b.Callee = fn
				}
				return
			}
		}
		b.Use = UseEscape
	case *ast.AssignStmt:
		// Literal on the right-hand side: find its assignment target.
		for i, rhs := range p.Rhs {
			if rhs != n || i >= len(p.Lhs) {
				continue
			}
			if fv := fieldTarget(pkg, p.Lhs[i]); fv != nil {
				b.Use = UseField
				b.Field = fv
				return
			}
		}
		b.Use = UseEscape
	default:
		b.Use = UseEscape
	}
}

// fieldTarget resolves an assignment target to the struct field it
// names, or nil when the target is not a field selector.
func fieldTarget(pkg *Package, lhs ast.Expr) *types.Var {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj().(*types.Var)
	}
	return nil
}

// appendFieldTarget recognizes `x.f = append(x.f, ..., lit, ...)` and
// returns the field x.f.
func appendFieldTarget(pkg *Package, n ast.Node, parents map[ast.Node]ast.Node) *types.Var {
	call, ok := parents[n].(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	assign, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return nil
	}
	for i, rhs := range assign.Rhs {
		if rhs == call && i < len(assign.Lhs) {
			return fieldTarget(pkg, assign.Lhs[i])
		}
	}
	return nil
}

// funcBindings collects single-assignment local variables of function
// type bound to a resolvable function, so `f := n.loop; go f()` (a
// method value spawn) resolves to the method. A variable assigned more
// than once is dropped: the binding is no longer unambiguous.
func funcBindings(pkg *Package, fd *ast.FuncDecl) map[*types.Var]*types.Func {
	bindings := map[*types.Var]*types.Func{}
	killed := map[*types.Var]bool{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := pkg.Info.Defs[id].(*types.Var)
		if !ok {
			if v, ok = pkg.Info.Uses[id].(*types.Var); !ok {
				return
			}
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return
		}
		if _, seen := bindings[v]; seen || killed[v] {
			delete(bindings, v)
			killed[v] = true
			return
		}
		if fn := ResolveFuncExpr(pkg, nil, rhs); fn != nil {
			bindings[v] = fn
		} else {
			killed[v] = true
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bind(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					bind(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return bindings
}

// ResolveFuncExpr resolves an expression in function position to the
// *types.Func it denotes: a plain function identifier, a method
// selector (through types.Selections), a qualified package function, a
// generic instantiation (the origin function), or a local variable
// holding a single-assignment method value (through bindings; nil
// bindings disables that case).
func ResolveFuncExpr(pkg *Package, bindings map[*types.Var]*types.Func, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[e].(type) {
		case *types.Func:
			return obj
		case *types.Var:
			return bindings[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			return sel.Obj().(*types.Func)
		}
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return obj
		}
	case *ast.IndexExpr:
		return ResolveFuncExpr(pkg, bindings, e.X)
	case *ast.IndexListExpr:
		return ResolveFuncExpr(pkg, bindings, e.X)
	}
	return nil
}
