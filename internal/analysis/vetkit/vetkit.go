// Package vetkit is a small, dependency-free analysis framework modeled
// on golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package (a Pass) and reports Diagnostics. The repository
// deliberately has no external dependencies, so cmd/ocsmlvet cannot use
// the real go/analysis multichecker; vetkit reimplements the slice of it
// the ocsml analyzers need on top of go/parser and go/types alone.
//
// The API mirrors go/analysis closely enough that porting an analyzer to
// the upstream framework is mechanical: Analyzer{Name, Doc, Run},
// Pass{Fset, Files, Pkg, TypesInfo, Report}, Diagnostic{Pos, Message}.
//
// # Directives
//
// The analyzers communicate with the code they check through
// machine-readable comments of the form
//
//	//ocsml:<name> [argument or reason]
//
// placed on the flagged line, on the line directly above it, or in the
// doc comment of the declaration. The Directives index (directives.go)
// collects every such comment once per program so analyzers share one
// parse. See the individual analyzers for the directives they honor
// (wallclock, unordered, guardedby, locked, nolock, nofsync,
// wirepayload, errsink, nopiggyback, state, loopowned, looppost,
// loopcontext, loopexempt, daemon, hotpath, alloc).
package vetkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a name, a doc string, and a Run
// function applied to every package under analysis.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the directory the package was loaded from.
	Dir string

	// Program exposes the whole-program view: every package the loader
	// resolved from source plus the lazily built callgraph. Analyzers
	// that need cross-package context (wireexhaustive's payload registry,
	// the interprocedural analyzers' summaries) read it; most ignore it.
	Program *Program

	report func(Diagnostic)
}

// Reportf records an error-severity diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully specified diagnostic (severity, range, fix).
func (p *Pass) Report(d Diagnostic) {
	p.report(d)
}

// Severity classifies a diagnostic. Errors fail the build; warnings
// surface in reports (and code scanning) without failing it.
type Severity uint8

const (
	// SevError is the default: the finding blocks the build.
	SevError Severity = iota
	// SevWarning is advisory: reported, uploaded to code scanning, but
	// not a build failure.
	SevWarning
)

func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// A TextEdit is one replacement of the source range [Pos, End) with
// NewText. Pos == End inserts.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A SuggestedFix is a mechanical repair for a diagnostic, applied by
// `ocsmlvet -fix`. Only diagnostics whose repair is purely syntactic
// (a directive stub, an annotation) carry one.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: end of the flagged range (NoPos = point)
	Message  string
	Analyzer string   // filled by Run
	Severity Severity // zero value SevError
	Fix      *SuggestedFix
}

// A Package is one source-loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Fset    *token.FileSet
}

// Run applies every analyzer to every package and returns the combined
// diagnostics in deterministic order — sorted by (position, analyzer,
// message), with exact duplicates removed. Two analyzers flagging the
// same position therefore always print in the same order, and one
// finding reported through two packages (interprocedural analyzers see
// the whole program from every pass) prints once.
func Run(analyzers []*Analyzer, pkgs []*Package, program *Program) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dir:       pkg.Dir,
				Program:   program,
				report: func(d Diagnostic) {
					d.Analyzer = a.Name
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return dedupe(diags), nil
}

// dedupe drops diagnostics identical to their predecessor in a sorted
// slice. Identity is (position, analyzer, message): interprocedural
// analyzers report the same finding once per pass, each carrying its
// own (equivalent) fix, so the Fix pointer is deliberately excluded.
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d.Pos == diags[i-1].Pos && d.Analyzer == diags[i-1].Analyzer &&
			d.Message == diags[i-1].Message {
			continue
		}
		out = append(out, d)
	}
	return out
}

// ---- directives ----

// directivePrefix introduces every machine-readable comment vetkit
// understands.
const directivePrefix = "ocsml:"

// A Directive is one parsed //ocsml:<name> comment.
type Directive struct {
	Name string    // e.g. "wallclock"
	Arg  string    // remainder of the line, trimmed (reason or argument)
	Line int       // line the comment sits on (filled by FileDirectives)
	Pos  token.Pos // position of the comment
	End  token.Pos // end of the comment (suggested-fix insertion anchor)
}

// FileDirectives extracts every //ocsml: directive in the file, keyed by
// the line the comment occupies. Most analyzers should use the shared
// Directives index (Program.Directives) instead of re-scanning files.
func FileDirectives(fset *token.FileSet, f *ast.File) map[int][]Directive {
	out := map[int][]Directive{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok {
				continue
			}
			d.Line = fset.Position(c.Pos()).Line
			out[d.Line] = append(out[d.Line], d)
		}
	}
	return out
}

// CommentGroupHas reports whether a doc comment group contains the named
// directive (used for declarations, where the directive lives in the doc
// comment rather than on the statement line).
func CommentGroupHas(cg *ast.CommentGroup, name string) bool {
	_, ok := DocDirective(cg, name)
	return ok
}

// PathHasSuffix reports whether an import path ends with the given
// slash-separated suffix on a path-component boundary: "internal/des"
// matches "ocsml/internal/des" but not "ocsml/internal/designer".
func PathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}
