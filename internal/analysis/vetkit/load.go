package vetkit

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Loader parses and type-checks packages from source. It resolves
// imports under Roots (import-path prefix -> directory) by recursive
// source loading, and everything else through the standard library's
// source importer — no export data, no go/packages, no external
// dependencies. Test files (_test.go) are not loaded; the analyzers
// check production code, the test suite checks itself at run time.
type Loader struct {
	// Roots maps an import-path prefix to the directory holding its
	// source tree. For a module checkout this is {modulePath: moduleDir};
	// vettest maps a fixture tree the same way.
	Roots map[string]string

	Fset     *token.FileSet
	Packages map[string]*Package // by import path, every source-loaded package

	// buildCtx filters files exactly as a plain `go build` would: GOOS /
	// GOARCH conventions and //go:build constraints. With no extra tags,
	// files gated behind optional tags (e.g. the `soak` harness) are
	// excluded from analysis just as they are from the default build;
	// SetBuildTags brings them in.
	buildCtx build.Context

	std  types.ImporterFrom
	info *types.Info
}

// SetBuildTags adds build tags to the loader's file-matching context,
// the equivalent of `go vet -tags`. Must be called before any package
// is loaded.
func (l *Loader) SetBuildTags(tags []string) {
	l.buildCtx.BuildTags = append(l.buildCtx.BuildTags[:len(l.buildCtx.BuildTags):len(l.buildCtx.BuildTags)], tags...)
}

// NewLoader builds a loader over the given import-path roots.
func NewLoader(roots map[string]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Roots:    roots,
		Fset:     fset,
		Packages: map[string]*Package{},
		buildCtx: build.Default,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
}

// ModuleLoader returns a loader rooted at the module containing dir,
// along with the module path read from go.mod.
func ModuleLoader(dir string) (*Loader, string, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, "", err
	}
	return NewLoader(map[string]string{modPath: modDir}), modPath, nil
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (modDir, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("vetkit: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("vetkit: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// resolve maps an import path to a source directory using the longest
// matching root prefix.
func (l *Loader) resolve(path string) (string, bool) {
	best, bestDir, ok := "", "", false
	for prefix, dir := range l.Roots {
		// The empty prefix (vettest's fixture root) matches every path.
		if prefix == "" || path == prefix || strings.HasPrefix(path, prefix+"/") {
			if !ok || len(prefix) >= len(best) {
				best, bestDir, ok = prefix, dir, true
			}
		}
	}
	if !ok {
		return "", false
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, best), "/")
	return filepath.Join(bestDir, filepath.FromSlash(rel)), true
}

// Import implements types.Importer: module-rooted paths load from
// source, everything else falls back to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.Packages[path]; ok {
		return pkg.Types, nil
	}
	// A resolvable path with no source there (possible under the
	// catch-all fixture root) falls through to the stdlib importer.
	if dir, ok := l.resolve(path); ok && l.hasGoFiles(dir) {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, "", 0)
}

// LoadPackage loads (or returns the cached) package at the given import
// path, which must resolve under one of the roots.
func (l *Loader) LoadPackage(path string) (*Package, error) {
	if pkg, ok := l.Packages[path]; ok {
		return pkg, nil
	}
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("vetkit: import path %q is outside every root", path)
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := l.buildCtx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vetkit: no Go source in %s", dir)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, l.info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		PkgPath: path, Dir: dir, Files: files,
		Types: tpkg, Info: l.info, Fset: l.Fset,
	}
	l.Packages[path] = pkg
	return pkg, nil
}

// Expand resolves command-line package patterns relative to the root
// with the given import-path prefix: "<prefix>/..." (or "./...") walks
// the tree; anything else is taken as one import path (a "./"-prefixed
// pattern is rebased onto the root prefix). Directories named testdata,
// hidden directories, and directories with no non-test Go files are
// skipped.
func (l *Loader) Expand(prefix string, patterns []string) ([]string, error) {
	root, ok := l.Roots[prefix]
	if !ok {
		return nil, fmt.Errorf("vetkit: unknown root prefix %q", prefix)
	}
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		// Normalize "./internal/wire/" to "./internal/wire": a trailing
		// slash would otherwise mint a second import path for the same
		// directory, loading (and checking) the package twice.
		for len(pat) > 1 && strings.HasSuffix(pat, "/") {
			pat = strings.TrimSuffix(pat, "/")
		}
		switch {
		case pat == "./..." || pat == prefix+"/..." || pat == "...":
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := filepath.Base(p)
				if p != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
					return filepath.SkipDir
				}
				if !l.hasGoFiles(p) {
					return nil
				}
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				if rel == "." {
					add(prefix)
				} else {
					add(prefix + "/" + filepath.ToSlash(rel))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, "./"):
			add(prefix + "/" + filepath.ToSlash(strings.TrimPrefix(pat, "./")))
		default:
			add(pat)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := l.buildCtx.MatchFile(dir, name); err == nil && ok {
			return true
		}
	}
	return false
}
