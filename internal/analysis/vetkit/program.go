package vetkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// A Program is the whole-program view shared by every pass of one
// analysis run: every package the loader resolved from source, plus the
// interprocedural structures (callgraph) built lazily over them. The
// per-package analyzers ignore it; the interprocedural ones (errflow,
// piggybackcomplete, statemachine) key their cached summaries off the
// Program pointer, so one ocsmlvet invocation builds each structure
// exactly once no matter how many packages it checks.
type Program struct {
	// Packages maps import path to every source-loaded package.
	Packages map[string]*Package

	cgOnce sync.Once
	cg     *CallGraph

	dirOnce sync.Once
	dirs    *Directives

	attrOnce sync.Once
	attr     *Attribution
}

// NewProgram wraps a loader's package map.
func NewProgram(pkgs map[string]*Package) *Program {
	return &Program{Packages: pkgs}
}

// PackageBySuffix returns the source-loaded package whose import path
// ends with the given slash-separated suffix, or nil. Analyzers use it
// to locate well-known packages (internal/protocol, internal/checkpoint)
// in both the real module and fixture trees.
func (p *Program) PackageBySuffix(suffix string) *Package {
	var best *Package
	for path, pkg := range p.Packages {
		if PathHasSuffix(path, suffix) {
			// Prefer the shortest matching path so a fixture tree holding
			// several roots resolves deterministically.
			if best == nil || len(path) < len(best.PkgPath) {
				best = pkg
			}
		}
	}
	return best
}

// CallGraph returns the static callgraph over every source-loaded
// function, built on first use and cached for the Program's lifetime.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p) })
	return p.cg
}

// Directives returns the shared //ocsml: directive index over every
// source-loaded file, built on first use. All packages of one program
// share a single FileSet, so one index answers position queries for
// every analyzer.
func (p *Program) Directives() *Directives {
	p.dirOnce.Do(func() {
		var fset *token.FileSet
		var files []*ast.File
		for _, pkg := range p.Packages {
			fset = pkg.Fset
			files = append(files, pkg.Files...)
		}
		if fset == nil {
			fset = token.NewFileSet()
		}
		p.dirs = NewDirectives(fset, files...)
	})
	return p.dirs
}

// Attribution returns the goroutine-attribution view (every executable
// body plus every spawn site), built on first use.
func (p *Program) Attribution() *Attribution {
	p.attrOnce.Do(func() { p.attr = attribute(p) })
	return p.attr
}

// A CallGraph records, for every function with source in the program,
// its resolved static call sites. Dynamic dispatch (interface method
// calls) is recorded per site but deliberately not edge-expanded:
// protocols are single-threaded state machines whose effect interfaces
// never call back into them, so the analyzers treat dynamic calls by
// name rather than by conservative fan-out.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
}

// A FuncNode is one function (or method) in the callgraph.
type FuncNode struct {
	// Obj is the function's type-checker object.
	Obj *types.Func
	// Decl is the function's source declaration; nil when the function
	// was resolved through the stdlib importer (no source loaded).
	Decl *ast.FuncDecl
	// Pkg is the source package the declaration lives in (nil with Decl).
	Pkg *Package
	// Calls lists every call site inside Decl, in source order,
	// including sites inside nested function literals (flagged InLit).
	Calls []*CallSite
	// CalledBy lists every static call site that resolves to this
	// function.
	CalledBy []*CallSite
}

// A CallSite is one call expression inside a function body.
type CallSite struct {
	// Caller is the enclosing declared function.
	Caller *FuncNode
	// Callee is the statically resolved target, nil for dynamic calls
	// (interface methods, function values) and builtins.
	Callee *FuncNode
	// Iface is the interface method a dynamic call goes through, nil
	// for static calls and non-interface dynamic calls.
	Iface *types.Func
	// Call is the call expression itself.
	Call *ast.CallExpr
	// InLit reports that the site sits inside a function literal nested
	// in Caller: the call runs when the closure runs, not when Caller's
	// body reaches it.
	InLit bool
}

// Node returns the callgraph node for fn, or nil when fn has no source
// in the program and no site calls it.
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	return g.nodes[fn]
}

// Funcs returns every node with a source declaration, sorted by
// declaration position (the loader shares one FileSet, so positions
// order deterministically across packages).
func (g *CallGraph) Funcs() []*FuncNode {
	var out []*FuncNode
	for _, n := range g.nodes {
		if n.Decl != nil {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// buildCallGraph walks every declared function body in every package and
// resolves its call sites.
func buildCallGraph(p *Program) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*FuncNode{}}
	node := func(fn *types.Func) *FuncNode {
		n, ok := g.nodes[fn]
		if !ok {
			n = &FuncNode{Obj: fn}
			g.nodes[fn] = n
		}
		return n
	}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := node(obj)
				n.Decl = fd
				n.Pkg = pkg
				collectCalls(pkg, n, fd.Body, false, node)
			}
		}
	}
	return g
}

// collectCalls appends every call site under root to caller.Calls.
func collectCalls(pkg *Package, caller *FuncNode, root ast.Node, inLit bool, node func(*types.Func) *FuncNode) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !inLit {
				// Descend once with the flag set; returning false here
				// stops this walk, so recurse explicitly.
				collectCalls(pkg, caller, n.Body, true, node)
				return false
			}
			return true
		case *ast.CallExpr:
			site := &CallSite{Caller: caller, Call: n, InLit: inLit}
			fn, dynamic := resolveCallee(pkg, n)
			if fn != nil && !dynamic {
				site.Callee = node(fn)
				site.Callee.CalledBy = append(site.Callee.CalledBy, site)
			} else if fn != nil {
				site.Iface = fn
			}
			caller.Calls = append(caller.Calls, site)
		}
		return true
	})
}

// resolveCallee maps a call expression to the *types.Func it invokes.
// dynamic reports interface dispatch (the returned func is the interface
// method, not an implementation).
func resolveCallee(pkg *Package, call *ast.CallExpr) (fn *types.Func, dynamic bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return obj, false
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			obj := sel.Obj().(*types.Func)
			return obj, types.IsInterface(sel.Recv().Underlying())
		}
		// Qualified package function (os.Rename) resolves through Uses.
		if obj, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return obj, false
		}
	}
	return nil, false
}

// ErrorResultIndex returns the position of the (single) error result in
// fn's signature, or -1 when fn does not return an error.
func ErrorResultIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}
