package vetkit

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives is the shared //ocsml: comment index for one analysis run.
// Every analyzer used to re-scan f.Comments itself (errflow,
// statemachine and lockdiscipline each carried a private copy of the
// line-keyed map); Directives parses each file once and answers the two
// questions they all ask — "is position P covered by directive N?" and
// "what is N's argument?" — plus doc-comment lookups for declarations.
//
// Coverage follows the repository convention: a directive covers a
// position when it sits on the same line or on the line directly above
// (a comment on its own line annotating the statement below). For
// declarations the directive lives in the doc comment instead; use the
// Doc helpers.
type Directives struct {
	fset   *token.FileSet
	byFile map[string]map[int][]Directive
}

// NewDirectives indexes the given files. All files must belong to fset.
func NewDirectives(fset *token.FileSet, files ...*ast.File) *Directives {
	d := &Directives{fset: fset, byFile: map[string]map[int][]Directive{}}
	d.Add(files...)
	return d
}

// Add indexes more files (idempotent per file).
func (d *Directives) Add(files ...*ast.File) {
	for _, f := range files {
		name := d.fset.Position(f.Pos()).Filename
		if _, ok := d.byFile[name]; ok {
			continue
		}
		d.byFile[name] = FileDirectives(d.fset, f)
	}
}

// Covering returns the directive of the given name covering pos: same
// line first, then the line directly above.
func (d *Directives) Covering(pos token.Pos, name string) (Directive, bool) {
	p := d.fset.Position(pos)
	lines := d.byFile[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, dir := range lines[line] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// Has reports whether a directive of the given name covers pos.
func (d *Directives) Has(pos token.Pos, name string) bool {
	_, ok := d.Covering(pos, name)
	return ok
}

// FileHas reports whether the file containing pos declares a directive
// of the given name anywhere — file-scoped switches like detclean's
// //ocsml:realtime.
func (d *Directives) FileHas(pos token.Pos, name string) bool {
	p := d.fset.Position(pos)
	for _, dirs := range d.byFile[p.Filename] {
		for _, dir := range dirs {
			if dir.Name == name {
				return true
			}
		}
	}
	return false
}

// Arg returns the argument of the named directive covering pos.
func (d *Directives) Arg(pos token.Pos, name string) (string, bool) {
	dir, ok := d.Covering(pos, name)
	return dir.Arg, ok
}

// DocDirectives parses every //ocsml: directive in a doc comment group,
// in source order. Declarations (types, funcs, struct fields) annotate
// themselves through their doc comment; statemachine's transition
// tables and loopowned's ownership markers both read this form.
func DocDirectives(cg *ast.CommentGroup) []Directive {
	if cg == nil {
		return nil
	}
	var out []Directive
	for _, c := range cg.List {
		if dir, ok := parseDirective(c); ok {
			out = append(out, dir)
		}
	}
	return out
}

// DocDirective returns the first directive of the given name in a doc
// comment group.
func DocDirective(cg *ast.CommentGroup, name string) (Directive, bool) {
	for _, dir := range DocDirectives(cg) {
		if dir.Name == name {
			return dir, true
		}
	}
	return Directive{}, false
}

// parseDirective parses one //ocsml:<name> [arg] comment.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	body := strings.TrimPrefix(text, directivePrefix)
	name, arg, _ := strings.Cut(body, " ")
	return Directive{Name: name, Arg: strings.TrimSpace(arg), Pos: c.Pos(), End: c.End()}, true
}
