package vetkit_test

import (
	"os"
	"path/filepath"
	"testing"

	"ocsml/internal/analysis/vetkit"
)

// writeTree materializes a fixture source tree in a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// Build-constrained files must be excluded exactly as a plain
// `go build` excludes them: the soak-tagged file below redeclares Mode
// and would fail type-checking if loaded.
func TestLoadHonorsBuildConstraints(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"p/normal.go": "package p\n\n// Mode names the build flavor.\nconst Mode = \"normal\"\n",
		"p/soak.go":   "//go:build soak\n\npackage p\n\n// Mode names the build flavor.\nconst Mode = \"soak\"\n",
	})
	l := vetkit.NewLoader(map[string]string{"m": dir})
	pkg, err := l.LoadPackage("m/p")
	if err != nil {
		t.Fatalf("LoadPackage: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (soak-tagged file must be excluded)", len(pkg.Files))
	}
}

// Generic functions must type-check, and calls to them must resolve in
// the callgraph so interprocedural analyzers see through instantiation.
func TestLoadGenerics(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"g/g.go": `package g

// Map applies f to every element.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Doubled doubles every element via an inferred instantiation.
func Doubled(xs []int) []int {
	return Map(xs, func(x int) int { return x * 2 })
}
`,
	})
	l := vetkit.NewLoader(map[string]string{"m": dir})
	if _, err := l.LoadPackage("m/g"); err != nil {
		t.Fatalf("LoadPackage: %v", err)
	}
	cg := vetkit.NewProgram(l.Packages).CallGraph()
	resolved := false
	for _, n := range cg.Funcs() {
		if n.Obj.Name() != "Doubled" {
			continue
		}
		for _, site := range n.Calls {
			if site.Callee != nil && site.Callee.Obj.Name() == "Map" {
				resolved = true
			}
		}
	}
	if !resolved {
		t.Fatal("call to generic Map did not resolve to a callgraph edge")
	}
}

// Expand must skip testdata, hidden, and underscore directories (their
// contents need not even be valid Go), and directories whose only files
// are excluded by build constraints.
func TestExpandSkipsNonPackageDirs(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"p/p.go":               "package p\n",
		"p/testdata/broken.go": "this is not Go\n",
		"p/_wip/w.go":          "neither is this\n",
		"p/.hidden/h.go":       "nor this\n",
		"q/only_soak.go":       "//go:build soak\n\npackage q\n",
	})
	l := vetkit.NewLoader(map[string]string{"m": dir})
	paths, err := l.Expand("m", []string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(paths) != 1 || paths[0] != "m/p" {
		t.Fatalf("Expand = %v, want [m/p]", paths)
	}
	if _, err := l.LoadPackage("m/p"); err != nil {
		t.Fatalf("LoadPackage after Expand: %v", err)
	}
}
