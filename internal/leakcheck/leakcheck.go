// Package leakcheck verifies that a test binary's goroutines have all
// exited when its tests finish — the stdlib-only equivalent of
// go.uber.org/goleak. Packages whose tests start real goroutines (TCP
// meshes, daemons, chaos injectors) wrap their TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the tests pass, Main snapshots every goroutine stack, retries
// while transient goroutines (timer callbacks, closing connections)
// drain, and fails the binary if anything interesting survives. A leak
// here is a real bug: the runtime's shutdown paths (Cluster.Stop,
// Node.Close, daemon teardown) are supposed to reap every goroutine
// they start.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// Main runs the tests, then fails the binary if goroutines leaked.
func Main(m interface{ Run() int }) {
	code := m.Run()
	if code == 0 {
		if err := Check(); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// checkRounds x checkInterval bounds how long Check waits for transient
// goroutines to drain (~5s), without reading the wall clock.
const (
	checkRounds   = 500
	checkInterval = 10 * time.Millisecond
)

// Check waits for every interesting goroutine to exit and returns an
// error naming the survivors.
func Check() error {
	var leaked []string
	for i := 0; i < checkRounds; i++ {
		leaked = interesting()
		if len(leaked) == 0 {
			return nil
		}
		time.Sleep(checkInterval)
	}
	return fmt.Errorf("%d goroutine(s) still running after tests:\n\n%s",
		len(leaked), strings.Join(leaked, "\n\n"))
}

// interesting snapshots all goroutine stacks and filters out the ones a
// finished test binary legitimately has.
func interesting() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || benign(g) {
			continue
		}
		out = append(out, g)
	}
	return out
}

// benign reports whether a goroutine stack belongs to the test harness
// or the runtime rather than code under test.
func benign(stack string) bool {
	first, _, _ := strings.Cut(stack, "\n")
	if strings.HasPrefix(first, "goroutine 1 ") {
		return true // main goroutine: runs leakcheck itself
	}
	for _, marker := range []string{
		"testing.(*T).Run",          // parked subtest parents
		"testing.(*M).startAlarm",   // test timeout timer
		"testing.runFuzzing",        // fuzz workers
		"runtime.goexit",            // placeholder for brand-new goroutines
		"created by runtime",        // GC, finalizers
		"os/signal.signal_recv",     // signal handler
		"runtime/trace.Start",       // trace flusher
		"runtime.ReadTrace",         // trace reader
		"testing.(*F).Fuzz",         // fuzz target
		"runtime.ensureSigM",        // signal mask goroutine
		"time.goFunc",               // an AfterFunc callback mid-fire
		"net/http.(*Transport).",    // stdlib keep-alive pools
		"internal/poll.runtime_pol", // netpoller internals
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
