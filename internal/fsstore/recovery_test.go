package fsstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeManifest fabricates a process directory with just a manifest —
// enough for the intersection helpers, which read manifests only.
func writeManifest(t *testing.T, datadir string, proc, n int, seqs []int) {
	t.Helper()
	dir := ProcDir(datadir, proc)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(&Manifest{Proc: proc, N: n, Seqs: seqs})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestManifestIntersection drives LastCompleteSeq and CompleteSeqs through
// the edge cases a crashed-and-rebuilt datadir can produce: empty stores,
// laggards, and gapped manifests left by a torn-manifest rebuild.
func TestManifestIntersection(t *testing.T) {
	cases := []struct {
		name     string
		seqs     [][]int // per process; nil = directory never written to
		wantLast int
		wantAll  []int
	}{
		{
			name:     "zero finalized checkpoints",
			seqs:     [][]int{nil, nil, nil},
			wantLast: -1,
			wantAll:  nil,
		},
		{
			name:     "one process empty blocks every line",
			seqs:     [][]int{{1, 2}, nil, {1, 2}},
			wantLast: -1,
			wantAll:  nil,
		},
		{
			name:     "all aligned",
			seqs:     [][]int{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}},
			wantLast: 3,
			wantAll:  []int{1, 2, 3},
		},
		{
			name:     "laggard holds the line back",
			seqs:     [][]int{{1, 2, 3}, {1}, {1, 2}},
			wantLast: 1,
			wantAll:  []int{1},
		},
		{
			name: "gap in one manifest must not surface the missing seq",
			// P0 rebuilt after a torn manifest and lost seq 2; seq 2 is
			// not a durable global line even though max(min(last)) says so.
			seqs:     [][]int{{1, 3}, {1, 2}, {1, 2}},
			wantLast: 1,
			wantAll:  []int{1},
		},
		{
			name:     "gap shared by all is fine",
			seqs:     [][]int{{1, 3}, {1, 3}, {1, 2, 3}},
			wantLast: 3,
			wantAll:  []int{1, 3},
		},
		{
			name:     "disjoint manifests",
			seqs:     [][]int{{1}, {2}, {3}},
			wantLast: -1,
			wantAll:  nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			n := len(tc.seqs)
			for p, seqs := range tc.seqs {
				if seqs != nil {
					writeManifest(t, dir, p, n, seqs)
				}
			}
			last, err := LastCompleteSeq(dir, n)
			if err != nil {
				t.Fatal(err)
			}
			if last != tc.wantLast {
				t.Fatalf("LastCompleteSeq = %d, want %d", last, tc.wantLast)
			}
			all, err := CompleteSeqs(dir, n)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(all, tc.wantAll) {
				t.Fatalf("CompleteSeqs = %v, want %v", all, tc.wantAll)
			}
		})
	}
}

// TestOpenClearsStaleTempFiles: temp files stranded by a crash between
// write and rename are swept on reopen; durable files are untouched.
func TestOpenClearsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(rec(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{".tmp-manifest-torn", ".tmp-123456"} {
		if err := os.WriteFile(filepath.Join(s.Dir(), name), []byte("{\"par"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(s2.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) >= 5 && e.Name()[:5] == ".tmp-" {
			t.Fatalf("stale temp file %s survived reopen", e.Name())
		}
	}
	if s2.LastSeq() != 1 {
		t.Fatalf("LastSeq after sweep = %d, want 1", s2.LastSeq())
	}
	if _, err := s2.Load(1); err != nil {
		t.Fatalf("durable checkpoint lost in sweep: %v", err)
	}
}

// TestTornManifestRebuild: a manifest cut off mid-write (crash between
// temp-file write and rename that somehow reached the real name, or a
// partial overwrite) is rebuilt from the checkpoints that verify on disk.
func TestTornManifestRebuild(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 3; seq++ {
		if err := s.Finalize(rec(1, seq, seq)); err != nil {
			t.Fatal(err)
		}
	}
	manifest := filepath.Join(s.Dir(), "MANIFEST.json")
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 1, 3)
	if err != nil {
		t.Fatalf("torn manifest failed the reopen: %v", err)
	}
	if got := s2.Manifest().Seqs; !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("rebuilt manifest seqs = %v, want [1 2 3]", got)
	}
	// The rebuild is written back: a third open must not rebuild again.
	var m Manifest
	raw, err = os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("rebuilt manifest not valid JSON: %v", err)
	}
	if m.Proc != 1 || m.N != 3 {
		t.Fatalf("rebuilt manifest header = P%d/n=%d, want P1/n=3", m.Proc, m.N)
	}
}

// TestTornManifestRebuildSkipsTornCheckpoint: the rebuild admits only
// checkpoints whose bytes verify; legacy per-seq records torn by the
// same crash are left out rather than resurrected. The store is
// fabricated in the legacy format (per-seq state + log files, no
// segments) — what a pre-segmented-log datadir looks like on upgrade.
func TestTornManifestRebuildSkipsTornCheckpoint(t *testing.T) {
	dir := t.TempDir()
	for seq := 1; seq <= 3; seq++ {
		writeLegacyRecord(t, dir, rec(0, seq, 2))
	}
	pdir := ProcDir(dir, 0)
	if err := os.WriteFile(filepath.Join(pdir, "MANIFEST.json"), []byte(`{"proc":0,`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Tear checkpoint 3's state file and checkpoint 2's log.
	ckpt3 := filepath.Join(pdir, "ckpt_000003.json")
	if err := os.WriteFile(ckpt3, []byte(`{"proc":0,"seq":3,`), 0o644); err != nil {
		t.Fatal(err)
	}
	log2 := filepath.Join(pdir, "log_000002.jsonl")
	lraw, err := os.ReadFile(log2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(log2, lraw[:len(lraw)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatalf("reopen with torn manifest + checkpoints: %v", err)
	}
	if got := s2.Manifest().Seqs; !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("rebuilt manifest seqs = %v, want [1]", got)
	}
}

// TestTornManifestNoCheckpoints: a torn manifest with nothing durable on
// disk rebuilds to an empty manifest, not an error.
func TestTornManifestNoCheckpoints(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ProcDir(dir, 0), "MANIFEST.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatalf("torn empty manifest failed the reopen: %v", err)
	}
	if s.LastSeq() != -1 {
		t.Fatalf("LastSeq = %d, want -1", s.LastSeq())
	}
}
