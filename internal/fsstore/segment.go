package fsstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
)

// The segmented append-only log. Finalized checkpoints are framed
// records appended to numbered segment files:
//
//	<datadir>/p<id>/seg_000001.wal
//
// Each file starts with a fixed header (magic, owning proc, segment
// index) and then carries CRC-framed records:
//
//	[u32le payload length][u32le CRC-32 (IEEE) of payload][JSON payload]
//
// The manifest's Segments list records, per segment, the durable byte
// length the last group commit covered. Bytes beyond that length are an
// interrupted batch — never referenced, overwritten by the next commit,
// truncated away on Open. Scanning a segment therefore reads exactly
// the manifest's durable prefix; a CRC mismatch inside it means
// external corruption and triggers a manifest rebuild.

const (
	segMagic       = "OCSMSEG1"
	segHeaderSize  = len(segMagic) + 8 // magic + u32 proc + u32 index
	frameHeader    = 8                 // u32 length + u32 crc
	maxFrameLength = 1 << 30
)

// Record kinds inside a segment.
const (
	segFull  = "full"  // complete checkpoint state
	segDelta = "delta" // changed fields against the Base record's state
)

// segRecord is one framed entry of a segment: a finalized checkpoint,
// either as a full state snapshot or as a delta against its predecessor
// (Base). The message log always travels complete — selective logging
// already minimized it, and replay needs the exact entries.
type segRecord struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	// Base is the sequence number the delta applies on top of
	// (meaningful only for Kind == segDelta).
	Base  int                    `json:"base,omitempty"`
	State *ckptState             `json:"state,omitempty"`
	Delta *stateDelta            `json:"delta,omitempty"`
	Log   []checkpoint.LoggedMsg `json:"log,omitempty"`
}

// stateDelta is the incremental-checkpoint encoding: exactly the
// ckptState fields that changed since the base record, as typed
// pointers. Explicit fields (not a generic JSON diff) so the uint64
// folds never round-trip through float64.
type stateDelta struct {
	TakenAt     *int64  `json:"takenAt,omitempty"`
	StateBytes  *int64  `json:"stateBytes,omitempty"`
	Fold        *uint64 `json:"fold,omitempty"`
	Work        *int64  `json:"work,omitempty"`
	Progress    *int64  `json:"progress,omitempty"`
	FlushedAt   *int64  `json:"flushedAt,omitempty"`
	FinalizedAt *int64  `json:"finalizedAt,omitempty"`
	CFEFold     *uint64 `json:"cfeFold,omitempty"`
	CFEWork     *int64  `json:"cfeWork,omitempty"`
	CFEProgress *int64  `json:"cfeProgress,omitempty"`
	StableAt    *int64  `json:"stableAt,omitempty"`
	LogEntries  *int    `json:"logEntries,omitempty"`
}

// diffState computes the delta that turns prev into cur. Proc and Seq
// are carried by the frame itself (segRecord.Seq), not the delta.
func diffState(prev, cur ckptState) stateDelta {
	var d stateDelta
	if prev.TakenAt != cur.TakenAt {
		v := int64(cur.TakenAt)
		d.TakenAt = &v
	}
	if prev.StateBytes != cur.StateBytes {
		v := cur.StateBytes
		d.StateBytes = &v
	}
	if prev.Fold != cur.Fold {
		v := cur.Fold
		d.Fold = &v
	}
	if prev.Work != cur.Work {
		v := cur.Work
		d.Work = &v
	}
	if prev.Progress != cur.Progress {
		v := cur.Progress
		d.Progress = &v
	}
	if prev.FlushedAt != cur.FlushedAt {
		v := int64(cur.FlushedAt)
		d.FlushedAt = &v
	}
	if prev.FinalizedAt != cur.FinalizedAt {
		v := cur.FinalizedAt
		d.FinalizedAt = &v
	}
	if prev.CFEFold != cur.CFEFold {
		v := cur.CFEFold
		d.CFEFold = &v
	}
	if prev.CFEWork != cur.CFEWork {
		v := cur.CFEWork
		d.CFEWork = &v
	}
	if prev.CFEProgress != cur.CFEProgress {
		v := cur.CFEProgress
		d.CFEProgress = &v
	}
	if prev.StableAt != cur.StableAt {
		v := int64(cur.StableAt)
		d.StableAt = &v
	}
	if prev.LogEntries != cur.LogEntries {
		v := cur.LogEntries
		d.LogEntries = &v
	}
	return d
}

// applyDelta overlays d on base and stamps the target sequence number.
func applyDelta(base ckptState, seq int, d *stateDelta) ckptState {
	st := base
	st.Seq = seq
	if d == nil {
		return st
	}
	if d.TakenAt != nil {
		st.TakenAt = des.Time(*d.TakenAt)
	}
	if d.StateBytes != nil {
		st.StateBytes = *d.StateBytes
	}
	if d.Fold != nil {
		st.Fold = *d.Fold
	}
	if d.Work != nil {
		st.Work = *d.Work
	}
	if d.Progress != nil {
		st.Progress = *d.Progress
	}
	if d.FlushedAt != nil {
		st.FlushedAt = des.Time(*d.FlushedAt)
	}
	if d.FinalizedAt != nil {
		st.FinalizedAt = *d.FinalizedAt
	}
	if d.CFEFold != nil {
		st.CFEFold = *d.CFEFold
	}
	if d.CFEWork != nil {
		st.CFEWork = *d.CFEWork
	}
	if d.CFEProgress != nil {
		st.CFEProgress = *d.CFEProgress
	}
	if d.StableAt != nil {
		st.StableAt = *d.StableAt
	}
	if d.LogEntries != nil {
		st.LogEntries = *d.LogEntries
	}
	return st
}

// SegmentFile returns the path of segment index inside a process's
// store directory (dir is ProcDir(datadir, proc)). Exported for the
// chaos runner, which plants torn-segment crash debris from outside the
// package.
func SegmentFile(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("seg_%06d.wal", index))
}

// parseSegmentName extracts the index from a segment file name.
func parseSegmentName(name string) (index int, ok bool) {
	if _, err := fmt.Sscanf(name, "seg_%06d.wal", &index); err != nil {
		return 0, false
	}
	return index, true
}

// segmentHeader encodes the fixed file header.
func segmentHeader(proc, index int) []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	binary.LittleEndian.PutUint32(h[len(segMagic):], uint32(proc))
	binary.LittleEndian.PutUint32(h[len(segMagic)+4:], uint32(index))
	return h
}

// parseSegmentHeader validates a file header against the expected
// owner and index.
func parseSegmentHeader(b []byte, proc, index int) error {
	if len(b) < segHeaderSize || string(b[:len(segMagic)]) != segMagic {
		return fmt.Errorf("fsstore: segment %d: bad or torn header", index)
	}
	p := int(binary.LittleEndian.Uint32(b[len(segMagic):]))
	idx := int(binary.LittleEndian.Uint32(b[len(segMagic)+4:]))
	if p != proc || idx != index {
		return fmt.Errorf("fsstore: segment %d: header claims P%d seg %d", index, p, idx)
	}
	return nil
}

// appendFrame frames payload onto buf: length, CRC, bytes.
func appendFrame(buf, payload []byte) []byte {
	var h [frameHeader]byte
	binary.LittleEndian.PutUint32(h[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, h[:]...)
	return append(buf, payload...)
}

// recLoc locates one checkpoint record inside the segmented log, plus
// the chain metadata Load needs to resolve deltas without re-reading.
type recLoc struct {
	seg  int   // segment index
	off  int64 // frame offset within the file
	size int64 // frame length including the frame header
	kind string
	base int
}

// scannedFrame is one decoded frame of a segment scan.
type scannedFrame struct {
	loc recLoc
	rec segRecord
}

// scanSegment reads one segment file up to limit bytes (limit < 0 means
// the whole file) and decodes its frames. strict scans must parse every
// byte of the limit — a short or corrupt frame inside the durable
// prefix is an error; tolerant scans (manifest rebuild) stop at the
// first bad frame and report the valid prefix length instead.
func scanSegment(path string, proc, index int, limit int64, strict bool) (frames []scannedFrame, valid int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if limit >= 0 && int64(len(data)) > limit {
		data = data[:limit]
	}
	if err := parseSegmentHeader(data, proc, index); err != nil {
		if strict {
			return nil, 0, err
		}
		return nil, 0, nil
	}
	off := int64(segHeaderSize)
	for off < int64(len(data)) {
		rest := data[off:]
		bad := func(format string, args ...any) ([]scannedFrame, int64, error) {
			if strict {
				return nil, off, fmt.Errorf("fsstore: segment %d offset %d: %s", index, off, fmt.Sprintf(format, args...))
			}
			return frames, off, nil
		}
		if len(rest) < frameHeader {
			return bad("torn frame header")
		}
		n := binary.LittleEndian.Uint32(rest[0:])
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n > maxFrameLength || int64(frameHeader)+int64(n) > int64(len(rest)) {
			return bad("torn frame body (%d bytes claimed)", n)
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return bad("frame CRC mismatch")
		}
		var rec segRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return bad("frame payload: %v", err)
		}
		frames = append(frames, scannedFrame{
			loc: recLoc{
				seg: index, off: off, size: int64(frameHeader) + int64(n),
				kind: rec.Kind, base: rec.Base,
			},
			rec: rec,
		})
		off += int64(frameHeader) + int64(n)
	}
	return frames, off, nil
}

// readSegRecord re-reads one framed record from disk and verifies its
// CRC — the Load-time counterpart of scanSegment for a single frame.
func (s *Store) readSegRecord(loc recLoc) (segRecord, error) {
	var rec segRecord
	f, err := os.Open(SegmentFile(s.dir, loc.seg))
	if err != nil {
		return rec, err
	}
	defer f.Close()
	buf := make([]byte, loc.size)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return rec, fmt.Errorf("fsstore: P%d segment %d offset %d: %w", s.proc, loc.seg, loc.off, err)
	}
	n := binary.LittleEndian.Uint32(buf[0:])
	crc := binary.LittleEndian.Uint32(buf[4:])
	if int64(frameHeader)+int64(n) != loc.size {
		return rec, fmt.Errorf("fsstore: P%d segment %d offset %d: frame length changed under the index", s.proc, loc.seg, loc.off)
	}
	payload := buf[frameHeader:]
	if crc32.ChecksumIEEE(payload) != crc {
		return rec, fmt.Errorf("fsstore: P%d segment %d offset %d: frame CRC mismatch", s.proc, loc.seg, loc.off)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("fsstore: P%d segment %d offset %d: %w", s.proc, loc.seg, loc.off, err)
	}
	return rec, nil
}
