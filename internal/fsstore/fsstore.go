// Package fsstore is the file-backed stable-storage implementation used
// by the real-network runtime (internal/transport, cmd/ocsmld): finalized
// checkpoints C_{i,k} actually reach a disk, with the durability ordering
// the paper's recovery argument needs.
//
// Layout, one directory per process under a shared data directory:
//
//	<datadir>/p<id>/ckpt_000007.json   checkpoint state (CT + CFE fields)
//	<datadir>/p<id>/log_000007.jsonl   message log, one entry per line
//	<datadir>/p<id>/MANIFEST.json      finalized sequence numbers
//	<datadir>/p<id>/tent.json          scratch early-flush of CT (volatile)
//
// Durability protocol per finalization CFE_{i,k}: the message log is
// appended and fsynced first, then the checkpoint state is written to a
// temp file, fsynced and atomically renamed into place, then the manifest
// is rewritten the same way and the directory fsynced. A crash at any
// point leaves either the previous manifest (the new checkpoint invisible
// but harmless) or the new one (all referenced files durable) — never a
// manifest pointing at missing data.
//
// The manifest of every process, intersected, yields the last finalized
// global checkpoint S_k on disk; internal/recovery's RecoverLine restarts
// a cluster from it.
package fsstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/metrics"
)

// countingWriter counts the bytes written through it (log-size
// accounting for StoreMetrics).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Manifest records what a process has durably finalized.
type Manifest struct {
	// Proc is the owning process id.
	Proc int `json:"proc"`
	// N is the cluster size the process was configured with.
	N int `json:"n"`
	// Seqs lists every finalized checkpoint sequence number on disk,
	// ascending (gap-free from the first entry under OCSML).
	Seqs []int `json:"seqs"`
}

// LastSeq returns the highest finalized sequence number, or -1.
func (m *Manifest) LastSeq() int {
	if len(m.Seqs) == 0 {
		return -1
	}
	return m.Seqs[len(m.Seqs)-1]
}

// Store is one process's stable-storage directory. Methods are safe
// for concurrent use (the real-network runtime finalizes from a storage
// goroutine while a rollback may truncate from the protocol loop).
type Store struct {
	mu   sync.Mutex
	dir  string
	proc int
	n    int
	//ocsml:guardedby mu
	man Manifest
	// finalizeErr, when set, is consulted before each Finalize writes
	// anything — the error-injection hook of the durability tests.
	//ocsml:guardedby mu
	finalizeErr func(checkpoint.Record) error
	// metrics, when set, receives this store's durability instruments.
	//ocsml:guardedby mu
	metrics *StoreMetrics
}

// StoreMetrics are one store's registry-backed durability instruments.
type StoreMetrics struct {
	Finalizes      *metrics.Counter
	FinalizeErrors *metrics.Counter
	Fsyncs         *metrics.Counter
	BytesWritten   *metrics.Counter
}

// NewStoreMetrics registers the fsstore instrument families in reg and
// returns the series for one process.
func NewStoreMetrics(reg *metrics.Registry, proc int) *StoreMetrics {
	p := strconv.Itoa(proc)
	return &StoreMetrics{
		Finalizes: reg.MustCounterVec("ocsml_fsstore_finalized_total",
			"Checkpoints durably finalized (log + state + manifest committed).", "proc").With(p),
		FinalizeErrors: reg.MustCounterVec("ocsml_fsstore_finalize_errors_total",
			"Finalize attempts that failed before the manifest commit.", "proc").With(p),
		Fsyncs: reg.MustCounterVec("ocsml_fsstore_fsyncs_total",
			"File and directory fsyncs issued by the durability protocol.", "proc").With(p),
		BytesWritten: reg.MustCounterVec("ocsml_fsstore_bytes_written_total",
			"Bytes handed to stable storage (logs, checkpoint states, manifests).", "proc").With(p),
	}
}

// SetMetrics installs (or, with nil, removes) the store's instruments.
// Call right after Open, before the store sees traffic.
func (s *Store) SetMetrics(m *StoreMetrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// noteWriteLocked accounts one completed durable write. Caller holds mu
// (or the store has not escaped its constructor).
func (s *Store) noteWriteLocked(bytes, fsyncs int64) {
	if m := s.metrics; m != nil {
		m.Fsyncs.Add(fsyncs)
		m.BytesWritten.Add(bytes)
	}
}

// SetFinalizeErrHook installs (or, with nil, removes) a hook consulted at
// the top of Finalize; a non-nil return fails the call before any byte is
// written. Tests use it to prove a failed write is retried and never
// skipped past.
func (s *Store) SetFinalizeErrHook(fn func(checkpoint.Record) error) {
	s.mu.Lock()
	s.finalizeErr = fn
	s.mu.Unlock()
}

// ProcDir returns the directory a process's store lives in.
func ProcDir(datadir string, proc int) string {
	return filepath.Join(datadir, fmt.Sprintf("p%d", proc))
}

// Open creates (or reopens) the store for one process. An existing
// manifest is loaded, so a restarted process sees what it had finalized
// before the crash.
//
// Open is also the crash-recovery entry point: temp files left by a
// crash between an atomic write and its rename (a torn manifest or
// checkpoint mid-flight) are deleted — the rename never happened, so
// they are invisible garbage that must not fail the restart — and a
// manifest that is itself unreadable is rebuilt from the checkpoint
// files that verify on disk.
func Open(datadir string, proc, n int) (*Store, error) {
	if proc < 0 || n < 2 || proc >= n {
		return nil, fmt.Errorf("fsstore: invalid proc %d of %d", proc, n)
	}
	dir := ProcDir(datadir, proc)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, proc: proc, n: n, man: Manifest{Proc: proc, N: n}}
	if err := s.clearDebris(); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	switch {
	case os.IsNotExist(err):
		return s, nil
	case err != nil:
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		// Torn/partially written manifest: recover what the disk can
		// prove instead of failing the restart.
		if err := s.rebuildManifest(); err != nil {
			return nil, fmt.Errorf("fsstore: corrupt manifest in %s and rebuild failed: %w", dir, err)
		}
		return s, nil
	}
	if m.Proc != proc {
		return nil, fmt.Errorf("fsstore: manifest in %s belongs to P%d, not P%d", dir, m.Proc, proc)
	}
	s.man = m
	return s, nil
}

// clearDebris removes temp files a crash may have stranded (writeAtomic
// names them ".tmp-*"; only a completed rename makes data visible).
func (s *Store) clearDebris() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// rebuildManifest reconstructs the manifest from the checkpoint files on
// disk: a sequence number is recovered only if its state file parses and
// its message log is complete (the durability protocol writes both
// before the manifest, so every previously manifested checkpoint
// verifies; a checkpoint whose manifest commit was interrupted verifies
// too and is safely re-admitted). The rebuilt manifest is written back
// atomically.
func (s *Store) rebuildManifest() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	man := Manifest{Proc: s.proc, N: s.n}
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "ckpt_%06d.json", &seq); err != nil {
			continue
		}
		if _, err := s.Load(seq); err != nil {
			continue // torn checkpoint or log: not provably durable
		}
		man.Seqs = append(man.Seqs, seq)
	}
	sort.Ints(man.Seqs)
	s.man = man                                       //ocsml:nolock Open-time rebuild: the store has not escaped its constructor yet
	mdata, err := json.MarshalIndent(&s.man, "", " ") //ocsml:nolock Open-time rebuild, as above
	if err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, "MANIFEST.json"), mdata)
}

// Dir returns the process's storage directory.
func (s *Store) Dir() string { return s.dir }

// Manifest returns a copy of the current manifest.
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.man
	m.Seqs = append([]int(nil), s.man.Seqs...)
	return m
}

// LastSeq returns the highest durably finalized sequence number, or -1.
func (s *Store) LastSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.LastSeq()
}

func (s *Store) ckptPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt_%06d.json", seq))
}

func (s *Store) logPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("log_%06d.jsonl", seq))
}

// writeAtomic writes data to path via a temp file + fsync + rename, then
// fsyncs the directory so the rename itself is durable.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		//ocsml:errsink best-effort temp cleanup; the primary write error is returned
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		//ocsml:errsink best-effort temp cleanup; the primary write error is returned
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		//ocsml:errsink best-effort temp cleanup; the primary write error is returned
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		//ocsml:errsink best-effort temp cleanup; the primary write error is returned
		os.Remove(tmpName)
		return err
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// temp-file fsync + directory fsync
	//ocsml:nolock every caller holds mu except the Open-time manifest rebuild, before the store escapes
	s.noteWriteLocked(int64(len(data)), 2)
	return nil
}

func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ckptState is the on-disk checkpoint state: the Record minus its log,
// which lives in the sibling jsonl file.
type ckptState struct {
	checkpoint.Tentative
	FinalizedAt int64  `json:"finalizedAt"`
	CFEFold     uint64 `json:"cfeFold"`
	CFEWork     int64  `json:"cfeWork"`
	CFEProgress int64  `json:"cfeProgress"`
	StableAt    int64  `json:"stableAt"`
	LogEntries  int    `json:"logEntries"`
}

// SaveTentative persists an early flush of the tentative checkpoint CT
// (the paper's "store at convenience" write that may precede
// finalization). It is scratch state: a crash before finalization
// legitimately discards it.
func (s *Store) SaveTentative(t checkpoint.Tentative) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, "tent.json"), data)
}

// Finalize durably persists a finalized checkpoint: log first (append +
// fsync), then state (atomic rename), then manifest. Idempotent per
// sequence number; out-of-order sequence numbers are an error.
func (s *Store) Finalize(rec checkpoint.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.finalizeLocked(rec)
	if m := s.metrics; m != nil {
		if err != nil {
			m.FinalizeErrors.Inc()
		} else {
			m.Finalizes.Inc()
		}
	}
	return err
}

func (s *Store) finalizeLocked(rec checkpoint.Record) error {
	if rec.Proc != s.proc {
		return fmt.Errorf("fsstore: record for P%d written to store of P%d", rec.Proc, s.proc)
	}
	if last := s.man.LastSeq(); rec.Seq <= last {
		return fmt.Errorf("fsstore: P%d finalize seq %d not above manifest last %d", s.proc, rec.Seq, last)
	}
	if s.finalizeErr != nil {
		if err := s.finalizeErr(rec); err != nil {
			return err
		}
	}

	// 1. Message log: append every entry, one JSON line each, and flush.
	lf, err := os.OpenFile(s.logPath(rec.Seq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	cw := &countingWriter{w: lf}
	enc := json.NewEncoder(cw)
	for i := range rec.Log {
		if err := enc.Encode(&rec.Log[i]); err != nil {
			lf.Close()
			return err
		}
	}
	if err := lf.Sync(); err != nil {
		lf.Close()
		return err
	}
	if err := lf.Close(); err != nil {
		return err
	}
	s.noteWriteLocked(cw.n, 1)

	// 2. Checkpoint state, atomically.
	st := ckptState{
		Tentative:   rec.Tentative,
		FinalizedAt: int64(rec.FinalizedAt),
		CFEFold:     rec.CFEFold,
		CFEWork:     rec.CFEWork,
		CFEProgress: rec.CFEProgress,
		StableAt:    int64(rec.StableAt),
		LogEntries:  len(rec.Log),
	}
	data, err := json.MarshalIndent(&st, "", " ")
	if err != nil {
		return err
	}
	if err := s.writeAtomic(s.ckptPath(rec.Seq), data); err != nil {
		return err
	}

	// 3. Manifest, atomically: the checkpoint becomes visible.
	s.man.Seqs = append(s.man.Seqs, rec.Seq)
	mdata, err := json.MarshalIndent(&s.man, "", " ")
	if err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, "MANIFEST.json"), mdata)
}

// Load reads one finalized checkpoint (state + log) back from disk.
func (s *Store) Load(seq int) (checkpoint.Record, error) {
	var rec checkpoint.Record
	raw, err := os.ReadFile(s.ckptPath(seq))
	if err != nil {
		return rec, err
	}
	var st ckptState
	if err := json.Unmarshal(raw, &st); err != nil {
		return rec, fmt.Errorf("fsstore: corrupt checkpoint P%d seq %d: %w", s.proc, seq, err)
	}
	rec.Tentative = st.Tentative
	rec.FinalizedAt = des.Time(st.FinalizedAt)
	rec.CFEFold = st.CFEFold
	rec.CFEWork = st.CFEWork
	rec.CFEProgress = st.CFEProgress
	rec.StableAt = des.Time(st.StableAt)

	lraw, err := os.ReadFile(s.logPath(seq))
	if err != nil {
		if os.IsNotExist(err) && st.LogEntries == 0 {
			return rec, nil
		}
		return rec, err
	}
	dec := json.NewDecoder(bytes.NewReader(lraw))
	for dec.More() {
		var m checkpoint.LoggedMsg
		if err := dec.Decode(&m); err != nil {
			return rec, fmt.Errorf("fsstore: corrupt log P%d seq %d: %w", s.proc, seq, err)
		}
		rec.Log = append(rec.Log, m)
	}
	if len(rec.Log) != st.LogEntries {
		return rec, fmt.Errorf("fsstore: P%d seq %d log has %d entries, manifest says %d",
			s.proc, seq, len(rec.Log), st.LogEntries)
	}
	return rec, nil
}

// TruncateAfter removes finalized checkpoints with Seq > seq from disk and
// from the manifest — a cluster-wide rollback discards checkpoints above
// the recovery line so the restarted run can legitimately re-produce those
// sequence numbers.
func (s *Store) TruncateAfter(seq int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := s.man.Seqs[:0]
	var drop []int
	for _, q := range s.man.Seqs {
		if q <= seq {
			keep = append(keep, q)
		} else {
			drop = append(drop, q)
		}
	}
	if len(drop) == 0 {
		return nil
	}
	s.man.Seqs = keep
	mdata, err := json.MarshalIndent(&s.man, "", " ")
	if err != nil {
		return err
	}
	// Manifest first: once it no longer references the dropped seqs, the
	// stale files are invisible garbage even if removal is interrupted.
	if err := s.writeAtomic(filepath.Join(s.dir, "MANIFEST.json"), mdata); err != nil {
		return err
	}
	for _, q := range drop {
		//ocsml:errsink manifest no longer references these seqs; removal is opportunistic GC
		os.Remove(s.ckptPath(q))
		//ocsml:errsink manifest no longer references these seqs; removal is opportunistic GC
		os.Remove(s.logPath(q))
	}
	return s.syncDir()
}

// RecoverStore loads every process's finalized checkpoints from disk into
// an in-memory checkpoint store — what a recovery manager reconstructs
// after a cluster-wide failure. Processes with no directory yet contribute
// nothing (their store is empty).
func RecoverStore(datadir string, n int) (*checkpoint.Store, error) {
	cs := checkpoint.NewStore(n)
	for p := 0; p < n; p++ {
		s, err := Open(datadir, p, n)
		if err != nil {
			return nil, err
		}
		seqs := s.Manifest().Seqs
		sort.Ints(seqs)
		for _, seq := range seqs {
			rec, err := s.Load(seq)
			if err != nil {
				return nil, err
			}
			cs.Proc(p).Add(rec)
		}
	}
	return cs, nil
}

// ReadManifest reads a process's manifest without opening the store: no
// directory creation, no debris sweep, no rebuild. This is the safe way
// to poll a datadir that live processes are still writing to — Open's
// sweep would delete the temp file of an atomic write in flight and fail
// that process's rename. A missing directory or manifest yields an empty
// manifest (the process has durably finalized nothing yet).
func ReadManifest(datadir string, proc int) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(ProcDir(datadir, proc), "MANIFEST.json"))
	switch {
	case os.IsNotExist(err):
		return Manifest{Proc: proc}, nil
	case err != nil:
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("fsstore: corrupt manifest for P%d: %w", proc, err)
	}
	return m, nil
}

// Intersect returns the sequence numbers present in every one of the
// groups, ascending. It is a true intersection: a sequence number counts
// only if every group has it, so gaps in one manifest (possible after a
// torn-manifest rebuild) cannot surface a line some process lacks. The
// recovery coordinator applies it to the RB_LINE reports exactly as the
// datadir helpers below apply it to the on-disk manifests.
func Intersect(groups [][]int) []int {
	if len(groups) == 0 {
		return nil
	}
	count := map[int]int{}
	for _, group := range groups {
		seen := map[int]bool{}
		for _, q := range group {
			if !seen[q] {
				seen[q] = true
				count[q]++
			}
		}
	}
	var seqs []int
	for q, c := range count {
		if c == len(groups) {
			seqs = append(seqs, q)
		}
	}
	sort.Ints(seqs)
	return seqs
}

// LastCompleteSeq intersects the manifests of all n processes and returns
// the highest sequence number every process has durably finalized — the
// last global checkpoint S_k on disk — or -1 if none exists. Reads are
// manifest-only (ReadManifest), so polling a live datadir is safe.
func LastCompleteSeq(datadir string, n int) (int, error) {
	seqs, err := CompleteSeqs(datadir, n)
	if err != nil {
		return -1, err
	}
	if len(seqs) == 0 {
		return -1, nil
	}
	return seqs[len(seqs)-1], nil
}

// CompleteSeqs returns every sequence number present in all n manifests,
// ascending — the durable global checkpoints S_k the datadir can prove.
// Reads are manifest-only (ReadManifest), so polling a live datadir is
// safe.
func CompleteSeqs(datadir string, n int) ([]int, error) {
	groups := make([][]int, 0, n)
	for p := 0; p < n; p++ {
		m, err := ReadManifest(datadir, p)
		if err != nil {
			return nil, err
		}
		groups = append(groups, m.Seqs)
	}
	return Intersect(groups), nil
}
