// Package fsstore is the file-backed stable-storage implementation used
// by the real-network runtime (internal/transport, cmd/ocsmld): finalized
// checkpoints C_{i,k} actually reach a disk, with the durability ordering
// the paper's recovery argument needs.
//
// Layout, one directory per process under a shared data directory:
//
//	<datadir>/p<id>/seg_000001.wal     segmented append-only checkpoint log
//	<datadir>/p<id>/MANIFEST.json      finalized seqs + durable segment sizes
//	<datadir>/p<id>/tent.json          scratch early-flush of CT (volatile)
//	<datadir>/p<id>/ckpt_000007.json   legacy per-seq state (read-only compat)
//	<datadir>/p<id>/log_000007.jsonl   legacy per-seq log (read-only compat)
//
// Durability is a pipelined group commit: queued finalizations are
// encoded into CRC-framed records — a full state snapshot every
// Options.SnapshotEvery records, incremental deltas in between — and
// appended to the active segment with ONE fsync for the whole batch,
// then the manifest (sequence numbers plus the durable byte length of
// each segment) is rewritten via temp file + fsync + rename + directory
// sync. A crash at any point leaves either the previous manifest (the
// batch invisible: its bytes sit beyond the recorded segment size and
// are truncated on Open) or the new one (every referenced byte durable)
// — never a manifest pointing at missing data.
//
// The manifest of every process, intersected, yields the last finalized
// global checkpoint S_k on disk; internal/recovery's RecoverLine
// restarts a cluster from it, and GCTo garbage-collects everything
// below that watermark (compacting the watermark record to a full
// snapshot first, so surviving delta chains stay resolvable).
package fsstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/metrics"
)

// countingWriter counts the bytes written through it (log-size
// accounting for StoreMetrics).
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// SegmentMeta records one segment file's durable extent: Size is the
// byte length the last committed batch covered. Bytes beyond Size are
// an interrupted group commit and are never read.
type SegmentMeta struct {
	Index int   `json:"index"`
	Size  int64 `json:"size"`
}

// Manifest records what a process has durably finalized.
type Manifest struct {
	// Proc is the owning process id.
	Proc int `json:"proc"`
	// N is the cluster size the process was configured with.
	N int `json:"n"`
	// Seqs lists every finalized checkpoint sequence number on disk,
	// ascending (gap-free from the first entry under OCSML).
	Seqs []int `json:"seqs"`
	// Segments lists the segmented log's files and their durable byte
	// lengths, ascending by index; the last entry is the active segment.
	// Empty for a legacy (per-seq files only) store.
	Segments []SegmentMeta `json:"segments,omitempty"`
}

// LastSeq returns the highest finalized sequence number, or -1.
func (m *Manifest) LastSeq() int {
	if len(m.Seqs) == 0 {
		return -1
	}
	return m.Seqs[len(m.Seqs)-1]
}

// Options tunes the durability engine. The zero value of any field
// selects its default.
type Options struct {
	// GroupWindow is the max-latency flush window of a synchronous
	// Finalize: how long the caller lingers for other finalizations to
	// join its group commit before forcing the flush itself. 0 (the
	// default) flushes immediately; FinalizeAsync callers coalesce
	// regardless.
	GroupWindow time.Duration
	// MaxBatch bounds how many queued finalizations one commit covers
	// (default 64).
	MaxBatch int
	// SegmentMaxBytes rotates the active segment once its durable size
	// reaches this bound (default 4 MiB).
	SegmentMaxBytes int64
	// SnapshotEvery writes a full state snapshot every k-th record, with
	// incremental deltas in between (default 8; 1 disables deltas).
	SnapshotEvery int
}

// DefaultOptions returns the engine defaults.
func DefaultOptions() Options {
	return Options{MaxBatch: 64, SegmentMaxBytes: 4 << 20, SnapshotEvery: 8}
}

func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.GroupWindow < 0 {
		o.GroupWindow = 0
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = def.MaxBatch
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = def.SegmentMaxBytes
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = def.SnapshotEvery
	}
	return o
}

// Store is one process's stable-storage directory. Methods are safe
// for concurrent use (the real-network runtime finalizes from a storage
// goroutine while a rollback may truncate from the protocol loop, and
// the cluster's GC loop prunes below the global watermark).
type Store struct {
	mu   sync.Mutex
	dir  string
	proc int
	n    int
	opts Options
	//ocsml:guardedby mu
	man Manifest
	// index locates every manifested checkpoint in the segmented log;
	// seqs absent here are read through the legacy per-seq files.
	//ocsml:guardedby mu
	index map[int]recLoc
	// queue holds finalizations accepted but not yet committed; a drain
	// commits it in enqueue order, MaxBatch records per fsync.
	//ocsml:guardedby mu
	queue []*pending
	// lastState is the most recently committed record's state — the
	// base the next delta is computed against. haveLast is false right
	// after Open or TruncateAfter, forcing a full snapshot.
	//ocsml:guardedby mu
	lastState ckptState
	//ocsml:guardedby mu
	haveLast bool
	// sinceFull counts records since the last full snapshot.
	//ocsml:guardedby mu
	sinceFull int
	// finalizeErr, when set, is consulted before each record's bytes are
	// written — the error-injection hook of the durability tests.
	//ocsml:guardedby mu
	finalizeErr func(checkpoint.Record) error
	// metrics, when set, receives this store's durability instruments.
	//ocsml:guardedby mu
	metrics *StoreMetrics
}

// StoreMetrics are one store's registry-backed durability instruments.
type StoreMetrics struct {
	Finalizes      *metrics.Counter
	FinalizeErrors *metrics.Counter
	Fsyncs         *metrics.Counter
	BytesWritten   *metrics.Counter
	GCRemoved      *metrics.Counter
}

// NewStoreMetrics registers the fsstore instrument families in reg and
// returns the series for one process.
func NewStoreMetrics(reg *metrics.Registry, proc int) *StoreMetrics {
	p := strconv.Itoa(proc)
	return &StoreMetrics{
		Finalizes: reg.MustCounterVec("ocsml_fsstore_finalized_total",
			"Checkpoints durably finalized (segment append + manifest committed).", "proc").With(p),
		FinalizeErrors: reg.MustCounterVec("ocsml_fsstore_finalize_errors_total",
			"Finalize attempts that failed before the manifest commit.", "proc").With(p),
		Fsyncs: reg.MustCounterVec("ocsml_fsstore_fsyncs_total",
			"File and directory fsync syscalls issued by the durability protocol.", "proc").With(p),
		BytesWritten: reg.MustCounterVec("ocsml_fsstore_bytes_written_total",
			"Bytes handed to stable storage (segments, checkpoint states, manifests).", "proc").With(p),
		GCRemoved: reg.MustCounterVec("ocsml_fsstore_gc_removed_total",
			"Checkpoint records garbage-collected below the global S_k watermark.", "proc").With(p),
	}
}

// SetMetrics installs (or, with nil, removes) the store's instruments.
// Call right after Open, before the store sees traffic.
func (s *Store) SetMetrics(m *StoreMetrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// noteWriteLocked accounts one completed durable write. Caller holds mu
// (or the store has not escaped its constructor).
func (s *Store) noteWriteLocked(bytes, fsyncs int64) {
	if m := s.metrics; m != nil {
		m.Fsyncs.Add(fsyncs)
		m.BytesWritten.Add(bytes)
	}
}

// SetFinalizeErrHook installs (or, with nil, removes) a hook consulted
// before each record's bytes are written; a non-nil return fails that
// record (and, in a batch, every record queued behind it) before any of
// its bytes reach the segment. Tests use it to prove a failed write is
// retried and never skipped past.
func (s *Store) SetFinalizeErrHook(fn func(checkpoint.Record) error) {
	s.mu.Lock()
	s.finalizeErr = fn
	s.mu.Unlock()
}

// ProcDir returns the directory a process's store lives in.
func ProcDir(datadir string, proc int) string {
	return filepath.Join(datadir, fmt.Sprintf("p%d", proc))
}

// Open creates (or reopens) the store for one process with default
// Options. An existing manifest is loaded, so a restarted process sees
// what it had finalized before the crash.
func Open(datadir string, proc, n int) (*Store, error) {
	return OpenWith(datadir, proc, n, DefaultOptions())
}

// OpenWith is Open with explicit engine Options.
//
// Open is also the crash-recovery entry point: temp files left by a
// crash between an atomic write and its rename are deleted, segment
// files the manifest does not reference (a crash between segment
// creation or GC and the manifest commit) are removed, segment tails
// beyond the manifest's durable sizes (an interrupted group commit) are
// truncated away, and a manifest that is itself unreadable — or that
// disagrees with the bytes on disk — is rebuilt from the records that
// verify.
func OpenWith(datadir string, proc, n int, opts Options) (*Store, error) {
	if proc < 0 || n < 2 || proc >= n {
		return nil, fmt.Errorf("fsstore: invalid proc %d of %d", proc, n)
	}
	dir := ProcDir(datadir, proc)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir: dir, proc: proc, n: n, opts: opts.withDefaults(),
		man:   Manifest{Proc: proc, N: n},
		index: map[int]recLoc{},
	}
	if err := s.clearDebris(); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	switch {
	case os.IsNotExist(err):
		// Nothing durable: any segment file present is debris from a
		// crash before the very first manifest commit.
		if err := s.sweepSegments(); err != nil {
			return nil, err
		}
		return s, nil
	case err != nil:
		return nil, err
	}
	var m Manifest
	rebuild := false
	if err := json.Unmarshal(raw, &m); err != nil {
		rebuild = true // torn/partially written manifest
	} else if m.Proc != proc {
		return nil, fmt.Errorf("fsstore: manifest in %s belongs to P%d, not P%d", dir, m.Proc, proc)
	} else {
		s.man = m
		if err := s.loadSegments(); err != nil {
			rebuild = true // manifest references bytes the disk cannot prove
		}
	}
	if rebuild {
		if err := s.rebuildManifest(); err != nil {
			return nil, fmt.Errorf("fsstore: corrupt manifest in %s and rebuild failed: %w", dir, err)
		}
	}
	if err := s.sweepSegments(); err != nil {
		return nil, err
	}
	return s, nil
}

// clearDebris removes temp files a crash may have stranded (writeAtomic
// names them ".tmp-*"; only a completed rename makes data visible).
func (s *Store) clearDebris() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), ".tmp-") {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// sweepSegments removes segment files the manifest does not reference:
// the debris of a crash between creating a fresh segment (or unlinking
// a GC'd one) and the manifest commit that would have recorded it.
// Runs at Open-time, before the store escapes its constructor.
func (s *Store) sweepSegments() error {
	known := map[int]bool{}
	for _, meta := range s.man.Segments { //ocsml:nolock Open-time sweep: the store has not escaped its constructor yet
		known[meta.Index] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		idx, ok := parseSegmentName(e.Name())
		if !ok || known[idx] {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// loadSegments scans every manifested segment up to its durable size,
// builds the seq -> location index, and truncates tails an interrupted
// group commit left beyond the durable sizes. An error means the
// manifest references bytes the disk cannot prove (missing file, torn
// or corrupt frame inside a durable prefix) and the caller falls back
// to a full rebuild. Runs at Open-time, before the store escapes.
func (s *Store) loadSegments() error {
	manifested := map[int]bool{}
	for _, q := range s.man.Seqs { //ocsml:nolock Open-time load: the store has not escaped its constructor yet
		manifested[q] = true
	}
	index := map[int]recLoc{}
	for _, meta := range s.man.Segments { //ocsml:nolock Open-time load, as above
		path := SegmentFile(s.dir, meta.Index)
		frames, valid, err := scanSegment(path, s.proc, meta.Index, meta.Size, true)
		if err != nil {
			return err
		}
		if valid < meta.Size {
			return fmt.Errorf("fsstore: segment %d: durable prefix %d short of manifest size %d", meta.Index, valid, meta.Size)
		}
		// Later occurrences win: a seq truncated by a rollback and then
		// re-finalized appears twice, and only the newest frame is live.
		for _, fr := range frames {
			if manifested[fr.rec.Seq] {
				index[fr.rec.Seq] = fr.loc
			}
		}
		if err := truncateTail(path, meta.Size); err != nil {
			return err
		}
	}
	for _, q := range s.man.Seqs { //ocsml:nolock Open-time load, as above
		if _, ok := index[q]; ok {
			continue
		}
		// Not in any segment: must be readable as a legacy per-seq pair.
		if _, err := os.Stat(s.ckptPath(q)); err != nil {
			return fmt.Errorf("fsstore: manifested seq %d in neither segments nor legacy files", q)
		}
	}
	s.index = index //ocsml:nolock Open-time load, as above
	return nil
}

// truncateTail cuts a segment file back to its durable size and syncs
// the truncation, so garbage from an interrupted batch cannot linger.
func truncateTail(path string, size int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.Size() <= size {
		return nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// rebuildManifest reconstructs the manifest from the bytes on disk: the
// segments are scanned tolerantly (stopping each at its first torn
// frame), legacy per-seq files are verified as before, and a sequence
// number is recovered only if its record — including a delta's whole
// base chain — replays from durable bytes. The durability protocol
// commits bytes before the manifest, so every previously manifested
// checkpoint verifies; a checkpoint whose manifest commit was
// interrupted verifies too and is safely re-admitted. The rebuilt
// manifest is written back atomically.
func (s *Store) rebuildManifest() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	man := Manifest{Proc: s.proc, N: s.n}
	index := map[int]recLoc{}
	candidates := map[int]bool{}
	var segIdxs []int
	for _, e := range entries {
		if idx, ok := parseSegmentName(e.Name()); ok {
			segIdxs = append(segIdxs, idx)
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "ckpt_%06d.json", &seq); err == nil {
			candidates[seq] = true
		}
	}
	sort.Ints(segIdxs)
	for _, idx := range segIdxs {
		path := SegmentFile(s.dir, idx)
		frames, valid, err := scanSegment(path, s.proc, idx, -1, false)
		if err != nil {
			return err
		}
		if valid <= int64(segHeaderSize) {
			continue // torn header or empty: sweepSegments removes the file
		}
		for _, fr := range frames {
			index[fr.rec.Seq] = fr.loc // later occurrences win
			candidates[fr.rec.Seq] = true
		}
		man.Segments = append(man.Segments, SegmentMeta{Index: idx, Size: valid})
		if err := truncateTail(path, valid); err != nil {
			return err
		}
	}
	s.index = index //ocsml:nolock Open-time rebuild: the store has not escaped its constructor yet
	seqs := make([]int, 0, len(candidates))
	for q := range candidates {
		seqs = append(seqs, q)
	}
	sort.Ints(seqs)
	for _, q := range seqs {
		if _, err := s.loadLocked(q); err != nil { //ocsml:nolock Open-time rebuild, as above
			continue // torn checkpoint, log or chain: not provably durable
		}
		man.Seqs = append(man.Seqs, q)
	}
	s.man = man                                       //ocsml:nolock Open-time rebuild, as above
	mdata, err := json.MarshalIndent(&s.man, "", " ") //ocsml:nolock Open-time rebuild, as above
	if err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, "MANIFEST.json"), mdata)
}

// Dir returns the process's storage directory.
func (s *Store) Dir() string { return s.dir }

// Manifest returns a copy of the current manifest.
func (s *Store) Manifest() Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.man
	m.Seqs = append([]int(nil), s.man.Seqs...)
	m.Segments = append([]SegmentMeta(nil), s.man.Segments...)
	return m
}

// LastSeq returns the highest durably finalized sequence number, or -1.
func (s *Store) LastSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.LastSeq()
}

func (s *Store) ckptPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt_%06d.json", seq))
}

func (s *Store) logPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("log_%06d.jsonl", seq))
}

// writeAtomic writes data to path via a temp file + fsync + rename, then
// fsyncs the directory so the rename itself is durable.
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		//ocsml:errsink best-effort temp cleanup; the primary write error is returned
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		//ocsml:errsink best-effort temp cleanup; the primary write error is returned
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		//ocsml:errsink best-effort temp cleanup; the primary write error is returned
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		//ocsml:errsink best-effort temp cleanup; the primary write error is returned
		os.Remove(tmpName)
		return err
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// temp-file fsync + directory fsync
	//ocsml:nolock every caller holds mu except the Open-time manifest rebuild, before the store escapes
	s.noteWriteLocked(int64(len(data)), 2)
	return nil
}

func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ckptState is the on-disk checkpoint state: the Record minus its log,
// which travels in the same segment frame (or, legacy, in the sibling
// jsonl file).
type ckptState struct {
	checkpoint.Tentative
	FinalizedAt int64  `json:"finalizedAt"`
	CFEFold     uint64 `json:"cfeFold"`
	CFEWork     int64  `json:"cfeWork"`
	CFEProgress int64  `json:"cfeProgress"`
	StableAt    int64  `json:"stableAt"`
	LogEntries  int    `json:"logEntries"`
}

// stateOf projects a Record onto its on-disk state.
func stateOf(rec checkpoint.Record) ckptState {
	return ckptState{
		Tentative:   rec.Tentative,
		FinalizedAt: int64(rec.FinalizedAt),
		CFEFold:     rec.CFEFold,
		CFEWork:     rec.CFEWork,
		CFEProgress: rec.CFEProgress,
		StableAt:    int64(rec.StableAt),
		LogEntries:  len(rec.Log),
	}
}

// recordOf rehydrates a Record from its state and log.
func recordOf(st ckptState, log []checkpoint.LoggedMsg) checkpoint.Record {
	return checkpoint.Record{
		Tentative:   st.Tentative,
		Log:         log,
		FinalizedAt: des.Time(st.FinalizedAt),
		CFEFold:     st.CFEFold,
		CFEWork:     st.CFEWork,
		CFEProgress: st.CFEProgress,
		StableAt:    des.Time(st.StableAt),
	}
}

// SaveTentative persists an early flush of the tentative checkpoint CT
// (the paper's "store at convenience" write that may precede
// finalization). It is scratch state: a crash before finalization
// legitimately discards it.
func (s *Store) SaveTentative(t checkpoint.Tentative) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(t)
	if err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, "tent.json"), data)
}

// pending is one finalization accepted into the commit queue. done is
// buffered; the committing drain resolves it exactly once.
type pending struct {
	rec  checkpoint.Record
	done chan error
}

// Pending is the handle of an asynchronous finalization.
type Pending struct {
	s *Store
	p *pending
}

// Wait blocks until the record is durably committed (or failed),
// driving a group commit itself if no other caller has flushed the
// queue yet.
func (w *Pending) Wait() error {
	select {
	case err := <-w.p.done:
		return err
	default:
	}
	w.s.drain()
	return <-w.p.done
}

// enqueue validates a record and appends it to the commit queue.
func (s *Store) enqueue(rec checkpoint.Record) (*pending, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tail := s.man.LastSeq()
	if k := len(s.queue); k > 0 {
		tail = s.queue[k-1].rec.Seq
	}
	var err error
	switch {
	case rec.Proc != s.proc:
		err = fmt.Errorf("fsstore: record for P%d written to store of P%d", rec.Proc, s.proc)
	case rec.Seq <= tail:
		err = fmt.Errorf("fsstore: P%d finalize seq %d not above last accepted %d", s.proc, rec.Seq, tail)
	}
	if err != nil {
		if m := s.metrics; m != nil {
			m.FinalizeErrors.Inc()
		}
		return nil, err
	}
	p := &pending{rec: rec, done: make(chan error, 1)}
	s.queue = append(s.queue, p)
	return p, nil
}

// drain commits the whole queue, MaxBatch records per group commit.
func (s *Store) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
}

func (s *Store) drainLocked() {
	for len(s.queue) > 0 {
		batch := s.queue
		if len(batch) > s.opts.MaxBatch {
			batch = batch[:s.opts.MaxBatch:s.opts.MaxBatch]
			s.queue = s.queue[s.opts.MaxBatch:]
		} else {
			s.queue = nil
		}
		s.commitBatchLocked(batch)
	}
}

// Finalize durably persists a finalized checkpoint: the record joins
// the commit queue and the call drives (or joins) a group commit. With
// a non-zero GroupWindow the caller lingers up to that long for other
// finalizations to share its fsync before flushing itself. Idempotent
// per sequence number; out-of-order sequence numbers are an error.
func (s *Store) Finalize(rec checkpoint.Record) error {
	p, err := s.enqueue(rec)
	if err != nil {
		return err
	}
	if w := s.opts.GroupWindow; w > 0 {
		select {
		case err := <-p.done:
			// Another caller's drain committed this record meanwhile.
			return err
		case <-time.After(w):
		}
	}
	s.drain()
	return <-p.done
}

// FinalizeAsync queues a finalization and returns immediately; the
// commit happens when any caller drives a drain (a synchronous
// Finalize, a Wait, a TruncateAfter) or the queue reaches MaxBatch
// during that drain. Queued records commit in enqueue order.
func (s *Store) FinalizeAsync(rec checkpoint.Record) (*Pending, error) {
	p, err := s.enqueue(rec)
	if err != nil {
		return nil, err
	}
	return &Pending{s: s, p: p}, nil
}

// FinalizeBatch persists recs (ascending seqs) through one drain —
// batches of MaxBatch records per fsync — and returns how long a prefix
// committed. A failed record fails every record behind it (committing
// past it would gap the manifest), and err is that first failure.
func (s *Store) FinalizeBatch(recs []checkpoint.Record) (committed int, err error) {
	waits := make([]*pending, 0, len(recs))
	for _, rec := range recs {
		p, enqErr := s.enqueue(rec)
		if enqErr != nil {
			err = enqErr
			break
		}
		waits = append(waits, p)
	}
	s.drain()
	for _, p := range waits {
		if werr := <-p.done; werr != nil {
			return committed, werr
		}
		committed++
	}
	return committed, err
}

// commitBatchLocked is one group commit: encode every record of the
// batch (full snapshot or delta per the SnapshotEvery cadence), append
// the frames to the active segment with a single file fsync, then
// commit the manifest. On a manifest failure the in-memory manifest is
// rolled back to match disk — the appended bytes sit beyond the durable
// size and the next commit overwrites them.
func (s *Store) commitBatchLocked(batch []*pending) {
	fail := func(ps []*pending, err error) {
		for _, p := range ps {
			if m := s.metrics; m != nil {
				m.FinalizeErrors.Inc()
			}
			p.done <- err
		}
	}
	prevState, prevHave, prevSince := s.lastState, s.haveLast, s.sinceFull
	rollbackState := func() {
		s.lastState, s.haveLast, s.sinceFull = prevState, prevHave, prevSince
	}

	// Choose the target segment before encoding so frame offsets are
	// final: append to the active segment, or rotate to a fresh one.
	segIdx, writeOff := 1, int64(0)
	newSeg := true
	if k := len(s.man.Segments); k > 0 {
		last := s.man.Segments[k-1]
		if last.Size < s.opts.SegmentMaxBytes {
			segIdx, writeOff, newSeg = last.Index, last.Size, false
		} else {
			segIdx = last.Index + 1
		}
	}
	var buf []byte
	if newSeg {
		buf = segmentHeader(s.proc, segIdx)
	}

	// Encode the committable prefix; the first failing record stops the
	// batch (committing records behind it would gap the manifest).
	var (
		encoded []*pending
		seqs    []int
		locs    []recLoc
		stopErr error
	)
	for _, p := range batch {
		if s.finalizeErr != nil {
			if err := s.finalizeErr(p.rec); err != nil {
				stopErr = err
				break
			}
		}
		st := stateOf(p.rec)
		sr := segRecord{Seq: p.rec.Seq, Log: p.rec.Log}
		full := !s.haveLast || s.sinceFull+1 >= s.opts.SnapshotEvery
		if full {
			sr.Kind = segFull
			sr.State = &st
		} else {
			sr.Kind = segDelta
			sr.Base = s.lastState.Seq
			d := diffState(s.lastState, st)
			sr.Delta = &d
		}
		payload, err := json.Marshal(&sr)
		if err != nil {
			stopErr = err
			break
		}
		off := writeOff + int64(len(buf))
		buf = appendFrame(buf, payload)
		locs = append(locs, recLoc{
			seg: segIdx, off: off, size: writeOff + int64(len(buf)) - off,
			kind: sr.Kind, base: sr.Base,
		})
		if full {
			s.sinceFull = 0
		} else {
			s.sinceFull++
		}
		s.lastState, s.haveLast = st, true
		encoded = append(encoded, p)
		seqs = append(seqs, p.rec.Seq)
	}
	rest := batch[len(encoded):]
	if len(encoded) == 0 {
		fail(rest, stopErr)
		return
	}

	// One segment fsync covers the whole batch — the amortization the
	// group commit exists for. A fresh segment also needs its directory
	// entry durable before the manifest may reference it.
	if err := writeSegment(SegmentFile(s.dir, segIdx), buf, writeOff); err != nil {
		rollbackState()
		fail(batch, err)
		return
	}
	s.noteWriteLocked(int64(len(buf)), 1)
	if newSeg {
		if err := s.syncDir(); err != nil {
			rollbackState()
			fail(batch, err)
			return
		}
		s.noteWriteLocked(0, 1)
	}

	// Manifest commit. On failure, roll the in-memory manifest back so
	// it matches disk — a phantom Seqs entry surviving here would let
	// the next successful commit publish a seq whose bytes were never
	// covered by a manifest (the divergence bug this rollback fixes).
	oldSeqs, oldSegs := s.man.Seqs, s.man.Segments
	s.man.Seqs = append(append([]int(nil), oldSeqs...), seqs...)
	segsCopy := append([]SegmentMeta(nil), oldSegs...)
	if newSeg {
		segsCopy = append(segsCopy, SegmentMeta{Index: segIdx, Size: writeOff + int64(len(buf))})
	} else {
		segsCopy[len(segsCopy)-1].Size = writeOff + int64(len(buf))
	}
	s.man.Segments = segsCopy
	if err := s.writeManifestLocked(); err != nil {
		s.man.Seqs, s.man.Segments = oldSeqs, oldSegs
		rollbackState()
		fail(batch, err)
		return
	}

	for i, p := range encoded {
		s.index[p.rec.Seq] = locs[i]
		if m := s.metrics; m != nil {
			m.Finalizes.Inc()
		}
		p.done <- nil
	}
	if len(rest) > 0 {
		fail(rest, stopErr)
	}
}

// writeSegment appends buf at off and fsyncs the file — the single
// durability point of a group commit's data.
func writeSegment(path string, buf []byte, off int64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (s *Store) writeManifestLocked() error {
	mdata, err := json.MarshalIndent(&s.man, "", " ")
	if err != nil {
		return err
	}
	return s.writeAtomic(filepath.Join(s.dir, "MANIFEST.json"), mdata)
}

// Load reads one finalized checkpoint back from disk, replaying its
// incremental chain if the record is a delta.
func (s *Store) Load(seq int) (checkpoint.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadLocked(seq)
}

func (s *Store) loadLocked(seq int) (checkpoint.Record, error) {
	loc, ok := s.index[seq]
	if !ok {
		return s.loadLegacy(seq)
	}
	sr, err := s.readSegRecord(loc)
	if err != nil {
		return checkpoint.Record{}, err
	}
	if sr.Seq != seq {
		return checkpoint.Record{}, fmt.Errorf("fsstore: P%d index points seq %d at a frame holding seq %d", s.proc, seq, sr.Seq)
	}
	st, err := s.resolveStateLocked(&sr)
	if err != nil {
		return checkpoint.Record{}, err
	}
	rec := recordOf(st, sr.Log)
	if len(rec.Log) != st.LogEntries {
		return rec, fmt.Errorf("fsstore: P%d seq %d log has %d entries, checkpoint state says %d",
			s.proc, seq, len(rec.Log), st.LogEntries)
	}
	return rec, nil
}

// resolveStateLocked reconstructs a segment record's full state,
// walking a delta's base chain back to the nearest full snapshot (or a
// legacy per-seq state file) and replaying the deltas forward.
func (s *Store) resolveStateLocked(sr *segRecord) (ckptState, error) {
	if sr.Kind == segFull {
		if sr.State == nil {
			return ckptState{}, fmt.Errorf("fsstore: P%d seq %d: full record without state", s.proc, sr.Seq)
		}
		return *sr.State, nil
	}
	if sr.Kind != segDelta {
		return ckptState{}, fmt.Errorf("fsstore: P%d seq %d: unknown record kind %q", s.proc, sr.Seq, sr.Kind)
	}
	// Collect the chain target..base order, then apply oldest-first.
	chain := []*segRecord{sr}
	base := sr.Base
	var st ckptState
	for {
		bloc, ok := s.index[base]
		if !ok {
			// The chain bottoms out in a legacy per-seq record.
			lrec, err := s.loadLegacy(base)
			if err != nil {
				return ckptState{}, fmt.Errorf("fsstore: P%d seq %d: delta chain base %d: %w", s.proc, sr.Seq, base, err)
			}
			st = stateOf(lrec)
			break
		}
		bsr, err := s.readSegRecord(bloc)
		if err != nil {
			return ckptState{}, fmt.Errorf("fsstore: P%d seq %d: delta chain base %d: %w", s.proc, sr.Seq, base, err)
		}
		if bsr.Kind == segFull {
			if bsr.State == nil {
				return ckptState{}, fmt.Errorf("fsstore: P%d seq %d: chain base %d without state", s.proc, sr.Seq, base)
			}
			st = *bsr.State
			break
		}
		chain = append(chain, &bsr)
		base = bsr.Base
		if len(chain) > len(s.index)+1 {
			return ckptState{}, fmt.Errorf("fsstore: P%d seq %d: delta chain cycle", s.proc, sr.Seq)
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		st = applyDelta(st, chain[i].Seq, chain[i].Delta)
	}
	return st, nil
}

// loadLegacy reads one finalized checkpoint from the legacy per-seq
// file pair (state json + log jsonl) — the format stores wrote before
// the segmented log.
func (s *Store) loadLegacy(seq int) (checkpoint.Record, error) {
	var rec checkpoint.Record
	raw, err := os.ReadFile(s.ckptPath(seq))
	if err != nil {
		return rec, err
	}
	var st ckptState
	if err := json.Unmarshal(raw, &st); err != nil {
		return rec, fmt.Errorf("fsstore: corrupt checkpoint P%d seq %d: %w", s.proc, seq, err)
	}
	lraw, err := os.ReadFile(s.logPath(seq))
	if err != nil {
		if os.IsNotExist(err) && st.LogEntries == 0 {
			return recordOf(st, nil), nil
		}
		return rec, err
	}
	var log []checkpoint.LoggedMsg
	dec := json.NewDecoder(bytes.NewReader(lraw))
	for dec.More() {
		var m checkpoint.LoggedMsg
		if err := dec.Decode(&m); err != nil {
			return rec, fmt.Errorf("fsstore: corrupt log P%d seq %d: %w", s.proc, seq, err)
		}
		log = append(log, m)
	}
	rec = recordOf(st, log)
	// The count lives in the checkpoint state file, not the manifest —
	// a mismatch means the log file was torn or tampered with.
	if len(rec.Log) != st.LogEntries {
		return rec, fmt.Errorf("fsstore: P%d seq %d log has %d entries, checkpoint state says %d",
			s.proc, seq, len(rec.Log), st.LogEntries)
	}
	return rec, nil
}

// TruncateAfter removes finalized checkpoints with Seq > seq from the
// manifest — a cluster-wide rollback discards checkpoints above the
// recovery line so the restarted run can legitimately re-produce those
// sequence numbers. Queued finalizations are flushed first; truncated
// segment bytes stay in place (unreferenced, reclaimed by GCTo or
// overwritten on reuse), legacy per-seq files are removed.
func (s *Store) TruncateAfter(seq int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	keep := s.man.Seqs[:0]
	var drop []int
	for _, q := range s.man.Seqs {
		if q <= seq {
			keep = append(keep, q)
		} else {
			drop = append(drop, q)
		}
	}
	if len(drop) == 0 {
		return nil
	}
	s.man.Seqs = keep
	// Manifest first: once it no longer references the dropped seqs, the
	// stale bytes and files are invisible garbage even if removal is
	// interrupted.
	if err := s.writeManifestLocked(); err != nil {
		s.man.Seqs = append(s.man.Seqs, drop...)
		return err
	}
	for _, q := range drop {
		delete(s.index, q)
		//ocsml:errsink manifest no longer references these seqs; removal is opportunistic GC
		os.Remove(s.ckptPath(q))
		//ocsml:errsink manifest no longer references these seqs; removal is opportunistic GC
		os.Remove(s.logPath(q))
	}
	// The next record's delta base would be a discarded state: force a
	// full snapshot so surviving chains never cross the rollback.
	s.haveLast = false
	s.sinceFull = 0
	return s.syncDir()
}

// GCTo garbage-collects checkpoints below the globally finalized
// watermark wm (the last complete S_k across all manifests): records
// with Seq < wm leave the manifest, segments no live record references
// are unlinked, and legacy per-seq files below the watermark are
// removed. If the watermark record is a delta it is first compacted to
// a full snapshot (appended like a group commit of one), so surviving
// chains resolve without the collected records. Seqs the store never
// had — or a watermark it does not hold — make GCTo a no-op, so callers
// may poll with whatever line the manifests intersect to.
func (s *Store) GCTo(wm int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if wm <= 0 || len(s.man.Seqs) == 0 || s.man.Seqs[0] >= wm {
		return nil
	}
	hasWm := false
	for _, q := range s.man.Seqs {
		if q == wm {
			hasWm = true
			break
		}
	}
	if !hasWm {
		return nil
	}

	// 1. Compaction: the watermark must stand alone. A delta watermark
	// is re-appended as a full snapshot (crash boundary: bytes beyond
	// the durable size are harmless until the manifest below commits).
	loc, inSeg := s.index[wm]
	if inSeg && loc.kind == segDelta {
		rec, err := s.loadLocked(wm)
		if err != nil {
			return err
		}
		st := stateOf(rec)
		sr := segRecord{Seq: wm, Kind: segFull, State: &st, Log: rec.Log}
		payload, err := json.Marshal(&sr)
		if err != nil {
			return err
		}
		segIdx, writeOff := 1, int64(0)
		newSeg := true
		if k := len(s.man.Segments); k > 0 {
			last := s.man.Segments[k-1]
			if last.Size < s.opts.SegmentMaxBytes {
				segIdx, writeOff, newSeg = last.Index, last.Size, false
			} else {
				segIdx = last.Index + 1
			}
		}
		var buf []byte
		if newSeg {
			buf = segmentHeader(s.proc, segIdx)
		}
		off := writeOff + int64(len(buf))
		buf = appendFrame(buf, payload)
		if err := writeSegment(SegmentFile(s.dir, segIdx), buf, writeOff); err != nil {
			return err
		}
		s.noteWriteLocked(int64(len(buf)), 1)
		if newSeg {
			if err := s.syncDir(); err != nil {
				return err
			}
			s.noteWriteLocked(0, 1)
			s.man.Segments = append(append([]SegmentMeta(nil), s.man.Segments...),
				SegmentMeta{Index: segIdx, Size: writeOff + int64(len(buf))})
		} else {
			segs := append([]SegmentMeta(nil), s.man.Segments...)
			segs[len(segs)-1].Size = writeOff + int64(len(buf))
			s.man.Segments = segs
		}
		s.index[wm] = recLoc{seg: segIdx, off: off, size: writeOff + int64(len(buf)) - off, kind: segFull}
		// The compacted snapshot is the freshest committed state: keep
		// the delta base tracking coherent with what Load now returns.
		if s.haveLast && s.lastState.Seq == wm {
			s.lastState = st
		}
	}

	// 2. Drop the collected seqs from the manifest and prune segments no
	// surviving record lives in.
	keep := make([]int, 0, len(s.man.Seqs))
	var drop []int
	for _, q := range s.man.Seqs {
		if q >= wm {
			keep = append(keep, q)
		} else {
			drop = append(drop, q)
		}
	}
	for _, q := range drop {
		delete(s.index, q)
	}
	live := map[int]bool{}
	for _, l := range s.index {
		live[l.seg] = true
	}
	keptSegs := make([]SegmentMeta, 0, len(s.man.Segments))
	var deadSegs []int
	for i, meta := range s.man.Segments {
		if live[meta.Index] || i == len(s.man.Segments)-1 {
			keptSegs = append(keptSegs, meta) // the active segment always stays
		} else {
			deadSegs = append(deadSegs, meta.Index)
		}
	}
	oldSeqs, oldSegs := s.man.Seqs, s.man.Segments
	s.man.Seqs, s.man.Segments = keep, keptSegs

	// Manifest first: after it commits, the dead segments and legacy
	// files are unreferenced garbage; a crash mid-removal leaves
	// orphans Open's sweep deletes.
	if err := s.writeManifestLocked(); err != nil {
		s.man.Seqs, s.man.Segments = oldSeqs, oldSegs
		return err
	}
	for _, idx := range deadSegs {
		//ocsml:errsink manifest no longer references this segment; removal is opportunistic GC
		os.Remove(SegmentFile(s.dir, idx))
	}
	for _, q := range drop {
		//ocsml:errsink manifest no longer references these seqs; removal is opportunistic GC
		os.Remove(s.ckptPath(q))
		//ocsml:errsink manifest no longer references these seqs; removal is opportunistic GC
		os.Remove(s.logPath(q))
	}
	if m := s.metrics; m != nil {
		m.GCRemoved.Add(int64(len(drop)))
	}
	return s.syncDir()
}

// RecoverStore loads every process's finalized checkpoints from disk into
// an in-memory checkpoint store — what a recovery manager reconstructs
// after a cluster-wide failure. Processes with no directory yet contribute
// nothing (their store is empty).
func RecoverStore(datadir string, n int) (*checkpoint.Store, error) {
	cs := checkpoint.NewStore(n)
	for p := 0; p < n; p++ {
		s, err := Open(datadir, p, n)
		if err != nil {
			return nil, err
		}
		seqs := s.Manifest().Seqs
		sort.Ints(seqs)
		for _, seq := range seqs {
			rec, err := s.Load(seq)
			if err != nil {
				return nil, err
			}
			cs.Proc(p).Add(rec)
		}
	}
	return cs, nil
}

// ReadManifest reads a process's manifest without opening the store: no
// directory creation, no debris sweep, no rebuild. This is the safe way
// to poll a datadir that live processes are still writing to — Open's
// sweep would delete the temp file of an atomic write in flight and fail
// that process's rename. A missing directory or manifest yields an empty
// manifest (the process has durably finalized nothing yet).
func ReadManifest(datadir string, proc int) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(ProcDir(datadir, proc), "MANIFEST.json"))
	switch {
	case os.IsNotExist(err):
		return Manifest{Proc: proc}, nil
	case err != nil:
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("fsstore: corrupt manifest for P%d: %w", proc, err)
	}
	return m, nil
}

// Intersect returns the sequence numbers present in every one of the
// groups, ascending. It is a true intersection: a sequence number counts
// only if every group has it, so gaps in one manifest (possible after a
// torn-manifest rebuild) cannot surface a line some process lacks. The
// recovery coordinator applies it to the RB_LINE reports exactly as the
// datadir helpers below apply it to the on-disk manifests.
func Intersect(groups [][]int) []int {
	if len(groups) == 0 {
		return nil
	}
	count := map[int]int{}
	for _, group := range groups {
		seen := map[int]bool{}
		for _, q := range group {
			if !seen[q] {
				seen[q] = true
				count[q]++
			}
		}
	}
	var seqs []int
	for q, c := range count {
		if c == len(groups) {
			seqs = append(seqs, q)
		}
	}
	sort.Ints(seqs)
	return seqs
}

// LastCompleteSeq intersects the manifests of all n processes and returns
// the highest sequence number every process has durably finalized — the
// last global checkpoint S_k on disk — or -1 if none exists. Reads are
// manifest-only (ReadManifest), so polling a live datadir is safe.
func LastCompleteSeq(datadir string, n int) (int, error) {
	seqs, err := CompleteSeqs(datadir, n)
	if err != nil {
		return -1, err
	}
	if len(seqs) == 0 {
		return -1, nil
	}
	return seqs[len(seqs)-1], nil
}

// CompleteSeqs returns every sequence number present in all n manifests,
// ascending — the durable global checkpoints S_k the datadir can prove.
// Reads are manifest-only (ReadManifest), so polling a live datadir is
// safe.
func CompleteSeqs(datadir string, n int) ([]int, error) {
	groups := make([][]int, 0, n)
	for p := 0; p < n; p++ {
		m, err := ReadManifest(datadir, p)
		if err != nil {
			return nil, err
		}
		groups = append(groups, m.Seqs)
	}
	return Intersect(groups), nil
}
