package fsstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
)

func rec(proc, seq int, logn int) checkpoint.Record {
	at := des.Time(seq) * 1000
	r := checkpoint.Record{
		Tentative: checkpoint.Tentative{
			Proc: proc, Seq: seq, TakenAt: at,
			StateBytes: 1 << 20, Fold: uint64(seq)*7919 + 1, Work: int64(seq) * 10,
		},
		FinalizedAt: at + 500,
		CFEFold:     uint64(seq)*7919 + 99,
		CFEWork:     int64(seq)*10 + 3,
		CFEProgress: int64(seq) * 10,
		StableAt:    at + 700,
	}
	for i := 0; i < logn; i++ {
		r.Log = append(r.Log, checkpoint.LoggedMsg{
			ID: int64(seq*100 + i), Src: proc, Dst: (proc + 1) % 4,
			Dir: checkpoint.Direction(i % 2), SentAt: 10, LoggedAt: 20,
			Bytes: 2048, Tag: uint64(i) + 1, AppSeq: int64(i),
		})
	}
	return r
}

func TestFinalizeLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := rec(1, 1, 3)
	if err := s.Finalize(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestManifestOrderingAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 3; seq++ {
		if err := s.Finalize(rec(0, seq, seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finalize(rec(0, 2, 0)); err == nil {
		t.Fatal("out-of-order finalize accepted")
	}
	// Reopen: manifest survives, last seq visible.
	s2, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s2.LastSeq() != 3 {
		t.Fatalf("reopened LastSeq = %d, want 3", s2.LastSeq())
	}
	if got := s2.Manifest().Seqs; !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("manifest seqs = %v", got)
	}
}

func TestTruncateAfter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 4; seq++ {
		if err := s.Finalize(rec(2, seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.TruncateAfter(2); err != nil {
		t.Fatal(err)
	}
	if s.LastSeq() != 2 {
		t.Fatalf("LastSeq after truncate = %d, want 2", s.LastSeq())
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "ckpt_000004.json")); !os.IsNotExist(err) {
		t.Fatalf("truncated checkpoint file still present (err=%v)", err)
	}
	// The protocol may legitimately re-produce seq 3 after the rollback.
	if err := s.Finalize(rec(2, 3, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverStoreAndLastCompleteSeq(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	for p := 0; p < n; p++ {
		s, err := Open(dir, p, n)
		if err != nil {
			t.Fatal(err)
		}
		last := 2
		if p == 3 {
			last = 1 // P3 lags: S_2 is incomplete on disk
		}
		for seq := 1; seq <= last; seq++ {
			if err := s.Finalize(rec(p, seq, seq)); err != nil {
				t.Fatal(err)
			}
		}
	}
	line, err := LastCompleteSeq(dir, n)
	if err != nil {
		t.Fatal(err)
	}
	if line != 1 {
		t.Fatalf("LastCompleteSeq = %d, want 1", line)
	}
	cs, err := RecoverStore(dir, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.MaxCompleteSeq(); got != 1 {
		t.Fatalf("recovered MaxCompleteSeq = %d, want 1", got)
	}
	g, ok := cs.Global(1)
	if !ok {
		t.Fatal("recovered store missing S_1")
	}
	for p := 0; p < n; p++ {
		if g.Recs[p].CFEFold != rec(p, 1, 0).CFEFold {
			t.Fatalf("P%d recovered fold mismatch", p)
		}
	}
}

func TestForeignManifestRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, 0, 2); err != nil {
		t.Fatal(err)
	}
	// A parseable manifest belonging to another process is an operator
	// error (datadir mixup), not crash debris — it must fail the open.
	if err := os.WriteFile(filepath.Join(ProcDir(dir, 0), "MANIFEST.json"),
		[]byte(`{"proc":1,"n":2,"seqs":[1]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 0, 2); err == nil {
		t.Fatal("foreign manifest accepted")
	}
}

func TestFinalizeErrorRetried(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(rec(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// Inject a one-shot failure for seq 2: the store must be left exactly
	// as it was — no partial files, no manifest entry — so the caller's
	// retry of the same record succeeds without a gap.
	fails := 1
	s.SetFinalizeErrHook(func(r checkpoint.Record) error {
		if r.Seq == 2 && fails > 0 {
			fails--
			return os.ErrDeadlineExceeded
		}
		return nil
	})
	if err := s.Finalize(rec(0, 2, 2)); err == nil {
		t.Fatal("injected finalize error not surfaced")
	}
	if s.LastSeq() != 1 {
		t.Fatalf("LastSeq after failed finalize = %d, want 1", s.LastSeq())
	}
	if err := s.Finalize(rec(0, 2, 2)); err != nil {
		t.Fatalf("retried finalize: %v", err)
	}
	if err := s.Finalize(rec(0, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if got := s.Manifest().Seqs; !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("manifest seqs = %v, want [1 2 3] (no gap)", got)
	}
	// Reopen and replay-validate: the retried record is fully durable.
	s2, err := Open(dir, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec(0, 2, 2)) {
		t.Fatal("retried record does not round-trip")
	}
}

func TestReadManifestDoesNotDisturbDatadir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(rec(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// A live writer's in-flight temp file must survive a ReadManifest poll
	// (Open's debris sweep would delete it).
	tmp := filepath.Join(s.Dir(), ".tmp-inflight")
	if err := os.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Seqs, []int{1}) {
		t.Fatalf("manifest seqs = %v", m.Seqs)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("in-flight temp file disturbed: %v", err)
	}
	// Absent process directory: empty manifest, nothing created.
	m, err = ReadManifest(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Seqs) != 0 {
		t.Fatalf("absent dir manifest seqs = %v", m.Seqs)
	}
	if _, err := os.Stat(ProcDir(dir, 1)); !os.IsNotExist(err) {
		t.Fatalf("ReadManifest created the process directory (err=%v)", err)
	}
}
