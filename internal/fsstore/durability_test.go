package fsstore

// Tests of the pipelined durability engine: group-commit fsync
// amortization, manifest rollback on a failed commit, incremental
// chain replay, the S_k GC watermark, and the segment crash-point
// matrix (torn header, torn batch tail, orphan segment).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ocsml/internal/checkpoint"
	"ocsml/internal/metrics"
)

// writeLegacyRecord fabricates a pre-segmented-log per-seq record pair
// (state json + log jsonl) directly on disk.
func writeLegacyRecord(t *testing.T, datadir string, r checkpoint.Record) {
	t.Helper()
	dir := ProcDir(datadir, r.Proc)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	st := stateOf(r)
	data, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("ckpt_%06d.json", r.Seq)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, m := range r.Log {
		if err := enc.Encode(&m); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("log_%06d.jsonl", r.Seq)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitAmortizesFsyncs is the acceptance gate of the engine:
// at batch depth >= 8 the fsyncs-per-finalize ratio must drop below
// 0.5, and the fsync counter must count actual syscalls (segment sync +
// manifest temp sync + directory sync per commit), not one per record.
func TestGroupCommitAmortizesFsyncs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	sm := NewStoreMetrics(reg, 0)
	s.SetMetrics(sm)

	const depth = 16
	base := sm.Fsyncs.Value()
	waits := make([]*Pending, 0, depth)
	for seq := 1; seq <= depth; seq++ {
		w, err := s.FinalizeAsync(rec(0, seq, 2))
		if err != nil {
			t.Fatal(err)
		}
		waits = append(waits, w)
	}
	for _, w := range waits {
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	fsyncs := sm.Fsyncs.Value() - base
	// One group commit: segment sync + (new segment) dir sync + manifest
	// temp sync + manifest dir sync = 4 syscalls for 16 finalizes.
	if ratio := float64(fsyncs) / depth; ratio >= 0.5 {
		t.Fatalf("fsyncs/finalize = %d/%d = %.2f, want < 0.5", fsyncs, depth, ratio)
	}
	if got := sm.Finalizes.Value(); got != depth {
		t.Fatalf("finalized counter = %d, want %d", got, depth)
	}
	if got := s.Manifest().Seqs; len(got) != depth {
		t.Fatalf("manifest seqs = %v, want %d entries", got, depth)
	}
	// Every record of the batch replays, both live and after reopen.
	for seq := 1; seq <= depth; seq++ {
		got, err := s.Load(seq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rec(0, seq, 2)) {
			t.Fatalf("seq %d round-trip mismatch", seq)
		}
	}
	s2, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= depth; seq++ {
		if _, err := s2.Load(seq); err != nil {
			t.Fatalf("reopened load seq %d: %v", seq, err)
		}
	}
}

// TestManifestRollbackOnFailedCommit is the satellite-1 regression: a
// manifest write failure mid-commit must roll the in-memory manifest
// back to what disk holds, so a later successful finalize cannot
// publish a phantom entry.
func TestManifestRollbackOnFailedCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(rec(0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// Make the manifest commit fail after the segment bytes land: replace
	// MANIFEST.json with a directory, so writeAtomic's rename gets EISDIR
	// (works even when running as root, unlike permission bits).
	manifest := filepath.Join(s.Dir(), "MANIFEST.json")
	if err := os.Remove(manifest); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(manifest, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(rec(0, 2, 1)); err == nil {
		t.Fatal("finalize with unwritable manifest succeeded")
	}
	if s.LastSeq() != 1 {
		t.Fatalf("LastSeq after failed manifest commit = %d, want 1 (in-memory manifest diverged from disk)", s.LastSeq())
	}
	// Heal the manifest path and retry: the same seq must commit cleanly
	// and disk must agree with memory.
	if err := os.Remove(manifest); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(rec(0, 2, 1)); err != nil {
		t.Fatalf("retry after healed manifest: %v", err)
	}
	if err := s.Finalize(rec(0, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if got := s.Manifest().Seqs; !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("manifest seqs = %v, want [1 2 3]", got)
	}
	m, err := ReadManifest(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Seqs, []int{1, 2, 3}) {
		t.Fatalf("on-disk manifest seqs = %v, want [1 2 3]", m.Seqs)
	}
	s2, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 3; seq++ {
		if _, err := s2.Load(seq); err != nil {
			t.Fatalf("load seq %d after rollback+retry: %v", seq, err)
		}
	}
}

// TestLoadLogMismatchMessage is the satellite-2 regression: the
// log-entry mismatch comes from the checkpoint state's own count, and
// the error must say so (the old message blamed the manifest, which
// holds no counts at all).
func TestLoadLogMismatchMessage(t *testing.T) {
	dir := t.TempDir()
	r := rec(0, 1, 3)
	writeLegacyRecord(t, dir, r)
	writeManifest(t, dir, 0, 2, []int{1})
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Drop one log line: the state file still claims 3 entries.
	logPath := filepath.Join(s.Dir(), "log_000001.jsonl")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if err := os.WriteFile(logPath, bytes.Join(lines[:2], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Load(1)
	if err == nil {
		t.Fatal("mismatched log loaded without error")
	}
	if !strings.Contains(err.Error(), "checkpoint state says 3") {
		t.Fatalf("mismatch error %q does not name the checkpoint state as the count's source", err)
	}
	if strings.Contains(err.Error(), "manifest says") {
		t.Fatalf("mismatch error %q still blames the manifest", err)
	}
}

// TestLegacyStoreUpgrades: a datadir written by the pre-segment engine
// (per-seq files + plain manifest) opens, loads, and accepts new
// finalizes into segments, with legacy records still readable and a
// new delta legally chaining onto a legacy base after GC compaction.
func TestLegacyStoreUpgrades(t *testing.T) {
	dir := t.TempDir()
	for seq := 1; seq <= 3; seq++ {
		writeLegacyRecord(t, dir, rec(0, seq, 2))
	}
	writeManifest(t, dir, 0, 2, []int{1, 2, 3})
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 3; seq++ {
		got, err := s.Load(seq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, rec(0, seq, 2)) {
			t.Fatalf("legacy seq %d round-trip mismatch", seq)
		}
	}
	for seq := 4; seq <= 6; seq++ {
		if err := s.Finalize(rec(0, seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 6; seq++ {
		if _, err := s2.Load(seq); err != nil {
			t.Fatalf("mixed-format load seq %d: %v", seq, err)
		}
	}
}

// TestIncrementalChainByteIdentical is the acceptance criterion:
// recovery through a delta chain must reproduce exactly the records a
// full-snapshot-only store reproduces.
func TestIncrementalChainByteIdentical(t *testing.T) {
	const n = 20
	deltaDir, fullDir := t.TempDir(), t.TempDir()
	opts := DefaultOptions()
	opts.SnapshotEvery = 4
	sd, err := OpenWith(deltaDir, 0, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	fullOpts := DefaultOptions()
	fullOpts.SnapshotEvery = 1 // every record a full snapshot
	sf, err := OpenWith(fullDir, 0, 2, fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= n; seq++ {
		r := rec(0, seq, seq%3)
		if err := sd.Finalize(r); err != nil {
			t.Fatal(err)
		}
		if err := sf.Finalize(r); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen both (the replay path, not the in-memory cache) and compare
	// every record byte-for-byte via the canonical JSON encoding.
	sd2, err := OpenWith(deltaDir, 0, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	sf2, err := OpenWith(fullDir, 0, 2, fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= n; seq++ {
		dr, err := sd2.Load(seq)
		if err != nil {
			t.Fatalf("delta-chain load seq %d: %v", seq, err)
		}
		fr, err := sf2.Load(seq)
		if err != nil {
			t.Fatalf("full-snapshot load seq %d: %v", seq, err)
		}
		db, _ := json.Marshal(dr)
		fb, _ := json.Marshal(fr)
		if !bytes.Equal(db, fb) {
			t.Fatalf("seq %d: delta-chain recovery diverges from full-snapshot recovery:\n delta %s\n full  %s", seq, db, fb)
		}
	}
}

// TestGCToWatermark: records below the globally finalized S_k leave the
// manifest and disk; the watermark itself (compacted to a full snapshot
// if it was a delta) and everything above it stay loadable.
func TestGCToWatermark(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.SnapshotEvery = 4
	opts.SegmentMaxBytes = 1024 // force rotation so old segments can die
	s, err := OpenWith(dir, 0, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	sm := NewStoreMetrics(reg, 0)
	s.SetMetrics(sm)
	for seq := 1; seq <= 12; seq++ {
		if err := s.Finalize(rec(0, seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := len(s.Manifest().Segments)
	if err := s.GCTo(10); err != nil {
		t.Fatal(err)
	}
	if got := s.Manifest().Seqs; !reflect.DeepEqual(got, []int{10, 11, 12}) {
		t.Fatalf("post-GC manifest seqs = %v, want [10 11 12]", got)
	}
	if got := sm.GCRemoved.Value(); got != 9 {
		t.Fatalf("gc-removed counter = %d, want 9", got)
	}
	if segsAfter := len(s.Manifest().Segments); segsAfter >= segsBefore {
		t.Fatalf("GC kept all %d segments (had %d before)", segsAfter, segsBefore)
	}
	for seq := 10; seq <= 12; seq++ {
		got, err := s.Load(seq)
		if err != nil {
			t.Fatalf("post-GC load seq %d: %v", seq, err)
		}
		if !reflect.DeepEqual(got, rec(0, seq, 2)) {
			t.Fatalf("post-GC seq %d round-trip mismatch", seq)
		}
	}
	if _, err := s.Load(9); err == nil {
		t.Fatal("collected seq 9 still loads")
	}
	// Idempotent and monotone: re-collecting the same or an unknown
	// watermark is a no-op.
	if err := s.GCTo(10); err != nil {
		t.Fatal(err)
	}
	if err := s.GCTo(999); err != nil {
		t.Fatal(err)
	}
	if got := s.Manifest().Seqs; !reflect.DeepEqual(got, []int{10, 11, 12}) {
		t.Fatalf("idempotent GC changed seqs to %v", got)
	}
	// Survives reopen: the compacted watermark chain replays from disk.
	s2, err := OpenWith(dir, 0, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 10; seq <= 12; seq++ {
		got, err := s2.Load(seq)
		if err != nil {
			t.Fatalf("reopened post-GC load seq %d: %v", seq, err)
		}
		if !reflect.DeepEqual(got, rec(0, seq, 2)) {
			t.Fatalf("reopened post-GC seq %d mismatch", seq)
		}
	}
	// New finalizes continue above the watermark.
	if err := s2.Finalize(rec(0, 13, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentRotation: the active segment rotates at SegmentMaxBytes
// and every record stays loadable across the rotation and a reopen.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.SegmentMaxBytes = 512
	s, err := OpenWith(dir, 0, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 10; seq++ {
		if err := s.Finalize(rec(0, seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if segs := s.Manifest().Segments; len(segs) < 2 {
		t.Fatalf("no rotation at 512-byte cap: segments = %v", segs)
	}
	s2, err := OpenWith(dir, 0, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 10; seq++ {
		got, err := s2.Load(seq)
		if err != nil {
			t.Fatalf("rotated load seq %d: %v", seq, err)
		}
		if !reflect.DeepEqual(got, rec(0, seq, 2)) {
			t.Fatalf("rotated seq %d mismatch", seq)
		}
	}
}

// TestTruncateAfterForcesFullSnapshot: a rollback may be followed by
// re-finalized seqs; the first record after the rollback must not delta
// against a discarded state, and the re-finalized frame (not the stale
// one still in the segment) must win on reopen.
func TestTruncateAfterForcesFullSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 4; seq++ {
		if err := s.Finalize(rec(0, seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.TruncateAfter(2); err != nil {
		t.Fatal(err)
	}
	// Re-produce seqs 3 and 4 with different payloads.
	want3, want4 := rec(0, 3, 3), rec(0, 4, 0)
	if err := s.Finalize(want3); err != nil {
		t.Fatal(err)
	}
	if err := s.Finalize(want4); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store, label string) {
		t.Helper()
		got3, err := s.Load(3)
		if err != nil {
			t.Fatalf("%s load 3: %v", label, err)
		}
		if !reflect.DeepEqual(got3, want3) {
			t.Fatalf("%s: stale pre-rollback seq 3 won over the re-finalized record", label)
		}
		got4, err := s.Load(4)
		if err != nil {
			t.Fatalf("%s load 4: %v", label, err)
		}
		if !reflect.DeepEqual(got4, want4) {
			t.Fatalf("%s: stale pre-rollback seq 4 won over the re-finalized record", label)
		}
	}
	check(s, "live")
	s2, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	check(s2, "reopened")
}

// TestCrashPointMatrix covers the segment crash boundaries the chaos
// runner also drives end-to-end: debris at each commit boundary must
// never make the manifest point at missing data, and everything the
// manifest references must still load.
func TestCrashPointMatrix(t *testing.T) {
	seed := func(t *testing.T) (string, *Store) {
		t.Helper()
		dir := t.TempDir()
		opts := DefaultOptions()
		opts.SegmentMaxBytes = 1024
		s, err := OpenWith(dir, 0, 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		for seq := 1; seq <= 6; seq++ {
			if err := s.Finalize(rec(0, seq, 2)); err != nil {
				t.Fatal(err)
			}
		}
		return dir, s
	}
	verify := func(t *testing.T, dir string) {
		t.Helper()
		s, err := Open(dir, 0, 2)
		if err != nil {
			t.Fatalf("reopen with crash debris: %v", err)
		}
		for _, seq := range s.Manifest().Seqs {
			if _, err := s.Load(seq); err != nil {
				t.Fatalf("manifest points at unloadable seq %d: %v", seq, err)
			}
		}
		for seq := 1; seq <= 6; seq++ {
			got, err := s.Load(seq)
			if err != nil {
				t.Fatalf("previously durable seq %d lost: %v", seq, err)
			}
			if !reflect.DeepEqual(got, rec(0, seq, 2)) {
				t.Fatalf("seq %d corrupted by crash debris", seq)
			}
		}
	}

	t.Run("torn segment header", func(t *testing.T) {
		// Crash while creating a fresh segment: only half the header hit
		// disk, and no manifest references the file.
		dir, s := seed(t)
		next := len(s.Manifest().Segments) + 1
		if err := os.WriteFile(SegmentFile(s.Dir(), next), []byte(segMagic[:4]), 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, dir)
	})

	t.Run("torn group-commit batch", func(t *testing.T) {
		// Crash mid-batch-append: garbage bytes sit beyond the durable
		// size of the active segment.
		dir, s := seed(t)
		segs := s.Manifest().Segments
		last := segs[len(segs)-1]
		f, err := os.OpenFile(SegmentFile(s.Dir(), last.Index), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("\x99\x00\x00\x00garbage-from-a-torn-batch")); err != nil {
			t.Fatal(err)
		}
		f.Close()
		verify(t, dir)
		// The tail was truncated: a second reopen sees a clean file.
		fi, err := os.Stat(SegmentFile(ProcDir(dir, 0), last.Index))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != last.Size {
			t.Fatalf("torn tail not truncated: size %d, durable %d", fi.Size(), last.Size)
		}
	})

	t.Run("crash between compaction and segment GC", func(t *testing.T) {
		// GCTo commits the manifest before unlinking dead segments; a
		// crash in between leaves a valid but unreferenced segment file.
		dir, s := seed(t)
		segs := s.Manifest().Segments
		firstSeg := SegmentFile(s.Dir(), segs[0].Index)
		orphan := SegmentFile(s.Dir(), segs[len(segs)-1].Index+3)
		raw, err := os.ReadFile(firstSeg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(orphan, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, dir)
		if _, err := os.Stat(orphan); !os.IsNotExist(err) {
			t.Fatalf("orphan segment survived the open sweep (err=%v)", err)
		}
	})

	t.Run("torn manifest over segments", func(t *testing.T) {
		// Crash mid-manifest-overwrite: the rebuild must recover every
		// record from the segments' durable bytes.
		dir, s := seed(t)
		manifest := filepath.Join(s.Dir(), "MANIFEST.json")
		raw, err := os.ReadFile(manifest)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(manifest, raw[:len(raw)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		verify(t, dir)
	})
}

// TestFinalizeBatch: a mid-batch injected failure commits exactly the
// prefix before the failing record — committing past it would gap the
// manifest — and reports the first error.
func TestFinalizeBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]checkpoint.Record, 0, 6)
	for seq := 1; seq <= 6; seq++ {
		recs = append(recs, rec(0, seq, 1))
	}
	s.SetFinalizeErrHook(func(r checkpoint.Record) error {
		if r.Seq == 4 {
			return os.ErrDeadlineExceeded
		}
		return nil
	})
	committed, err := s.FinalizeBatch(recs)
	if err == nil {
		t.Fatal("injected batch failure not surfaced")
	}
	if committed != 3 {
		t.Fatalf("committed = %d, want 3 (prefix before the failing record)", committed)
	}
	if got := s.Manifest().Seqs; !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("manifest seqs = %v, want [1 2 3]", got)
	}
	s.SetFinalizeErrHook(nil)
	committed, err = s.FinalizeBatch(recs[3:])
	if err != nil || committed != 3 {
		t.Fatalf("retry batch = (%d, %v), want (3, nil)", committed, err)
	}
	if s.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d, want 6", s.LastSeq())
	}
}
