// Package reliable provides a positive-acknowledgement retransmission
// middleware that wraps any checkpointing protocol so it runs correctly
// over lossy channels.
//
// The paper's system model assumes reliable (if arbitrarily slow and
// non-FIFO) channels; real deployments provide that with a transport
// layer exactly like this one. The wrapper:
//
//   - intercepts every envelope the inner protocol (or the application)
//     sends, and retransmits it with exponential backoff until the
//     destination acknowledges it;
//   - acknowledges and deduplicates on the receive path, so the inner
//     protocol sees each envelope exactly once, in possibly-reordered
//     order — precisely the paper's channel model.
//
// Retransmissions reuse the original envelope (same ID, same piggyback):
// the piggybacked state is the state at first transmission, which is what
// the paper's correctness argument assumes of a channel that delivers
// late.
//
// The wrapper composes with the engine's live failure injection when the
// inner protocol supports rollback: transport state is reset at recovery
// and the engine's log re-injection is delivered outside the transport.
package reliable

import (
	"fmt"

	"ocsml/internal/des"
	"ocsml/internal/protocol"
)

// Options tunes the transport.
type Options struct {
	// RTO is the initial retransmission timeout.
	RTO des.Duration
	// MaxRTO caps the exponential backoff.
	MaxRTO des.Duration
}

// DefaultOptions suits the simulated LAN (sub-2ms delivery).
func DefaultOptions() Options {
	return Options{RTO: 20 * des.Millisecond, MaxRTO: 500 * des.Millisecond}
}

const (
	// timerKind is far above any inner protocol's timer kinds.
	timerKind = 1 << 20
	// AckTag is the control tag of transport acknowledgements.
	AckTag   = "ACK"
	ackBytes = 12
)

// Ack is the acknowledgement payload: the envelope id being confirmed.
// Exported so the real-network runtime (internal/wire) can serialize it.
//
//ocsml:wirepayload
type Ack struct {
	ID int64
}

type pendingMsg struct {
	env     *protocol.Envelope
	rto     des.Duration
	retries int
}

// Protocol wraps an inner protocol with reliable delivery.
type Protocol struct {
	inner protocol.Protocol
	opt   Options
	env   protocol.Env // the engine's env

	pending map[int64]*pendingMsg
	seen    map[int64]bool
}

// Wrap builds the middleware around an inner protocol instance.
func Wrap(inner protocol.Protocol, opt Options) *Protocol {
	if opt.RTO <= 0 {
		opt = DefaultOptions()
	}
	if opt.MaxRTO < opt.RTO {
		opt.MaxRTO = opt.RTO * 16
	}
	return &Protocol{
		inner:   inner,
		opt:     opt,
		pending: map[int64]*pendingMsg{},
		seen:    map[int64]bool{},
	}
}

// Factory wraps a protocol factory.
func Factory(inner func(i, n int) protocol.Protocol, opt Options) func(i, n int) protocol.Protocol {
	return func(i, n int) protocol.Protocol { return Wrap(inner(i, n), opt) }
}

var _ protocol.Protocol = (*Protocol)(nil)

// Name implements protocol.Protocol.
func (p *Protocol) Name() string { return p.inner.Name() + "+reliable" }

// Start implements protocol.Protocol: the inner protocol receives a
// wrapped Env whose Send/Broadcast route through the transport.
func (p *Protocol) Start(env protocol.Env) {
	p.env = env
	p.inner.Start(wrapEnv{Env: env, r: p})
}

// OnAppSend implements protocol.Protocol: the engine transmits the
// original envelope itself right after this returns; the transport only
// has to track it for retransmission.
func (p *Protocol) OnAppSend(e *protocol.Envelope) {
	p.inner.OnAppSend(e)
	if e.ID == 0 {
		panic("reliable: application envelope without id")
	}
	p.track(e)
}

// OnDeliver implements protocol.Protocol: ack, dedupe, pass through.
func (p *Protocol) OnDeliver(e *protocol.Envelope) {
	if e.Kind == protocol.KindCtl && e.CtlTag == AckTag {
		// ACKs are the most numerous frames on the wire, so the zero-copy
		// decode path hands them out as *Ack views; accept both forms.
		switch a := e.Payload.(type) {
		case Ack:
			delete(p.pending, a.ID)
		case *Ack:
			delete(p.pending, a.ID)
		default:
			panic(fmt.Sprintf("reliable: ACK envelope with %T payload", e.Payload))
		}
		return
	}
	// Acknowledge every delivery, including duplicates — the earlier ACK
	// may itself have been lost.
	p.env.Send(&protocol.Envelope{
		Dst: e.Src, Kind: protocol.KindCtl, CtlTag: AckTag,
		Bytes: ackBytes, Payload: Ack{ID: e.ID},
	})
	if p.seen[e.ID] {
		p.env.Count("reliable.dup_dropped", 1)
		return
	}
	p.seen[e.ID] = true
	p.inner.OnDeliver(e)
}

// OnTimer implements protocol.Protocol: demultiplex transport timers from
// inner-protocol timers.
func (p *Protocol) OnTimer(kind, gen int) {
	if kind != timerKind {
		p.inner.OnTimer(kind, gen)
		return
	}
	p.retransmit(int64(gen))
}

// Finish implements protocol.Protocol.
func (p *Protocol) Finish() { p.inner.Finish() }

// Rollback implements protocol.Rewinder when the inner protocol does:
// transport state is volatile, so pending retransmissions are discarded
// (their timers died with the engine epoch; pre-failure envelopes are
// dropped at the epoch boundary) and the dedup set resets — post-rollback
// duplicates are caught by the engine's recovery dedup instead. The
// engine's log re-injection bypasses this transport and is delivered
// reliably by construction.
func (p *Protocol) Rollback(seq int) {
	rew, ok := p.inner.(protocol.Rewinder)
	if !ok {
		panic(fmt.Sprintf("reliable: inner protocol %q does not support rollback", p.inner.Name()))
	}
	p.pending = map[int64]*pendingMsg{}
	p.seen = map[int64]bool{}
	rew.Rollback(seq)
}

// SetResume forwards the resume-from-checkpoint request to the inner
// protocol when it supports one (see core.Protocol.SetResume).
func (p *Protocol) SetResume(seq int) {
	if r, ok := p.inner.(interface{ SetResume(int) }); ok {
		r.SetResume(seq)
	}
}

// track registers an envelope for retransmission until acknowledged.
func (p *Protocol) track(e *protocol.Envelope) {
	pm := &pendingMsg{env: e, rto: p.opt.RTO}
	p.pending[e.ID] = pm
	p.env.SetTimer(pm.rto, timerKind, int(e.ID))
}

func (p *Protocol) retransmit(id int64) {
	pm, ok := p.pending[id]
	if !ok {
		return // acknowledged
	}
	pm.retries++
	pm.rto *= 2
	if pm.rto > p.opt.MaxRTO {
		pm.rto = p.opt.MaxRTO
	}
	p.env.Count("reliable.retransmits", 1)
	p.env.Send(pm.env)
	p.env.SetTimer(pm.rto, timerKind, int(id))
}

// Retries reports the retransmission count of an in-flight envelope
// (tests).
func (p *Protocol) Retries(id int64) int {
	if pm, ok := p.pending[id]; ok {
		return pm.retries
	}
	return 0
}

// PendingCount reports how many envelopes await acknowledgement (tests).
func (p *Protocol) PendingCount() int { return len(p.pending) }

// Inner exposes the wrapped protocol (tests).
func (p *Protocol) Inner() protocol.Protocol { return p.inner }

// wrapEnv intercepts the inner protocol's sends.
type wrapEnv struct {
	protocol.Env
	r *Protocol
}

// Send implements protocol.Env for the inner protocol: transmit through
// the engine, then track for retransmission.
func (w wrapEnv) Send(e *protocol.Envelope) {
	w.Env.Send(e) // assigns ID, traces, transmits
	if e.ID == 0 {
		panic(fmt.Sprintf("reliable: engine did not assign an id to %v", e))
	}
	w.r.track(e)
}

// Broadcast implements protocol.Env: per-destination copies, each tracked
// individually.
func (w wrapEnv) Broadcast(e *protocol.Envelope) {
	for dst := 0; dst < w.Env.N(); dst++ {
		if dst == w.Env.ID() {
			continue
		}
		cp := *e
		cp.ID = 0
		cp.Dst = dst
		w.Send(&cp)
	}
}
