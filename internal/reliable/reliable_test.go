package reliable_test

import (
	"fmt"
	"testing"

	"ocsml/internal/baseline/nop"
	"ocsml/internal/checkpoint"
	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/engine"
	"ocsml/internal/protocol"
	"ocsml/internal/reliable"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

func lossyCfg(seed int64, drop float64) engine.Config {
	cfg := engine.DefaultConfig()
	cfg.N = 5
	cfg.Seed = seed
	cfg.DropRate = drop
	cfg.StateBytes = 1 << 20
	cfg.CopyCost = 0
	cfg.Drain = 10 * des.Second
	return cfg
}

func uniformWl(steps int64) engine.AppFactory {
	return workload.Factory(workload.Config{
		Pattern: workload.UniformRandom, Steps: steps,
		Think: 10 * des.Millisecond, MsgBytes: 512,
	})
}

func TestLossyNetworkLosesMessagesWithoutTransport(t *testing.T) {
	r := engine.New(lossyCfg(1, 0.2), nop.Factory(), uniformWl(300)).Run()
	sends := r.Trace.CountKind(trace.KSend)
	recvs := r.Trace.CountKind(trace.KRecv)
	if recvs >= sends {
		t.Fatalf("expected loss: sends=%d recvs=%d", sends, recvs)
	}
	if r.Net.Dropped.Value() == 0 {
		t.Fatal("network recorded no drops")
	}
}

func TestReliableDeliversEverythingUnderLoss(t *testing.T) {
	for _, drop := range []float64{0.05, 0.2, 0.4} {
		drop := drop
		t.Run(fmt.Sprintf("drop%.2f", drop), func(t *testing.T) {
			r := engine.New(lossyCfg(2, drop),
				reliable.Factory(nop.Factory(), reliable.DefaultOptions()),
				uniformWl(300)).Run()
			if !r.Completed {
				t.Fatal("did not complete")
			}
			sends := r.Trace.CountKind(trace.KSend)
			recvs := r.Trace.CountKind(trace.KRecv)
			if sends != recvs {
				t.Fatalf("reliable transport lost messages: sends=%d recvs=%d", sends, recvs)
			}
			if r.Counter("reliable.retransmits") == 0 {
				t.Fatal("no retransmissions under loss (suspicious)")
			}
		})
	}
}

func TestReliableNoLossNoRetransmitsByDeadline(t *testing.T) {
	// On a loss-free network the transport should stay almost silent:
	// only ACK overhead, no (or negligible) retransmissions.
	r := engine.New(lossyCfg(3, 0),
		reliable.Factory(nop.Factory(), reliable.DefaultOptions()),
		uniformWl(200)).Run()
	if got := r.Counter("reliable.retransmits"); got != 0 {
		t.Fatalf("retransmits = %d on a perfect network", got)
	}
	if got := r.Counter("reliable.dup_dropped"); got != 0 {
		t.Fatalf("dups = %d on a perfect network", got)
	}
	if r.Counter("ctl.ACK") == 0 {
		t.Fatal("no ACKs recorded")
	}
}

func TestOCSMLOverLossyChannels(t *testing.T) {
	// The headline integration: the paper's protocol, whose correctness
	// assumes reliable channels, runs unmodified over a 15%-loss network
	// through the transport middleware — and every global checkpoint is
	// still consistent with exact replay.
	opt := core.DefaultOptions()
	opt.Interval = des.Second
	opt.Timeout = 400 * des.Millisecond
	protos := make([]*core.Protocol, 5)
	pf := reliable.Factory(func(i, n int) protocol.Protocol {
		protos[i] = core.New(opt)
		return protos[i]
	}, reliable.DefaultOptions())

	r := engine.New(lossyCfg(4, 0.15), pf, uniformWl(400)).Run()
	if !r.Completed {
		t.Fatal("did not complete")
	}
	if r.Counter("reliable.retransmits") == 0 {
		t.Fatal("expected retransmissions at 15% loss")
	}
	seqs, err := r.CheckAllGlobals()
	if err != nil {
		t.Fatalf("consistency under loss: %v", err)
	}
	if len(seqs) < 2 {
		t.Fatalf("too few globals: %v", seqs)
	}
	for p := 0; p < 5; p++ {
		if protos[p].Status() != core.Normal {
			t.Fatalf("P%d stranded under loss", p)
		}
		for _, rec := range r.Ckpts.Proc(p).All() {
			if got := checkpoint.FoldLog(rec.Fold, rec.Log); got != rec.CFEFold {
				t.Fatalf("replay mismatch P%d seq %d under loss", p, rec.Seq)
			}
		}
	}
}

func TestLossTransportAndFailureCompose(t *testing.T) {
	// The full stack: 20% packet loss + ack/retransmit transport + a
	// mid-run crash with live rollback recovery. Everything must still
	// complete with consistent checkpoints.
	opt := core.DefaultOptions()
	opt.Interval = des.Second
	opt.Timeout = 400 * des.Millisecond
	pf := reliable.Factory(core.Factory(opt), reliable.DefaultOptions())
	cfg := lossyCfg(8, 0.2)
	cfg.N = 6
	c := engine.New(cfg, pf, uniformWl(600))
	c.InjectFailure(engine.FailurePlan{At: 2500 * des.Millisecond, Proc: 4})
	r := c.Run()
	if !r.Completed {
		t.Fatal("did not complete")
	}
	if r.Counter("recovery.recoveries") != 1 {
		t.Fatal("recovery did not run")
	}
	if r.Counter("reliable.retransmits") == 0 {
		t.Fatal("no retransmits at 20% loss")
	}
	if _, err := r.CheckAllGlobals(); err != nil {
		t.Fatalf("consistency under loss+failure: %v", err)
	}
	line := int(r.Counter("recovery.line_seq"))
	if r.Ckpts.MaxCompleteSeq() <= line {
		t.Fatal("no post-recovery checkpoints")
	}
}

func TestWrapperRollbackRequiresRewindableInner(t *testing.T) {
	w := reliable.Wrap(nop.Factory()(0, 2), reliable.Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("Rollback over non-rewindable inner should panic")
		}
	}()
	w.Rollback(1)
}

func TestWrapperBookkeeping(t *testing.T) {
	inner := nop.Factory()(0, 2)
	w := reliable.Wrap(inner, reliable.Options{})
	if w.Name() != "none+reliable" {
		t.Fatalf("Name = %q", w.Name())
	}
	if w.Inner() != inner {
		t.Fatal("Inner lost")
	}
	if w.PendingCount() != 0 || w.Retries(42) != 0 {
		t.Fatal("fresh wrapper should be empty")
	}
}

func TestInvalidDropRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DropRate=1 should panic")
		}
	}()
	cfg := lossyCfg(1, 0)
	cfg.DropRate = 1.0
	engine.New(cfg, nop.Factory(), uniformWl(10))
}
