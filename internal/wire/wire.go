// Package wire is the versioned binary codec for protocol.Envelope — the
// serialization layer of the real-network runtime (internal/transport).
//
// The simulator accounts wire traffic with the synthetic Envelope.Bytes
// field; this package produces the actual bytes, so piggyback overhead can
// finally be measured on a real wire. The encoding is compact (varints
// everywhere, one bit per process in the tentSet) and versioned: the first
// byte of every frame is the format version, letting a mixed-version
// cluster reject frames it cannot parse instead of misinterpreting them.
//
// Invariants:
//
//   - Decode(Encode(e)) reproduces e exactly (deep equality), for every
//     envelope the protocols in this repository can emit.
//   - Decode never panics: truncated, corrupt or oversized input returns
//     an error.
//   - EncodedSize(e) == len(Encode(e)), and PayloadSize(e) is the exact
//     number of encoded bytes attributable to the protocol payload (the
//     OCSML piggyback block, a control message body, or a transport ACK).
//
// Payloads are polymorphic (Envelope.Payload is `any`); the codec knows
// the concrete types the in-tree protocols use: core.Piggyback,
// core.CtlMsg, reliable.Ack and protocol.RbMsg (the recovery
// coordinator's handshake). Foreign payload types are an encode-time
// error — a protocol that wants to run on the TCP mesh must register its
// payload here.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
	"ocsml/internal/reliable"
)

// Frame format versions, the first byte of every encoded envelope.
//
// Version (v1) is the original stateless format: every frame is
// self-contained. Version2 keeps the identical header and payload
// encodings but additionally permits the ptPiggybackDelta payload block,
// which encodes a piggyback as the difference against the previous
// piggyback written on the same connection (see Encoder/PeerEncoder/
// Decoder). The package-level Encode/Append always emit v1, so stateless
// producers (tests, the recovery coordinator) stay universally decodable.
const (
	Version       = 1
	Version2      = 2
	VersionLatest = Version2
)

// MaxCtlTag bounds the control-tag string length on the wire.
const MaxCtlTag = 64

// Payload type discriminators.
const (
	ptNone           = 0 // Payload == nil
	ptPiggyback      = 1 // core.Piggyback, absolute
	ptCtlMsg         = 2 // core.CtlMsg
	ptAck            = 3 // reliable.Ack
	ptRb             = 4 // protocol.RbMsg (recovery coordinator)
	ptPiggybackDelta = 5 // core.Piggyback as a delta (v2 frames only)
)

// maxRbSeqs bounds the manifest length an RB_LINE report may carry.
const maxRbSeqs = 1 << 20

// Decode errors. All decode failures wrap one of these (or describe a
// structural violation); none panic.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrVersion   = errors.New("wire: unsupported frame version")
	ErrPayload   = errors.New("wire: unknown payload type")
	ErrTrailing  = errors.New("wire: trailing bytes after envelope")
	// ErrDeltaBase rejects a piggyback-delta frame arriving before any
	// full piggyback established the connection's base state (or through
	// the stateless Decode, which never has one).
	ErrDeltaBase = errors.New("wire: piggyback delta without a base frame")
)

// PayloadKind names a payload's kind: "nil" for the empty payload,
// otherwise the package-qualified type name ("core.Piggyback"). The
// names line up with the //ocsml:wirepayload registry that
// cmd/ocsmlvet's wireexhaustive analyzer checks against the corpus.
func PayloadKind(payload any) string {
	if payload == nil {
		return "nil"
	}
	return reflect.TypeOf(payload).String()
}

// errf builds a corrupt-input or misconfiguration error. Every call is
// an abort path — a failed encode or decode discards the whole frame —
// so the formatting allocations (and the boxing of the operands) are
// off the steady-state path by construction.
//
//ocsml:alloc error construction, abort paths only
func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// Encode serializes the envelope into a fresh buffer.
func Encode(e *protocol.Envelope) ([]byte, error) {
	return Append(nil, e)
}

// Append serializes the envelope onto buf, returning the extended buffer.
func Append(buf []byte, e *protocol.Envelope) ([]byte, error) {
	buf, err := appendHeader(buf, e, Version)
	if err != nil {
		return nil, err
	}
	return appendPayload(buf, e.Payload)
}

// appendHeader writes the version byte and the envelope header (all
// fields up to but excluding the payload block), identical in v1 and v2.
func appendHeader(buf []byte, e *protocol.Envelope, ver byte) ([]byte, error) {
	if e.Src < 0 || e.Dst < 0 {
		return nil, errf("wire: negative endpoint %d->%d", e.Src, e.Dst)
	}
	if len(e.CtlTag) > MaxCtlTag {
		return nil, errf("wire: control tag %q exceeds %d bytes", e.CtlTag, MaxCtlTag)
	}
	if e.Epoch < 0 {
		return nil, errf("wire: negative epoch %d", e.Epoch)
	}
	buf = append(buf, ver, byte(e.Kind))
	buf = binary.AppendVarint(buf, e.ID)
	buf = binary.AppendUvarint(buf, uint64(e.Src))
	buf = binary.AppendUvarint(buf, uint64(e.Dst))
	buf = binary.AppendVarint(buf, e.Bytes)
	buf = binary.AppendVarint(buf, int64(e.SentAt))
	buf = binary.AppendUvarint(buf, uint64(e.Epoch))
	buf = binary.AppendUvarint(buf, uint64(len(e.CtlTag)))
	buf = append(buf, e.CtlTag...)
	buf = binary.AppendVarint(buf, e.App.Seq)
	buf = binary.AppendVarint(buf, e.App.Bytes)
	buf = binary.AppendUvarint(buf, e.App.Tag)
	return buf, nil
}

func appendPayload(buf []byte, payload any) ([]byte, error) {
	switch p := payload.(type) {
	case nil:
		return append(buf, ptNone), nil
	case core.Piggyback:
		if p.Csn < 0 {
			return nil, errf("wire: negative piggyback csn %d", p.Csn)
		}
		buf = append(buf, ptPiggyback)
		buf = binary.AppendUvarint(buf, uint64(p.Csn))
		buf = append(buf, byte(p.Stat))
		return p.TentSet.AppendBinary(buf), nil
	case core.CtlMsg:
		if p.Csn < 0 {
			return nil, errf("wire: negative control csn %d", p.Csn)
		}
		buf = append(buf, ptCtlMsg)
		return binary.AppendUvarint(buf, uint64(p.Csn)), nil
	case reliable.Ack:
		buf = append(buf, ptAck)
		return binary.AppendVarint(buf, p.ID), nil
	case protocol.RbMsg:
		if p.Line < 0 || p.Epoch < 0 {
			return nil, errf("wire: negative recovery line %d or epoch %d", p.Line, p.Epoch)
		}
		if len(p.Seqs) > maxRbSeqs {
			return nil, errf("wire: recovery report with %d seqs exceeds %d", len(p.Seqs), maxRbSeqs)
		}
		buf = append(buf, ptRb)
		buf = binary.AppendVarint(buf, p.Round)
		buf = binary.AppendUvarint(buf, uint64(p.Line))
		buf = binary.AppendUvarint(buf, uint64(p.Epoch))
		buf = binary.AppendUvarint(buf, uint64(len(p.Seqs)))
		for _, q := range p.Seqs {
			if q < 0 {
				return nil, errf("wire: negative recovery seq %d", q)
			}
			buf = binary.AppendUvarint(buf, uint64(q))
		}
		return buf, nil
	default:
		return nil, errf("wire: unregistered payload type %T", payload)
	}
}

// EncodedSize returns the exact length Encode would produce.
func EncodedSize(e *protocol.Envelope) (int, error) {
	b, err := Encode(e)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// PayloadSize returns the exact number of encoded bytes the protocol
// payload occupies on the wire (discriminator byte included) — the real
// piggyback overhead of an application message, or the body size of a
// control message.
func PayloadSize(e *protocol.Envelope) (int, error) {
	b, err := appendPayload(nil, e.Payload)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// reader is a bounds-checked cursor over an encoded frame.
type reader struct {
	b   []byte
	off int
}

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, ErrTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, k := binary.Uvarint(r.b[r.off:])
	if k <= 0 {
		return 0, ErrTruncated
	}
	r.off += k
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, k := binary.Varint(r.b[r.off:])
	if k <= 0 {
		return 0, ErrTruncated
	}
	r.off += k
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, ErrTruncated
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

// Decode parses one envelope from data. The entire input must be consumed:
// trailing bytes are an error (frames are already delimited by the
// transport's length prefix). Corrupt input returns an error, never
// panics.
//
// Decode is stateless, so it accepts any self-contained frame — v1, or
// v2 with an absolute piggyback — but rejects v2 delta frames with
// ErrDeltaBase; those need the connection-scoped Decoder that tracked
// the base. Payloads come back in their canonical value forms.
func Decode(data []byte) (*protocol.Envelope, error) {
	var d Decoder
	return d.DecodeOwned(data)
}
