package wire

import (
	"reflect"
	"testing"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
	"ocsml/internal/reliable"
)

// sampleEnvelopes covers every envelope shape the in-tree protocols emit.
func sampleEnvelopes() []*protocol.Envelope {
	set4 := protocol.NewProcSet(4)
	set4.Add(0)
	set4.Add(2)
	full9 := protocol.NewProcSet(9)
	for i := 0; i < 9; i++ {
		full9.Add(i)
	}
	return []*protocol.Envelope{
		{ // application message with OCSML piggyback
			ID: 42, Src: 1, Dst: 3, Kind: protocol.KindApp,
			Bytes: 2048 + 6, SentAt: 123456789, Epoch: 2,
			App:     protocol.AppMsg{Seq: 7, Bytes: 2048, Tag: 0xdeadbeefcafe},
			Payload: core.Piggyback{Csn: 5, Stat: core.Tentative, TentSet: set4},
		},
		{ // piggyback with a non-multiple-of-8 universe
			ID: 1, Src: 8, Dst: 0, Kind: protocol.KindApp,
			App:     protocol.AppMsg{Seq: 1, Bytes: 1, Tag: 1},
			Payload: core.Piggyback{Csn: 0, Stat: core.Normal, TentSet: full9},
		},
		{ // control message
			ID: 99, Src: 2, Dst: 0, Kind: protocol.KindCtl, CtlTag: core.TagBGN,
			Bytes: 8, SentAt: 1, Payload: core.CtlMsg{Csn: 3},
		},
		{ // transport acknowledgement
			ID: 7, Src: 0, Dst: 1, Kind: protocol.KindCtl, CtlTag: reliable.AckTag,
			Bytes: 12, Payload: reliable.Ack{ID: -1 << 40},
		},
		{ // bare envelope, no payload
			ID: 3, Src: 0, Dst: 1, Kind: protocol.KindApp,
			App: protocol.AppMsg{Seq: 2, Bytes: 64, Tag: 9},
		},
		{ // recovery line report with a manifest
			ID: 11, Src: 3, Dst: 1, Kind: protocol.KindCtl, CtlTag: protocol.TagRbLine,
			Bytes: 16, SentAt: 77, Epoch: 1,
			Payload: protocol.RbMsg{Round: 1234567, Line: 0, Epoch: 2, Seqs: []int{1, 2, 3, 5}},
		},
		{ // recovery commit, empty manifest
			ID: 12, Src: 1, Dst: 0, Kind: protocol.KindCtl, CtlTag: protocol.TagRbCommit,
			Payload: protocol.RbMsg{Round: -9, Line: 4, Epoch: 3},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	for i, e := range sampleEnvelopes() {
		b, err := Encode(e)
		if err != nil {
			t.Fatalf("envelope %d: encode: %v", i, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("envelope %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("envelope %d round trip mismatch:\n got %#v\nwant %#v", i, got, e)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	for i, e := range sampleEnvelopes() {
		b, err := Encode(e)
		if err != nil {
			t.Fatal(err)
		}
		n, err := EncodedSize(e)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(b) {
			t.Fatalf("envelope %d: EncodedSize %d != len(Encode) %d", i, n, len(b))
		}
		p, err := PayloadSize(e)
		if err != nil {
			t.Fatal(err)
		}
		if p < 1 || p > n {
			t.Fatalf("envelope %d: payload size %d outside frame size %d", i, p, n)
		}
		// Stripping the payload must shrink the frame by exactly the
		// payload body (both keep a 1-byte discriminator).
		bare := *e
		bare.Payload = nil
		bn, err := EncodedSize(&bare)
		if err != nil {
			t.Fatal(err)
		}
		if n-bn != p-1 {
			t.Fatalf("envelope %d: payload accounting off: full=%d bare=%d payload=%d", i, n, bn, p)
		}
	}
}

func TestPiggybackRealBytes(t *testing.T) {
	// The simulator charges piggyFixedBytes + tentSet.ByteSize() synthetic
	// bytes per piggyback: a fixed-width csn (4) + stat (1) + ceil(N/8)
	// bitmap bytes — 7 for N=16. The real v1 block trades the fixed csn
	// for a varint but adds a discriminator and a universe uvarint the
	// simulator omits, so it lands in the same ballpark. On a live
	// connection the v2 delta rewrite usually undercuts both with an
	// O(changed bits) block; see delta_test.go.
	set := protocol.NewProcSet(16)
	set.Add(0)
	set.Add(15)
	e := &protocol.Envelope{
		ID: 1, Src: 0, Dst: 1, Kind: protocol.KindApp,
		App:     protocol.AppMsg{Seq: 1, Bytes: 1024, Tag: 5},
		Payload: core.Piggyback{Csn: 12, Stat: core.Tentative, TentSet: set},
	}
	p, err := PayloadSize(e)
	if err != nil {
		t.Fatal(err)
	}
	// 1 discriminator + 1 csn varint + 1 stat + 1 universe uvarint +
	// ceil(16/8) = 2 bitmap bytes: 6 bytes total.
	if p != 6 {
		t.Fatalf("piggyback payload size = %d, want 6", p)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := Encode(sampleEnvelopes()[0])
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad version":  {99, 0, 0},
		"bad kind":     {Version, 7},
		"truncated":    valid[:len(valid)/2],
		"trailing":     append(append([]byte{}, valid...), 0),
		"bad payload":  {Version, 0, 2, 1, 3, 2, 2, 2, 0, 2, 2, 2, 250},
		"only version": {Version},
	}
	for name, in := range cases {
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestOversizedCtlTagRejected(t *testing.T) {
	e := sampleEnvelopes()[2]
	e.CtlTag = string(make([]byte, MaxCtlTag+1))
	if _, err := Encode(e); err == nil {
		t.Fatal("encode accepted oversized control tag")
	}
}

func TestForeignPayloadRejected(t *testing.T) {
	e := &protocol.Envelope{Src: 0, Dst: 1, Payload: struct{ X int }{1}}
	if _, err := Encode(e); err == nil {
		t.Fatal("encode accepted unregistered payload type")
	}
}
