package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// corpusDir is the checked-in seed corpus for FuzzWireRoundTrip; go test
// runs every entry through the fuzz target even without -fuzz.
const corpusDir = "testdata/fuzz/FuzzWireRoundTrip"

// corpusDirV2 seeds FuzzDecodeV2, whose entries are (base, frame) pairs
// exercising the stateful v2 delta decoder.
const corpusDirV2 = "testdata/fuzz/FuzzDecodeV2"

// corpusEntries returns the minimized corpus: the canonical encodings of
// every sample envelope plus the interesting malformed shapes the fuzzer
// found worth keeping — truncations, a bad version, trailing garbage, an
// unknown payload discriminator, and an oversized control-tag length.
func corpusEntries(t testing.TB) [][]byte {
	var entries [][]byte
	for _, e := range sampleEnvelopes() {
		b, err := Encode(e)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, b)
		if len(b) > 4 {
			entries = append(entries, b[:len(b)-3])    // truncated payload block
			entries = append(entries, append(b, 0xff)) // trailing byte
			entries = append(entries, b[:2])           // header only
		}
	}
	full, delta := v2ChainFrames(t)
	entries = append(entries,
		[]byte{},                     // empty frame
		[]byte{Version},              // version byte only
		[]byte{Version2, 0},          // v2 header only
		[]byte{VersionLatest + 1, 0}, // unsupported version
		[]byte{Version, 7},           // invalid kind
		[]byte{Version, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9}, // unknown payload discriminator
		// A control-tag length varint far beyond MaxCtlTag.
		[]byte{Version, 1, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0x7f},
		full,                 // v2 frame, absolute piggyback block
		delta,                // v2 delta block (stateless decode: ErrDeltaBase)
		delta[:len(delta)-1], // truncated delta block
	)
	return entries
}

// corpusEntriesV2 returns the (base, frame) pairs seeding FuzzDecodeV2:
// a valid delta chain plus the interesting broken chains — no base, a
// non-piggyback base, a cross-epoch base, and corrupted delta bytes.
func corpusEntriesV2(t testing.TB) [][2][]byte {
	full, delta := v2ChainFrames(t)
	ack, err := Encode(sampleEnvelopes()[3])
	if err != nil {
		t.Fatal(err)
	}
	var enc Encoder
	f := AcquireFrame()
	defer f.Release()
	e5 := sampleEnvelopes()[0]
	e5.Epoch = 5
	if err := enc.EncodeFrame(f, e5); err != nil {
		t.Fatal(err)
	}
	fullE5 := append([]byte(nil), f.Bytes()...)

	corrupt := append([]byte(nil), delta...)
	corrupt[len(corrupt)-1] ^= 0xff

	return [][2][]byte{
		{full, delta},                // happy chain
		{full, full},                 // two absolutes
		{nil, full},                  // absolute needs no base
		{nil, delta},                 // delta without base
		{ack, delta},                 // base frame carries no piggyback
		{fullE5, delta},              // base from another epoch
		{full, corrupt},              // corrupted flip bytes
		{full, delta[:len(delta)-2]}, // truncated delta
		{delta, full},                // delta first, then recover
	}
}

// TestCorpusIsCurrent fails when the checked-in corpus drifts from the
// generator; regenerate with WIRE_REGEN_CORPUS=1 go test ./internal/wire.
func TestCorpusIsCurrent(t *testing.T) {
	if os.Getenv("WIRE_REGEN_CORPUS") != "" {
		writeCorpus(t)
	}
	for dir, want := range corpusWant(t) {
		files, err := filepath.Glob(filepath.Join(dir, "seed-*"))
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, f := range files {
			raw, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			got[string(raw)] = true
		}
		for content := range want {
			if !got[content] {
				t.Fatalf("%s: corpus missing an entry; regenerate with WIRE_REGEN_CORPUS=1 go test ./internal/wire", dir)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: corpus has %d entries, generator produces %d; regenerate with WIRE_REGEN_CORPUS=1", dir, len(got), len(want))
		}
	}
}

// corpusWant maps each corpus directory to its generated file contents.
func corpusWant(t testing.TB) map[string]map[string]bool {
	want := map[string]map[string]bool{
		corpusDir:   {},
		corpusDirV2: {},
	}
	for _, b := range corpusEntries(t) {
		want[corpusDir][corpusFile(b)] = true
	}
	for _, p := range corpusEntriesV2(t) {
		want[corpusDirV2][corpusFile2(p[0], p[1])] = true
	}
	return want
}

// corpusFile renders one entry in the go-fuzz corpus file format.
func corpusFile(b []byte) string {
	return "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
}

// corpusFile2 renders a two-parameter fuzz entry (base, frame).
func corpusFile2(a, b []byte) string {
	return "go test fuzz v1\n[]byte(" + strconv.Quote(string(a)) + ")\n[]byte(" + strconv.Quote(string(b)) + ")\n"
}

func writeCorpus(t *testing.T) {
	t.Helper()
	for dir, want := range corpusWant(t) {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		contents := make([]string, 0, len(want))
		for content := range want {
			contents = append(contents, content)
		}
		sort.Strings(contents)
		for i, content := range contents {
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d corpus entries to %s", len(contents), dir)
	}
}

// TestCorpusDecodesWithoutPanic runs every checked-in entry through the
// decoder directly (belt and braces on top of the fuzz seed run).
func TestCorpusDecodesWithoutPanic(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "seed-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus entries checked in")
	}
	for _, f := range files {
		args := parseCorpusFile(t, f)
		if len(args) != 1 {
			t.Fatalf("%s: want 1 fuzz argument, got %d", f, len(args))
		}
		if e, err := Decode(args[0]); err == nil {
			// Whatever decodes must be canonical.
			if _, err := Encode(e); err != nil {
				t.Fatalf("%s: decoded envelope does not re-encode: %v", f, err)
			}
		}
	}
}

// TestCorpusV2DecodesWithoutPanic replays every checked-in (base, frame)
// pair through a stateful decoder chain.
func TestCorpusV2DecodesWithoutPanic(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDirV2, "seed-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no v2 corpus entries checked in")
	}
	for _, f := range files {
		args := parseCorpusFile(t, f)
		if len(args) != 2 {
			t.Fatalf("%s: want 2 fuzz arguments, got %d", f, len(args))
		}
		dec := NewDecoder(0)
		dec.Decode(args[0])
		if e, err := dec.DecodeOwned(args[1]); err == nil {
			if _, err := Encode(e); err != nil {
				t.Fatalf("%s: decoded envelope does not re-encode: %v", f, err)
			}
		}
	}
}

// parseCorpusFile decodes a go-fuzz corpus file into its []byte args.
func parseCorpusFile(t *testing.T, path string) [][]byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) < 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("%s: not a go fuzz corpus file", path)
	}
	var args [][]byte
	for _, line := range lines[1:] {
		payload := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
		s, err := strconv.Unquote(payload)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		args = append(args, []byte(s))
	}
	return args
}
