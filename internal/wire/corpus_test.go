package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// corpusDir is the checked-in seed corpus for FuzzWireRoundTrip; go test
// runs every entry through the fuzz target even without -fuzz.
const corpusDir = "testdata/fuzz/FuzzWireRoundTrip"

// corpusEntries returns the minimized corpus: the canonical encodings of
// every sample envelope plus the interesting malformed shapes the fuzzer
// found worth keeping — truncations, a bad version, trailing garbage, an
// unknown payload discriminator, and an oversized control-tag length.
func corpusEntries(t testing.TB) [][]byte {
	var entries [][]byte
	for _, e := range sampleEnvelopes() {
		b, err := Encode(e)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, b)
		if len(b) > 4 {
			entries = append(entries, b[:len(b)-3])    // truncated payload block
			entries = append(entries, append(b, 0xff)) // trailing byte
			entries = append(entries, b[:2])           // header only
		}
	}
	entries = append(entries,
		[]byte{},               // empty frame
		[]byte{Version},        // version byte only
		[]byte{Version + 1, 0}, // unsupported version
		[]byte{Version, 7},     // invalid kind
		[]byte{Version, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9}, // unknown payload discriminator
		// A control-tag length varint far beyond MaxCtlTag.
		[]byte{Version, 1, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0x7f},
	)
	return entries
}

// TestCorpusIsCurrent fails when the checked-in corpus drifts from the
// generator; regenerate with WIRE_REGEN_CORPUS=1 go test ./internal/wire.
func TestCorpusIsCurrent(t *testing.T) {
	if os.Getenv("WIRE_REGEN_CORPUS") != "" {
		writeCorpus(t)
	}
	want := map[string]bool{}
	for _, b := range corpusEntries(t) {
		want[corpusFile(b)] = true
	}
	files, err := filepath.Glob(filepath.Join(corpusDir, "seed-*"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		got[string(raw)] = true
	}
	for content := range want {
		if !got[content] {
			t.Fatalf("corpus missing an entry; regenerate with WIRE_REGEN_CORPUS=1 go test ./internal/wire")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("corpus has %d entries, generator produces %d; regenerate with WIRE_REGEN_CORPUS=1", len(got), len(want))
	}
}

// corpusFile renders one entry in the go-fuzz corpus file format.
func corpusFile(b []byte) string {
	return "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
}

func writeCorpus(t *testing.T) {
	t.Helper()
	if err := os.RemoveAll(corpusDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	i := 0
	for _, b := range corpusEntries(t) {
		content := corpusFile(b)
		if seen[content] {
			continue
		}
		seen[content] = true
		name := filepath.Join(corpusDir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		i++
	}
	t.Logf("wrote %d corpus entries to %s", i, corpusDir)
}

// TestCorpusDecodesWithoutPanic runs every checked-in entry through the
// decoder directly (belt and braces on top of the fuzz seed run).
func TestCorpusDecodesWithoutPanic(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "seed-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus entries checked in")
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 3)
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go fuzz corpus file", f)
		}
		payload := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		s, err := strconv.Unquote(payload)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if e, err := Decode([]byte(s)); err == nil {
			// Whatever decodes must be canonical.
			if _, err := Encode(e); err != nil {
				t.Fatalf("%s: decoded envelope does not re-encode: %v", f, err)
			}
		}
	}
}
