package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
)

// pbEnvelope builds a deterministic app envelope carrying pb.
func pbEnvelope(id int, epoch int, pb core.Piggyback) *protocol.Envelope {
	return &protocol.Envelope{
		ID: int64(id), Src: 0, Dst: 1, Kind: protocol.KindApp,
		Bytes: 1024 + 6, SentAt: 99, Epoch: epoch,
		App:     protocol.AppMsg{Seq: int64(id), Bytes: 1024, Tag: 7},
		Payload: pb,
	}
}

// TestDeltaChainMatchesAbsolute is the delta-chain property test: an
// arbitrary sequence of piggybacks pushed through the v2 delta path
// (Encoder -> PeerEncoder -> stateful Decoder), with reconnects, epoch
// bumps, and universe changes interleaved, must decode to exactly the
// absolute envelopes that the stateless v1 codec round-trips — and
// PeerEncoder.EncodedSize must predict every appended frame's length,
// full-block fallbacks included.
func TestDeltaChainMatchesAbsolute(t *testing.T) {
	rng := rand.New(rand.NewSource(9157))
	var enc Encoder
	var pe PeerEncoder
	dec := NewDecoder(0)
	f := AcquireFrame()
	defer f.Release()

	n := 24
	pb := core.Piggyback{TentSet: protocol.NewProcSet(n)}
	epoch := 0
	deltas, fulls := 0, 0
	var stream []byte
	for i := 0; i < 500; i++ {
		switch ev := rng.Intn(20); {
		case ev == 0: // reconnect: both sides restart
			pe.Reset()
			dec = NewDecoder(0)
		case ev == 1: // cluster-wide rollback bumps the epoch
			epoch++
		case ev == 2: // membership change: new universe, no delta exists
			n = 8 + rng.Intn(60)
			fresh := protocol.NewProcSet(n)
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					fresh.Add(j)
				}
			}
			pb.TentSet = fresh
		}
		// Evolve the protocol state the way OCSML does: slow csn growth,
		// a status bit, a handful of tentSet flips.
		pb.Csn += rng.Intn(2)
		pb.Stat = core.Status(rng.Intn(2))
		for k := rng.Intn(3); k > 0; k-- {
			pb.TentSet.Toggle(rng.Intn(n))
		}

		e := pbEnvelope(i, epoch, core.Piggyback{
			Csn: pb.Csn, Stat: pb.Stat, TentSet: pb.TentSet.Clone(),
		})
		if err := enc.EncodeFrame(f, e); err != nil {
			t.Fatalf("step %d: encode: %v", i, err)
		}
		want := pe.EncodedSize(f)
		stream, _ = pe.AppendFrame(stream[:0], f)
		if len(stream) != want {
			t.Fatalf("step %d: EncodedSize predicted %d, AppendFrame wrote %d", i, want, len(stream))
		}
		if len(stream) < f.Len() {
			deltas++
		} else {
			fulls++
		}

		got, err := dec.DecodeOwned(stream)
		if err != nil {
			t.Fatalf("step %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("step %d: chain decode mismatch:\n got %#v\nwant %#v", i, got, e)
		}
		// The same envelope through the stateless v1 codec must agree.
		v1, err := Encode(e)
		if err != nil {
			t.Fatalf("step %d: v1 encode: %v", i, err)
		}
		abs, err := Decode(v1)
		if err != nil {
			t.Fatalf("step %d: v1 decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, abs) {
			t.Fatalf("step %d: delta chain and v1 disagree:\n got %#v\nwant %#v", i, got, abs)
		}
	}
	if deltas == 0 {
		t.Fatal("no frame was delta-encoded; the chain never exercised the v2 path")
	}
	if fulls == 0 {
		t.Fatal("no full-block fallback seen; reconnect/epoch events did not fire")
	}
	t.Logf("chain: %d delta frames, %d full frames", deltas, fulls)
}

// TestDeltaIsChangedBitsNotUniverse pins the acceptance bound: at N=64,
// a steady-state piggyback delta costs O(changed bits), not O(N) — the
// absolute block carries an 8-byte bitmap, the delta a couple of bytes.
func TestDeltaIsChangedBitsNotUniverse(t *testing.T) {
	var enc Encoder
	var pe PeerEncoder
	f := AcquireFrame()
	defer f.Release()

	set := protocol.NewProcSet(64)
	set.Add(3)
	first := pbEnvelope(1, 0, core.Piggyback{Csn: 9, Stat: core.Tentative, TentSet: set})
	if err := enc.EncodeFrame(f, first); err != nil {
		t.Fatal(err)
	}
	if _, pbLen := pe.AppendFrame(nil, f); pbLen < 12 {
		// 1 discriminator + 1 csn + 1 stat + 1 universe + 8 bitmap bytes.
		t.Fatalf("absolute block = %d bytes, want >= 12 at N=64", pbLen)
	}

	next := set.Clone()
	next.Add(17) // one changed bit
	second := pbEnvelope(2, 0, core.Piggyback{Csn: 9, Stat: core.Tentative, TentSet: next})
	if err := enc.EncodeFrame(f, second); err != nil {
		t.Fatal(err)
	}
	if _, pbLen := pe.AppendFrame(nil, f); pbLen > 5 {
		// 1 discriminator + 1 dcsn + 1 stat + 1 count + 1 gap index.
		t.Fatalf("one-bit delta block = %d bytes, want <= 5", pbLen)
	}
}

// TestV1EncoderMatchesPackageEncode: an Encoder negotiated down to v1
// must emit byte-identical frames to the stateless package Encode, and
// the PeerEncoder must pass them through verbatim (never delta-rewritten)
// while still accounting their piggyback bytes.
func TestV1EncoderMatchesPackageEncode(t *testing.T) {
	enc := Encoder{Version: Version}
	var pe PeerEncoder
	f := AcquireFrame()
	defer f.Release()
	for i, e := range sampleEnvelopes() {
		want, err := Encode(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.EncodeFrame(f, e); err != nil {
			t.Fatalf("envelope %d: EncodeFrame: %v", i, err)
		}
		if !bytes.Equal(f.Bytes(), want) {
			t.Fatalf("envelope %d: v1 EncodeFrame differs from Encode:\n got %x\nwant %x", i, f.Bytes(), want)
		}
		out, pbLen := pe.AppendFrame(nil, f)
		if !bytes.Equal(out, want) {
			t.Fatalf("envelope %d: v1 AppendFrame rewrote the frame", i)
		}
		if _, ok := e.Payload.(core.Piggyback); ok {
			p, err := PayloadSize(e)
			if err != nil {
				t.Fatal(err)
			}
			if pbLen != p {
				t.Fatalf("envelope %d: piggyback accounting %d, want payload size %d", i, pbLen, p)
			}
		} else if pbLen != 0 {
			t.Fatalf("envelope %d: non-piggyback frame accounted %d piggyback bytes", i, pbLen)
		}
	}
}

// TestDecoderV1OnlyRejectsV2 is the mixed-version guarantee: a decoder
// capped at v1 fails every v2 frame — full or delta — with ErrVersion
// and never panics or misparses.
func TestDecoderV1OnlyRejectsV2(t *testing.T) {
	full, delta := v2ChainFrames(t)
	old := NewDecoder(Version)
	for name, frame := range map[string][]byte{"v2 full": full, "v2 delta": delta} {
		if _, err := old.Decode(frame); !errors.Is(err, ErrVersion) {
			t.Fatalf("%s: v1-only decode err = %v, want ErrVersion", name, err)
		}
		if _, err := old.DecodeOwned(frame); !errors.Is(err, ErrVersion) {
			t.Fatalf("%s: v1-only DecodeOwned err = %v, want ErrVersion", name, err)
		}
	}
	// Sanity: the same decoder still accepts v1 traffic.
	v1, err := Encode(sampleEnvelopes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.Decode(v1); err != nil {
		t.Fatalf("v1-only decoder rejected a v1 frame: %v", err)
	}
}

// TestDeltaNeedsBase: a delta frame is undecodable without the preceding
// full block — by a fresh stateful decoder, after an epoch change, and by
// the stateless package Decode.
func TestDeltaNeedsBase(t *testing.T) {
	full, delta := v2ChainFrames(t)

	if _, err := NewDecoder(0).Decode(delta); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("fresh decoder: err = %v, want ErrDeltaBase", err)
	}
	if _, err := Decode(delta); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("stateless Decode: err = %v, want ErrDeltaBase", err)
	}

	// A base from another epoch is not a base.
	var enc Encoder
	var pe PeerEncoder
	f := AcquireFrame()
	defer f.Release()
	set := protocol.NewProcSet(8)
	if err := enc.EncodeFrame(f, pbEnvelope(1, 5, core.Piggyback{Csn: 1, TentSet: set})); err != nil {
		t.Fatal(err)
	}
	baseE5, _ := pe.AppendFrame(nil, f)
	dec := NewDecoder(0)
	if _, err := dec.Decode(baseE5); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(delta); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("cross-epoch delta: err = %v, want ErrDeltaBase", err)
	}
	if _, err := NewDecoder(0).Decode(full); err != nil {
		t.Fatalf("full v2 frame needs no base, got %v", err)
	}
}

// TestEpochBumpForcesFullBlock: the sender side of the epoch rule — a
// piggyback after an epoch change travels as a full block even though the
// delta base is present and the universe unchanged.
func TestEpochBumpForcesFullBlock(t *testing.T) {
	var enc Encoder
	var pe PeerEncoder
	f := AcquireFrame()
	defer f.Release()
	set := protocol.NewProcSet(32)
	set.Add(1)

	if err := enc.EncodeFrame(f, pbEnvelope(1, 0, core.Piggyback{Csn: 1, TentSet: set})); err != nil {
		t.Fatal(err)
	}
	pe.AppendFrame(nil, f)

	if err := enc.EncodeFrame(f, pbEnvelope(2, 1, core.Piggyback{Csn: 1, TentSet: set})); err != nil {
		t.Fatal(err)
	}
	out, _ := pe.AppendFrame(nil, f)
	if len(out) != f.Len() {
		t.Fatalf("post-epoch-bump frame was delta-encoded (%d < %d bytes)", len(out), f.Len())
	}

	// Same epoch again: deltas resume.
	if err := enc.EncodeFrame(f, pbEnvelope(3, 1, core.Piggyback{Csn: 2, TentSet: set})); err != nil {
		t.Fatal(err)
	}
	out, _ = pe.AppendFrame(nil, f)
	if len(out) >= f.Len() {
		t.Fatal("delta encoding did not resume after the base caught up with the epoch")
	}
}

// v2ChainFrames returns a v2 full piggyback frame and a delta frame whose
// base is that full frame, as one PeerEncoder emits them.
func v2ChainFrames(t testing.TB) (full, delta []byte) {
	t.Helper()
	var enc Encoder
	var pe PeerEncoder
	f := AcquireFrame()
	defer f.Release()

	set := protocol.NewProcSet(16)
	set.Add(2)
	if err := enc.EncodeFrame(f, pbEnvelope(1, 0, core.Piggyback{Csn: 3, Stat: core.Tentative, TentSet: set})); err != nil {
		t.Fatal(err)
	}
	full, _ = pe.AppendFrame(nil, f)

	next := set.Clone()
	next.Add(9)
	if err := enc.EncodeFrame(f, pbEnvelope(2, 0, core.Piggyback{Csn: 4, Stat: core.Tentative, TentSet: next})); err != nil {
		t.Fatal(err)
	}
	delta, _ = pe.AppendFrame(nil, f)
	if len(delta) >= len(full) {
		t.Fatalf("second frame (%d bytes) was not delta-encoded against the first (%d bytes)", len(delta), len(full))
	}
	return full, delta
}
