package wire

import (
	"encoding/binary"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
)

// Encoder serializes envelopes into reusable Frames. Unlike the
// package-level Encode, which always produces a fresh v1 buffer, an
// Encoder reuses the frame's storage (allocation-free in steady state)
// and can emit v2 frames, whose piggybacks the per-connection
// PeerEncoder may rewrite into deltas at write time.
//
// An Encoder is not safe for concurrent use; the transport runs one per
// node, on the node's loop goroutine.
type Encoder struct {
	// Version selects the frame format: Version for pure v1 output
	// (a cluster negotiated down for mixed-version operation), Version2
	// for delta-capable frames. Zero means VersionLatest.
	Version int
}

func (enc *Encoder) version() (byte, error) {
	switch enc.Version {
	case 0:
		return VersionLatest, nil
	case Version:
		return Version, nil
	case Version2:
		return Version2, nil
	}
	return 0, errf("%w: encoder configured for %d", ErrVersion, enc.Version)
}

// EncodeFrame serializes e into f, reusing f's storage. The frame holds
// a self-contained encoding (absolute piggyback block) plus the sidecar
// PeerEncoder.AppendFrame needs to delta-rewrite it per connection. On
// error the frame is left empty.
//
//ocsml:hotpath
func (enc *Encoder) EncodeFrame(f *Frame, e *protocol.Envelope) error {
	ver, err := enc.version()
	if err != nil {
		return err
	}
	f.ver = ver
	f.hasPB = false
	buf, err := appendHeader(f.data[:0], e, ver)
	if err != nil {
		f.data = f.data[:0]
		return err
	}
	// The sidecar is captured for every version: tryDelta refuses v1
	// frames, so a v1 frame always travels as its absolute block, but the
	// write-time piggyback-byte accounting still sees it.
	if pb, ok := e.Payload.(core.Piggyback); ok {
		f.hasPB = true
		f.pbOff = len(buf)
		f.epoch = e.Epoch
		f.pb.Csn = pb.Csn
		f.pb.Stat = pb.Stat
		f.pb.TentSet.CopyFrom(pb.TentSet)
	}
	buf, err = appendPayload(buf, e.Payload)
	if err != nil {
		f.data = f.data[:0]
		f.hasPB = false
		return err
	}
	f.data = buf
	return nil
}

// PeerEncoder is the delta state of one peer connection: the last
// piggyback written on it. It rewrites v2 piggyback frames into delta
// blocks when that is strictly smaller, and must be Reset on every
// (re)connect so the first piggyback of a connection always travels as
// a full block — the receiving Decoder starts with no base.
//
// The state advances only on AppendFrame, i.e. only for bytes actually
// handed to the connection's writer, so dropped or re-sent frames
// upstream of the writer cannot desynchronize the two sides.
type PeerEncoder struct {
	has     bool
	epoch   int
	pb      core.Piggyback
	delta   core.PiggybackDelta
	scratch []byte
}

// Reset forgets the delta base. Call when (re)establishing the
// connection this encoder writes to.
func (pe *PeerEncoder) Reset() { pe.has = false }

// AppendFrame appends f's wire encoding onto dst — rewriting the
// piggyback block into a delta against the previous piggyback written
// through this PeerEncoder when that is smaller — and returns the
// extended buffer plus the number of payload-block bytes written (the
// piggyback overhead accounting for this frame; 0 for frames without
// a piggyback).
//
//ocsml:hotpath
func (pe *PeerEncoder) AppendFrame(dst []byte, f *Frame) ([]byte, int) {
	if !f.hasPB {
		return append(dst, f.data...), 0
	}
	full := len(f.data) - f.pbOff
	if delta, ok := pe.tryDelta(f); ok && len(delta) < full {
		dst = append(dst, f.data[:f.pbOff]...)
		dst = append(dst, delta...)
		pe.commit(f)
		return dst, len(delta)
	}
	dst = append(dst, f.data...)
	pe.commit(f)
	return dst, full
}

// EncodedSize returns the exact number of bytes the next
// AppendFrame(dst, f) would append, without advancing the delta state.
//
//ocsml:hotpath
func (pe *PeerEncoder) EncodedSize(f *Frame) int {
	if !f.hasPB {
		return len(f.data)
	}
	full := len(f.data) - f.pbOff
	if delta, ok := pe.tryDelta(f); ok && len(delta) < full {
		return f.pbOff + len(delta)
	}
	return len(f.data)
}

// tryDelta encodes f's piggyback as a delta block into pe.scratch. It
// fails (full block required) when there is no base, the epoch changed,
// the frame is not delta-capable, or the universes differ.
func (pe *PeerEncoder) tryDelta(f *Frame) ([]byte, bool) {
	if !pe.has || pe.epoch != f.epoch || f.ver < Version2 {
		return nil, false
	}
	if !pe.delta.From(pe.pb, f.pb) {
		return nil, false
	}
	buf := append(pe.scratch[:0], ptPiggybackDelta)
	buf = binary.AppendVarint(buf, int64(pe.delta.DCsn))
	buf = append(buf, byte(pe.delta.Stat))
	buf = binary.AppendUvarint(buf, uint64(len(pe.delta.Flips)))
	// Gap encoding: first index absolute, then (gap-1) to the next —
	// ascending runs of flipped bits cost one byte each.
	prev := -1
	for _, fl := range pe.delta.Flips {
		if prev < 0 {
			buf = binary.AppendUvarint(buf, uint64(fl))
		} else {
			buf = binary.AppendUvarint(buf, uint64(fl-prev-1))
		}
		prev = fl
	}
	pe.scratch = buf
	return buf, true
}

func (pe *PeerEncoder) commit(f *Frame) {
	pe.has = true
	pe.epoch = f.epoch
	pe.pb.Csn = f.pb.Csn
	pe.pb.Stat = f.pb.Stat
	pe.pb.TentSet.CopyFrom(f.pb.TentSet)
}
