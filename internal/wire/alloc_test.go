package wire

import (
	"testing"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
	"ocsml/internal/reliable"
)

// allocsPerRun asserts a steady-state allocation bound. The exact-zero
// assertions are skipped under the race detector, whose instrumentation
// allocates.
func allocsPerRun(t *testing.T, what string, max float64, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skipf("allocation accounting is not meaningful under -race")
	}
	fn() // warm pools and grow scratch buffers before measuring
	if n := testing.AllocsPerRun(200, fn); n > max {
		t.Errorf("%s: %.1f allocs/op, want <= %.0f", what, n, max)
	}
}

// TestEncodeFrameZeroAlloc: steady-state encode of an app-message frame
// (the hot path: one per application send) performs zero allocations.
func TestEncodeFrameZeroAlloc(t *testing.T) {
	set := protocol.NewProcSet(64)
	set.Add(5)
	set.Add(41)
	e := pbEnvelope(1, 0, core.Piggyback{Csn: 12, Stat: core.Tentative, TentSet: set})
	var enc Encoder
	f := AcquireFrame()
	defer f.Release()
	allocsPerRun(t, "Encoder.EncodeFrame(app+piggyback)", 0, func() {
		if err := enc.EncodeFrame(f, e); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAppendFrameZeroAlloc: the per-connection delta rewrite (one per
// frame actually written) performs zero allocations in steady state,
// both on the delta path and on the full-block path.
func TestAppendFrameZeroAlloc(t *testing.T) {
	set := protocol.NewProcSet(64)
	set.Add(5)
	e := pbEnvelope(1, 0, core.Piggyback{Csn: 12, Stat: core.Tentative, TentSet: set})
	var enc Encoder
	var pe PeerEncoder
	f := AcquireFrame()
	defer f.Release()
	if err := enc.EncodeFrame(f, e); err != nil {
		t.Fatal(err)
	}
	var wbuf []byte
	allocsPerRun(t, "PeerEncoder.AppendFrame(delta)", 0, func() {
		wbuf, _ = pe.AppendFrame(wbuf[:0], f)
	})
	allocsPerRun(t, "PeerEncoder.AppendFrame(full)", 0, func() {
		pe.Reset()
		wbuf, _ = pe.AppendFrame(wbuf[:0], f)
	})
}

// TestDecodeZeroAlloc: steady-state decode of app-message frames — full
// piggyback blocks, delta blocks, and ACK control frames — performs zero
// allocations with the view-returning Decode.
func TestDecodeZeroAlloc(t *testing.T) {
	full, delta := v2ChainFrames(t)
	dec := NewDecoder(0)
	if _, err := dec.Decode(full); err != nil {
		t.Fatal(err)
	}
	allocsPerRun(t, "Decoder.Decode(full piggyback)", 0, func() {
		if _, err := dec.Decode(full); err != nil {
			t.Fatal(err)
		}
	})
	allocsPerRun(t, "Decoder.Decode(piggyback delta)", 0, func() {
		if _, err := dec.Decode(delta); err != nil {
			t.Fatal(err)
		}
	})
	ack, err := Encode(&protocol.Envelope{
		ID: 7, Src: 0, Dst: 1, Kind: protocol.KindCtl, CtlTag: reliable.AckTag,
		Payload: reliable.Ack{ID: 42},
	})
	if err != nil {
		t.Fatal(err)
	}
	allocsPerRun(t, "Decoder.Decode(ack)", 0, func() {
		if _, err := dec.Decode(ack); err != nil {
			t.Fatal(err)
		}
	})
}
