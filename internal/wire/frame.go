package wire

import (
	"sync"

	"ocsml/internal/core"
)

// Frame is one encoded envelope in flight between an Encoder and the
// peer link that writes it. The frame's bytes always hold a
// self-contained encoding (for v2 piggyback frames, the absolute
// payload block); the per-connection delta rewrite happens only at
// write time, in PeerEncoder.AppendFrame, because only the writer knows
// what the previous frame on that connection carried.
//
// A Frame also carries the encode-time sidecar AppendFrame needs to
// compute the delta — the absolute piggyback and where its block starts
// — so the write path never re-decodes its own bytes.
type Frame struct {
	data []byte

	ver    byte
	hasPB  bool
	pbOff  int // offset of the piggyback payload block in data
	epoch  int
	pb     core.Piggyback // absolute piggyback (storage reused across encodes)
	pooled bool
}

// Bytes returns the frame's self-contained encoding. The slice aliases
// the frame's internal buffer: it is invalidated by the next
// EncodeFrame into this frame and by Release.
func (f *Frame) Bytes() []byte { return f.data }

// Len returns the self-contained encoding's length in bytes. A delta
// rewrite by PeerEncoder.AppendFrame can only shrink it.
func (f *Frame) Len() int { return len(f.data) }

// RawFrame wraps already-encoded bytes — the pass-through for producers
// that hold finished wire bytes (the recovery coordinator, tests,
// fault-injection hooks replaying captures). Raw frames are written
// verbatim: never delta-rewritten, never pooled (Release is a no-op).
func RawFrame(b []byte) *Frame {
	return &Frame{data: b}
}

var framePool = sync.Pool{New: func() any { return new(Frame) }}

// AcquireFrame returns a reusable frame for Encoder.EncodeFrame. Hand
// it back with Release once the write path is done with it; the
// buffers (frame bytes, piggyback tentSet words) survive the pool
// round-trip, which is what makes the steady-state hot path
// allocation-free.
func AcquireFrame() *Frame {
	f := framePool.Get().(*Frame)
	f.pooled = true
	return f
}

// Release returns an acquired frame to the pool. Raw frames ignore it,
// so an owner may Release unconditionally. The frame must not be used
// after Release.
func (f *Frame) Release() {
	if !f.pooled {
		return
	}
	f.data = f.data[:0]
	f.ver = 0
	f.hasPB = false
	f.pbOff = 0
	f.epoch = 0
	f.pooled = false
	framePool.Put(f)
}
