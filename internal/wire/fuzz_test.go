package wire

import (
	"reflect"
	"testing"
)

// FuzzWireRoundTrip mirrors internal/trace/fuzz_test.go for the binary
// envelope codec: arbitrary input — including truncated and corrupt
// frames — must never panic, and whatever decodes must survive an
// encode/decode cycle unchanged (the codec is canonical).
func FuzzWireRoundTrip(f *testing.F) {
	for _, e := range sampleEnvelopes() {
		b, err := Encode(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if len(b) > 3 {
			f.Add(b[:len(b)-3]) // truncated frame
		}
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, raw []byte) {
		e, err := Decode(raw)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out, err := Encode(e)
		if err != nil {
			t.Fatalf("re-encode of decoded envelope failed: %v (%#v)", err, e)
		}
		again, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(e, again) {
			t.Fatalf("round trip changed envelope:\n got %#v\nwant %#v", again, e)
		}
	})
}

// FuzzDecodeV2 drives the stateful v2 decoder with an arbitrary (base,
// frame) pair: the base may or may not establish a delta base, the frame
// may be absolute, a delta, or garbage. Nothing panics; whatever decodes
// must canonicalize — the zero-copy view, the owned copy, and a v1
// re-encode of the owned copy all agree — and a v1-capped decoder must
// reject anything that is not a v1 frame.
func FuzzDecodeV2(f *testing.F) {
	for _, p := range corpusEntriesV2(f) {
		f.Add(p[0], p[1])
	}

	f.Fuzz(func(t *testing.T, base, frame []byte) {
		dec := NewDecoder(0)
		dec.Decode(base) // errors are fine; it may seed a delta base
		view, err := dec.Decode(frame)

		// The owned decode over an identical chain must agree exactly.
		own := NewDecoder(0)
		own.Decode(base)
		owned, errOwned := own.DecodeOwned(frame)
		if (err == nil) != (errOwned == nil) {
			t.Fatalf("Decode err=%v but DecodeOwned err=%v", err, errOwned)
		}
		if err == nil {
			bare := *view
			bare.Payload = nil
			bareOwned := *owned
			bareOwned.Payload = nil
			if !reflect.DeepEqual(bare, bareOwned) {
				t.Fatalf("view and owned headers disagree:\n view %#v\nowned %#v", bare, bareOwned)
			}
			// The owned envelope is canonical: a v1 re-encode round-trips.
			out, err := Encode(owned)
			if err != nil {
				t.Fatalf("re-encode of decoded envelope failed: %v (%#v)", err, owned)
			}
			again, err := Decode(out)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(owned, again) {
				t.Fatalf("round trip changed envelope:\n got %#v\nwant %#v", again, owned)
			}
		}

		// A v1-capped decoder accepts v1 frames only — ErrVersion, never a
		// panic or misparse, on anything else.
		old := NewDecoder(Version)
		if _, err := old.Decode(frame); err == nil && frame[0] != Version {
			t.Fatalf("v1-only decoder accepted a frame with version byte %d", frame[0])
		}
	})
}
