package wire

import (
	"reflect"
	"testing"
)

// FuzzWireRoundTrip mirrors internal/trace/fuzz_test.go for the binary
// envelope codec: arbitrary input — including truncated and corrupt
// frames — must never panic, and whatever decodes must survive an
// encode/decode cycle unchanged (the codec is canonical).
func FuzzWireRoundTrip(f *testing.F) {
	for _, e := range sampleEnvelopes() {
		b, err := Encode(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if len(b) > 3 {
			f.Add(b[:len(b)-3]) // truncated frame
		}
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, raw []byte) {
		e, err := Decode(raw)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out, err := Encode(e)
		if err != nil {
			t.Fatalf("re-encode of decoded envelope failed: %v (%#v)", err, e)
		}
		again, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(e, again) {
			t.Fatalf("round trip changed envelope:\n got %#v\nwant %#v", again, e)
		}
	})
}
