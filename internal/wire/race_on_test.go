//go:build race

package wire

// raceEnabled gates the exact-zero allocation assertions: the race
// detector instruments allocations, so AllocsPerRun is not meaningful
// under -race.
const raceEnabled = true
