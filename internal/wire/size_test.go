package wire

import (
	"math/rand"
	"reflect"
	"testing"

	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/reliable"
)

// randomEnvelope draws an arbitrary valid envelope: every payload kind
// the in-tree protocols emit, random endpoints, tags and counters.
func randomEnvelope(rng *rand.Rand) *protocol.Envelope {
	e := &protocol.Envelope{
		ID:     rng.Int63() - rng.Int63(), // spans negative ids too
		Src:    rng.Intn(64),
		Dst:    rng.Intn(64),
		Bytes:  rng.Int63n(1 << 30),
		SentAt: des.Time(rng.Int63n(1<<40) - 1<<39),
		Epoch:  rng.Intn(1 << 10),
	}
	if rng.Intn(2) == 0 {
		e.Kind = protocol.KindApp
		e.App = protocol.AppMsg{
			Seq:   rng.Int63n(1 << 30),
			Bytes: rng.Int63n(1 << 20),
			Tag:   rng.Uint64(),
		}
	} else {
		e.Kind = protocol.KindCtl
		tag := make([]byte, rng.Intn(MaxCtlTag+1))
		for i := range tag {
			tag[i] = byte('a' + rng.Intn(26))
		}
		e.CtlTag = string(tag)
	}
	switch rng.Intn(4) {
	case 0: // no payload
	case 1:
		universe := 2 + rng.Intn(63)
		set := protocol.NewProcSet(universe)
		for i := 0; i < universe; i++ {
			if rng.Intn(3) == 0 {
				set.Add(i)
			}
		}
		e.Payload = core.Piggyback{
			Csn:     rng.Intn(1 << 20),
			Stat:    core.Status(rng.Intn(int(core.Tentative) + 1)),
			TentSet: set,
		}
	case 2:
		e.Payload = core.CtlMsg{Csn: rng.Intn(1 << 20)}
	case 3:
		e.Payload = reliable.Ack{ID: rng.Int63() - rng.Int63()}
	}
	return e
}

// TestEncodedSizePropertyRandomized is the v1 size property: for
// randomized envelopes, EncodedSize must exactly match the bytes Encode
// produces, PayloadSize must account exactly for the payload suffix, and
// the round trip must be lossless. The v2 extension of this property —
// PeerEncoder.EncodedSize against AppendFrame over delta chains,
// reconnect full-frame fallback included — is TestDeltaChainMatchesAbsolute
// in delta_test.go.
func TestEncodedSizePropertyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	for i := 0; i < 5000; i++ {
		e := randomEnvelope(rng)
		b, err := Encode(e)
		if err != nil {
			t.Fatalf("case %d: encode: %v (%#v)", i, err, e)
		}
		size, err := EncodedSize(e)
		if err != nil {
			t.Fatalf("case %d: EncodedSize: %v", i, err)
		}
		if size != len(b) {
			t.Fatalf("case %d: EncodedSize = %d, Encode produced %d bytes (%#v)", i, size, len(b), e)
		}
		psize, err := PayloadSize(e)
		if err != nil {
			t.Fatalf("case %d: PayloadSize: %v", i, err)
		}
		if psize < 1 || psize > size {
			t.Fatalf("case %d: PayloadSize = %d outside (0, %d]", i, psize, size)
		}
		// The payload block is the frame's suffix: encoding the same
		// envelope payload-free must shave off exactly psize-1 bytes
		// (the empty payload still costs its discriminator byte).
		bare := *e
		bare.Payload = nil
		bareSize, err := EncodedSize(&bare)
		if err != nil {
			t.Fatalf("case %d: bare EncodedSize: %v", i, err)
		}
		if bareSize != size-psize+1 {
			t.Fatalf("case %d: payload accounting off: total %d, payload %d, bare %d", i, size, psize, bareSize)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("case %d: round trip changed envelope:\n got %#v\nwant %#v", i, got, e)
		}
	}
}

// TestEncodedSizeAppendMatches: Append onto a non-empty buffer adds
// exactly EncodedSize bytes and leaves the prefix alone.
func TestEncodedSizeAppendMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	prefix := []byte{0xde, 0xad, 0xbe, 0xef}
	for i := 0; i < 500; i++ {
		e := randomEnvelope(rng)
		buf := append([]byte(nil), prefix...)
		buf, err := Append(buf, e)
		if err != nil {
			t.Fatalf("case %d: append: %v", i, err)
		}
		size, err := EncodedSize(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != len(prefix)+size {
			t.Fatalf("case %d: appended %d bytes, EncodedSize says %d", i, len(buf)-len(prefix), size)
		}
		if got, err := Decode(buf[len(prefix):]); err != nil || !reflect.DeepEqual(got, e) {
			t.Fatalf("case %d: suffix does not decode back: %v", i, err)
		}
	}
}
