package wire

import (
	"testing"

	"ocsml/internal/analysis/vetkit"
	"ocsml/internal/analysis/wireexhaustive"
)

// TestPayloadRegistryComplete cross-checks the //ocsml:wirepayload
// registry — collected from source exactly the way cmd/ocsmlvet does —
// against what this package actually exercises:
//
//  1. every registered payload type round-trips through Encode/Decode
//     via at least one sample envelope, and comes back as the same kind;
//  2. the checked-in fuzz corpus holds at least one decodable seed per
//     registered kind (plus the empty payload), so a new payload type
//     cannot ship without fuzz coverage.
func TestPayloadRegistryComplete(t *testing.T) {
	loader, modPath, err := vetkit.ModuleLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadPackage(modPath + "/internal/wire"); err != nil {
		t.Fatal(err)
	}
	registry := wireexhaustive.PayloadNames(vetkit.NewProgram(loader.Packages))
	if len(registry) == 0 {
		t.Fatal("no //ocsml:wirepayload types found in the program")
	}

	sampled := map[string]bool{}
	for _, e := range sampleEnvelopes() {
		b, err := Encode(e)
		if err != nil {
			t.Fatalf("encode %+v: %v", e, err)
		}
		d, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", e, err)
		}
		if got, want := PayloadKind(d.Payload), PayloadKind(e.Payload); got != want {
			t.Errorf("round trip changed payload kind: sent %s, got %s", want, got)
		}
		sampled[PayloadKind(d.Payload)] = true
	}
	for _, kind := range registry {
		if !sampled[kind] {
			t.Errorf("registered payload %s has no sample envelope: add one to sampleEnvelopes so it round-trips and seeds the corpus", kind)
		}
	}

	want := append(append([]string{}, registry...), "nil")
	missing, err := wireexhaustive.CheckCorpus(corpusDir, func(b []byte) (string, bool) {
		e, err := Decode(b)
		if err != nil {
			return "", false
		}
		return PayloadKind(e.Payload), true
	}, want)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range missing {
		t.Errorf("fuzz corpus has no seed decoding to payload kind %s: regenerate with WIRE_REGEN_CORPUS=1 go test ./internal/wire", kind)
	}
}
