package wire

import (
	"testing"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
)

// benchEnvelope is the steady-state hot-path shape: an application
// message carrying a piggyback over an N=64 cluster.
func benchEnvelope() *protocol.Envelope {
	set := protocol.NewProcSet(64)
	set.Add(5)
	set.Add(41)
	return pbEnvelope(1, 0, core.Piggyback{Csn: 12, Stat: core.Tentative, TentSet: set})
}

// BenchmarkWireEncode contrasts the legacy allocating encode with the
// pooled v2 hot path — the headline allocs/msg numbers.
func BenchmarkWireEncode(b *testing.B) {
	e := benchEnvelope()

	b.Run("v1-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Encode(e); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("v2-pooled", func(b *testing.B) {
		var enc Encoder
		f := AcquireFrame()
		defer f.Release()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.EncodeFrame(f, e); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(f.Len()))
	})

	b.Run("v2-delta", func(b *testing.B) {
		var enc Encoder
		var pe PeerEncoder
		f := AcquireFrame()
		defer f.Release()
		var wbuf []byte
		var n int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.EncodeFrame(f, e); err != nil {
				b.Fatal(err)
			}
			wbuf, _ = pe.AppendFrame(wbuf[:0], f)
			n = len(wbuf)
		}
		b.SetBytes(int64(n))
	})
}

// BenchmarkWireDecode measures the stateful decoder on full and delta
// frames, view-returning (hot path) and owned (engine boundary).
func BenchmarkWireDecode(b *testing.B) {
	full, delta := v2ChainFrames(b)

	b.Run("view-full", func(b *testing.B) {
		dec := NewDecoder(0)
		b.ReportAllocs()
		b.SetBytes(int64(len(full)))
		for i := 0; i < b.N; i++ {
			if _, err := dec.Decode(full); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("view-delta", func(b *testing.B) {
		dec := NewDecoder(0)
		if _, err := dec.Decode(full); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(delta)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dec.Decode(delta); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("owned-full", func(b *testing.B) {
		dec := NewDecoder(0)
		b.ReportAllocs()
		b.SetBytes(int64(len(full)))
		for i := 0; i < b.N; i++ {
			if _, err := dec.DecodeOwned(full); err != nil {
				b.Fatal(err)
			}
		}
	})
}
