package wire

import (
	"fmt"

	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/protocol"
	"ocsml/internal/reliable"
)

// Decoder parses the frames of one connection. It keeps the
// per-connection state v2 delta frames decode against (the last
// piggyback seen) and reuses its own storage across calls, so the
// steady-state decode of an application frame performs no allocations.
//
// Decode returns a view: the envelope and its payload point into the
// decoder and stay valid only until the next Decode/DecodeOwned call.
// DecodeOwned returns an independent envelope with the canonical value
// payloads the protocols assert on. A Decoder is not safe for
// concurrent use; the transport runs one per inbound connection.
//
// The zero Decoder is ready to use and accepts up to VersionLatest;
// NewDecoder(1) builds a v1-only decoder for mixed-version clusters.
type Decoder struct {
	maxVersion int

	r    reader
	env  protocol.Envelope
	cur  core.Piggyback
	ctl  core.CtlMsg
	ack  reliable.Ack
	rb   protocol.RbMsg
	seqs []int

	flips []int
	delta core.PiggybackDelta

	// Delta base: the last piggyback decoded on this connection.
	prevOK    bool
	prevEpoch int
	prev      core.Piggyback
}

// NewDecoder returns a connection-scoped decoder accepting frame
// versions up to maxVersion; 0 means VersionLatest. A v1-only decoder
// (maxVersion 1) rejects every v2 frame with ErrVersion — the
// mixed-version safety property: an old node never misparses a new
// frame.
func NewDecoder(maxVersion int) *Decoder {
	if maxVersion < 0 || maxVersion > VersionLatest {
		panic(fmt.Sprintf("wire: decoder version %d out of range [0,%d]", maxVersion, VersionLatest))
	}
	return &Decoder{maxVersion: maxVersion}
}

// Decode parses one envelope from data. The entire input must be
// consumed: trailing bytes are an error (frames are already delimited
// by the transport's length prefix). Corrupt input returns an error,
// never panics; a failed decode does not advance the delta base.
//
// The returned envelope is a zero-allocation view into the decoder:
// it, its payload pointer, and any slices they carry are invalidated by
// the next Decode/DecodeOwned call. Callers that retain the envelope
// must use DecodeOwned.
//
//ocsml:hotpath
func (d *Decoder) Decode(data []byte) (*protocol.Envelope, error) {
	d.r = reader{b: data}
	r := &d.r
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	max := d.maxVersion
	if max == 0 {
		max = VersionLatest
	}
	if ver < Version || int(ver) > max {
		return nil, errf("%w: got %d, want 1..%d", ErrVersion, ver, max)
	}
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	if kind > byte(protocol.KindCtl) {
		return nil, errf("wire: invalid kind %d", kind)
	}
	e := &d.env
	*e = protocol.Envelope{Kind: protocol.Kind(kind)}
	if e.ID, err = r.varint(); err != nil {
		return nil, err
	}
	src, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	dst, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if src > protocol.MaxUniverse || dst > protocol.MaxUniverse {
		return nil, errf("wire: endpoint out of range %d->%d", src, dst)
	}
	e.Src, e.Dst = int(src), int(dst)
	if e.Bytes, err = r.varint(); err != nil {
		return nil, err
	}
	sentAt, err := r.varint()
	if err != nil {
		return nil, err
	}
	e.SentAt = des.Time(sentAt)
	epoch, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if epoch > 1<<30 {
		return nil, errf("wire: epoch %d out of range", epoch)
	}
	e.Epoch = int(epoch)
	tagLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if tagLen > MaxCtlTag {
		return nil, errf("wire: control tag length %d exceeds %d", tagLen, MaxCtlTag)
	}
	tag, err := r.bytes(int(tagLen))
	if err != nil {
		return nil, err
	}
	e.CtlTag = internTag(tag)
	if e.App.Seq, err = r.varint(); err != nil {
		return nil, err
	}
	if e.App.Bytes, err = r.varint(); err != nil {
		return nil, err
	}
	if e.App.Tag, err = r.uvarint(); err != nil {
		return nil, err
	}
	if e.Payload, err = decodePayload(r, d, ver); err != nil {
		return nil, err
	}
	if r.off != len(data) {
		return nil, errf("%w: %d byte(s)", ErrTrailing, len(data)-r.off)
	}
	// The frame decoded in full: if it carried a piggyback (absolute or
	// reconstructed from a delta), it becomes the connection's new base.
	if _, ok := e.Payload.(*core.Piggyback); ok {
		d.prev.Csn = d.cur.Csn
		d.prev.Stat = d.cur.Stat
		d.prev.TentSet.CopyFrom(d.cur.TentSet)
		d.prevEpoch = e.Epoch
		d.prevOK = true
	}
	return e, nil
}

// DecodeOwned decodes like Decode but returns an independent envelope
// whose payload is in its canonical value form — core.Piggyback with a
// cloned tentSet, value core.CtlMsg / reliable.Ack / protocol.RbMsg
// (nil Seqs when empty) — exactly what Encode produced on the far side.
// Use it wherever the envelope outlives the next decode; the zero-copy
// Decode is for hot paths that finish with the envelope immediately.
func (d *Decoder) DecodeOwned(data []byte) (*protocol.Envelope, error) {
	v, err := d.Decode(data)
	if err != nil {
		return nil, err
	}
	e := new(protocol.Envelope)
	*e = *v
	switch p := v.Payload.(type) {
	case nil:
	case *core.Piggyback:
		e.Payload = core.Piggyback{Csn: p.Csn, Stat: p.Stat, TentSet: p.TentSet.Clone()}
	case *core.CtlMsg:
		e.Payload = *p
	case *reliable.Ack:
		e.Payload = *p
	case *protocol.RbMsg:
		rb := *p
		if len(rb.Seqs) == 0 {
			rb.Seqs = nil
		} else {
			rb.Seqs = append([]int(nil), rb.Seqs...)
		}
		e.Payload = rb
	default:
		panic(fmt.Sprintf("wire: decoder produced unregistered payload %T", v.Payload))
	}
	return e, nil
}

// decodePayload parses the payload block into the decoder's reusable
// payload storage and returns a pointer view of it. The v2-only delta
// block reconstructs an absolute piggyback from the connection's base.
func decodePayload(r *reader, d *Decoder, ver byte) (any, error) {
	pt, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch pt {
	case ptNone:
		return nil, nil
	case ptPiggyback:
		csn, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if csn > 1<<40 {
			return nil, errf("wire: piggyback csn %d out of range", csn)
		}
		stat, err := r.byte()
		if err != nil {
			return nil, err
		}
		if stat > byte(core.Tentative) {
			return nil, errf("wire: invalid piggyback status %d", stat)
		}
		set := d.cur.TentSet
		k, err := set.DecodeInto(r.b[r.off:])
		if err != nil {
			return nil, err
		}
		r.off += k
		d.cur = core.Piggyback{Csn: int(csn), Stat: core.Status(stat), TentSet: set}
		return &d.cur, nil
	case ptCtlMsg:
		csn, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if csn > 1<<40 {
			return nil, errf("wire: control csn %d out of range", csn)
		}
		d.ctl = core.CtlMsg{Csn: int(csn)}
		return &d.ctl, nil
	case ptAck:
		id, err := r.varint()
		if err != nil {
			return nil, err
		}
		d.ack = reliable.Ack{ID: id}
		return &d.ack, nil
	case ptRb:
		round, err := r.varint()
		if err != nil {
			return nil, err
		}
		line, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if line > 1<<40 {
			return nil, errf("wire: recovery line %d out of range", line)
		}
		epoch, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if epoch > 1<<30 {
			return nil, errf("wire: recovery epoch %d out of range", epoch)
		}
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if count > maxRbSeqs {
			return nil, errf("wire: recovery report length %d out of range", count)
		}
		d.seqs = d.seqs[:0]
		for i := uint64(0); i < count; i++ {
			q, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if q > 1<<40 {
				return nil, errf("wire: recovery seq %d out of range", q)
			}
			d.seqs = append(d.seqs, int(q))
		}
		seqs := d.seqs
		if len(seqs) == 0 {
			seqs = nil
		}
		d.rb = protocol.RbMsg{Round: round, Line: int(line), Epoch: int(epoch), Seqs: seqs}
		return &d.rb, nil
	case ptPiggybackDelta:
		if ver < Version2 {
			return nil, errf("%w: delta block in v%d frame", ErrPayload, ver)
		}
		if !d.prevOK {
			return nil, ErrDeltaBase
		}
		if d.env.Epoch != d.prevEpoch {
			return nil, errf("%w: base epoch %d, frame epoch %d", ErrDeltaBase, d.prevEpoch, d.env.Epoch)
		}
		dcsn, err := r.varint()
		if err != nil {
			return nil, err
		}
		if dcsn < -(1<<40) || dcsn > 1<<40 {
			return nil, errf("wire: piggyback csn delta %d out of range", dcsn)
		}
		stat, err := r.byte()
		if err != nil {
			return nil, err
		}
		if stat > byte(core.Tentative) {
			return nil, errf("wire: invalid piggyback status %d", stat)
		}
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		n := d.prev.TentSet.Universe()
		if count > uint64(n) {
			return nil, errf("wire: piggyback delta flips %d bits in universe %d", count, n)
		}
		// Gap-decoded ascending indices; bounds-checked against the
		// base's universe so Apply below cannot fail on range.
		d.flips = d.flips[:0]
		idx := -1
		for i := uint64(0); i < count; i++ {
			g, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if g > uint64(n) {
				return nil, errf("wire: piggyback delta gap %d out of range", g)
			}
			if idx < 0 {
				idx = int(g)
			} else {
				idx += 1 + int(g)
			}
			if idx >= n {
				return nil, errf("wire: piggyback delta flips bit %d outside universe [0,%d)", idx, n)
			}
			d.flips = append(d.flips, idx)
		}
		d.delta.DCsn = int(dcsn)
		d.delta.Stat = core.Status(stat)
		d.delta.Flips = d.flips
		d.cur.Csn = d.prev.Csn
		d.cur.Stat = d.prev.Stat
		d.cur.TentSet.CopyFrom(d.prev.TentSet)
		if err := d.delta.Apply(&d.cur); err != nil {
			return nil, err
		}
		if d.cur.Csn > 1<<40 {
			return nil, errf("wire: piggyback csn %d out of range", d.cur.Csn)
		}
		return &d.cur, nil
	default:
		return nil, errf("%w: %d", ErrPayload, pt)
	}
}

// internTag maps the control tags the in-tree protocols use onto their
// compile-time string constants, so decoding a control frame does not
// allocate. Unknown tags fall back to a fresh string.
func internTag(b []byte) string {
	switch string(b) { //ocsml:alloc comparison-only conversion, not materialized by the compiler
	case "":
		return ""
	case core.TagBGN:
		return core.TagBGN
	case core.TagREQ:
		return core.TagREQ
	case core.TagEND:
		return core.TagEND
	case reliable.AckTag:
		return reliable.AckTag
	case protocol.TagRbBegin:
		return protocol.TagRbBegin
	case protocol.TagRbLine:
		return protocol.TagRbLine
	case protocol.TagRbCommit:
		return protocol.TagRbCommit
	case protocol.TagRbAck:
		return protocol.TagRbAck
	}
	return string(b) //ocsml:alloc unknown tag: an interning miss is a cold path
}
