package trace

import (
	"strings"
	"testing"
)

func TestRenderSVG(t *testing.T) {
	b := nb()
	b.send(0, 1, 1)
	b.recv(1, 0, 1)
	b.ev(KTentative, 1, -1, 0, 1)
	b.ev(KFinalize, 1, -1, 0, 1)
	b.ev(KCtlSend, 1, 0, 9, -1)
	b.ev(KCtlRecv, 0, 1, 9, -1)
	b.ev(KForced, 0, -1, 0, 2)
	b.ev(KFail, 0, -1, 0, -1)
	b.ev(KRestore, 0, -1, 0, 1)
	out := RenderSVG(b.r.Events(), 2)
	for _, want := range []string{
		"<svg", "</svg>", ">P0<", ">P1<",
		`stroke="#2a6fdb"`,      // app message arrow
		`stroke-dasharray`,      // control message
		`stroke="#0a8a0a"`,      // tentative marker
		`fill="#0a8a0a"`,        // finalize marker
		`fill="#c22"`,           // forced marker
		"✗",                     // failure
		"↺",                     // restore
		`marker-end="url(#arr)`, // arrowheads
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Deterministic.
	if out != RenderSVG(b.r.Events(), 2) {
		t.Fatal("RenderSVG not deterministic")
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	out := RenderSVG(nil, 3)
	if !strings.Contains(out, "<svg") || !strings.Contains(out, ">P2<") {
		t.Fatal("empty SVG should still draw lanes")
	}
}
