package trace

import "fmt"

// This file holds the two offline trace analyses behind the paper's
// remaining safety claims, shared by cmd/tracecheck and the protomodel
// explorer:
//
//   - replay sufficiency: every message processed inside a tentative
//     interval appears in the selective log (KLogRecv/KLogSend events),
//     so replaying the log reproduces the interval exactly once;
//   - Z-cycle freedom: the rollback-dependency graph over checkpoint
//     intervals (Netzer–Xu / Wang) is acyclic, so no finalized
//     checkpoint is useless.

// A ReplayGap is one message that the selective log fails to cover.
type ReplayGap struct {
	Proc  int   // process whose log is incomplete
	Seq   int   // checkpoint sequence of the tentative interval
	MsgID int64 // processed (or sent) message missing from the log
	Sent  bool  // true: missing send-log entry; false: missing receive-log entry
}

func (g ReplayGap) String() string {
	dir := "received"
	if g.Sent {
		dir = "sent"
	}
	return fmt.Sprintf("P%d %s msg %d inside tentative interval %d but never logged it",
		g.Proc, dir, g.MsgID, g.Seq)
}

// CheckReplay verifies selective-logging sufficiency over a trace: for
// every process, every application message sent or received between a
// KTentative(seq) event and the matching KFinalize(seq) event must have
// a matching KLogSend/KLogRecv event in the same interval. Messages
// processed outside tentative intervals need no logging (the paper logs
// only while tentative), and a rolled-back interval (KRestore before
// the finalize) is exempt — its log died with the crash.
func CheckReplay(events []Event) []ReplayGap {
	// Per process, walk events in order tracking the open tentative
	// interval and the pending (unlogged) messages inside it.
	type open struct {
		seq     int
		pending []ReplayGap // becomes real gaps if the interval finalizes
		logged  map[int64]uint8
	}
	const (
		loggedSend = 1 << iota
		loggedRecv
	)
	var gaps []ReplayGap
	cur := map[int]*open{}
	for _, e := range events {
		switch e.Kind {
		case KTentative:
			cur[e.Proc] = &open{seq: e.Seq, logged: map[int64]uint8{}}
		case KLogSend:
			if o := cur[e.Proc]; o != nil {
				o.logged[e.MsgID] |= loggedSend
			}
		case KLogRecv:
			if o := cur[e.Proc]; o != nil {
				o.logged[e.MsgID] |= loggedRecv
			}
		case KSend:
			if o := cur[e.Proc]; o != nil {
				o.pending = append(o.pending, ReplayGap{Proc: e.Proc, Seq: o.seq, MsgID: e.MsgID, Sent: true})
			}
		case KRecv:
			if o := cur[e.Proc]; o != nil {
				o.pending = append(o.pending, ReplayGap{Proc: e.Proc, Seq: o.seq, MsgID: e.MsgID, Sent: false})
			}
		case KFinalize:
			o := cur[e.Proc]
			if o == nil || o.seq != e.Seq {
				continue
			}
			for _, p := range o.pending {
				want := uint8(loggedRecv)
				if p.Sent {
					want = loggedSend
				}
				if o.logged[p.MsgID]&want == 0 {
					gaps = append(gaps, p)
				}
			}
			delete(cur, e.Proc)
		case KRestore:
			delete(cur, e.Proc) // rolled back: the interval never finalized
		}
	}
	return gaps
}

// An Interval identifies one checkpoint interval of a process: Index 0
// runs from process start to its first cut event, index x from cut x to
// cut x+1.
type Interval struct {
	Proc  int
	Index int
}

func (iv Interval) String() string { return fmt.Sprintf("I(P%d,%d)", iv.Proc, iv.Index) }

// ZCycles detects Z-cycles through the trace's checkpoints using the
// rollback-dependency graph: one node per checkpoint interval, a
// program-order edge between a process's consecutive intervals, and an
// edge from the sender's interval to the receiver's interval for every
// application message. A cycle means rolling back some checkpoint
// forces a rollback past itself — the checkpoint is useless (Netzer–Xu
// Z-cycle). The paper's Theorem 2 implies the graph is acyclic for
// OCSML traces; an orphan message introduces the back edge that closes
// a cycle. Returns the first cycle found as an interval sequence, nil
// when acyclic.
func ZCycles(events []Event, cutKind Kind) []Interval {
	// Interval index of event g for proc p = number of p's cut events
	// with smaller GSeq.
	cuts := map[int][]int64{}
	for _, e := range events {
		if e.Kind == cutKind || (cutKind == KCheckpoint && e.Kind == KForced) {
			cuts[e.Proc] = append(cuts[e.Proc], e.GSeq)
		}
	}
	index := func(proc int, g int64) int {
		n := 0
		for _, cg := range cuts[proc] {
			if cg < g {
				n++
			}
		}
		return n
	}

	edges := map[Interval]map[Interval]bool{}
	addEdge := func(a, b Interval) {
		if a == b {
			return
		}
		if edges[a] == nil {
			edges[a] = map[Interval]bool{}
		}
		edges[a][b] = true
	}
	for proc, cs := range cuts {
		for x := 0; x < len(cs); x++ {
			addEdge(Interval{proc, x}, Interval{proc, x + 1})
		}
	}
	// Message edges need both endpoints; pair sends with receives.
	sends := map[int64]Event{}
	for _, e := range events {
		switch e.Kind {
		case KSend:
			sends[e.MsgID] = e
		case KRecv:
			s, ok := sends[e.MsgID]
			if !ok {
				continue
			}
			addEdge(Interval{s.Proc, index(s.Proc, s.GSeq)},
				Interval{e.Proc, index(e.Proc, e.GSeq)})
		}
	}

	// DFS cycle detection with deterministic order (sorted nodes).
	var nodes []Interval
	for a := range edges {
		nodes = append(nodes, a)
	}
	sortIntervals(nodes)
	const (
		white = iota
		gray
		black
	)
	color := map[Interval]int{}
	var stack []Interval
	var cycle []Interval
	var visit func(a Interval) bool
	visit = func(a Interval) bool {
		color[a] = gray
		stack = append(stack, a)
		var succs []Interval
		for b := range edges[a] {
			succs = append(succs, b)
		}
		sortIntervals(succs)
		for _, b := range succs {
			switch color[b] {
			case gray:
				// Found: slice the stack from b's occurrence.
				for i, s := range stack {
					if s == b {
						cycle = append(append([]Interval(nil), stack[i:]...), b)
						return true
					}
				}
			case white:
				if visit(b) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[a] = black
		return false
	}
	for _, a := range nodes {
		if color[a] == white && visit(a) {
			return cycle
		}
	}
	return nil
}

func sortIntervals(ivs []Interval) {
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0; j-- {
			a, b := ivs[j-1], ivs[j]
			if a.Proc < b.Proc || (a.Proc == b.Proc && a.Index <= b.Index) {
				break
			}
			ivs[j-1], ivs[j] = b, a
		}
	}
}
