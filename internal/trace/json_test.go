package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	b := nb()
	b.send(0, 1, 1)
	b.recv(1, 0, 1)
	b.ev(KTentative, 1, -1, 0, 2)
	b.ev(KFinalize, 1, -1, 0, 2)
	b.ev(KCtlSend, 0, 1, 9, -1)
	events := b.r.Events()
	events[4].Tag = "CK_BGN"

	var buf bytes.Buffer
	if err := WriteJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("len %d != %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"kind":"martian"}`)); err == nil {
		t.Fatal("unknown kind should error")
	}
	if _, err := ReadJSON(strings.NewReader(`{garbage`)); err == nil {
		t.Fatal("malformed json should error")
	}
	evs, err := ReadJSON(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatal("empty input should give empty trace")
	}
}
