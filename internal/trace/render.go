package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Render draws an ASCII space-time diagram of the trace: one lane per
// process, events in global order left to right. Application messages are
// labeled with their envelope id at both endpoints so arrows can be read
// off (send sN / receive rN). Checkpoint events appear as:
//
//	[Tk] tentative checkpoint with sequence k
//	[Fk] finalization of checkpoint k
//	[Ck] monolithic checkpoint k (baselines)
//	[!k] forced checkpoint k
//
// It is intentionally simple — meant for examples, small scenario tests
// and debugging, not for large traces.
func Render(events []Event, n int) string {
	// Assign each event a column. To keep diagrams narrow, consecutive
	// events on *different* processes may share a column only if they
	// are unrelated; simplest faithful layout: one column per event.
	cols := len(events)
	if cols == 0 {
		return "(empty trace)\n"
	}
	// Build per-event labels.
	labels := make([]string, cols)
	procs := make([]int, cols)
	// Renumber message ids to small integers in order of first use.
	msgNum := map[int64]int{}
	nextMsg := 1
	num := func(id int64) int {
		if v, ok := msgNum[id]; ok {
			return v
		}
		msgNum[id] = nextMsg
		nextMsg++
		return msgNum[id]
	}
	for i, e := range events {
		procs[i] = e.Proc
		switch e.Kind {
		case KSend:
			labels[i] = fmt.Sprintf("s%d", num(e.MsgID))
		case KRecv:
			labels[i] = fmt.Sprintf("r%d", num(e.MsgID))
		case KCtlSend:
			labels[i] = fmt.Sprintf("cs:%s", shortTag(e.Tag))
		case KCtlRecv:
			labels[i] = fmt.Sprintf("cr:%s", shortTag(e.Tag))
		case KTentative:
			labels[i] = fmt.Sprintf("[T%d]", e.Seq)
		case KFinalize:
			labels[i] = fmt.Sprintf("[F%d]", e.Seq)
		case KCheckpoint:
			labels[i] = fmt.Sprintf("[C%d]", e.Seq)
		case KForced:
			labels[i] = fmt.Sprintf("[!%d]", e.Seq)
		case KFail:
			labels[i] = "[X]"
		case KRestore:
			labels[i] = fmt.Sprintf("[R%d]", e.Seq)
		default:
			labels[i] = "?"
		}
	}
	width := make([]int, cols)
	for i, l := range labels {
		width[i] = len([]rune(l)) + 1
	}
	var b strings.Builder
	for p := 0; p < n; p++ {
		fmt.Fprintf(&b, "P%-2d |", p)
		for i := range events {
			cell := strings.Repeat("-", width[i])
			if procs[i] == p {
				l := labels[i]
				cell = l + strings.Repeat("-", width[i]-len([]rune(l)))
			}
			b.WriteString(cell)
		}
		b.WriteString(">\n")
	}
	return b.String()
}

func shortTag(tag string) string {
	switch tag {
	case "CK_BGN":
		return "B"
	case "CK_REQ":
		return "Q"
	case "CK_END":
		return "E"
	case "marker":
		return "M"
	default:
		if len(tag) > 3 {
			return tag[:3]
		}
		return tag
	}
}

// Summarize returns per-kind event counts as a deterministic string, handy
// in examples.
func Summarize(events []Event) string {
	counts := map[Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	kinds := make([]int, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", Kind(k), counts[Kind(k)]))
	}
	return strings.Join(parts, " ")
}
