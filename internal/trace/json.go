package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ocsml/internal/des"
)

// jsonEvent is the on-disk representation of an Event: JSON Lines, one
// event per line, so multi-gigabyte traces stream.
type jsonEvent struct {
	G    int64  `json:"g"`
	T    int64  `json:"t"`
	Kind string `json:"kind"`
	Proc int    `json:"proc"`
	Peer int    `json:"peer,omitempty"`
	Msg  int64  `json:"msg,omitempty"`
	Seq  int    `json:"seq,omitempty"`
	Tag  string `json:"tag,omitempty"`
}

var kindByName = func() map[string]Kind {
	m := map[string]Kind{}
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// WriteJSON streams the events as JSON Lines.
func WriteJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		je := jsonEvent{
			G: e.GSeq, T: int64(e.T), Kind: e.Kind.String(),
			Proc: e.Proc, Peer: e.Peer, Msg: e.MsgID, Seq: e.Seq, Tag: e.Tag,
		}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", e.GSeq, err)
		}
	}
	return bw.Flush()
}

// ReadJSON parses a JSON Lines trace written by WriteJSON.
func ReadJSON(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode line %d: %w", len(out)+1, err)
		}
		kind, ok := kindByName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: unknown event kind %q at line %d", je.Kind, len(out)+1)
		}
		out = append(out, Event{
			GSeq: je.G, T: des.Time(je.T), Kind: kind,
			Proc: je.Proc, Peer: je.Peer, MsgID: je.Msg, Seq: je.Seq, Tag: je.Tag,
		})
	}
}
