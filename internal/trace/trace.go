// Package trace records the global event history of a simulated
// computation and checks global checkpoints for consistency.
//
// The recorder assigns every event a global sequence number (GSeq). Events
// of a single process are totally ordered by GSeq, so a "cut" — one cut
// point per process — can be expressed as a per-process GSeq bound. A cut
// is consistent exactly when it admits no orphan message: a message whose
// receive lies inside the cut while its send lies outside (paper §2.2).
package trace

import (
	"fmt"
	"sync"

	"ocsml/internal/des"
)

// Kind classifies trace events.
type Kind uint8

const (
	// KSend is the send event of an application message.
	KSend Kind = iota
	// KRecv is the receive (processing) event of an application message.
	KRecv
	// KCtlSend is the send event of a protocol control message.
	KCtlSend
	// KCtlRecv is the receive event of a protocol control message.
	KCtlRecv
	// KTentative marks taking a tentative checkpoint CT_{i,seq}.
	KTentative
	// KFinalize marks the finalization event CFE_{i,seq} — the effective
	// cut point of checkpoint C_{i,seq} (paper Eq. 1).
	KFinalize
	// KCheckpoint marks a monolithic checkpoint taken by a baseline
	// protocol (its own cut point).
	KCheckpoint
	// KForced marks a communication-induced (forced) checkpoint taken
	// before processing a message (CIC baselines).
	KForced
	// KFail marks a process failure.
	KFail
	// KRestore marks a process restoring from a checkpoint.
	KRestore
	// KLogSend marks appending a sent message to the selective log
	// (logSet, paper Fig. 3) — emitted by the model checker so replay
	// sufficiency is checkable offline.
	KLogSend
	// KLogRecv marks appending a received message to the selective log.
	KLogRecv
)

var kindNames = [...]string{
	KSend: "send", KRecv: "recv", KCtlSend: "ctl-send", KCtlRecv: "ctl-recv",
	KTentative: "tentative", KFinalize: "finalize", KCheckpoint: "checkpoint",
	KForced: "forced", KFail: "fail", KRestore: "restore",
	KLogSend: "log-send", KLogRecv: "log-recv",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsCut reports whether this event kind can serve as a checkpoint cut
// point.
func (k Kind) IsCut() bool {
	return k == KFinalize || k == KCheckpoint || k == KTentative || k == KForced
}

// Event is one recorded occurrence.
type Event struct {
	GSeq  int64    // global order, assigned by the recorder
	T     des.Time // virtual time
	Kind  Kind
	Proc  int    // process where the event occurred
	Peer  int    // other endpoint for message events (-1 otherwise)
	MsgID int64  // envelope id for message events (0 otherwise)
	Seq   int    // checkpoint sequence number for checkpoint events (-1 otherwise)
	Tag   string // control tag for control events
}

// Recorder accumulates events. It is safe for concurrent use so the live
// (goroutine-based) runtime can share it; the discrete-event engine uses
// it single-threaded.
type Recorder struct {
	mu sync.Mutex
	//ocsml:guardedby mu
	events []Event
	//ocsml:guardedby mu
	gseq int64
	//ocsml:guardedby mu
	enabled bool
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{enabled: true} }

// SetEnabled toggles recording (benchmarks disable it to avoid unbounded
// memory growth).
func (r *Recorder) SetEnabled(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.enabled = on
}

// Record appends an event, assigning its GSeq. It returns the assigned
// GSeq (0 when recording is disabled).
func (r *Recorder) Record(e Event) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.enabled {
		return 0
	}
	r.gseq++
	e.GSeq = r.gseq
	r.events = append(r.events, e)
	return e.GSeq
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot copy of all recorded events in GSeq order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Cut is a global cut: for each process i, events with GSeq <= At[i]
// belong to the cut (the "past"). A zero entry means the cut for that
// process lies before all of its events.
type Cut struct {
	At []int64
}

// NewCut returns a cut before all events for n processes.
func NewCut(n int) Cut { return Cut{At: make([]int64, n)} }

// MsgCrossing describes a message that crosses a cut.
type MsgCrossing struct {
	MsgID    int64
	Src, Dst int
	SendG    int64 // GSeq of the send event (0 if unknown)
	RecvG    int64 // GSeq of the receive event (0 if not received)
}

// Report is the result of checking a cut for consistency.
type Report struct {
	// Orphans are messages received inside the cut but sent outside —
	// their existence makes the cut inconsistent.
	Orphans []MsgCrossing
	// InFlight are messages sent inside the cut but not received inside
	// (the "channel state"); these are legal but must be replayed or
	// logged for a complete recovery.
	InFlight []MsgCrossing
}

// Consistent reports whether the cut has no orphan messages.
func (rep *Report) Consistent() bool { return len(rep.Orphans) == 0 }

// CheckCut verifies the cut against all application messages in the trace.
// Control messages are excluded: they are not part of the computation's
// state (the paper's consistency definition ranges over application
// messages).
func (r *Recorder) CheckCut(cut Cut) Report {
	events := r.Events()
	return CheckEvents(events, cut)
}

// CheckEvents is CheckCut over an explicit event slice (used by tests and
// by offline trace files).
func CheckEvents(events []Event, cut Cut) Report {
	type endpoints struct {
		src, dst     int
		sendG, recvG int64
	}
	msgs := map[int64]*endpoints{}
	for _, e := range events {
		switch e.Kind {
		case KSend:
			m := msgs[e.MsgID]
			if m == nil {
				m = &endpoints{}
				msgs[e.MsgID] = m
			}
			m.src, m.sendG = e.Proc, e.GSeq
			if m.recvG == 0 {
				m.dst = e.Peer
			}
		case KRecv:
			m := msgs[e.MsgID]
			if m == nil {
				m = &endpoints{src: e.Peer}
				msgs[e.MsgID] = m
			}
			m.dst, m.recvG = e.Proc, e.GSeq
		}
	}
	inside := func(proc int, g int64) bool {
		if proc < 0 || proc >= len(cut.At) {
			return false
		}
		return g != 0 && g <= cut.At[proc]
	}
	var rep Report
	// Deterministic iteration: walk events, not the map.
	seen := map[int64]bool{}
	for _, e := range events {
		if e.Kind != KSend && e.Kind != KRecv {
			continue
		}
		if seen[e.MsgID] {
			continue
		}
		seen[e.MsgID] = true
		m := msgs[e.MsgID]
		sendIn := inside(m.src, m.sendG)
		recvIn := inside(m.dst, m.recvG)
		cross := MsgCrossing{MsgID: e.MsgID, Src: m.src, Dst: m.dst, SendG: m.sendG, RecvG: m.recvG}
		switch {
		case recvIn && !sendIn:
			rep.Orphans = append(rep.Orphans, cross)
		case sendIn && !recvIn:
			rep.InFlight = append(rep.InFlight, cross)
		}
	}
	return rep
}

// CutAt builds a cut from per-process checkpoint events: for each process,
// the cut point is its event of the given kind with checkpoint sequence
// number seq. It returns false if any process lacks such an event.
//
// For the paper's protocol the cut of S_k uses kind KFinalize (the CFE
// events); for monolithic baselines it uses KCheckpoint (and KForced
// events also count as checkpoints).
func (r *Recorder) CutAt(n int, kind Kind, seq int) (Cut, bool) {
	cut := NewCut(n)
	found := make([]bool, n)
	for _, e := range r.Events() {
		match := e.Kind == kind || (kind == KCheckpoint && e.Kind == KForced)
		if match && e.Seq == seq && e.Proc >= 0 && e.Proc < n {
			cut.At[e.Proc] = e.GSeq
			found[e.Proc] = true
		}
	}
	for _, ok := range found {
		if !ok {
			return Cut{}, false
		}
	}
	return cut, true
}

// ProcEvents returns process i's events in order.
func (r *Recorder) ProcEvents(i int) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Proc == i {
			out = append(out, e)
		}
	}
	return out
}

// CountKind returns how many events of the given kind were recorded.
func (r *Recorder) CountKind(k Kind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}
