package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON: arbitrary input must never panic; valid traces must
// round-trip.
func FuzzReadJSON(f *testing.F) {
	b := nb()
	b.send(0, 1, 1)
	b.recv(1, 0, 1)
	b.ev(KFinalize, 1, -1, 0, 1)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, b.r.Events()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"g":1,"t":5,"kind":"send","proc":0,"peer":1,"msg":3}`)
	f.Add("")
	f.Add(`{"kind":"martian"}`)
	f.Add("{")

	f.Fuzz(func(t *testing.T, in string) {
		events, err := ReadJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		// Whatever parsed must survive a write/read cycle unchanged.
		var out bytes.Buffer
		if err := WriteJSON(&out, events); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed length: %d != %d", len(again), len(events))
		}
		for i := range events {
			if events[i] != again[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}

// FuzzCheckEvents: the consistency checker must never panic on arbitrary
// event structures, and orphan/in-flight sets must be disjoint.
func FuzzCheckEvents(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 4
		var events []Event
		g := int64(0)
		for i := 0; i+1 < len(raw); i += 2 {
			g++
			kind := KSend
			if raw[i]%2 == 1 {
				kind = KRecv
			}
			events = append(events, Event{
				GSeq: g, Kind: kind,
				Proc:  int(raw[i]) % n,
				Peer:  int(raw[i+1]) % n,
				MsgID: int64(raw[i+1]%16) + 1,
			})
		}
		cut := NewCut(n)
		for p := 0; p < n; p++ {
			if len(raw) > p {
				cut.At[p] = int64(raw[p]) % (g + 1)
			}
		}
		rep := CheckEvents(events, cut)
		seen := map[int64]bool{}
		for _, o := range rep.Orphans {
			seen[o.MsgID] = true
		}
		for _, fl := range rep.InFlight {
			if seen[fl.MsgID] {
				t.Fatalf("message %d both orphan and in-flight", fl.MsgID)
			}
		}
	})
}
