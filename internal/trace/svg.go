package trace

import (
	"fmt"
	"strings"

	"ocsml/internal/des"
)

// RenderSVG draws a self-contained SVG space-time diagram of the trace:
// one horizontal lane per process (time flows left to right), application
// messages as solid arrows, control messages as dashed gray arrows,
// tentative checkpoints as hollow squares, finalizations/monolithic
// checkpoints as filled squares, forced checkpoints in red, and
// failures/restores as crosses. Useful for small runs (hundreds of
// events); the output needs no external resources.
func RenderSVG(events []Event, n int) string {
	const (
		width   = 1200.0
		laneGap = 64.0
		marginX = 70.0
		marginY = 40.0
		footer  = 30.0
	)
	height := marginY*2 + laneGap*float64(maxInt(n-1, 0)) + footer

	var tMin, tMax des.Time
	first := true
	for _, e := range events {
		if first || e.T < tMin {
			tMin = e.T
		}
		if first || e.T > tMax {
			tMax = e.T
		}
		first = false
	}
	span := float64(tMax - tMin)
	if span <= 0 {
		span = 1
	}
	x := func(t des.Time) float64 {
		return marginX + (width-2*marginX)*float64(t-tMin)/span
	}
	y := func(proc int) float64 { return marginY + laneGap*float64(proc) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="monospace" font-size="11">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Lanes.
	for p := 0; p < n; p++ {
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#bbb"/>`+"\n",
			marginX, y(p), width-marginX, y(p))
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">P%d</text>`+"\n",
			marginX-8, y(p)+4, p)
	}
	// Time axis label.
	fmt.Fprintf(&b, `<text x="%g" y="%g" fill="#555">%v</text>`+"\n", marginX, height-8, tMin)
	fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" fill="#555">%v</text>`+"\n",
		width-marginX, height-8, tMax)

	// Message arrows: pair sends with receives by MsgID (last occurrence
	// wins, matching the checker's semantics).
	type endpoint struct {
		t    des.Time
		proc int
	}
	sends := map[int64]endpoint{}
	recvs := map[int64]endpoint{}
	ctl := map[int64]bool{}
	for _, e := range events {
		switch e.Kind {
		case KSend:
			sends[e.MsgID] = endpoint{e.T, e.Proc}
		case KRecv:
			recvs[e.MsgID] = endpoint{e.T, e.Proc}
		case KCtlSend:
			sends[e.MsgID] = endpoint{e.T, e.Proc}
			ctl[e.MsgID] = true
		case KCtlRecv:
			recvs[e.MsgID] = endpoint{e.T, e.Proc}
			ctl[e.MsgID] = true
		}
	}
	// Deterministic order: walk events, draw each message once.
	drawn := map[int64]bool{}
	for _, e := range events {
		if e.Kind != KSend && e.Kind != KCtlSend {
			continue
		}
		if drawn[e.MsgID] {
			continue
		}
		drawn[e.MsgID] = true
		s := sends[e.MsgID]
		r, ok := recvs[e.MsgID]
		if !ok {
			continue // never delivered
		}
		stroke, dash := "#2a6fdb", ""
		if ctl[e.MsgID] {
			stroke, dash = "#999", ` stroke-dasharray="4 3"`
		}
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s"%s marker-end="url(#arr)"/>`+"\n",
			x(s.t), y(s.proc), x(r.t), y(r.proc), stroke, dash)
	}

	// Checkpoint and failure markers on top of the arrows.
	for _, e := range events {
		ex, ey := x(e.T), y(e.Proc)
		switch e.Kind {
		case KTentative:
			fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="white" stroke="#0a8a0a" stroke-width="2"/>`+"\n", ex-5, ey-5)
			fmt.Fprintf(&b, `<text x="%g" y="%g" fill="#0a8a0a">T%d</text>`+"\n", ex-6, ey-9, e.Seq)
		case KFinalize, KCheckpoint:
			fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="#0a8a0a"/>`+"\n", ex-5, ey-5)
			fmt.Fprintf(&b, `<text x="%g" y="%g" fill="#0a8a0a">%s%d</text>`+"\n", ex-6, ey+20, markLabel(e.Kind), e.Seq)
		case KForced:
			fmt.Fprintf(&b, `<rect x="%g" y="%g" width="10" height="10" fill="#c22"/>`+"\n", ex-5, ey-5)
		case KFail:
			fmt.Fprintf(&b, `<text x="%g" y="%g" fill="#c22" font-size="16">✗</text>`+"\n", ex-5, ey+5)
		case KRestore:
			fmt.Fprintf(&b, `<text x="%g" y="%g" fill="#b8860b" font-size="13">↺%d</text>`+"\n", ex-5, ey+5, e.Seq)
		}
	}

	// Arrowhead marker definition.
	b.WriteString(`<defs><marker id="arr" markerWidth="8" markerHeight="8" refX="7" refY="4" orient="auto"><path d="M0,0 L8,4 L0,8 z" fill="context-stroke"/></marker></defs>` + "\n")
	b.WriteString("</svg>\n")
	return b.String()
}

func markLabel(k Kind) string {
	if k == KFinalize {
		return "F"
	}
	return "C"
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
