package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ocsml/internal/des"
)

// record is a tiny DSL for building traces in tests.
type builder struct {
	r *Recorder
	t des.Time
}

func nb() *builder { return &builder{r: NewRecorder()} }

func (b *builder) ev(k Kind, proc, peer int, msg int64, seq int) int64 {
	b.t++
	return b.r.Record(Event{T: b.t, Kind: k, Proc: proc, Peer: peer, MsgID: msg, Seq: seq})
}

func (b *builder) send(p, q int, msg int64) int64 { return b.ev(KSend, p, q, msg, -1) }
func (b *builder) recv(p, q int, msg int64) int64 { return b.ev(KRecv, p, q, msg, -1) }
func (b *builder) ckpt(p, seq int) int64          { return b.ev(KCheckpoint, p, -1, 0, seq) }

func TestRecorderAssignsGSeq(t *testing.T) {
	b := nb()
	g1 := b.send(0, 1, 1)
	g2 := b.recv(1, 0, 1)
	if g1 != 1 || g2 != 2 {
		t.Fatalf("gseqs = %d,%d", g1, g2)
	}
	if b.r.Len() != 2 {
		t.Fatalf("Len = %d", b.r.Len())
	}
	evs := b.r.Events()
	if evs[0].Kind != KSend || evs[1].Kind != KRecv {
		t.Fatal("event order wrong")
	}
}

func TestDisabledRecorder(t *testing.T) {
	r := NewRecorder()
	r.SetEnabled(false)
	if g := r.Record(Event{Kind: KSend}); g != 0 {
		t.Fatal("disabled recorder should return 0")
	}
	if r.Len() != 0 {
		t.Fatal("disabled recorder should store nothing")
	}
}

// TestFigure1 replays the paper's Figure 1: two global checkpoints S1
// (consistent) and S2 (inconsistent, M5 is an orphan). The figure has
// three processes P0,P1,P2 exchanging messages M1..M5. We reconstruct the
// essential structure: for S2, message M5's receive is inside the cut but
// its send is after the sender's cut.
func TestFigure1(t *testing.T) {
	b := nb()
	// Pre-cut traffic (inside both S1 and S2 for all processes).
	b.send(0, 1, 1) // M1
	b.recv(1, 0, 1)
	b.send(1, 2, 2) // M2
	b.recv(2, 1, 2)

	// S1 cut points: after the above on every process.
	s1 := NewCut(3)
	s1.At[0] = b.ckpt(0, 1)
	s1.At[1] = b.ckpt(1, 1)
	s1.At[2] = b.ckpt(2, 1)

	// M3: sent and received after S1 on both sides — no crossing.
	b.send(2, 0, 3)
	b.recv(0, 2, 3)

	rep1 := b.r.CheckCut(s1)
	if !rep1.Consistent() {
		t.Fatalf("S1 should be consistent, orphans=%v", rep1.Orphans)
	}

	// S2, the inconsistent cut of Figure 1: P1 takes C_{1,2} BEFORE
	// sending M5, P2 takes C_{2,2} AFTER receiving M5 — so M5's receive
	// is inside the cut while its send is outside: M5 is an orphan.
	b2 := nb()
	cut := NewCut(3)
	cut.At[0] = b2.ckpt(0, 2) // P0 cut
	cut.At[1] = b2.ckpt(1, 2) // P1 cut (taken BEFORE sending M5)
	b2.send(1, 2, 5)          // M5 send: outside P1's cut
	b2.recv(2, 1, 5)          // M5 receive
	cut.At[2] = b2.ckpt(2, 2) // P2 cut AFTER the receive: M5 inside
	rep2 := b2.r.CheckCut(cut)
	if rep2.Consistent() {
		t.Fatal("S2 should be inconsistent (M5 orphan)")
	}
	if len(rep2.Orphans) != 1 || rep2.Orphans[0].MsgID != 5 {
		t.Fatalf("orphans = %+v, want exactly M5", rep2.Orphans)
	}
}

func TestInFlightDetection(t *testing.T) {
	b := nb()
	cut := NewCut(2)
	b.send(0, 1, 7) // sent inside cut
	cut.At[0] = b.ckpt(0, 1)
	cut.At[1] = b.ckpt(1, 1)
	b.recv(1, 0, 7) // received outside cut
	rep := b.r.CheckCut(cut)
	if !rep.Consistent() {
		t.Fatal("in-flight message is not an orphan")
	}
	if len(rep.InFlight) != 1 || rep.InFlight[0].MsgID != 7 {
		t.Fatalf("InFlight = %+v", rep.InFlight)
	}
}

func TestNeverReceivedMessage(t *testing.T) {
	b := nb()
	cut := NewCut(2)
	b.send(0, 1, 9)
	cut.At[0] = b.ckpt(0, 1)
	cut.At[1] = b.ckpt(1, 1)
	rep := b.r.CheckCut(cut)
	if len(rep.InFlight) != 1 {
		t.Fatalf("unreceived message should be in flight: %+v", rep)
	}
}

func TestCutAt(t *testing.T) {
	b := nb()
	b.ev(KFinalize, 0, -1, 0, 1)
	b.ev(KFinalize, 1, -1, 0, 1)
	cut, ok := b.r.CutAt(2, KFinalize, 1)
	if !ok {
		t.Fatal("CutAt should find both finalize events")
	}
	if cut.At[0] != 1 || cut.At[1] != 2 {
		t.Fatalf("cut = %+v", cut)
	}
	if _, ok := b.r.CutAt(2, KFinalize, 2); ok {
		t.Fatal("CutAt for missing seq should fail")
	}
	if _, ok := b.r.CutAt(3, KFinalize, 1); ok {
		t.Fatal("CutAt with missing process should fail")
	}
}

func TestCutAtCheckpointIncludesForced(t *testing.T) {
	b := nb()
	b.ev(KCheckpoint, 0, -1, 0, 3)
	b.ev(KForced, 1, -1, 0, 3)
	if _, ok := b.r.CutAt(2, KCheckpoint, 3); !ok {
		t.Fatal("forced checkpoints should count as checkpoints")
	}
}

func TestProcEventsAndCountKind(t *testing.T) {
	b := nb()
	b.send(0, 1, 1)
	b.recv(1, 0, 1)
	b.send(0, 1, 2)
	if got := len(b.r.ProcEvents(0)); got != 2 {
		t.Fatalf("ProcEvents(0) = %d", got)
	}
	if got := b.r.CountKind(KSend); got != 2 {
		t.Fatalf("CountKind(KSend) = %d", got)
	}
}

func TestKindStrings(t *testing.T) {
	if KSend.String() != "send" || KFinalize.String() != "finalize" {
		t.Fatal("Kind.String wrong")
	}
	if !KFinalize.IsCut() || KSend.IsCut() {
		t.Fatal("IsCut wrong")
	}
}

func TestRender(t *testing.T) {
	b := nb()
	b.send(0, 1, 1)
	b.recv(1, 0, 1)
	b.ev(KTentative, 1, -1, 0, 1)
	b.ev(KFinalize, 1, -1, 0, 1)
	out := Render(b.r.Events(), 2)
	for _, want := range []string{"s1", "r1", "[T1]", "[F1]", "P0 ", "P1 "} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
	if Render(nil, 2) != "(empty trace)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestSummarize(t *testing.T) {
	b := nb()
	b.send(0, 1, 1)
	b.send(0, 1, 2)
	b.recv(1, 0, 1)
	got := Summarize(b.r.Events())
	if got != "send=2 recv=1" {
		t.Fatalf("Summarize = %q", got)
	}
}

// randomExecution builds a random but causally legal execution: a sequence
// of sends with later receives, then picks a random cut. It returns events
// plus, for each message, whether a brute-force orphan scan flags it.
func randomExecution(ops []uint16, n int) ([]Event, Cut) {
	b := nb()
	type pending struct {
		id  int64
		src int
		dst int
	}
	var inflight []pending
	nextID := int64(1)
	for _, op := range ops {
		p := int(op) % n
		q := (p + 1 + int(op/7)%(n-1)) % n
		if op%3 == 0 && len(inflight) > 0 {
			k := int(op) % len(inflight)
			m := inflight[k]
			inflight = append(inflight[:k], inflight[k+1:]...)
			b.recv(m.dst, m.src, m.id)
		} else {
			b.send(p, q, nextID)
			inflight = append(inflight, pending{nextID, p, q})
			nextID++
		}
	}
	// Random cut: for each process pick a random recorded event of that
	// process (or 0).
	cut := NewCut(n)
	evs := b.r.Events()
	for i := 0; i < n; i++ {
		var last int64
		for _, e := range evs {
			if e.Proc == i && int(e.GSeq)%(i+2) == 0 {
				last = e.GSeq
			}
		}
		cut.At[i] = last
	}
	return evs, cut
}

// Property: the checker agrees with a brute-force orphan scan on random
// executions and random cuts.
func TestQuickCheckerVsBruteForce(t *testing.T) {
	const n = 4
	f := func(ops []uint16) bool {
		evs, cut := randomExecution(ops, n)
		rep := CheckEvents(evs, cut)
		// Brute force.
		sendG := map[int64]int64{}
		recvG := map[int64]int64{}
		sendP := map[int64]int{}
		recvP := map[int64]int{}
		for _, e := range evs {
			switch e.Kind {
			case KSend:
				sendG[e.MsgID], sendP[e.MsgID] = e.GSeq, e.Proc
			case KRecv:
				recvG[e.MsgID], recvP[e.MsgID] = e.GSeq, e.Proc
			}
		}
		orphans := map[int64]bool{}
		inflight := map[int64]bool{}
		for id, sg := range sendG {
			sIn := sg <= cut.At[sendP[id]]
			rg, received := recvG[id]
			rIn := received && rg <= cut.At[recvP[id]]
			if rIn && !sIn {
				orphans[id] = true
			}
			if sIn && !rIn {
				inflight[id] = true
			}
		}
		if len(orphans) != len(rep.Orphans) || len(inflight) != len(rep.InFlight) {
			return false
		}
		for _, o := range rep.Orphans {
			if !orphans[o.MsgID] {
				return false
			}
		}
		for _, f := range rep.InFlight {
			if !inflight[f.MsgID] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
