package harness

import (
	"fmt"
	"math"

	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/recovery"
	"ocsml/internal/trace"
	"ocsml/internal/workload"
)

// overheadProtos are the protocols compared in the headline sweeps.
var overheadProtos = []string{"none", "ocsml", "chandy-lamport", "koo-toueg", "staggered", "bcs-cic"}

// sweepCfg is the common configuration of the N sweeps (E1, E2, E6).
func sweepCfg(s Scale, proto string, n int) RunCfg {
	return RunCfg{
		Proto: proto, N: n,
		Steps: s.Steps(), Think: s.Think(),
		Interval: s.Interval(), StateBytes: s.StateBytes(),
	}
}

// rateCfg is the common configuration of the message-rate sweeps (E3, E4,
// E5, E7): the workload span is held constant while the per-step think
// time varies, so every row sees the same number of checkpoint rounds.
func rateCfg(s Scale, proto string, think, interval des.Duration) RunCfg {
	span := 6 * interval
	steps := int64(span / think)
	if steps < 20 {
		steps = 20
	}
	return RunCfg{
		Proto: proto, N: 8,
		Steps: steps, Think: think,
		Interval: interval, StateBytes: 4 << 20,
	}
}

func rateInterval(s Scale) des.Duration {
	if s.Quick {
		return des.Second
	}
	return 4 * des.Second
}

// Seeds returns the independent repetitions used by statistics-bearing
// experiments.
func (s Scale) Seeds() []int64 {
	if s.Quick {
		return []int64{1, 2}
	}
	return []int64{1, 2, 3}
}

// meanSD returns the mean and population standard deviation.
func meanSD(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// E1 measures checkpointing overhead (makespan inflation over the
// no-checkpointing baseline) as the cluster grows, averaged over
// independent seeds.
func E1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Checkpointing overhead (makespan inflation) vs N",
		Claim: "OCSML's overhead stays near zero and flat in N; blocking and bursty protocols degrade with N (paper §1).",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"N", "protocol", "makespan(s)", "sd(s)", "overhead"}}
			for _, n := range s.Ns() {
				var base float64
				for _, proto := range overheadProtos {
					var ms []float64
					completed := true
					for _, seed := range s.Seeds() {
						rc := sweepCfg(s, proto, n)
						rc.Seed = seed
						r := Run(rc)
						completed = completed && r.Completed
						ms = append(ms, r.Makespan.Seconds())
					}
					mean, sd := meanSD(ms)
					cell := F(mean)
					if !completed {
						cell = "DNF"
					}
					if proto == "none" {
						base = mean
					}
					over := "-"
					if base > 0 && completed {
						over = Pct(mean/base - 1)
					}
					t.AddRow(I(n), proto, cell, F(sd), over)
				}
			}
			t.Note("mean over %d seeds", len(s.Seeds()))
			return t
		},
	}
}

// E2 measures contention at the stable-storage server.
func E2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Stable-storage contention vs N",
		Claim: "OCSML reduces/eliminates contention for network storage at the file server (paper abstract); synchronous protocols queue N writes at once.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"N", "protocol", "peakQueue", "meanWait(s)", "p95Wait(s)", "utilization"}}
			for _, n := range s.Ns() {
				for _, proto := range []string{"ocsml", "chandy-lamport", "koo-toueg", "staggered", "bcs-cic"} {
					r := Run(sweepCfg(s, proto, n))
					t.AddRow(I(n), proto,
						I(r.Storage.PeakQueue()),
						F(r.Storage.MeanWait()),
						F(r.Storage.WaitTime.Percentile(95)),
						F(r.Storage.Utilization()))
				}
			}
			return t
		},
	}
}

// E3 counts control messages as application traffic density varies.
func E3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "OCSML control messages per global checkpoint vs message rate",
		Claim: "Control messages are not sent if each global checkpoint finalizes within the timeout (paper §3.5.1); they appear only on sparse traffic.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"think(ms)", "msgs/s/proc", "globals", "ctl/global", "ctlPreCompletion"}}
			interval := rateInterval(s)
			for _, thinkMs := range []int64{2, 5, 10, 25, 60, 150, 400} {
				think := des.Duration(thinkMs) * des.Millisecond
				rc := rateCfg(s, "ocsml", think, interval)
				rc.Trace = true
				opt := core.DefaultOptions()
				opt.Interval = interval
				opt.Timeout = interval / 2
				opt.SuppressBGN = false // isolate pure demand-driven control traffic
				rc.Opt = &opt
				r := Run(rc)
				globals := r.GlobalCheckpoints()
				perGlobal := 0.0
				if globals > 0 {
					perGlobal = float64(r.CtlMsgs) / float64(globals)
				}
				pre := 0
				for _, e := range r.Trace.Events() {
					if e.Kind == trace.KCtlSend && e.T < r.Makespan {
						pre++
					}
				}
				rate := float64(r.AppMsgs) / float64(r.Cfg.N) / r.Makespan.Seconds()
				t.AddRow(I(thinkMs), F(rate), I(globals), F(perGlobal), I(pre))
			}
			return t
		},
	}
}

// E4 measures finalization latency (tentative → finalized).
func E4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "OCSML finalization latency vs message rate and timeout",
		Claim: "Dense traffic finalizes via piggybacks well before the timeout; sparse traffic converges at ~timeout + one control round.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"think(ms)", "timeout(ms)", "meanFinalize(s)", "globals"}}
			interval := rateInterval(s)
			for _, thinkMs := range []int64{5, 25, 150} {
				for _, timeoutMs := range []int64{100, 250, 500} {
					rc := rateCfg(s, "ocsml", des.Duration(thinkMs)*des.Millisecond, interval)
					rc.Timeout = des.Duration(timeoutMs) * des.Millisecond
					r := Run(rc)
					t.AddRow(
						I(thinkMs), I(timeoutMs),
						F(r.MeanFinalizationLatency()), I(r.GlobalCheckpoints()))
				}
			}
			return t
		},
	}
}

// E5 measures the optimistic message-log volume.
func E5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "OCSML message-log volume vs message rate",
		Claim: "The selective log holds only messages inside the tentative window, so its size tracks rate × finalization latency.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"think(ms)", "globals", "logKB/ckpt", "logMsgs/ckpt", "log/state"}}
			interval := rateInterval(s)
			for _, thinkMs := range []int64{2, 5, 10, 25, 60, 150} {
				rc := rateCfg(s, "ocsml", des.Duration(thinkMs)*des.Millisecond, interval)
				r := Run(rc)
				ckpts, msgs := 0, 0
				var bytes int64
				for p := 0; p < r.Cfg.N; p++ {
					for _, rec := range r.Ckpts.Proc(p).All() {
						if rec.Seq == 0 {
							continue
						}
						ckpts++
						msgs += len(rec.Log)
						bytes += rec.LogBytes()
					}
				}
				if ckpts == 0 {
					ckpts = 1
				}
				perCkpt := float64(bytes) / float64(ckpts)
				t.AddRow(I(thinkMs), I(r.GlobalCheckpoints()),
					F(perCkpt/1024), F(float64(msgs)/float64(ckpts)),
					Pct(perCkpt/float64(r.Cfg.StateBytes)))
			}
			return t
		},
	}
}

// E6 measures application blocking.
func E6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Application blocking time vs N",
		Claim: "Processes never block for checkpointing under OCSML; synchronous protocols stall the computation (paper §1).",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"N", "protocol", "stalled(s)/proc", "stall/makespan"}}
			for _, n := range s.Ns() {
				for _, proto := range []string{"ocsml", "koo-toueg", "chandy-lamport", "bcs-cic"} {
					r := Run(sweepCfg(s, proto, n))
					per := r.StalledSeconds.Sum() / float64(n)
					frac := "-"
					if r.Completed && r.Makespan > 0 {
						frac = Pct(per / r.Makespan.Seconds())
					}
					t.AddRow(I(n), proto, F(per), frac)
				}
			}
			t.Note("OCSML's stall is only the in-memory copy cost (5ms per tentative checkpoint).")
			return t
		},
	}
}

// E7 measures forced checkpoints and the message response-time penalty.
func E7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Forced checkpoints and message response time: CIC vs OCSML",
		Claim: "OCSML never checkpoints before processing a message; index-based CIC forces checkpoints ahead of processing, inflating response time (paper §1).",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"think(ms)", "protocol", "ckpts", "forced", "meanLatency(ms)", "p95Latency(ms)"}}
			interval := rateInterval(s)
			for _, thinkMs := range []int64{5, 15, 40} {
				for _, proto := range []string{"ocsml", "bcs-cic"} {
					rc := rateCfg(s, proto, des.Duration(thinkMs)*des.Millisecond, interval)
					rc.Trace = true
					r := Run(rc)
					forced := r.Trace.CountKind(trace.KForced)
					ckpts := r.Trace.CountKind(trace.KCheckpoint) + r.Trace.CountKind(trace.KTentative) + forced
					t.AddRow(I(thinkMs), proto, I(int64(ckpts)), I(int64(forced)),
						F(r.AppLatency.Mean()*1000), F(r.AppLatency.Percentile(95)*1000))
				}
			}
			return t
		},
	}
}

// E8 measures rollback after a failure.
func E8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Rollback on failure: domino effect vs bounded rollback",
		Claim: "Uncoordinated checkpointing cascades (domino effect, paper §1); every OCSML checkpoint belongs to a consistent global checkpoint so rollback is bounded by one interval.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"pattern", "protocol", "rollbackDepth", "iterations", "lostWork", "lostMsgs"}}
			think := 5 * des.Millisecond
			steps := s.Steps()
			interval := des.Duration(steps) * think / 5 // ~5 rounds per run
			for _, pat := range []workload.Pattern{workload.UniformRandom, workload.Ring} {
				for _, proto := range []string{"ocsml", "uncoordinated"} {
					r := Run(RunCfg{
						Proto: proto, N: 8, Steps: steps, Pattern: pat,
						Think: think, Interval: interval,
						StateBytes: 4 << 20, Trace: true,
					})
					var a *recovery.Analysis
					var err error
					if proto == "ocsml" {
						a, err = recovery.Coordinated(r)
					} else {
						a, err = recovery.Domino(r, trace.KCheckpoint)
					}
					if err != nil {
						t.AddRow(pat.String(), proto, "err", "-", "-", "-")
						t.Note("%s/%s: %v", pat, proto, err)
						continue
					}
					t.AddRow(pat.String(), proto,
						I(a.RollbackDepth()), I(a.Iterations),
						Pct(a.LostWorkFraction()), I(a.LostMessages))
				}
			}
			return t
		},
	}
}

// quietCfg is the sparse-traffic workload used by the ablations: long
// think times force the control machinery to do the convergence work.
func quietCfg(s Scale, opt core.Options, n int, seed int64) RunCfg {
	steps := s.Steps() / 10
	if steps < 40 {
		steps = 40
	}
	return RunCfg{
		Proto: "ocsml", N: n, Seed: seed, Steps: steps,
		Think: 400 * des.Millisecond, StateBytes: 4 << 20,
		Opt: &opt, Trace: true,
	}
}

// A1 quantifies CK_BGN suppression (§3.5.1 case 1) and the EscalateBGN
// extension.
func A1() Experiment {
	return Experiment{
		ID:    "A1",
		Title: "Ablation: CK_BGN suppression variants on sparse traffic",
		Claim: "Suppression trades redundant CK_BGNs for P0's unconditional CK_END broadcast; escalation avoids both in the common case.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"variant", "globals", "BGN/global", "REQ/global", "END/global", "suppressed"}}
			variants := []struct {
				name string
				mod  func(*core.Options)
			}{
				{"no-suppression", func(o *core.Options) { o.SuppressBGN = false }},
				{"paper-suppression", func(o *core.Options) { o.SuppressBGN = true }},
				{"suppress+escalate", func(o *core.Options) { o.SuppressBGN = true; o.EscalateBGN = true }},
			}
			for _, v := range variants {
				opt := core.DefaultOptions()
				opt.Interval = 2 * des.Second
				opt.Timeout = 400 * des.Millisecond
				v.mod(&opt)
				r := Run(quietCfg(s, opt, 12, 3))
				g := float64(r.GlobalCheckpoints())
				if g == 0 {
					g = 1
				}
				t.AddRow(v.name, I(r.GlobalCheckpoints()),
					F(float64(r.Counter("ctl.CK_BGN"))/g),
					F(float64(r.Counter("ctl.CK_REQ"))/g),
					F(float64(r.Counter("ctl.CK_END"))/g),
					I(r.Counter("bgn_suppressed")))
			}
			return t
		},
	}
}

// A2 quantifies CK_REQ hop skipping (§3.5.1 case 2).
func A2() Experiment {
	return Experiment{
		ID:    "A2",
		Title: "Ablation: CK_REQ hop skipping on sparse traffic",
		Claim: "Skipping processes already known to be tentative shortens the request ring (paper §3.5.1 case 2).",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"variant", "globals", "REQ/global", "hopsSkipped"}}
			for _, skip := range []bool{false, true} {
				opt := core.DefaultOptions()
				opt.Interval = 2 * des.Second
				opt.Timeout = 400 * des.Millisecond
				opt.SkipREQ = skip
				r := Run(quietCfg(s, opt, 12, 4))
				g := float64(r.GlobalCheckpoints())
				if g == 0 {
					g = 1
				}
				name := "no-skip"
				if skip {
					name = "skip (paper)"
				}
				t.AddRow(name, I(r.GlobalCheckpoints()),
					F(float64(r.Counter("ctl.CK_REQ"))/g),
					I(r.Counter("req_skipped")))
			}
			return t
		},
	}
}

// A3 quantifies the opportunistic early flush of tentative checkpoints.
func A3() Experiment {
	return Experiment{
		ID:    "A3",
		Title: "Ablation: opportunistic early CT flush",
		Claim: "Flushing the tentative checkpoint whenever storage is idle spreads writes ahead of finalization (paper §1: 'at their own convenience').",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"variant", "peakQueue", "meanWait(s)", "earlyFlushes", "finalize→stable(s)"}}
			for _, early := range []bool{false, true} {
				opt := core.DefaultOptions()
				opt.Interval = 30 * des.Second
				opt.Timeout = des.Second
				opt.EarlyFlush = early
				r := Run(RunCfg{
					Proto: "ocsml", N: 16, Steps: 5000, Think: 20 * des.Millisecond,
					StateBytes: 64 << 20, Opt: &opt,
				})
				// Mean lag from finalization decision to stability.
				var lag float64
				var cnt int
				for p := 0; p < r.Cfg.N; p++ {
					for _, rec := range r.Ckpts.Proc(p).All() {
						if rec.Seq > 0 && rec.StableAt > 0 {
							lag += (rec.StableAt - rec.FinalizedAt).Seconds()
							cnt++
						}
					}
				}
				if cnt > 0 {
					lag /= float64(cnt)
				}
				name := "no-early-flush"
				if early {
					name = "early-flush (paper)"
				}
				t.AddRow(name, I(r.Storage.PeakQueue()), F(r.Storage.MeanWait()),
					I(r.Counter("early_flush")), F(lag))
			}
			return t
		},
	}
}

// init validates the experiment registry at package load.
func init() {
	for _, e := range All() {
		if e.ID == "" || e.Run == nil {
			panic(fmt.Sprintf("harness: malformed experiment %+v", e))
		}
	}
}
