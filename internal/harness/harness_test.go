package harness

import (
	"strconv"
	"strings"
	"testing"

	"ocsml/internal/des"
)

func TestRegistryAndRun(t *testing.T) {
	for _, name := range append(ProtoNames(), "ocsml-basic") {
		name := name
		t.Run(name, func(t *testing.T) {
			r := Run(RunCfg{Proto: name, N: 4, Steps: 60, Seed: 2})
			if !r.Completed {
				t.Fatalf("%s run did not complete", name)
			}
		})
	}
}

func TestHarnessDeterminism(t *testing.T) {
	rc := RunCfg{Proto: "ocsml", N: 6, Seed: 17, Steps: 250,
		Think: 10 * des.Millisecond, StateBytes: 4 << 20, Trace: true}
	a, b := Run(rc), Run(rc)
	if a.Makespan != b.Makespan || a.AppMsgs != b.AppMsgs ||
		a.CtlMsgs != b.CtlMsgs || a.TotalLogBytes() != b.TotalLogBytes() ||
		a.Trace.Len() != b.Trace.Len() {
		t.Fatal("identical RunCfg diverged")
	}
	for name, v := range a.Counters {
		if b.Counters[name] != v {
			t.Fatalf("counter %s diverged: %d vs %d", name, v, b.Counters[name])
		}
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown protocol should panic")
		}
	}()
	Run(RunCfg{Proto: "nope"})
}

func TestExperimentLookup(t *testing.T) {
	if len(All()) != 19 {
		t.Fatalf("expected 19 experiments, got %d", len(All()))
	}
	if _, ok := ByID("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
	ids := IDs()
	if len(ids) != 19 || ids[0] != "A1" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Claim: "c", Columns: []string{"a", "bee"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.Note("hello %d", 7)
	out := tab.Render()
	for _, want := range []string{"T — demo", "claim: c", "a    bee", "333", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity should panic")
		}
	}()
	tab.AddRow("only-one")
}

func TestFormatters(t *testing.T) {
	if F(0) != "0" || F(12345) != "12345" || F(42.19) != "42.2" || F(1.23456) != "1.235" {
		t.Fatalf("F: %s %s %s %s", F(0), F(12345), F(42.19), F(1.23456))
	}
	if I(7) != "7" || I(int64(-3)) != "-3" {
		t.Fatal("I")
	}
	if Pct(0.125) != "12.5%" {
		t.Fatalf("Pct = %s", Pct(0.125))
	}
}

// TestExperimentShapes runs each experiment at quick scale and checks the
// paper's qualitative claims hold — this is the reproduction gate.
func TestExperimentShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := Scale{Quick: true}

	t.Run("E1-ocsml-wins", func(t *testing.T) {
		t.Parallel()
		tab, idx := run1(t, "E1", s)
		// For the largest N, OCSML's makespan must beat Chandy–Lamport
		// and Koo–Toueg, and every protocol must have completed.
		last := lastN(tab, idx)
		for _, proto := range []string{"none", "ocsml", "chandy-lamport", "koo-toueg"} {
			if _, ok := last[proto]; !ok {
				t.Fatalf("%s did not finish at the largest N: %v", proto, last)
			}
		}
		if last["ocsml"] >= last["chandy-lamport"] || last["ocsml"] >= last["koo-toueg"] {
			t.Fatalf("OCSML should win at scale: %v", last)
		}
	})

	t.Run("E2-contention", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "E2", s)
		// OCSML's peak queue must stay below Chandy-Lamport's at the
		// largest N.
		peak := map[string]int{}
		for _, row := range tab.Rows {
			if row[0] == strconv.Itoa(s.Ns()[len(s.Ns())-1]) {
				v, _ := strconv.Atoi(row[2])
				peak[row[1]] = v
			}
		}
		if peak["ocsml"] >= peak["chandy-lamport"] {
			t.Fatalf("contention shape wrong: %v", peak)
		}
	})

	t.Run("E3-ctl-vanish", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "E3", s)
		// Densest traffic row: zero pre-completion control messages.
		first := tab.Rows[0]
		if first[4] != "0" {
			t.Fatalf("dense traffic has pre-completion control messages: %v", first)
		}
		// Sparsest row: some control traffic.
		lastRow := tab.Rows[len(tab.Rows)-1]
		if lastRow[3] == "0" {
			t.Fatalf("sparse traffic should need control messages: %v", lastRow)
		}
	})

	t.Run("E6-blocking", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "E6", s)
		for _, row := range tab.Rows {
			if row[1] != "ocsml" && row[1] != "koo-toueg" {
				continue
			}
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatal(err)
			}
			if row[1] == "ocsml" && v > 0.5 {
				t.Fatalf("OCSML stalls too much: %v", row)
			}
			if row[1] == "koo-toueg" && v < 0.1 {
				t.Fatalf("Koo-Toueg should block substantially: %v", row)
			}
		}
	})

	t.Run("E7-forced", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "E7", s)
		for _, row := range tab.Rows {
			if row[1] == "ocsml" && row[3] != "0" {
				t.Fatalf("OCSML must never force checkpoints: %v", row)
			}
			if row[1] == "bcs-cic" && row[0] == "5" && row[3] == "0" {
				t.Fatalf("CIC under dense traffic must force checkpoints: %v", row)
			}
		}
	})

	t.Run("E8-domino", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "E8", s)
		depth := map[string]int{}
		for _, row := range tab.Rows {
			if row[0] == "uniform" {
				v, _ := strconv.Atoi(row[2])
				depth[row[1]] = v
			}
		}
		if depth["ocsml"] > 1 {
			t.Fatalf("OCSML rollback depth %d > 1", depth["ocsml"])
		}
		if depth["uncoordinated"] <= depth["ocsml"] {
			t.Fatalf("domino shape wrong: %v", depth)
		}
	})

	t.Run("E9-retention", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "E9", s)
		var ocsmlRetained, uncoordRetained float64
		for _, row := range tab.Rows {
			v, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatal(err)
			}
			switch row[0] {
			case "ocsml":
				ocsmlRetained = v
			case "uncoordinated":
				uncoordRetained = v
			}
		}
		if ocsmlRetained > 2 {
			t.Fatalf("OCSML should retain at most the committed line (+1 in flight), got %v", ocsmlRetained)
		}
		if uncoordRetained <= ocsmlRetained {
			t.Fatalf("uncoordinated must retain more: %v vs %v", uncoordRetained, ocsmlRetained)
		}
	})

	t.Run("E10-loss", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "E10", s)
		for _, row := range tab.Rows {
			if row[5] != "yes" {
				t.Fatalf("inconsistent under loss: %v", row)
			}
		}
		// Retransmissions grow with the drop rate.
		first, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
		last, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][1], 64)
		if first != 0 || last <= 0 {
			t.Fatalf("retransmission shape wrong: %v .. %v", first, last)
		}
	})

	t.Run("E11-model", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "E11", s)
		for _, row := range tab.Rows {
			e, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			// The queueing and loss models are near-exact; the epidemic
			// gossip estimate is a first-order bound (documented) and
			// gets a wider gate.
			limit := 20.0
			if strings.Contains(row[0], "finalize latency") {
				limit = 60.0
			}
			if e > limit {
				t.Fatalf("model error %v%% exceeds %v%%: %v", e, limit, row)
			}
		}
	})

	t.Run("A4-local-storage", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "A4", s)
		get := func(proto, storage string, col int) float64 {
			for _, row := range tab.Rows {
				if row[0] == proto && row[1] == storage {
					v, _ := strconv.ParseFloat(row[col], 64)
					return v
				}
			}
			t.Fatalf("row %s/%s missing", proto, storage)
			return 0
		}
		// Local disks remove the queueing (peak 1) but not the blocking.
		if get("koo-toueg", "local", 2) != 1 {
			t.Fatal("local disks should eliminate queueing")
		}
		if get("koo-toueg", "local", 4) <= 0.05 {
			t.Fatal("blocking must remain on local disks")
		}
		if get("koo-toueg", "shared", 4) <= get("koo-toueg", "local", 4) {
			t.Fatal("shared storage should block more")
		}
		// OCSML is indifferent to the storage topology.
		if get("ocsml", "shared", 2) != 1 || get("ocsml", "local", 2) != 1 {
			t.Fatal("OCSML queue should be 1 either way")
		}
	})

	t.Run("A2-skip", func(t *testing.T) {
		t.Parallel()
		tab, _ := run1(t, "A2", s)
		noSkip, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
		skip, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
		if skip > noSkip {
			t.Fatalf("skipping should not increase REQ hops: %v vs %v", skip, noSkip)
		}
	})
}

// run1 executes one experiment and returns its table plus a makespan map
// builder helper index (unused for most).
func run1(t *testing.T, id string, s Scale) (*Table, int) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	tab := e.Execute(s)
	if tab.ID != id || len(tab.Rows) == 0 {
		t.Fatalf("experiment %s produced empty table", id)
	}
	return tab, 0
}

// lastN extracts protocol→makespan for the largest N in an E1-style table.
func lastN(tab *Table, _ int) map[string]float64 {
	out := map[string]float64{}
	lastN := tab.Rows[len(tab.Rows)-1][0]
	for _, row := range tab.Rows {
		if row[0] != lastN {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err == nil {
			out[row[1]] = v
		}
	}
	return out
}

func TestScale(t *testing.T) {
	q := Scale{Quick: true}
	f := Scale{}
	if len(q.Ns()) >= len(f.Ns()) || q.Steps() >= f.Steps() {
		t.Fatal("quick scale should be smaller")
	}
	if _, fifo := factory(RunCfg{Proto: "chandy-lamport", Interval: des.Second}); !fifo {
		t.Fatal("chandy-lamport must request FIFO")
	}
	if _, fifo := factory(RunCfg{Proto: "ocsml"}); fifo {
		t.Fatal("ocsml must not request FIFO")
	}
}
