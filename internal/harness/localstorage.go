package harness

// A4 isolates the shared-file-server assumption: the paper's contention
// argument (§1: "the stable storage is at the network file server") goes
// away if every node has its own disk — but so does only the *queueing*,
// not the blocking.
func A4() Experiment {
	return Experiment{
		ID:    "A4",
		Title: "Ablation: shared network file server vs per-node local disks",
		Claim: "The synchronous baselines' N-fold queueing penalty exists only with shared storage (paper §1); their per-write blocking remains even on local disks — OCSML avoids both.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"protocol", "storage", "peakQueue", "meanWait(s)", "blocked(s)/proc", "makespan(s)"}}
			n := 16
			for _, proto := range []string{"koo-toueg", "chandy-lamport", "ocsml"} {
				for _, local := range []bool{false, true} {
					r := Run(RunCfg{
						Proto: proto, N: n,
						Steps: s.Steps(), Think: s.Think(),
						Interval: s.Interval(), StateBytes: s.StateBytes(),
						LocalStorage: local,
					})
					name := "shared"
					if local {
						name = "local"
					}
					t.AddRow(proto, name,
						I(r.StoragePeakAll()),
						F(r.StorageMeanWaitAll()),
						F(r.StalledSeconds.Sum()/float64(n)),
						F(r.Makespan.Seconds()))
				}
			}
			return t
		},
	}
}
