package harness

import (
	"ocsml/internal/des"
)

// E10 runs the paper's protocol over lossy channels through the
// reliable-transport middleware — the system-model assumption (§2.1:
// reliable, non-FIFO channels) built as a substrate and stressed.
func E10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "OCSML over lossy channels (reliable-transport middleware)",
		Claim: "The algorithm assumes reliable non-FIFO channels (§2.1); with an ack/retransmit transport providing them, consistency and convergence survive heavy loss at a bounded latency cost.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{
				"drop", "retrans/msg", "dupDropped", "meanFinalize(s)", "globals", "consistent",
			}}
			interval := rateInterval(s)
			for _, drop := range []float64{0, 0.05, 0.15, 0.30} {
				rc := rateCfg(s, "ocsml", 10*des.Millisecond, interval)
				rc.Trace = true
				rc.DropRate = drop
				rc.Reliable = true
				r := Run(rc)
				consistent := "yes"
				if _, err := r.CheckAllGlobals(); err != nil {
					consistent = "NO: " + err.Error()
				}
				perMsg := 0.0
				if r.AppMsgs > 0 {
					perMsg = float64(r.Counter("reliable.retransmits")) / float64(r.AppMsgs)
				}
				t.AddRow(Pct(drop), F(perMsg),
					I(r.Counter("reliable.dup_dropped")),
					F(r.MeanFinalizationLatency()),
					I(r.GlobalCheckpoints()), consistent)
			}
			return t
		},
	}
}
