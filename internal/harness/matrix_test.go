package harness

// Cross-product safety net: every coordinated protocol on every workload
// pattern must complete and emit only consistent global checkpoints.

import (
	"fmt"
	"testing"

	"ocsml/internal/des"
	"ocsml/internal/workload"
)

func TestProtocolWorkloadMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	protos := []string{"ocsml", "chandy-lamport", "koo-toueg", "staggered", "bcs-cic"}
	patterns := []workload.Pattern{
		workload.UniformRandom, workload.Ring, workload.ClientServer,
		workload.Mesh, workload.Bursty, workload.BSPStencil,
	}
	for _, proto := range protos {
		for _, pat := range patterns {
			for seed := int64(1); seed <= 2; seed++ {
				proto, pat, seed := proto, pat, seed
				t.Run(fmt.Sprintf("%s/%v/seed%d", proto, pat, seed), func(t *testing.T) {
					t.Parallel()
					r := Run(RunCfg{
						Proto: proto, N: 6, Seed: seed,
						Steps: 200, Think: 10 * des.Millisecond,
						Pattern: pat, StateBytes: 4 << 20,
						Interval: des.Second, Timeout: 400 * des.Millisecond,
						Trace: true,
					})
					if !r.Completed {
						t.Fatal("did not complete")
					}
					seqs, err := r.CheckAllGlobals()
					if err != nil {
						t.Fatalf("consistency: %v", err)
					}
					if len(seqs) < 2 {
						t.Fatalf("too few global checkpoints: %v", seqs)
					}
				})
			}
		}
	}
}
