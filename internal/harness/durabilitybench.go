package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"ocsml/internal/checkpoint"
	"ocsml/internal/des"
	"ocsml/internal/fsstore"
	"ocsml/internal/metrics"
)

// durRecord synthesizes one finalized checkpoint for the durability
// benchmarks: realistic field spread plus a small selective message log.
func durRecord(proc, seq, logn int) checkpoint.Record {
	at := des.Time(seq) * 1000
	r := checkpoint.Record{
		Tentative: checkpoint.Tentative{
			Proc: proc, Seq: seq, TakenAt: at,
			StateBytes: 1 << 20, Fold: uint64(seq)*0x9e3779b9 + 1,
			Work: int64(seq) * 40, Progress: int64(seq)*40 - 3, FlushedAt: at + 200,
		},
		FinalizedAt: at + 500,
		CFEFold:     uint64(seq)*0x9e3779b9 + 77,
		CFEWork:     int64(seq)*40 + 11,
		CFEProgress: int64(seq) * 40,
		StableAt:    at + 700,
	}
	for i := 0; i < logn; i++ {
		r.Log = append(r.Log, checkpoint.LoggedMsg{
			ID: int64(seq*1000 + i), Src: (proc + 1) % 4, Dst: proc,
			Dir: checkpoint.Direction(i % 2), SentAt: at + des.Time(i),
			LoggedAt: at + des.Time(i) + 5, Bytes: 256,
			Tag: uint64(i) + 1, AppSeq: int64(seq*10 + i),
		})
	}
	return r
}

// D1 measures the pipelined durability engine's sustained-write path:
// finalizes/sec and fsyncs/finalize at increasing group-commit batch
// depth, against real files with real fsyncs. The fsync ratio is the
// acceptance gate (< 0.5 at depth >= 8); the rate row is wall-clock
// measured and varies run to run.
func D1() Experiment {
	return Experiment{
		ID:    "D1",
		Title: "Durability engine: group-commit amortization of finalize fsyncs",
		Claim: "one segment fsync plus one manifest commit cover a whole batch of finalizations, so fsyncs/finalize falls below 0.5 once the group reaches depth 8 while finalizes/sec rises",
		Run: func(s Scale) *Table {
			records := 2048
			if s.Quick {
				records = 512
			}
			tab := &Table{Columns: []string{"depth", "finalizes_per_s", "fsyncs_per_finalize", "kb_per_finalize"}}
			for _, depth := range []int{1, 4, 8, 16, 32} {
				rate, fpf, bpf := runSustainedWrites(records, depth)
				tab.AddRow(I(depth), F(rate), F(fpf), F(bpf/1024))
			}
			tab.Note("%d finalized checkpoints per depth, 4-entry selective logs, real files + real fsyncs in a throwaway dir", records)
			tab.Note("fsyncs_per_finalize counts actual fsync syscalls (segment + manifest temp + dir syncs); finalizes_per_s is wall-clock measured")
			return tab
		},
	}
}

// runSustainedWrites drives total finalizations through FinalizeBatch at
// the given batch depth and reports the sustained rate, the fsync
// syscalls per finalize, and the bytes written per finalize.
func runSustainedWrites(total, depth int) (rate, fsyncsPer, bytesPer float64) {
	dir, err := os.MkdirTemp("", "ocsml-durbench-*")
	if err != nil {
		panic(fmt.Sprintf("harness: durability bench tempdir: %v", err))
	}
	defer os.RemoveAll(dir)
	s, err := fsstore.Open(dir, 0, 4)
	if err != nil {
		panic(err)
	}
	sm := fsstore.NewStoreMetrics(metrics.NewRegistry(), 0)
	s.SetMetrics(sm)
	start := time.Now() //ocsml:wallclock live durability benchmark timing
	for seq := 1; seq <= total; {
		batch := make([]checkpoint.Record, 0, depth)
		for len(batch) < depth && seq <= total {
			batch = append(batch, durRecord(0, seq, 4))
			seq++
		}
		if n, err := s.FinalizeBatch(batch); err != nil || n != len(batch) {
			panic(fmt.Sprintf("harness: durability bench batch committed %d/%d: %v", n, len(batch), err))
		}
	}
	elapsed := time.Since(start) //ocsml:wallclock live durability benchmark timing
	rate = float64(total) / elapsed.Seconds()
	fsyncsPer = float64(sm.Fsyncs.Value()) / float64(total)
	bytesPer = float64(sm.BytesWritten.Value()) / float64(total)
	return rate, fsyncsPer, bytesPer
}

// D2 measures recovery replay against log length: the wall time to
// reopen a store and replay every record back, for an incremental
// (delta-chain) log and a full-snapshot-only log of the same history.
// It also enforces the correctness gate: the two recoveries must be
// byte-identical record for record, or the experiment panics.
func D2() Experiment {
	return Experiment{
		ID:    "D2",
		Title: "Recovery replay vs log length: incremental chains against full snapshots",
		Claim: "replaying delta chains on recovery costs wall time comparable to full-snapshot loads at a fraction of the write volume, and reproduces byte-identical records",
		Run: func(s Scale) *Table {
			lengths := []int{64, 256, 1024}
			if s.Quick {
				lengths = []int{32, 128}
			}
			tab := &Table{Columns: []string{"records", "replay_ms_incr", "replay_ms_full", "log_kb_incr", "log_kb_full"}}
			for _, n := range lengths {
				incrMS, incrKB := runRecoveryReplay(n, 8)
				fullMS, fullKB := runRecoveryReplay(n, 1)
				tab.AddRow(I(n), F(incrMS), F(fullMS), F(incrKB), F(fullKB))
			}
			tab.Note("snapshot cadence 8 for the incremental store, 1 (every record full) for the baseline")
			tab.Note("each cell reopens the store cold and replays every record; recoveries are asserted byte-identical before timing is reported")
			return tab
		},
	}
}

// runRecoveryReplay builds a store of n records at the given snapshot
// cadence, then times a cold reopen + full replay. Every replayed
// record is checked byte-identical against the written one.
func runRecoveryReplay(n, snapshotEvery int) (replayMS, logKB float64) {
	dir, err := os.MkdirTemp("", "ocsml-durbench-*")
	if err != nil {
		panic(fmt.Sprintf("harness: durability bench tempdir: %v", err))
	}
	defer os.RemoveAll(dir)
	opts := fsstore.DefaultOptions()
	opts.SnapshotEvery = snapshotEvery
	s, err := fsstore.OpenWith(dir, 0, 4, opts)
	if err != nil {
		panic(err)
	}
	sm := fsstore.NewStoreMetrics(metrics.NewRegistry(), 0)
	s.SetMetrics(sm)
	batch := make([]checkpoint.Record, 0, n)
	for seq := 1; seq <= n; seq++ {
		batch = append(batch, durRecord(0, seq, 4))
	}
	if k, err := s.FinalizeBatch(batch); err != nil || k != n {
		panic(fmt.Sprintf("harness: durability bench wrote %d/%d: %v", k, n, err))
	}
	logKB = float64(sm.BytesWritten.Value()) / 1024

	start := time.Now() //ocsml:wallclock recovery replay timing
	s2, err := fsstore.OpenWith(dir, 0, 4, opts)
	if err != nil {
		panic(err)
	}
	replayed := make([]checkpoint.Record, 0, n)
	for seq := 1; seq <= n; seq++ {
		r, err := s2.Load(seq)
		if err != nil {
			panic(fmt.Sprintf("harness: recovery replay seq %d: %v", seq, err))
		}
		replayed = append(replayed, r)
	}
	replayMS = float64(time.Since(start).Microseconds()) / 1000 //ocsml:wallclock recovery replay timing

	// Correctness gate (outside the timed window): the replay must be
	// byte-identical to what was finalized, whatever the chain shape.
	for i, r := range replayed {
		got, _ := json.Marshal(r)
		want, _ := json.Marshal(batch[i])
		if !bytes.Equal(got, want) {
			panic(fmt.Sprintf("harness: recovery replay diverged at seq %d (snapshotEvery=%d)", batch[i].Seq, snapshotEvery))
		}
	}
	return replayMS, logKB
}
