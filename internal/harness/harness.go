// Package harness defines and runs the evaluation suite: the experiments
// E1–E8 reconstruct the performance evaluation the paper describes in
// prose (its numeric section was omitted for space, see DESIGN.md), and
// the ablations A1–A3 quantify the paper's §3.5.1/§1 optimizations.
// cmd/experiments regenerates every table; bench_test.go exposes one
// benchmark per experiment.
package harness

import (
	"fmt"
	"sort"

	"ocsml/internal/baseline/bcs"
	"ocsml/internal/baseline/chandylamport"
	"ocsml/internal/baseline/kootoueg"
	"ocsml/internal/baseline/nop"
	"ocsml/internal/baseline/staggered"
	"ocsml/internal/baseline/uncoord"
	"ocsml/internal/core"
	"ocsml/internal/des"
	"ocsml/internal/engine"
	"ocsml/internal/reliable"
	"ocsml/internal/storage"
	"ocsml/internal/workload"
)

// Scale selects the size of the sweeps. Quick mode keeps every experiment
// under a second for benchmarks and CI; Full mode is what
// cmd/experiments uses to regenerate EXPERIMENTS.md.
type Scale struct {
	Quick bool
}

// Ns returns the cluster sizes swept by the N-dependent experiments.
func (s Scale) Ns() []int {
	if s.Quick {
		return []int{4, 8, 16}
	}
	return []int{4, 8, 16, 32, 64}
}

// Steps returns the per-process work quota.
func (s Scale) Steps() int64 {
	if s.Quick {
		return 800
	}
	return 3000
}

// Think returns the mean per-step computation time.
func (s Scale) Think() des.Duration {
	if s.Quick {
		return 20 * des.Millisecond
	}
	return 30 * des.Millisecond
}

// Interval returns the checkpoint period for the N sweeps, chosen so the
// largest swept cluster keeps the storage server below saturation even
// for the write-burst baselines (N · state/bandwidth < Interval).
func (s Scale) Interval() des.Duration {
	if s.Quick {
		return 4 * des.Second
	}
	return 30 * des.Second
}

// StateBytes returns the checkpointed process-image size.
func (s Scale) StateBytes() int64 {
	if s.Quick {
		return 4 << 20
	}
	return 16 << 20
}

// Span is the approximate virtual length of the workload
// (Steps × Think); experiments that sweep the message rate hold it
// constant by adjusting Steps.
func (s Scale) Span() des.Duration {
	return des.Duration(s.Steps()) * s.Think()
}

// RunCfg describes one simulation run in the sweeps.
type RunCfg struct {
	Proto      string // registry name
	N          int
	Seed       int64
	Steps      int64
	Think      des.Duration
	Pattern    workload.Pattern
	MsgBytes   int64
	StateBytes int64
	Interval   des.Duration // checkpoint period
	Timeout    des.Duration // OCSML convergence timeout
	Trace      bool
	Opt        *core.Options // full OCSML options override (ablations)
	// Failure, when non-nil, injects a crash and live recovery (the
	// protocol must support rollback — currently OCSML).
	Failure *engine.FailurePlan
	// DropRate makes the network lossy; set Reliable to wrap the
	// protocol in the retransmission transport.
	DropRate float64
	Reliable bool
	// Script, when non-nil, replays an explicit send plan (e.g. loaded
	// from a trace file) instead of the synthetic workload.
	Script map[int][]workload.ScriptedSend
	// LocalStorage gives every process its own disk instead of the
	// shared network file server.
	LocalStorage bool
}

func (rc RunCfg) defaults() RunCfg {
	if rc.N == 0 {
		rc.N = 8
	}
	if rc.Seed == 0 {
		rc.Seed = 1
	}
	if rc.Steps == 0 {
		rc.Steps = 300
	}
	if rc.Think == 0 {
		rc.Think = 10 * des.Millisecond
	}
	if rc.MsgBytes == 0 {
		rc.MsgBytes = 2 << 10
	}
	if rc.StateBytes == 0 {
		rc.StateBytes = 16 << 20
	}
	if rc.Interval == 0 {
		rc.Interval = des.Second
	}
	if rc.Timeout == 0 {
		rc.Timeout = 500 * des.Millisecond
	}
	return rc
}

// ProtoNames lists the registry, in presentation order.
func ProtoNames() []string {
	return []string{"none", "ocsml", "chandy-lamport", "koo-toueg", "staggered", "bcs-cic", "uncoordinated"}
}

// factory resolves a protocol name. It reports whether the protocol needs
// FIFO channels.
func factory(rc RunCfg) (engine.ProtoFactory, bool) {
	switch rc.Proto {
	case "none", "":
		return nop.Factory(), false
	case "ocsml":
		opt := core.DefaultOptions()
		if rc.Opt != nil {
			opt = *rc.Opt
		} else {
			opt.Interval = rc.Interval
			opt.Timeout = rc.Timeout
		}
		return core.Factory(opt), false
	case "ocsml-basic": // Figure-3 algorithm without control messages
		opt := core.DefaultOptions()
		opt.Interval = rc.Interval
		opt.Timeout = 0
		return core.Factory(opt), false
	case "chandy-lamport":
		return chandylamport.Factory(chandylamport.Options{Interval: rc.Interval, BlockingWrite: true}), true
	case "koo-toueg":
		return kootoueg.Factory(kootoueg.Options{Interval: rc.Interval}), false
	case "staggered":
		return staggered.Factory(staggered.Options{Interval: rc.Interval}), true
	case "bcs-cic":
		return bcs.Factory(bcs.Options{Interval: rc.Interval, BlockingForced: true}), false
	case "uncoordinated":
		return uncoord.Factory(uncoord.Options{Interval: rc.Interval}), false
	default:
		panic(fmt.Sprintf("harness: unknown protocol %q (known: %v + ocsml-basic)", rc.Proto, ProtoNames()))
	}
}

// Run executes one configured simulation.
func Run(rc RunCfg) *engine.Result {
	rc = rc.defaults()
	pf, fifo := factory(rc)
	if rc.Reliable {
		pf = reliable.Factory(pf, reliable.DefaultOptions())
	}
	cfg := engine.DefaultConfig()
	cfg.N = rc.N
	cfg.Seed = rc.Seed
	cfg.FIFO = fifo
	cfg.DropRate = rc.DropRate
	cfg.Storage = storage.DefaultConfig()
	cfg.LocalStorage = rc.LocalStorage
	cfg.StateBytes = rc.StateBytes
	cfg.CopyCost = 5 * des.Millisecond
	cfg.Drain = 4 * (rc.Interval + rc.Timeout)
	cfg.TraceEnabled = rc.Trace
	// Bound runaway runs: a protocol that starves the workload (e.g. a
	// blocking baseline with an infeasibly short checkpoint period)
	// is cut off and reported as Completed=false instead of grinding
	// toward a distant horizon.
	cfg.MaxTime = des.Time(rc.Steps)*rc.Think*20 + 500*rc.Interval
	af := workload.Factory(workload.Config{
		Pattern: rc.Pattern, Steps: rc.Steps, Think: rc.Think,
		MsgBytes: rc.MsgBytes, BurstLen: 25, BurstIdle: 10 * rc.Think,
		ServerReplies: true,
	})
	if rc.Script != nil {
		af = workload.ScriptedFactory(rc.Script)
	}
	c := engine.New(cfg, pf, af)
	if rc.Failure != nil {
		c.InjectFailure(*rc.Failure)
	}
	return c.Run()
}

// Experiment is one reproducible evaluation artifact.
type Experiment struct {
	ID    string
	Title string
	// Claim is the paper statement the experiment checks.
	Claim string
	Run   func(s Scale) *Table
}

// Execute runs the experiment and stamps the table with the experiment's
// identity.
func (e Experiment) Execute(s Scale) *Table {
	t := e.Run(s)
	t.ID, t.Title, t.Claim = e.ID, e.Title, e.Claim
	return t
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(), E11(),
		A1(), A2(), A3(), A4(),
		W1(), W2(),
		D1(), D2(),
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
