package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: fixed columns, preformatted
// cells, and free-form notes.
type Table struct {
	ID      string
	Title   string
	Claim   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v (floats get %.3g via
// Cell).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("harness: row has %d cells, table %q has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// I formats an int for table cells.
func I[T ~int | ~int64](v T) string { return fmt.Sprintf("%d", int64(v)) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// CSV renders the table as RFC-4180-ish CSV (header row + data rows).
// Cells never contain commas or quotes by construction.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Render draws the table as aligned monospaced text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	width := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		width[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
