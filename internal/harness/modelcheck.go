package harness

import (
	"fmt"
	"math"

	"ocsml/internal/des"
	"ocsml/internal/model"
	"ocsml/internal/storage"
)

// E11 compares the analytical model's predictions with fresh
// measurements — the validation that the simulator behaves like the
// queueing and epidemic systems it is built from.
func E11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Analytical model vs measured",
		Claim: "First-order queueing/epidemic models predict the measured contention, blocking, utilization, finalization latency and retransmission rates.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"quantity", "predicted", "measured", "relErr"}}
			n := 8
			sc := storage.DefaultConfig()
			p := model.Params{
				N: n, StateBytes: 16 << 20,
				Bandwidth: sc.Bandwidth, OpLatency: sc.Latency,
				Interval: 8 * des.Second,
				NetDelay: 1100 * des.Microsecond,
			}
			steps := s.Steps() * 2
			add := func(name string, pred, meas float64) {
				e := math.Abs(pred - meas)
				if meas != 0 {
					e = e / math.Abs(meas)
				}
				t.AddRow(name, F(pred), F(meas), Pct(e))
			}

			// Koo–Toueg write burst.
			kt := Run(RunCfg{
				Proto: "koo-toueg", N: n, Steps: steps,
				Think: 10 * des.Millisecond, StateBytes: p.StateBytes, Interval: p.Interval,
			})
			add("KT mean storage wait (s)", p.BurstMeanWait(n), kt.Storage.MeanWait())
			add("KT peak storage queue", float64(p.BurstPeakQueue(n)), float64(kt.Storage.PeakQueue()))
			rounds := float64(kt.Counter("checkpoints")) / float64(n)
			if rounds > 0 {
				add("KT blocked/proc/round (s)", p.BlockedPerRound(),
					kt.StalledSeconds.Sum()/float64(n)/rounds)
			}

			// OCSML utilization and gossip finalization over the active
			// period. The utilization model is a steady-state statement,
			// so this run spans ~10 checkpoint rounds regardless of
			// scale (boundary rounds otherwise dominate).
			oc := Run(RunCfg{
				Proto: "ocsml", N: n, Steps: 8000,
				Think: 10 * des.Millisecond, StateBytes: p.StateBytes, Interval: p.Interval,
			})
			var busy float64
			for _, w := range oc.Storage.Writes() {
				if w.Arrive <= oc.Makespan {
					busy += (w.End - w.Start).Seconds()
				}
			}
			add("OCSML storage utilization", p.Utilization(), busy/oc.Makespan.Seconds())

			pg := p
			pg.MsgRate = float64(oc.AppMsgs) / float64(n) / oc.Makespan.Seconds()
			var sum float64
			cnt := 0
			for proc := 0; proc < n; proc++ {
				for _, rec := range oc.Ckpts.Proc(proc).All() {
					if rec.Seq > 0 && rec.FinalizedAt <= oc.Makespan {
						sum += rec.FinalizationLatency().Seconds()
						cnt++
					}
				}
			}
			if cnt > 0 {
				add("OCSML finalize latency (s)", pg.GossipFinalization(), sum/float64(cnt))
			}

			// Retransmissions at 15% loss.
			lossy := Run(RunCfg{
				Proto: "ocsml", N: 6, Steps: steps,
				Think: 10 * des.Millisecond, StateBytes: 2 << 20,
				Interval: 4 * des.Second, DropRate: 0.15, Reliable: true,
			})
			add("retransmits/msg @15% loss", model.RetransmitsPerMessage(0.15),
				float64(lossy.Counter("reliable.retransmits"))/float64(lossy.AppMsgs))

			t.Note("first-order models: burst FIFO queueing, two-phase epidemic gossip, (1-q)^-2 transmissions; see internal/model")
			return t
		},
	}
}

// assertModelSanity keeps E11 registered and its helper math honest.
func init() {
	if _, ok := ByID("E11"); !ok {
		panic(fmt.Sprintf("harness: E11 not registered (ids %v)", IDs()))
	}
}
