package harness

import "strconv"

// Headline extracts one representative metric from an experiment table —
// the same metric bench_test.go reports for that experiment via
// b.ReportMetric — so the bench-JSON emitter (cmd/experiments -json) and
// the benchmarks agree on what the perf trajectory tracks. Returns
// ok=false for tables without a registered headline.
func Headline(tab *Table) (name string, value float64, ok bool) {
	h, found := headlines[tab.ID]
	if !found {
		return "", 0, false
	}
	row := h.row(tab)
	if row < 0 || row >= len(tab.Rows) {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(tab.Rows[row][h.col], 64)
	if err != nil {
		return "", 0, false
	}
	return h.name, v, true
}

type headline struct {
	name string
	row  func(*Table) int
	col  int
}

// lastWhere selects the last row whose column col holds val.
func lastWhere(col int, val string) func(*Table) int {
	return func(tab *Table) int {
		idx := -1
		for i, row := range tab.Rows {
			if row[col] == val {
				idx = i
			}
		}
		return idx
	}
}

func fixed(i int) func(*Table) int { return func(*Table) int { return i } }

func lastRow(tab *Table) int { return len(tab.Rows) - 1 }

var headlines = map[string]headline{
	"E1":  {"ocsml-makespan-s", lastWhere(1, "ocsml"), 2},
	"E2":  {"ocsml-peak-queue", lastWhere(1, "ocsml"), 2},
	"E3":  {"ctl-per-global-sparse", lastRow, 3},
	"E4":  {"dense-finalize-s", fixed(0), 2},
	"E5":  {"dense-log-kb", fixed(0), 2},
	"E6":  {"kt-stall-s-per-proc", lastWhere(1, "koo-toueg"), 2},
	"E7":  {"cic-forced", lastWhere(1, "bcs-cic"), 3},
	"E8":  {"domino-depth", lastWhere(1, "uncoordinated"), 2},
	"E9":  {"ocsml-retained-per-proc", lastWhere(0, "ocsml"), 2},
	"E10": {"retrans-per-msg-at-30pct", lastRow, 1},
	"E11": {"kt-wait-pred-s", fixed(0), 1},
	"A1":  {"suppressed-bgn-per-global", fixed(1), 2},
	"A2":  {"req-per-global-skip", fixed(1), 2},
	"A3":  {"early-peak-queue", fixed(1), 1},
	"A4":  {"kt-local-blocked-s", lastWhere(0, "koo-toueg"), 4},
	"W1":  {"wire-encode-allocs-per-msg", lastWhere(0, "encode-v2-delta"), 1},
	"W2":  {"wire-mesh-msgs-per-sec-per-node", fixed(0), 1},
	"D1":  {"durability-fsyncs-per-finalize-depth8", lastWhere(0, "8"), 2},
	"D2":  {"durability-replay-ms", lastRow, 1},
}
