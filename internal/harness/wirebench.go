package harness

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ocsml/internal/core"
	"ocsml/internal/protocol"
	"ocsml/internal/transport"
	"ocsml/internal/wire"
)

// wireEnvelope is the hot-path message shape the wire benchmarks
// measure: an application message carrying a piggyback over an
// n-process cluster.
func wireEnvelope(n int) *protocol.Envelope {
	set := protocol.NewProcSet(n)
	set.Add(5 % n)
	return &protocol.Envelope{
		ID: 1, Src: 0, Dst: 1, Kind: protocol.KindApp,
		Bytes: 256 + 6, SentAt: 1,
		App:     protocol.AppMsg{Seq: 1, Bytes: 256, Tag: 7},
		Payload: core.Piggyback{Csn: 3, Stat: core.Tentative, TentSet: set},
	}
}

// W1 measures the wire codec's per-message cost on the app-message hot
// path: allocations per encode/decode and piggyback bytes per message,
// legacy v1 against the pooled v2 delta path. Allocation counts and
// byte counts are exact, so the table is deterministic.
func W1() Experiment {
	return Experiment{
		ID:    "W1",
		Title: "Wire codec hot path: allocs/msg and piggyback B/msg (N=64)",
		Claim: "steady-state encode and decode of an app-message frame allocate nothing, and the v2 delta rewrite shrinks the piggyback block from O(N) bitmap bytes to O(changed bits)",
		Run: func(s Scale) *Table {
			const N = 64
			tab := &Table{Columns: []string{"path", "allocs_per_msg", "pb_bytes_per_msg"}}

			e := wireEnvelope(N)
			v1Allocs := testing.AllocsPerRun(200, func() {
				if _, err := wire.Encode(e); err != nil {
					panic(err)
				}
			})
			fullPB, err := wire.PayloadSize(e)
			if err != nil {
				panic(err)
			}
			tab.AddRow("encode-v1", F(v1Allocs), I(fullPB))

			// The v2 path in its steady state: one tentSet bit changes per
			// message, the PeerEncoder rewrites the block into a delta.
			var enc wire.Encoder
			var pe wire.PeerEncoder
			f := wire.AcquireFrame()
			defer f.Release()
			var buf []byte
			flip := 0
			encodeOnce := func() int {
				pb := e.Payload.(core.Piggyback)
				pb.TentSet.Toggle(flip % N)
				flip++
				if err := enc.EncodeFrame(f, e); err != nil {
					panic(err)
				}
				var pbLen int
				buf, pbLen = pe.AppendFrame(buf[:0], f)
				return pbLen
			}
			encodeOnce() // first frame travels full: establishes the base
			deltaPB := encodeOnce()
			v2Allocs := testing.AllocsPerRun(200, func() { encodeOnce() })
			tab.AddRow("encode-v2-delta", F(v2Allocs), I(deltaPB))

			frame, err := wire.Encode(e)
			if err != nil {
				panic(err)
			}
			ownedAllocs := testing.AllocsPerRun(200, func() {
				if _, err := wire.Decode(frame); err != nil {
					panic(err)
				}
			})
			tab.AddRow("decode-owned", F(ownedAllocs), "-")

			dec := wire.NewDecoder(0)
			viewAllocs := testing.AllocsPerRun(200, func() {
				if _, err := dec.Decode(frame); err != nil {
					panic(err)
				}
			})
			tab.AddRow("decode-view", F(viewAllocs), "-")

			tab.Note("N=%d universe; steady state flips one tentSet bit per message", N)
			tab.Note("full piggyback block is %d B (O(N) bitmap), delta block %d B (O(changed bits))", fullPB, deltaPB)
			return tab
		},
	}
}

// W2 measures the live transport: sustained app-message throughput
// between two TCP processes on loopback, through the pooled encoder,
// the batched vectored writer, and the stateful delta decoder. The
// rate row is wall-clock measured and varies run to run.
func W2() Experiment {
	return Experiment{
		ID:    "W2",
		Title: "Live mesh throughput: batched writes + delta piggybacks",
		Claim: "the transport sustains hundreds of thousands of msgs/sec/node with piggyback wire cost independent of cluster size",
		Run: func(s Scale) *Table {
			total := 150000
			if s.Quick {
				total = 30000
			}
			rate, bpm, pbpm := runMeshThroughput(total)
			tab := &Table{Columns: []string{"msgs", "msgs_per_s_per_node", "bytes_per_msg", "pb_bytes_per_msg"}}
			tab.AddRow(I(total), F(rate), F(bpm), F(pbpm))
			tab.Note("2 live TCP processes on loopback, N=64 universe, one tentSet flip per 32 msgs")
			tab.Note("msgs_per_s_per_node is wall-clock measured and machine-dependent")
			return tab
		},
	}
}

// runMeshThroughput pushes total app messages through a 2-process
// loopback mesh and reports the sustained rate and per-message wire
// cost.
func runMeshThroughput(total int) (rate, bytesPerMsg, pbPerMsg float64) {
	const n = 64
	listeners := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("harness: wire bench listen: %v", err))
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var delivered atomic.Int64
	accept := func(src int) func(frame []byte) {
		dec := wire.NewDecoder(0)
		return func(frame []byte) {
			if _, err := dec.Decode(frame); err != nil {
				panic(fmt.Sprintf("harness: wire bench decode: %v", err))
			}
			delivered.Add(1)
		}
	}
	sender, err := transport.NewMesh(transport.MeshConfig{ID: 0, Addrs: addrs, Seed: 1},
		listeners[0], func(int) func([]byte) { return func([]byte) {} })
	if err != nil {
		panic(err)
	}
	receiver, err := transport.NewMesh(transport.MeshConfig{ID: 1, Addrs: addrs, Seed: 2},
		listeners[1], accept)
	if err != nil {
		panic(err)
	}
	sender.Start()
	receiver.Start()
	defer sender.Close()
	defer receiver.Close()

	e := wireEnvelope(n)
	var enc wire.Encoder
	send := func() {
		f := wire.AcquireFrame()
		if err := enc.EncodeFrame(f, e); err != nil {
			panic(err)
		}
		sender.Send(1, f)
	}
	// Establish the connection before timing.
	send()
	deadline := time.Now().Add(60 * time.Second) //ocsml:wallclock live benchmark deadline
	for delivered.Load() < 1 {
		if time.Now().After(deadline) { //ocsml:wallclock live benchmark deadline
			panic("harness: wire bench connection never delivered")
		}
		time.Sleep(time.Millisecond)
	}

	base := sender.Stats()
	basePB := sender.PiggybackBytes()
	baseDelivered := delivered.Load()
	start := time.Now() //ocsml:wallclock live benchmark timing
	pb := e.Payload.(core.Piggyback)
	for i := 0; i < total; i++ {
		if i%32 == 0 {
			// Evolve the piggyback at a realistic cadence so deltas carry
			// an occasional flip rather than always being empty.
			pb.TentSet.Toggle(i / 32 % n)
		}
		// Window the sender below the 8192-frame queue so nothing drops.
		for int64(i)-(delivered.Load()-baseDelivered) > 4096 {
			time.Sleep(50 * time.Microsecond)
		}
		send()
	}
	for delivered.Load()-baseDelivered < int64(total) {
		if time.Now().After(deadline) { //ocsml:wallclock live benchmark deadline
			panic("harness: wire bench delivery stalled")
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start) //ocsml:wallclock live benchmark timing

	st := sender.Stats()
	msgs := float64(st.FramesSent - base.FramesSent)
	rate = msgs / elapsed.Seconds()
	bytesPerMsg = float64(st.BytesSent-base.BytesSent) / msgs
	pbPerMsg = float64(sender.PiggybackBytes()-basePB) / msgs
	return rate, bytesPerMsg, pbPerMsg
}
