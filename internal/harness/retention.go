package harness

import (
	"ocsml/internal/des"
	"ocsml/internal/recovery"
	"ocsml/internal/trace"
)

// E9 measures the stable-storage space that must be retained for
// recovery, and what checkpoint garbage collection reclaims.
func E9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Stable-storage retention and garbage collection",
		Claim: "Every OCSML checkpoint belongs to a consistent global checkpoint, so everything older than the last committed line is reclaimable (paper §1); uncoordinated checkpointing must keep all checkpoints because the recovery line is unknown until a failure.",
		Run: func(s Scale) *Table {
			t := &Table{Columns: []string{"protocol", "ckpts/proc", "retained/proc", "retainedMB", "reclaimedMB"}}
			think := 5 * des.Millisecond
			steps := s.Steps()
			// ~5 rounds per run, with the interval kept above the
			// baselines' write-burst service time (N·state/bandwidth).
			interval := des.Duration(steps) * think / 5
			for _, proto := range []string{"ocsml", "chandy-lamport", "uncoordinated"} {
				r := Run(RunCfg{
					Proto: proto, N: 8, Steps: steps, Think: think,
					Interval: interval, StateBytes: 4 << 20, Trace: true,
				})
				perProc := float64(r.Ckpts.Proc(0).Len() - 1) // exclude seq 0
				var reclaimed int64
				if proto == "uncoordinated" {
					// GC is unsafe without coordination: the domino
					// analysis shows how deep a failure can reach.
					if a, err := recovery.Domino(r, trace.KCheckpoint); err == nil && a.RollbackDepth() > 0 {
						t.Note("uncoordinated: domino depth %d — no prefix is provably reclaimable", a.RollbackDepth())
					}
				} else {
					_, reclaimed = r.Ckpts.GC()
				}
				retained := 0
				for p := 0; p < r.Cfg.N; p++ {
					retained += r.Ckpts.Proc(p).Len()
				}
				t.AddRow(proto,
					F(perProc),
					F(float64(retained)/float64(r.Cfg.N)),
					F(float64(r.Ckpts.RetainedBytes())/(1<<20)),
					F(float64(reclaimed)/(1<<20)))
			}
			return t
		},
	}
}
